// Differential tests of the in-memory fast path: with the decoded-
// dataset batch cache on versus off, every PigMix query must produce a
// byte-identical DFS and an identical simulated time — the cache is a
// pure wall-clock optimization, invisible to the cost model and the
// query results.
package restore_test

import (
	"context"
	"fmt"
	"testing"

	"repro"
	"repro/internal/pigmix"
)

// fastpathSystem builds a tiny PigMix system; disable turns the batch
// cache off via the per-query option applied as the system default.
func fastpathSystem(t *testing.T, opts restore.Options) *restore.System {
	t.Helper()
	cfg := restore.DefaultConfig()
	cfg.Options = opts
	sys := restore.New(cfg)
	if _, err := pigmix.Generate(sys.FS(), pigmix.TinyScale, 1); err != nil {
		t.Fatal(err)
	}
	sys.SetScales(pigmix.SimScaleFor(sys.FS(), pigmix.TinyScale), pigmix.RecordScaleFor(pigmix.TinyScale))
	return sys
}

// snapshotFS captures every file on the DFS.
func snapshotFS(t *testing.T, sys *restore.System) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, f := range sys.FS().List("") {
		data, err := sys.FS().ReadFile(f)
		if err != nil {
			t.Fatalf("ReadFile(%s): %v", f, err)
		}
		out[f] = string(data)
	}
	return out
}

func diffFS(t *testing.T, label string, cached, plain map[string]string) {
	t.Helper()
	if len(cached) != len(plain) {
		t.Fatalf("%s: file counts diverge: cached %d, uncached %d", label, len(cached), len(plain))
	}
	for f, want := range plain {
		got, ok := cached[f]
		if !ok {
			t.Fatalf("%s: %s missing from cached system", label, f)
		}
		if got != want {
			t.Fatalf("%s: %s differs between cached and uncached runs", label, f)
		}
	}
}

// TestBatchCacheDifferentialPigMix runs every PigMix query twice (cold
// then warm) on a cached and an uncached system and requires identical
// simulated times per run and a byte-identical DFS at the end. The
// warm runs on the cached system must actually hit the cache, so the
// equality is between genuinely different code paths.
func TestBatchCacheDifferentialPigMix(t *testing.T) {
	cached := fastpathSystem(t, restore.Options{})
	plain := fastpathSystem(t, restore.Options{DisableBatchCache: true})
	ctx := context.Background()

	for _, name := range pigmix.Names() {
		q, err := pigmix.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 2; run++ {
			rc, err := cached.ExecuteContext(ctx, q.Script, restore.WithWorkers(1))
			if err != nil {
				t.Fatalf("%s run %d cached: %v", name, run, err)
			}
			rp, err := plain.ExecuteContext(ctx, q.Script, restore.WithWorkers(1))
			if err != nil {
				t.Fatalf("%s run %d uncached: %v", name, run, err)
			}
			if rc.SimTime != rp.SimTime {
				t.Errorf("%s run %d: SimTime diverged: cached %v, uncached %v", name, run, rc.SimTime, rp.SimTime)
			}
		}
	}

	diffFS(t, "pigmix", snapshotFS(t, cached), snapshotFS(t, plain))

	cs := cached.BatchCacheStats()
	if cs.Hits == 0 {
		t.Fatalf("cached system never hit the batch cache: %+v", cs)
	}
	if ps := plain.BatchCacheStats(); ps.Hits+ps.Misses+ps.Inserts != 0 {
		t.Fatalf("uncached system touched the batch cache: %+v", ps)
	}
}

// TestBatchCacheDifferentialReuse repeats the check through the
// repository-reuse path — warm runs that rewrite queries against
// stored outputs must match with and without the cache, covering the
// driver's RunContextOpts plumbing under reuse.
func TestBatchCacheDifferentialReuse(t *testing.T) {
	opts := restore.Options{Reuse: true, KeepWholeJobs: true, Heuristic: restore.Aggressive}
	plainOpts := opts
	plainOpts.DisableBatchCache = true
	cached := fastpathSystem(t, opts)
	plain := fastpathSystem(t, plainOpts)
	ctx := context.Background()

	for _, name := range []string{"L2", "L3"} {
		q, err := pigmix.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 2; run++ {
			rc, err := cached.ExecuteContext(ctx, q.Script, restore.WithWorkers(1))
			if err != nil {
				t.Fatalf("%s run %d cached: %v", name, run, err)
			}
			rp, err := plain.ExecuteContext(ctx, q.Script, restore.WithWorkers(1))
			if err != nil {
				t.Fatalf("%s run %d uncached: %v", name, run, err)
			}
			if fmt.Sprint(rc.SimTime) != fmt.Sprint(rp.SimTime) {
				t.Errorf("%s run %d: SimTime diverged: cached %v, uncached %v", name, run, rc.SimTime, rp.SimTime)
			}
			if rc.JobsReused != rp.JobsReused || len(rc.Rewrites) != len(rp.Rewrites) {
				t.Errorf("%s run %d: reuse diverged: cached %d/%d, uncached %d/%d",
					name, run, rc.JobsReused, len(rc.Rewrites), rp.JobsReused, len(rp.Rewrites))
			}
		}
	}

	diffFS(t, "reuse", snapshotFS(t, cached), snapshotFS(t, plain))
	if cs := cached.BatchCacheStats(); cs.Hits == 0 {
		t.Fatalf("cached system never hit the batch cache: %+v", cs)
	}
}
