package restore

import (
	"sort"
	"testing"

	"repro/internal/tuple"
)

func newTestSystem(opts Options) *System {
	cfg := DefaultConfig()
	cfg.Options = opts
	return New(cfg)
}

func seedEvents(t *testing.T, sys *System) {
	t.Helper()
	rows := []Tuple{
		{"alice", int64(10)},
		{"bob", int64(5)},
		{"alice", int64(7)},
		{"carol", int64(2)},
	}
	if err := sys.WriteDataset("events", rows); err != nil {
		t.Fatalf("WriteDataset: %v", err)
	}
}

const totalsScript = `
A = load 'events' as (user, amount);
B = group A by user;
C = foreach B generate group, SUM(A.amount);
store C into 'totals';
`

func sorted(rows []Tuple) []Tuple {
	sort.Slice(rows, func(i, j int) bool { return tuple.CompareTuples(rows[i], rows[j]) < 0 })
	return rows
}

func TestQuickstartFlow(t *testing.T) {
	sys := newTestSystem(Options{})
	seedEvents(t, sys)
	res, err := sys.Execute(totalsScript)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	rows, err := res.Output("totals")
	if err != nil {
		t.Fatalf("Output: %v", err)
	}
	rows = sorted(rows)
	want := []Tuple{
		{"alice", int64(17)},
		{"bob", int64(5)},
		{"carol", int64(2)},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %v", rows)
	}
	for i := range want {
		if !tuple.Equal(rows[i], want[i]) {
			t.Errorf("row %d = %v, want %v", i, rows[i], want[i])
		}
	}
	if res.SimTime <= 0 {
		t.Errorf("SimTime = %v", res.SimTime)
	}
}

func TestExecuteParseError(t *testing.T) {
	sys := newTestSystem(Options{})
	if _, err := sys.Execute("not pig latin"); err == nil {
		t.Errorf("garbage should not parse")
	}
}

func TestExecuteMissingDataset(t *testing.T) {
	sys := newTestSystem(Options{})
	if _, err := sys.Execute(`A = load 'nope' as (x); store A into 'o';`); err == nil {
		t.Errorf("missing dataset should fail")
	}
}

func TestReuseAcrossExecutes(t *testing.T) {
	sys := newTestSystem(Options{Reuse: true, KeepWholeJobs: true, Heuristic: Aggressive})
	seedEvents(t, sys)
	r1, err := sys.Execute(totalsScript)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(r1.Stored) == 0 {
		t.Fatalf("first run stored nothing")
	}
	r2, err := sys.Execute(totalsScript)
	if err != nil {
		t.Fatalf("Execute#2: %v", err)
	}
	if len(r2.Rewrites) == 0 {
		t.Fatalf("second run reused nothing")
	}
	rows1, _ := r1.Output("totals")
	rows2, _ := r2.Output("totals")
	rows1, rows2 = sorted(rows1), sorted(rows2)
	if len(rows1) != len(rows2) {
		t.Fatalf("results differ: %v vs %v", rows1, rows2)
	}
	for i := range rows1 {
		if !tuple.Equal(rows1[i], rows2[i]) {
			t.Errorf("row %d differs: %v vs %v", i, rows1[i], rows2[i])
		}
	}
	if sys.Repository().Len() == 0 {
		t.Errorf("repository empty after storing runs")
	}
}

func TestCompileReportsJobCount(t *testing.T) {
	sys := newTestSystem(Options{})
	n, err := sys.Compile(totalsScript)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if n != 1 {
		t.Errorf("jobs = %d, want 1", n)
	}
	n2, err := sys.Compile(`
A = load 'x' as (u, v);
B = group A by u;
C = foreach B generate group, COUNT(A) as n;
D = group C by n;
E = foreach D generate group, COUNT(C);
store E into 'o';
`)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if n2 != 2 {
		t.Errorf("jobs = %d, want 2", n2)
	}
}

func TestSetOptionsSwitchesBehaviour(t *testing.T) {
	sys := newTestSystem(Options{})
	seedEvents(t, sys)
	r1, err := sys.Execute(totalsScript)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Stored) != 0 {
		t.Errorf("storing disabled but entries created")
	}
	sys.SetOptions(Options{Heuristic: Conservative})
	r2, err := sys.Execute(totalsScript)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Stored) == 0 {
		t.Errorf("conservative heuristic stored nothing")
	}
}

func TestSetScalesAffectsSimTime(t *testing.T) {
	run := func(scale float64) *Result {
		sys := newTestSystem(Options{})
		seedEvents(t, sys)
		sys.SetScales(scale, scale)
		res, err := sys.Execute(totalsScript)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	small := run(1)
	big := run(1e6)
	if big.SimTime <= small.SimTime {
		t.Errorf("sim time should grow with scale: %v vs %v", small.SimTime, big.SimTime)
	}
}

func TestReadDatasetMissing(t *testing.T) {
	sys := newTestSystem(Options{})
	if _, err := sys.ReadDataset("absent"); err == nil {
		t.Errorf("missing dataset should error")
	}
}

func TestMultiStoreScript(t *testing.T) {
	sys := newTestSystem(Options{})
	seedEvents(t, sys)
	res, err := sys.Execute(`
A = load 'events' as (user, amount);
B = filter A by amount > 4;
C = foreach B generate user;
G = group B by user;
S = foreach G generate group, COUNT(B);
store C into 'big_spenders';
store S into 'counts';
`)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	bs, err := res.Output("big_spenders")
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 3 { // alice 10, bob 5, alice 7
		t.Errorf("big_spenders = %v", bs)
	}
	cnt, err := res.Output("counts")
	if err != nil {
		t.Fatal(err)
	}
	if len(cnt) != 2 { // alice, bob
		t.Errorf("counts = %v", cnt)
	}
}

func TestRepositoryPersistenceAPI(t *testing.T) {
	sys := newTestSystem(Options{Heuristic: Aggressive, KeepWholeJobs: true})
	seedEvents(t, sys)
	if _, err := sys.Execute(totalsScript); err != nil {
		t.Fatal(err)
	}
	n := sys.Repository().Len()
	if n == 0 {
		t.Fatal("nothing stored")
	}
	if err := sys.SaveRepository("restore/repo.gob"); err != nil {
		t.Fatalf("SaveRepository: %v", err)
	}
	if err := sys.LoadRepository("restore/repo.gob"); err != nil {
		t.Fatalf("LoadRepository: %v", err)
	}
	if sys.Repository().Len() != n {
		t.Errorf("loaded %d entries, want %d", sys.Repository().Len(), n)
	}
	// The reloaded repository must still drive rewrites.
	sys.SetOptions(Options{Reuse: true})
	res, err := sys.Execute(totalsScript)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rewrites) == 0 {
		t.Errorf("no rewrites from reloaded repository")
	}
	if err := sys.LoadRepository("missing"); err == nil {
		t.Errorf("loading a missing repository should error")
	}
}
