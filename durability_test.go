// End-to-end suite for the durability subsystem: crash-injected
// recovery, cross-process (two-System) claim leases over one DFS, the
// legacy snapshot format, and the atomic Save path.
package restore

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dfs"
)

// newTestFS returns the DFS backend the durability suite runs against:
// in-memory by default, the on-disk backend in a per-test directory
// when RESTORE_TEST_BACKEND=disk (CI runs the suite once per backend).
func newTestFS(t testing.TB) dfs.Backend {
	if os.Getenv("RESTORE_TEST_BACKEND") == "disk" {
		d, err := dfs.OpenDisk(t.TempDir())
		if err != nil {
			t.Fatalf("OpenDisk: %v", err)
		}
		t.Cleanup(func() { d.Close() })
		return d
	}
	return dfs.New()
}

// durableConfig is a durability-enabled configuration storing
// aggressively, so workloads populate the repository.
func durableConfig() Config {
	cfg := DefaultConfig()
	cfg.Options = Options{Reuse: true, KeepWholeJobs: true, Heuristic: Aggressive}
	cfg.Durability = DurabilityConfig{Enabled: true, CompactEvery: -1} // compaction only on demand
	return cfg
}

func seedEventsFS(t *testing.T, fs dfs.Backend) {
	t.Helper()
	cfg := DefaultConfig()
	sys, err := Recover(cfg, fs)
	if err != nil {
		t.Fatal(err)
	}
	seedEvents(t, sys)
}

// durableWorkload runs a small mixed workload: a one-job aggregation, a
// two-job chain sharing its prefix, and a rerun that reuses.
func durableWorkload(t *testing.T, sys *System, ns string) {
	t.Helper()
	for i, script := range []string{
		fmt.Sprintf(oneJobScript, ns+"/out0"),
		fmt.Sprintf(twoJobScript, ns+"/out1"),
		fmt.Sprintf(oneJobScript, ns+"/out2"),
	} {
		if _, err := sys.Execute(script); err != nil {
			t.Fatalf("workload query %d: %v", i, err)
		}
	}
}

// repoFingerprint renders everything Probe depends on: the entry list
// in scan order with identity, stats, and validity-relevant fields.
func repoFingerprint(r *core.Repository) string {
	var b strings.Builder
	for _, e := range r.Entries() {
		fmt.Fprintf(&b, "%s|%s|%+v|%v|%v\n", e.ID, e.OutputPath, e.Stats, e.WholeJob, e.StoredAt)
	}
	return b.String()
}

// TestRecoverAfterRestart is the durability value proposition: a System
// is closed, a new one recovers over the same DFS, and a warm query
// reuses the previous process's stored outputs with the exact SimTime a
// same-process rerun would have reported — without decoding any stored
// plan during recovery.
func TestRecoverAfterRestart(t *testing.T) {
	// Reference: one long-lived system, cold run then warm rerun.
	fsRef := newTestFS(t)
	seedEventsFS(t, fsRef)
	ref, err := Recover(durableConfig(), fsRef)
	if err != nil {
		t.Fatal(err)
	}
	durableWorkload(t, ref, "ref")
	refWarm, err := ref.Execute(fmt.Sprintf(oneJobScript, "ref/warm"))
	if err != nil {
		t.Fatal(err)
	}

	// Restart flow: same workload, then recovery in a "new process".
	fs := newTestFS(t)
	seedEventsFS(t, fs)
	sysA, err := Recover(durableConfig(), fs)
	if err != nil {
		t.Fatal(err)
	}
	durableWorkload(t, sysA, "ref") // same namespace → same plans as ref
	preCrash := repoFingerprint(sysA.Repository())
	if err := sysA.Close(); err != nil {
		t.Fatal(err)
	}

	decodesBefore := core.PlanDecodes()
	sysB, err := Recover(durableConfig(), fs)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer sysB.Close()
	st := sysB.DurabilityStats()
	if st.RecoveredEntries == 0 {
		t.Fatal("recovery found no entries; premise broken")
	}
	if d := core.PlanDecodes() - decodesBefore; d != 0 {
		t.Fatalf("cold recovery decoded %d stored plans, want 0", d)
	}
	if got := repoFingerprint(sysB.Repository()); got != preCrash {
		t.Fatalf("recovered repository diverged\n--- recovered ---\n%s--- pre-restart ---\n%s", got, preCrash)
	}

	warm, err := sysB.Execute(fmt.Sprintf(oneJobScript, "ref/warm"))
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Rewrites) == 0 {
		t.Fatal("recovered system reused nothing on a warm query")
	}
	if warm.SimTime != refWarm.SimTime {
		t.Fatalf("recovered warm SimTime %v, uncrashed reference %v", warm.SimTime, refWarm.SimTime)
	}
}

// TestRecoverCrashMatrix injects a crash at every log/compaction
// boundary of a live workload and requires the recovered System to
// answer Probe identically to the pre-crash repository and to report
// the same warm-query SimTime as an uncrashed run.
func TestRecoverCrashMatrix(t *testing.T) {
	// Uncrashed reference for the warm-query SimTime.
	fsRef := newTestFS(t)
	seedEventsFS(t, fsRef)
	ref, err := Recover(durableConfig(), fsRef)
	if err != nil {
		t.Fatal(err)
	}
	durableWorkload(t, ref, "m")
	refWarm, err := ref.Execute(fmt.Sprintf(oneJobScript, "m/warm"))
	if err != nil {
		t.Fatal(err)
	}

	for _, point := range []string{"append-done", "compact-begin", "compact-manifest", "compact-rename", "compact-trim", "compact-done"} {
		t.Run(point, func(t *testing.T) {
			fs := newTestFS(t)
			seedEventsFS(t, fs)
			sysA, err := Recover(durableConfig(), fs)
			if err != nil {
				t.Fatal(err)
			}
			durableWorkload(t, sysA, "m")

			crash := errors.New("injected crash")
			switch point {
			case "append-done":
				// Crash immediately after the last record of one more
				// query became durable: everything acknowledged must
				// survive. The workload query runs to completion (the
				// wedged log just stops persisting) but we compare
				// against the pre-wedge state plus whatever the wedged
				// query managed to append — i.e., the durable prefix.
				if _, err := sysA.Execute(fmt.Sprintf(oneJobScript, "m/extra")); err != nil {
					t.Fatal(err)
				}
			default:
				sysA.durable.SetFailpoint(func(p string) error {
					if p == point {
						return crash
					}
					return nil
				})
				if err := sysA.CompactLog(); err == nil {
					t.Fatalf("CompactLog with a %s crash returned nil", point)
				}
			}
			want := repoFingerprint(sysA.Repository())

			decodesBefore := core.PlanDecodes()
			sysB, err := Recover(durableConfig(), fs)
			if err != nil {
				t.Fatalf("Recover after %s crash: %v", point, err)
			}
			defer sysB.Close()
			if d := core.PlanDecodes() - decodesBefore; d != 0 {
				t.Fatalf("recovery decoded %d plans, want 0", d)
			}
			if got := repoFingerprint(sysB.Repository()); got != want {
				t.Fatalf("recovery after %s crash diverged\n--- recovered ---\n%s--- pre-crash ---\n%s", point, got, want)
			}
			warm, err := sysB.Execute(fmt.Sprintf(oneJobScript, "m/warm"))
			if err != nil {
				t.Fatal(err)
			}
			if warm.SimTime != refWarm.SimTime {
				t.Fatalf("warm SimTime after %s crash = %v, uncrashed %v", point, warm.SimTime, refWarm.SimTime)
			}
		})
	}
}

// TestTwoSystemsShareMaterialization is the cross-process acceptance
// check: two Systems recovered over one DFS, concurrently submitting an
// identical sub-job, materialize it exactly once — the loser waits on
// the winner's lease, folds the winner's log records into its own
// repository, and reuses the committed entry.
func TestTwoSystemsShareMaterialization(t *testing.T) {
	// Serial baseline on a single durable system: run the two queries
	// back to back.
	fsSerial := newTestFS(t)
	seedEventsFS(t, fsSerial)
	serial, err := Recover(durableConfig(), fsSerial)
	if err != nil {
		t.Fatal(err)
	}
	var serialSims []time.Duration
	for i := 0; i < 2; i++ {
		res, err := serial.Execute(fmt.Sprintf(oneJobScript, fmt.Sprintf("share/c%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		serialSims = append(serialSims, res.SimTime)
	}
	serialDatasets := len(serial.FS().Datasets("restore"))
	serialEntries := serial.Repository().Len()

	// Two "processes" over one DFS. A is gated mid-materialization via
	// the job observer so B demonstrably contends on the lease.
	fs := newTestFS(t)
	seedEventsFS(t, fs)
	sysA, err := Recover(durableConfig(), fs)
	if err != nil {
		t.Fatal(err)
	}
	defer sysA.Close()
	sysB, err := Recover(durableConfig(), fs)
	if err != nil {
		t.Fatal(err)
	}
	defer sysB.Close()
	if sysA.qidPrefix == sysB.qidPrefix {
		t.Fatalf("systems share a writer identity: %q", sysA.qidPrefix)
	}

	// Gate A inside its job's execution — task progress fires only
	// after claims and leases are held — so B demonstrably contends on
	// the lease before A commits.
	started := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	qa, err := sysA.Submit(context.Background(), fmt.Sprintf(oneJobScript, "share/c0"),
		withJobProgress(func(jobID string, done, total int, sim time.Duration) {
			once.Do(func() {
				close(started)
				<-gate
			})
		}))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	qb, err := sysB.Submit(context.Background(), fmt.Sprintf(oneJobScript, "share/c1"))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sysB.StorageStats().LeaseWaits == 0 {
		if time.Now().After(deadline) {
			t.Fatal("B never blocked on A's lease")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	resA, err := qa.Wait()
	if err != nil {
		t.Fatal(err)
	}
	resB, err := qb.Wait()
	if err != nil {
		t.Fatal(err)
	}

	// Exactly-once materialization across processes: same sub-job
	// dataset count and entry count as the serial baseline.
	if got := len(fs.Datasets("restore")); got != serialDatasets {
		t.Errorf("two systems materialized %d restore/ datasets, serial baseline %d", got, serialDatasets)
	}
	// A third, cold recovery over the shared log is the source of truth
	// for the converged repository.
	truth, err := Recover(durableConfig(), fs)
	if err != nil {
		t.Fatal(err)
	}
	defer truth.Close()
	if got := truth.Repository().Len(); got != serialEntries {
		t.Errorf("shared repository holds %d entries, serial baseline %d", got, serialEntries)
	}

	// SimTime multiset identical to the serial baseline: one query pays
	// the generating run, the other reuses the committed entries.
	got := []time.Duration{resA.SimTime, resB.SimTime}
	sortDurations(got)
	want := append([]time.Duration(nil), serialSims...)
	sortDurations(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SimTime multiset mismatch: two-system %v, serial %v", got, want)
		}
	}

	// If B contended, it must have shared the winner's entry rather
	// than re-materializing.
	if st := sysB.StorageStats(); st.LeaseWaits > 0 && st.LeasesShared == 0 && st.ClaimsShared == 0 {
		t.Errorf("B waited on a lease but shared nothing: %+v", st)
	}
}

// TestAtomicSaveRegression: a crash mid-Save must never tear the
// repository file. The write fault tears the temp file's commit; the
// destination keeps the previous complete snapshot and stays loadable.
func TestAtomicSaveRegression(t *testing.T) {
	sys := newTestSystem(Options{Reuse: true, KeepWholeJobs: true, Heuristic: Aggressive})
	seedEvents(t, sys)
	if _, err := sys.Execute(fmt.Sprintf(oneJobScript, "atomic/out")); err != nil {
		t.Fatal(err)
	}
	if err := sys.SaveRepository("meta/repo"); err != nil {
		t.Fatalf("first Save: %v", err)
	}
	firstBytes, err := sys.FS().ReadFile("meta/repo")
	if err != nil {
		t.Fatal(err)
	}

	// Grow the repository, then crash every subsequent write mid-file.
	if _, err := sys.Execute(fmt.Sprintf(twoJobScript, "atomic/out2")); err != nil {
		t.Fatal(err)
	}
	sys.FS().SetWriteFault(func(path string, data []byte) ([]byte, error) {
		return data[: len(data)/2 : len(data)/2], io.ErrShortWrite
	})
	if err := sys.SaveRepository("meta/repo"); err == nil {
		t.Fatal("Save with a torn write reported success")
	}
	sys.FS().SetWriteFault(nil)

	got, err := sys.FS().ReadFile("meta/repo")
	if err != nil {
		t.Fatalf("repository file gone after failed Save: %v", err)
	}
	if string(got) != string(firstBytes) {
		t.Fatalf("failed Save corrupted the snapshot (%d bytes, previous %d)", len(got), len(firstBytes))
	}
	loaded, err := core.LoadRepository(sys.FS(), "meta/repo")
	if err != nil {
		t.Fatalf("snapshot unloadable after failed Save: %v", err)
	}
	if loaded.Len() == 0 {
		t.Fatal("recovered snapshot is empty")
	}
}

// TestLoadRepositoryRejectedWhenDurable: swapping an unjournaled
// snapshot under a durable System would fork the durable state; it must
// refuse.
func TestLoadRepositoryRejectedWhenDurable(t *testing.T) {
	fs := newTestFS(t)
	sys, err := Recover(durableConfig(), fs)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	seedEvents(t, sys)
	if err := sys.SaveRepository("meta/repo"); err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadRepository("meta/repo"); err == nil {
		t.Fatal("LoadRepository succeeded on a durable System")
	}
}

// TestDurableJanitorReapsLeases: the background sweep deletes a dead
// peer's expired lease records.
func TestDurableJanitorReapsLeases(t *testing.T) {
	fs := newTestFS(t)
	cfg := durableConfig()
	cfg.Durability.LeaseTTL = time.Millisecond
	sys, err := Recover(cfg, fs)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	seedEvents(t, sys)

	// Simulate a dead peer's leftover lease.
	dead := core.NewLeaseManager(fs, "locks", "wdead", time.Millisecond, 0)
	if _, ok := dead.TryAcquire("orphaned-fingerprint"); !ok {
		t.Fatal("setup acquire failed")
	}
	time.Sleep(5 * time.Millisecond)
	rep := sys.Sweep()
	if rep.LeasesReaped == 0 {
		t.Fatalf("sweep reaped no expired leases: %+v", rep)
	}
	if n := len(fs.Datasets("locks")); n != 0 {
		t.Fatalf("%d lease records survived the sweep", n)
	}
}
