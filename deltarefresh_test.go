// End-to-end suite for incremental maintenance: stored entries whose
// inputs grew by appended part files are delta-refreshed in place
// instead of recomputed cold. The differential tests require the
// refreshed aggregates and the final query outputs to be identical to
// a cold recompute over the grown data — the net-traffic measures are
// integers, so "identical" means byte-identical row sets with no
// floating-point forgiveness.
package restore_test

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	"repro"
	"repro/internal/dfs"
	"repro/internal/pigmix"
)

const (
	netRows = 150
	netSeed = 42
)

// deltaFS mirrors the durability suite's backend switch: in-memory by
// default, the on-disk backend when RESTORE_TEST_BACKEND=disk (CI runs
// the suite once per backend).
func deltaFS(t testing.TB) dfs.Backend {
	if os.Getenv("RESTORE_TEST_BACKEND") == "disk" {
		d, err := dfs.OpenDisk(t.TempDir())
		if err != nil {
			t.Fatalf("OpenDisk: %v", err)
		}
		t.Cleanup(func() { d.Close() })
		return d
	}
	return dfs.New()
}

// netSystem builds a reuse-enabled system over a freshly seeded
// net-traffic flow log with days daily partitions.
func netSystem(t testing.TB, opts restore.Options, days int) *restore.System {
	t.Helper()
	cfg := restore.DefaultConfig()
	cfg.Options = opts
	sys, err := restore.Recover(cfg, deltaFS(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	if err := pigmix.GenerateNetTraffic(sys.FS(), days, netRows, netSeed); err != nil {
		t.Fatal(err)
	}
	return sys
}

func reuseOpts() restore.Options {
	return restore.Options{Reuse: true, KeepWholeJobs: true, Heuristic: restore.Aggressive}
}

func runNet(t testing.TB, sys *restore.System, name string) *restore.Result {
	t.Helper()
	q, err := pigmix.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.ExecuteContext(context.Background(), q.Script, restore.WithWorkers(1))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res
}

// sortedRows reads a dataset and renders its rows in a canonical
// order-insensitive form.
func sortedRows(t testing.TB, sys *restore.System, path string) []string {
	t.Helper()
	tuples, err := sys.ReadDataset(path)
	if err != nil {
		t.Fatalf("ReadDataset(%s): %v", path, err)
	}
	rows := make([]string, len(tuples))
	for i, tp := range tuples {
		rows[i] = fmt.Sprint(tp)
	}
	sort.Strings(rows)
	return rows
}

// mergeableAggregates renders each mergeable whole-job aggregate over
// the flow log — current at the log's present version — as a
// sorted-rows blob, the set sorted: the canonical form of the stored
// aggregates a probe would reuse.
func mergeableAggregates(t testing.TB, sys *restore.System) []string {
	t.Helper()
	cur := sys.FS().Version(pigmix.PathNetTraffic)
	var blobs []string
	for _, e := range sys.Repository().Entries() {
		if e.Merge == nil || !e.WholeJob || e.InputVersions[pigmix.PathNetTraffic] != cur {
			continue
		}
		blobs = append(blobs, strings.Join(sortedRows(t, sys, e.OutputPath), "\n"))
	}
	sort.Strings(blobs)
	return blobs
}

// TestDeltaRefreshEndToEnd is the headline path: store on the first
// run, append a day, and the second run must refresh the stored
// aggregate from the appended slice and reuse it whole — no cold
// recompute of the grown input.
func TestDeltaRefreshEndToEnd(t *testing.T) {
	sys := netSystem(t, reuseOpts(), pigmix.NetTrafficDays)

	runNet(t, sys, "N1")
	if ds := sys.DeltaStats(); ds.Refreshes != 0 || ds.Failed != 0 {
		t.Fatalf("cold run touched the refresh path: %+v", ds)
	}

	if _, err := pigmix.AppendNetTrafficDay(sys.FS(), netRows, netSeed); err != nil {
		t.Fatal(err)
	}

	res := runNet(t, sys, "N1")
	ds := sys.DeltaStats()
	if ds.Refreshes < 1 {
		t.Fatalf("append-then-requery did not refresh: %+v", ds)
	}
	if ds.Failed != 0 {
		t.Fatalf("refresh attempts failed: %+v", ds)
	}
	if res.JobsReused < 1 {
		t.Fatalf("refreshed entry was not reused: JobsReused=%d JobsRun=%d", res.JobsReused, res.JobsRun)
	}
	if ds.DeltaBytesRead <= 0 || ds.ColdBytesAvoided <= 0 {
		t.Fatalf("delta byte accounting did not move: %+v", ds)
	}
	// The delta must be a strict minority of the cold bytes: 1 appended
	// day against a 3-day base.
	if ds.DeltaBytesRead >= ds.ColdBytesAvoided {
		t.Fatalf("delta read %d bytes but only avoided %d", ds.DeltaBytesRead, ds.ColdBytesAvoided)
	}
}

// TestDeltaRefreshDifferential runs the whole net-traffic suite warm
// (store, append, requery-with-refresh) against a cold system built
// directly over the identical grown data, and requires both the final
// query outputs and the stored aggregates themselves to be identical.
func TestDeltaRefreshDifferential(t *testing.T) {
	warm := netSystem(t, reuseOpts(), pigmix.NetTrafficDays)
	for _, name := range pigmix.NetTrafficSuite {
		runNet(t, warm, name)
	}
	if _, err := pigmix.AppendNetTrafficDay(warm.FS(), netRows, netSeed); err != nil {
		t.Fatal(err)
	}
	for _, name := range pigmix.NetTrafficSuite {
		runNet(t, warm, name)
	}
	ds := warm.DeltaStats()
	if want := int64(len(pigmix.NetTrafficSuite)); ds.Refreshes < want {
		t.Fatalf("refreshed %d entries, want %d: %+v", ds.Refreshes, want, ds)
	}

	// The cold system sees the grown log from the start: its generator
	// writes the same four daily partitions byte for byte.
	cold := netSystem(t, reuseOpts(), pigmix.NetTrafficDays+1)
	for _, name := range pigmix.NetTrafficSuite {
		runNet(t, cold, name)
	}
	if cds := cold.DeltaStats(); cds.Refreshes != 0 {
		t.Fatalf("cold system refreshed: %+v", cds)
	}

	for _, name := range pigmix.NetTrafficSuite {
		q, err := pigmix.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		w := sortedRows(t, warm, q.Output)
		c := sortedRows(t, cold, q.Output)
		if fmt.Sprint(w) != fmt.Sprint(c) {
			t.Errorf("%s: refreshed output diverges from cold recompute:\nwarm: %v\ncold: %v", name, w, c)
		}
	}

	// Stronger than the final outputs: the refreshed stored aggregates
	// must equal the aggregates a cold system computes and stores.
	wa, ca := mergeableAggregates(t, warm), mergeableAggregates(t, cold)
	if len(wa) != len(ca) {
		t.Fatalf("stored aggregate counts diverge: warm %d, cold %d", len(wa), len(ca))
	}
	for i := range wa {
		if wa[i] != ca[i] {
			t.Errorf("stored aggregate %d diverges between refresh and cold recompute", i)
		}
	}
}

// netDistinctScript is a two-job query whose first job is holistic
// (DISTINCT) — not mergeable, so growth must fall back to a cold
// recompute that replaces the stored entry.
const netDistinctScript = `A = load 'pigmix/net_traffic' as (day, host, proto, packets, bytes, duration);
B = foreach A generate host;
D = distinct B;
G = group D all;
S = foreach G generate COUNT(D);
store S into 'out/nd';
`

// TestDeltaRefreshNonMergeable is the regression guard: a holistic
// entry never takes the refresh path, recomputes cold on growth, and
// the replacement entry serves subsequent runs. The heuristic is left
// at its default so only whole-job entries are stored: under the
// aggressive heuristic the row-wise projection prefix is also stored
// and would (correctly) union-merge refresh, which this test is not
// about.
func TestDeltaRefreshNonMergeable(t *testing.T) {
	sys := netSystem(t, restore.Options{Reuse: true, KeepWholeJobs: true}, pigmix.NetTrafficDays)
	ctx := context.Background()

	if _, err := sys.ExecuteContext(ctx, netDistinctScript, restore.WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := pigmix.AppendNetTrafficDay(sys.FS(), netRows, netSeed); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ExecuteContext(ctx, netDistinctScript, restore.WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
	if ds := sys.DeltaStats(); ds.Refreshes != 0 {
		t.Fatalf("holistic plan took the refresh path: %+v", ds)
	}
	// The classifier must have rejected the distinct job outright.
	for _, e := range sys.Repository().Entries() {
		if _, overLog := e.InputVersions[pigmix.PathNetTraffic]; overLog && e.Merge != nil {
			t.Fatalf("holistic entry %s was stamped mergeable", e.ID)
		}
	}

	// The cold rerun re-stored the entry at the grown versions, so a
	// third run (no further growth) reuses it.
	res, err := sys.ExecuteContext(ctx, netDistinctScript, restore.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsReused < 1 {
		t.Fatalf("replaced holistic entry was not reused: JobsReused=%d", res.JobsReused)
	}

	cold := netSystem(t, restore.Options{}, pigmix.NetTrafficDays+1)
	if _, err := cold.ExecuteContext(ctx, netDistinctScript, restore.WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
	w, c := sortedRows(t, sys, "out/nd"), sortedRows(t, cold, "out/nd")
	if fmt.Sprint(w) != fmt.Sprint(c) {
		t.Fatalf("grown holistic result diverges from cold recompute:\nwarm: %v\ncold: %v", w, c)
	}
}

// TestDeltaRefreshDurable proves the refresh is journaled: a recovered
// System sees the refreshed entry as valid at the grown versions (no
// re-refresh, immediate reuse) and can refresh it again after further
// growth.
func TestDeltaRefreshDurable(t *testing.T) {
	fs := deltaFS(t)
	cfg := restore.DefaultConfig()
	cfg.Options = reuseOpts()
	cfg.Durability = restore.DurabilityConfig{Enabled: true, CompactEvery: -1}

	sys, err := restore.Recover(cfg, fs)
	if err != nil {
		t.Fatal(err)
	}
	if err := pigmix.GenerateNetTraffic(fs, pigmix.NetTrafficDays, netRows, netSeed); err != nil {
		t.Fatal(err)
	}
	runNet(t, sys, "N1")
	if _, err := pigmix.AppendNetTrafficDay(fs, netRows, netSeed); err != nil {
		t.Fatal(err)
	}
	runNet(t, sys, "N1")
	if ds := sys.DeltaStats(); ds.Refreshes != 1 {
		t.Fatalf("expected one refresh before restart: %+v", ds)
	}
	want := sortedRows(t, sys, "out/N1")
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	sys2, err := restore.Recover(cfg, fs)
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()

	// No growth since the refresh: the recovered entry must be valid
	// as-is and reused without touching the refresh path.
	res := runNet(t, sys2, "N1")
	if ds := sys2.DeltaStats(); ds.Refreshes != 0 || ds.Failed != 0 {
		t.Fatalf("recovered entry was not valid at the refreshed versions: %+v", ds)
	}
	if res.JobsReused < 1 {
		t.Fatalf("recovered refreshed entry was not reused: JobsReused=%d", res.JobsReused)
	}
	if got := sortedRows(t, sys2, "out/N1"); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("recovered output diverges:\ngot:  %v\nwant: %v", got, want)
	}

	// Further growth: the recovered Merge spec and input bases must
	// support another refresh.
	if _, err := pigmix.AppendNetTrafficDay(fs, netRows, netSeed); err != nil {
		t.Fatal(err)
	}
	res = runNet(t, sys2, "N1")
	if ds := sys2.DeltaStats(); ds.Refreshes != 1 {
		t.Fatalf("recovered entry did not refresh after growth: %+v", ds)
	}
	if res.JobsReused < 1 {
		t.Fatalf("re-refreshed entry was not reused: JobsReused=%d", res.JobsReused)
	}
}

// BenchmarkDeltaRefresh is the headline perf artifact: the per-requery
// cost of "a day of flows landed, rerun the report" with incremental
// maintenance against the cold path. Each iteration appends one day
// (off the clock) and reruns N1: the refresh arm reads O(day) input
// bytes per run, the cold arm O(whole log) — and the log keeps
// growing, so the gap widens with b.N. The delta-bytes/op and
// log-bytes metrics land in BENCH_<sha>.json next to the ns/op gap.
func BenchmarkDeltaRefresh(b *testing.B) {
	const baseDays = 10
	for _, mode := range []struct {
		name string
		opts restore.Options
	}{
		{"refresh", reuseOpts()},
		{"cold", restore.Options{}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			sys := netSystem(b, mode.opts, baseDays)
			runNet(b, sys, "N1") // populate (or just warm) the repository
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if _, err := pigmix.AppendNetTrafficDay(sys.FS(), netRows, netSeed); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				runNet(b, sys, "N1")
			}
			b.StopTimer()
			if ds := sys.DeltaStats(); ds.Refreshes > 0 {
				b.ReportMetric(float64(ds.DeltaBytesRead)/float64(b.N), "delta-bytes/op")
				b.ReportMetric(float64(ds.ColdBytesAvoided)/float64(b.N), "avoided-bytes/op")
			}
			b.ReportMetric(float64(sys.FS().Size(pigmix.PathNetTraffic)), "log-bytes")
		})
	}
}
