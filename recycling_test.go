package restore

import (
	"testing"

	"repro/internal/tuple"
)

// TestMapReduceResultRecycling ports the scenario of Pig's
// TestMapReduceResultRecycling (KarthikTunga/pig, the prototype the
// paper builds on): a client session issues a sequence of queries over
// one small dataset — first materializing a relation, then filtering it
// two different ways — and the system must answer every query correctly
// while recycling the previously produced MapReduce results instead of
// recomputing them. Assertions cover both the output rows and the
// JobsRun/JobsReused/Rewrites counters of every step.
func TestMapReduceResultRecycling(t *testing.T) {
	sys := newTestSystem(Options{Reuse: true, KeepWholeJobs: true, Heuristic: Conservative})
	// The Pig fixture: three rows a1/b1/c1.
	if err := sys.WriteDataset("pi_test1", []Tuple{
		{"a1", int64(1), int64(1000)},
		{"b1", int64(2), int64(1000)},
		{"c1", int64(3), int64(1000)},
	}); err != nil {
		t.Fatalf("WriteDataset: %v", err)
	}

	expectRows := func(t *testing.T, res *Result, out string, want []Tuple) {
		t.Helper()
		rows, err := res.Output(out)
		if err != nil {
			t.Fatalf("Output(%s): %v", out, err)
		}
		rows = sorted(rows)
		if len(rows) != len(want) {
			t.Fatalf("%s = %v, want %v", out, rows, want)
		}
		for i := range want {
			if !tuple.Equal(rows[i], want[i]) {
				t.Errorf("%s row %d = %v, want %v", out, i, rows[i], want[i])
			}
		}
	}

	// Step 1: materialize the relation (Pig's `a = load ...` followed by
	// dumping it; distinct makes it a real MapReduce job whose result
	// the repository can recycle). Cold system: one job, nothing reused.
	r1, err := sys.Execute(`
a = load 'pi_test1' as (f0, f1, f2);
b = distinct a;
store b into 'out_a';
`)
	if err != nil {
		t.Fatalf("step 1: %v", err)
	}
	expectRows(t, r1, "out_a", []Tuple{
		{"a1", int64(1), int64(1000)},
		{"b1", int64(2), int64(1000)},
		{"c1", int64(3), int64(1000)},
	})
	if r1.JobsRun != 1 || r1.JobsReused != 0 || len(r1.Rewrites) != 0 {
		t.Errorf("step 1 counters: run=%d reused=%d rewrites=%d, want 1/0/0",
			r1.JobsRun, r1.JobsReused, len(r1.Rewrites))
	}
	if sys.Repository().Len() == 0 {
		t.Fatalf("step 1 stored nothing to recycle")
	}

	// Step 2: `b = filter a by $0 eq 'a1'` — the shared prefix must be
	// recycled from step 1's stored result instead of recomputed.
	r2, err := sys.Execute(`
a = load 'pi_test1' as (f0, f1, f2);
b = distinct a;
c = filter b by f0 == 'a1';
store c into 'out_b';
`)
	if err != nil {
		t.Fatalf("step 2: %v", err)
	}
	expectRows(t, r2, "out_b", []Tuple{{"a1", int64(1), int64(1000)}})
	if len(r2.Rewrites) == 0 {
		t.Errorf("step 2 recycled nothing: %+v", r2.Result)
	}
	if r2.JobsRun != 1 || r2.JobsReused != 0 {
		t.Errorf("step 2 counters: run=%d reused=%d, want 1/0 (final job reruns on recycled input)",
			r2.JobsRun, r2.JobsReused)
	}

	// Step 3: `c = filter a by $0 eq 'b1'` — a different filter over the
	// same prefix; the prefix is recycled again, the filter is not.
	r3, err := sys.Execute(`
a = load 'pi_test1' as (f0, f1, f2);
b = distinct a;
c = filter b by f0 == 'b1';
store c into 'out_c';
`)
	if err != nil {
		t.Fatalf("step 3: %v", err)
	}
	expectRows(t, r3, "out_c", []Tuple{{"b1", int64(2), int64(1000)}})
	if len(r3.Rewrites) == 0 {
		t.Errorf("step 3 recycled nothing: %+v", r3.Result)
	}

	// Step 4: a two-job workflow (distinct, then group) run twice: the
	// second run must reuse the whole intermediate distinct job and run
	// only the final job.
	twoJob := `
a = load 'pi_test1' as (f0, f1, f2);
b = foreach a generate f0;
d = distinct b;
g = group d by f0;
s = foreach g generate group, COUNT(d);
store s into 'out_d';
`
	r4, err := sys.Execute(twoJob)
	if err != nil {
		t.Fatalf("step 4: %v", err)
	}
	wantCounts := []Tuple{
		{"a1", int64(1)}, {"b1", int64(1)}, {"c1", int64(1)},
	}
	expectRows(t, r4, "out_d", wantCounts)
	if r4.JobsRun != 2 {
		t.Fatalf("step 4 ran %d jobs, want 2", r4.JobsRun)
	}

	r5, err := sys.Execute(twoJob)
	if err != nil {
		t.Fatalf("step 5: %v", err)
	}
	expectRows(t, r5, "out_d", wantCounts)
	if r5.JobsReused != 1 {
		t.Errorf("step 5 reused %d whole jobs, want 1 (the distinct job)", r5.JobsReused)
	}
	if r5.JobsRun != 1 {
		t.Errorf("step 5 ran %d jobs, want 1 (the final group job)", r5.JobsRun)
	}
	if len(r5.Rewrites) == 0 {
		t.Errorf("step 5 applied no rewrites")
	}
	if r5.SimTime >= r4.SimTime {
		t.Errorf("recycling did not reduce simulated time: %v vs %v", r5.SimTime, r4.SimTime)
	}
}
