package restore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/tuple"
)

// twoJobScript compiles to a chain of two MapReduce jobs (group, then
// group of the aggregate), with a parameterized output path.
const twoJobScript = `
A = load 'events' as (user, amount);
B = group A by user;
C = foreach B generate group, COUNT(A) as n;
D = group C by n;
E = foreach D generate group, COUNT(C);
store E into '%s';
`

func TestSubmitReturnsBeforeCompletion(t *testing.T) {
	sys := newTestSystem(Options{})
	seedEvents(t, sys)

	gate := make(chan struct{})
	var once sync.Once
	q, err := sys.Submit(context.Background(), fmt.Sprintf(twoJobScript, "async/out"),
		withJobObserver(func(jobID string, st JobState) {
			if st == JobRunning {
				once.Do(func() { <-gate }) // hold the first job until released
			}
		}),
		WithTag("async-check"),
	)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	// The workflow is blocked inside its first job, so Submit must have
	// returned mid-flight: the handle reports in-flight state.
	if _, err := q.Result(); !errors.Is(err, ErrInFlight) {
		t.Errorf("Result before completion: err = %v, want ErrInFlight", err)
	}
	st := q.Status()
	if st.Done {
		t.Errorf("Status.Done = true while the first job is gated")
	}
	if st.Tag != "async-check" {
		t.Errorf("Status.Tag = %q", st.Tag)
	}
	if len(st.Jobs) != 2 {
		t.Fatalf("Status.Jobs = %v, want 2 jobs", st.Jobs)
	}
	select {
	case <-q.Done():
		t.Fatalf("Done closed while the first job is gated")
	default:
	}

	close(gate)
	res, err := q.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if res.JobsRun != 2 {
		t.Errorf("JobsRun = %d, want 2", res.JobsRun)
	}
	st = q.Status()
	if !st.Done || st.Err != nil {
		t.Errorf("final Status = %+v", st)
	}
	for id, s := range st.Jobs {
		if s != JobDone {
			t.Errorf("job %s final state = %v, want done", id, s)
		}
	}
	if _, err := q.Result(); err != nil {
		t.Errorf("Result after completion: %v", err)
	}
}

// TestCancelMidWorkflow is the acceptance check for context
// cancellation: cancelling after the first job of a two-job chain
// completes must prevent the second job from ever starting, release the
// engine's task slots, and surface context.Canceled from Wait.
func TestCancelMidWorkflow(t *testing.T) {
	sys := newTestSystem(Options{})
	seedEvents(t, sys)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	q, err := sys.Submit(ctx, fmt.Sprintf(twoJobScript, "cancelled/out"),
		withJobObserver(func(jobID string, st JobState) {
			if st == JobDone {
				cancel() // first job finished: abort the rest
			}
		}),
	)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res, err := q.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("cancelled query returned a result: %+v", res)
	}

	st := q.Status()
	if !st.Done || !errors.Is(st.Err, context.Canceled) {
		t.Errorf("Status = %+v, want done with context.Canceled", st)
	}
	var done, pending int
	for _, s := range st.Jobs {
		switch s {
		case JobDone:
			done++
		case JobPending:
			pending++
		default:
			t.Errorf("unexpected job state %v", s)
		}
	}
	if done != 1 || pending != 1 {
		t.Errorf("job states = %v, want one done and one pending (second job never started)", st.Jobs)
	}

	// Nothing was published: the staged output was discarded.
	if _, err := sys.ReadDataset("cancelled/out"); err == nil {
		t.Errorf("cancelled query published its STORE output")
	}

	// Engine slots were released: the same System still executes.
	if _, err := sys.Execute(fmt.Sprintf(twoJobScript, "after/out")); err != nil {
		t.Fatalf("Execute after cancellation: %v", err)
	}
}

func TestDeadlineExpiryBeforeStart(t *testing.T) {
	sys := newTestSystem(Options{})
	seedEvents(t, sys)

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	q, err := sys.Submit(ctx, fmt.Sprintf(twoJobScript, "late/out"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := q.Wait(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait err = %v, want context.DeadlineExceeded", err)
	}
	for id, s := range q.Status().Jobs {
		if s != JobPending {
			t.Errorf("job %s = %v, want pending (nothing ran)", id, s)
		}
	}
}

// TestPerQueryOptionIsolation is the acceptance check for per-query
// configuration: a reuse-on and a reuse-off query running concurrently
// on one System must each observe exactly their own policy, with
// SimTime byte-identical to equivalent serial runs.
func TestPerQueryOptionIsolation(t *testing.T) {
	warmOpts := Options{KeepWholeJobs: true, Heuristic: Aggressive}

	// Serial references: warm a system, then run each policy alone.
	warmUp := func() *System {
		sys := newTestSystem(Options{}) // defaults: reuse off, store nothing
		seedEvents(t, sys)
		if _, err := sys.ExecuteContext(context.Background(),
			fmt.Sprintf(twoJobScript, "warm/out"), WithOptions(warmOpts)); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	serialSys := warmUp()
	serialOn, err := serialSys.ExecuteContext(context.Background(),
		fmt.Sprintf(twoJobScript, "serial/on"), WithOptions(Options{Reuse: true}))
	if err != nil {
		t.Fatal(err)
	}
	serialOff, err := serialSys.Execute(fmt.Sprintf(twoJobScript, "serial/off"))
	if err != nil {
		t.Fatal(err)
	}
	if len(serialOn.Rewrites) == 0 {
		t.Fatalf("serial reuse-on query reused nothing; warm-up broken")
	}

	// Concurrent run on a fresh warm system: same two policies at once.
	sys := warmUp()
	qOn, err := sys.Submit(context.Background(),
		fmt.Sprintf(twoJobScript, "conc/on"), WithOptions(Options{Reuse: true}), WithTag("reuse-on"))
	if err != nil {
		t.Fatal(err)
	}
	qOff, err := sys.Submit(context.Background(),
		fmt.Sprintf(twoJobScript, "conc/off"), WithTag("reuse-off"))
	if err != nil {
		t.Fatal(err)
	}
	rOn, err := qOn.Wait()
	if err != nil {
		t.Fatal(err)
	}
	rOff, err := qOff.Wait()
	if err != nil {
		t.Fatal(err)
	}

	// Each query saw exactly its own policy.
	if len(rOn.Rewrites) == 0 {
		t.Errorf("concurrent reuse-on query reused nothing")
	}
	if len(rOff.Rewrites) != 0 || len(rOff.Stored) != 0 {
		t.Errorf("reuse-off query leaked policy: rewrites=%d stored=%d", len(rOff.Rewrites), len(rOff.Stored))
	}
	// Byte-identical SimTime against the serial references.
	if rOn.SimTime != serialOn.SimTime {
		t.Errorf("reuse-on SimTime %v != serial %v", rOn.SimTime, serialOn.SimTime)
	}
	if rOff.SimTime != serialOff.SimTime {
		t.Errorf("reuse-off SimTime %v != serial %v", rOff.SimTime, serialOff.SimTime)
	}

	// And both produced correct rows.
	for _, res := range []*Result{rOn, rOff} {
		out := "conc/on"
		if res == rOff {
			out = "conc/off"
		}
		rows, err := res.Output(out)
		if err != nil {
			t.Fatal(err)
		}
		serialRows, err := serialOff.Output("serial/off")
		if err != nil {
			t.Fatal(err)
		}
		rows, serialRows = sorted(rows), sorted(serialRows)
		if len(rows) != len(serialRows) {
			t.Fatalf("%s rows = %v, want %v", out, rows, serialRows)
		}
		for i := range rows {
			if !tuple.Equal(rows[i], serialRows[i]) {
				t.Errorf("%s row %d = %v, want %v", out, i, rows[i], serialRows[i])
			}
		}
	}
}

// TestConcurrentStoreSamePath proves output staging: two queries with
// different results storing to one path concurrently must leave it
// holding exactly one query's complete dataset, never an interleaving
// of both queries' part files.
func TestConcurrentStoreSamePath(t *testing.T) {
	scriptA := `
a = load 'events' as (user, amount);
b = filter a by amount > 4;
store b into 'shared/out';
`
	scriptB := `
a = load 'events' as (user, amount);
c = foreach a generate user;
store c into 'shared/out';
`
	golden := func(script string) []Tuple {
		sys := newTestSystem(Options{})
		seedEvents(t, sys)
		res, err := sys.Execute(script)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := res.Output("shared/out")
		if err != nil {
			t.Fatal(err)
		}
		return sorted(rows)
	}
	wantA, wantB := golden(scriptA), golden(scriptB)

	matches := func(rows, want []Tuple) bool {
		if len(rows) != len(want) {
			return false
		}
		for i := range rows {
			if !tuple.Equal(rows[i], want[i]) {
				return false
			}
		}
		return true
	}

	sys := newTestSystem(Options{})
	seedEvents(t, sys)
	for iter := 0; iter < 5; iter++ {
		qa, err := sys.Submit(context.Background(), scriptA)
		if err != nil {
			t.Fatal(err)
		}
		qb, err := sys.Submit(context.Background(), scriptB)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := qa.Wait(); err != nil {
			t.Fatal(err)
		}
		if _, err := qb.Wait(); err != nil {
			t.Fatal(err)
		}
		rows, err := sys.ReadDataset("shared/out")
		if err != nil {
			t.Fatal(err)
		}
		rows = sorted(rows)
		if !matches(rows, wantA) && !matches(rows, wantB) {
			t.Fatalf("iter %d: shared/out holds a mixture: %v (want %v or %v)", iter, rows, wantA, wantB)
		}
	}
}

// TestStatusSnapshotsUnderStress hammers Status from a watcher while
// many tagged queries with mixed per-query options run; run with -race.
func TestStatusSnapshotsUnderStress(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxClusterJobs = 4 // exercise global admission under load
	sys := New(cfg)
	seedEvents(t, sys)

	const clients = 8
	queries := make([]*Query, clients)
	for c := 0; c < clients; c++ {
		opts := []ExecOption{WithTag(fmt.Sprintf("client-%d", c))}
		if c%2 == 0 {
			opts = append(opts, WithOptions(Options{Reuse: true, KeepWholeJobs: true}))
		}
		q, err := sys.Submit(context.Background(),
			fmt.Sprintf(twoJobScript, fmt.Sprintf("stress/c%d", c)), opts...)
		if err != nil {
			t.Fatal(err)
		}
		queries[c] = q
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // watcher: concurrent Status polling
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, q := range queries {
				st := q.Status()
				for id, s := range st.Jobs {
					if s < JobPending || s > JobCanceled {
						t.Errorf("query %s job %s: invalid state %d", st.ID, id, s)
					}
				}
			}
		}
	}()

	for c, q := range queries {
		res, err := q.Wait()
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
		if res.JobsRun+res.JobsReused == 0 {
			t.Errorf("client %d ran nothing", c)
		}
		st := q.Status()
		for id, s := range st.Jobs {
			if s != JobDone && s != JobReused {
				t.Errorf("client %d job %s final state %v", c, id, s)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestOverwrittenUserOutputNotReused guards the staging commit
// protocol: a whole-job entry registered at a user STORE path must stop
// matching once a different query renames its own result over that
// path, or reuse would silently serve the other query's data.
func TestOverwrittenUserOutputNotReused(t *testing.T) {
	const scriptA = `
a = load 'events' as (user, amount);
b = distinct a;
store b into 'pub/data';
`
	const scriptB = `
a = load 'events' as (user, amount);
c = foreach a generate user;
store c into 'pub/data';
`
	const scriptC = `
a = load 'events' as (user, amount);
b = distinct a;
g = group b by user;
s = foreach g generate group, SUM(b.amount);
store s into 'c/out';
`
	golden := func() []Tuple {
		sys := newTestSystem(Options{})
		seedEvents(t, sys)
		res, err := sys.Execute(scriptC)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := res.Output("c/out")
		if err != nil {
			t.Fatal(err)
		}
		return sorted(rows)
	}()

	sys := newTestSystem(Options{})
	seedEvents(t, sys)
	ropts := WithOptions(Options{Reuse: true, KeepWholeJobs: true})
	ctx := context.Background()
	// A publishes 'pub/data' and registers a whole-job entry for it.
	if _, err := sys.ExecuteContext(ctx, scriptA, ropts); err != nil {
		t.Fatal(err)
	}
	// Sanity: before any overwrite, C's first job whole-job reuses A's
	// published output.
	sanity, err := sys.ExecuteContext(ctx, scriptC, ropts)
	if err != nil {
		t.Fatal(err)
	}
	if sanity.JobsReused == 0 {
		t.Fatalf("pre-overwrite query reused nothing; test premise broken")
	}
	// B overwrites the path with different data.
	if _, err := sys.Execute(scriptB); err != nil {
		t.Fatal(err)
	}
	// C must not read B's data through A's stale entry.
	res, err := sys.ExecuteContext(ctx, scriptC, ropts)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.Output("c/out")
	if err != nil {
		t.Fatal(err)
	}
	rows = sorted(rows)
	if len(rows) != len(golden) {
		t.Fatalf("rows after overwrite = %v, want %v", rows, golden)
	}
	for i := range rows {
		if !tuple.Equal(rows[i], golden[i]) {
			t.Errorf("row %d = %v, want %v (reused overwritten output?)", i, rows[i], golden[i])
		}
	}
}

// TestCancelByTagConcurrent is the acceptance check for cancel-by-tag
// under concurrency: with several live queries sharing one tag
// (submitted from racing goroutines), plus finished queries that used
// the same tag and a live query under a different tag,
// Cancel(idOrTag) must hit exactly the live tag-holders — every one of
// them — and nothing else.
func TestCancelByTagConcurrent(t *testing.T) {
	sys := newTestSystem(Options{})
	seedEvents(t, sys)

	// Queries that already finished under the tag: their handles have
	// left the registry, so Cancel must not count them.
	for i := 0; i < 2; i++ {
		if _, err := sys.ExecuteContext(context.Background(),
			fmt.Sprintf(twoJobScript, fmt.Sprintf("tagdone/%d", i)),
			WithTag("nightly")); err != nil {
			t.Fatalf("finished tagged run %d: %v", i, err)
		}
	}

	const live = 4
	release := make(chan struct{})
	var running atomic.Int32
	submit := func(tag, out string) (*Query, error) {
		var once sync.Once
		return sys.Submit(context.Background(), fmt.Sprintf(twoJobScript, out),
			WithTag(tag),
			withJobObserver(func(jobID string, st JobState) {
				if st == JobRunning {
					once.Do(func() {
						running.Add(1)
						<-release // hold the first job mid-flight
					})
				}
			}))
	}

	// Race the tag-sharing submissions against each other.
	queries := make([]*Query, live)
	errs := make([]error, live)
	var wg sync.WaitGroup
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			queries[i], errs[i] = submit("nightly", fmt.Sprintf("taglive/%d", i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	other, err := submit("adhoc", "tagother/out")
	if err != nil {
		t.Fatalf("Submit adhoc: %v", err)
	}

	// Wait until every live query is provably mid-flight (first job
	// gated), so Cancel races against running work, not queued work.
	deadline := time.Now().Add(10 * time.Second)
	for running.Load() < live+1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d queries reached running", running.Load(), live+1)
		}
		time.Sleep(time.Millisecond)
	}

	// The registry sees exactly the live handles, by tag.
	byTag := map[string]int{}
	for _, q := range sys.Queries() {
		byTag[q.Tag()]++
	}
	if byTag["nightly"] != live || byTag["adhoc"] != 1 {
		t.Fatalf("live registry by tag = %v, want nightly:%d adhoc:1", byTag, live)
	}

	if n := sys.Cancel("nightly"); n != live {
		t.Fatalf("Cancel(nightly) = %d, want %d", n, live)
	}
	close(release)

	for i, q := range queries {
		if _, err := q.Wait(); !errors.Is(err, context.Canceled) {
			t.Errorf("tagged query %d: Wait err = %v, want context.Canceled", i, err)
		}
	}
	// The differently-tagged query was untouched and completes.
	res, err := other.Wait()
	if err != nil {
		t.Fatalf("adhoc query: %v", err)
	}
	if res.JobsRun != 2 {
		t.Errorf("adhoc JobsRun = %d, want 2", res.JobsRun)
	}
	// The finished tagged runs' outputs survived the cancellation.
	for i := 0; i < 2; i++ {
		if _, err := sys.ReadDataset(fmt.Sprintf("tagdone/%d", i)); err != nil {
			t.Errorf("finished tagged output %d lost: %v", i, err)
		}
	}
	// Everything matching is gone: a second sweep cancels nothing.
	if n := sys.Cancel("nightly"); n != 0 {
		t.Errorf("second Cancel(nightly) = %d, want 0", n)
	}
}
