// Package restore is the public API of the ReStore reproduction: a
// dataflow system (a Pig Latin subset compiled to MapReduce workflows),
// a laptop-scale MapReduce engine with a simulated cluster clock, and
// the ReStore extension that stores and reuses the outputs of MapReduce
// jobs and sub-jobs across queries.
//
// Quick start:
//
//	sys := restore.New(restore.DefaultConfig())
//	sys.WriteDataset("events", rows)
//	res, err := sys.Execute(`
//	    A = load 'events' as (user, amount);
//	    B = group A by user;
//	    C = foreach B generate group, SUM(A.amount);
//	    store C into 'totals';
//	`)
//	rows, err := res.Output("totals")
//
// Execute both runs the query (for real, on the embedded engine) and
// reports the simulated "time on Hadoop" for the paper's 15-node
// cluster. It is the synchronous wrapper over the query-handle API:
//
//	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
//	defer cancel()
//	q, err := sys.Submit(ctx, script,
//	    restore.WithOptions(restore.Options{Reuse: true, KeepWholeJobs: true}),
//	    restore.WithTag("dashboard-refresh"))
//	// ... q.Status() reports per-job states while the query runs ...
//	res, err := q.Wait()
//
// Submit returns immediately with a *Query handle: Wait blocks for the
// result, Done exposes a completion channel for select loops, Status
// snapshots per-job lifecycle states (pending, running, reused, done),
// and Result fetches the outcome without blocking. Cancelling the
// submission context (or exceeding its deadline) aborts the workflow
// promptly: unstarted jobs never run, in-flight jobs release their
// engine task slots, Wait returns the context's error, and nothing is
// published — each query's STORE outputs are staged in a private temp
// namespace and atomically renamed into place only when the whole
// workflow commits.
//
// Reuse is configured per query: WithOptions, WithHeuristic,
// WithWorkers and WithTag override the System's defaults for one
// submission only, so reuse-on and reuse-off queries run side by side
// on one System. Config.Options remains the default for submissions
// that pass no options.
//
// # Concurrency model
//
// A System serves many clients at once: Submit, Execute, Compile,
// WriteDataset and ReadDataset may be called concurrently from any
// number of goroutines against one System. Four layers make this safe:
//
//   - DAG scheduling. Within one workflow, jobs are scheduled over the
//     dependency DAG: independent jobs run concurrently on a bounded
//     worker pool (Config.WorkflowWorkers or WithWorkers, default
//     NumCPU), and a job starts only after every job it depends on
//     completed. Across workflows, Config.MaxClusterJobs optionally
//     caps the total number of jobs running at once (global admission).
//     The simulated time still comes from the paper's Equation 1
//     (critical path over the DAG), so concurrency changes wall time
//     only.
//
//   - Locking discipline. The repository of stored job outputs is
//     internally synchronized (entries are immutable once inserted;
//     re-registration swaps in fresh entries); the DFS is safe for
//     concurrent use; the driver's simulated clock and query counter
//     are atomic. Workflow structures are never shared: every
//     submission clones its compiled workflow, and within one execution
//     all whole-job-reuse mutations (dropping a job, redirecting its
//     dependants' loads) happen under a per-execution workflow lock,
//     before the affected dependants start.
//
//   - Per-query configuration. Each submission takes an immutable
//     snapshot of the System's options at Submit time, then applies its
//     ExecOptions. A query's configuration can never change mid-flight,
//     and queries with different options interleave freely.
//
//   - Output staging. Every query writes its user STORE outputs under
//     its private temp namespace and atomically renames them into place
//     when the workflow commits, so concurrent queries storing to the
//     same path leave it holding exactly one query's complete dataset —
//     never an interleaving of part files — and cancelled or failed
//     queries publish nothing.
//
// SetOptions, SetScales, SetSimScale and LoadRepository still take a
// write lock that waits for all in-flight queries to drain; prefer
// per-query ExecOptions for tuning, and reserve SetOptions for changing
// the defaults of a quiet System.
package restore

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/logical"
	"repro/internal/mapreduce"
	"repro/internal/mrcompile"
	"repro/internal/physical"
	"repro/internal/piglatin"
	"repro/internal/tuple"
)

// Re-exported data model types.
type (
	// Tuple is one row of a dataset.
	Tuple = tuple.Tuple
	// Value is one field of a Tuple: nil, int64, float64, string,
	// Tuple, or *Bag.
	Value = tuple.Value
	// Bag is a collection of tuples (appears in grouped results).
	Bag = tuple.Bag
)

// Options configures ReStore behaviour per workflow; see core.Options.
type Options = core.Options

// Heuristic selects which operator outputs the sub-job enumerator
// materializes.
type Heuristic = core.Heuristic

// JobState is the lifecycle of one MapReduce job within a submitted
// query, reported by Query.Status.
type JobState = core.JobState

// The job lifecycle states.
const (
	// JobPending: not yet dispatched (dependencies incomplete, or the
	// query was cancelled before the job started).
	JobPending = core.JobPending
	// JobRunning: being matched, rewritten and executed.
	JobRunning = core.JobRunning
	// JobReused: answered entirely from the repository; never ran.
	JobReused = core.JobReused
	// JobDone: executed to completion.
	JobDone = core.JobDone
	// JobFailed: execution returned an error.
	JobFailed = core.JobFailed
	// JobCanceled: aborted by context cancellation after starting.
	JobCanceled = core.JobCanceled
)

// The sub-job enumeration heuristics of the paper's Section 4.
const (
	// HeuristicOff stores no sub-jobs.
	HeuristicOff = core.HeuristicOff
	// Conservative stores outputs of size-reducing operators
	// (Project and Filter).
	Conservative = core.Conservative
	// Aggressive additionally stores outputs of expensive operators
	// (Join, Group, CoGroup).
	Aggressive = core.Aggressive
	// NoHeuristic stores the output of every physical operator.
	NoHeuristic = core.NoHeuristic
)

// Config configures a System.
type Config struct {
	// Topology is the simulated cluster (defaults to the paper's
	// 14 workers × 4 map slots × 2 reduce slots).
	Topology cluster.Topology
	// Cost is the simulated cost model.
	Cost cluster.CostModel
	// SimScale maps actual stored bytes to simulated bytes, letting
	// megabyte-scale test data stand in for the paper's 15 GB and
	// 150 GB instances.
	SimScale float64
	// RecordScale maps actual records to simulated ones (defaults to
	// SimScale).
	RecordScale float64
	// SplitSize is the simulated input split size (default 128 MiB).
	SplitSize int64
	// DefaultReducers is the reduce parallelism for statements without
	// a PARALLEL clause (default: the cluster's reduce slots).
	DefaultReducers int
	// WorkflowWorkers bounds how many MapReduce jobs of one workflow
	// run concurrently (independent jobs of the DAG only; dependencies
	// are always respected). Zero means NumCPU; 1 forces the serial
	// execution order of stock Pig. Simulated times are identical at
	// any setting. WithWorkers overrides it per query.
	WorkflowWorkers int
	// MaxClusterJobs caps how many MapReduce jobs run at once across
	// ALL concurrent queries of this System (global admission control;
	// each job holds one slot only while it executes, never across
	// dependency waits). Zero means unlimited. Like WorkflowWorkers it
	// bounds real resource use only; simulated times are unchanged.
	MaxClusterJobs int
	// Options configures ReStore (reuse off by default: the engine then
	// behaves like stock Pig/Hadoop).
	Options Options
}

// DefaultConfig returns a configuration mirroring the paper's testbed
// with ReStore disabled.
func DefaultConfig() Config {
	topo := cluster.DefaultTopology()
	return Config{
		Topology:        topo,
		Cost:            cluster.DefaultCostModel(),
		SimScale:        1,
		SplitSize:       128 << 20,
		DefaultReducers: topo.ReduceSlots(),
	}
}

// System is a live instance: a DFS, a MapReduce engine, a repository of
// stored job outputs, and the ReStore driver. Execute may be called
// concurrently from many goroutines; see the package comment for the
// concurrency model.
type System struct {
	// mu serializes reconfiguration (SetOptions, SetScales,
	// LoadRepository) against in-flight Execute calls: executions hold
	// the read side for their full duration, reconfiguration takes the
	// write side.
	mu     sync.RWMutex
	fs     *dfs.FS
	eng    *mapreduce.Engine
	repo   *core.Repository
	driver *core.Driver
	cfg    Config
	nquery atomic.Int64
}

// New creates a System.
func New(cfg Config) *System {
	if cfg.DefaultReducers <= 0 {
		if cfg.Topology.Workers > 0 {
			cfg.DefaultReducers = cfg.Topology.ReduceSlots()
		} else {
			cfg.DefaultReducers = cluster.DefaultTopology().ReduceSlots()
		}
	}
	if cfg.Cost.DiskReadBW == 0 {
		cfg.Cost = cluster.DefaultCostModel()
	}
	fs := dfs.New()
	eng := mapreduce.New(fs, mapreduce.Config{
		Topology:    cfg.Topology,
		Cost:        cfg.Cost,
		SimScale:    cfg.SimScale,
		RecordScale: cfg.RecordScale,
		SplitSize:   cfg.SplitSize,
	})
	repo := core.NewRepository()
	driver := core.NewDriver(eng, repo, cfg.Options)
	driver.Workers = cfg.WorkflowWorkers
	if cfg.MaxClusterJobs > 0 {
		driver.Admission = make(chan struct{}, cfg.MaxClusterJobs)
	}
	return &System{
		fs:     fs,
		eng:    eng,
		repo:   repo,
		driver: driver,
		cfg:    cfg,
	}
}

// FS exposes the distributed file system.
func (s *System) FS() *dfs.FS { return s.fs }

// Repository exposes the ReStore repository.
func (s *System) Repository() *core.Repository {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.repo
}

// Options returns the current ReStore options.
func (s *System) Options() Options {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.driver.Opts
}

// SetOptions reconfigures ReStore for subsequent Execute calls. It
// waits for in-flight executions to drain.
func (s *System) SetOptions(opts Options) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.driver.Opts = opts
}

// SetSimScale adjusts the byte scale-up of the simulated clock; useful
// after loading data, to size it to a target simulated volume.
func (s *System) SetSimScale(scale float64) {
	s.SetScales(scale, scale)
}

// SetScales adjusts the byte and record scale-up factors of the
// simulated clock independently. It waits for in-flight executions to
// drain before swapping the engine.
func (s *System) SetScales(simScale, recordScale float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cfg := s.eng.Config()
	cfg.SimScale = simScale
	cfg.RecordScale = recordScale
	s.eng = mapreduce.New(s.fs, cfg)
	s.driver.Engine = s.eng
}

// WriteDataset stores rows as a single-part dataset at path.
func (s *System) WriteDataset(path string, rows []Tuple) error {
	w := s.fs.Create(strings.TrimSuffix(path, "/") + "/part-00000")
	tw := tuple.NewWriter(w)
	for _, r := range rows {
		if err := tw.Write(r); err != nil {
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	return w.Close()
}

// ReadDataset returns every tuple stored under path.
func (s *System) ReadDataset(path string) ([]Tuple, error) {
	files := s.fs.List(path)
	if len(files) == 0 {
		return nil, fmt.Errorf("restore: dataset %q does not exist", path)
	}
	var out []Tuple
	for _, f := range files {
		data, err := s.fs.ReadFile(f)
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line == "" {
				continue
			}
			out = append(out, tuple.DecodeText(line))
		}
	}
	return out, nil
}

// SaveRepository persists the ReStore repository into the DFS at path,
// so a later session (LoadRepository) can keep reusing this session's
// stored outputs.
func (s *System) SaveRepository(path string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.repo.Save(s.fs, path)
}

// LoadRepository replaces the current repository with one previously
// saved at path. It waits for in-flight executions to drain.
func (s *System) LoadRepository(path string) error {
	repo, err := core.LoadRepository(s.fs, path)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.repo = repo
	s.driver.Repo = repo
	return nil
}

// Result reports one executed query.
type Result struct {
	*core.Result
	sys *System
}

// Output returns the rows of the query's STORE destination, following
// any whole-job-reuse redirection.
func (r *Result) Output(userPath string) ([]Tuple, error) {
	path := userPath
	if p, ok := r.FinalOutputs[userPath]; ok && p != "" {
		path = p
	}
	return r.sys.ReadDataset(path)
}

// Compile parses and compiles a script without executing it, returning
// the workflow's job count — useful for inspecting how a query maps to
// MapReduce jobs.
func (s *System) Compile(script string) (int, error) {
	wf, err := s.compile(script, fmt.Sprintf("tmp/c%d", s.nquery.Add(1)))
	if err != nil {
		return 0, err
	}
	return len(wf.Jobs), nil
}

func (s *System) compile(script, tempPrefix string) (*physical.Workflow, error) {
	parsed, err := piglatin.Parse(script)
	if err != nil {
		return nil, err
	}
	lp, err := logical.Build(parsed)
	if err != nil {
		return nil, err
	}
	lp = logical.Optimize(lp)
	return mrcompile.Compile(lp, mrcompile.Options{
		TempPrefix:      tempPrefix,
		DefaultReducers: s.cfg.DefaultReducers,
	})
}

// ExecOption tunes one query submission, overriding the System's
// default configuration for that query only.
type ExecOption func(*execConfig)

// execConfig is the resolved per-submission configuration: seeded from
// the System's defaults at Submit time, then adjusted by the
// submission's ExecOptions in order.
type execConfig struct {
	opts     Options
	workers  int
	tag      string
	observer func(jobID string, state JobState)
}

// WithOptions replaces the query's entire ReStore configuration,
// instead of inheriting the System's Config.Options. Apply it before
// finer-grained options like WithHeuristic when combining them.
func WithOptions(opts Options) ExecOption {
	return func(c *execConfig) { c.opts = opts }
}

// WithHeuristic overrides only the sub-job materialization heuristic.
func WithHeuristic(h Heuristic) ExecOption {
	return func(c *execConfig) { c.opts.Heuristic = h }
}

// WithWorkers overrides how many of this query's jobs may run
// concurrently (zero means NumCPU; 1 forces stock Pig's serial order).
func WithWorkers(n int) ExecOption {
	return func(c *execConfig) { c.workers = n }
}

// WithTag attaches a client-chosen label to the query, reported by
// Query.Status — useful when one dashboard multiplexes many tenants.
func WithTag(tag string) ExecOption {
	return func(c *execConfig) { c.tag = tag }
}

// withJobObserver registers a synchronous per-job lifecycle callback;
// unexported, for deterministic lifecycle tests.
func withJobObserver(fn func(jobID string, state JobState)) ExecOption {
	return func(c *execConfig) { c.observer = fn }
}

// ErrInFlight is returned by Query.Result while the query is still
// executing.
var ErrInFlight = errors.New("restore: query still executing")

// QueryStatus is a point-in-time snapshot of a submitted query.
type QueryStatus struct {
	// ID is the unique query ID ("q1", "q2", ...).
	ID string
	// Tag is the WithTag label, if any.
	Tag string
	// Done reports whether the query has finished (successfully or not).
	Done bool
	// Err is the terminal error of a finished query (nil on success or
	// while running; context.Canceled after cancellation).
	Err error
	// Jobs maps each MapReduce job ID of the compiled workflow to its
	// lifecycle state. Jobs a cancelled query never dispatched stay
	// JobPending.
	Jobs map[string]JobState
}

// Query is a handle on one submitted script: an asynchronous execution
// whose progress can be observed, whose result can be awaited, and
// whose lifetime is bound to the context passed to Submit. All methods
// are safe for concurrent use.
type Query struct {
	id  string
	tag string
	sys *System

	done chan struct{}

	mu   sync.Mutex
	jobs map[string]JobState
	res  *Result
	err  error
}

// ID returns the unique query ID.
func (q *Query) ID() string { return q.id }

// Tag returns the WithTag label, if any.
func (q *Query) Tag() string { return q.tag }

// Done returns a channel closed when the query finishes, for use in
// select loops alongside other events.
func (q *Query) Done() <-chan struct{} { return q.done }

// Wait blocks until the query finishes and returns its result. If the
// submission context was cancelled, Wait returns the context's error
// (context.Canceled or context.DeadlineExceeded).
func (q *Query) Wait() (*Result, error) {
	<-q.done
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.res, q.err
}

// Result returns the query's outcome without blocking: ErrInFlight
// while it is still executing, otherwise exactly what Wait returns.
func (q *Query) Result() (*Result, error) {
	select {
	case <-q.done:
		return q.Wait()
	default:
		return nil, ErrInFlight
	}
}

// Status snapshots the query's per-job lifecycle states.
func (q *Query) Status() QueryStatus {
	st := QueryStatus{ID: q.id, Tag: q.tag}
	select {
	case <-q.done:
		st.Done = true
	default:
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if st.Done {
		st.Err = q.err
	}
	st.Jobs = make(map[string]JobState, len(q.jobs))
	for id, s := range q.jobs {
		st.Jobs[id] = s
	}
	return st
}

// Submit parses and compiles a Pig Latin script, then starts executing
// it asynchronously, returning a Query handle immediately — before any
// MapReduce job has run. Compilation errors are returned synchronously;
// execution errors surface through Wait/Result.
//
// The query runs with an immutable configuration snapshot: the System's
// current options and worker bound, adjusted by the given ExecOptions.
// Cancelling ctx aborts the workflow promptly (unstarted jobs stay
// pending, running jobs release their engine slots, staged outputs are
// discarded) and Wait returns ctx.Err().
func (s *System) Submit(ctx context.Context, script string, opts ...ExecOption) (*Query, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	qid := fmt.Sprintf("q%d", s.nquery.Add(1))
	wf, err := s.compile(script, "tmp/"+qid)
	if err != nil {
		return nil, err
	}

	// Per-execution snapshot: the System's defaults as of now, then the
	// submission's own options. Reconfiguration after this point never
	// affects this query.
	s.mu.RLock()
	ec := execConfig{opts: s.driver.Opts, workers: s.driver.Workers}
	s.mu.RUnlock()
	for _, o := range opts {
		o(&ec)
	}

	q := &Query{
		id:   qid,
		tag:  ec.tag,
		sys:  s,
		done: make(chan struct{}),
		jobs: make(map[string]JobState, len(wf.Jobs)),
	}
	for _, j := range wf.Jobs {
		q.jobs[j.ID] = JobPending
	}

	cfg := core.ExecConfig{
		Opts:    ec.opts,
		Workers: ec.workers,
		OnJobState: func(jobID string, state JobState) {
			q.mu.Lock()
			q.jobs[jobID] = state
			q.mu.Unlock()
			if ec.observer != nil {
				ec.observer(jobID, state)
			}
		},
	}

	go func() {
		// Hold the read side for the execution's duration, as Execute
		// always did: reconfiguration (SetOptions, SetScales,
		// LoadRepository) drains in-flight queries.
		s.mu.RLock()
		defer s.mu.RUnlock()
		res, err := s.driver.ExecuteContext(ctx, wf, qid, cfg)
		q.mu.Lock()
		if err != nil {
			q.err = err
		} else {
			q.res = &Result{Result: res, sys: s}
		}
		q.mu.Unlock()
		close(q.done)
	}()
	return q, nil
}

// Execute parses, compiles, and runs a Pig Latin script through the
// ReStore pipeline, blocking until it completes: it is Submit followed
// by Wait, with no cancellation. It is safe to call from many
// goroutines at once; each call gets a unique query ID and private
// temp-path namespace.
func (s *System) Execute(script string) (*Result, error) {
	return s.ExecuteContext(context.Background(), script)
}

// ExecuteContext is Execute with a context and per-query options: it
// submits the script and waits for the result.
func (s *System) ExecuteContext(ctx context.Context, script string, opts ...ExecOption) (*Result, error) {
	q, err := s.Submit(ctx, script, opts...)
	if err != nil {
		return nil, err
	}
	return q.Wait()
}
