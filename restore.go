// Package restore is the public API of the ReStore reproduction: a
// dataflow system (a Pig Latin subset compiled to MapReduce workflows),
// a laptop-scale MapReduce engine with a simulated cluster clock, and
// the ReStore extension that stores and reuses the outputs of MapReduce
// jobs and sub-jobs across queries.
//
// Quick start:
//
//	sys := restore.New(restore.DefaultConfig())
//	sys.WriteDataset("events", rows)
//	res, err := sys.Execute(`
//	    A = load 'events' as (user, amount);
//	    B = group A by user;
//	    C = foreach B generate group, SUM(A.amount);
//	    store C into 'totals';
//	`)
//	rows, err := res.Output("totals")
//
// Execute both runs the query (for real, on the embedded engine) and
// reports the simulated "time on Hadoop" for the paper's 15-node
// cluster. It is the synchronous wrapper over the query-handle API:
//
//	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
//	defer cancel()
//	q, err := sys.Submit(ctx, script,
//	    restore.WithOptions(restore.Options{Reuse: true, KeepWholeJobs: true}),
//	    restore.WithTag("dashboard-refresh"))
//	// ... q.Status() reports per-job states while the query runs ...
//	res, err := q.Wait()
//
// Submit returns immediately with a *Query handle: Wait blocks for the
// result, Done exposes a completion channel for select loops, Status
// snapshots per-job lifecycle states (pending, running, reused, done),
// and Result fetches the outcome without blocking. Cancelling the
// submission context (or exceeding its deadline) aborts the workflow
// promptly: unstarted jobs never run, in-flight jobs release their
// engine task slots, Wait returns the context's error, and nothing is
// published — each query's STORE outputs are staged in a private temp
// namespace and atomically renamed into place only when the whole
// workflow commits.
//
// Reuse is configured per query: WithOptions, WithHeuristic,
// WithWorkers and WithTag override the System's defaults for one
// submission only, so reuse-on and reuse-off queries run side by side
// on one System. Config.Options remains the default for submissions
// that pass no options.
//
// # Concurrency model
//
// A System serves many clients at once: Submit, Execute, Compile,
// WriteDataset and ReadDataset may be called concurrently from any
// number of goroutines against one System. Four layers make this safe:
//
//   - DAG scheduling. Within one workflow, jobs are scheduled over the
//     dependency DAG: independent jobs run concurrently on a bounded
//     worker pool (Config.WorkflowWorkers or WithWorkers, default
//     NumCPU), and a job starts only after every job it depends on
//     completed. Across workflows, Config.MaxClusterJobs optionally
//     caps the total number of jobs running at once (global admission).
//     The simulated time still comes from the paper's Equation 1
//     (critical path over the DAG), so concurrency changes wall time
//     only.
//
//   - Locking discipline. The repository of stored job outputs is
//     internally synchronized (entries are immutable once inserted;
//     re-registration swaps in fresh entries); the DFS is safe for
//     concurrent use; the driver's simulated clock and query counter
//     are atomic. Workflow structures are never shared: every
//     submission clones its compiled workflow, and within one execution
//     all whole-job-reuse mutations (dropping a job, redirecting its
//     dependants' loads) happen under a per-execution workflow lock,
//     before the affected dependants start.
//
//   - Per-query configuration. Each submission takes an immutable
//     snapshot of the System's options at Submit time, then applies its
//     ExecOptions. A query's configuration can never change mid-flight,
//     and queries with different options interleave freely.
//
//   - Output staging. Every query writes its user STORE outputs under
//     its private temp namespace and atomically renames them into place
//     when the workflow commits, so concurrent queries storing to the
//     same path leave it holding exactly one query's complete dataset —
//     never an interleaving of part files — and cancelled or failed
//     queries publish nothing.
//
// SetOptions, SetScales, SetSimScale and LoadRepository still take a
// write lock that waits for all in-flight queries to drain; prefer
// per-query ExecOptions for tuning, and reserve SetOptions for changing
// the defaults of a quiet System.
//
// # Storage management
//
// The repository of stored outputs is an actively managed shared
// resource:
//
//   - Claims. Before materializing a sub-job output, a query claims its
//     plan fingerprint; a concurrent query about to materialize the
//     same sub-job blocks until the winner commits, then rewrites
//     against the freshly committed entry instead of duplicating the
//     work. Claims are on whenever a query stores anything;
//     Options.DisableClaims restores independent materialization, and
//     Options.ClaimFallback picks the loser's behaviour when a winner
//     aborts.
//
//   - Budget. Config.MaxRepositoryBytes bounds the bytes the repository
//     retains; when exceeded, the Config.Eviction policy (reuse-window,
//     LRU, or the default cost-benefit) picks victims. Entries read by
//     in-flight rewrites are pinned and never evicted.
//
//   - Janitor. With Config.JanitorInterval > 0, a background goroutine
//     owned by the System periodically vacuums invalid entries, dead
//     queries' orphaned namespaces (restore/<qid>/…, tmp/<qid>/… — the
//     two are reserved, managed prefixes), and over-budget entries.
//     Sweep runs one pass synchronously. Close stops the janitor; a
//     closed System rejects new submissions but lets in-flight queries
//     finish.
//
// System.Queries lists the in-flight query handles, and Cancel aborts
// them by ID or tag; StorageStats reports repository usage, claim
// traffic, evictions and janitor activity.
//
// # Durability and multi-process serving
//
// With Config.Durability enabled, the repository survives restarts and
// is shared by every System recovered over the same DFS:
//
//   - Event log. Every repository mutation appends a record — entry
//     metadata, fingerprint, signature footprint, scan position, and
//     the plan as an opaque blob — to an append-only log on the DFS
//     before the mutation is acknowledged; periodic compaction folds
//     the log into a manifest via write-temp-then-rename. Recover
//     replays manifest + log, rebuilding the signature index from the
//     persisted footprints without decoding a single stored plan
//     (plans decode lazily on first use by a containment traversal).
//     A crash at any boundary recovers to exactly the acknowledged
//     state.
//
//   - Claim leases. Materialization claims are backed by TTL'd lease
//     records with fencing versions in a locks namespace on the DFS, so
//     two processes about to materialize the same sub-job resolve to
//     one winner; the loser waits on the lease, folds the winner's log
//     records into its own repository, and reuses the committed entry.
//     Options.DisableClaims and Options.ClaimFallback behave exactly as
//     they do in-process. The janitor reaps expired leases, so a
//     crashed process's in-flight claims unblock its peers within the
//     TTL.
//
// Each recovered System gets a process-unique writer identity: query
// IDs, repository entry IDs and the janitor's orphan sweep are scoped
// by it, so co-tenants never collide in the shared namespaces.
// DurabilityStats reports recovery size and log traffic; CompactLog and
// RefreshRepository expose the background maintenance on demand.
//
// # Plan matching
//
// Reuse opportunities are found through a signature index rather than
// the paper's sequential repository scan: a probe nominates only the
// entries whose signature footprint could be contained in the incoming
// job, in the same preference order the scan would visit them, so match
// cost scales with plan size instead of repository size. The two modes
// choose identical entries; Options.LinearMatch restores the scan for
// comparison. MatcherStats reports probe, candidate and traversal
// counts and the index's size.
package restore

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/logical"
	"repro/internal/mapreduce"
	"repro/internal/mrcompile"
	"repro/internal/obs"
	"repro/internal/physical"
	"repro/internal/piglatin"
	"repro/internal/tuple"
)

// Re-exported data model types.
type (
	// Tuple is one row of a dataset.
	Tuple = tuple.Tuple
	// Value is one field of a Tuple: nil, int64, float64, string,
	// Tuple, or *Bag.
	Value = tuple.Value
	// Bag is a collection of tuples (appears in grouped results).
	Bag = tuple.Bag
)

// Options configures ReStore behaviour per workflow; see core.Options.
type Options = core.Options

// Heuristic selects which operator outputs the sub-job enumerator
// materializes.
type Heuristic = core.Heuristic

// JobState is the lifecycle of one MapReduce job within a submitted
// query, reported by Query.Status.
type JobState = core.JobState

// Storage-management types; see internal/core's StorageManager.
type (
	// EvictionPolicy selects repository entries to evict when the store
	// exceeds Config.MaxRepositoryBytes.
	EvictionPolicy = core.EvictionPolicy
	// ReuseWindowPolicy evicts entries idle beyond a window first
	// (the paper's Rule 3 adapted to a budget).
	ReuseWindowPolicy = core.ReuseWindowPolicy
	// LRUPolicy evicts the least recently used entries first.
	LRUPolicy = core.LRUPolicy
	// CostBenefitPolicy evicts the entries with the least reuse benefit
	// per stored byte first (the default under a budget).
	CostBenefitPolicy = core.CostBenefitPolicy
	// StorageStats snapshots repository usage, claim-protocol traffic,
	// evictions and janitor activity.
	StorageStats = core.StorageStats
	// MatcherStats snapshots the plan-matcher subsystem: index probes
	// and candidate counts, full containment traversals, memoized
	// rejections, and the signature index's size.
	MatcherStats = core.MatcherStats
	// SweepReport reports one janitor pass.
	SweepReport = core.SweepResult
	// ClaimFallback selects a query's behaviour when a materialization
	// claim it waited on is aborted.
	ClaimFallback = core.ClaimFallback
	// DurabilityStats snapshots the durable repository: recovery size,
	// event-log traffic, compactions, and lazy plan decodes.
	DurabilityStats = core.DurabilityStats
	// LeaseStats snapshots the cross-process lease manager.
	LeaseStats = core.LeaseStats
	// BatchCacheStats snapshots the engine's decoded-dataset cache:
	// hits, misses, resident bytes, evictions, invalidations, and
	// shuffle partition replay counts.
	BatchCacheStats = mapreduce.BatchCacheStats
	// DeltaStats snapshots incremental maintenance: stored entries
	// delta-refreshed after input appends, appended bytes read, and
	// cold recompute bytes avoided.
	DeltaStats = core.DeltaStats
	// TraceSnapshot is one query's recorded span tree (see Query.Trace
	// and internal/obs for the span taxonomy).
	TraceSnapshot = obs.TraceJSON
	// TraceSpan is one span of a TraceSnapshot.
	TraceSpan = obs.SpanJSON
	// LatencySnapshot carries the system's wall-latency histograms
	// (submit→done, probe, claim-wait, refresh) with interpolated
	// p50/p95/p99 and cumulative buckets.
	LatencySnapshot = obs.LatencySnapshot
)

// ExplainTrace renders a query's trace snapshot as the human-readable
// reuse-provenance report (restore-cli -explain).
func ExplainTrace(w io.Writer, t *TraceSnapshot) { obs.Explain(w, t) }

// The claim fallback modes.
const (
	// ClaimRetry: contend for the aborted claim again (default).
	ClaimRetry = core.ClaimRetry
	// ClaimIndependent: materialize privately, without sharing.
	ClaimIndependent = core.ClaimIndependent
)

// The job lifecycle states.
const (
	// JobPending: not yet dispatched (dependencies incomplete, or the
	// query was cancelled before the job started).
	JobPending = core.JobPending
	// JobRunning: being matched, rewritten and executed.
	JobRunning = core.JobRunning
	// JobReused: answered entirely from the repository; never ran.
	JobReused = core.JobReused
	// JobDone: executed to completion.
	JobDone = core.JobDone
	// JobFailed: execution returned an error.
	JobFailed = core.JobFailed
	// JobCanceled: aborted by context cancellation after starting.
	JobCanceled = core.JobCanceled
)

// The sub-job enumeration heuristics of the paper's Section 4.
const (
	// HeuristicOff stores no sub-jobs.
	HeuristicOff = core.HeuristicOff
	// Conservative stores outputs of size-reducing operators
	// (Project and Filter).
	Conservative = core.Conservative
	// Aggressive additionally stores outputs of expensive operators
	// (Join, Group, CoGroup).
	Aggressive = core.Aggressive
	// NoHeuristic stores the output of every physical operator.
	NoHeuristic = core.NoHeuristic
)

// Config configures a System.
type Config struct {
	// Topology is the simulated cluster (defaults to the paper's
	// 14 workers × 4 map slots × 2 reduce slots).
	Topology cluster.Topology
	// Cost is the simulated cost model.
	Cost cluster.CostModel
	// SimScale maps actual stored bytes to simulated bytes, letting
	// megabyte-scale test data stand in for the paper's 15 GB and
	// 150 GB instances.
	SimScale float64
	// RecordScale maps actual records to simulated ones (defaults to
	// SimScale).
	RecordScale float64
	// SplitSize is the simulated input split size (default 128 MiB).
	SplitSize int64
	// MaxCachedBatchBytes bounds the engine's decoded-dataset batch
	// cache — the in-memory fast path that feeds repeated reads of hot
	// datasets (repository outputs, warm inputs) from resident columnar
	// batches instead of re-reading and re-parsing part files. Zero
	// selects the default (256 MiB); negative disables the cache.
	// Outputs and simulated times are identical with the cache on or
	// off.
	MaxCachedBatchBytes int64
	// DefaultReducers is the reduce parallelism for statements without
	// a PARALLEL clause (default: the cluster's reduce slots).
	DefaultReducers int
	// WorkflowWorkers bounds how many MapReduce jobs of one workflow
	// run concurrently (independent jobs of the DAG only; dependencies
	// are always respected). Zero means NumCPU; 1 forces the serial
	// execution order of stock Pig. Simulated times are identical at
	// any setting. WithWorkers overrides it per query.
	WorkflowWorkers int
	// MaxClusterJobs caps how many MapReduce jobs run at once across
	// ALL concurrent queries of this System (global admission control;
	// each job holds one slot only while it executes, never across
	// dependency waits). Zero means unlimited. Like WorkflowWorkers it
	// bounds real resource use only; simulated times are unchanged.
	MaxClusterJobs int
	// MaxRepositoryBytes bounds the bytes the repository retains for
	// reuse: when a sweep finds the stored outputs over this budget,
	// the Eviction policy picks entries to drop until they fit. Zero
	// means unbounded.
	MaxRepositoryBytes int64
	// Eviction is the policy ranking entries for budget eviction; nil
	// defaults to CostBenefitPolicy. ReuseWindowPolicy and LRUPolicy
	// are the alternatives.
	Eviction EvictionPolicy
	// NamespaceRoot confines ReStore's managed DFS namespaces to a
	// directory of their own: per-query sub-job outputs go under
	// "<root>/restore/<qid>" and temporaries (including staged STORE
	// outputs) under "<root>/tmp/<qid>", and the janitor's orphan sweep
	// reclaims only those two trees. The default "" keeps the legacy
	// top-level "restore/<qid>" and "tmp/<qid>" layout, in which those
	// two prefixes are reserved — user datasets written there are
	// treated as ReStore's own and may be reclaimed. Set a root (e.g.
	// ".restore") to make every user-visible path off limits to the
	// janitor.
	NamespaceRoot string
	// JanitorInterval starts a background janitor goroutine sweeping
	// the storage every interval: invalid entries (Rule 4), orphaned
	// per-query namespaces of dead queries, over-budget entries, and —
	// on a durable store — expired cross-process leases and due log
	// compactions. Zero disables the goroutine; Sweep still runs a pass
	// on demand.
	JanitorInterval time.Duration
	// NegCacheEntries bounds the cross-query negative-containment cache
	// (rejected containment tests memoized across submissions, keyed by
	// entry version and job fingerprint and invalidated on entry
	// replacement or removal). Zero keeps the default
	// (core.DefaultNegCacheSize); negative disables the cache.
	NegCacheEntries int
	// Durability makes the repository survive restarts and lets several
	// Systems opened over one DFS (see Recover) share it.
	Durability DurabilityConfig
	// Options configures ReStore (reuse off by default: the engine then
	// behaves like stock Pig/Hadoop).
	Options Options
}

// DurabilityConfig configures the durable repository: a crash-safe
// manifest + append-only event log on the DFS, plus cross-process claim
// leases. Zero-valued, durability is off and the repository lives in
// process memory exactly as before.
type DurabilityConfig struct {
	// Enabled turns the subsystem on: every repository mutation is
	// journaled to the DFS before it is acknowledged, recovery (Recover,
	// or opening over a DFS that already holds a log) replays
	// manifest + log — rebuilding the signature index from persisted
	// footprints without decoding any stored plan — and materialization
	// claims are backed by TTL'd lease records under "<ns-root>/locks/",
	// so Systems in different processes sharing one DFS share in-flight
	// materializations instead of duplicating them.
	Enabled bool
	// Path is the DFS directory holding the manifest and event log;
	// empty defaults to "<NamespaceRoot>/repo".
	Path string
	// CompactEvery folds the event log into a fresh manifest after this
	// many appended records (0 = default 64, negative = never compact
	// automatically).
	CompactEvery int
	// LeaseTTL bounds how long a crashed process's claims can block
	// peers (0 = default 1 minute); LeasePoll is the cross-process lease
	// polling interval (0 = default 2ms).
	LeaseTTL  time.Duration
	LeasePoll time.Duration
}

// DefaultConfig returns a configuration mirroring the paper's testbed
// with ReStore disabled.
func DefaultConfig() Config {
	topo := cluster.DefaultTopology()
	return Config{
		Topology:        topo,
		Cost:            cluster.DefaultCostModel(),
		SimScale:        1,
		SplitSize:       128 << 20,
		DefaultReducers: topo.ReduceSlots(),
	}
}

// System is a live instance: a DFS, a MapReduce engine, a repository of
// stored job outputs, and the ReStore driver. Execute may be called
// concurrently from many goroutines; see the package comment for the
// concurrency model.
type System struct {
	// mu serializes reconfiguration (SetOptions, SetScales,
	// LoadRepository) against in-flight Execute calls: executions hold
	// the read side for their full duration, reconfiguration takes the
	// write side.
	mu     sync.RWMutex
	fs     dfs.Backend
	eng    *mapreduce.Engine
	repo   *core.Repository
	store  *core.StorageManager
	driver *core.Driver
	cfg    Config
	nquery atomic.Int64

	// durable is the durability subsystem's event log (nil when
	// Config.Durability is off); qidPrefix makes query IDs unique across
	// processes sharing one DFS ("w2q3" instead of "q3").
	durable   *core.DurableLog
	qidPrefix string

	// qmu guards the in-flight query registry. A query is registered
	// before its first DFS write and deregistered only after its
	// execution fully returns, so the janitor's live-query snapshot
	// never misses a namespace that is still being written.
	qmu     sync.Mutex
	queries map[string]*Query

	closed      atomic.Bool
	janitorStop chan struct{}
	janitorDone chan struct{}
}

// New creates a System over a fresh, empty DFS.
func New(cfg Config) *System {
	s, err := Recover(cfg, dfs.New())
	if err != nil {
		// A fresh DFS holds no manifest or log to mis-decode; reaching
		// here means the configuration itself is unusable.
		panic(fmt.Sprintf("restore: New: %v", err))
	}
	return s
}

// Recover opens a System over an existing DFS. With Config.Durability
// enabled it replays the durable repository — manifest plus event log —
// rebuilding the signature index from the persisted footprints (no
// stored plan is decoded) and resuming the simulated clock past every
// persisted event; on a DFS holding no log yet, it initializes one.
// Several Systems may be recovered over one DFS concurrently: they
// share the repository through the event log and serialize sub-job
// materialization through cross-process claim leases, and each gets a
// process-unique writer identity (query IDs, entry IDs and the
// janitor's orphan sweep are all scoped by it).
//
// Without durability, Recover simply attaches a fresh in-memory
// repository to the given DFS (the legacy SaveRepository/LoadRepository
// flow still works there).
func Recover(cfg Config, fs dfs.Backend) (*System, error) {
	if cfg.DefaultReducers <= 0 {
		if cfg.Topology.Workers > 0 {
			cfg.DefaultReducers = cfg.Topology.ReduceSlots()
		} else {
			cfg.DefaultReducers = cluster.DefaultTopology().ReduceSlots()
		}
	}
	if cfg.Cost.DiskReadBW == 0 {
		cfg.Cost = cluster.DefaultCostModel()
	}
	cfg.NamespaceRoot = strings.Trim(cfg.NamespaceRoot, "/")
	eng := mapreduce.New(fs, mapreduce.Config{
		Topology:            cfg.Topology,
		Cost:                cfg.Cost,
		SimScale:            cfg.SimScale,
		RecordScale:         cfg.RecordScale,
		SplitSize:           cfg.SplitSize,
		MaxCachedBatchBytes: cfg.MaxCachedBatchBytes,
	})

	var (
		repo    *core.Repository
		durable *core.DurableLog
		leases  *core.LeaseManager
		prefix  string
	)
	if cfg.Durability.Enabled {
		root := strings.Trim(cfg.Durability.Path, "/")
		if root == "" {
			root = core.NamespacePath(cfg.NamespaceRoot, "repo")
		}
		var err error
		durable, repo, err = core.OpenDurableLog(fs, core.DurableConfig{
			Root:         root,
			CompactEvery: cfg.Durability.CompactEvery,
		})
		if err != nil {
			return nil, err
		}
		leases = core.NewLeaseManager(fs, core.NamespacePath(cfg.NamespaceRoot, "locks"),
			durable.Writer(), cfg.Durability.LeaseTTL, cfg.Durability.LeasePoll)
		durable.SetCompactLock(leases)
		prefix = durable.Writer()
	} else {
		repo = core.NewRepository()
	}
	if cfg.NegCacheEntries != 0 {
		repo.SetNegCacheSize(cfg.NegCacheEntries)
	}

	store := core.NewStorageManager(repo, fs, cfg.MaxRepositoryBytes, cfg.Eviction)
	store.SetNamespaceRoot(cfg.NamespaceRoot)
	if durable != nil {
		store.SetDurable(durable, leases)
		store.SetQueryPrefix(prefix + "q")
		store.SetPins(core.NewPinSet(fs, core.NamespacePath(cfg.NamespaceRoot, "pins"),
			durable.Writer(), cfg.Durability.LeaseTTL))
	}
	driver := core.NewDriver(eng, repo, cfg.Options)
	driver.Store = store
	driver.Workers = cfg.WorkflowWorkers
	driver.NamespaceRoot = cfg.NamespaceRoot
	if cfg.MaxClusterJobs > 0 {
		driver.Admission = make(chan struct{}, cfg.MaxClusterJobs)
	}
	if durable != nil {
		driver.ResumeClock(durable.MaxSimTime())
	}
	s := &System{
		fs:        fs,
		eng:       eng,
		repo:      repo,
		store:     store,
		driver:    driver,
		cfg:       cfg,
		durable:   durable,
		qidPrefix: prefix,
		queries:   map[string]*Query{},
	}
	if cfg.JanitorInterval > 0 {
		s.janitorStop = make(chan struct{})
		s.janitorDone = make(chan struct{})
		go s.janitor(cfg.JanitorInterval)
	}
	return s, nil
}

// janitor is the background storage sweeper: every interval it vacuums
// invalid entries, reclaims dead queries' namespaces and enforces the
// byte budget, until Close.
func (s *System) janitor(every time.Duration) {
	defer close(s.janitorDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			s.Sweep()
		}
	}
}

// Sweep runs one storage-maintenance pass synchronously — exactly what
// the background janitor runs per tick: the validity and reuse-window
// vacuum, budget eviction, and reclamation of per-query namespaces
// whose query is no longer in flight and whose data no repository entry
// references.
func (s *System) Sweep() SweepReport {
	// The early live-query snapshot must precede the manager's
	// entry-root snapshot: a query completing in between is protected
	// by whichever of the two saw it. The registry is additionally
	// re-consulted at delete time, protecting queries submitted after
	// the snapshot whose namespaces are being written mid-sweep.
	early := map[string]bool{}
	s.qmu.Lock()
	for id := range s.queries {
		early[id] = true
	}
	s.qmu.Unlock()
	live := func(qid string) bool {
		if early[qid] {
			return true
		}
		s.qmu.Lock()
		_, ok := s.queries[qid]
		s.qmu.Unlock()
		return ok
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	res := s.store.Sweep(s.driver.Now(), s.driver.Opts.EvictionWindow)
	res.OrphanDatasets, res.OrphanBytes = s.store.VacuumOrphans(live)
	return res
}

// Close stops the background janitor and marks the System closed: new
// submissions fail with ErrClosed, while queries already in flight run
// to completion (Wait on their handles to drain them). Close is
// idempotent and safe to call concurrently.
func (s *System) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	if s.janitorStop != nil {
		close(s.janitorStop)
		<-s.janitorDone
	}
	return nil
}

// StorageStats snapshots the storage manager: repository usage against
// the configured budget, claim-protocol traffic, evictions, and
// janitor activity.
func (s *System) StorageStats() StorageStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.store.Stats()
}

// MatcherStats snapshots the plan-matcher subsystem: how many indexed
// candidate probes (and linear scans) the repository has served, the
// candidate and full-traversal counts behind them, and the signature
// index's current size.
func (s *System) MatcherStats() MatcherStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.repo.MatcherStats()
}

// LeaseStats snapshots the cross-process claim-lease manager (grants,
// takeovers, reaps, fencing losses, renewals). The zero value is
// returned when durability is off: leases exist only on a durable
// store.
func (s *System) LeaseStats() LeaseStats {
	return s.StorageStats().Leases
}

// BatchCacheStats snapshots the engine's decoded-dataset cache — the
// in-memory fast path. The cache survives SetScales/SetSimScale engine
// rebuilds; the zero value is returned when the cache is disabled
// (Config.MaxCachedBatchBytes < 0).
func (s *System) BatchCacheStats() BatchCacheStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eng.CacheStats()
}

// DeltaStats snapshots the driver's incremental-maintenance counters:
// how many stored entries were delta-refreshed after their inputs grew
// by appended part files, the appended bytes those refreshes read, and
// the cold recompute bytes they avoided.
func (s *System) DeltaStats() DeltaStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.driver.DeltaStats()
}

// LatencyStats snapshots the system's wall-latency histograms:
// submit→done per completed query, matcher probes, claim waits, and
// delta refreshes, each with interpolated p50/p95/p99 and cumulative
// buckets. Histograms record for every query, traced or not.
func (s *System) LatencyStats() LatencySnapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.driver.Metrics.Snapshot()
}

// FS exposes the distributed file system.
func (s *System) FS() dfs.Backend { return s.fs }

// Repository exposes the ReStore repository.
func (s *System) Repository() *core.Repository {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.repo
}

// Options returns the current ReStore options.
func (s *System) Options() Options {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.driver.Opts
}

// SetOptions reconfigures ReStore for subsequent Execute calls. It
// waits for in-flight executions to drain.
func (s *System) SetOptions(opts Options) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.driver.Opts = opts
}

// SetSimScale adjusts the byte scale-up of the simulated clock; useful
// after loading data, to size it to a target simulated volume.
func (s *System) SetSimScale(scale float64) {
	s.SetScales(scale, scale)
}

// SetScales adjusts the byte and record scale-up factors of the
// simulated clock independently. It waits for in-flight executions to
// drain before swapping the engine.
func (s *System) SetScales(simScale, recordScale float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cfg := s.eng.Config()
	cfg.SimScale = simScale
	cfg.RecordScale = recordScale
	s.eng = mapreduce.New(s.fs, cfg)
	s.driver.Engine = s.eng
}

// WriteDataset stores rows as a single-part dataset at path.
func (s *System) WriteDataset(path string, rows []Tuple) error {
	w := s.fs.Create(strings.TrimSuffix(path, "/") + "/part-00000")
	tw := tuple.NewWriter(w)
	for _, r := range rows {
		if err := tw.Write(r); err != nil {
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	return w.Close()
}

// ReadDataset returns every tuple stored under path.
func (s *System) ReadDataset(path string) ([]Tuple, error) {
	files := s.fs.List(path)
	if len(files) == 0 {
		return nil, fmt.Errorf("restore: dataset %q does not exist", path)
	}
	var out []Tuple
	for _, f := range files {
		data, err := s.fs.ReadFile(f)
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line == "" {
				continue
			}
			out = append(out, tuple.DecodeText(line))
		}
	}
	return out, nil
}

// SaveRepository persists the ReStore repository into the DFS at path,
// so a later session (LoadRepository) can keep reusing this session's
// stored outputs.
func (s *System) SaveRepository(path string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.repo.Save(s.fs, path)
}

// LoadRepository replaces the current repository with one previously
// saved at path, rebuilding the storage manager over it. It waits for
// in-flight executions to drain. On a durable System it fails: the
// repository there is recovered from the event log (Recover), and
// swapping in an unjournaled snapshot would silently fork the durable
// state.
func (s *System) LoadRepository(path string) error {
	if s.durable != nil {
		return fmt.Errorf("restore: LoadRepository is unsupported with durability enabled; the repository is recovered from the event log")
	}
	repo, err := core.LoadRepository(s.fs, path)
	if err != nil {
		return err
	}
	if s.cfg.NegCacheEntries != 0 {
		repo.SetNegCacheSize(s.cfg.NegCacheEntries)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.repo = repo
	s.store = core.NewStorageManager(repo, s.fs, s.cfg.MaxRepositoryBytes, s.cfg.Eviction)
	s.store.SetNamespaceRoot(s.cfg.NamespaceRoot)
	s.driver.Repo = repo
	s.driver.Store = s.store
	return nil
}

// DurabilityStats snapshots the durable repository subsystem: recovery
// size, log append/replay/compaction traffic, and the crash-injection
// wedge state. The zero value is returned when durability is off.
func (s *System) DurabilityStats() DurabilityStats {
	if s.durable == nil {
		return DurabilityStats{}
	}
	return s.durable.Stats()
}

// CompactLog folds the durable event log into a fresh manifest now
// (normally this happens automatically every
// Config.Durability.CompactEvery records). A no-op without durability.
func (s *System) CompactLog() error {
	if s.durable == nil {
		return nil
	}
	return s.durable.Compact()
}

// RefreshRepository folds entries committed by other processes sharing
// this DFS into the local repository, returning how many were applied.
// Executions refresh automatically; this is for callers inspecting the
// repository between queries. A no-op without durability.
func (s *System) RefreshRepository() int {
	if s.durable == nil {
		return 0
	}
	return s.durable.Refresh()
}

// Result reports one executed query.
type Result struct {
	*core.Result
	sys *System
}

// Output returns the rows of the query's STORE destination, following
// any whole-job-reuse redirection.
func (r *Result) Output(userPath string) ([]Tuple, error) {
	path := userPath
	if p, ok := r.FinalOutputs[userPath]; ok && p != "" {
		path = p
	}
	return r.sys.ReadDataset(path)
}

// Compile parses and compiles a script without executing it, returning
// the workflow's job count — useful for inspecting how a query maps to
// MapReduce jobs.
func (s *System) Compile(script string) (int, error) {
	wf, err := s.compile(script, s.tempPrefix(fmt.Sprintf("%sc%d", s.qidPrefix, s.nquery.Add(1))))
	if err != nil {
		return 0, err
	}
	return len(wf.Jobs), nil
}

// tempPrefix is the per-query temp namespace the compiler writes
// inter-job temporaries under, honoring Config.NamespaceRoot.
func (s *System) tempPrefix(id string) string {
	return core.NamespacePath(s.cfg.NamespaceRoot, "tmp", id)
}

func (s *System) compile(script, tempPrefix string) (*physical.Workflow, error) {
	parsed, err := piglatin.Parse(script)
	if err != nil {
		return nil, err
	}
	lp, err := logical.Build(parsed)
	if err != nil {
		return nil, err
	}
	lp = logical.Optimize(lp)
	return mrcompile.Compile(lp, mrcompile.Options{
		TempPrefix:      tempPrefix,
		DefaultReducers: s.cfg.DefaultReducers,
	})
}

// ExecOption tunes one query submission, overriding the System's
// default configuration for that query only.
type ExecOption func(*execConfig)

// execConfig is the resolved per-submission configuration: seeded from
// the System's defaults at Submit time, then adjusted by the
// submission's ExecOptions in order.
type execConfig struct {
	opts     Options
	workers  int
	tag      string
	tenant   string
	observer func(jobID string, state JobState)
	progress func(jobID string, done, total int, sim time.Duration)
}

// WithOptions replaces the query's entire ReStore configuration,
// instead of inheriting the System's Config.Options. Apply it before
// finer-grained options like WithHeuristic when combining them.
func WithOptions(opts Options) ExecOption {
	return func(c *execConfig) { c.opts = opts }
}

// WithHeuristic overrides only the sub-job materialization heuristic.
func WithHeuristic(h Heuristic) ExecOption {
	return func(c *execConfig) { c.opts.Heuristic = h }
}

// WithWorkers overrides how many of this query's jobs may run
// concurrently (zero means NumCPU; 1 forces stock Pig's serial order).
func WithWorkers(n int) ExecOption {
	return func(c *execConfig) { c.workers = n }
}

// WithTag attaches a client-chosen label to the query, reported by
// Query.Status — useful when one dashboard multiplexes many tenants.
func WithTag(tag string) ExecOption {
	return func(c *execConfig) { c.tag = tag }
}

// WithTenant attaches a tenant identity to the query. The tenant is
// reported by Query.Tenant and QueryStatus, so a serving front-end
// multiplexing many clients over one System (internal/service) can
// account, list and cancel per tenant. Unlike WithTag it names who
// submitted the query rather than what the query is.
func WithTenant(tenant string) ExecOption {
	return func(c *execConfig) { c.tenant = tenant }
}

// withJobObserver registers a synchronous per-job lifecycle callback;
// unexported, for deterministic lifecycle tests.
func withJobObserver(fn func(jobID string, state JobState)) ExecOption {
	return func(c *execConfig) { c.observer = fn }
}

// withJobProgress registers a synchronous task-progress callback —
// called while the job executes, i.e. while it holds its claims and
// leases; unexported, for deterministic cross-process claim tests.
func withJobProgress(fn func(jobID string, done, total int, sim time.Duration)) ExecOption {
	return func(c *execConfig) { c.progress = fn }
}

// ErrInFlight is returned by Query.Result while the query is still
// executing.
var ErrInFlight = errors.New("restore: query still executing")

// ErrClosed is returned by Submit and Execute after System.Close.
var ErrClosed = errors.New("restore: system closed")

// JobProgress is the task-level progress of one MapReduce job within a
// submitted query.
type JobProgress struct {
	// State is the job's lifecycle state (same value as Status.Jobs).
	State JobState
	// TasksDone and TasksTotal count the job's completed map and reduce
	// tasks; both are zero until the job's input is split.
	TasksDone  int
	TasksTotal int
	// SimTime is the simulated execution time accumulated by the job's
	// completed tasks while it runs, and its final Equation 1 time once
	// done. Zero for reused jobs: their work was answered from the
	// repository.
	SimTime time.Duration
}

// QueryStatus is a point-in-time snapshot of a submitted query.
type QueryStatus struct {
	// ID is the unique query ID ("q1", "q2", ...).
	ID string
	// Tag is the WithTag label, if any.
	Tag string
	// Tenant is the WithTenant identity, if any.
	Tenant string
	// Done reports whether the query has finished (successfully or not).
	Done bool
	// Err is the terminal error of a finished query (nil on success or
	// while running; context.Canceled after cancellation).
	Err error
	// Jobs maps each MapReduce job ID of the compiled workflow to its
	// lifecycle state. Jobs a cancelled query never dispatched stay
	// JobPending.
	Jobs map[string]JobState
	// Progress maps each job ID to its task-level progress, so long
	// workflows stay observable while they run — including while the
	// claim protocol has a job waiting on another query's
	// materialization (the job shows running with no tasks done yet).
	Progress map[string]JobProgress
	// SimTimeSoFar sums the simulated execution time of the query's
	// completed and in-flight tasks across all jobs.
	SimTimeSoFar time.Duration
}

// Query is a handle on one submitted script: an asynchronous execution
// whose progress can be observed, whose result can be awaited, and
// whose lifetime is bound to the context passed to Submit. All methods
// are safe for concurrent use.
type Query struct {
	id     string
	tag    string
	tenant string
	sys    *System

	done   chan struct{}
	cancel context.CancelFunc
	trace  *obs.Trace

	mu       sync.Mutex
	jobs     map[string]JobState
	progress map[string]JobProgress
	res      *Result
	err      error
}

// ID returns the unique query ID.
func (q *Query) ID() string { return q.id }

// Tag returns the WithTag label, if any.
func (q *Query) Tag() string { return q.tag }

// Tenant returns the WithTenant identity, if any.
func (q *Query) Tenant() string { return q.tenant }

// Trace snapshots the query's span trace: submit → compile → per-job
// probe (with candidate-level reuse provenance) → claim → refresh →
// execution → commit. It may be called while the query is still
// running (open spans are closed at the snapshot instant) and returns
// nil when tracing was disabled (Options.DisableTrace).
func (q *Query) Trace() *TraceSnapshot { return q.trace.Snapshot() }

// Cancel aborts the query as if its submission context had been
// cancelled: unstarted jobs stay pending, running jobs release their
// engine slots, staged outputs are discarded, and Wait returns
// context.Canceled. Cancelling a finished query is a no-op.
func (q *Query) Cancel() { q.cancel() }

// Done returns a channel closed when the query finishes, for use in
// select loops alongside other events.
func (q *Query) Done() <-chan struct{} { return q.done }

// Wait blocks until the query finishes and returns its result. If the
// submission context was cancelled, Wait returns the context's error
// (context.Canceled or context.DeadlineExceeded).
func (q *Query) Wait() (*Result, error) {
	<-q.done
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.res, q.err
}

// Result returns the query's outcome without blocking: ErrInFlight
// while it is still executing, otherwise exactly what Wait returns.
func (q *Query) Result() (*Result, error) {
	select {
	case <-q.done:
		return q.Wait()
	default:
		return nil, ErrInFlight
	}
}

// Status snapshots the query's per-job lifecycle states and task-level
// progress.
func (q *Query) Status() QueryStatus {
	st := QueryStatus{ID: q.id, Tag: q.tag, Tenant: q.tenant}
	select {
	case <-q.done:
		st.Done = true
	default:
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if st.Done {
		st.Err = q.err
	}
	st.Jobs = make(map[string]JobState, len(q.jobs))
	st.Progress = make(map[string]JobProgress, len(q.jobs))
	for id, s := range q.jobs {
		st.Jobs[id] = s
		p := q.progress[id]
		p.State = s
		st.Progress[id] = p
		st.SimTimeSoFar += p.SimTime
	}
	return st
}

// Submit parses and compiles a Pig Latin script, then starts executing
// it asynchronously, returning a Query handle immediately — before any
// MapReduce job has run. Compilation errors are returned synchronously;
// execution errors surface through Wait/Result.
//
// The query runs with an immutable configuration snapshot: the System's
// current options and worker bound, adjusted by the given ExecOptions.
// Cancelling ctx aborts the workflow promptly (unstarted jobs stay
// pending, running jobs release their engine slots, staged outputs are
// discarded) and Wait returns ctx.Err().
func (s *System) Submit(ctx context.Context, script string, opts ...ExecOption) (*Query, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.closed.Load() {
		return nil, ErrClosed
	}
	qid := fmt.Sprintf("%sq%d", s.qidPrefix, s.nquery.Add(1))

	// Per-execution snapshot: the System's defaults as of now, then the
	// submission's own options. Resolved before compilation so the
	// trace — which wants a compile span — knows whether this query is
	// traced. Reconfiguration after this point never affects this
	// query.
	s.mu.RLock()
	ec := execConfig{opts: s.driver.Opts, workers: s.driver.Workers}
	s.mu.RUnlock()
	for _, o := range opts {
		o(&ec)
	}

	var tr *obs.Trace
	rootSpan := obs.NoSpan
	if !ec.opts.DisableTrace {
		tr = obs.NewTrace(qid, ec.opts.TraceTasks)
		rootSpan = tr.Start(obs.NoSpan, obs.KindSubmit, qid)
	}
	compileSpan := tr.Start(rootSpan, obs.KindCompile, "")
	wf, err := s.compile(script, s.tempPrefix(qid))
	tr.End(compileSpan)
	if err != nil {
		return nil, err
	}

	// The execution runs under a cancellable child of the caller's
	// context, so the handle (and the System's Cancel) can abort it.
	qctx, cancel := context.WithCancel(ctx)
	q := &Query{
		id:       qid,
		tag:      ec.tag,
		tenant:   ec.tenant,
		sys:      s,
		done:     make(chan struct{}),
		cancel:   cancel,
		trace:    tr,
		jobs:     make(map[string]JobState, len(wf.Jobs)),
		progress: make(map[string]JobProgress, len(wf.Jobs)),
	}
	for _, j := range wf.Jobs {
		q.jobs[j.ID] = JobPending
	}

	cfg := core.ExecConfig{
		Opts:    ec.opts,
		Workers: ec.workers,
		Trace:   tr,
		OnJobState: func(jobID string, state JobState) {
			q.mu.Lock()
			q.jobs[jobID] = state
			q.mu.Unlock()
			if ec.observer != nil {
				ec.observer(jobID, state)
			}
		},
		OnJobProgress: func(jobID string, done, total int, sim time.Duration) {
			q.mu.Lock()
			p := q.progress[jobID]
			p.TasksDone, p.TasksTotal, p.SimTime = done, total, sim
			q.progress[jobID] = p
			q.mu.Unlock()
			if ec.progress != nil {
				ec.progress(jobID, done, total, sim)
			}
		},
	}

	// Register the handle before the first DFS write so the janitor's
	// live-query snapshot always covers the namespace being written;
	// deregistration happens only after the execution fully returns.
	s.qmu.Lock()
	s.queries[qid] = q
	s.qmu.Unlock()

	go func() {
		// Hold the read side for the execution's duration, as Execute
		// always did: reconfiguration (SetOptions, SetScales,
		// LoadRepository) drains in-flight queries.
		s.mu.RLock()
		res, err := s.driver.ExecuteContext(qctx, wf, qid, cfg)
		s.mu.RUnlock()
		s.qmu.Lock()
		delete(s.queries, qid)
		s.qmu.Unlock()
		cancel() // release the context's resources
		if err != nil {
			tr.Note(rootSpan, "failed: "+err.Error())
		}
		tr.End(rootSpan)
		q.mu.Lock()
		if err != nil {
			q.err = err
		} else {
			q.res = &Result{Result: res, sys: s}
		}
		q.mu.Unlock()
		close(q.done)
	}()
	return q, nil
}

// Queries returns the in-flight query handles, sorted by ID. A handle
// leaves the registry only when its execution has fully finished, so a
// returned handle may report Done by the time it is inspected.
func (s *System) Queries() []*Query {
	s.qmu.Lock()
	out := make([]*Query, 0, len(s.queries))
	for _, q := range s.queries {
		out = append(out, q)
	}
	s.qmu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].id, out[j].id
		if len(a) != len(b) {
			return len(a) < len(b) // q2 before q10
		}
		return a < b
	})
	return out
}

// Cancel aborts every in-flight query whose ID or tag equals idOrTag
// and returns how many were cancelled.
func (s *System) Cancel(idOrTag string) int {
	n := 0
	for _, q := range s.Queries() {
		if q.id == idOrTag || (q.tag != "" && q.tag == idOrTag) {
			q.Cancel()
			n++
		}
	}
	return n
}

// Execute parses, compiles, and runs a Pig Latin script through the
// ReStore pipeline, blocking until it completes: it is Submit followed
// by Wait, with no cancellation. It is safe to call from many
// goroutines at once; each call gets a unique query ID and private
// temp-path namespace.
func (s *System) Execute(script string) (*Result, error) {
	return s.ExecuteContext(context.Background(), script)
}

// ExecuteContext is Execute with a context and per-query options: it
// submits the script and waits for the result.
func (s *System) ExecuteContext(ctx context.Context, script string, opts ...ExecOption) (*Result, error) {
	q, err := s.Submit(ctx, script, opts...)
	if err != nil {
		return nil, err
	}
	return q.Wait()
}
