// Package restore is the public API of the ReStore reproduction: a
// dataflow system (a Pig Latin subset compiled to MapReduce workflows),
// a laptop-scale MapReduce engine with a simulated cluster clock, and
// the ReStore extension that stores and reuses the outputs of MapReduce
// jobs and sub-jobs across queries.
//
// Quick start:
//
//	sys := restore.New(restore.DefaultConfig())
//	sys.WriteDataset("events", rows)
//	res, err := sys.Execute(`
//	    A = load 'events' as (user, amount);
//	    B = group A by user;
//	    C = foreach B generate group, SUM(A.amount);
//	    store C into 'totals';
//	`)
//	rows, err := res.Output("totals")
//
// Execute both runs the query (for real, on the embedded engine) and
// reports the simulated "time on Hadoop" for the paper's 15-node
// cluster. Configure reuse through Config.Options: enable
// Options.Reuse, pick a sub-job materialization heuristic, and repeated
// or overlapping queries get rewritten to read previously stored
// results instead of recomputing them.
//
// # Concurrency model
//
// A System serves many clients at once: Execute (and Compile,
// WriteDataset, ReadDataset) may be called concurrently from any number
// of goroutines against one System. Three layers make this safe:
//
//   - DAG scheduling. Within one workflow, jobs are scheduled over the
//     dependency DAG: independent jobs run concurrently on a bounded
//     worker pool (Config.WorkflowWorkers, default NumCPU), and a job
//     starts only after every job it depends on completed. The
//     simulated time still comes from the paper's Equation 1 (critical
//     path over the DAG), so concurrency changes wall time only.
//
//   - Locking discipline. The repository of stored job outputs is
//     internally synchronized (entries are immutable once inserted;
//     re-registration swaps in fresh entries); the DFS is safe for
//     concurrent use; the driver's simulated clock and query counter
//     are atomic. Workflow structures are never shared: every Execute
//     clones its compiled workflow, and within one execution all
//     whole-job-reuse mutations (dropping a job, redirecting its
//     dependants' loads) happen under a per-execution workflow lock,
//     before the affected dependants start.
//
//   - Reconfiguration. SetOptions, SetScales, SetSimScale and
//     LoadRepository take a write lock that waits for in-flight
//     Execute calls to drain, so options and engines never change under
//     a running query.
//
// Concurrent queries writing the same user STORE path race on the DFS
// (as they would on HDFS); give concurrent clients distinct output
// paths.
package restore

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/logical"
	"repro/internal/mapreduce"
	"repro/internal/mrcompile"
	"repro/internal/physical"
	"repro/internal/piglatin"
	"repro/internal/tuple"
)

// Re-exported data model types.
type (
	// Tuple is one row of a dataset.
	Tuple = tuple.Tuple
	// Value is one field of a Tuple: nil, int64, float64, string,
	// Tuple, or *Bag.
	Value = tuple.Value
	// Bag is a collection of tuples (appears in grouped results).
	Bag = tuple.Bag
)

// Options configures ReStore behaviour per workflow; see core.Options.
type Options = core.Options

// Heuristic selects which operator outputs the sub-job enumerator
// materializes.
type Heuristic = core.Heuristic

// The sub-job enumeration heuristics of the paper's Section 4.
const (
	// HeuristicOff stores no sub-jobs.
	HeuristicOff = core.HeuristicOff
	// Conservative stores outputs of size-reducing operators
	// (Project and Filter).
	Conservative = core.Conservative
	// Aggressive additionally stores outputs of expensive operators
	// (Join, Group, CoGroup).
	Aggressive = core.Aggressive
	// NoHeuristic stores the output of every physical operator.
	NoHeuristic = core.NoHeuristic
)

// Config configures a System.
type Config struct {
	// Topology is the simulated cluster (defaults to the paper's
	// 14 workers × 4 map slots × 2 reduce slots).
	Topology cluster.Topology
	// Cost is the simulated cost model.
	Cost cluster.CostModel
	// SimScale maps actual stored bytes to simulated bytes, letting
	// megabyte-scale test data stand in for the paper's 15 GB and
	// 150 GB instances.
	SimScale float64
	// RecordScale maps actual records to simulated ones (defaults to
	// SimScale).
	RecordScale float64
	// SplitSize is the simulated input split size (default 128 MiB).
	SplitSize int64
	// DefaultReducers is the reduce parallelism for statements without
	// a PARALLEL clause (default: the cluster's reduce slots).
	DefaultReducers int
	// WorkflowWorkers bounds how many MapReduce jobs of one workflow
	// run concurrently (independent jobs of the DAG only; dependencies
	// are always respected). Zero means NumCPU; 1 forces the serial
	// execution order of stock Pig. Simulated times are identical at
	// any setting.
	WorkflowWorkers int
	// Options configures ReStore (reuse off by default: the engine then
	// behaves like stock Pig/Hadoop).
	Options Options
}

// DefaultConfig returns a configuration mirroring the paper's testbed
// with ReStore disabled.
func DefaultConfig() Config {
	topo := cluster.DefaultTopology()
	return Config{
		Topology:        topo,
		Cost:            cluster.DefaultCostModel(),
		SimScale:        1,
		SplitSize:       128 << 20,
		DefaultReducers: topo.ReduceSlots(),
	}
}

// System is a live instance: a DFS, a MapReduce engine, a repository of
// stored job outputs, and the ReStore driver. Execute may be called
// concurrently from many goroutines; see the package comment for the
// concurrency model.
type System struct {
	// mu serializes reconfiguration (SetOptions, SetScales,
	// LoadRepository) against in-flight Execute calls: executions hold
	// the read side for their full duration, reconfiguration takes the
	// write side.
	mu     sync.RWMutex
	fs     *dfs.FS
	eng    *mapreduce.Engine
	repo   *core.Repository
	driver *core.Driver
	cfg    Config
	nquery atomic.Int64
}

// New creates a System.
func New(cfg Config) *System {
	if cfg.DefaultReducers <= 0 {
		if cfg.Topology.Workers > 0 {
			cfg.DefaultReducers = cfg.Topology.ReduceSlots()
		} else {
			cfg.DefaultReducers = cluster.DefaultTopology().ReduceSlots()
		}
	}
	if cfg.Cost.DiskReadBW == 0 {
		cfg.Cost = cluster.DefaultCostModel()
	}
	fs := dfs.New()
	eng := mapreduce.New(fs, mapreduce.Config{
		Topology:    cfg.Topology,
		Cost:        cfg.Cost,
		SimScale:    cfg.SimScale,
		RecordScale: cfg.RecordScale,
		SplitSize:   cfg.SplitSize,
	})
	repo := core.NewRepository()
	driver := core.NewDriver(eng, repo, cfg.Options)
	driver.Workers = cfg.WorkflowWorkers
	return &System{
		fs:     fs,
		eng:    eng,
		repo:   repo,
		driver: driver,
		cfg:    cfg,
	}
}

// FS exposes the distributed file system.
func (s *System) FS() *dfs.FS { return s.fs }

// Repository exposes the ReStore repository.
func (s *System) Repository() *core.Repository {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.repo
}

// Options returns the current ReStore options.
func (s *System) Options() Options {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.driver.Opts
}

// SetOptions reconfigures ReStore for subsequent Execute calls. It
// waits for in-flight executions to drain.
func (s *System) SetOptions(opts Options) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.driver.Opts = opts
}

// SetSimScale adjusts the byte scale-up of the simulated clock; useful
// after loading data, to size it to a target simulated volume.
func (s *System) SetSimScale(scale float64) {
	s.SetScales(scale, scale)
}

// SetScales adjusts the byte and record scale-up factors of the
// simulated clock independently. It waits for in-flight executions to
// drain before swapping the engine.
func (s *System) SetScales(simScale, recordScale float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cfg := s.eng.Config()
	cfg.SimScale = simScale
	cfg.RecordScale = recordScale
	s.eng = mapreduce.New(s.fs, cfg)
	s.driver.Engine = s.eng
}

// WriteDataset stores rows as a single-part dataset at path.
func (s *System) WriteDataset(path string, rows []Tuple) error {
	w := s.fs.Create(strings.TrimSuffix(path, "/") + "/part-00000")
	tw := tuple.NewWriter(w)
	for _, r := range rows {
		if err := tw.Write(r); err != nil {
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	return w.Close()
}

// ReadDataset returns every tuple stored under path.
func (s *System) ReadDataset(path string) ([]Tuple, error) {
	files := s.fs.List(path)
	if len(files) == 0 {
		return nil, fmt.Errorf("restore: dataset %q does not exist", path)
	}
	var out []Tuple
	for _, f := range files {
		data, err := s.fs.ReadFile(f)
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line == "" {
				continue
			}
			out = append(out, tuple.DecodeText(line))
		}
	}
	return out, nil
}

// SaveRepository persists the ReStore repository into the DFS at path,
// so a later session (LoadRepository) can keep reusing this session's
// stored outputs.
func (s *System) SaveRepository(path string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.repo.Save(s.fs, path)
}

// LoadRepository replaces the current repository with one previously
// saved at path. It waits for in-flight executions to drain.
func (s *System) LoadRepository(path string) error {
	repo, err := core.LoadRepository(s.fs, path)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.repo = repo
	s.driver.Repo = repo
	return nil
}

// Result reports one executed query.
type Result struct {
	*core.Result
	sys *System
}

// Output returns the rows of the query's STORE destination, following
// any whole-job-reuse redirection.
func (r *Result) Output(userPath string) ([]Tuple, error) {
	path := userPath
	if p, ok := r.FinalOutputs[userPath]; ok && p != "" {
		path = p
	}
	return r.sys.ReadDataset(path)
}

// Compile parses and compiles a script without executing it, returning
// the workflow's job count — useful for inspecting how a query maps to
// MapReduce jobs.
func (s *System) Compile(script string) (int, error) {
	wf, err := s.compile(script, fmt.Sprintf("tmp/c%d", s.nquery.Add(1)))
	if err != nil {
		return 0, err
	}
	return len(wf.Jobs), nil
}

func (s *System) compile(script, tempPrefix string) (*physical.Workflow, error) {
	parsed, err := piglatin.Parse(script)
	if err != nil {
		return nil, err
	}
	lp, err := logical.Build(parsed)
	if err != nil {
		return nil, err
	}
	lp = logical.Optimize(lp)
	return mrcompile.Compile(lp, mrcompile.Options{
		TempPrefix:      tempPrefix,
		DefaultReducers: s.cfg.DefaultReducers,
	})
}

// Execute parses, compiles, and runs a Pig Latin script through the
// ReStore pipeline. It is safe to call from many goroutines at once;
// each call gets a unique query ID and private temp-path namespace.
func (s *System) Execute(script string) (*Result, error) {
	qid := fmt.Sprintf("q%d", s.nquery.Add(1))
	wf, err := s.compile(script, "tmp/"+qid)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	res, err := s.driver.Execute(wf, qid)
	if err != nil {
		return nil, err
	}
	return &Result{Result: res, sys: s}, nil
}
