package restore

import (
	"fmt"
	"testing"

	"repro/internal/tuple"
)

// matcherWorkload is a small multi-query mix with shared prefixes:
// repeated aggregations, a prefix extension, a join over two datasets,
// and a fresh-dataset miss. Executed in order it exercises whole-job
// reuse, sub-plan reuse, multi-round rewrites and repository misses.
var matcherWorkload = []string{
	`
A = load 'events' as (user, amount);
B = group A by user;
C = foreach B generate group, SUM(A.amount);
store C into 'w/totals1';
`,
	`
A = load 'events' as (user, amount);
B = group A by user;
C = foreach B generate group, SUM(A.amount);
store C into 'w/totals2';
`,
	`
A = load 'events' as (user, amount);
B = group A by user;
C = foreach B generate group, SUM(A.amount);
D = filter C by $1 > 5;
store D into 'w/bigspenders';
`,
	`
A = load 'events' as (user, amount);
B = foreach A generate user;
N = load 'names' as (user, city);
M = foreach N generate user, city;
J = join M by user, B by user;
store J into 'w/joined';
`,
	`
A = load 'other' as (k, v);
G = group A by k;
S = foreach G generate group, COUNT(A);
store S into 'w/other';
`,
}

func seedMatcherData(t *testing.T, sys *System) {
	t.Helper()
	seedEvents(t, sys)
	if err := sys.WriteDataset("names", []Tuple{
		{"alice", "basel"}, {"bob", "bern"}, {"carol", "chur"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.WriteDataset("other", []Tuple{
		{"x", int64(1)}, {"y", int64(2)}, {"x", int64(3)},
	}); err != nil {
		t.Fatal(err)
	}
}

// runMatcherWorkload executes the workload serially (Workers 1, so
// entry IDs and scan order are deterministic) and returns per-run
// summaries plus the outputs of the final states.
func runMatcherWorkload(t *testing.T, linear bool) (sims []string, rewrites []string, outputs map[string][]Tuple, stats MatcherStats) {
	t.Helper()
	sys := newTestSystem(Options{
		Reuse: true, KeepWholeJobs: true, Heuristic: Aggressive, LinearMatch: linear,
	})
	seedMatcherData(t, sys)
	outputs = map[string][]Tuple{}
	for i, src := range matcherWorkload {
		res, err := sys.ExecuteContext(nil, src, WithWorkers(1))
		if err != nil {
			t.Fatalf("linear=%v run %d: %v", linear, i, err)
		}
		sims = append(sims, fmt.Sprintf("run%d:%v", i, res.SimTime))
		for _, ev := range res.Rewrites {
			rewrites = append(rewrites, fmt.Sprintf("run%d:%s->%s@%s whole=%v", i, ev.JobID, ev.EntryID, ev.Path, ev.WholeJob))
		}
		for user := range res.FinalOutputs {
			rows, err := res.Output(user)
			if err != nil {
				t.Fatalf("linear=%v run %d output %s: %v", linear, i, user, err)
			}
			outputs[user] = sorted(rows)
		}
	}
	return sims, rewrites, outputs, sys.MatcherStats()
}

// TestIndexedMatcherMatchesLinearScanEndToEnd is the system half of the
// differential suite: the whole workload must behave identically —
// per-run SimTime, the exact rewrite sequence (entries, paths,
// whole-job flags), and every output's rows — with the signature index
// and with the paper's sequential scan.
func TestIndexedMatcherMatchesLinearScanEndToEnd(t *testing.T) {
	simsIdx, rwIdx, outIdx, stIdx := runMatcherWorkload(t, false)
	simsScan, rwScan, outScan, stScan := runMatcherWorkload(t, true)

	if fmt.Sprint(simsIdx) != fmt.Sprint(simsScan) {
		t.Errorf("SimTimes diverge:\nindexed: %v\nscan:    %v", simsIdx, simsScan)
	}
	if fmt.Sprint(rwIdx) != fmt.Sprint(rwScan) {
		t.Errorf("rewrite sequences diverge:\nindexed: %v\nscan:    %v", rwIdx, rwScan)
	}
	if len(outIdx) != len(outScan) {
		t.Fatalf("output sets diverge: %d vs %d", len(outIdx), len(outScan))
	}
	for path, want := range outScan {
		got := outIdx[path]
		if len(got) != len(want) {
			t.Fatalf("%s: %d rows vs %d", path, len(got), len(want))
		}
		for i := range want {
			if !tuple.Equal(got[i], want[i]) {
				t.Errorf("%s row %d: %v vs %v", path, i, got[i], want[i])
			}
		}
	}

	// Each system used only its own mode, and both found the same
	// number of matches.
	if stIdx.Probes == 0 || stIdx.Scans != 0 {
		t.Errorf("indexed system ran scans: %+v", stIdx)
	}
	if stScan.Scans == 0 || stScan.Probes != 0 {
		t.Errorf("scan system ran probes: %+v", stScan)
	}
	if stIdx.Matches != stScan.Matches {
		t.Errorf("match counts diverge: indexed %d, scan %d", stIdx.Matches, stScan.Matches)
	}
	// The point of the index: candidates nominated must not exceed the
	// entries the scan had to visit.
	if stIdx.Candidates > stScan.ScanVisited {
		t.Errorf("index nominated %d candidates vs %d scan visits", stIdx.Candidates, stScan.ScanVisited)
	}
}

// TestNamespaceRootEndToEnd runs a storing-and-reusing workload on a
// System with Config.NamespaceRoot set: managed data must land under
// the root, user datasets named under tmp/ and restore/ must survive
// sweeps, and reuse must still work.
func TestNamespaceRootEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Options = Options{Reuse: true, KeepWholeJobs: true, Heuristic: Aggressive}
	cfg.NamespaceRoot = "sysdata"
	sys := New(cfg)
	defer sys.Close()
	seedEvents(t, sys)

	// User datasets shadowing the legacy reserved prefixes.
	if err := sys.WriteDataset("tmp/mine", []Tuple{{"keep", int64(1)}}); err != nil {
		t.Fatal(err)
	}
	if err := sys.WriteDataset("restore/archive", []Tuple{{"keep", int64(2)}}); err != nil {
		t.Fatal(err)
	}

	script := `
A = load 'events' as (user, amount);
B = group A by user;
C = foreach B generate group, SUM(A.amount);
store C into 'w/out';
`
	if _, err := sys.Execute(script); err != nil {
		t.Fatal(err)
	}
	// Managed namespaces live under the root.
	if ds := sys.FS().Datasets("sysdata"); len(ds) == 0 {
		t.Fatalf("no managed datasets under the namespace root")
	}
	res, err := sys.Execute(script)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rewrites) == 0 {
		t.Errorf("second run reused nothing under a namespace root")
	}

	sys.Sweep()
	for _, p := range []string{"tmp/mine", "restore/archive"} {
		rows, err := sys.ReadDataset(p)
		if err != nil || len(rows) != 1 {
			t.Errorf("user dataset %s lost after sweep: rows=%v err=%v", p, rows, err)
		}
	}
}
