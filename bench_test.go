// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 7), plus ablations of the design choices called
// out in DESIGN.md. Each figure benchmark runs the full experiment and
// reports its headline aggregate as custom metrics; the rendered tables
// land in the benchmark log (visible in `go test -bench . -v` output
// and in bench_output.txt).
package restore_test

import (
	"crypto/sha256"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/logical"
	"repro/internal/mrcompile"
	"repro/internal/piglatin"
	"repro/internal/pigmix"
	"repro/internal/tuple"
)

// benchReport runs one experiment per iteration and logs the table once.
func benchReport(b *testing.B, run func() (*exp.Report, error)) *exp.Report {
	b.Helper()
	var rep *exp.Report
	for i := 0; i < b.N; i++ {
		r, err := run()
		if err != nil {
			b.Fatal(err)
		}
		rep = r
	}
	b.Log("\n" + rep.String())
	return rep
}

// BenchmarkFigure9 regenerates the whole-job reuse experiment.
func BenchmarkFigure9(b *testing.B) {
	benchReport(b, exp.Figure9)
}

// BenchmarkFigure10 regenerates the sub-job reuse experiment (150GB,
// Aggressive heuristic).
func BenchmarkFigure10(b *testing.B) {
	benchReport(b, exp.Figure10)
}

// BenchmarkFigure11 regenerates the overhead-by-scale comparison.
func BenchmarkFigure11(b *testing.B) {
	benchReport(b, exp.Figure11)
}

// BenchmarkFigure12 regenerates the speedup-by-scale comparison.
func BenchmarkFigure12(b *testing.B) {
	benchReport(b, exp.Figure12)
}

// BenchmarkFigure13 regenerates the heuristic reuse-time comparison.
func BenchmarkFigure13(b *testing.B) {
	benchReport(b, exp.Figure13)
}

// BenchmarkFigure14 regenerates the heuristic generation-time
// comparison (the L6 outlier).
func BenchmarkFigure14(b *testing.B) {
	benchReport(b, exp.Figure14)
}

// BenchmarkFigure15 regenerates the whole-job vs sub-job comparison.
func BenchmarkFigure15(b *testing.B) {
	benchReport(b, exp.Figure15)
}

// BenchmarkFigure16 regenerates the Project data-reduction sweep.
func BenchmarkFigure16(b *testing.B) {
	benchReport(b, exp.Figure16)
}

// BenchmarkFigure17 regenerates the Filter selectivity sweep.
func BenchmarkFigure17(b *testing.B) {
	benchReport(b, exp.Figure17)
}

// BenchmarkTable1 regenerates the stored-bytes accounting.
func BenchmarkTable1(b *testing.B) {
	benchReport(b, exp.Table1)
}

// BenchmarkTable2 regenerates the synthetic data set's field table.
func BenchmarkTable2(b *testing.B) {
	benchReport(b, exp.Table2)
}

// pigmixSystem builds a small warm system for the ablation benches.
func pigmixSystem(b *testing.B, opts restore.Options) *restore.System {
	b.Helper()
	cfg := restore.DefaultConfig()
	cfg.Options = opts
	sys := restore.New(cfg)
	if _, err := pigmix.Generate(sys.FS(), pigmix.Scale15GB, 1); err != nil {
		b.Fatal(err)
	}
	sys.SetScales(pigmix.SimScaleFor(sys.FS(), pigmix.Scale15GB), pigmix.RecordScaleFor(pigmix.Scale15GB))
	return sys
}

func runPigMix(b *testing.B, sys *restore.System, name string) *restore.Result {
	b.Helper()
	q, err := pigmix.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sys.Execute(q.Script)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationMatchOrder quantifies repository ordering Rule 1:
// with the subsumption-ordered scan, a warm L3 run reuses the whole
// join job first; the metric reports the simulated reuse time, to be
// compared with BenchmarkFigure13's per-entry alternatives.
func BenchmarkAblationMatchOrder(b *testing.B) {
	var simTime time.Duration
	for i := 0; i < b.N; i++ {
		sys := pigmixSystem(b, restore.Options{KeepWholeJobs: true, Heuristic: restore.Conservative})
		runPigMix(b, sys, "L3")
		sys.SetOptions(restore.Options{Reuse: true})
		res := runPigMix(b, sys, "L3")
		if len(res.Rewrites) == 0 {
			b.Fatal("no rewrites")
		}
		if !res.Rewrites[0].WholeJob {
			b.Fatal("ordered repository should match the whole join job first")
		}
		simTime = res.SimTime
	}
	b.ReportMetric(simTime.Minutes(), "sim-min")
}

// BenchmarkAblationEviction measures the reuse-window eviction policy
// (Section 5 Rule 3): entries idle beyond the window are dropped and
// their storage reclaimed.
func BenchmarkAblationEviction(b *testing.B) {
	var kept, evicted int
	for i := 0; i < b.N; i++ {
		sys := pigmixSystem(b, restore.Options{Heuristic: restore.Aggressive, KeepWholeJobs: true})
		runPigMix(b, sys, "L3")
		total := sys.Repository().Len()
		removed := sys.Repository().Vacuum(sys.FS(), 1000*time.Hour, time.Hour)
		evicted = len(removed)
		kept = sys.Repository().Len()
		if kept != 0 {
			b.Fatalf("idle entries survived the window: %d", kept)
		}
		if evicted != total {
			b.Fatalf("evicted %d of %d", evicted, total)
		}
	}
	b.ReportMetric(float64(evicted), "evicted")
}

// BenchmarkAblationHeuristicStorage compares the bytes each heuristic
// materializes on L3 (the Table 1 trade-off as a single metric pair).
func BenchmarkAblationHeuristicStorage(b *testing.B) {
	for _, h := range []restore.Heuristic{restore.Conservative, restore.Aggressive, restore.NoHeuristic} {
		b.Run(h.String(), func(b *testing.B) {
			var stored int64
			for i := 0; i < b.N; i++ {
				sys := pigmixSystem(b, restore.Options{Heuristic: h})
				res := runPigMix(b, sys, "L3")
				stored = res.ExtraStoredSimBytes
			}
			b.ReportMetric(float64(stored)/(1<<30), "stored-GB")
		})
	}
}

// BenchmarkMatcherScan measures the plan matcher itself: containment
// tests of one L3 job against repositories of growing size.
func BenchmarkMatcherScan(b *testing.B) {
	sys := pigmixSystem(b, restore.Options{Heuristic: restore.NoHeuristic, KeepWholeJobs: true})
	// Populate the repository with entries from several queries.
	for _, q := range []string{"L2", "L3", "L4", "L6", "L7"} {
		runPigMix(b, sys, q)
	}
	repo := sys.Repository()
	b.Logf("repository holds %d entries", repo.Len())

	q, _ := pigmix.Get("L3")
	n, err := sys.Compile(q.Script)
	if err != nil || n == 0 {
		b.Fatalf("compile: %v", err)
	}
	// Benchmark repeated warm executions, which include the full scan +
	// rewrite cycle per job.
	sys.SetOptions(restore.Options{Reuse: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := runPigMix(b, sys, "L3")
		if len(res.Rewrites) == 0 {
			b.Fatal("no rewrites on warm repository")
		}
	}
}

// BenchmarkEngineGroupJob measures raw engine throughput on a
// group/aggregate job (rows/op are real rows processed, not simulated).
func BenchmarkEngineGroupJob(b *testing.B) {
	sys := pigmixSystem(b, restore.Options{})
	script := `
A = load 'pigmix/page_views' as (user, action, timespent, query_term, ip_addr, timestamp, estimated_revenue, page_info, page_links);
B = foreach A generate user, estimated_revenue;
G = group B by user;
S = foreach G generate group, SUM(B.estimated_revenue);
store S into 'bench/out';
`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Execute(script); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pigmix.Scale15GB.PageViews), "rows/job")
}

// BenchmarkEquationOne sanity-benches the workflow critical-path
// computation used by every experiment (Equation 1 of the paper).
func BenchmarkEquationOne(b *testing.B) {
	times := map[string]time.Duration{}
	deps := map[string][]string{}
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("j%d", i)
		times[id] = time.Duration(i) * time.Second
		if i > 0 {
			deps[id] = []string{fmt.Sprintf("j%d", i-1)}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cluster.CriticalPath(times, deps) <= 0 {
			b.Fatal("bad critical path")
		}
	}
}

// BenchmarkConcurrentClients measures the multi-client serving path: 8
// goroutines issue shared-prefix queries against one warm System with
// reuse enabled, each writing a private output. Throughput scales with
// the thread-safe repository and the DAG scheduler sharing the
// engine-wide task pool.
func BenchmarkConcurrentClients(b *testing.B) {
	cfg := restore.DefaultConfig()
	cfg.Options = restore.Options{Reuse: true, KeepWholeJobs: true, Heuristic: restore.Conservative}
	sys := restore.New(cfg)
	rows := make([]restore.Tuple, 0, 64)
	for i := 0; i < 64; i++ {
		rows = append(rows, restore.Tuple{fmt.Sprintf("u%d", i%7), int64(i)})
	}
	if err := sys.WriteDataset("events", rows); err != nil {
		b.Fatal(err)
	}
	var seq atomic.Int64
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			out := fmt.Sprintf("bench/cc/%d", seq.Add(1))
			script := fmt.Sprintf(`
a = load 'events' as (user, amount);
d = distinct a;
g = group d by user;
s = foreach g generate group, SUM(d.amount);
store s into '%s';
`, out)
			if _, err := sys.Execute(script); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkConcurrentProbe characterizes read-lock contention on the
// signature index (the PR-4 follow-up): many clients probe a warm
// repository while a churn goroutine replaces and evicts entries —
// exactly the shape of a fleet of dashboards sharing one System under
// storage pressure. Reported ops are indexed Probe calls.
func BenchmarkConcurrentProbe(b *testing.B) {
	sys := pigmixSystem(b, restore.Options{Heuristic: restore.NoHeuristic, KeepWholeJobs: true})
	for _, q := range []string{"L2", "L3", "L4", "L6", "L7"} {
		runPigMix(b, sys, q)
	}
	repo := sys.Repository()
	entries := repo.Entries()
	if len(entries) == 0 {
		b.Fatal("no entries to probe")
	}
	b.Logf("repository holds %d entries", len(entries))
	probe := entries[len(entries)/2].Plan

	// Churn: continuous same-fingerprint replacements (re-sort +
	// re-index under the write lock) and remove/re-insert cycles.
	stop := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e := entries[i%len(entries)]
			repo.Insert(&core.Entry{Plan: e.Plan, OutputPath: e.OutputPath,
				Stats: e.Stats, InputVersions: e.InputVersions, OutputVersion: e.OutputVersion})
			if i%7 == 0 {
				if removed := repo.Remove(e.ID); removed != nil {
					repo.Insert(&core.Entry{Plan: removed.Plan, OutputPath: removed.OutputPath,
						Stats: removed.Stats, InputVersions: removed.InputVersions})
				}
			}
		}
	}()

	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := 0
			repo.Probe(probe, func(e *core.Entry) bool { n++; return true })
			_ = n
		}
	})
	b.StopTimer()
	close(stop)
	<-churnDone
}

// warmRepeatSystem builds the warm-repeat workload: a tiny PigMix
// instance plus n synthetic repository entries that never match the
// probe query — the restore-cli -repeat shape, where every submission
// pays full matching against a large repository and then actually runs
// its jobs. cacheOff disables the decoded-dataset batch cache so the
// on/off sub-benchmarks isolate the fast path's contribution.
func warmRepeatSystem(b *testing.B, n int, cacheOff bool) *restore.System {
	b.Helper()
	cfg := restore.DefaultConfig()
	// Reuse on but nothing stored: every run probes the repository,
	// misses, and executes — the steady state under diverse traffic.
	cfg.Options = restore.Options{Reuse: true, Heuristic: restore.HeuristicOff}
	if cacheOff {
		cfg.MaxCachedBatchBytes = -1
	}
	sys := restore.New(cfg)
	fs := sys.FS()
	if _, err := pigmix.Generate(fs, pigmix.TinyScale, 1); err != nil {
		b.Fatal(err)
	}
	sys.SetScales(pigmix.SimScaleFor(fs, pigmix.TinyScale), pigmix.RecordScaleFor(pigmix.TinyScale))

	repo := sys.Repository()
	for i := 0; i < n; i++ {
		script, err := piglatin.Parse(fmt.Sprintf(`
A = load 'data/src%d' as (a, b, c);
B = filter A by a > %d;
store B into 'stored/e%d';
`, i, i, i))
		if err != nil {
			b.Fatal(err)
		}
		lp, err := logical.Build(script)
		if err != nil {
			b.Fatal(err)
		}
		wf, err := mrcompile.Compile(lp, mrcompile.Options{TempPrefix: fmt.Sprintf("tmp/wr%d", i), DefaultReducers: 2})
		if err != nil {
			b.Fatal(err)
		}
		out := fmt.Sprintf("stored/e%d", i)
		if err := fs.WriteFile(out+"/part-00000", []byte("1\t2\t3\n")); err != nil {
			b.Fatal(err)
		}
		in := fmt.Sprintf("data/src%d", i)
		repo.Insert(&core.Entry{
			Plan:          core.SigOf(wf.Jobs[0].Plan),
			OutputPath:    out,
			InputVersions: map[string]int64{in: fs.Version(in)},
			Stats:         core.EntryStats{InputSimBytes: int64(1000 + i), OutputSimBytes: 100},
		})
	}
	return sys
}

// BenchmarkWarmRepeat measures the steady-state per-query cost of a
// repeated PigMix query against 1k- and 10k-entry repositories, batch
// cache on and off. The CI artifact tracks two curves: cache-on must
// beat cache-off at every size (the decode is paid once, not per run),
// and the 1k→10k growth must stay ~flat (submit-path overhead does not
// scale with repository size). The hit-ratio metric lands in
// BENCH_<sha>.json via the custom-unit column.
func BenchmarkWarmRepeat(b *testing.B) {
	q, err := pigmix.Get("L2")
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{1000, 10000} {
		for _, mode := range []struct {
			name string
			off  bool
		}{{"cache", false}, {"nocache", true}} {
			b.Run(fmt.Sprintf("%s/%d", mode.name, n), func(b *testing.B) {
				sys := warmRepeatSystem(b, n, mode.off)
				if _, err := sys.Execute(q.Script); err != nil { // warm-up
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sys.Execute(q.Script); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				bc := sys.BatchCacheStats()
				b.ReportMetric(bc.HitRatio(), "hit-ratio")
			})
		}
	}
}

// BenchmarkSubmitHash compares the lease-name hash on the submit path —
// the two-seed rapidhash-style tuple.Hash64 — against the sha256 digest
// it replaced, over a realistic fingerprint string. Every submission
// names one claim lease per job, so this cost is paid on the critical
// path of warm repeats.
func BenchmarkSubmitHash(b *testing.B) {
	fp := "J1|load(page_views)>filter(a>100)>group(b)>foreach(group,COUNT)|R3|store(tmp/q1/out)"
	b.Run("hash64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = tuple.Hash64(fp, 0)
			_ = tuple.Hash64(fp, 1)
		}
	})
	b.Run("sha256", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = sha256.Sum256([]byte(fp))
		}
	})
}
