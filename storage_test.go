package restore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/tuple"
)

// oneJobScript compiles to a single MapReduce job with a parameterized
// output path; its group/aggregate prefix is the shared sub-job the
// claim protocol must materialize exactly once across queries.
const oneJobScript = `
A = load 'events' as (user, amount);
B = group A by user;
C = foreach B generate group, SUM(A.amount);
store C into '%s';
`

// claimOpts stores and reuses aggressively: the configuration under
// which concurrent same-signature queries contend for materialization.
var claimOpts = Options{Reuse: true, Heuristic: Aggressive}

// TestConcurrentSameSignatureSubmissions is the acceptance check for
// the claim protocol, run with -race: N concurrent submissions of one
// script must materialize each shared sub-job exactly once — asserted
// via the repository size and the DFS's restore/ dataset count against
// a serial baseline — and produce byte-identical outputs with the same
// multiset of SimTimes as the serial runs.
func TestConcurrentSameSignatureSubmissions(t *testing.T) {
	const clients = 4

	runAll := func(concurrent bool) (sims []time.Duration, rows [][]Tuple, datasets int, entries int) {
		sys := newTestSystem(claimOpts)
		seedEvents(t, sys)
		results := make([]*Result, clients)
		if concurrent {
			queries := make([]*Query, clients)
			for i := 0; i < clients; i++ {
				q, err := sys.Submit(context.Background(), fmt.Sprintf(oneJobScript, fmt.Sprintf("out/c%d", i)))
				if err != nil {
					t.Fatal(err)
				}
				queries[i] = q
			}
			for i, q := range queries {
				res, err := q.Wait()
				if err != nil {
					t.Fatal(err)
				}
				results[i] = res
			}
		} else {
			for i := 0; i < clients; i++ {
				res, err := sys.Execute(fmt.Sprintf(oneJobScript, fmt.Sprintf("out/c%d", i)))
				if err != nil {
					t.Fatal(err)
				}
				results[i] = res
			}
		}
		for i, res := range results {
			sims = append(sims, res.SimTime)
			out, err := res.Output(fmt.Sprintf("out/c%d", i))
			if err != nil {
				t.Fatal(err)
			}
			rows = append(rows, sorted(out))
		}
		return sims, rows, len(sys.FS().Datasets("restore")), sys.Repository().Len()
	}

	serialSims, serialRows, serialDatasets, serialEntries := runAll(false)
	concSims, concRows, concDatasets, concEntries := runAll(true)

	// Exactly-once materialization: the concurrent run wrote the same
	// number of sub-job datasets as the serial one, where later runs
	// skip everything the first materialized; and the repository holds
	// the same number of entries.
	if concDatasets != serialDatasets {
		t.Errorf("concurrent run materialized %d restore/ datasets, serial baseline %d", concDatasets, serialDatasets)
	}
	if concEntries != serialEntries {
		t.Errorf("concurrent repository has %d entries, serial baseline %d", concEntries, serialEntries)
	}

	// Outputs byte-identical to the serial runs.
	for i := range concRows {
		if len(concRows[i]) != len(serialRows[i]) {
			t.Fatalf("client %d: %d rows, serial %d", i, len(concRows[i]), len(serialRows[i]))
		}
		for j := range concRows[i] {
			if !tuple.Equal(concRows[i][j], serialRows[i][j]) {
				t.Errorf("client %d row %d = %v, serial %v", i, j, concRows[i][j], serialRows[i][j])
			}
		}
	}

	// The multiset of SimTimes matches the serial baseline: one winner
	// pays the full generating run, every loser reuses the winner's
	// freshly committed entries exactly as a serial rerun would.
	sortDurations(serialSims)
	sortDurations(concSims)
	for i := range serialSims {
		if concSims[i] != serialSims[i] {
			t.Fatalf("SimTime multiset mismatch:\nconcurrent %v\nserial     %v", concSims, serialSims)
		}
	}
}

func sortDurations(ds []time.Duration) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

// TestDisableClaimsMaterializesIndependently proves the opt-out: with
// DisableClaims, two concurrent same-script queries may each
// materialize their own sub-job copies (the pre-claim behaviour), and
// nothing blocks.
func TestDisableClaimsMaterializesIndependently(t *testing.T) {
	opts := claimOpts
	opts.DisableClaims = true
	sys := newTestSystem(opts)
	seedEvents(t, sys)
	var queries []*Query
	for i := 0; i < 2; i++ {
		q, err := sys.Submit(context.Background(), fmt.Sprintf(oneJobScript, fmt.Sprintf("ind/c%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, q)
	}
	for _, q := range queries {
		if _, err := q.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if st := sys.StorageStats(); st.ClaimWaits != 0 {
		t.Errorf("DisableClaims still waited on claims: %+v", st)
	}
}

// TestBudgetConvergence is the acceptance check for byte-budgeted
// eviction: a repository filled past Config.MaxRepositoryBytes must
// converge under the budget via each of the three policies.
func TestBudgetConvergence(t *testing.T) {
	for _, policy := range []EvictionPolicy{
		ReuseWindowPolicy{Window: time.Nanosecond},
		LRUPolicy{},
		CostBenefitPolicy{},
	} {
		t.Run(policy.Name(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Options = Options{Heuristic: NoHeuristic} // store a lot
			cfg.MaxRepositoryBytes = 1                    // any stored output overflows
			cfg.Eviction = policy
			sys := New(cfg)
			defer sys.Close()
			seedEvents(t, sys)
			for i := 0; i < 3; i++ {
				if _, err := sys.Execute(fmt.Sprintf(oneJobScript, fmt.Sprintf("budget/c%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			st := sys.StorageStats()
			if st.UsageBytes > cfg.MaxRepositoryBytes {
				t.Errorf("usage %d over budget %d (%d entries)", st.UsageBytes, cfg.MaxRepositoryBytes, st.Entries)
			}
			if st.Evictions == 0 {
				t.Errorf("no evictions recorded despite overflow")
			}
		})
	}
}

// TestJanitorReclaimsCancelledQuery is the acceptance check for orphan
// reclamation: a cancelled query's per-query namespaces must be
// reclaimed within one sweep, while a completed query's
// entry-referenced data survives.
func TestJanitorReclaimsCancelledQuery(t *testing.T) {
	sys := newTestSystem(Options{}) // store nothing: all temps are orphans
	seedEvents(t, sys)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	q, err := sys.Submit(ctx, fmt.Sprintf(twoJobScript, "jan/out"),
		withJobObserver(func(jobID string, st JobState) {
			if st == JobDone {
				cancel() // first job done: abort the second
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait err = %v, want context.Canceled", err)
	}
	ns := "tmp/" + q.ID()
	if sys.FS().Size(ns) == 0 {
		t.Fatalf("cancelled query left nothing under %s; test premise broken", ns)
	}

	rep := sys.Sweep()
	if rep.OrphanDatasets == 0 {
		t.Errorf("sweep reclaimed no orphan datasets: %+v", rep)
	}
	if sys.FS().Exists(ns) {
		t.Errorf("cancelled query's namespace %s survived the sweep", ns)
	}
}

// TestJanitorGoroutine proves the background janitor sweeps on its own:
// with a short interval configured, a cancelled query's namespace
// disappears without any explicit Sweep call, and Close stops the
// goroutine.
func TestJanitorGoroutine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JanitorInterval = 5 * time.Millisecond
	sys := New(cfg)
	defer sys.Close()
	seedEvents(t, sys)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	q, err := sys.Submit(ctx, fmt.Sprintf(twoJobScript, "jang/out"),
		withJobObserver(func(jobID string, st JobState) {
			if st == JobDone {
				cancel()
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait err = %v", err)
	}

	ns := "tmp/" + q.ID()
	deadline := time.Now().Add(5 * time.Second)
	for sys.FS().Exists(ns) {
		if time.Now().After(deadline) {
			t.Fatalf("janitor did not reclaim %s within 5s", ns)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := sys.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestJanitorSparesReferencedData: the janitor must not reclaim sub-job
// outputs and temps that repository entries reference, or reuse would
// silently break.
func TestJanitorSparesReferencedData(t *testing.T) {
	sys := newTestSystem(claimOpts)
	seedEvents(t, sys)
	r1, err := sys.Execute(fmt.Sprintf(oneJobScript, "spare/out"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Stored) == 0 {
		t.Fatal("first run stored nothing; premise broken")
	}
	sys.Sweep()
	r2, err := sys.Execute(fmt.Sprintf(oneJobScript, "spare/out2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Rewrites) == 0 {
		t.Errorf("post-sweep run reused nothing: the janitor reclaimed referenced data")
	}
}

// TestQueriesRegistryAndCancel covers the multi-tenant serving story:
// in-flight handles are listable, cancellable by ID or tag, and leave
// the registry once finished.
func TestQueriesRegistryAndCancel(t *testing.T) {
	sys := newTestSystem(Options{})
	seedEvents(t, sys)

	gates := map[string]chan struct{}{"a": make(chan struct{}), "b": make(chan struct{})}
	var once sync.Map
	submit := func(tag, out string) *Query {
		q, err := sys.Submit(context.Background(), fmt.Sprintf(twoJobScript, out),
			WithTag(tag),
			withJobObserver(func(jobID string, st JobState) {
				if st == JobRunning {
					if _, dup := once.LoadOrStore(tag, true); !dup {
						<-gates[tag] // hold the query's first job
					}
				}
			}),
		)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	qa := submit("a", "reg/a")
	qb := submit("b", "reg/b")

	list := sys.Queries()
	if len(list) != 2 || list[0].ID() != qa.ID() || list[1].ID() != qb.ID() {
		ids := make([]string, len(list))
		for i, q := range list {
			ids[i] = q.ID()
		}
		t.Fatalf("Queries() = %v, want [%s %s]", ids, qa.ID(), qb.ID())
	}

	// Cancel by tag while gated.
	if n := sys.Cancel("b"); n != 1 {
		t.Errorf("Cancel(tag b) = %d, want 1", n)
	}
	close(gates["b"])
	if _, err := qb.Wait(); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled-by-tag query err = %v", err)
	}

	// Cancel by ID.
	if n := sys.Cancel(qa.ID()); n != 1 {
		t.Errorf("Cancel(%s) = %d, want 1", qa.ID(), n)
	}
	close(gates["a"])
	if _, err := qa.Wait(); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled-by-ID query err = %v", err)
	}

	// Both finished: the registry drains.
	deadline := time.Now().Add(5 * time.Second)
	for len(sys.Queries()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("registry still holds %d queries", len(sys.Queries()))
		}
		time.Sleep(time.Millisecond)
	}
	if n := sys.Cancel("a"); n != 0 {
		t.Errorf("Cancel on a drained registry = %d, want 0", n)
	}
}

// TestCloseLifecycle: Close rejects new submissions, lets in-flight
// queries finish, and is idempotent.
func TestCloseLifecycle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JanitorInterval = time.Minute // goroutine started, then stopped by Close
	sys := New(cfg)
	seedEvents(t, sys)

	gate := make(chan struct{})
	var once sync.Once
	q, err := sys.Submit(context.Background(), fmt.Sprintf(twoJobScript, "close/out"),
		withJobObserver(func(jobID string, st JobState) {
			if st == JobRunning {
				once.Do(func() { <-gate })
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}

	if err := sys.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := sys.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := sys.Submit(context.Background(), totalsScript); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close err = %v, want ErrClosed", err)
	}
	if _, err := sys.Execute(totalsScript); !errors.Is(err, ErrClosed) {
		t.Errorf("Execute after Close err = %v, want ErrClosed", err)
	}

	// The in-flight query still runs to completion.
	close(gate)
	res, err := q.Wait()
	if err != nil {
		t.Fatalf("in-flight query after Close: %v", err)
	}
	if res.JobsRun != 2 {
		t.Errorf("JobsRun = %d, want 2", res.JobsRun)
	}
}

// TestStatusReportsProgress covers the per-job progress satellite: a
// finished job reports all tasks done and its Equation 1 SimTime; the
// query-level SimTimeSoFar accumulates across jobs.
func TestStatusReportsProgress(t *testing.T) {
	sys := newTestSystem(Options{})
	seedEvents(t, sys)

	// Pause the workflow after its first job completes so the main
	// goroutine can snapshot a genuinely mid-flight Status.
	firstDone := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	q, err := sys.Submit(context.Background(), fmt.Sprintf(twoJobScript, "prog/out"),
		withJobObserver(func(jobID string, st JobState) {
			if st == JobDone {
				once.Do(func() {
					close(firstDone)
					<-release
				})
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	<-firstDone
	midFlight := q.Status()
	close(release)
	res, err := q.Wait()
	if err != nil {
		t.Fatal(err)
	}

	st := q.Status()
	if len(st.Progress) != 2 {
		t.Fatalf("Progress has %d jobs, want 2", len(st.Progress))
	}
	var total time.Duration
	for id, p := range st.Progress {
		if p.State != JobDone {
			t.Errorf("job %s state %v, want done", id, p.State)
		}
		if p.TasksTotal == 0 || p.TasksDone != p.TasksTotal {
			t.Errorf("job %s tasks %d/%d, want all done", id, p.TasksDone, p.TasksTotal)
		}
		if p.SimTime <= 0 {
			t.Errorf("job %s SimTime = %v, want > 0", id, p.SimTime)
		}
		total += p.SimTime
	}
	if st.SimTimeSoFar != total {
		t.Errorf("SimTimeSoFar = %v, want %v", st.SimTimeSoFar, total)
	}
	// Per-job final SimTimes are the Equation 1 inputs; the workflow
	// time is their critical path, here a two-job chain.
	if total != res.SimTime {
		t.Errorf("sum of job SimTimes %v != workflow SimTime %v for a serial chain", total, res.SimTime)
	}
	// The mid-flight snapshot (taken when the first job finished) saw
	// that job's progress without waiting for the workflow.
	doneJobs := 0
	for _, p := range midFlight.Progress {
		if p.TasksTotal > 0 && p.TasksDone == p.TasksTotal {
			doneJobs++
		}
	}
	if doneJobs == 0 {
		t.Errorf("mid-flight status showed no completed job progress: %+v", midFlight.Progress)
	}
}
