// Observability tests of the per-query span traces: reuse provenance on
// warm PigMix runs, the whole-job-reused-means-never-executed shape,
// trace isolation between concurrent queries, and the differential
// guarantee that tracing never changes what the system computes.
package restore_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro"
	"repro/internal/pigmix"
	"repro/internal/tuple"
)

// spanKinds flattens a trace into kind → spans.
func spanKinds(tr *restore.TraceSnapshot) map[string][]*restore.TraceSpan {
	out := map[string][]*restore.TraceSpan{}
	var walk func(spans []*restore.TraceSpan)
	walk = func(spans []*restore.TraceSpan) {
		for _, sp := range spans {
			out[sp.Kind] = append(out[sp.Kind], sp)
			walk(sp.Children)
		}
	}
	if tr != nil {
		walk(tr.Spans)
	}
	return out
}

// TestWarmTraceProvenance repeats a PigMix query on a reuse-enabled
// system and requires the warm trace to carry the full provenance: a
// probe span that nominated at least one candidate, and a reuse span
// naming the winning entry.
func TestWarmTraceProvenance(t *testing.T) {
	sys := fastpathSystem(t, restore.Options{Reuse: true, KeepWholeJobs: true, Heuristic: restore.Aggressive})
	ctx := context.Background()
	q2, err := pigmix.Get("L2")
	if err != nil {
		t.Fatal(err)
	}

	runTraced := func() (*restore.Result, *restore.TraceSnapshot) {
		t.Helper()
		q, err := sys.Submit(ctx, q2.Script, restore.WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		res, err := q.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return res, q.Trace()
	}

	_, cold := runTraced()
	if cold == nil {
		t.Fatal("cold run recorded no trace")
	}
	kinds := spanKinds(cold)
	if len(kinds["submit"]) != 1 || len(kinds["compile"]) != 1 || len(kinds["job.exec"]) == 0 {
		t.Fatalf("cold trace kinds = %v, want submit+compile+exec", keysOf(kinds))
	}

	warm, wtr := runTraced()
	if len(warm.Rewrites) == 0 {
		t.Fatalf("warm run reused nothing; premise broken: %+v", warm)
	}
	wk := spanKinds(wtr)
	nominated := 0
	for _, c := range wk["probe.candidate"] {
		if c.Ref == "" {
			t.Errorf("candidate event without an entry ref: %+v", c)
		}
		nominated++
	}
	if nominated == 0 {
		t.Fatal("warm probe nominated no candidates")
	}
	if len(wk["reuse"]) == 0 {
		t.Fatal("warm trace has no reuse span")
	}
	wonIDs := map[string]bool{}
	for _, ev := range warm.Rewrites {
		wonIDs[ev.EntryID] = true
	}
	for _, sp := range wk["reuse"] {
		if !wonIDs[sp.Ref] {
			t.Errorf("reuse span names entry %q, not among applied rewrites %v", sp.Ref, warm.Rewrites)
		}
	}
	// The root span owns the query's simulated time.
	if wtr.Spans[0].SimMs <= 0 {
		t.Errorf("root span sim = %v, want the query's simulated time", wtr.Spans[0].SimMs)
	}
}

// twoJobTraceScript chains two MapReduce jobs so the first can be
// whole-job reused on a warm run while the second still executes.
const twoJobTraceScript = `
A = load 'events' as (user, amount);
B = group A by user;
C = foreach B generate group, COUNT(A) as n;
D = group C by n;
E = foreach D generate group, COUNT(C);
store E into '%s';
`

// TestWholeJobReuseNoExecSpan: a job answered whole from the repository
// must appear in the trace as a job span with a reuse decision and NO
// job.exec child — the observable form of "never executed".
func TestWholeJobReuseNoExecSpan(t *testing.T) {
	cfg := restore.DefaultConfig()
	cfg.Options = restore.Options{Reuse: true, KeepWholeJobs: true}
	sys := restore.New(cfg)
	rows := []tuple.Tuple{{"alice", int64(10)}, {"bob", int64(5)}, {"alice", int64(7)}}
	if err := sys.WriteDataset("events", rows); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sys.ExecuteContext(ctx, fmt.Sprintf(twoJobTraceScript, "out/a")); err != nil {
		t.Fatal(err)
	}
	q, err := sys.Submit(ctx, fmt.Sprintf(twoJobTraceScript, "out/b"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsReused == 0 {
		t.Fatalf("warm run reused no whole job; premise broken: %+v", res)
	}
	kinds := spanKinds(q.Trace())
	reusedJobs := 0
	for _, job := range kinds["job"] {
		var hasExec, hasReuse bool
		for _, c := range job.Children {
			switch c.Kind {
			case "job.exec":
				hasExec = true
			case "reuse":
				hasReuse = true
			}
		}
		if hasReuse && !hasExec {
			reusedJobs++
		}
	}
	if reusedJobs != res.JobsReused {
		t.Fatalf("trace shows %d reused-without-exec jobs, result says %d", reusedJobs, res.JobsReused)
	}
}

// TestTracedUntracedDifferential is the allocation-consciousness
// contract: tracing observes, never participates. Every PigMix query
// run cold and warm on a traced and an untraced system must report
// identical simulated times and leave byte-identical DFS state.
func TestTracedUntracedDifferential(t *testing.T) {
	opts := restore.Options{Reuse: true, KeepWholeJobs: true, Heuristic: restore.Aggressive}
	untracedOpts := opts
	untracedOpts.DisableTrace = true
	traced := fastpathSystem(t, opts)
	untraced := fastpathSystem(t, untracedOpts)
	ctx := context.Background()

	for _, name := range pigmix.Names() {
		q, err := pigmix.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 2; run++ {
			rt, err := traced.ExecuteContext(ctx, q.Script, restore.WithWorkers(1))
			if err != nil {
				t.Fatalf("%s run %d traced: %v", name, run, err)
			}
			ru, err := untraced.ExecuteContext(ctx, q.Script, restore.WithWorkers(1))
			if err != nil {
				t.Fatalf("%s run %d untraced: %v", name, run, err)
			}
			if rt.SimTime != ru.SimTime {
				t.Errorf("%s run %d: SimTime diverged: traced %v, untraced %v", name, run, rt.SimTime, ru.SimTime)
			}
			if rt.JobsReused != ru.JobsReused || len(rt.Rewrites) != len(ru.Rewrites) {
				t.Errorf("%s run %d: reuse diverged: traced %d/%d, untraced %d/%d",
					name, run, rt.JobsReused, len(rt.Rewrites), ru.JobsReused, len(ru.Rewrites))
			}
		}
	}
	diffFS(t, "traced-vs-untraced", snapshotFS(t, traced), snapshotFS(t, untraced))
}

// TestDisableTraceNilSnapshot: opting out records nothing.
func TestDisableTraceNilSnapshot(t *testing.T) {
	cfg := restore.DefaultConfig()
	cfg.Options = restore.Options{DisableTrace: true}
	sys := restore.New(cfg)
	if err := sys.WriteDataset("events", []tuple.Tuple{{"a", int64(1)}}); err != nil {
		t.Fatal(err)
	}
	q, err := sys.Submit(context.Background(), "A = load 'events' as (u, n);\nstore A into 'out/x';")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Wait(); err != nil {
		t.Fatal(err)
	}
	if tr := q.Trace(); tr != nil {
		t.Fatalf("disabled trace snapshot = %+v, want nil", tr)
	}
}

// TestConcurrentTraceIsolation runs many queries at once on one system
// and checks every trace is self-contained: its own query ID, exactly
// one root, and job refs belonging to its own execution. Run under
// -race this also exercises the span arena's locking against the
// engine's worker pool.
func TestConcurrentTraceIsolation(t *testing.T) {
	sys := fastpathSystem(t, restore.Options{Reuse: true, KeepWholeJobs: true, Heuristic: restore.Aggressive})
	ctx := context.Background()
	q2, err := pigmix.Get("L2")
	if err != nil {
		t.Fatal(err)
	}

	const n = 8
	traces := make([]*restore.TraceSnapshot, n)
	ids := make([]string, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q, err := sys.Submit(ctx, q2.Script)
			if err != nil {
				errs <- err
				return
			}
			if _, err := q.Wait(); err != nil {
				errs <- err
				return
			}
			ids[i] = q.ID()
			traces[i] = q.Trace()
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i, tr := range traces {
		if tr == nil {
			t.Fatalf("query %d recorded no trace", i)
		}
		if tr.QueryID != ids[i] {
			t.Errorf("trace %d carries query ID %s, want %s", i, tr.QueryID, ids[i])
		}
		if len(tr.Spans) != 1 || tr.Spans[0].Kind != "submit" || tr.Spans[0].Ref != ids[i] {
			t.Errorf("trace %d root = %+v, want its own submit span", i, tr.Spans[0])
		}
	}
}

func keysOf(m map[string][]*restore.TraceSpan) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
