package restore

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/tuple"
)

// stressVariants are the query shapes the concurrent clients mix: all
// share the `distinct events` prefix (so every client matches, inserts
// and reuses against the same repository entries) and diverge after it.
// %s is the per-client output path.
var stressVariants = []string{
	`
a = load 'events' as (user, amount);
b = distinct a;
c = filter b by amount > 4;
store c into '%s';
`,
	`
a = load 'events' as (user, amount);
b = distinct a;
g = group b by user;
s = foreach g generate group, SUM(b.amount);
store s into '%s';
`,
	`
a = load 'events' as (user, amount);
b = distinct a;
c = foreach b generate user;
d = distinct c;
store d into '%s';
`,
	`
a = load 'events' as (user, amount);
b = distinct a;
g = group b by user;
s = foreach g generate group, COUNT(b);
store s into '%s';
`,
}

// TestConcurrentExecuteStress is the multi-client serving check: N
// goroutines issue mixed shared-prefix queries against one
// restore.System with reuse enabled. Every client must observe exactly
// the rows a cold serial system produces, and the repository must be
// internally consistent afterwards. Run with -race in CI.
func TestConcurrentExecuteStress(t *testing.T) {
	const clients = 8
	const iters = 4

	rows := []Tuple{
		{"alice", int64(10)},
		{"bob", int64(5)},
		{"alice", int64(7)},
		{"carol", int64(2)},
		{"dave", int64(9)},
		{"erin", int64(3)},
	}

	// Golden answers from a cold, reuse-free, serial system.
	golden := make([][]Tuple, len(stressVariants))
	{
		base := newTestSystem(Options{})
		if err := base.WriteDataset("events", rows); err != nil {
			t.Fatal(err)
		}
		for v, q := range stressVariants {
			out := fmt.Sprintf("golden/v%d", v)
			res, err := base.Execute(fmt.Sprintf(q, out))
			if err != nil {
				t.Fatalf("golden variant %d: %v", v, err)
			}
			got, err := res.Output(out)
			if err != nil {
				t.Fatalf("golden variant %d output: %v", v, err)
			}
			golden[v] = sorted(got)
		}
	}

	sys := newTestSystem(Options{Reuse: true, KeepWholeJobs: true, Heuristic: Conservative})
	if err := sys.WriteDataset("events", rows); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				v := (c + i) % len(stressVariants)
				out := fmt.Sprintf("out/c%d/i%d", c, i)
				res, err := sys.Execute(fmt.Sprintf(stressVariants[v], out))
				if err != nil {
					t.Errorf("client %d iter %d: %v", c, i, err)
					return
				}
				got, err := res.Output(out)
				if err != nil {
					t.Errorf("client %d iter %d output: %v", c, i, err)
					return
				}
				got = sorted(got)
				want := golden[v]
				if len(got) != len(want) {
					t.Errorf("client %d iter %d variant %d: %v, want %v", c, i, v, got, want)
					return
				}
				for k := range want {
					if !tuple.Equal(got[k], want[k]) {
						t.Errorf("client %d iter %d variant %d row %d: %v, want %v", c, i, v, k, got[k], want[k])
					}
				}
			}
		}(c)
	}
	wg.Wait()

	// Repository consistency after the storm: the scan list and the
	// fingerprint index must agree, with no duplicate fingerprints.
	repo := sys.Repository()
	entries := repo.Entries()
	if repo.Len() != len(entries) {
		t.Errorf("Len=%d but Entries()=%d", repo.Len(), len(entries))
	}
	if len(entries) == 0 {
		t.Fatalf("stress run stored nothing")
	}
	seen := map[string]string{}
	for _, e := range entries {
		fp := e.Plan.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("duplicate fingerprint in scan list: %s and %s", prev, e.ID)
		}
		seen[fp] = e.ID
		cur := repo.Lookup(e.Plan)
		if cur == nil {
			t.Errorf("entry %s missing from fingerprint index", e.ID)
		} else if cur.Plan.Fingerprint() != fp {
			t.Errorf("index maps %s to a different plan", e.ID)
		}
	}

	// The repository must still serve rewrites after the storm.
	res, err := sys.Execute(fmt.Sprintf(stressVariants[1], "out/final"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rewrites) == 0 {
		t.Errorf("warm repository produced no rewrites after concurrent serving")
	}
}
