// Heuristics compares the paper's sub-job materialization policies
// (Section 4) on one query: the Conservative heuristic stores only
// size-reducing Project/Filter outputs, the Aggressive heuristic adds
// expensive Join/Group outputs, and No-Heuristic stores everything.
// The output shows the storage/overhead/speedup trade-off of Table 1
// and Figures 13–14 on a single workload.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/pigmix"
)

func main() {
	q, err := pigmix.Get("L3")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("query L3 (join + group/aggregate, two MapReduce jobs)")
	fmt.Printf("%-14s %10s %10s %10s %12s %9s\n",
		"heuristic", "base", "generate", "reuse", "stored(GB)", "entries")

	for _, h := range []restore.Heuristic{restore.Conservative, restore.Aggressive, restore.NoHeuristic} {
		sys := restore.New(restore.DefaultConfig())
		ctx := context.Background()
		if _, err := pigmix.Generate(sys.FS(), pigmix.Scale15GB, 5); err != nil {
			log.Fatal(err)
		}
		sys.SetScales(pigmix.SimScaleFor(sys.FS(), pigmix.Scale15GB), pigmix.RecordScaleFor(pigmix.Scale15GB))

		// Each phase picks its policy per query — the System's defaults
		// never change, so other clients would be unaffected.
		// Baseline (no ReStore).
		base, err := sys.ExecuteContext(ctx, q.Script)
		if err != nil {
			log.Fatal(err)
		}
		// Generating run: materialize sub-jobs per the heuristic.
		gen, err := sys.ExecuteContext(ctx, q.Script, restore.WithHeuristic(h))
		if err != nil {
			log.Fatal(err)
		}
		// Reuse run: rewrite against the warm repository.
		reuse, err := sys.ExecuteContext(ctx, q.Script, restore.WithOptions(restore.Options{Reuse: true}))
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-14s %10v %10v %10v %12.2f %9d\n",
			h,
			base.SimTime.Round(time.Second),
			gen.SimTime.Round(time.Second),
			reuse.SimTime.Round(time.Second),
			float64(gen.ExtraStoredSimBytes)/(1<<30),
			sys.Repository().Len())
	}

	fmt.Println("\nreading the table: generate > base is the materialization overhead;")
	fmt.Println("reuse < base is the payoff once the repository is warm.")
}
