// Dashboard simulates the workload the paper's introduction motivates:
// an analytics team runs a battery of ad-hoc queries over the same log
// data. Every query starts by loading and projecting the same
// page_views table; ReStore's Conservative heuristic materializes those
// projections once and every later query starts from them. The example
// also exercises repository eviction: when the logs are refreshed, all
// stale entries are invalidated automatically (Rule 4).
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/pigmix"
)

var dashboards = map[string]string{
	"revenue by user": `
A = load 'pigmix/page_views' as (user, action, timespent, query_term, ip_addr, timestamp, estimated_revenue, page_info, page_links);
B = foreach A generate user, estimated_revenue;
G = group B by user;
S = foreach G generate group, SUM(B.estimated_revenue);
store S into 'dash/revenue';
`,
	"time spent by user": `
A = load 'pigmix/page_views' as (user, action, timespent, query_term, ip_addr, timestamp, estimated_revenue, page_info, page_links);
B = foreach A generate user, timespent;
G = group B by user;
S = foreach G generate group, SUM(B.timespent);
store S into 'dash/timespent';
`,
	"high-value views": `
A = load 'pigmix/page_views' as (user, action, timespent, query_term, ip_addr, timestamp, estimated_revenue, page_info, page_links);
B = foreach A generate user, estimated_revenue;
F = filter B by estimated_revenue > 90;
store F into 'dash/highvalue';
`,
}

func main() {
	cfg := restore.DefaultConfig()
	cfg.Options = restore.Options{
		Reuse:          true,
		Heuristic:      restore.Conservative,
		KeepWholeJobs:  true,
		EvictionWindow: 24 * time.Hour, // drop entries unused for a simulated day
	}
	sys := restore.New(cfg)
	if _, err := pigmix.Generate(sys.FS(), pigmix.Scale15GB, 3); err != nil {
		log.Fatal(err)
	}
	sys.SetScales(pigmix.SimScaleFor(sys.FS(), pigmix.Scale15GB), pigmix.RecordScaleFor(pigmix.Scale15GB))

	order := []string{"revenue by user", "time spent by user", "high-value views"}

	fmt.Println("== morning: first refresh of each dashboard ==")
	runAll(sys, order)

	fmt.Println("\n== afternoon: dashboards refresh again (repository warm) ==")
	runAll(sys, order)

	fmt.Println("\n== next day: the logs were re-ingested ==")
	if _, err := pigmix.Generate(sys.FS(), pigmix.Scale15GB, 4); err != nil { // new seed = new data
		log.Fatal(err)
	}
	fmt.Printf("repository before refresh: %d entries\n", sys.Repository().Len())
	runAll(sys, order[:1])
	fmt.Println("stale entries were not reused (inputs changed), fresh ones stored")
}

func runAll(sys *restore.System, names []string) {
	for _, name := range names {
		res, err := sys.Execute(dashboards[name])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %8v simulated  (rewrites %d, stored %d, repo %d entries)\n",
			name, res.SimTime.Round(time.Second), len(res.Rewrites), len(res.Stored), sys.Repository().Len())
	}
}
