// Dashboard simulates the workload the paper's introduction motivates:
// an analytics team runs a battery of ad-hoc queries over the same log
// data. Every query starts by loading and projecting the same
// page_views table; ReStore's Conservative heuristic materializes those
// projections once and every later query starts from them. The example
// also exercises repository eviction: when the logs are refreshed, all
// stale entries are invalidated automatically (Rule 4).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/pigmix"
)

var dashboards = map[string]string{
	"revenue by user": `
A = load 'pigmix/page_views' as (user, action, timespent, query_term, ip_addr, timestamp, estimated_revenue, page_info, page_links);
B = foreach A generate user, estimated_revenue;
G = group B by user;
S = foreach G generate group, SUM(B.estimated_revenue);
store S into 'dash/revenue';
`,
	"time spent by user": `
A = load 'pigmix/page_views' as (user, action, timespent, query_term, ip_addr, timestamp, estimated_revenue, page_info, page_links);
B = foreach A generate user, timespent;
G = group B by user;
S = foreach G generate group, SUM(B.timespent);
store S into 'dash/timespent';
`,
	"high-value views": `
A = load 'pigmix/page_views' as (user, action, timespent, query_term, ip_addr, timestamp, estimated_revenue, page_info, page_links);
B = foreach A generate user, estimated_revenue;
F = filter B by estimated_revenue > 90;
store F into 'dash/highvalue';
`,
}

func main() {
	cfg := restore.DefaultConfig()
	cfg.Options = restore.Options{
		Reuse:          true,
		Heuristic:      restore.Conservative,
		KeepWholeJobs:  true,
		EvictionWindow: 24 * time.Hour, // drop entries unused for a simulated day
	}
	cfg.MaxClusterJobs = 8 // global admission across concurrent refreshes
	sys := restore.New(cfg)
	if _, err := pigmix.Generate(sys.FS(), pigmix.Scale15GB, 3); err != nil {
		log.Fatal(err)
	}
	sys.SetScales(pigmix.SimScaleFor(sys.FS(), pigmix.Scale15GB), pigmix.RecordScaleFor(pigmix.Scale15GB))

	order := []string{"revenue by user", "time spent by user", "high-value views"}

	fmt.Println("== morning: first refresh of each dashboard ==")
	runAll(sys, order)

	fmt.Println("\n== afternoon: dashboards refresh again (repository warm) ==")
	runAll(sys, order)

	fmt.Println("\n== next day: the logs were re-ingested ==")
	if _, err := pigmix.Generate(sys.FS(), pigmix.Scale15GB, 4); err != nil { // new seed = new data
		log.Fatal(err)
	}
	fmt.Printf("repository before refresh: %d entries\n", sys.Repository().Len())
	runAll(sys, order[:1])
	fmt.Println("stale entries were not reused (inputs changed), fresh ones stored")
}

// runAll submits every dashboard at once — one tagged query each — then
// awaits them, reporting per-job lifecycle states from the handles. A
// refresh taking longer than a minute is cancelled by the context.
func runAll(sys *restore.System, names []string) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	queries := make([]*restore.Query, len(names))
	for i, name := range names {
		q, err := sys.Submit(ctx, dashboards[name], restore.WithTag(name))
		if err != nil {
			log.Fatal(err)
		}
		queries[i] = q
	}
	for i, q := range queries {
		res, err := q.Wait()
		if err != nil {
			log.Fatal(err)
		}
		st := q.Status()
		states := map[restore.JobState]int{}
		for _, s := range st.Jobs {
			states[s]++
		}
		fmt.Printf("%-22s %8v simulated  (jobs done %d, reused %d; rewrites %d, stored %d, repo %d entries)\n",
			names[i], res.SimTime.Round(time.Second), states[restore.JobDone], states[restore.JobReused],
			len(res.Rewrites), len(res.Stored), sys.Repository().Len())
	}
}
