// Sharedprefix reproduces the paper's motivating example (Section 1/2):
// query Q1 joins page views with users; query Q2 performs the same join
// and then aggregates. With ReStore enabled, Q2's join job is answered
// entirely from Q1's stored output — the workflow shrinks from two
// MapReduce jobs to one.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/pigmix"
)

const q1 = `
A = load 'pigmix/page_views' as (user, action, timespent, query_term, ip_addr, timestamp, estimated_revenue, page_info, page_links);
B = foreach A generate user, estimated_revenue;
alpha = load 'pigmix/users' as (name, phone, address, city);
beta = foreach alpha generate name;
C = join beta by name, B by user;
store C into 'L2_out';
`

const q2 = `
A = load 'pigmix/page_views' as (user, action, timespent, query_term, ip_addr, timestamp, estimated_revenue, page_info, page_links);
B = foreach A generate user, estimated_revenue;
alpha = load 'pigmix/users' as (name, phone, address, city);
beta = foreach alpha generate name;
C = join beta by name, B by user;
D = group C by $0;
E = foreach D generate group, SUM(C.estimated_revenue);
store E into 'L3_out';
`

func main() {
	// The System's default config leaves ReStore off; each query opts
	// into its own policy at submission time.
	sys := restore.New(restore.DefaultConfig())
	ctx := context.Background()
	reuse := restore.WithOptions(restore.Options{Reuse: true, KeepWholeJobs: true})

	if _, err := pigmix.Generate(sys.FS(), pigmix.Scale15GB, 7); err != nil {
		log.Fatal(err)
	}
	sys.SetScales(pigmix.SimScaleFor(sys.FS(), pigmix.Scale15GB), pigmix.RecordScaleFor(pigmix.Scale15GB))

	fmt.Println("running Q1 (join only)…")
	r1, err := sys.ExecuteContext(ctx, q1, reuse)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Q1: %d job(s), %v simulated, stored %d repository entrie(s)\n",
		r1.JobsRun, r1.SimTime.Round(r1.SimTime/100+1), len(r1.Stored))

	fmt.Println("running Q2 (same join + aggregation)…")
	r2, err := sys.ExecuteContext(ctx, q2, reuse)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Q2: %d job(s) run, %d reused whole, %v simulated\n",
		r2.JobsRun, r2.JobsReused, r2.SimTime.Round(r2.SimTime/100+1))
	for _, ev := range r2.Rewrites {
		fmt.Printf("  rewrite: job %s reused entry %s (output %s)\n", ev.JobID, ev.EntryID, ev.Path)
	}

	// Verify against a cold system.
	cold := restore.New(restore.DefaultConfig())
	if _, err := pigmix.Generate(cold.FS(), pigmix.Scale15GB, 7); err != nil {
		log.Fatal(err)
	}
	cold.SetScales(pigmix.SimScaleFor(cold.FS(), pigmix.Scale15GB), pigmix.RecordScaleFor(pigmix.Scale15GB))
	rc, err := cold.Execute(q2)
	if err != nil {
		log.Fatal(err)
	}

	warmRows, _ := r2.Output("L3_out")
	coldRows, _ := rc.Output("L3_out")
	fmt.Printf("\nQ2 without ReStore: %v; with ReStore: %v (%.1fx)\n",
		rc.SimTime.Round(rc.SimTime/100+1), r2.SimTime.Round(r2.SimTime/100+1),
		float64(rc.SimTime)/float64(r2.SimTime))
	fmt.Printf("result sizes match: %v (%d rows)\n", len(warmRows) == len(coldRows), len(warmRows))
}
