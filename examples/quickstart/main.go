// Quickstart: load a small dataset, run a Pig Latin query on the
// embedded MapReduce engine, and read the result — with ReStore off.
// This is the minimal end-to-end use of the public API: a bounded
// synchronous run (ExecuteContext with a deadline); see the dashboard
// example for the asynchronous Submit/Status side.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	sys := restore.New(restore.DefaultConfig())

	// A tiny clickstream: user, page, seconds spent.
	rows := []restore.Tuple{
		{"alice", "home", int64(12)},
		{"bob", "search", int64(3)},
		{"alice", "checkout", int64(40)},
		{"carol", "home", int64(7)},
		{"alice", "home", int64(5)},
		{"bob", "home", int64(9)},
	}
	if err := sys.WriteDataset("clicks", rows); err != nil {
		log.Fatal(err)
	}

	// A deadline bounds the query: if the workflow were still running
	// after a minute, its remaining jobs would be cancelled and the
	// error below would be context.DeadlineExceeded.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := sys.ExecuteContext(ctx, `
A = load 'clicks' as (user, page, seconds);
B = filter A by seconds >= 5;
C = group B by user;
D = foreach C generate group, COUNT(B), SUM(B.seconds);
store D into 'engagement';
`)
	if err != nil {
		log.Fatal(err)
	}

	out, err := res.Output("engagement")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("user engagement (clicks ≥ 5s):")
	for _, r := range out {
		fmt.Printf("  %-6s sessions=%v totalSeconds=%v\n", r[0], r[1], r[2])
	}
	fmt.Printf("\nthe query compiled to %d MapReduce job(s) and would take %v on the paper's 15-node cluster\n",
		res.JobsRun, res.SimTime.Round(res.SimTime/100+1))
}
