// Service walkthrough: the multi-tenant serving path end to end, on a
// persistent disk backend.
//
// It starts a restore-server (in-process: service.NewServer over a
// System recovered from a disk-backed DFS), opens sessions for two
// tenants, and submits the same Pig Latin query from both over HTTP.
// The first tenant's run executes its MapReduce job and stores
// operator outputs; the second tenant's run is answered with a reuse
// hit from the shared repository — cross-tenant reuse, ReStore's
// multi-user payoff. /metrics shows the per-tenant admission and
// reuse counters the fair-share front-end keeps.
//
// Then the server is closed and everything rebuilt over the same data
// directory — a process restart. The recovered repository answers the
// very first query warm, proving the reuse survives restarts when the
// backend is disk and durability is on.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro"
	"repro/internal/dfs"
	"repro/internal/service"
)

const query = `
A = load 'clicks' as (user, page, seconds);
B = group A by user;
C = foreach B generate group, SUM(A.seconds) as total;
store C into 'out/engagement';
`

func main() {
	dir, err := os.MkdirTemp("", "restore-service-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// First lifetime: seed data, serve two tenants, observe reuse.
	addr, shutdown := startServer(dir, true)
	fmt.Printf("server lifetime 1 on %s (disk backend at %s)\n\n", addr, dir)

	analytics := openSession(addr, "analytics")
	reports := openSession(addr, "reports")

	first := runQuery(addr, analytics)
	fmt.Printf("analytics ran it cold:  jobs run %d, reused %d, rewrites %d\n",
		first.JobsRun, first.JobsReused, len(first.Rewrites))
	second := runQuery(addr, reports)
	fmt.Printf("reports   ran it warm:  jobs run %d, reused %d, rewrites %d  ← cross-tenant reuse\n",
		second.JobsRun, second.JobsReused, len(second.Rewrites))
	if second.JobsReused == 0 && len(second.Rewrites) == 0 {
		log.Fatal("expected the second tenant's query to reuse the first's work")
	}

	stats := metrics(addr)
	fmt.Println("\nper-tenant /metrics after the two runs:")
	for name, c := range stats.Service.Tenants {
		fmt.Printf("  %-10s weight %d: %d completed, %d with reuse (hit ratio %.2f)\n",
			name, c.Weight, c.Completed, c.QueriesWithReuse, c.ReuseHitRatio())
	}
	fmt.Printf("repository: %d entries on disk\n", stats.Storage.Entries)
	shutdown()

	// Second lifetime: same directory, fresh process. Recovery replays
	// the durable log, so the repository — and its reuse — is already
	// there for the first query.
	addr, shutdown = startServer(dir, false)
	defer shutdown()
	fmt.Printf("\nserver lifetime 2 on %s (recovered from the same directory)\n", addr)
	warm := runQuery(addr, openSession(addr, "analytics"))
	fmt.Printf("analytics first query after restart: jobs run %d, reused %d, rewrites %d  ← warm from recovery\n",
		warm.JobsRun, warm.JobsReused, len(warm.Rewrites))
	if warm.JobsReused == 0 && len(warm.Rewrites) == 0 {
		log.Fatal("expected the restarted server to answer warm from the recovered repository")
	}
}

// startServer recovers a System over the directory's disk backend and
// serves it; seed writes the example dataset on the first lifetime.
func startServer(dir string, seed bool) (addr string, shutdown func()) {
	fs, err := dfs.OpenDisk(dir)
	if err != nil {
		log.Fatal(err)
	}
	cfg := restore.DefaultConfig()
	cfg.Durability = restore.DurabilityConfig{Enabled: true}
	sys, err := restore.Recover(cfg, fs)
	if err != nil {
		log.Fatal(err)
	}
	if seed {
		err := sys.WriteDataset("clicks", []restore.Tuple{
			{"alice", "home", int64(12)},
			{"bob", "search", int64(3)},
			{"alice", "checkout", int64(40)},
			{"carol", "home", int64(7)},
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	srv := service.NewServer(sys, service.Config{
		// Two named tenants with different fair-share weights; anyone
		// else gets the default quota.
		Quotas: map[string]service.TenantQuota{
			"analytics": {Weight: 3, MaxInFlight: 4, MaxQueued: 16},
			"reports":   {Weight: 1, MaxInFlight: 2, MaxQueued: 8},
		},
		DefaultOptions: restore.Options{
			Reuse:         true,
			KeepWholeJobs: true,
			Heuristic:     restore.Aggressive,
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	return "http://" + ln.Addr().String(), func() {
		httpSrv.Close()
		srv.Close()
		fs.Close()
	}
}

func openSession(addr, tenant string) string {
	var sess struct {
		ID string `json:"id"`
	}
	post(addr+"/sessions", map[string]string{"tenant": tenant}, &sess)
	return sess.ID
}

// runQuery submits through the session and blocks for the summary.
func runQuery(addr, session string) *service.ResultSummary {
	var acc struct {
		ID string `json:"id"`
	}
	post(addr+"/queries", map[string]string{"session": session, "script": query}, &acc)
	var info service.QueryInfo
	get(addr+"/queries/"+acc.ID+"/result", &info)
	if info.State != service.StateDone {
		log.Fatalf("query %s ended %s: %s", acc.ID, info.State, info.Error)
	}
	return info.Result
}

func metrics(addr string) service.StatsBundle {
	var b service.StatsBundle
	get(addr+"/metrics", &b)
	return b
}

func post(url string, body any, out any) {
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("POST %s: %s: %s", url, resp.Status, msg)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func get(url string, out any) {
	client := &http.Client{Timeout: time.Minute}
	resp, err := client.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("GET %s: %s: %s", url, resp.Status, msg)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
