-- Quickstart script for restore-cli: project page_views, aggregate
-- revenue per user. Run it against the generated PigMix instance:
--
--   restore-cli -script examples/quickstart.pig -reuse -repeat 2
--
-- The second run reuses the first run's stored outputs.
A = load 'pigmix/page_views' as (user, action, timespent, query_term, ip_addr, timestamp, estimated_revenue, page_info, page_links);
B = foreach A generate user, estimated_revenue;
G = group B by user;
S = foreach G generate group, SUM(B.estimated_revenue);
store S into 'quickstart_out';
