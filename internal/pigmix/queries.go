package pigmix

import (
	"fmt"
	"sort"
	"strings"
)

// Query is one benchmark query: its Pig Latin source and the STORE path
// holding its result.
type Query struct {
	Name   string
	Script string
	Output string
}

// loadPV is the shared LOAD+PROJECT prologue most queries start with —
// exactly the repeated work ReStore is designed to reuse.
func loadPV(fields string) string {
	return fmt.Sprintf(
		"A = load '%s' as (%s);\nB = foreach A generate %s;\n",
		PathPageViews, PageViewsSchema, fields)
}

// queries defines the evaluation workload: PigMix-shaped L2–L8 and L11
// (L1, L9, L10 test features irrelevant to result reuse and are
// excluded, as in the paper), plus the L3 aggregation variants and the
// L11 union variants used for the whole-job reuse experiment.
var queries = map[string]Query{
	// L2: project page_views, join with power_users.
	"L2": {
		Name: "L2",
		Script: loadPV("user, estimated_revenue") + fmt.Sprintf(`
alpha = load '%s' as (name, phone, address, city);
beta = foreach alpha generate name;
C = join beta by name, B by user;
store C into 'out/L2';
`, PathPowerUsers),
		Output: "out/L2",
	},

	// L3: join with users, then group by user summing revenue (the
	// paper's Q2). Two MapReduce jobs.
	"L3":  l3Variant("L3", "SUM"),
	"L3a": l3Variant("L3a", "AVG"),
	"L3b": l3Variant("L3b", "MIN"),
	"L3c": l3Variant("L3c", "MAX"),

	// L4: distinct actions per user.
	"L4": {
		Name: "L4",
		Script: loadPV("user, action") + `
D = distinct B;
G = group D by user;
S = foreach G generate group, COUNT(D);
store S into 'out/L4';
`,
		Output: "out/L4",
	},

	// L5: anti-join — registered users who never viewed a page.
	"L5": {
		Name: "L5",
		Script: loadPV("user") + fmt.Sprintf(`
alpha = load '%s' as (name, phone, address, city);
beta = foreach alpha generate name;
C = cogroup beta by name, B by user;
D = filter C by ISEMPTY(B);
E = foreach D generate group;
store E into 'out/L5';
`, PathUsers),
		Output: "out/L5",
	},

	// L6: wide grouping on (user, query_term) — the expensive Group
	// whose stored output makes the Aggressive heuristic costly
	// (the Figure 14 outlier).
	"L6": {
		Name: "L6",
		Script: loadPV("user, query_term, timespent") + `
G = group B by (user, query_term) parallel 4;
S = foreach G generate group, SUM(B.timespent);
store S into 'out/L6';
`,
		Output: "out/L6",
	},

	// L7: per-user aggregate band (max/min of revenue and time).
	"L7": {
		Name: "L7",
		Script: loadPV("user, timespent, estimated_revenue") + `
G = group B by user;
S = foreach G generate group, MAX(B.estimated_revenue), MIN(B.timespent);
store S into 'out/L7';
`,
		Output: "out/L7",
	},

	// L8: global aggregate (GROUP ALL): tiny output.
	"L8": {
		Name: "L8",
		Script: loadPV("user, timespent, estimated_revenue") + `
G = group B all;
S = foreach G generate SUM(B.timespent), AVG(B.estimated_revenue);
store S into 'out/L8';
`,
		Output: "out/L8",
	},

	// L11: distinct page_views users unioned with another source's
	// distinct users — three jobs, the third depending on the first
	// two, per the paper's description.
	"L11":  l11Variant("L11", PathWiderow, "user, c1, c2, c3, c4, c5, c6, c7, c8, c9", "user"),
	"L11a": l11Variant("L11a", PathUsers, "name, phone, address, city", "name"),
	"L11b": l11Variant("L11b", PathPowerUsers, "name, phone, address, city", "name"),
	"L11c": l11Variant("L11c", PathWiderowB, "user, c1, c2, c3, c4, c5, c6, c7, c8, c9", "user"),
	"L11d": {
		Name: "L11d",
		// A deeper variant: union the page_views users with power users
		// filtered by name prefix.
		Script: loadPV("user") + fmt.Sprintf(`
C = distinct B;
alpha = load '%s' as (name, phone, address, city);
beta = foreach alpha generate name;
gamma = distinct beta;
D = union C, gamma;
E = distinct D;
F = filter E by user >= 'u1000000';
store F into 'out/L11d';
`, PathWiderow),
		Output: "out/L11d",
	},
}

func l3Variant(name, agg string) Query {
	return Query{
		Name: name,
		Script: loadPV("user, estimated_revenue") + fmt.Sprintf(`
alpha = load '%s' as (name, phone, address, city);
beta = foreach alpha generate name;
C = join beta by name, B by user;
D = group C by $0;
E = foreach D generate group, %s(C.estimated_revenue);
store E into 'out/%s';
`, PathUsers, agg, name),
		Output: "out/" + name,
	}
}

func l11Variant(name, otherPath, otherSchema, otherField string) Query {
	return Query{
		Name: name,
		Script: loadPV("user") + fmt.Sprintf(`
C = distinct B;
alpha = load '%s' as (%s);
beta = foreach alpha generate %s;
gamma = distinct beta;
D = union C, gamma;
E = distinct D;
store E into 'out/%s';
`, otherPath, otherSchema, otherField, name),
		Output: "out/" + name,
	}
}

// Get returns a query by name.
func Get(name string) (Query, error) {
	q, ok := queries[name]
	if !ok {
		return Query{}, fmt.Errorf("pigmix: unknown query %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return q, nil
}

// Names lists all query names, sorted.
func Names() []string {
	out := make([]string, 0, len(queries))
	for n := range queries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CoreSuite is the L2–L8, L11 subset used by the sub-job experiments
// (Figures 10–14, Table 1).
var CoreSuite = []string{"L2", "L3", "L4", "L5", "L6", "L7", "L8", "L11"}

// VariantSuite is the whole-job reuse workload of Figures 9 and 15:
// L3 and L11 with their variants.
var VariantSuite = []string{"L3", "L3a", "L3b", "L3c", "L11", "L11a", "L11b", "L11c", "L11d"}
