package pigmix

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/dfs"
	"repro/internal/tuple"
)

// Network-traffic log analytics: the append-heavy companion workload to
// the PigMix suite. The dataset is a flow log partitioned by day — one
// part file per day, appended a day at a time, never rewritten — which
// is exactly the growth shape the incremental-maintenance path detects
// (dfs.GrowthAppend) and refreshes stored aggregates from.
//
// Every query is two MapReduce jobs: an expensive mergeable group
// aggregate over the full log (non-final, so its stored whole-job entry
// is reusable and delta-refreshable), then a small global summary over
// the aggregate. All measures are integers, so a delta-refreshed
// aggregate is byte-identical to a cold recompute — there is no
// floating-point reassociation to forgive.

// PathNetTraffic is the flow-log dataset in the DFS.
const PathNetTraffic = "pigmix/net_traffic"

// NetTrafficSchema is the AS clause for the flow log.
const NetTrafficSchema = "day, host, proto, packets, bytes, duration"

// Net-traffic generator parameters.
const (
	// NetTrafficDays is the number of daily partitions Generate seeds.
	NetTrafficDays = 3
	// NetTrafficRowsPerDay is the flow count of one daily partition at
	// the default scale.
	NetTrafficRowsPerDay = 600
	// NumHosts is the host cardinality of the flow log.
	NumHosts = 120
)

// netProtos is the protocol vocabulary.
var netProtos = []string{"tcp", "udp", "icmp", "gre", "esp"}

// netTrafficDay writes one daily partition as a single part file. The
// file name embeds the day, so successive days strictly extend the
// inventory: earlier parts keep their name and size, and append
// detection classifies the growth as GrowthAppend.
func netTrafficDay(fs dfs.Backend, day, rows int, seed int64) error {
	r := rand.New(rand.NewSource(seed + int64(day)*7919))
	hostZipf := newZipf(r, NumHosts, 0.9)
	f := fs.Create(fmt.Sprintf("%s/part-d%05d", PathNetTraffic, day))
	w := tuple.NewWriter(f)
	for i := 0; i < rows; i++ {
		row := tuple.Tuple{
			int64(day),
			fmt.Sprintf("host%03d", hostZipf.draw()),
			netProtos[r.Intn(len(netProtos))],
			int64(1 + r.Intn(5000)),    // packets
			int64(64 + r.Intn(900000)), // bytes
			int64(r.Intn(3600)),        // duration (s)
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

// GenerateNetTraffic seeds the flow log with days daily partitions of
// rowsPerDay flows each (days 0..days-1).
func GenerateNetTraffic(fs dfs.Backend, days, rowsPerDay int, seed int64) error {
	for d := 0; d < days; d++ {
		if err := netTrafficDay(fs, d, rowsPerDay, seed); err != nil {
			return err
		}
	}
	return nil
}

// AppendNetTrafficDay appends one more daily partition (the next day
// after the current inventory) and returns the day it wrote. Existing
// part files are untouched: the dataset strictly grows.
func AppendNetTrafficDay(fs dfs.Backend, rowsPerDay int, seed int64) (int, error) {
	day := len(fs.FileStats(PathNetTraffic))
	return day, netTrafficDay(fs, day, rowsPerDay, seed)
}

// netQuery builds one two-job net-traffic query: a group aggregate over
// the flow log (job 1, mergeable) and a global summary of the
// aggregate (job 2, the stored output).
func netQuery(name, groupKey, aggs, summary string) Query {
	return Query{
		Name: name,
		Script: fmt.Sprintf(`A = load '%s' as (%s);
B = foreach A generate %s;
G = group B by %s;
S = foreach G generate group, %s;
T = group S all;
U = foreach T generate %s;
store U into 'out/%s';
`, PathNetTraffic, NetTrafficSchema, netProjection(groupKey, aggs), groupKey, aggs, summary, name),
		Output: "out/" + name,
	}
}

// netProjection lists the columns a query actually touches (the group
// key plus every measure the aggregates reference, as "B.<measure>");
// the early projection is the row-wise prologue every plan shares.
func netProjection(groupKey, aggs string) string {
	cols := groupKey
	for _, c := range []string{"packets", "bytes", "duration"} {
		if strings.Contains(aggs, "B."+c) {
			cols += ", " + c
		}
	}
	return cols
}

// NetTrafficSuite is the append-heavy log-analytics workload, in
// reporting order.
var NetTrafficSuite = []string{"N1", "N2", "N3", "N4"}

func init() {
	// N1: total bytes per host, then fleet-wide roll-up.
	queries["N1"] = netQuery("N1", "host",
		"SUM(B.bytes) as total",
		"COUNT(S), SUM(S.total)")
	// N2: flows and packets per protocol.
	queries["N2"] = netQuery("N2", "proto",
		"COUNT(B) as flows, SUM(B.packets) as pkts",
		"SUM(S.flows), SUM(S.pkts)")
	// N3: connection-duration band per host.
	queries["N3"] = netQuery("N3", "host",
		"MIN(B.duration) as shortest, MAX(B.duration) as longest",
		"COUNT(S), MAX(S.longest)")
	// N4: mean flow size per protocol, with the SUM/COUNT companions
	// that make the AVG delta-mergeable.
	queries["N4"] = netQuery("N4", "proto",
		"AVG(B.bytes) as mean, SUM(B.bytes) as total, COUNT(B.bytes) as flows",
		"COUNT(S), SUM(S.total), SUM(S.flows)")
}
