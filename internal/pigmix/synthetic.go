package pigmix

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/dfs"
	"repro/internal/tuple"
)

// The Section 7.5 synthetic data set: 12 fields. field1–field5 are
// random 20-character strings (for the Project experiment, Figure 16);
// field6–field12 are integers whose cardinalities make an equality
// predicate select the Table 2 percentages (for the Filter experiment,
// Figure 17).

// PathSynthetic is the synthetic data set's location in the DFS.
const PathSynthetic = "synth/data"

// SyntheticSchema is the AS clause for the synthetic data set.
const SyntheticSchema = "field1, field2, field3, field4, field5, field6, field7, field8, field9, field10, field11, field12"

// SyntheticField describes one of the filter fields, mirroring the
// paper's Table 2.
type SyntheticField struct {
	Name string
	// Cardinality is the number of distinct values (the paper lists 1.6
	// for field12, whose two values are skewed 60/40).
	Cardinality float64
	// Selected is the fraction an equality predicate on value 0 keeps.
	Selected float64
}

// SyntheticFields reproduces Table 2.
var SyntheticFields = []SyntheticField{
	{Name: "field6", Cardinality: 200, Selected: 0.005},
	{Name: "field7", Cardinality: 100, Selected: 0.01},
	{Name: "field8", Cardinality: 20, Selected: 0.05},
	{Name: "field9", Cardinality: 10, Selected: 0.10},
	{Name: "field10", Cardinality: 5, Selected: 0.20},
	{Name: "field11", Cardinality: 2, Selected: 0.50},
	{Name: "field12", Cardinality: 1.6, Selected: 0.60},
}

// SyntheticScale sizes the generated file. The paper's instance is 200M
// rows / 40 GB; rows here are scaled down and SimScale restores bytes.
type SyntheticScale struct {
	Rows           int
	TargetSimBytes int64
	TargetRows     int64
}

// DefaultSyntheticScale mirrors the 200M-row, 40 GB instance at 20k
// actual rows.
var DefaultSyntheticScale = SyntheticScale{Rows: 20_000, TargetSimBytes: 40 << 30, TargetRows: 200_000_000}

// TinySyntheticScale keeps unit tests fast.
var TinySyntheticScale = SyntheticScale{Rows: 1_500, TargetSimBytes: 1 << 30, TargetRows: 5_000_000}

// GenerateSynthetic writes the synthetic data set and returns its
// actual size in bytes.
func GenerateSynthetic(fs dfs.Backend, sc SyntheticScale, seed int64) (int64, error) {
	r := rand.New(rand.NewSource(seed))
	err := writeRows(fs, PathSynthetic, func(w *tuple.Writer) error {
		for i := 0; i < sc.Rows; i++ {
			row := make(tuple.Tuple, 0, 12)
			for f := 0; f < 5; f++ {
				row = append(row, fillerString(r, 20))
			}
			row = append(row,
				int64(r.Intn(200)), // field6: 0.5%
				int64(r.Intn(100)), // field7: 1%
				int64(r.Intn(20)),  // field8: 5%
				int64(r.Intn(10)),  // field9: 10%
				int64(r.Intn(5)),   // field10: 20%
				int64(r.Intn(2)),   // field11: 50%
				skewedBit(r, 0.60), // field12: 60% zeros
			)
			if err := w.Write(row); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return fs.Size(PathSynthetic), nil
}

func skewedBit(r *rand.Rand, pZero float64) int64 {
	if r.Float64() < pZero {
		return 0
	}
	return 1
}

// SyntheticSimScale returns the SimScale mapping the generated file to
// the target simulated volume.
func SyntheticSimScale(fs dfs.Backend, sc SyntheticScale) float64 {
	actual := fs.Size(PathSynthetic)
	if actual <= 0 {
		return 1
	}
	return float64(sc.TargetSimBytes) / float64(actual)
}

// SyntheticRecordScale returns the record scale factor for the
// synthetic instance.
func SyntheticRecordScale(sc SyntheticScale) float64 {
	if sc.Rows <= 0 || sc.TargetRows <= 0 {
		return 1
	}
	return float64(sc.TargetRows) / float64(sc.Rows)
}

// QP builds the Figure 16 query template: project the first k string
// fields, group by them, count. k ranges 1..5; the projected fraction
// of the input grows from ~18% to ~74%.
func QP(k int) Query {
	if k < 1 {
		k = 1
	}
	if k > 5 {
		k = 5
	}
	fields := make([]string, k)
	for i := range fields {
		fields[i] = fmt.Sprintf("field%d", i+1)
	}
	list := strings.Join(fields, ", ")
	name := fmt.Sprintf("QP%d", k)
	return Query{
		Name: name,
		Script: fmt.Sprintf(`
A = load '%s' as (%s);
B = foreach A generate %s;
C = group B by (%s);
D = foreach C generate COUNT(B);
store D into 'out/%s';
`, PathSynthetic, SyntheticSchema, list, list, name),
		Output: "out/" + name,
	}
}

// QF builds the Figure 17 query template: filter on an equality
// predicate over one of field6..field12, group by field1, count.
func QF(field string) Query {
	name := "QF_" + field
	return Query{
		Name: name,
		Script: fmt.Sprintf(`
A = load '%s' as (%s);
B = filter A by %s == 0;
C = group B by field1;
D = foreach C generate COUNT(B);
store D into 'out/%s';
`, PathSynthetic, SyntheticSchema, field, name),
		Output: "out/" + name,
	}
}
