package pigmix

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dfs"
	"repro/internal/logical"
	"repro/internal/mrcompile"
	"repro/internal/piglatin"
	"repro/internal/tuple"
)

func readRows(t *testing.T, fs *dfs.FS, path string) []tuple.Tuple {
	t.Helper()
	var out []tuple.Tuple
	for _, f := range fs.List(path) {
		data, err := fs.ReadFile(f)
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line != "" {
				out = append(out, tuple.DecodeText(line))
			}
		}
	}
	return out
}

func TestGenerateDeterministic(t *testing.T) {
	fs1, fs2 := dfs.New(), dfs.New()
	n1, err := Generate(fs1, TinyScale, 42)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	n2, err := Generate(fs2, TinyScale, 42)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if n1 != n2 {
		t.Errorf("sizes differ: %d vs %d", n1, n2)
	}
	d1, _ := fs1.ReadFile(PathPageViews + "/part-00000")
	d2, _ := fs2.ReadFile(PathPageViews + "/part-00000")
	if string(d1) != string(d2) {
		t.Errorf("same seed produced different data")
	}
	fs3 := dfs.New()
	Generate(fs3, TinyScale, 43)
	d3, _ := fs3.ReadFile(PathPageViews + "/part-00000")
	if string(d1) == string(d3) {
		t.Errorf("different seeds produced identical data")
	}
}

func TestGenerateShapes(t *testing.T) {
	fs := dfs.New()
	if _, err := Generate(fs, TinyScale, 1); err != nil {
		t.Fatalf("Generate: %v", err)
	}
	pv := readRows(t, fs, PathPageViews)
	if len(pv) != TinyScale.PageViews {
		t.Fatalf("page_views rows = %d", len(pv))
	}
	for _, r := range pv[:10] {
		if len(r) != 9 {
			t.Fatalf("page_views arity = %d: %v", len(r), r)
		}
	}
	users := readRows(t, fs, PathUsers)
	if len(users) != NumUsers+NumExtraUsers {
		t.Errorf("users rows = %d", len(users))
	}
	power := readRows(t, fs, PathPowerUsers)
	if len(power) != NumPowerUsers {
		t.Errorf("power_users rows = %d", len(power))
	}
	wr := readRows(t, fs, PathWiderow)
	if len(wr) != WiderowRows || len(wr[0]) != 10 {
		t.Errorf("widerow shape = %d rows × %d cols", len(wr), len(wr[0]))
	}
}

func TestUserDimensionFixedAcrossScales(t *testing.T) {
	distinctUsers := func(sc Scale) int {
		fs := dfs.New()
		if _, err := Generate(fs, sc, 7); err != nil {
			t.Fatalf("Generate: %v", err)
		}
		seen := map[string]bool{}
		for _, r := range readRows(t, fs, PathPageViews) {
			if s, ok := r[0].(string); ok {
				seen[s] = true
			}
		}
		return len(seen)
	}
	small := distinctUsers(Scale{Name: "s", PageViews: 5_000})
	big := distinctUsers(Scale{Name: "x", PageViews: 50_000})
	// A 10× bigger instance must not have remotely 10× more users: the
	// dimension saturates near NumUsers (the property behind the
	// paper's scale-dependent overhead/speedup shapes).
	if float64(big) > 1.6*float64(small) {
		t.Errorf("user dimension grew with scale: %d -> %d", small, big)
	}
	if big > NumUsers {
		t.Errorf("distinct users %d exceeds pool %d", big, NumUsers)
	}
}

func TestSimScaleFor(t *testing.T) {
	fs := dfs.New()
	Generate(fs, TinyScale, 1)
	scale := SimScaleFor(fs, TinyScale)
	got := float64(fs.Size(PathPageViews)) * scale
	want := float64(TinyScale.TargetSimBytes)
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("SimScaleFor: simulated size %g, want %g", got, want)
	}
}

func TestAllQueriesCompile(t *testing.T) {
	for _, name := range Names() {
		q, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%s): %v", name, err)
		}
		script, err := piglatin.Parse(q.Script)
		if err != nil {
			t.Errorf("%s: parse: %v", name, err)
			continue
		}
		lp, err := logical.Build(script)
		if err != nil {
			t.Errorf("%s: build: %v", name, err)
			continue
		}
		if _, err := mrcompile.Compile(lp, mrcompile.Options{TempPrefix: "tmp/" + name, DefaultReducers: 2}); err != nil {
			t.Errorf("%s: compile: %v", name, err)
		}
	}
}

func TestQueryJobCounts(t *testing.T) {
	wantJobs := map[string]int{
		"L2":  1, // join
		"L3":  2, // join + group
		"L4":  2, // distinct + group
		"L5":  1, // cogroup
		"L6":  1, // group
		"L7":  1,
		"L8":  1,
		"L11": 3, // distinct, distinct, union+distinct
	}
	for name, want := range wantJobs {
		q, _ := Get(name)
		script, _ := piglatin.Parse(q.Script)
		lp, err := logical.Build(script)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		wf, err := mrcompile.Compile(lp, mrcompile.Options{TempPrefix: "tmp/" + name, DefaultReducers: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(wf.Jobs) != want {
			t.Errorf("%s: %d jobs, want %d", name, len(wf.Jobs), want)
		}
	}
}

func TestL11DependencyShape(t *testing.T) {
	q, _ := Get("L11")
	script, _ := piglatin.Parse(q.Script)
	lp, _ := logical.Build(script)
	wf, err := mrcompile.Compile(lp, mrcompile.Options{TempPrefix: "tmp/l11", DefaultReducers: 2})
	if err != nil {
		t.Fatal(err)
	}
	jobs, _ := wf.TopoJobs()
	last := jobs[len(jobs)-1]
	if len(last.DependsOn) != 2 {
		t.Errorf("final L11 job depends on %v, want two jobs", last.DependsOn)
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("L99"); err == nil {
		t.Errorf("unknown query should error")
	}
}

func TestSyntheticTable2Selectivities(t *testing.T) {
	fs := dfs.New()
	sc := SyntheticScale{Rows: 30_000, TargetSimBytes: 1 << 30}
	if _, err := GenerateSynthetic(fs, sc, 11); err != nil {
		t.Fatalf("GenerateSynthetic: %v", err)
	}
	rows := readRows(t, fs, PathSynthetic)
	if len(rows) != sc.Rows {
		t.Fatalf("rows = %d", len(rows))
	}
	// Column offsets: field6 is index 5.
	for fi, f := range SyntheticFields {
		col := 5 + fi
		zeros := 0
		for _, r := range rows {
			if v, ok := r[col].(int64); ok && v == 0 {
				zeros++
			}
		}
		got := float64(zeros) / float64(len(rows))
		if math.Abs(got-f.Selected) > f.Selected*0.25+0.005 {
			t.Errorf("%s: selectivity %0.4f, want ≈%0.4f", f.Name, got, f.Selected)
		}
	}
}

func TestSyntheticStringFields(t *testing.T) {
	fs := dfs.New()
	GenerateSynthetic(fs, TinySyntheticScale, 3)
	rows := readRows(t, fs, PathSynthetic)
	for c := 0; c < 5; c++ {
		s, ok := rows[0][c].(string)
		if !ok || len(s) != 20 {
			t.Errorf("field%d = %v, want 20-char string", c+1, rows[0][c])
		}
	}
}

func TestQPQFTemplatesCompile(t *testing.T) {
	for k := 1; k <= 5; k++ {
		q := QP(k)
		script, err := piglatin.Parse(q.Script)
		if err != nil {
			t.Fatalf("QP(%d): %v", k, err)
		}
		if _, err := logical.Build(script); err != nil {
			t.Fatalf("QP(%d) build: %v", k, err)
		}
	}
	for _, f := range SyntheticFields {
		q := QF(f.Name)
		script, err := piglatin.Parse(q.Script)
		if err != nil {
			t.Fatalf("QF(%s): %v", f.Name, err)
		}
		if _, err := logical.Build(script); err != nil {
			t.Fatalf("QF(%s) build: %v", f.Name, err)
		}
	}
}

func TestQPProjectionFractionGrows(t *testing.T) {
	// The byte fraction projected by QP(k) must grow with k, from
	// roughly 18% to roughly 74% as in the paper.
	fs := dfs.New()
	GenerateSynthetic(fs, TinySyntheticScale, 5)
	rows := readRows(t, fs, PathSynthetic)
	total := 0
	proj := make([]int, 6)
	for _, r := range rows {
		total += len(tuple.EncodeText(r)) + 1
		for k := 1; k <= 5; k++ {
			proj[k] += len(tuple.EncodeText(r[:k])) + 1
		}
	}
	prev := 0.0
	for k := 1; k <= 5; k++ {
		frac := float64(proj[k]) / float64(total)
		if frac <= prev {
			t.Errorf("QP(%d) fraction %0.2f not increasing", k, frac)
		}
		prev = frac
	}
	if first := float64(proj[1]) / float64(total); first > 0.30 {
		t.Errorf("QP(1) fraction %0.2f, want small (~0.18)", first)
	}
	if last := float64(proj[5]) / float64(total); last < 0.55 {
		t.Errorf("QP(5) fraction %0.2f, want large (~0.74)", last)
	}
}
