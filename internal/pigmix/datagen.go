// Package pigmix provides the benchmark workloads of the paper's
// evaluation: a PigMix-shaped data generator (page_views, users,
// power_users, widerow), the query suite L2–L8 and L11 with the L3/L11
// variants of Section 7.1, and the Section 7.5 synthetic data set with
// its QP/QF query templates.
//
// The generator is deterministic (seeded) and laptop-scaled; the
// engine's SimScale maps the actual bytes to the paper's 15 GB and
// 150 GB instances. One deliberate property carries the paper's scale
// behaviour: the user dimension has a fixed cardinality across scales
// (log tables grow, the user base does not), so join/group outputs
// shrink relative to input as data grows — the effect behind Figures 11
// and 12.
package pigmix

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/dfs"
	"repro/internal/tuple"
)

// Scale sizes a generated instance.
type Scale struct {
	// Name labels the instance ("15GB", "150GB").
	Name string
	// PageViews is the number of page_views rows.
	PageViews int
	// TargetSimBytes is the simulated size the page_views table should
	// represent; SimScaleFor derives the engine scale factor from it.
	TargetSimBytes int64
	// TargetRows is the paper-scale page_views row count the instance
	// represents; RecordScaleFor derives the record scale from it.
	TargetRows int64
}

// The two instances of the paper's evaluation. Actual rows are scaled
// down 1000:1 (10M→10k, 100M→100k); SimScale restores the byte volumes.
var (
	// Scale15GB mirrors the 10-million-row, ~15 GB instance.
	Scale15GB = Scale{Name: "15GB", PageViews: 6_000, TargetSimBytes: 15 << 30, TargetRows: 10_000_000}
	// Scale150GB mirrors the 100-million-row, ~150 GB instance.
	Scale150GB = Scale{Name: "150GB", PageViews: 60_000, TargetSimBytes: 150 << 30, TargetRows: 100_000_000}
)

// TinyScale keeps unit tests fast.
var TinyScale = Scale{Name: "tiny", PageViews: 800, TargetSimBytes: 1 << 30, TargetRows: 700_000}

// Generator parameters independent of scale: the user dimension is
// fixed, as real user bases are.
const (
	// NumUsers is the number of distinct users appearing in page_views.
	NumUsers = 1800
	// NumExtraUsers is the number of registered users who never viewed
	// a page (they make the L5 anti-join output small but non-empty).
	NumExtraUsers = 5
	// NumPowerUsers is the size of the power_users table.
	NumPowerUsers = 400
	// NumQueryTerms is the vocabulary of query_term.
	NumQueryTerms = 1000
	// WiderowRows is the size of each widerow table.
	WiderowRows = 4000
)

// Paths of the generated datasets in the DFS.
const (
	PathPageViews  = "pigmix/page_views"
	PathUsers      = "pigmix/users"
	PathPowerUsers = "pigmix/power_users"
	PathWiderow    = "pigmix/widerow"
	PathWiderowB   = "pigmix/widerow_b"
)

// PageViewsSchema is the AS clause for page_views, following PigMix.
const PageViewsSchema = "user, action, timespent, query_term, ip_addr, timestamp, estimated_revenue, page_info, page_links"

// zipf draws ranks in [0, n) with a power-law bias, deterministic under
// the given source.
type zipf struct {
	cum []float64
	r   *rand.Rand
}

func newZipf(r *rand.Rand, n int, skew float64) *zipf {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1.0 / math.Pow(float64(i+1), skew)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &zipf{cum: cum, r: r}
}

func (z *zipf) draw() int {
	x := z.r.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func userName(i int) int64 { return int64(1_000_000 + i) }

func fillerString(r *rand.Rand, n int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	var b strings.Builder
	b.Grow(n)
	for i := 0; i < n; i++ {
		b.WriteByte(letters[r.Intn(len(letters))])
	}
	return b.String()
}

// Generate writes a full PigMix-shaped instance into fs and returns the
// actual byte size of the page_views table, from which the caller
// derives the engine's SimScale.
func Generate(fs dfs.Backend, sc Scale, seed int64) (int64, error) {
	r := rand.New(rand.NewSource(seed))
	if err := generatePageViews(fs, r, sc); err != nil {
		return 0, err
	}
	if err := generateUsers(fs, rand.New(rand.NewSource(seed+1))); err != nil {
		return 0, err
	}
	if err := generatePowerUsers(fs, rand.New(rand.NewSource(seed+2))); err != nil {
		return 0, err
	}
	if err := generateWiderow(fs, rand.New(rand.NewSource(seed+3)), PathWiderow); err != nil {
		return 0, err
	}
	if err := generateWiderow(fs, rand.New(rand.NewSource(seed+4)), PathWiderowB); err != nil {
		return 0, err
	}
	if err := GenerateNetTraffic(fs, NetTrafficDays, NetTrafficRowsFor(sc), seed+5); err != nil {
		return 0, err
	}
	return fs.Size(PathPageViews), nil
}

// NetTrafficRowsFor sizes the net-traffic daily partitions
// proportionally to the instance's page_views volume. Exported so an
// out-of-process appender (restore-cli -append-net-days) grows a disk
// backend's flow log at the same per-day row count Generate seeded it
// with.
func NetTrafficRowsFor(sc Scale) int {
	if sc.PageViews <= TinyScale.PageViews {
		return NetTrafficRowsPerDay / 3
	}
	return NetTrafficRowsPerDay * sc.PageViews / Scale15GB.PageViews
}

// SimScaleFor returns the SimScale factor that makes the generated
// page_views table represent sc.TargetSimBytes.
func SimScaleFor(fs dfs.Backend, sc Scale) float64 {
	actual := fs.Size(PathPageViews)
	if actual <= 0 {
		return 1
	}
	return float64(sc.TargetSimBytes) / float64(actual)
}

// RecordScaleFor returns the record scale factor mapping actual rows to
// the paper-scale row count.
func RecordScaleFor(sc Scale) float64 {
	if sc.PageViews <= 0 || sc.TargetRows <= 0 {
		return 1
	}
	return float64(sc.TargetRows) / float64(sc.PageViews)
}

func writeRows(fs dfs.Backend, path string, emit func(w *tuple.Writer) error) error {
	f := fs.Create(path + "/part-00000")
	w := tuple.NewWriter(f)
	if err := emit(w); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func generatePageViews(fs dfs.Backend, r *rand.Rand, sc Scale) error {
	userZipf := newZipf(r, NumUsers, 0.8)
	termZipf := newZipf(r, NumQueryTerms, 1.0)
	return writeRows(fs, PathPageViews, func(w *tuple.Writer) error {
		for i := 0; i < sc.PageViews; i++ {
			var user tuple.Value
			if r.Float64() < 0.02 {
				user = nil // PigMix has null users; joins drop them
			} else {
				user = fmt.Sprintf("u%d", userName(userZipf.draw()))
			}
			row := tuple.Tuple{
				user,
				int64(r.Intn(3)),                         // action
				int64(r.Intn(60)),                        // timespent
				fmt.Sprintf("term%04d", termZipf.draw()), // query_term
				fmt.Sprintf("192.168.%d.%d", r.Intn(256), r.Intn(256)),
				int64(1_300_000_000 + i),
				float64(r.Intn(10000)) / 100.0, // estimated_revenue
				fillerString(r, 600),           // page_info (PigMix's map field)
				fillerString(r, 800),           // page_links (PigMix's nested bag)
			}
			if err := w.Write(row); err != nil {
				return err
			}
		}
		return nil
	})
}

func generateUsers(fs dfs.Backend, r *rand.Rand) error {
	return writeRows(fs, PathUsers, func(w *tuple.Writer) error {
		for i := 0; i < NumUsers+NumExtraUsers; i++ {
			row := tuple.Tuple{
				fmt.Sprintf("u%d", userName(i)),
				fmt.Sprintf("555-%04d", r.Intn(10000)),
				fillerString(r, 20),
				fillerString(r, 10),
			}
			if err := w.Write(row); err != nil {
				return err
			}
		}
		return nil
	})
}

func generatePowerUsers(fs dfs.Backend, r *rand.Rand) error {
	return writeRows(fs, PathPowerUsers, func(w *tuple.Writer) error {
		for i := 0; i < NumPowerUsers; i++ {
			row := tuple.Tuple{
				fmt.Sprintf("u%d", userName(i*3)), // every 3rd user is a power user
				fmt.Sprintf("555-%04d", r.Intn(10000)),
				fillerString(r, 20),
				fillerString(r, 10),
			}
			if err := w.Write(row); err != nil {
				return err
			}
		}
		return nil
	})
}

func generateWiderow(fs dfs.Backend, r *rand.Rand, path string) error {
	userZipf := newZipf(r, NumUsers, 0.5)
	return writeRows(fs, path, func(w *tuple.Writer) error {
		for i := 0; i < WiderowRows; i++ {
			row := tuple.Tuple{fmt.Sprintf("u%d", userName(userZipf.draw()))}
			for c := 0; c < 9; c++ {
				row = append(row, fillerString(r, 18))
			}
			if err := w.Write(row); err != nil {
				return err
			}
		}
		return nil
	})
}
