package mrcompile

import (
	"testing"

	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/piglatin"
)

func compile(t *testing.T, src string) *physical.Workflow {
	t.Helper()
	script, err := piglatin.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	lp, err := logical.Build(script)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	wf, err := Compile(lp, Options{TempPrefix: "tmp/test", DefaultReducers: 4})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return wf
}

func countKind(j *physical.Job, k physical.Kind) int {
	n := 0
	for _, op := range j.Plan.Ops() {
		if op.Kind == k {
			n++
		}
	}
	return n
}

func TestCompileMapOnly(t *testing.T) {
	wf := compile(t, `
A = load 'data' as (a, b);
B = foreach A generate a;
C = filter B by a > 1;
store C into 'out';
`)
	if len(wf.Jobs) != 1 {
		t.Fatalf("jobs = %d, want 1", len(wf.Jobs))
	}
	j := wf.Jobs[0]
	if !j.IsMapOnly() {
		t.Errorf("expected map-only job")
	}
	if j.NumReducers != 0 {
		t.Errorf("reducers = %d, want 0", j.NumReducers)
	}
	if j.OutputPath != "out" {
		t.Errorf("output = %q", j.OutputPath)
	}
}

func TestCompileQ1SingleJoinJob(t *testing.T) {
	wf := compile(t, `
A = load 'page_views' as (user, timestamp, est_revenue, page_info, page_links);
B = foreach A generate user, est_revenue;
alpha = load 'users' as (name, phone, address, city);
beta = foreach alpha generate name;
C = join beta by name, B by user;
store C into 'L2_out';
`)
	if len(wf.Jobs) != 1 {
		t.Fatalf("jobs = %d, want 1 (join fits one MR job)", len(wf.Jobs))
	}
	j := wf.Jobs[0]
	if j.IsMapOnly() {
		t.Errorf("join job must shuffle")
	}
	if got := countKind(j, physical.KLoad); got != 2 {
		t.Errorf("loads = %d, want 2", got)
	}
	if got := countKind(j, physical.KLocalRearrange); got != 2 {
		t.Errorf("rearranges = %d, want 2", got)
	}
	if got := countKind(j, physical.KJoinFlatten); got != 1 {
		t.Errorf("joinflatten = %d, want 1", got)
	}
	if j.NumReducers != 4 {
		t.Errorf("reducers = %d, want default 4", j.NumReducers)
	}
	// LR signatures must carry branch and dropnull for matching.
	for _, op := range j.Plan.Ops() {
		if op.Kind == physical.KLocalRearrange && !op.DropNull {
			t.Errorf("join LR must drop null keys")
		}
	}
}

func TestCompileQ2TwoJobs(t *testing.T) {
	wf := compile(t, `
A = load 'page_views' as (user, timestamp, est_revenue, page_info, page_links);
B = foreach A generate user, est_revenue;
alpha = load 'users' as (name, phone, address, city);
beta = foreach alpha generate name;
C = join beta by name, B by user;
D = group C by $0;
E = foreach D generate group, SUM(C.est_revenue);
store E into 'L3_out';
`)
	if len(wf.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2 (join job + group job)", len(wf.Jobs))
	}
	jobs, err := wf.TopoJobs()
	if err != nil {
		t.Fatalf("TopoJobs: %v", err)
	}
	j1, j2 := jobs[0], jobs[1]
	if len(j2.DependsOn) != 1 || j2.DependsOn[0] != j1.ID {
		t.Errorf("j2 deps = %v, want [%s]", j2.DependsOn, j1.ID)
	}
	// Job 2 loads job 1's temp output.
	if got := j2.InputPaths(); len(got) != 1 || got[0] != j1.OutputPath {
		t.Errorf("j2 inputs = %v, want [%s]", got, j1.OutputPath)
	}
	if j1.OutputPath == "L3_out" || j2.OutputPath != "L3_out" {
		t.Errorf("outputs: j1=%s j2=%s", j1.OutputPath, j2.OutputPath)
	}
}

func TestCompileGroupAllSingleReducer(t *testing.T) {
	wf := compile(t, `
A = load 'x' as (a, b);
B = group A all;
C = foreach B generate COUNT(A);
store C into 'o';
`)
	if len(wf.Jobs) != 1 {
		t.Fatalf("jobs = %d", len(wf.Jobs))
	}
	if wf.Jobs[0].NumReducers != 1 {
		t.Errorf("GROUP ALL reducers = %d, want 1", wf.Jobs[0].NumReducers)
	}
}

func TestCompileParallelClause(t *testing.T) {
	wf := compile(t, `
A = load 'x' as (a, b);
B = group A by a parallel 9;
C = foreach B generate group, COUNT(A);
store C into 'o';
`)
	if wf.Jobs[0].NumReducers != 9 {
		t.Errorf("reducers = %d, want 9", wf.Jobs[0].NumReducers)
	}
}

func TestCompileDistinctUnionL11Shape(t *testing.T) {
	// L11-shaped query: distinct of one branch unioned with a projection
	// of another, then distinct overall: 2 jobs, the second reading the
	// first's output plus the raw data.
	wf := compile(t, `
A = load 'page_views' as (user, timestamp, est_revenue, page_info, page_links);
B = foreach A generate user;
C = distinct B;
alpha = load 'widerow' as (user, c1, c2, c3);
beta = foreach alpha generate user;
D = union C, beta;
E = distinct D;
store E into 'L11_out';
`)
	if len(wf.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(wf.Jobs))
	}
	jobs, _ := wf.TopoJobs()
	j1, j2 := jobs[0], jobs[1]
	if got := countKind(j1, physical.KPackage); got != 1 {
		t.Errorf("j1 packages = %d", got)
	}
	if j1.Plan.Ops()[0].Kind != physical.KLoad {
		t.Errorf("unexpected j1 structure")
	}
	// Second job: loads temp + widerow, unions, distinct.
	ins := j2.InputPaths()
	if len(ins) != 2 {
		t.Fatalf("j2 inputs = %v", ins)
	}
	if got := countKind(j2, physical.KUnion); got != 1 {
		t.Errorf("j2 unions = %d, want 1", got)
	}
	for _, op := range j2.Plan.Ops() {
		if op.Kind == physical.KPackage && op.Mode != physical.PkgDistinct {
			t.Errorf("j2 package mode = %v", op.Mode)
		}
	}
}

func TestCompileSharedInputMaterializedOnce(t *testing.T) {
	// B feeds two different blocking consumers: it must be materialized
	// to a temp once and loaded by both.
	wf := compile(t, `
A = load 'x' as (a, b);
B = filter A by b > 0;
C = group B by a;
D = foreach C generate group, COUNT(B);
E = distinct B;
store D into 'o1';
store E into 'o2';
`)
	if len(wf.Jobs) != 3 {
		t.Fatalf("jobs = %d, want 3 (materialize B, group, distinct)", len(wf.Jobs))
	}
	jobs, _ := wf.TopoJobs()
	matJob := jobs[0]
	if !matJob.IsMapOnly() {
		t.Errorf("materialization job should be map-only")
	}
	dependents := 0
	for _, j := range wf.Jobs[1:] {
		for _, d := range j.DependsOn {
			if d == matJob.ID {
				dependents++
			}
		}
	}
	if dependents != 2 {
		t.Errorf("dependents of materialization = %d, want 2", dependents)
	}
}

func TestCompileCoGroup(t *testing.T) {
	wf := compile(t, `
A = load 'x' as (k, v);
B = load 'y' as (k, w);
C = cogroup A by k, B by k;
D = filter C by ISEMPTY(B);
E = foreach D generate group;
store E into 'anti';
`)
	if len(wf.Jobs) != 1 {
		t.Fatalf("jobs = %d, want 1", len(wf.Jobs))
	}
	j := wf.Jobs[0]
	var pkg *physical.Op
	for _, op := range j.Plan.Ops() {
		if op.Kind == physical.KPackage {
			pkg = op
		}
	}
	if pkg == nil || pkg.NumInputs != 2 {
		t.Fatalf("package = %+v", pkg)
	}
	// CoGroup keeps null keys (no DropNull on its rearranges).
	for _, op := range j.Plan.Ops() {
		if op.Kind == physical.KLocalRearrange && op.DropNull {
			t.Errorf("cogroup LR must not drop nulls")
		}
	}
}

func TestCompileOrderSingleReducer(t *testing.T) {
	wf := compile(t, `
A = load 'x' as (a, b);
B = order A by b desc;
store B into 'o';
`)
	if len(wf.Jobs) != 1 {
		t.Fatalf("jobs = %d", len(wf.Jobs))
	}
	if wf.Jobs[0].NumReducers != 1 {
		t.Errorf("order reducers = %d, want 1", wf.Jobs[0].NumReducers)
	}
	for _, op := range wf.Jobs[0].Plan.Ops() {
		if op.Kind == physical.KPackage {
			if op.Mode != physical.PkgFlat || len(op.Desc) != 1 || !op.Desc[0] {
				t.Errorf("order package = %+v", op)
			}
		}
	}
}

func TestCompileChainOfBlockingOps(t *testing.T) {
	// group after group: two jobs.
	wf := compile(t, `
A = load 'x' as (a, b, c);
B = group A by a;
C = foreach B generate group, SUM(A.b) as s;
D = group C by s;
E = foreach D generate group, COUNT(C);
store E into 'o';
`)
	if len(wf.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(wf.Jobs))
	}
}

func TestCompileDeterministicIDs(t *testing.T) {
	src := `
A = load 'x' as (a, b);
B = group A by a;
C = foreach B generate group, COUNT(A);
store C into 'o';
`
	wf1 := compile(t, src)
	wf2 := compile(t, src)
	if wf1.Jobs[0].Plan.String() != wf2.Jobs[0].Plan.String() {
		t.Errorf("compilation is not deterministic:\n%s\nvs\n%s",
			wf1.Jobs[0].Plan, wf2.Jobs[0].Plan)
	}
}

func TestCompileRequiresTempPrefix(t *testing.T) {
	script, _ := piglatin.Parse(`A = load 'x' as (a); store A into 'o';`)
	lp, _ := logical.Build(script)
	if _, err := Compile(lp, Options{}); err == nil {
		t.Errorf("missing TempPrefix should error")
	}
}
