// Package mrcompile compiles logical plans into workflows of MapReduce
// jobs over the physical algebra, reproducing the job-boundary structure
// of Pig's MRCompiler: every blocking operator (GROUP, COGROUP, JOIN,
// DISTINCT, ORDER) needs a shuffle, a MapReduce job holds at most one
// shuffle, and jobs communicate through temporary files in the DFS.
package mrcompile

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/physical"
)

// Options configure compilation.
type Options struct {
	// TempPrefix namespaces the temporary inter-job files of this query,
	// e.g. "tmp/q42". Required.
	TempPrefix string
	// DefaultReducers is the reduce parallelism when a statement has no
	// PARALLEL clause.
	DefaultReducers int
}

// Compile translates a logical plan into a workflow of MapReduce jobs.
func Compile(lp *logical.Plan, opts Options) (*physical.Workflow, error) {
	if opts.TempPrefix == "" {
		return nil, fmt.Errorf("mrcompile: TempPrefix is required")
	}
	if opts.DefaultReducers <= 0 {
		opts.DefaultReducers = 1
	}
	c := &compiler{
		opts:      opts,
		wf:        &physical.Workflow{FinalOutputs: map[string]string{}},
		memo:      map[logical.Node]string{},
		consumers: countConsumers(lp),
	}
	for _, st := range lp.Stores {
		if err := c.compileStore(st); err != nil {
			return nil, err
		}
	}
	for _, j := range c.wf.Jobs {
		if err := j.Plan.Validate(); err != nil {
			return nil, fmt.Errorf("mrcompile: job %s: %w", j.ID, err)
		}
	}
	return c.wf, nil
}

// frag is an under-construction job fragment: a job builder plus the op
// currently producing the fragment's output.
type frag struct {
	jb  *jobBuilder
	tip int // op ID of the current output
}

type jobBuilder struct {
	id       string
	plan     *physical.Plan
	deps     map[string]bool
	reduce   bool // past the shuffle
	reducers int
	sealed   bool
	merged   bool
}

type compiler struct {
	opts      Options
	wf        *physical.Workflow
	nextJob   int
	nextTemp  int
	memo      map[logical.Node]string // shared node -> materialized temp path
	consumers map[logical.Node]int
}

func countConsumers(lp *logical.Plan) map[logical.Node]int {
	counts := map[logical.Node]int{}
	seen := map[logical.Node]bool{}
	var visit func(n logical.Node)
	visit = func(n logical.Node) {
		for _, in := range n.Inputs() {
			counts[in]++
			if !seen[in] {
				seen[in] = true
				visit(in)
			}
		}
	}
	for _, st := range lp.Stores {
		visit(st)
	}
	return counts
}

func (c *compiler) newJob() *jobBuilder {
	c.nextJob++
	jb := &jobBuilder{
		id:   fmt.Sprintf("j%d", c.nextJob),
		plan: physical.NewPlan(),
		deps: map[string]bool{},
	}
	return jb
}

func (c *compiler) tempPath() string {
	c.nextTemp++
	return fmt.Sprintf("%s/t%d", c.opts.TempPrefix, c.nextTemp)
}

// finalize registers jb in the workflow with the given output path.
func (c *compiler) finalize(jb *jobBuilder, outputPath string) {
	jb.sealed = true
	deps := make([]string, 0, len(jb.deps))
	for d := range jb.deps {
		deps = append(deps, d)
	}
	// Deterministic order.
	for i := 1; i < len(deps); i++ {
		for j := i; j > 0 && deps[j] < deps[j-1]; j-- {
			deps[j], deps[j-1] = deps[j-1], deps[j]
		}
	}
	reducers := 0
	if jb.reduce {
		reducers = jb.reducers
		if reducers <= 0 {
			reducers = c.opts.DefaultReducers
		}
	}
	c.wf.Jobs = append(c.wf.Jobs, &physical.Job{
		ID:          jb.id,
		Plan:        jb.plan,
		OutputPath:  outputPath,
		NumReducers: reducers,
		DependsOn:   deps,
	})
}

// seal materializes the fragment into a temp file, finalizing its job,
// and returns the temp path.
func (c *compiler) seal(f frag) string {
	tmp := c.tempPath()
	f.jb.plan.Add(&physical.Op{Kind: physical.KStore, Path: tmp, InputIDs: []int{f.tip}})
	c.finalize(f.jb, tmp)
	return tmp
}

// loadFrag starts a fresh map-phase fragment reading path; dep, when
// non-empty, is the producing job's ID.
func (c *compiler) loadFrag(path, dep string) frag {
	jb := c.newJob()
	ld := jb.plan.Add(&physical.Op{Kind: physical.KLoad, Path: path})
	if dep != "" {
		jb.deps[dep] = true
	}
	return frag{jb: jb, tip: ld.ID}
}

// asMapPhase returns a fragment guaranteed to be in map phase: reduce
// fragments are sealed and reloaded.
func (c *compiler) asMapPhase(f frag) frag {
	if !f.jb.reduce {
		return f
	}
	tmp := c.seal(f)
	return c.loadFrag(tmp, f.jb.id)
}

// mergeInto absorbs src's plan into dst, returning src's re-mapped tip.
// Both fragments must be in map phase.
func mergeInto(dst, src frag) int {
	if dst.jb == src.jb {
		return src.tip
	}
	idMap := map[int]int{}
	for _, op := range src.jb.plan.Topo() {
		cp := *op
		cp.InputIDs = nil
		for _, in := range op.InputIDs {
			cp.InputIDs = append(cp.InputIDs, idMap[in])
		}
		added := dst.jb.plan.Add(&cp)
		idMap[op.ID] = added.ID
	}
	for d := range src.jb.deps {
		dst.jb.deps[d] = true
	}
	src.jb.merged = true
	return idMap[src.tip]
}

func (c *compiler) compileStore(st *logical.Store) error {
	f, err := c.compileNode(st.In)
	if err != nil {
		return err
	}
	f.jb.plan.Add(&physical.Op{Kind: physical.KStore, Path: st.Path, InputIDs: []int{f.tip}})
	c.finalize(f.jb, st.Path)
	c.wf.FinalOutputs[st.Path] = st.Path
	return nil
}

// compileNode compiles a logical node to a fragment. Nodes with multiple
// consumers are materialized once into a temp file and each consumer
// loads that file, which is how Pig splits multi-consumer plans across
// jobs.
func (c *compiler) compileNode(n logical.Node) (frag, error) {
	if tmp, ok := c.memo[n]; ok {
		return c.loadFrag(tmp, c.producerOf(tmp)), nil
	}
	f, err := c.compileFresh(n)
	if err != nil {
		return frag{}, err
	}
	if _, isLoad := n.(*logical.Load); !isLoad && c.consumers[n] > 1 {
		tmp := c.seal(f)
		c.memo[n] = tmp
		return c.loadFrag(tmp, f.jb.id), nil
	}
	return f, nil
}

// producerOf finds the job that writes path ("" if none: a raw dataset).
func (c *compiler) producerOf(path string) string {
	for _, j := range c.wf.Jobs {
		if j.OutputPath == path {
			return j.ID
		}
	}
	return ""
}

func (c *compiler) compileFresh(n logical.Node) (frag, error) {
	switch x := n.(type) {
	case *logical.Load:
		jb := c.newJob()
		ld := jb.plan.Add(&physical.Op{Kind: physical.KLoad, Path: x.Path})
		return frag{jb: jb, tip: ld.ID}, nil

	case *logical.ForEach:
		in, err := c.compileNode(x.In)
		if err != nil {
			return frag{}, err
		}
		op := in.jb.plan.Add(&physical.Op{
			Kind: physical.KForEach, Exprs: x.Exprs, InputIDs: []int{in.tip},
		})
		return frag{jb: in.jb, tip: op.ID}, nil

	case *logical.Filter:
		in, err := c.compileNode(x.In)
		if err != nil {
			return frag{}, err
		}
		op := in.jb.plan.Add(&physical.Op{
			Kind: physical.KFilter, Cond: x.Cond, InputIDs: []int{in.tip},
		})
		return frag{jb: in.jb, tip: op.ID}, nil

	case *logical.Limit:
		in, err := c.compileNode(x.In)
		if err != nil {
			return frag{}, err
		}
		op := in.jb.plan.Add(&physical.Op{
			Kind: physical.KLimit, N: x.N, InputIDs: []int{in.tip},
		})
		return frag{jb: in.jb, tip: op.ID}, nil

	case *logical.Union:
		return c.compileUnion(x)

	case *logical.Group:
		return c.compileGroup(x)

	case *logical.Join:
		return c.compileJoin(x)

	case *logical.Distinct:
		return c.compileDistinct(x)

	case *logical.Order:
		return c.compileOrder(x)
	}
	return frag{}, fmt.Errorf("mrcompile: unsupported logical node %T", n)
}

func (c *compiler) compileUnion(u *logical.Union) (frag, error) {
	frags := make([]frag, len(u.Ins))
	for i, in := range u.Ins {
		f, err := c.compileNode(in)
		if err != nil {
			return frag{}, err
		}
		frags[i] = c.asMapPhase(f)
	}
	dst := frags[0]
	tips := []int{dst.tip}
	for _, f := range frags[1:] {
		tips = append(tips, mergeInto(dst, f))
	}
	op := dst.jb.plan.Add(&physical.Op{Kind: physical.KUnion, InputIDs: tips})
	return frag{jb: dst.jb, tip: op.ID}, nil
}

// shuffleInto builds the blocking LR/Shuffle/Package spine over the
// (map-phase, merged) input tips inside dst.
func shuffleInto(dst frag, tips []int, keys [][]expr.Expr, groupAll, dropNull bool, mode physical.PackageMode, desc []bool) frag {
	plan := dst.jb.plan
	var lrIDs []int
	for i, tip := range tips {
		lr := plan.Add(&physical.Op{
			Kind:     physical.KLocalRearrange,
			KeyExprs: keys[i],
			Branch:   i,
			GroupAll: groupAll,
			DropNull: dropNull,
			InputIDs: []int{tip},
		})
		lrIDs = append(lrIDs, lr.ID)
	}
	sh := plan.Add(&physical.Op{Kind: physical.KShuffle, InputIDs: lrIDs})
	pkg := plan.Add(&physical.Op{
		Kind:      physical.KPackage,
		Mode:      mode,
		NumInputs: len(tips),
		Desc:      desc,
		InputIDs:  []int{sh.ID},
	})
	dst.jb.reduce = true
	return frag{jb: dst.jb, tip: pkg.ID}
}

// gatherMapInputs compiles the inputs of a blocking operator, forces
// them into map phase, and merges them into one job.
func (c *compiler) gatherMapInputs(ins []logical.Node) (frag, []int, error) {
	frags := make([]frag, len(ins))
	for i, in := range ins {
		f, err := c.compileNode(in)
		if err != nil {
			return frag{}, nil, err
		}
		frags[i] = c.asMapPhase(f)
	}
	// A blocking operator cannot live in a job that already shuffles
	// (possible when a shared input re-enters): ensured by asMapPhase.
	dst := frags[0]
	tips := []int{dst.tip}
	for _, f := range frags[1:] {
		tips = append(tips, mergeInto(dst, f))
	}
	return dst, tips, nil
}

func (c *compiler) compileGroup(g *logical.Group) (frag, error) {
	dst, tips, err := c.gatherMapInputs(g.Ins)
	if err != nil {
		return frag{}, err
	}
	out := shuffleInto(dst, tips, g.Keys, g.All, false, physical.PkgGroup, nil)
	if g.Parallel > 0 {
		out.jb.reducers = g.Parallel
	}
	if g.All {
		out.jb.reducers = 1
	}
	return out, nil
}

func (c *compiler) compileJoin(j *logical.Join) (frag, error) {
	dst, tips, err := c.gatherMapInputs(j.Ins)
	if err != nil {
		return frag{}, err
	}
	out := shuffleInto(dst, tips, j.Keys, false, true, physical.PkgGroup, nil)
	fl := out.jb.plan.Add(&physical.Op{
		Kind:      physical.KJoinFlatten,
		NumInputs: len(tips),
		InputIDs:  []int{out.tip},
	})
	if j.Parallel > 0 {
		out.jb.reducers = j.Parallel
	}
	return frag{jb: out.jb, tip: fl.ID}, nil
}

func (c *compiler) compileDistinct(d *logical.Distinct) (frag, error) {
	arity := d.In.Schema().Len()
	if arity == 0 {
		return frag{}, fmt.Errorf("mrcompile: DISTINCT requires a known schema on %q", d.In.Alias())
	}
	in, err := c.compileNode(d.In)
	if err != nil {
		return frag{}, err
	}
	in = c.asMapPhase(in)
	keys := make([]expr.Expr, arity)
	for i := range keys {
		keys[i] = expr.NewCol(i)
	}
	out := shuffleInto(in, []int{in.tip}, [][]expr.Expr{keys}, false, false, physical.PkgDistinct, nil)
	if d.Parallel > 0 {
		out.jb.reducers = d.Parallel
	}
	return out, nil
}

func (c *compiler) compileOrder(o *logical.Order) (frag, error) {
	in, err := c.compileNode(o.In)
	if err != nil {
		return frag{}, err
	}
	in = c.asMapPhase(in)
	out := shuffleInto(in, []int{in.tip}, [][]expr.Expr{o.Keys}, false, false, physical.PkgFlat, o.Desc)
	out.jb.reducers = 1 // total order needs a single reducer
	return out, nil
}
