package logical

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/piglatin"
	"repro/internal/tuple"
)

// Resolve converts a name-based parser expression into a positional
// runtime expression against the given input schema. Aggregate calls
// (COUNT/SUM/…) over bag columns become expr.Agg; dotted projections of
// bag columns become expr.BagField.
func Resolve(e piglatin.Expr, sch *tuple.Schema) (expr.Expr, error) {
	switch x := e.(type) {
	case piglatin.Ident:
		idx, err := lookupColumn(sch, x.Name)
		if err != nil {
			return nil, err
		}
		return expr.NewCol(idx), nil

	case piglatin.Dollar:
		if sch.Len() > 0 && x.Idx >= sch.Len() {
			return nil, fmt.Errorf("logical: $%d out of range for schema %s", x.Idx, sch)
		}
		return expr.NewCol(x.Idx), nil

	case piglatin.IntLit:
		return expr.Const{V: x.V}, nil
	case piglatin.FloatLit:
		return expr.Const{V: x.V}, nil
	case piglatin.StrLit:
		return expr.Const{V: x.V}, nil

	case piglatin.Neg:
		inner, err := Resolve(x.E, sch)
		if err != nil {
			return nil, err
		}
		return expr.Binary{Op: expr.OpSub, L: expr.Const{V: int64(0)}, R: inner}, nil

	case piglatin.NotExpr:
		inner, err := Resolve(x.E, sch)
		if err != nil {
			return nil, err
		}
		return expr.Not{E: inner}, nil

	case piglatin.BinExpr:
		return resolveBinary(x, sch)

	case piglatin.Dot:
		return resolveDot(x, sch)

	case piglatin.Call:
		return resolveCall(x, sch)

	case piglatin.Star:
		return nil, fmt.Errorf("logical: '*' is only valid directly in a GENERATE list")
	}
	return nil, fmt.Errorf("logical: cannot resolve expression %T", e)
}

// lookupColumn finds a column by name, trying the exact (case-folded)
// name first and then an unambiguous "alias::name" suffix match, so that
// post-join fields can be referenced by their short names.
func lookupColumn(sch *tuple.Schema, name string) (int, error) {
	if idx := sch.IndexOf(name); idx >= 0 {
		return idx, nil
	}
	found := -1
	suffix := "::" + strings.ToLower(name)
	for i, f := range sch.Fields {
		if strings.HasSuffix(strings.ToLower(f.Name), suffix) {
			if found >= 0 {
				return -1, fmt.Errorf("logical: ambiguous column %q in schema %s", name, sch)
			}
			found = i
		}
	}
	if found < 0 {
		return -1, fmt.Errorf("logical: unknown column %q in schema %s", name, sch)
	}
	return found, nil
}

func resolveBinary(x piglatin.BinExpr, sch *tuple.Schema) (expr.Expr, error) {
	l, err := Resolve(x.L, sch)
	if err != nil {
		return nil, err
	}
	r, err := Resolve(x.R, sch)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "+":
		return expr.Binary{Op: expr.OpAdd, L: l, R: r}, nil
	case "-":
		return expr.Binary{Op: expr.OpSub, L: l, R: r}, nil
	case "*":
		return expr.Binary{Op: expr.OpMul, L: l, R: r}, nil
	case "/":
		return expr.Binary{Op: expr.OpDiv, L: l, R: r}, nil
	case "%":
		return expr.Binary{Op: expr.OpMod, L: l, R: r}, nil
	case "==":
		return expr.Compare{Op: expr.CmpEq, L: l, R: r}, nil
	case "!=":
		return expr.Compare{Op: expr.CmpNe, L: l, R: r}, nil
	case "<":
		return expr.Compare{Op: expr.CmpLt, L: l, R: r}, nil
	case "<=":
		return expr.Compare{Op: expr.CmpLe, L: l, R: r}, nil
	case ">":
		return expr.Compare{Op: expr.CmpGt, L: l, R: r}, nil
	case ">=":
		return expr.Compare{Op: expr.CmpGe, L: l, R: r}, nil
	case "and":
		return expr.Logic{Op: expr.LogicAnd, L: l, R: r}, nil
	case "or":
		return expr.Logic{Op: expr.LogicOr, L: l, R: r}, nil
	}
	return nil, fmt.Errorf("logical: unknown binary operator %q", x.Op)
}

// resolveDot handles "bagcol.field" and "bagcol.$n": projecting a column
// out of a bag-typed column.
func resolveDot(x piglatin.Dot, sch *tuple.Schema) (expr.Expr, error) {
	baseIdent, ok := x.Base.(piglatin.Ident)
	if !ok {
		return nil, fmt.Errorf("logical: dotted access requires a column base, got %T", x.Base)
	}
	idx, err := lookupColumn(sch, baseIdent.Name)
	if err != nil {
		return nil, err
	}
	field := sch.Fields[idx]
	inner := field.Inner
	fieldIdx := x.FieldIdx
	if fieldIdx < 0 {
		if inner == nil {
			return nil, fmt.Errorf("logical: column %q has no nested schema for .%s", baseIdent.Name, x.Field)
		}
		idx, err := lookupColumn(inner, x.Field)
		if err != nil {
			return nil, fmt.Errorf("logical: no field %q inside %q (schema %s)", x.Field, baseIdent.Name, inner)
		}
		fieldIdx = idx
	}
	return expr.BagField{Bag: expr.NewCol(idx), Field: fieldIdx}, nil
}

func resolveCall(x piglatin.Call, sch *tuple.Schema) (expr.Expr, error) {
	if kind, ok := expr.AggKindByName(x.Name); ok {
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("logical: %s takes exactly one argument", strings.ToUpper(x.Name))
		}
		arg, err := Resolve(x.Args[0], sch)
		if err != nil {
			return nil, err
		}
		switch a := arg.(type) {
		case expr.BagField:
			bagCol, ok := a.Bag.(expr.Col)
			if !ok {
				return nil, fmt.Errorf("logical: %s argument must project a bag column", x.Name)
			}
			return expr.Agg{Kind: kind, Bag: bagCol, Field: a.Field}, nil
		case expr.Col:
			if sch.Len() > a.Index && sch.Fields[a.Index].Type != tuple.TypeBag {
				return nil, fmt.Errorf("logical: %s argument %q is not a bag", x.Name, sch.Fields[a.Index].Name)
			}
			return expr.Agg{Kind: kind, Bag: a, Field: -1}, nil
		default:
			return nil, fmt.Errorf("logical: unsupported %s argument %s", x.Name, arg)
		}
	}
	if expr.IsScalarFunc(x.Name) {
		f := expr.Func{Name: strings.ToUpper(x.Name)}
		for _, a := range x.Args {
			ra, err := Resolve(a, sch)
			if err != nil {
				return nil, err
			}
			f.Args = append(f.Args, ra)
		}
		return f, nil
	}
	return nil, fmt.Errorf("logical: unknown function %q", x.Name)
}
