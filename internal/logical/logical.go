// Package logical builds logical query plans from parsed Pig Latin
// scripts. The builder resolves column names against propagated schemas,
// turning the parser's name-based expressions into the positional
// expressions of internal/expr, exactly the job Pig's front end performs
// before physical compilation.
package logical

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/piglatin"
	"repro/internal/tuple"
)

// Node is a logical operator in the plan DAG.
type Node interface {
	// Inputs returns upstream operators.
	Inputs() []Node
	// Schema returns the output schema.
	Schema() *tuple.Schema
	// Alias returns the Pig alias this node was bound to ("" for Store).
	Alias() string
}

type base struct {
	alias string
	sch   *tuple.Schema
}

func (b *base) Schema() *tuple.Schema { return b.sch }
func (b *base) Alias() string         { return b.alias }

// Load reads a dataset from the DFS.
type Load struct {
	base
	Path string
}

// Inputs returns no inputs; Load is a plan root.
func (*Load) Inputs() []Node { return nil }

// ForEach projects each input tuple through Exprs.
type ForEach struct {
	base
	In    Node
	Exprs []expr.Expr
}

// Inputs returns the single input.
func (f *ForEach) Inputs() []Node { return []Node{f.In} }

// Filter keeps tuples satisfying Cond.
type Filter struct {
	base
	In   Node
	Cond expr.Expr
}

// Inputs returns the single input.
func (f *Filter) Inputs() []Node { return []Node{f.In} }

// Group groups (one input) or cogroups (several inputs) by key
// expressions. All marks the GROUP … ALL form.
type Group struct {
	base
	Ins      []Node
	Keys     [][]expr.Expr
	All      bool
	Parallel int
}

// Inputs returns the grouped inputs.
func (g *Group) Inputs() []Node { return g.Ins }

// Join equi-joins the inputs on their key expressions.
type Join struct {
	base
	Ins      []Node
	Keys     [][]expr.Expr
	Parallel int
}

// Inputs returns the joined inputs.
func (j *Join) Inputs() []Node { return j.Ins }

// Distinct removes duplicate tuples.
type Distinct struct {
	base
	In       Node
	Parallel int
}

// Inputs returns the single input.
func (d *Distinct) Inputs() []Node { return []Node{d.In} }

// Union concatenates its inputs.
type Union struct {
	base
	Ins []Node
}

// Inputs returns the unioned inputs.
func (u *Union) Inputs() []Node { return u.Ins }

// Order sorts by key expressions.
type Order struct {
	base
	In   Node
	Keys []expr.Expr
	Desc []bool
}

// Inputs returns the single input.
func (o *Order) Inputs() []Node { return []Node{o.In} }

// Limit keeps the first N tuples.
type Limit struct {
	base
	In Node
	N  int64
}

// Inputs returns the single input.
func (l *Limit) Inputs() []Node { return []Node{l.In} }

// Store writes its input to the DFS; Stores are the plan sinks.
type Store struct {
	base
	In   Node
	Path string
}

// Inputs returns the single input.
func (s *Store) Inputs() []Node { return []Node{s.In} }

// Plan is a logical plan: the list of Store sinks of a script.
type Plan struct {
	Stores []*Store
}

// Build compiles a parsed script into a logical plan, resolving all
// column references. Every alias must be defined before use; at least
// one STORE must be present.
func Build(script *piglatin.Script) (*Plan, error) {
	b := &builder{env: map[string]Node{}}
	plan := &Plan{}
	for _, st := range script.Stmts {
		switch s := st.(type) {
		case *piglatin.Assign:
			n, err := b.buildOp(s.Alias, s.Op)
			if err != nil {
				return nil, err
			}
			b.env[strings.ToLower(s.Alias)] = n
		case *piglatin.Store:
			in, err := b.lookup(s.Alias)
			if err != nil {
				return nil, err
			}
			plan.Stores = append(plan.Stores, &Store{
				base: base{sch: in.Schema()},
				In:   in,
				Path: s.Path,
			})
		default:
			return nil, fmt.Errorf("logical: unknown statement %T", st)
		}
	}
	if len(plan.Stores) == 0 {
		return nil, fmt.Errorf("logical: script has no STORE statement")
	}
	return plan, nil
}

type builder struct {
	env map[string]Node
}

func (b *builder) lookup(alias string) (Node, error) {
	n, ok := b.env[strings.ToLower(alias)]
	if !ok {
		return nil, fmt.Errorf("logical: undefined alias %q", alias)
	}
	return n, nil
}

func (b *builder) buildOp(alias string, op piglatin.Op) (Node, error) {
	switch o := op.(type) {
	case *piglatin.Load:
		sch := &tuple.Schema{}
		if o.SchemaSrc != "" {
			s, err := tuple.ParseSchema(o.SchemaSrc)
			if err != nil {
				return nil, err
			}
			sch = s
		}
		return &Load{base: base{alias: alias, sch: sch}, Path: o.Path}, nil

	case *piglatin.ForEach:
		in, err := b.lookup(o.Input)
		if err != nil {
			return nil, err
		}
		return buildForEach(alias, in, o.Items)

	case *piglatin.Filter:
		in, err := b.lookup(o.Input)
		if err != nil {
			return nil, err
		}
		cond, err := Resolve(o.Cond, in.Schema())
		if err != nil {
			return nil, err
		}
		return &Filter{base: base{alias: alias, sch: in.Schema()}, In: in, Cond: cond}, nil

	case *piglatin.Group:
		return b.buildGroup(alias, o)

	case *piglatin.Join:
		return b.buildJoin(alias, o)

	case *piglatin.Distinct:
		in, err := b.lookup(o.Input)
		if err != nil {
			return nil, err
		}
		return &Distinct{
			base: base{alias: alias, sch: in.Schema()}, In: in, Parallel: o.Parallel,
		}, nil

	case *piglatin.Union:
		ins := make([]Node, len(o.Inputs))
		arity := -1
		for i, name := range o.Inputs {
			n, err := b.lookup(name)
			if err != nil {
				return nil, err
			}
			ins[i] = n
			if a := n.Schema().Len(); arity == -1 {
				arity = a
			} else if a != arity && a != 0 && arity != 0 {
				return nil, fmt.Errorf("logical: union of incompatible arities %d and %d", arity, a)
			}
		}
		return &Union{base: base{alias: alias, sch: ins[0].Schema()}, Ins: ins}, nil

	case *piglatin.Order:
		in, err := b.lookup(o.Input)
		if err != nil {
			return nil, err
		}
		ord := &Order{base: base{alias: alias, sch: in.Schema()}, In: in}
		for _, k := range o.Keys {
			e, err := Resolve(k.E, in.Schema())
			if err != nil {
				return nil, err
			}
			ord.Keys = append(ord.Keys, e)
			ord.Desc = append(ord.Desc, k.Desc)
		}
		return ord, nil

	case *piglatin.Limit:
		in, err := b.lookup(o.Input)
		if err != nil {
			return nil, err
		}
		return &Limit{base: base{alias: alias, sch: in.Schema()}, In: in, N: o.N}, nil
	}
	return nil, fmt.Errorf("logical: unknown operator %T", op)
}

func buildForEach(alias string, in Node, items []piglatin.GenItem) (Node, error) {
	insch := in.Schema()
	fe := &ForEach{base: base{alias: alias}, In: in}
	out := &tuple.Schema{}
	for _, item := range items {
		if _, isStar := item.E.(piglatin.Star); isStar {
			if insch.Len() == 0 {
				return nil, fmt.Errorf("logical: '*' requires a known schema on %s", in.Alias())
			}
			for i, f := range insch.Fields {
				fe.Exprs = append(fe.Exprs, expr.NewCol(i))
				out.Fields = append(out.Fields, f)
			}
			continue
		}
		e, err := Resolve(item.E, insch)
		if err != nil {
			return nil, err
		}
		fe.Exprs = append(fe.Exprs, e)
		out.Fields = append(out.Fields, outputField(item, e, insch))
	}
	fe.sch = out
	return fe, nil
}

// outputField derives the schema field for a generate item: the AS name
// wins, then a pass-through column keeps its input name and nested
// schema, and anything else gets a positional name.
func outputField(item piglatin.GenItem, e expr.Expr, insch *tuple.Schema) tuple.Field {
	f := tuple.Field{Name: item.As}
	if c, ok := e.(expr.Col); ok && c.Index < insch.Len() {
		in := insch.Fields[c.Index]
		if f.Name == "" {
			f.Name = in.Name
		}
		f.Type = in.Type
		f.Inner = in.Inner
		return f
	}
	if f.Name == "" {
		f.Name = fmt.Sprintf("f%d", len(insch.Fields))
	}
	switch e.(type) {
	case expr.Agg:
		f.Type = tuple.TypeNull // numeric, but depends on data
	}
	return f
}

func (b *builder) buildGroup(alias string, o *piglatin.Group) (Node, error) {
	g := &Group{base: base{alias: alias}, All: o.All, Parallel: o.Parallel}
	out := &tuple.Schema{}
	var groupField tuple.Field
	for i, name := range o.Inputs {
		in, err := b.lookup(name)
		if err != nil {
			return nil, err
		}
		g.Ins = append(g.Ins, in)
		var keys []expr.Expr
		if !o.All {
			for _, k := range o.Keys[i] {
				e, err := Resolve(k, in.Schema())
				if err != nil {
					return nil, err
				}
				keys = append(keys, e)
			}
		}
		g.Keys = append(g.Keys, keys)
		if i == 0 {
			groupField = groupSchemaField(keys, in.Schema())
		}
		out.Fields = append(out.Fields, tuple.Field{
			Name:  name,
			Type:  tuple.TypeBag,
			Inner: in.Schema(),
		})
	}
	out.Fields = append([]tuple.Field{groupField}, out.Fields...)
	g.sch = out
	return g, nil
}

// groupSchemaField describes the "group" column: the key itself for a
// single key, a tuple for composite keys.
func groupSchemaField(keys []expr.Expr, insch *tuple.Schema) tuple.Field {
	f := tuple.Field{Name: "group"}
	if len(keys) == 1 {
		if c, ok := keys[0].(expr.Col); ok && c.Index < insch.Len() {
			f.Type = insch.Fields[c.Index].Type
		}
		return f
	}
	f.Type = tuple.TypeTuple
	return f
}

func (b *builder) buildJoin(alias string, o *piglatin.Join) (Node, error) {
	j := &Join{base: base{alias: alias}, Parallel: o.Parallel}
	out := &tuple.Schema{}
	for i, name := range o.Inputs {
		in, err := b.lookup(name)
		if err != nil {
			return nil, err
		}
		j.Ins = append(j.Ins, in)
		var keys []expr.Expr
		for _, k := range o.Keys[i] {
			e, err := Resolve(k, in.Schema())
			if err != nil {
				return nil, err
			}
			keys = append(keys, e)
		}
		j.Keys = append(j.Keys, keys)
		for _, f := range in.Schema().Fields {
			out.Fields = append(out.Fields, tuple.Field{
				Name:  name + "::" + f.Name,
				Type:  f.Type,
				Inner: f.Inner,
			})
		}
	}
	j.sch = out
	return j, nil
}
