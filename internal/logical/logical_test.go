package logical

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/piglatin"
	"repro/internal/tuple"
)

func mustBuild(t *testing.T, src string) *Plan {
	t.Helper()
	script, err := piglatin.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	p, err := Build(script)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestBuildQ1(t *testing.T) {
	p := mustBuild(t, `
A = load 'page_views' as (user, timestamp, est_revenue, page_info, page_links);
B = foreach A generate user, est_revenue;
alpha = load 'users' as (name, phone, address, city);
beta = foreach alpha generate name;
C = join beta by name, B by user;
store C into 'L2_out';
`)
	if len(p.Stores) != 1 {
		t.Fatalf("stores = %d", len(p.Stores))
	}
	j, ok := p.Stores[0].In.(*Join)
	if !ok {
		t.Fatalf("store input = %T", p.Stores[0].In)
	}
	if len(j.Ins) != 2 {
		t.Fatalf("join inputs = %d", len(j.Ins))
	}
	// Join schema has qualified names from both sides.
	names := j.Schema().Names()
	want := []string{"beta::name", "B::user", "B::est_revenue"}
	for i, w := range want {
		if names[i] != w {
			t.Errorf("join schema[%d] = %q, want %q", i, names[i], w)
		}
	}
	// Key of left side resolves to column 0 of beta's projection.
	if j.Keys[0][0].String() != "$0" {
		t.Errorf("left key = %s", j.Keys[0][0])
	}
	if j.Keys[1][0].String() != "$0" {
		t.Errorf("right key = %s", j.Keys[1][0])
	}
}

func TestBuildGroupAndAggregate(t *testing.T) {
	p := mustBuild(t, `
C = load 'joined' as (name, user, est_revenue);
D = group C by $0;
E = foreach D generate group, SUM(C.est_revenue);
store E into 'L3_out';
`)
	fe := p.Stores[0].In.(*ForEach)
	if fe.Exprs[0].String() != "$0" {
		t.Errorf("group ref = %s", fe.Exprs[0])
	}
	agg, ok := fe.Exprs[1].(expr.Agg)
	if !ok {
		t.Fatalf("second expr = %T", fe.Exprs[1])
	}
	if agg.Kind != expr.AggSum || agg.Field != 2 {
		t.Errorf("agg = %+v; want SUM of inner field 2", agg)
	}
	g := fe.In.(*Group)
	sch := g.Schema()
	if sch.Fields[0].Name != "group" {
		t.Errorf("group schema field 0 = %q", sch.Fields[0].Name)
	}
	if sch.Fields[1].Name != "C" || sch.Fields[1].Type != tuple.TypeBag {
		t.Errorf("group schema field 1 = %+v", sch.Fields[1])
	}
	if sch.Fields[1].Inner.IndexOf("est_revenue") != 2 {
		t.Errorf("bag inner schema lost")
	}
}

func TestBuildCountWholeBag(t *testing.T) {
	p := mustBuild(t, `
A = load 'x' as (a, b);
B = group A by a;
C = foreach B generate group, COUNT(A);
store C into 'o';
`)
	fe := p.Stores[0].In.(*ForEach)
	agg := fe.Exprs[1].(expr.Agg)
	if agg.Kind != expr.AggCount || agg.Field != -1 {
		t.Errorf("agg = %+v", agg)
	}
}

func TestBuildGroupAll(t *testing.T) {
	p := mustBuild(t, `
A = load 'x' as (a, b);
B = group A all;
C = foreach B generate COUNT(A), SUM(A.b);
store C into 'o';
`)
	g := p.Stores[0].In.(*ForEach).In.(*Group)
	if !g.All {
		t.Errorf("not marked ALL")
	}
	if len(g.Keys[0]) != 0 {
		t.Errorf("ALL group has keys: %v", g.Keys)
	}
}

func TestBuildCoGroup(t *testing.T) {
	p := mustBuild(t, `
A = load 'x' as (k, v);
B = load 'y' as (k, w);
C = cogroup A by k, B by k;
D = filter C by ISEMPTY(B);
E = foreach D generate group;
store E into 'anti';
`)
	fe := p.Stores[0].In.(*ForEach)
	fl := fe.In.(*Filter)
	fn, ok := fl.Cond.(expr.Func)
	if !ok || fn.Name != "ISEMPTY" {
		t.Fatalf("cond = %v", fl.Cond)
	}
	// B's bag is column 2 of (group, A, B).
	if fn.Args[0].String() != "$2" {
		t.Errorf("ISEMPTY arg = %s", fn.Args[0])
	}
	cg := fl.In.(*Group)
	if len(cg.Ins) != 2 {
		t.Errorf("cogroup inputs = %d", len(cg.Ins))
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []string{
		`B = foreach A generate x; store B into 'o';`,                         // undefined alias
		`A = load 'x' as (a); B = foreach A generate nope; store B into 'o';`, // unknown column
		`A = load 'x' as (a); store A into 'o'; C = foreach B generate a;`,    // undefined later alias is fine? B undefined -> error
		`A = load 'x' as (a);`, // no store
		`A = load 'x' as (a); B = foreach A generate SUM(a); store B into 'o';`, // SUM of non-bag
		`A = load 'x' as (a); B = foreach A generate BOGUS(a); store B into 'o';`,
	}
	for _, src := range cases {
		script, err := piglatin.Parse(src)
		if err != nil {
			continue // parse errors also count
		}
		if _, err := Build(script); err == nil {
			t.Errorf("Build(%q) should fail", src)
		}
	}
}

func TestAmbiguousShortName(t *testing.T) {
	src := `
A = load 'x' as (k, v);
B = load 'y' as (k, w);
C = join A by k, B by k;
D = foreach C generate k;
store D into 'o';
`
	script, _ := piglatin.Parse(src)
	if _, err := Build(script); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous join column should fail, got %v", err)
	}
}

func TestUnambiguousShortNameAfterJoin(t *testing.T) {
	mustBuild(t, `
A = load 'x' as (k, v);
B = load 'y' as (j, w);
C = join A by k, B by j;
D = foreach C generate v, w;
store D into 'o';
`)
}

func TestStarExpansion(t *testing.T) {
	p := mustBuild(t, `
A = load 'x' as (a, b, c);
B = foreach A generate *;
store B into 'o';
`)
	fe := p.Stores[0].In.(*ForEach)
	if len(fe.Exprs) != 3 {
		t.Fatalf("star expanded to %d exprs", len(fe.Exprs))
	}
	if fe.Schema().Names()[2] != "c" {
		t.Errorf("schema = %v", fe.Schema().Names())
	}
}

func TestOptimizeMergeFilters(t *testing.T) {
	p := mustBuild(t, `
A = load 'x' as (a, b);
B = filter A by a > 1;
C = filter B by b < 5;
store C into 'o';
`)
	Optimize(p)
	f, ok := p.Stores[0].In.(*Filter)
	if !ok {
		t.Fatalf("store input = %T", p.Stores[0].In)
	}
	if _, ok := f.In.(*Load); !ok {
		t.Fatalf("filters not merged; inner = %T", f.In)
	}
	if _, ok := f.Cond.(expr.Logic); !ok {
		t.Errorf("merged cond = %T", f.Cond)
	}
}

func TestOptimizePushFilterThroughForEach(t *testing.T) {
	p := mustBuild(t, `
A = load 'x' as (a, b, c);
B = foreach A generate a, c;
C = filter B by c > 10;
store C into 'o';
`)
	Optimize(p)
	fe, ok := p.Stores[0].In.(*ForEach)
	if !ok {
		t.Fatalf("store input = %T, want ForEach on top", p.Stores[0].In)
	}
	f, ok := fe.In.(*Filter)
	if !ok {
		t.Fatalf("foreach input = %T, want pushed Filter", fe.In)
	}
	// The pushed condition references the original column c = $2.
	if !strings.Contains(f.Cond.String(), "$2") {
		t.Errorf("pushed cond = %s, want reference to $2", f.Cond)
	}
}

func TestOptimizeDoesNotPushThroughComputedColumns(t *testing.T) {
	p := mustBuild(t, `
A = load 'x' as (a, b);
B = foreach A generate a + b as s;
C = filter B by s > 10;
store C into 'o';
`)
	Optimize(p)
	if _, ok := p.Stores[0].In.(*Filter); !ok {
		t.Fatalf("filter over computed column must not be pushed; got %T", p.Stores[0].In)
	}
}
