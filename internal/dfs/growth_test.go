package dfs

import (
	"fmt"
	"testing"
)

// TestClassifyGrowth drives the snapshot/classify contract on both
// backends: unchanged datasets report GrowthNone, strictly extended
// inventories report GrowthAppend with exactly the new files, and any
// disturbance of a snapshot file — size change, removal, or a
// same-inventory version bump — degrades to GrowthRewrite.
func TestClassifyGrowth(t *testing.T) {
	forEachBackend(t, func(t *testing.T, fs Backend) {
		for i := 0; i < 3; i++ {
			if err := fs.WriteFile(fmt.Sprintf("logs/part-%05d", i), []byte("0123456789")); err != nil {
				t.Fatal(err)
			}
		}
		base := TakeSnapshot(fs, "logs")
		if base.Version == 0 || base.Bytes != 30 || len(base.Files) != 3 {
			t.Fatalf("base snapshot: %+v", base)
		}

		if g := Classify(fs, "logs", base); g.Kind != GrowthNone {
			t.Fatalf("unchanged dataset classified %v", g.Kind)
		}

		// Append two parts: the growth is exactly those files.
		if err := fs.WriteFile("logs/part-00003", []byte("abcdef")); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile("logs/part-00004", []byte("gh")); err != nil {
			t.Fatal(err)
		}
		g := Classify(fs, "logs", base)
		if g.Kind != GrowthAppend {
			t.Fatalf("append classified %v", g.Kind)
		}
		if g.NewBytes != 8 || len(g.NewFiles) != 2 {
			t.Fatalf("append slice: %+v", g)
		}
		if p := g.NewPaths(); p[0] != "logs/part-00003" || p[1] != "logs/part-00004" {
			t.Fatalf("NewPaths: %v", p)
		}
		if g.Version != fs.Version("logs") {
			t.Fatalf("growth version %d, live %d", g.Version, fs.Version("logs"))
		}

		// Grown folds the consumed slice into the base: classifying the
		// same live state against it sees no further growth.
		grown := g.Grown(base)
		if grown.Bytes != 38 || len(grown.Files) != 5 || grown.Version != g.Version {
			t.Fatalf("grown snapshot: %+v", grown)
		}
		if g2 := Classify(fs, "logs", grown); g2.Kind != GrowthNone {
			t.Fatalf("grown base against unchanged live state classified %v", g2.Kind)
		}

		// A base file changing size is a rewrite.
		if err := fs.WriteFile("logs/part-00000", []byte("longer than before")); err != nil {
			t.Fatal(err)
		}
		if g := Classify(fs, "logs", grown); g.Kind != GrowthRewrite {
			t.Fatalf("resized base file classified %v", g.Kind)
		}

		// A base file vanishing is a rewrite even if new files appeared.
		base2 := TakeSnapshot(fs, "logs")
		if err := fs.Delete("logs/part-00001"); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile("logs/part-00009", []byte("xy")); err != nil {
			t.Fatal(err)
		}
		if g := Classify(fs, "logs", base2); g.Kind != GrowthRewrite {
			t.Fatalf("removed base file classified %v", g.Kind)
		}
	})
}

// TestClassifySameSizeRewrite is the corner the name+size proxy must
// refuse to bless: the version moved but the inventory is identical —
// an in-place rewrite to the same sizes is indistinguishable from it,
// so the classification must be GrowthRewrite, never GrowthNone.
func TestClassifySameSizeRewrite(t *testing.T) {
	forEachBackend(t, func(t *testing.T, fs Backend) {
		if err := fs.WriteFile("ds/part-00000", []byte("aaaa")); err != nil {
			t.Fatal(err)
		}
		base := TakeSnapshot(fs, "ds")
		if err := fs.WriteFile("ds/part-00000", []byte("bbbb")); err != nil {
			t.Fatal(err)
		}
		g := Classify(fs, "ds", base)
		if g.Kind != GrowthRewrite {
			t.Fatalf("same-size in-place rewrite classified %v, want GrowthRewrite", g.Kind)
		}
	})
}
