// Package dfs implements the distributed file system substrate that the
// MapReduce engine and the ReStore repository store data in. It plays the
// role HDFS plays for Hadoop: a flat namespace of immutable files grouped
// into directories, where a "dataset" is a directory of part files
// written by the tasks of a job.
//
// The implementation is an in-memory store with the metadata ReStore
// needs: per-dataset modification versions (repository eviction Rule 4
// evicts entries whose inputs were deleted or modified — versions are
// tracked at dataset granularity, where a dataset is the directory
// holding a job's part files), per-dataset byte accounting (the storage
// manager's budget enforcement and the janitor's orphan sweep read
// dataset sizes in O(datasets), never O(files)), and global byte meters
// that feed the cluster cost model.
package dfs

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// FS is an in-memory distributed file system. All methods are safe for
// concurrent use.
type FS struct {
	mu      sync.RWMutex
	files   map[string]*file
	version map[string]int64 // per top-level dataset path
	// datasets holds the live byte and file totals of every dataset,
	// maintained on write, delete and rename, so size queries and the
	// storage manager's budget accounting iterate datasets instead of
	// files.
	datasets map[string]*dsInfo
	nextVer  int64

	// The byte meters are atomics, not mu-guarded fields, so the read
	// path (Open/ReadFile) can meter under the shared read lock instead
	// of serializing every concurrent reader against writers.
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64

	// writeFault, when non-nil, intercepts every file commit (the Close
	// of a Create, WriteFile, and the WriteFileIf CAS path): it may
	// truncate the committed bytes and/or return an error, simulating a
	// crash that tears a write mid-flight. Test-only; see SetWriteFault.
	writeFault func(path string, data []byte) ([]byte, error)
}

type file struct {
	data []byte
}

// dsInfo is the live accounting of one dataset.
type dsInfo struct {
	bytes int64
	files int
}

// New returns an empty file system.
func New() *FS {
	return &FS{
		files:    make(map[string]*file),
		version:  make(map[string]int64),
		datasets: make(map[string]*dsInfo),
	}
}

// clean normalizes a path: no leading slash, no trailing slash.
func clean(path string) string {
	path = strings.TrimPrefix(path, "/")
	path = strings.TrimSuffix(path, "/")
	return path
}

// datasetOf returns the dataset (top-level directory) a path belongs to.
// "pigmix/page_views/part-00000" → "pigmix/page_views" when the path has
// a part file component, else the path itself.
func datasetOf(path string) string {
	path = clean(path)
	if i := strings.LastIndex(path, "/"); i >= 0 {
		last := path[i+1:]
		if strings.HasPrefix(last, "part-") {
			return path[:i]
		}
	}
	return path
}

// Create opens a new file for writing, truncating any existing file at
// the path. Close commits the file and bumps its dataset version.
func (fs *FS) Create(path string) io.WriteCloser {
	return &fileWriter{fs: fs, path: clean(path)}
}

type fileWriter struct {
	fs   *FS
	path string
	buf  bytes.Buffer
	ver  int64
}

func (w *fileWriter) Write(p []byte) (int, error) { return w.buf.Write(p) }

func (w *fileWriter) Close() error {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	data := append([]byte(nil), w.buf.Bytes()...)
	var faultErr error
	if w.fs.writeFault != nil {
		data, faultErr = w.fs.writeFault(w.path, data)
		if faultErr != nil && data == nil {
			return faultErr // crash before any byte hit the disk
		}
	}
	if old, ok := w.fs.files[w.path]; ok {
		w.fs.accountLocked(w.path, -int64(len(old.data)), -1)
	}
	w.fs.files[w.path] = &file{data: data}
	w.fs.bytesWritten.Add(int64(len(data)))
	w.fs.accountLocked(w.path, int64(len(data)), 1)
	w.fs.bumpLocked(datasetOf(w.path))
	w.ver = w.fs.version[datasetOf(w.path)]
	return faultErr
}

// CommittedVersion returns the dataset version this writer's Close
// committed, captured inside Close's critical section — so it is
// exactly the version of this write, with no window for a concurrent
// writer's bump to slip in between commit and observation. Zero before
// Close.
func (w *fileWriter) CommittedVersion() int64 { return w.ver }

// SetWriteFault installs (or, with nil, removes) a commit interceptor
// for crash-injection tests: every file commit passes its bytes through
// fn, which may truncate them (returning a prefix simulates a torn
// write: the prefix is committed and the error surfaces to the writer)
// or drop them entirely (nil bytes plus an error: nothing hits the
// disk). Production code never sets it.
func (fs *FS) SetWriteFault(fn func(path string, data []byte) ([]byte, error)) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.writeFault = fn
}

func (fs *FS) bumpLocked(dataset string) {
	fs.nextVer++
	fs.version[dataset] = fs.nextVer
}

// accountLocked adjusts the byte and file accounting of the dataset
// containing path (mu held). A dataset whose last file is removed is
// dropped from the accounting so Datasets reports only live data.
func (fs *FS) accountLocked(path string, bytes int64, files int) {
	ds := datasetOf(path)
	info := fs.datasets[ds]
	if info == nil {
		info = &dsInfo{}
		fs.datasets[ds] = info
	}
	info.bytes += bytes
	info.files += files
	if info.files <= 0 {
		delete(fs.datasets, ds)
	}
}

// WriteFile writes data to path in one call.
func (fs *FS) WriteFile(path string, data []byte) error {
	w := fs.Create(path)
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.Close()
}

// Open returns a reader over the file at path. Reads take the shared
// lock only: file data is immutable once committed (commits replace the
// *file value), and the byte meter is atomic.
func (fs *FS) Open(path string) (io.Reader, error) {
	fs.mu.RLock()
	f, ok := fs.files[clean(path)]
	fs.mu.RUnlock()
	if !ok {
		return nil, &PathError{Op: "open", Path: path, Err: ErrNotExist}
	}
	fs.bytesRead.Add(int64(len(f.data)))
	return bytes.NewReader(f.data), nil
}

// ReadFile returns the contents of the file at path.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	fs.mu.RLock()
	f, ok := fs.files[clean(path)]
	fs.mu.RUnlock()
	if !ok {
		return nil, &PathError{Op: "read", Path: path, Err: ErrNotExist}
	}
	fs.bytesRead.Add(int64(len(f.data)))
	return append([]byte(nil), f.data...), nil
}

// Exists reports whether path names a file or a directory prefix. The
// check runs against the dataset accounting, not the file table: one
// map lookup for the common cases (a file, or a dataset holding part
// files — the repository validates stored outputs on every match), and
// a prefix scan proportional to datasets, not files, otherwise.
func (fs *FS) Exists(path string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	p := clean(path)
	if _, ok := fs.files[p]; ok {
		return true
	}
	if _, ok := fs.datasets[p]; ok {
		return true
	}
	prefix := p + "/"
	for name := range fs.datasets {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// List returns the file paths under the directory path, sorted. A file's
// own path lists as itself; the empty path lists everything.
func (fs *FS) List(path string) []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	p := clean(path)
	var out []string
	if p == "" {
		for name := range fs.files {
			out = append(out, name)
		}
		sort.Strings(out)
		return out
	}
	if _, ok := fs.files[p]; ok {
		out = append(out, p)
	}
	prefix := p + "/"
	for name := range fs.files {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Size returns the total bytes stored under path (file or directory).
// Dataset and directory totals come from the per-dataset accounting, so
// the cost is proportional to the number of datasets, not files.
func (fs *FS) Size(path string) int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	p := clean(path)
	var n int64
	if info, ok := fs.datasets[p]; ok {
		n += info.bytes
	} else if f, ok := fs.files[p]; ok {
		// p names a part file inside a dataset, not a dataset itself.
		n += int64(len(f.data))
	}
	prefix := p + "/"
	for name, info := range fs.datasets {
		if strings.HasPrefix(name, prefix) {
			n += info.bytes
		}
	}
	return n
}

// Stat returns the bytes stored under path together with the
// modification version of path's dataset, in one lock acquisition.
// leaf reports whether path itself names a single dataset or file — the
// way the engine materializes stored outputs — as opposed to a prefix
// grouping several datasets; a leaf's version covers every byte counted,
// so callers may cache the size keyed by the version, while a prefix's
// nested datasets version independently and must be re-sized.
func (fs *FS) Stat(path string) (bytes int64, version int64, leaf bool) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	p := clean(path)
	version = fs.version[datasetOf(p)]
	if info, ok := fs.datasets[p]; ok {
		return info.bytes, version, true
	}
	if f, ok := fs.files[p]; ok {
		// p names a part file inside a dataset, not a dataset itself.
		return int64(len(f.data)), version, true
	}
	prefix := p + "/"
	for name, info := range fs.datasets {
		if strings.HasPrefix(name, prefix) {
			bytes += info.bytes
		}
	}
	return bytes, version, false
}

// FileStats returns the per-file sizes under path, sorted by path. A
// file's own path reports itself; a directory reports every file under
// it.
func (fs *FS) FileStats(path string) []FileStat {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	p := clean(path)
	var out []FileStat
	if f, ok := fs.files[p]; ok {
		out = append(out, FileStat{Path: p, Size: int64(len(f.data))})
	}
	prefix := p + "/"
	for name, f := range fs.files {
		if strings.HasPrefix(name, prefix) {
			out = append(out, FileStat{Path: name, Size: int64(len(f.data))})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Datasets returns the dataset paths holding data under prefix, sorted;
// the empty prefix lists every dataset. A dataset is the directory
// grouping a job's part files (or a standalone file's own path).
func (fs *FS) Datasets(prefix string) []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	p := clean(prefix)
	var out []string
	for name := range fs.datasets {
		if p == "" || name == p || strings.HasPrefix(name, p+"/") {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Delete removes the file or directory tree at path. Deleting bumps the
// dataset version so repository entries that depend on it invalidate.
func (fs *FS) Delete(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	p := clean(path)
	found := false
	if f, ok := fs.files[p]; ok {
		fs.accountLocked(p, -int64(len(f.data)), -1)
		delete(fs.files, p)
		found = true
	}
	prefix := p + "/"
	for name, f := range fs.files {
		if strings.HasPrefix(name, prefix) {
			fs.accountLocked(name, -int64(len(f.data)), -1)
			delete(fs.files, name)
			found = true
		}
	}
	if !found {
		return &PathError{Op: "delete", Path: path, Err: ErrNotExist}
	}
	fs.bumpLocked(datasetOf(p))
	return nil
}

// Rename atomically moves the file or dataset tree at oldPath to
// newPath, replacing whatever was stored there — the whole swap happens
// under one lock, so readers see either the old dataset or the new one,
// never a mixture. This is the commit step of per-query output staging:
// a query writes its STORE output under a private temp namespace and
// renames it into place, so concurrent writers of one user path cannot
// interleave part files. Every dataset the rename touches has its
// version bumped inside the critical section: the source and
// destination roots, every nested dataset moved out of the source tree,
// the destination dataset each of those lands in, and every destination
// dataset clobbered by the replacement — so Stat/Version/Valid see
// moved and overwritten outputs as modified, not stale or brand-new at
// version zero. The returned version is the destination dataset's new
// one, captured inside the same critical section so the caller can bind
// metadata to exactly this commit even when another writer renames over
// the path immediately after.
func (fs *FS) Rename(oldPath, newPath string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	op, np := clean(oldPath), clean(newPath)
	// touched collects every dataset whose contents this rename changes.
	touched := map[string]bool{datasetOf(op): true, datasetOf(np): true}
	moved := map[string][]byte{}
	if f, ok := fs.files[op]; ok {
		moved[np] = f.data
		fs.accountLocked(op, -int64(len(f.data)), -1)
		delete(fs.files, op)
	}
	prefix := op + "/"
	for name, f := range fs.files {
		if strings.HasPrefix(name, prefix) {
			dst := np + "/" + name[len(prefix):]
			moved[dst] = f.data
			touched[datasetOf(name)] = true
			touched[datasetOf(dst)] = true
			fs.accountLocked(name, -int64(len(f.data)), -1)
			delete(fs.files, name)
		}
	}
	if len(moved) == 0 {
		return 0, &PathError{Op: "rename", Path: oldPath, Err: ErrNotExist}
	}
	if f, ok := fs.files[np]; ok {
		fs.accountLocked(np, -int64(len(f.data)), -1)
		delete(fs.files, np)
	}
	nprefix := np + "/"
	for name, f := range fs.files {
		if strings.HasPrefix(name, nprefix) {
			touched[datasetOf(name)] = true
			fs.accountLocked(name, -int64(len(f.data)), -1)
			delete(fs.files, name)
		}
	}
	for name, data := range moved {
		fs.files[name] = &file{data: data}
		fs.accountLocked(name, int64(len(data)), 1)
	}
	for ds := range touched {
		fs.bumpLocked(ds)
	}
	return fs.version[datasetOf(np)], nil
}

// WriteFileIf writes data to path only if the version of path's dataset
// still equals expect — the version the caller last observed (zero for a
// dataset never touched; note that deletes bump versions, so "absent"
// does not imply version zero: observe via Stat or Version first). The
// read-check-write is one critical section, making it the
// compare-and-swap primitive the durable repository's log appends and
// the cross-process lease records are built on. It returns the
// dataset's new version and whether the write was applied; on a lost
// race nothing is written.
//
// A write fault (SetWriteFault) intercepts the CAS commit exactly like
// any other commit: a dropped write leaves the slot untouched (version
// unchanged), a torn write commits the prefix and bumps the version but
// reports ok=false — the caller's bytes were not acknowledged, yet a
// later reader can observe the garbage, which is what a real mid-write
// crash leaves behind.
func (fs *FS) WriteFileIf(path string, data []byte, expect int64) (int64, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	p := clean(path)
	ds := datasetOf(p)
	if fs.version[ds] != expect {
		return fs.version[ds], false
	}
	torn := false
	if fs.writeFault != nil {
		faulted, faultErr := fs.writeFault(p, append([]byte(nil), data...))
		if faultErr != nil {
			if faulted == nil {
				return fs.version[ds], false // dropped: nothing hit the disk
			}
			data, torn = faulted, true
		}
	}
	if old, ok := fs.files[p]; ok {
		fs.accountLocked(p, -int64(len(old.data)), -1)
	}
	fs.files[p] = &file{data: append([]byte(nil), data...)}
	fs.bytesWritten.Add(int64(len(data)))
	fs.accountLocked(p, int64(len(data)), 1)
	fs.bumpLocked(ds)
	return fs.version[ds], !torn
}

// RemoveFileIf deletes the file at path only if its dataset version
// still equals expect, reporting whether the delete was applied. It is
// the conditional-release half of the lease protocol: a holder whose
// lease expired and was taken over observes a newer version and must
// not clobber the new holder's record.
func (fs *FS) RemoveFileIf(path string, expect int64) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	p := clean(path)
	ds := datasetOf(p)
	if fs.version[ds] != expect {
		return false
	}
	f, ok := fs.files[p]
	if !ok {
		return false
	}
	fs.accountLocked(p, -int64(len(f.data)), -1)
	delete(fs.files, p)
	fs.bumpLocked(ds)
	return true
}

// Version returns the modification version of the dataset containing
// path. Zero means the dataset has never been written.
func (fs *FS) Version(path string) int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.version[datasetOf(path)]
}

// BytesRead returns the cumulative bytes read through the FS.
func (fs *FS) BytesRead() int64 { return fs.bytesRead.Load() }

// BytesWritten returns the cumulative bytes written through the FS.
func (fs *FS) BytesWritten() int64 { return fs.bytesWritten.Load() }

// TotalBytes returns the total bytes currently stored.
func (fs *FS) TotalBytes() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var n int64
	for _, info := range fs.datasets {
		n += info.bytes
	}
	return n
}

// ErrNotExist reports a missing path.
var ErrNotExist = fmt.Errorf("file does not exist")

// PathError records an error, the operation, and the path that caused it.
type PathError struct {
	Op   string
	Path string
	Err  error
}

func (e *PathError) Error() string { return "dfs: " + e.Op + " " + e.Path + ": " + e.Err.Error() }

// Unwrap returns the underlying error.
func (e *PathError) Unwrap() error { return e.Err }
