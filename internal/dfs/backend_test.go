package dfs

import (
	"io"
	"testing"
)

// forEachBackend runs fn against every Backend implementation, so
// semantic contracts are asserted once and enforced on both.
func forEachBackend(t *testing.T, fn func(t *testing.T, fs Backend)) {
	t.Run("memory", func(t *testing.T) { fn(t, New()) })
	t.Run("disk", func(t *testing.T) {
		d, err := OpenDisk(t.TempDir())
		if err != nil {
			t.Fatalf("OpenDisk: %v", err)
		}
		t.Cleanup(func() { d.Close() })
		fn(t, d)
	})
}

// TestCreateCommittedVersion checks both backends' Create writers
// expose the dataset version their Close committed, captured inside
// the commit's critical section: after an uncontended Close it equals
// Version, and a later same-name rewrite moves Version past it.
func TestCreateCommittedVersion(t *testing.T) {
	forEachBackend(t, func(t *testing.T, fs Backend) {
		w := fs.Create("ds/part-00000")
		if _, err := w.Write([]byte("a\n")); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		cv, ok := w.(interface{ CommittedVersion() int64 })
		if !ok {
			t.Fatal("Create writer does not expose CommittedVersion")
		}
		v := cv.CommittedVersion()
		if v == 0 || v != fs.Version("ds") {
			t.Fatalf("CommittedVersion = %d, Version = %d", v, fs.Version("ds"))
		}
		if err := fs.WriteFile("ds/part-00000", []byte("b\n")); err != nil {
			t.Fatal(err)
		}
		if fs.Version("ds") <= v {
			t.Fatalf("rewrite did not move Version past the commit: %d <= %d", fs.Version("ds"), v)
		}
	})
}

// TestRenameBumpsNestedDatasetVersions is the regression for the
// nested-dataset rename bug: Rename bumped only the destination's own
// dataset, so datasets nested under a renamed tree kept their old
// versions — a reader caching a version before the move, and any
// clobbered destination dataset, saw "unchanged" over replaced
// content. Every moved and clobbered dataset must bump inside the
// rename.
func TestRenameBumpsNestedDatasetVersions(t *testing.T) {
	forEachBackend(t, func(t *testing.T, fs Backend) {
		if err := fs.WriteFile("stage/j/op2/part-00000", []byte("new2")); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile("stage/j/op3/part-00000", []byte("new3")); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile("final/j/op2/part-00000", []byte("old2")); err != nil {
			t.Fatal(err)
		}
		vClobbered := fs.Version("final/j/op2")
		vFresh := fs.Version("final/j/op3") // never written: 0
		vMoved := fs.Version("stage/j/op2")

		if _, err := fs.Rename("stage/j", "final/j"); err != nil {
			t.Fatalf("Rename: %v", err)
		}
		if got, _ := fs.ReadFile("final/j/op2/part-00000"); string(got) != "new2" {
			t.Fatalf("clobbered nested dataset content = %q, want new2", got)
		}
		if v := fs.Version("final/j/op2"); v <= vClobbered {
			t.Errorf("clobbered nested dataset version %d did not bump past %d", v, vClobbered)
		}
		if v := fs.Version("final/j/op3"); v <= vFresh {
			t.Errorf("moved-in nested dataset version %d did not bump past %d", v, vFresh)
		}
		// The vacated source datasets bump too (delete-bumps-version
		// tombstone): a reader holding the pre-move version must lose a
		// CAS against the emptied dataset.
		if v := fs.Version("stage/j/op2"); v <= vMoved {
			t.Errorf("vacated source dataset version %d did not bump past %d", v, vMoved)
		}
		if fs.Exists("stage/j") {
			t.Error("source tree survived the rename")
		}
	})
}

// TestWriteFileIfFaultInjection is the regression for SetWriteFault
// bypassing the CAS path: WriteFileIf committed whole writes even
// while the fault hook was tearing or dropping every plain write. A
// dropped CAS write must leave nothing (version unchanged); a torn one
// commits the prefix and bumps the version but reports failure, like a
// writer that died mid-commit.
func TestWriteFileIfFaultInjection(t *testing.T) {
	forEachBackend(t, func(t *testing.T, fs Backend) {
		v0 := fs.Version("cas/f")

		// Dropped: nothing hit storage, the version is unchanged.
		fs.SetWriteFault(func(path string, data []byte) ([]byte, error) {
			return nil, io.ErrClosedPipe
		})
		if v, ok := fs.WriteFileIf("cas/f", []byte("one"), v0); ok || v != v0 {
			t.Fatalf("dropped CAS write: (v=%d ok=%v), want (%d, false)", v, ok, v0)
		}
		if fs.Exists("cas/f") {
			t.Fatal("dropped CAS write left content behind")
		}

		// Torn: the prefix commits and consumes the version slot, but the
		// writer is told it failed.
		fs.SetWriteFault(func(path string, data []byte) ([]byte, error) {
			return data[:2], io.ErrShortWrite
		})
		v1, ok := fs.WriteFileIf("cas/f", []byte("payload"), v0)
		if ok {
			t.Fatal("torn CAS write reported success")
		}
		if v1 == v0 {
			t.Fatal("torn CAS write did not consume the version slot")
		}
		if got, _ := fs.ReadFile("cas/f"); string(got) != "pa" {
			t.Fatalf("torn CAS committed %q, want the 2-byte prefix", got)
		}
		fs.SetWriteFault(nil)

		// The slot is consumed: the stale expectation loses, the torn
		// version wins.
		if _, ok := fs.WriteFileIf("cas/f", []byte("stale"), v0); ok {
			t.Fatal("CAS against the pre-tear version succeeded")
		}
		if _, ok := fs.WriteFileIf("cas/f", []byte("fresh"), v1); !ok {
			t.Fatal("CAS against the torn version failed")
		}
		if got, _ := fs.ReadFile("cas/f"); string(got) != "fresh" {
			t.Fatalf("post-fault CAS content = %q", got)
		}
	})
}

// TestBackendParity drives an identical mutation history through both
// backends and requires every observable — listings, contents, sizes —
// to agree, and version semantics (nonzero when touched, including
// tombstones) to hold on both. Exact version numbers are not part of
// the contract: the in-memory FS draws from one global counter, the
// disk backend counts per dataset; CAS and tombstone detection only
// need per-dataset monotonicity.
func TestBackendParity(t *testing.T) {
	mem := New()
	disk, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	defer disk.Close()

	apply := func(fs Backend) {
		for _, w := range []struct{ p, data string }{
			{"tmp/q1/j1/part-00000", "a\n"},
			{"tmp/q1/j1/part-00001", "bb\n"},
			{"restore/q1/op2/part-00000", "ccc\n"},
			{"sys/repo/MANIFEST", "manifest-v1"},
			{"sys/repo/log/r1", "rec1"},
		} {
			if err := fs.WriteFile(w.p, []byte(w.data)); err != nil {
				t.Fatal(err)
			}
		}
		fs.WriteFile("tmp/q1/j1/part-00000", []byte("a2\n")) // overwrite
		if err := fs.Delete("sys/repo/log/r1"); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Rename("tmp/q1/j1", "restore/q1/op3"); err != nil {
			t.Fatal(err)
		}
		if _, ok := fs.WriteFileIf("sys/locks/fp", []byte("lease"), fs.Version("sys/locks/fp")); !ok {
			t.Fatal("CAS create failed")
		}
		if !fs.RemoveFileIf("sys/locks/fp", fs.Version("sys/locks/fp")) {
			t.Fatal("CAS remove failed")
		}
	}
	apply(mem)
	apply(disk)

	if got, want := disk.Datasets(""), mem.Datasets(""); len(got) != len(want) {
		t.Fatalf("dataset sets diverge: disk %v, memory %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("dataset sets diverge: disk %v, memory %v", got, want)
			}
		}
	}
	for _, ds := range mem.Datasets("") {
		if disk.Version(ds) == 0 || mem.Version(ds) == 0 {
			t.Errorf("Version(%s): disk %d, memory %d; live datasets must be versioned", ds, disk.Version(ds), mem.Version(ds))
		}
		if g, w := disk.Size(ds), mem.Size(ds); g != w {
			t.Errorf("Size(%s): disk %d, memory %d", ds, g, w)
		}
		files := mem.List(ds)
		dfiles := disk.List(ds)
		if len(files) != len(dfiles) {
			t.Fatalf("List(%s): disk %v, memory %v", ds, dfiles, files)
		}
		for _, p := range files {
			g, gerr := disk.ReadFile(p)
			w, werr := mem.ReadFile(p)
			if (gerr == nil) != (werr == nil) || string(g) != string(w) {
				t.Errorf("ReadFile(%s): disk %q/%v, memory %q/%v", p, g, gerr, w, werr)
			}
		}
	}
	// Deleted and vacated datasets carry tombstone versions on both:
	// "absent" is never "version zero" once a dataset existed.
	for _, ds := range []string{"sys/repo/log/r1", "tmp/q1/j1", "sys/locks/fp"} {
		if disk.Version(ds) == 0 || mem.Version(ds) == 0 {
			t.Errorf("tombstone Version(%s): disk %d, memory %d; want both nonzero", ds, disk.Version(ds), mem.Version(ds))
		}
	}
	if g, w := disk.TotalBytes(), mem.TotalBytes(); g != w {
		t.Errorf("TotalBytes: disk %d, memory %d", g, w)
	}
}
