package dfs

import (
	"errors"
	"io"
	"testing"
)

func TestCreateReadRoundTrip(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("data/users/part-00000", []byte("alice\nbob\n")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := fs.ReadFile("data/users/part-00000")
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(got) != "alice\nbob\n" {
		t.Errorf("read %q", got)
	}
}

func TestOpenMissing(t *testing.T) {
	fs := New()
	_, err := fs.Open("nope")
	if err == nil {
		t.Fatal("expected error")
	}
	var pe *PathError
	if !errors.As(err, &pe) || !errors.Is(err, ErrNotExist) {
		t.Errorf("error %v should be a PathError wrapping ErrNotExist", err)
	}
}

func TestListAndSize(t *testing.T) {
	fs := New()
	fs.WriteFile("out/q1/part-00000", []byte("aaaa"))
	fs.WriteFile("out/q1/part-00001", []byte("bb"))
	fs.WriteFile("out/q2/part-00000", []byte("c"))

	files := fs.List("out/q1")
	if len(files) != 2 {
		t.Fatalf("List = %v, want 2 files", files)
	}
	if files[0] != "out/q1/part-00000" || files[1] != "out/q1/part-00001" {
		t.Errorf("List not sorted: %v", files)
	}
	if n := fs.Size("out/q1"); n != 6 {
		t.Errorf("Size(out/q1) = %d, want 6", n)
	}
	if n := fs.Size("out"); n != 7 {
		t.Errorf("Size(out) = %d, want 7", n)
	}
}

func TestStat(t *testing.T) {
	fs := New()
	fs.WriteFile("out/q1/part-00000", []byte("aaaa"))
	fs.WriteFile("out/q1/part-00001", []byte("bb"))
	fs.WriteFile("out/q2/part-00000", []byte("c"))

	// A dataset is a leaf: its version covers every byte counted.
	n, v, leaf := fs.Stat("out/q1")
	if n != 6 || !leaf {
		t.Errorf("Stat(out/q1) = %d bytes leaf=%v, want 6 leaf=true", n, leaf)
	}
	if v != fs.Version("out/q1") {
		t.Errorf("Stat version %d != Version %d", v, fs.Version("out/q1"))
	}
	// A part file is a leaf too, versioned by its dataset.
	if n, v, leaf = fs.Stat("out/q1/part-00001"); n != 2 || !leaf || v != fs.Version("out/q1") {
		t.Errorf("Stat(part file) = %d/%d/%v", n, v, leaf)
	}
	// A prefix of several datasets totals them but is not a leaf: its
	// nested datasets version independently.
	if n, _, leaf = fs.Stat("out"); n != 7 || leaf {
		t.Errorf("Stat(out) = %d bytes leaf=%v, want 7 leaf=false", n, leaf)
	}
	// Missing paths: zero bytes, version zero, not a leaf.
	if n, v, leaf = fs.Stat("nope"); n != 0 || v != 0 || leaf {
		t.Errorf("Stat(nope) = %d/%d/%v", n, v, leaf)
	}
	// Writing bumps the version Stat reports.
	_, v0, _ := fs.Stat("out/q1")
	fs.WriteFile("out/q1/part-00002", []byte("dd"))
	if n, v1, _ := fs.Stat("out/q1"); n != 8 || v1 <= v0 {
		t.Errorf("Stat after write = %d bytes v%d (was v%d)", n, v1, v0)
	}
}

func TestExists(t *testing.T) {
	fs := New()
	fs.WriteFile("a/b/part-00000", []byte("x"))
	for _, p := range []string{"a/b/part-00000", "a/b", "a"} {
		if !fs.Exists(p) {
			t.Errorf("Exists(%q) = false", p)
		}
	}
	if fs.Exists("a/c") {
		t.Errorf("Exists(a/c) = true")
	}
}

func TestDeleteTree(t *testing.T) {
	fs := New()
	fs.WriteFile("d/part-00000", []byte("x"))
	fs.WriteFile("d/part-00001", []byte("y"))
	if err := fs.Delete("d"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if fs.Exists("d") {
		t.Errorf("directory survived Delete")
	}
	if err := fs.Delete("d"); err == nil {
		t.Errorf("deleting missing path should error")
	}
}

func TestVersionBumpsOnWriteAndDelete(t *testing.T) {
	fs := New()
	if v := fs.Version("data/users"); v != 0 {
		t.Fatalf("fresh version = %d, want 0", v)
	}
	fs.WriteFile("data/users/part-00000", []byte("a"))
	v1 := fs.Version("data/users")
	if v1 == 0 {
		t.Fatal("version did not bump on write")
	}
	// Version is per dataset: part files map to the directory.
	if fs.Version("data/users/part-00000") != v1 {
		t.Errorf("part file should share the dataset version")
	}
	fs.WriteFile("data/users/part-00001", []byte("b"))
	v2 := fs.Version("data/users")
	if v2 <= v1 {
		t.Errorf("version did not advance: %d -> %d", v1, v2)
	}
	fs.Delete("data/users")
	if fs.Version("data/users") <= v2 {
		t.Errorf("version did not advance on delete")
	}
}

func TestByteMeters(t *testing.T) {
	fs := New()
	fs.WriteFile("f", []byte("12345"))
	if fs.BytesWritten() != 5 {
		t.Errorf("BytesWritten = %d, want 5", fs.BytesWritten())
	}
	r, err := fs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(r)
	if fs.BytesRead() != 5 {
		t.Errorf("BytesRead = %d, want 5", fs.BytesRead())
	}
	if fs.TotalBytes() != 5 {
		t.Errorf("TotalBytes = %d, want 5", fs.TotalBytes())
	}
}

func TestCreateOverwrites(t *testing.T) {
	fs := New()
	fs.WriteFile("x", []byte("old"))
	fs.WriteFile("x", []byte("new!"))
	got, _ := fs.ReadFile("x")
	if string(got) != "new!" {
		t.Errorf("read %q after overwrite", got)
	}
	if fs.TotalBytes() != 4 {
		t.Errorf("TotalBytes = %d, want 4", fs.TotalBytes())
	}
}

func TestPathNormalization(t *testing.T) {
	fs := New()
	fs.WriteFile("/p/q/", []byte("z"))
	if !fs.Exists("p/q") {
		t.Errorf("leading/trailing slashes should normalize")
	}
}

func TestRenameMovesDataset(t *testing.T) {
	fs := New()
	fs.WriteFile("stage/out/part-00000", []byte("a\n"))
	fs.WriteFile("stage/out/part-00001", []byte("b\n"))
	if _, err := fs.Rename("stage/out", "final/out"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if fs.Exists("stage/out") {
		t.Errorf("source still exists after rename")
	}
	got := fs.List("final/out")
	if len(got) != 2 {
		t.Fatalf("destination files = %v, want 2 parts", got)
	}
	data, err := fs.ReadFile("final/out/part-00001")
	if err != nil || string(data) != "b\n" {
		t.Errorf("part-00001 = %q, %v", data, err)
	}
}

func TestRenameReplacesDestination(t *testing.T) {
	fs := New()
	fs.WriteFile("dst/part-00000", []byte("old0\n"))
	fs.WriteFile("dst/part-00001", []byte("old1\n"))
	fs.WriteFile("dst/part-00002", []byte("old2\n"))
	fs.WriteFile("src/part-00000", []byte("new\n"))
	v := fs.Version("dst")
	if _, err := fs.Rename("src", "dst"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	// Replacement is total: no stale parts of the old dataset survive.
	got := fs.List("dst")
	if len(got) != 1 || got[0] != "dst/part-00000" {
		t.Fatalf("destination = %v, want exactly the renamed part", got)
	}
	data, _ := fs.ReadFile("dst/part-00000")
	if string(data) != "new\n" {
		t.Errorf("content = %q", data)
	}
	if fs.Version("dst") <= v {
		t.Errorf("destination version did not bump")
	}
}

func TestRenameMissingSource(t *testing.T) {
	fs := New()
	if _, err := fs.Rename("nope", "dst"); err == nil {
		t.Errorf("renaming a missing path should error")
	}
}

func TestRenameSingleFile(t *testing.T) {
	fs := New()
	fs.WriteFile("one", []byte("x"))
	if _, err := fs.Rename("one", "two"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if fs.Exists("one") || !fs.Exists("two") {
		t.Errorf("single-file rename broken")
	}
}

// TestDatasetByteAccounting proves the per-dataset meters stay exact
// through every mutation path: write, overwrite, delete, and rename
// over an occupied destination.
func TestDatasetByteAccounting(t *testing.T) {
	fs := New()
	fs.WriteFile("a/b/part-00000", []byte("12345"))
	fs.WriteFile("a/b/part-00001", []byte("678"))
	fs.WriteFile("a/c/part-00000", []byte("12"))
	fs.WriteFile("top", []byte("1"))

	if got := fs.Size("a/b"); got != 8 {
		t.Errorf("Size(a/b) = %d, want 8", got)
	}
	if got := fs.Size("a"); got != 10 {
		t.Errorf("Size(a) = %d, want 10", got)
	}
	if got := fs.Size("a/b/part-00001"); got != 3 {
		t.Errorf("Size of one part file = %d, want 3", got)
	}
	if got := fs.TotalBytes(); got != 11 {
		t.Errorf("TotalBytes = %d, want 11", got)
	}

	// Overwrite shrinks in place.
	fs.WriteFile("a/b/part-00000", []byte("1"))
	if got := fs.Size("a/b"); got != 4 {
		t.Errorf("Size(a/b) after overwrite = %d, want 4", got)
	}

	// Rename over an occupied destination replaces its accounting.
	if _, err := fs.Rename("a/b", "a/c"); err != nil {
		t.Fatal(err)
	}
	if got := fs.Size("a/c"); got != 4 {
		t.Errorf("Size(a/c) after rename = %d, want 4", got)
	}
	if got := fs.Size("a/b"); got != 0 {
		t.Errorf("Size(a/b) after rename = %d, want 0", got)
	}

	// Delete clears the meter and the dataset listing.
	if err := fs.Delete("a/c"); err != nil {
		t.Fatal(err)
	}
	if got := fs.TotalBytes(); got != 1 {
		t.Errorf("TotalBytes after delete = %d, want 1", got)
	}
	got := fs.Datasets("")
	if len(got) != 1 || got[0] != "top" {
		t.Errorf("Datasets = %v, want [top]", got)
	}
}

// TestDatasets lists dataset directories, not files, under a prefix.
func TestDatasets(t *testing.T) {
	fs := New()
	fs.WriteFile("restore/q1/j1/op2/part-00000", []byte("x"))
	fs.WriteFile("restore/q1/j1/op3/part-00000", []byte("x"))
	fs.WriteFile("restore/q2/j1/op2/part-00000", []byte("x"))
	fs.WriteFile("tmp/q1/j1/part-00000", []byte("x"))

	got := fs.Datasets("restore/q1")
	want := []string{"restore/q1/j1/op2", "restore/q1/j1/op3"}
	if len(got) != len(want) {
		t.Fatalf("Datasets(restore/q1) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Datasets[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if got := fs.Datasets("restore"); len(got) != 3 {
		t.Errorf("Datasets(restore) = %v, want 3 datasets", got)
	}
	if got := fs.Datasets("nope"); len(got) != 0 {
		t.Errorf("Datasets(nope) = %v, want none", got)
	}
}

func TestWriteFileIfCAS(t *testing.T) {
	fs := New()
	// Create against the never-written version.
	v0 := fs.Version("cas/file")
	v1, ok := fs.WriteFileIf("cas/file", []byte("one"), v0)
	if !ok || v1 == v0 {
		t.Fatalf("initial CAS write failed (ok=%v v=%d)", ok, v1)
	}
	// Stale expectation loses; nothing is written.
	if _, ok := fs.WriteFileIf("cas/file", []byte("loser"), v0); ok {
		t.Fatal("stale CAS write succeeded")
	}
	if got, _ := fs.ReadFile("cas/file"); string(got) != "one" {
		t.Fatalf("lost CAS mutated the file: %q", got)
	}
	// Fresh expectation wins.
	if _, ok := fs.WriteFileIf("cas/file", []byte("two"), v1); !ok {
		t.Fatal("up-to-date CAS write failed")
	}
	if got, _ := fs.ReadFile("cas/file"); string(got) != "two" {
		t.Fatalf("CAS write not applied: %q", got)
	}
	// Deletion bumps the version, so "absent" is not "version zero":
	// a writer that observed the pre-delete state must lose.
	vDel := fs.Version("cas/file")
	if err := fs.Delete("cas/file"); err != nil {
		t.Fatal(err)
	}
	if _, ok := fs.WriteFileIf("cas/file", []byte("zombie"), vDel); ok {
		t.Fatal("CAS against the pre-delete version succeeded")
	}
}

func TestRemoveFileIf(t *testing.T) {
	fs := New()
	v0 := fs.Version("lock/a")
	v, ok := fs.WriteFileIf("lock/a", []byte("lease"), v0)
	if !ok {
		t.Fatal("setup write failed")
	}
	if fs.RemoveFileIf("lock/a", v-1) {
		t.Fatal("stale conditional delete succeeded")
	}
	if !fs.Exists("lock/a") {
		t.Fatal("stale delete removed the file")
	}
	if !fs.RemoveFileIf("lock/a", v) {
		t.Fatal("up-to-date conditional delete failed")
	}
	if fs.Exists("lock/a") {
		t.Fatal("file survived conditional delete")
	}
	if fs.RemoveFileIf("lock/a", v) {
		t.Fatal("deleting an absent file succeeded")
	}
}

func TestWriteFaultTearsAndDrops(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("f/data", []byte("intact")); err != nil {
		t.Fatal(err)
	}
	// Torn write: a prefix commits, the error surfaces, accounting and
	// version reflect the torn content.
	fs.SetWriteFault(func(path string, data []byte) ([]byte, error) {
		return data[:2], io.ErrShortWrite
	})
	if err := fs.WriteFile("f/data", []byte("replacement")); err == nil {
		t.Fatal("torn write reported no error")
	}
	if got, _ := fs.ReadFile("f/data"); string(got) != "re" {
		t.Fatalf("torn write committed %q, want the 2-byte prefix", got)
	}
	if n := fs.Size("f/data"); n != 2 {
		t.Fatalf("accounting after torn write = %d bytes, want 2", n)
	}
	// Dropped write: nothing committed at all.
	fs.SetWriteFault(func(path string, data []byte) ([]byte, error) {
		return nil, io.ErrClosedPipe
	})
	if err := fs.WriteFile("f/data", []byte("x")); err == nil {
		t.Fatal("dropped write reported no error")
	}
	if got, _ := fs.ReadFile("f/data"); string(got) != "re" {
		t.Fatalf("dropped write mutated the file: %q", got)
	}
	fs.SetWriteFault(nil)
	if err := fs.WriteFile("f/data", []byte("healed")); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile("f/data"); string(got) != "healed" {
		t.Fatalf("write after clearing the fault: %q", got)
	}
}
