package dfs

import "io"

// Backend is the storage substrate contract the rest of the system is
// written against: the MapReduce engine, the repository, the durable
// event log, and the lease protocol all consume this interface, so the
// substrate can be the in-memory FS (tests, experiments, simulation) or
// the on-disk Disk backend (real durability) without any caller
// changing.
//
// Semantics every implementation must provide:
//
//   - Dataset versions. Every path belongs to a dataset (datasetOf: the
//     directory holding its part files, or the path itself). Mutations
//     bump the dataset's version; deletes bump it too, so "absent" does
//     not imply version zero — a trimmed log slot stays distinguishable
//     from a never-written one. Version zero means never written.
//
//   - Version CAS. WriteFileIf/RemoveFileIf apply only when the
//     dataset's version still equals the caller's last observation, as
//     one atomic read-check-write even across processes sharing the
//     backend. They are the primitives the durable log's dense sequence
//     allocation and the lease protocol's fencing are built on.
//
//   - Crash injection. SetWriteFault intercepts every file commit
//     (Create's Close, WriteFile, and the WriteFileIf CAS path) so the
//     recovery suite can tear or drop writes on any backend.
//
// All methods are safe for concurrent use.
type Backend interface {
	// Create opens a new file for writing; Close commits it atomically
	// and bumps its dataset version. The returned writer may implement
	// interface{ CommittedVersion() int64 } exposing the dataset
	// version its Close committed, captured atomically with the commit
	// (both built-in backends do); callers that need a race-free
	// post-write version should type-assert for it and fall back to
	// Version(path).
	Create(path string) io.WriteCloser
	// WriteFile writes data to path in one call.
	WriteFile(path string, data []byte) error
	// Open returns a reader over the file at path.
	Open(path string) (io.Reader, error)
	// ReadFile returns the contents of the file at path.
	ReadFile(path string) ([]byte, error)
	// Exists reports whether path names a file or a directory prefix.
	Exists(path string) bool
	// List returns the file paths under path, sorted.
	List(path string) []string
	// Size returns the total bytes stored under path.
	Size(path string) int64
	// Stat returns the bytes under path, the version of path's dataset,
	// and whether path names a single dataset or file (a leaf).
	Stat(path string) (bytes int64, version int64, leaf bool)
	// Datasets returns the dataset paths holding data under prefix.
	Datasets(prefix string) []string
	// Delete removes the file or directory tree at path, bumping the
	// affected dataset version.
	Delete(path string) error
	// Rename atomically moves the file or dataset tree at oldPath to
	// newPath, replacing the destination and bumping every touched
	// dataset's version; it returns the destination dataset's new
	// version.
	Rename(oldPath, newPath string) (int64, error)
	// WriteFileIf writes data to path only if path's dataset version
	// still equals expect, returning the dataset's (possibly new)
	// version and whether the write was applied.
	WriteFileIf(path string, data []byte, expect int64) (int64, bool)
	// RemoveFileIf deletes the file at path only if its dataset version
	// still equals expect, reporting whether the delete was applied.
	RemoveFileIf(path string, expect int64) bool
	// Version returns the modification version of the dataset
	// containing path; zero means never written.
	Version(path string) int64
	// FileStats returns the per-file sizes under path, sorted by file
	// path. It is the observation primitive append detection is built
	// on: a dataset "grew" when its version moved but every previously
	// listed file is still present at its recorded size and only new
	// files appeared.
	FileStats(path string) []FileStat
	// BytesRead and BytesWritten are the cumulative traffic meters;
	// TotalBytes is the bytes currently stored.
	BytesRead() int64
	BytesWritten() int64
	TotalBytes() int64
	// SetWriteFault installs (or removes, with nil) the crash-injection
	// commit interceptor. Test-only.
	SetWriteFault(fn func(path string, data []byte) ([]byte, error))
}

var (
	_ Backend = (*FS)(nil)
	_ Backend = (*Disk)(nil)
)
