package dfs

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
)

// Disk is the on-disk Backend: the same namespace, dataset-version and
// CAS semantics as the in-memory FS, persisted under one host
// directory so the repository, event log and leases survive process
// restarts. The layout splits files by shape:
//
//   - Part files (paths whose last component is "part-*", i.e. dataset
//     members) live as real files under "<dir>/objects/<path>" — a
//     dir-of-files store, written temp-then-rename so a reader never
//     sees a half-written part.
//
//   - Standalone files (log records, MANIFEST, lease records, counters
//     — every path that is its own dataset) live as records in a
//     single compact binary log, "<dir>/dfs.log": a fixed header, then
//     length-prefixed checksummed records. The in-memory index over it
//     is rebuilt on load (a torn tail is truncated, not an error), and
//     the log is recompacted — rewritten with only live records — when
//     the dead-record ratio crosses a threshold. Dataset versions are
//     persisted through the same records, which preserves the
//     delete-bumps-version tombstone the durable log's trimmed-slot
//     detection depends on.
//
// Version CAS holds on real disk through O_EXCL fencing: a successful
// WriteFileIf/RemoveFileIf first creates "<dir>/fences/<ds>@<from>"
// with O_CREATE|O_EXCL, so of two processes racing one version
// transition exactly one can win it, then commits (record append or
// object rename) and removes the fence. A process opening the
// directory additionally takes a flock on "<dir>/LOCK", so live
// ownership is exclusive: concurrent mutators share one *Disk (as the
// multi-System tests share one *FS), while the fence files keep the
// CAS honest across the crash/restart windows where a predecessor's
// fence may still be on disk.
//
// All methods are safe for concurrent use.
type Disk struct {
	dir  string
	lock *os.File

	mu       sync.RWMutex
	files    map[string]*diskFile
	version  map[string]int64 // per dataset; monotone per dataset
	datasets map[string]*dsInfo

	log      *os.File
	logRecs  int             // records in dfs.log
	liveKeys map[string]bool // distinct live record keys (last write wins)
	syncLog  bool

	recompacts atomic.Int64

	bytesRead    atomic.Int64
	bytesWritten atomic.Int64

	writeFault func(path string, data []byte) ([]byte, error)
}

// diskFile is one live logical file: inline content (standalone files,
// stored in the record log) or a size-only stub backed by an object
// file under objects/.
type diskFile struct {
	size   int64
	inline []byte // nil ⇒ stored at objects/<path>
}

// Record log format constants.
const (
	diskLogMagic  = "RSTRDFSL"
	diskLogFormat = 1

	opFilePut    = 'F' // inline content (+ version when Ver > 0)
	opFileDel    = 'D' // inline delete (+ version when Ver > 0)
	opVersionSet = 'V' // dataset version set

	// recompactMinRecords is the log size below which recompaction is
	// never triggered automatically; past it, the log is rewritten as
	// soon as dead records outnumber live ones.
	recompactMinRecords = 512

	// maxRecordLen bounds a single record; longer means corruption.
	maxRecordLen = 1 << 30
)

// OpenDisk opens (or initializes) the on-disk backend rooted at dir,
// rebuilding the in-memory index from the object tree and the record
// log. It takes an exclusive flock on "<dir>/LOCK" and fails if another
// live process holds the directory.
func OpenDisk(dir string) (*Disk, error) {
	d := &Disk{
		dir:      dir,
		files:    make(map[string]*diskFile),
		version:  make(map[string]int64),
		datasets: make(map[string]*dsInfo),
		liveKeys: make(map[string]bool),
	}
	for _, sub := range []string{"", "objects", "fences"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("dfs: disk open: %w", err)
		}
	}
	lock, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dfs: disk open: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, fmt.Errorf("dfs: disk directory %s is held by a live process: %w", dir, err)
	}
	d.lock = lock
	if err := d.loadObjects(); err != nil {
		lock.Close()
		return nil, err
	}
	if err := d.loadLog(); err != nil {
		lock.Close()
		return nil, err
	}
	// Normalize: a dataset holding files was written at least once.
	for ds := range d.datasets {
		if d.version[ds] == 0 {
			d.version[ds] = 1
		}
	}
	// Under the flock there is no live peer: leftover fences belong to
	// a crashed predecessor. A fence without a logged commit is an
	// unacknowledged transition — discard it.
	if ents, err := os.ReadDir(filepath.Join(dir, "fences")); err == nil {
		for _, e := range ents {
			_ = os.Remove(filepath.Join(dir, "fences", e.Name()))
		}
	}
	return d, nil
}

// Close releases the directory: the record log handle and the flock.
// The Disk must not be used afterwards.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var err error
	if d.log != nil {
		err = d.log.Close()
		d.log = nil
	}
	if d.lock != nil {
		d.lock.Close()
		d.lock = nil
	}
	return err
}

// SetSync enables fsync on every record append and object rename;
// without it durability is bounded by the OS page cache (sufficient
// against process crashes, not machine crashes).
func (d *Disk) SetSync(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.syncLog = on
}

// loadObjects walks objects/ and indexes every part file found there.
func (d *Disk) loadObjects() error {
	root := filepath.Join(d.dir, "objects")
	return filepath.WalkDir(root, func(path string, de iofs.DirEntry, err error) error {
		if err != nil || de.IsDir() {
			return err
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			return rerr
		}
		info, ierr := de.Info()
		if ierr != nil {
			return ierr
		}
		p := filepath.ToSlash(rel)
		d.files[p] = &diskFile{size: info.Size()}
		d.accountLocked(p, info.Size(), 1)
		return nil
	})
}

// loadLog replays dfs.log into the index, truncating a torn tail, and
// leaves the handle open for appends. A missing log is initialized.
func (d *Disk) loadLog() error {
	path := filepath.Join(d.dir, "dfs.log")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("dfs: disk log: %w", err)
	}
	header := make([]byte, len(diskLogMagic)+4)
	n, err := io.ReadFull(f, header)
	switch {
	case n == 0:
		binary.LittleEndian.PutUint32(header[len(diskLogMagic):], diskLogFormat)
		copy(header, diskLogMagic)
		if _, err := f.Write(header); err != nil {
			f.Close()
			return fmt.Errorf("dfs: disk log: %w", err)
		}
	case err != nil:
		// A header torn mid-write: the log never held a record.
		if terr := f.Truncate(0); terr != nil {
			f.Close()
			return fmt.Errorf("dfs: disk log: %w", terr)
		}
		f.Close()
		return d.loadLog()
	default:
		if string(header[:len(diskLogMagic)]) != diskLogMagic {
			f.Close()
			return fmt.Errorf("dfs: %s is not a dfs record log", path)
		}
		if v := binary.LittleEndian.Uint32(header[len(diskLogMagic):]); v != diskLogFormat {
			f.Close()
			return fmt.Errorf("dfs: unsupported record log format %d", v)
		}
	}
	offset := int64(len(header))
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(f, lenBuf[:]); err != nil {
			break // clean end (or torn length prefix)
		}
		recLen := binary.LittleEndian.Uint32(lenBuf[:])
		if recLen == 0 || recLen > maxRecordLen {
			break
		}
		buf := make([]byte, recLen+4)
		if _, err := io.ReadFull(f, buf); err != nil {
			break // torn record
		}
		payload, sum := buf[:recLen], binary.LittleEndian.Uint32(buf[recLen:])
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt record: everything past it is suspect
		}
		d.applyRecordLocked(payload)
		offset += int64(4 + len(buf))
	}
	if err := f.Truncate(offset); err != nil {
		f.Close()
		return fmt.Errorf("dfs: disk log: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("dfs: disk log: %w", err)
	}
	d.log = f
	return nil
}

// recordKey is the last-write-wins identity of a record, for dead
// record accounting.
func recordKey(op byte, path string) string {
	if op == opVersionSet {
		return "v\x00" + path
	}
	return "f\x00" + path
}

// applyRecordLocked folds one decoded log record into the index.
func (d *Disk) applyRecordLocked(payload []byte) {
	if len(payload) < 1+4 {
		return
	}
	op := payload[0]
	pathLen := binary.LittleEndian.Uint32(payload[1:5])
	if int(pathLen) > len(payload)-5 {
		return
	}
	path := string(payload[5 : 5+pathLen])
	rest := payload[5+pathLen:]
	if len(rest) < 8 {
		return
	}
	ver := int64(binary.LittleEndian.Uint64(rest[:8]))
	data := rest[8:]
	d.logRecs++
	d.liveKeys[recordKey(op, path)] = true
	switch op {
	case opFilePut:
		if old, ok := d.files[path]; ok {
			d.accountLocked(path, -old.size, -1)
		}
		d.files[path] = &diskFile{size: int64(len(data)), inline: append([]byte(nil), data...)}
		d.accountLocked(path, int64(len(data)), 1)
		if ver > 0 {
			d.version[datasetOf(path)] = ver
		}
	case opFileDel:
		if old, ok := d.files[path]; ok {
			d.accountLocked(path, -old.size, -1)
			delete(d.files, path)
		}
		if ver > 0 {
			d.version[datasetOf(path)] = ver
		}
	case opVersionSet:
		d.version[path] = ver
	}
}

// encodeRecord frames one record: length, payload, crc.
func encodeRecord(op byte, path string, ver int64, data []byte) []byte {
	payload := make([]byte, 0, 1+4+len(path)+8+len(data))
	payload = append(payload, op)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(path)))
	payload = append(payload, path...)
	payload = binary.LittleEndian.AppendUint64(payload, uint64(ver))
	payload = append(payload, data...)
	rec := make([]byte, 0, 4+len(payload)+4)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
	return rec
}

// appendRecordLocked writes one record to the log in a single write.
// It does not recompact: the caller's in-memory state may not yet
// reflect this record, and recompaction rewrites the log from that
// state — mutators call maybeRecompactLocked once they are consistent.
func (d *Disk) appendRecordLocked(op byte, path string, ver int64, data []byte) error {
	if _, err := d.log.Write(encodeRecord(op, path, ver, data)); err != nil {
		return fmt.Errorf("dfs: disk log append: %w", err)
	}
	if d.syncLog {
		if err := d.log.Sync(); err != nil {
			return fmt.Errorf("dfs: disk log sync: %w", err)
		}
	}
	d.logRecs++
	d.liveKeys[recordKey(op, path)] = true
	return nil
}

// maybeRecompactLocked rewrites the log once it is big enough and dead
// records outnumber live ones. Called at the end of mutations, when
// the in-memory index is consistent with the log.
func (d *Disk) maybeRecompactLocked() {
	if d.logRecs >= recompactMinRecords && d.logRecs-len(d.liveKeys) > len(d.liveKeys) {
		_ = d.recompactLocked()
	}
}

// Recompact rewrites the record log with only live state: one put per
// inline file, one version record per dataset version not carried by a
// put. Tombstone versions of deleted datasets are preserved — the
// durable log's trimmed-slot detection depends on them.
func (d *Disk) Recompact() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.recompactLocked()
}

// Recompactions returns how many times the record log has been
// rewritten since open.
func (d *Disk) Recompactions() int64 { return d.recompacts.Load() }

func (d *Disk) recompactLocked() error {
	tmpPath := filepath.Join(d.dir, "dfs.log.tmp")
	f, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("dfs: recompact: %w", err)
	}
	header := make([]byte, len(diskLogMagic)+4)
	copy(header, diskLogMagic)
	binary.LittleEndian.PutUint32(header[len(diskLogMagic):], diskLogFormat)
	if _, err := f.Write(header); err != nil {
		f.Close()
		return fmt.Errorf("dfs: recompact: %w", err)
	}
	recs := 0
	keys := make(map[string]bool)
	emit := func(op byte, path string, ver int64, data []byte) error {
		if _, err := f.Write(encodeRecord(op, path, ver, data)); err != nil {
			return err
		}
		recs++
		keys[recordKey(op, path)] = true
		return nil
	}
	inline := make([]string, 0, len(d.files))
	covered := make(map[string]bool)
	for p, f := range d.files {
		if f.inline != nil {
			inline = append(inline, p)
		}
	}
	sort.Strings(inline)
	for _, p := range inline {
		ds := datasetOf(p)
		ver := int64(0)
		if ds == p {
			ver = d.version[p]
			covered[p] = true
		}
		if err := emit(opFilePut, p, ver, d.files[p].inline); err != nil {
			f.Close()
			return fmt.Errorf("dfs: recompact: %w", err)
		}
	}
	dss := make([]string, 0, len(d.version))
	for ds := range d.version {
		if !covered[ds] {
			dss = append(dss, ds)
		}
	}
	sort.Strings(dss)
	for _, ds := range dss {
		if err := emit(opVersionSet, ds, d.version[ds], nil); err != nil {
			f.Close()
			return fmt.Errorf("dfs: recompact: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("dfs: recompact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("dfs: recompact: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(d.dir, "dfs.log")); err != nil {
		return fmt.Errorf("dfs: recompact: %w", err)
	}
	reopened, err := os.OpenFile(filepath.Join(d.dir, "dfs.log"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("dfs: recompact: %w", err)
	}
	if d.log != nil {
		d.log.Close()
	}
	d.log = reopened
	d.logRecs = recs
	d.liveKeys = keys
	d.recompacts.Add(1)
	return nil
}

// isInline reports whether path is stored in the record log rather
// than as an object file: every path that is its own dataset.
func isInline(p string) bool { return datasetOf(p) == p }

// objectPath maps a logical path to its objects/ file.
func (d *Disk) objectPath(p string) string {
	return filepath.Join(d.dir, "objects", filepath.FromSlash(p))
}

// writeObject commits data to objects/<p> via temp-then-rename.
func (d *Disk) writeObject(p string, data []byte) error {
	full := d.objectPath(p)
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return err
	}
	tmp := full + ".tmp~"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if d.syncLog {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, full)
}

// removeObject deletes objects/<p> and prunes now-empty parent
// directories up to the objects root.
func (d *Disk) removeObject(p string) {
	full := d.objectPath(p)
	_ = os.Remove(full)
	root := filepath.Join(d.dir, "objects")
	for dir := filepath.Dir(full); dir != root && strings.HasPrefix(dir, root); dir = filepath.Dir(dir) {
		if os.Remove(dir) != nil {
			break // not empty (or gone)
		}
	}
}

// accountLocked mirrors FS.accountLocked over the dataset accounting.
func (d *Disk) accountLocked(path string, bytes int64, files int) {
	ds := datasetOf(path)
	info := d.datasets[ds]
	if info == nil {
		info = &dsInfo{}
		d.datasets[ds] = info
	}
	info.bytes += bytes
	info.files += files
	if info.files <= 0 {
		delete(d.datasets, ds)
	}
}

// Create opens a new file for writing; Close commits it.
func (d *Disk) Create(path string) io.WriteCloser {
	return &diskFileWriter{d: d, path: clean(path)}
}

type diskFileWriter struct {
	d    *Disk
	path string
	buf  bytes.Buffer
	ver  int64
}

func (w *diskFileWriter) Write(p []byte) (int, error) { return w.buf.Write(p) }

func (w *diskFileWriter) Close() error {
	w.d.mu.Lock()
	defer w.d.mu.Unlock()
	err := w.d.commitLocked(w.path, append([]byte(nil), w.buf.Bytes()...), true)
	w.ver = w.d.version[datasetOf(w.path)]
	w.d.maybeRecompactLocked()
	return err
}

// CommittedVersion returns the dataset version this writer's Close
// committed, captured inside Close's critical section. Zero before
// Close.
func (w *diskFileWriter) CommittedVersion() int64 { return w.ver }

// commitLocked is the single file-commit path (mu held): applies the
// write fault when asked, stores content in the right class, bumps the
// dataset version and persists both through the record log.
func (d *Disk) commitLocked(p string, data []byte, applyFault bool) error {
	var faultErr error
	if applyFault && d.writeFault != nil {
		data, faultErr = d.writeFault(p, data)
		if faultErr != nil && data == nil {
			return faultErr // crash before any byte hit the disk
		}
	}
	ds := datasetOf(p)
	newVer := d.version[ds] + 1
	if isInline(p) {
		if err := d.appendRecordLocked(opFilePut, p, newVer, data); err != nil {
			return err
		}
		if old, ok := d.files[p]; ok {
			d.accountLocked(p, -old.size, -1)
		}
		d.files[p] = &diskFile{size: int64(len(data)), inline: append([]byte(nil), data...)}
	} else {
		if err := d.writeObject(p, data); err != nil {
			return err
		}
		if err := d.appendRecordLocked(opVersionSet, ds, newVer, nil); err != nil {
			return err
		}
		if old, ok := d.files[p]; ok {
			d.accountLocked(p, -old.size, -1)
		}
		d.files[p] = &diskFile{size: int64(len(data))}
	}
	d.version[ds] = newVer
	d.bytesWritten.Add(int64(len(data)))
	d.accountLocked(p, int64(len(data)), 1)
	return faultErr
}

// WriteFile writes data to path in one call.
func (d *Disk) WriteFile(path string, data []byte) error {
	w := d.Create(path)
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.Close()
}

// SetWriteFault installs the crash-injection commit interceptor; see
// (*FS).SetWriteFault for the contract.
func (d *Disk) SetWriteFault(fn func(path string, data []byte) ([]byte, error)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writeFault = fn
}

// Open returns a reader over the file at path.
func (d *Disk) Open(path string) (io.Reader, error) {
	data, err := d.ReadFile(path)
	if err != nil {
		return nil, &PathError{Op: "open", Path: path, Err: ErrNotExist}
	}
	return bytes.NewReader(data), nil
}

// ReadFile returns the contents of the file at path.
func (d *Disk) ReadFile(path string) ([]byte, error) {
	d.mu.RLock()
	p := clean(path)
	f, ok := d.files[p]
	var data []byte
	var err error
	if ok {
		if f.inline != nil {
			data = append([]byte(nil), f.inline...)
		} else {
			data, err = os.ReadFile(d.objectPath(p))
		}
	}
	d.mu.RUnlock()
	if !ok || err != nil {
		return nil, &PathError{Op: "read", Path: path, Err: ErrNotExist}
	}
	d.bytesRead.Add(int64(len(data)))
	return data, nil
}

// Exists reports whether path names a file or a directory prefix.
func (d *Disk) Exists(path string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p := clean(path)
	if _, ok := d.files[p]; ok {
		return true
	}
	if _, ok := d.datasets[p]; ok {
		return true
	}
	prefix := p + "/"
	for name := range d.datasets {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// List returns the file paths under path, sorted.
func (d *Disk) List(path string) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p := clean(path)
	var out []string
	if p == "" {
		for name := range d.files {
			out = append(out, name)
		}
		sort.Strings(out)
		return out
	}
	if _, ok := d.files[p]; ok {
		out = append(out, p)
	}
	prefix := p + "/"
	for name := range d.files {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// FileStats returns the per-file sizes under path, sorted by path.
func (d *Disk) FileStats(path string) []FileStat {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p := clean(path)
	var out []FileStat
	if f, ok := d.files[p]; ok {
		out = append(out, FileStat{Path: p, Size: f.size})
	}
	prefix := p + "/"
	for name, f := range d.files {
		if strings.HasPrefix(name, prefix) {
			out = append(out, FileStat{Path: name, Size: f.size})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Size returns the total bytes stored under path.
func (d *Disk) Size(path string) int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p := clean(path)
	var n int64
	if info, ok := d.datasets[p]; ok {
		n += info.bytes
	} else if f, ok := d.files[p]; ok {
		n += f.size
	}
	prefix := p + "/"
	for name, info := range d.datasets {
		if strings.HasPrefix(name, prefix) {
			n += info.bytes
		}
	}
	return n
}

// Stat returns bytes, dataset version and leafness in one acquisition;
// see (*FS).Stat for the contract.
func (d *Disk) Stat(path string) (bytes int64, version int64, leaf bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p := clean(path)
	version = d.version[datasetOf(p)]
	if info, ok := d.datasets[p]; ok {
		return info.bytes, version, true
	}
	if f, ok := d.files[p]; ok {
		return f.size, version, true
	}
	prefix := p + "/"
	for name, info := range d.datasets {
		if strings.HasPrefix(name, prefix) {
			bytes += info.bytes
		}
	}
	return bytes, version, false
}

// Datasets returns the dataset paths holding data under prefix, sorted.
func (d *Disk) Datasets(prefix string) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p := clean(prefix)
	var out []string
	for name := range d.datasets {
		if p == "" || name == p || strings.HasPrefix(name, p+"/") {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Delete removes the file or directory tree at path, bumping the
// dataset version of path itself (matching FS semantics).
func (d *Disk) Delete(path string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	p := clean(path)
	victims := d.underLocked(p)
	if len(victims) == 0 {
		return &PathError{Op: "delete", Path: path, Err: ErrNotExist}
	}
	for _, name := range victims {
		if err := d.dropFileLocked(name); err != nil {
			return err
		}
	}
	ds := datasetOf(p)
	newVer := d.version[ds] + 1
	if err := d.appendRecordLocked(opVersionSet, ds, newVer, nil); err != nil {
		return err
	}
	d.version[ds] = newVer
	d.maybeRecompactLocked()
	return nil
}

// underLocked lists the live file paths at p and under p/ (mu held).
func (d *Disk) underLocked(p string) []string {
	var out []string
	if _, ok := d.files[p]; ok {
		out = append(out, p)
	}
	prefix := p + "/"
	for name := range d.files {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	return out
}

// dropFileLocked removes one live file (content + accounting) without
// touching versions.
func (d *Disk) dropFileLocked(name string) error {
	f := d.files[name]
	if f == nil {
		return nil
	}
	if f.inline != nil {
		if err := d.appendRecordLocked(opFileDel, name, 0, nil); err != nil {
			return err
		}
	} else {
		d.removeObject(name)
	}
	d.accountLocked(name, -f.size, -1)
	delete(d.files, name)
	return nil
}

// Rename atomically moves the file or tree at oldPath to newPath,
// replacing the destination; every touched dataset's version is bumped
// inside the critical section, matching the fixed FS semantics.
func (d *Disk) Rename(oldPath, newPath string) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	op, np := clean(oldPath), clean(newPath)
	srcs := d.underLocked(op)
	if len(srcs) == 0 {
		return 0, &PathError{Op: "rename", Path: oldPath, Err: ErrNotExist}
	}
	touched := map[string]bool{datasetOf(op): true, datasetOf(np): true}
	type move struct {
		src, dst string
		data     []byte
	}
	moves := make([]move, 0, len(srcs))
	for _, src := range srcs {
		dst := np
		if src != op {
			dst = np + "/" + src[len(op)+1:]
		}
		touched[datasetOf(src)] = true
		touched[datasetOf(dst)] = true
		f := d.files[src]
		var data []byte
		// Content crosses storage classes (or is replayed into the log)
		// by value; object-to-object moves rename on disk.
		if f.inline != nil || isInline(dst) {
			var err error
			if data, err = d.readLocked(src); err != nil {
				return 0, err
			}
		}
		moves = append(moves, move{src: src, dst: dst, data: data})
	}
	// Clobber the destination tree.
	for _, name := range d.underLocked(np) {
		touched[datasetOf(name)] = true
		if err := d.dropFileLocked(name); err != nil {
			return 0, err
		}
	}
	for _, mv := range moves {
		f := d.files[mv.src]
		switch {
		case f.inline == nil && !isInline(mv.dst):
			full := d.objectPath(mv.dst)
			if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
				return 0, err
			}
			if err := os.Rename(d.objectPath(mv.src), full); err != nil {
				return 0, err
			}
			d.removeObjectDirs(mv.src)
			d.files[mv.dst] = &diskFile{size: f.size}
		case f.inline == nil: // object → inline
			d.removeObject(mv.src)
			if err := d.appendRecordLocked(opFilePut, mv.dst, 0, mv.data); err != nil {
				return 0, err
			}
			d.files[mv.dst] = &diskFile{size: int64(len(mv.data)), inline: append([]byte(nil), mv.data...)}
		case !isInline(mv.dst): // inline → object
			if err := d.appendRecordLocked(opFileDel, mv.src, 0, nil); err != nil {
				return 0, err
			}
			if err := d.writeObject(mv.dst, mv.data); err != nil {
				return 0, err
			}
			d.files[mv.dst] = &diskFile{size: int64(len(mv.data))}
		default: // inline → inline
			if err := d.appendRecordLocked(opFileDel, mv.src, 0, nil); err != nil {
				return 0, err
			}
			if err := d.appendRecordLocked(opFilePut, mv.dst, 0, mv.data); err != nil {
				return 0, err
			}
			d.files[mv.dst] = &diskFile{size: int64(len(mv.data)), inline: append([]byte(nil), mv.data...)}
		}
		d.accountLocked(mv.src, -f.size, -1)
		delete(d.files, mv.src)
		d.accountLocked(mv.dst, d.files[mv.dst].size, 1)
	}
	dss := make([]string, 0, len(touched))
	for ds := range touched {
		dss = append(dss, ds)
	}
	sort.Strings(dss)
	for _, ds := range dss {
		newVer := d.version[ds] + 1
		if err := d.appendRecordLocked(opVersionSet, ds, newVer, nil); err != nil {
			return 0, err
		}
		d.version[ds] = newVer
	}
	d.maybeRecompactLocked()
	return d.version[datasetOf(np)], nil
}

// removeObjectDirs prunes empty parents after an object moved away.
func (d *Disk) removeObjectDirs(p string) {
	root := filepath.Join(d.dir, "objects")
	for dir := filepath.Dir(d.objectPath(p)); dir != root && strings.HasPrefix(dir, root); dir = filepath.Dir(dir) {
		if os.Remove(dir) != nil {
			break
		}
	}
}

// readLocked reads a live file's content with mu already held.
func (d *Disk) readLocked(p string) ([]byte, error) {
	f := d.files[p]
	if f == nil {
		return nil, &PathError{Op: "read", Path: p, Err: ErrNotExist}
	}
	if f.inline != nil {
		return append([]byte(nil), f.inline...), nil
	}
	return os.ReadFile(d.objectPath(p))
}

// fenceName maps a dataset + from-version to its fence file.
func fenceName(ds string, from int64) string {
	enc := strings.NewReplacer("%", "%25", "/", "%2F").Replace(ds)
	return enc + "@" + strconv.FormatInt(from, 10)
}

// takeFence claims the O_EXCL fence for one version transition. The
// returned release removes the fence after the commit is logged.
func (d *Disk) takeFence(ds string, from int64) (release func(), ok bool) {
	path := filepath.Join(d.dir, "fences", fenceName(ds, from))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, false // a peer holds (or held) this transition
	}
	f.Close()
	return func() { os.Remove(path) }, true
}

// WriteFileIf writes data to path only if path's dataset version still
// equals expect; see (*FS).WriteFileIf for the contract. On disk the
// transition is additionally fenced through an O_EXCL create, so two
// processes racing one version transition resolve to one winner.
func (d *Disk) WriteFileIf(path string, data []byte, expect int64) (int64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	p := clean(path)
	ds := datasetOf(p)
	if d.version[ds] != expect {
		return d.version[ds], false
	}
	release, ok := d.takeFence(ds, expect)
	if !ok {
		return d.version[ds], false
	}
	defer release()
	torn := false
	if d.writeFault != nil {
		faulted, faultErr := d.writeFault(p, append([]byte(nil), data...))
		if faultErr != nil {
			if faulted == nil {
				return d.version[ds], false // dropped: nothing hit the disk
			}
			data, torn = faulted, true
		}
	}
	if err := d.commitLocked(p, data, false); err != nil {
		return d.version[ds], false
	}
	d.maybeRecompactLocked()
	return d.version[ds], !torn
}

// RemoveFileIf deletes the file at path only if its dataset version
// still equals expect; the transition is fenced like WriteFileIf's.
func (d *Disk) RemoveFileIf(path string, expect int64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	p := clean(path)
	ds := datasetOf(p)
	if d.version[ds] != expect {
		return false
	}
	if _, ok := d.files[p]; !ok {
		return false
	}
	release, ok := d.takeFence(ds, expect)
	if !ok {
		return false
	}
	defer release()
	if err := d.dropFileLocked(p); err != nil {
		return false
	}
	newVer := d.version[ds] + 1
	if err := d.appendRecordLocked(opVersionSet, ds, newVer, nil); err != nil {
		return false
	}
	d.version[ds] = newVer
	d.maybeRecompactLocked()
	return true
}

// Version returns the modification version of the dataset containing
// path; zero means never written.
func (d *Disk) Version(path string) int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.version[datasetOf(path)]
}

// BytesRead returns the cumulative bytes read through the backend.
func (d *Disk) BytesRead() int64 { return d.bytesRead.Load() }

// BytesWritten returns the cumulative bytes written through the backend.
func (d *Disk) BytesWritten() int64 { return d.bytesWritten.Load() }

// TotalBytes returns the total bytes currently stored.
func (d *Disk) TotalBytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var n int64
	for _, info := range d.datasets {
		n += info.bytes
	}
	return n
}
