package dfs

import "sort"

// Append detection. ReStore's incremental-maintenance path needs to
// distinguish "this dataset was rewritten" (stored results over it are
// garbage) from "this dataset merely grew" (stored results cover a
// prefix of it and can be delta-refreshed). The primitive is a
// Snapshot of the dataset's file inventory taken when a result is
// materialized; a later Classify compares the live inventory against
// it.
//
// Both built-in backends write part files whole and never append to a
// committed file, so "same name, same size" identifies an untouched
// part: a rewrite of a part file replaces its bytes in one commit, and
// any size change is visible in the inventory. Name+size equality is
// therefore the byte-identical-prefix proxy this package promises; a
// backend that mutated committed files in place would need content
// hashes instead.

// FileStat is one file's path and size in a dataset inventory.
type FileStat struct {
	Path string
	Size int64
}

// Snapshot is a dataset's file inventory at a known version: the base
// observation append detection compares against.
type Snapshot struct {
	Version int64
	Bytes   int64
	Files   []FileStat
}

// TakeSnapshot captures the inventory of the dataset at path. The
// version is read before and after listing the files; on a torn
// observation (a concurrent writer slipped in between) it retries, so
// the returned snapshot is always internally consistent.
func TakeSnapshot(fs Backend, path string) Snapshot {
	for {
		v0 := fs.Version(path)
		files := fs.FileStats(path)
		if fs.Version(path) != v0 {
			continue
		}
		var total int64
		for _, f := range files {
			total += f.Size
		}
		return Snapshot{Version: v0, Bytes: total, Files: files}
	}
}

// GrowthKind classifies how a dataset changed relative to a snapshot.
type GrowthKind int

const (
	// GrowthNone: the version has not moved; the dataset is unchanged.
	GrowthNone GrowthKind = iota
	// GrowthAppend: the version moved, every snapshot file is still
	// present at its recorded size, and at least one new file appeared
	// — the dataset grew by exactly the new files.
	GrowthAppend
	// GrowthRewrite: anything else — a snapshot file vanished, changed
	// size, or the version moved with no visible change (an in-place
	// rewrite to the same sizes, or a delete-and-restore); stored
	// results over the snapshot cannot be trusted.
	GrowthRewrite
)

// Growth is the result of classifying a dataset against a snapshot.
type Growth struct {
	Kind GrowthKind
	// NewFiles and NewBytes describe the appended slice (Kind ==
	// GrowthAppend only), sorted by path.
	NewFiles []FileStat
	NewBytes int64
	// Version is the dataset version the classification observed.
	Version int64
}

// NewPaths returns the appended file paths.
func (g Growth) NewPaths() []string {
	out := make([]string, len(g.NewFiles))
	for i, f := range g.NewFiles {
		out[i] = f.Path
	}
	return out
}

// Grown returns the snapshot describing the grown dataset: the base
// inventory plus the appended files, at the classified version. A
// refresh that consumed exactly g's new files records this as its new
// base — not a fresh observation, which could already include appends
// the refresh never read.
func (g Growth) Grown(base Snapshot) Snapshot {
	files := make([]FileStat, 0, len(base.Files)+len(g.NewFiles))
	files = append(files, base.Files...)
	files = append(files, g.NewFiles...)
	sort.Slice(files, func(i, j int) bool { return files[i].Path < files[j].Path })
	return Snapshot{Version: g.Version, Bytes: base.Bytes + g.NewBytes, Files: files}
}

// Classify compares the live inventory of the dataset at path against
// base. Like TakeSnapshot it retries torn observations, so the
// returned classification describes one consistent version.
func Classify(fs Backend, path string, base Snapshot) Growth {
	for {
		v := fs.Version(path)
		if v == base.Version {
			return Growth{Kind: GrowthNone, Version: v}
		}
		files := fs.FileStats(path)
		if fs.Version(path) != v {
			continue
		}
		return classify(base, files, v)
	}
}

func classify(base Snapshot, live []FileStat, v int64) Growth {
	sizes := make(map[string]int64, len(live))
	for _, f := range live {
		sizes[f.Path] = f.Size
	}
	for _, f := range base.Files {
		sz, ok := sizes[f.Path]
		if !ok || sz != f.Size {
			return Growth{Kind: GrowthRewrite, Version: v}
		}
		delete(sizes, f.Path)
	}
	if len(sizes) == 0 {
		// Version moved with no inventory change: a same-size rewrite
		// or a delete-and-restore. Not provably append-only.
		return Growth{Kind: GrowthRewrite, Version: v}
	}
	g := Growth{Kind: GrowthAppend, Version: v}
	for _, f := range live {
		if _, isNew := sizes[f.Path]; isNew {
			g.NewFiles = append(g.NewFiles, f)
			g.NewBytes += f.Size
		}
	}
	return g
}
