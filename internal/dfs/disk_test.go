package dfs

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openDiskT(t *testing.T, dir string) *Disk {
	t.Helper()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatalf("OpenDisk(%s): %v", dir, err)
	}
	return d
}

// TestDiskReopenRecoversState: close and reopen the directory; every
// file, size, dataset listing and version — including the tombstone of
// a deleted dataset — survives, rebuilt from the object tree and the
// record log.
func TestDiskReopenRecoversState(t *testing.T) {
	dir := t.TempDir()
	d := openDiskT(t, dir)
	if err := d.WriteFile("restore/q1/op2/part-00000", []byte("part-data")); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteFile("sys/repo/MANIFEST", []byte("manifest")); err != nil {
		t.Fatal(err)
	}
	d.WriteFile("sys/repo/MANIFEST", []byte("manifest-v2"))
	if err := d.WriteFile("sys/repo/log/r1", []byte("rec")); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete("sys/repo/log/r1"); err != nil {
		t.Fatal(err)
	}
	vPart := d.Version("restore/q1/op2")
	vMan := d.Version("sys/repo/MANIFEST")
	vTomb := d.Version("sys/repo/log/r1")
	if vTomb == 0 {
		t.Fatal("deleted dataset carries no tombstone version")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	r := openDiskT(t, dir)
	defer r.Close()
	if got, _ := r.ReadFile("restore/q1/op2/part-00000"); string(got) != "part-data" {
		t.Fatalf("object file after reopen = %q", got)
	}
	if got, _ := r.ReadFile("sys/repo/MANIFEST"); string(got) != "manifest-v2" {
		t.Fatalf("inline file after reopen = %q (last write must win)", got)
	}
	if r.Exists("sys/repo/log/r1") {
		t.Error("deleted file resurrected by reopen")
	}
	for ds, want := range map[string]int64{
		"restore/q1/op2":    vPart,
		"sys/repo/MANIFEST": vMan,
		"sys/repo/log/r1":   vTomb,
	} {
		if got := r.Version(ds); got != want {
			t.Errorf("Version(%s) after reopen = %d, want %d", ds, got, want)
		}
	}
	if got := r.Size("restore/q1/op2"); got != int64(len("part-data")) {
		t.Errorf("Size after reopen = %d", got)
	}
	if dss := r.Datasets("sys"); len(dss) != 1 || dss[0] != "sys/repo/MANIFEST" {
		t.Errorf("Datasets(sys) after reopen = %v", dss)
	}
}

// TestDiskTornLogTailTruncated: garbage appended to the record log — a
// crash mid-append — is truncated on the next open; every record before
// the tear survives and the log accepts new writes.
func TestDiskTornLogTailTruncated(t *testing.T) {
	dir := t.TempDir()
	d := openDiskT(t, dir)
	if err := d.WriteFile("sys/a", []byte("intact")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: a length prefix promising more bytes than exist.
	f, err := os.OpenFile(filepath.Join(dir, "dfs.log"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 'g', 'a', 'r'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := openDiskT(t, dir)
	defer r.Close()
	if got, _ := r.ReadFile("sys/a"); string(got) != "intact" {
		t.Fatalf("pre-tear record lost: %q", got)
	}
	if err := r.WriteFile("sys/b", []byte("after")); err != nil {
		t.Fatalf("append after torn-tail recovery: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := openDiskT(t, dir)
	defer r2.Close()
	if got, _ := r2.ReadFile("sys/b"); string(got) != "after" {
		t.Fatalf("post-recovery write lost: %q", got)
	}
}

// TestDiskRecompactShrinksLogAndKeepsState: churning one inline file
// accumulates dead records; Recompact rewrites the log to live state
// only — and the rewritten log still carries the deleted datasets'
// tombstone versions through a reopen.
func TestDiskRecompactShrinksLogAndKeepsState(t *testing.T) {
	dir := t.TempDir()
	d := openDiskT(t, dir)
	for i := 0; i < 100; i++ {
		if err := d.WriteFile("sys/counter", []byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.WriteFile("sys/gone", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete("sys/gone"); err != nil {
		t.Fatal(err)
	}
	vCounter, vTomb := d.Version("sys/counter"), d.Version("sys/gone")
	before, err := os.Stat(filepath.Join(dir, "dfs.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Recompact(); err != nil {
		t.Fatalf("Recompact: %v", err)
	}
	after, err := os.Stat(filepath.Join(dir, "dfs.log"))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("recompaction grew the log: %d -> %d bytes", before.Size(), after.Size())
	}
	if got, _ := d.ReadFile("sys/counter"); string(got) != "99" {
		t.Fatalf("recompacted content = %q", got)
	}
	// The recompacted log remains appendable and reopenable.
	if err := d.WriteFile("sys/counter", []byte("100")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	r := openDiskT(t, dir)
	defer r.Close()
	if got, _ := r.ReadFile("sys/counter"); string(got) != "100" {
		t.Fatalf("post-recompact append lost across reopen: %q", got)
	}
	if got := r.Version("sys/counter"); got <= vCounter {
		t.Errorf("counter version regressed: %d after reopen, %d before recompact", got, vCounter)
	}
	if got := r.Version("sys/gone"); got != vTomb {
		t.Errorf("tombstone version = %d after recompact+reopen, want %d", got, vTomb)
	}
}

// TestDiskAutoRecompaction: enough churn trips the automatic rewrite
// without an explicit Recompact call.
func TestDiskAutoRecompaction(t *testing.T) {
	d := openDiskT(t, t.TempDir())
	defer d.Close()
	for i := 0; i < 3*recompactMinRecords; i++ {
		if err := d.WriteFile("sys/churn", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if d.Recompactions() == 0 {
		t.Fatal("churn past the threshold never triggered recompaction")
	}
	if got, _ := d.ReadFile("sys/churn"); string(got) != "v" {
		t.Fatalf("content after auto-recompaction = %q", got)
	}
}

// TestDiskDirectoryLock: a directory held by a live Disk cannot be
// opened again; Close releases it.
func TestDiskDirectoryLock(t *testing.T) {
	dir := t.TempDir()
	d := openDiskT(t, dir)
	if _, err := OpenDisk(dir); err == nil {
		t.Fatal("second OpenDisk on a held directory succeeded")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	r := openDiskT(t, dir)
	r.Close()
}

// TestDiskStaleFencesCleared: fence files a crashed predecessor left
// behind must not block the new owner's CAS transitions — they are
// discarded at open (a fence without a logged commit was never
// acknowledged).
func TestDiskStaleFencesCleared(t *testing.T) {
	dir := t.TempDir()
	d := openDiskT(t, dir)
	if _, ok := d.WriteFileIf("sys/lease", []byte("one"), 0); !ok {
		t.Fatal("setup CAS failed")
	}
	v := d.Version("sys/lease")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// A crashed process's leftover fence for the next transition.
	stale := filepath.Join(dir, "fences", fenceName("sys/lease", v))
	if err := os.WriteFile(stale, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	r := openDiskT(t, dir)
	defer r.Close()
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale fence survived open")
	}
	if _, ok := r.WriteFileIf("sys/lease", []byte("two"), v); !ok {
		t.Fatal("CAS blocked by a dead process's fence")
	}
}

// TestDiskCASSingleWinner: concurrent writers racing one version
// transition resolve to exactly one winner.
func TestDiskCASSingleWinner(t *testing.T) {
	d := openDiskT(t, t.TempDir())
	defer d.Close()
	const racers = 16
	var wg sync.WaitGroup
	wins := make(chan int, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, ok := d.WriteFileIf("sys/slot", []byte(fmt.Sprintf("w%d", i)), 0); ok {
				wins <- i
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	var winners []int
	for w := range wins {
		winners = append(winners, w)
	}
	if len(winners) != 1 {
		t.Fatalf("%d writers won one version transition: %v", len(winners), winners)
	}
	got, _ := d.ReadFile("sys/slot")
	if string(got) != fmt.Sprintf("w%d", winners[0]) {
		t.Fatalf("content %q is not the winner's (w%d)", got, winners[0])
	}
}
