package service

import (
	"context"
	"errors"
	"sync"
)

// The admission errors surfaced to HTTP handlers.
var (
	// ErrOverQuota is returned when a tenant's waiting queue is full:
	// the submit is rejected immediately (429 + Retry-After) instead of
	// queued unboundedly.
	ErrOverQuota = errors.New("service: tenant admission queue full")
	// ErrDraining is returned to waiters cancelled by Close.
	ErrDraining = errors.New("service: server draining")
)

// TenantQuota bounds and weights one tenant's admission.
type TenantQuota struct {
	// Weight is the tenant's fair share: under saturation a tenant with
	// weight 3 is admitted three times as often as a tenant with
	// weight 1. Zero or negative means 1.
	Weight int
	// MaxInFlight caps the tenant's admitted-and-running queries. Zero
	// means DefaultMaxInFlight.
	MaxInFlight int
	// MaxQueued caps the tenant's waiting queries; a submit arriving
	// with the queue full is rejected with ErrOverQuota. Zero means
	// DefaultMaxQueued.
	MaxQueued int
}

// The quota defaults applied where a TenantQuota field is zero.
const (
	DefaultMaxInFlight = 4
	DefaultMaxQueued   = 16
)

func (q TenantQuota) resolved() TenantQuota {
	if q.Weight <= 0 {
		q.Weight = 1
	}
	if q.MaxInFlight <= 0 {
		q.MaxInFlight = DefaultMaxInFlight
	}
	if q.MaxQueued <= 0 {
		q.MaxQueued = DefaultMaxQueued
	}
	return q
}

// admitter is the weighted fair-share admission queue in front of
// System.Submit (which itself sits in front of the engine's
// MaxClusterJobs semaphore). Each tenant has a bounded FIFO of waiting
// queries; whenever a global slot is free, a stride scheduler picks the
// runnable tenant with the smallest virtual pass and admits its head,
// advancing the pass by 1/weight — so over any saturated window each
// backlogged tenant receives admissions proportional to its weight, and
// a flood from one tenant cannot starve another.
type admitter struct {
	mu       sync.Mutex
	capacity int // global admitted-and-running cap
	inflight int
	closed   bool
	tenants  map[string]*tenantSched
	defaults TenantQuota
	quotas   map[string]TenantQuota
	// global is the virtual time of the last admission; a tenant waking
	// from idle starts at this pass, so idle time banks no credit.
	global float64
}

type tenantSched struct {
	name     string
	quota    TenantQuota
	queue    []*waiter
	inflight int
	pass     float64
}

// waiter is one query waiting for admission. ready is closed exactly
// once, after which err tells admitted (nil) from rejected.
type waiter struct {
	tenant *tenantSched
	ready  chan struct{}
	err    error
}

func newAdmitter(capacity int, defaults TenantQuota, quotas map[string]TenantQuota) *admitter {
	if capacity <= 0 {
		capacity = 16
	}
	a := &admitter{
		capacity: capacity,
		tenants:  map[string]*tenantSched{},
		defaults: defaults.resolved(),
		quotas:   map[string]TenantQuota{},
	}
	for name, q := range quotas {
		a.quotas[name] = q.resolved()
	}
	return a
}

func (a *admitter) tenant(name string) *tenantSched {
	t := a.tenants[name]
	if t == nil {
		q, ok := a.quotas[name]
		if !ok {
			q = a.defaults
		}
		t = &tenantSched{name: name, quota: q, pass: a.global}
		a.tenants[name] = t
	}
	return t
}

// enqueue registers one query of the tenant for admission. It never
// blocks: the returned waiter's ready channel is closed on admission
// (or rejection — check wait's error). A tenant at MaxQueued is
// rejected immediately with ErrOverQuota.
func (a *admitter) enqueue(tenantName string) (*waiter, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil, ErrDraining
	}
	t := a.tenant(tenantName)
	if len(t.queue) >= t.quota.MaxQueued {
		return nil, ErrOverQuota
	}
	w := &waiter{tenant: t, ready: make(chan struct{})}
	if len(t.queue) == 0 {
		// Idle → runnable: forfeit credit banked while idle, or the
		// tenant would burst past its share on wake-up.
		if t.pass < a.global {
			t.pass = a.global
		}
	}
	t.queue = append(t.queue, w)
	a.dispatchLocked()
	return w, nil
}

// wait blocks until the waiter is admitted, rejected, or ctx is done.
// A ctx-abandoned waiter is removed from its queue (or, if it was
// admitted in the race, its slot is released).
func (w *waiter) wait(ctx context.Context, a *admitter) error {
	select {
	case <-w.ready:
		return w.err
	case <-ctx.Done():
	}
	a.mu.Lock()
	for i, q := range w.tenant.queue {
		if q == w {
			w.tenant.queue = append(w.tenant.queue[:i], w.tenant.queue[i+1:]...)
			w.err = ctx.Err()
			close(w.ready)
			a.mu.Unlock()
			return w.err
		}
	}
	a.mu.Unlock()
	// Not queued: it was admitted (or rejected) concurrently with the
	// cancellation. Honour whichever happened.
	<-w.ready
	if w.err == nil {
		// Admitted, but the caller is gone: hand the slot back.
		a.release(w.tenant.name)
		return ctx.Err()
	}
	return w.err
}

// release returns one admitted slot of the tenant and admits further
// waiters if any became runnable.
func (a *admitter) release(tenantName string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inflight--
	if t := a.tenants[tenantName]; t != nil && t.inflight > 0 {
		t.inflight--
	}
	a.dispatchLocked()
}

// dispatchLocked admits queue heads while global capacity remains:
// stride scheduling over the runnable tenants (non-empty queue, under
// their per-tenant in-flight cap), smallest pass first.
func (a *admitter) dispatchLocked() {
	for a.inflight < a.capacity {
		var pick *tenantSched
		for _, t := range a.tenants {
			if len(t.queue) == 0 || t.inflight >= t.quota.MaxInFlight {
				continue
			}
			if pick == nil || t.pass < pick.pass ||
				(t.pass == pick.pass && t.name < pick.name) {
				pick = t
			}
		}
		if pick == nil {
			return
		}
		w := pick.queue[0]
		pick.queue = pick.queue[1:]
		pick.inflight++
		a.inflight++
		pick.pass += 1 / float64(pick.quota.Weight)
		a.global = pick.pass
		close(w.ready)
	}
}

// close rejects every waiting query with ErrDraining and stops
// accepting new ones; already-admitted slots drain through release.
func (a *admitter) close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return
	}
	a.closed = true
	for _, t := range a.tenants {
		for _, w := range t.queue {
			w.err = ErrDraining
			close(w.ready)
		}
		t.queue = nil
	}
}

// depth reports (queued, inflight) for one tenant and globally.
func (a *admitter) depth() (queued, inflight int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, t := range a.tenants {
		queued += len(t.queue)
	}
	return queued, a.inflight
}
