// Package service is the multi-tenant serving front-end of the ReStore
// reproduction: a long-lived HTTP server multiplexing many tenants'
// Pig Latin queries onto one restore.System, so sublanguage-level reuse
// happens across users, not just across the calls of one process.
//
// The server exposes:
//
//   - Sessions: POST /sessions binds a client to a tenant identity;
//     DELETE /sessions/{id} closes it and cancels its live queries.
//   - Queries: POST /queries submits a script (or a PigMix query by
//     name) through a weighted fair-share admission queue and returns a
//     query ID immediately; GET /queries/{id} snapshots it, GET
//     /queries/{id}/events streams NDJSON status until completion, GET
//     /queries/{id}/result blocks for the outcome, GET
//     /queries/{id}/output returns stored rows, and DELETE
//     /queries/{id} (or POST /cancel with an ID or tag) aborts it.
//   - Metrics: GET /metrics serializes the full StatsBundle — storage,
//     matcher, durability and lease stats plus the service's own
//     per-tenant admission and reuse counters.
//
// Admission sits in front of the engine's MaxClusterJobs semaphore:
// each tenant has a weight, an in-flight cap and a bounded waiting
// queue. Saturation degrades into weighted fair sharing (a flooding
// tenant cannot starve a light one), and a tenant over its queue bound
// gets an immediate 429 with Retry-After — explicit backpressure
// instead of unbounded accept. Close drains: waiting queries are
// rejected, running ones finish, then the System is closed.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/pigmix"
	"repro/internal/tuple"
)

// Config configures a Server.
type Config struct {
	// MaxConcurrent caps admitted-and-running queries across all
	// tenants (the global slot pool the fair-share scheduler hands
	// out). Zero means 16.
	MaxConcurrent int
	// DefaultQuota applies to tenants absent from Quotas.
	DefaultQuota TenantQuota
	// Quotas overrides per-tenant weights and bounds.
	Quotas map[string]TenantQuota
	// DefaultOptions is the ReStore configuration submitted queries
	// start from; per-request fields (reuse, heuristic, …) override it.
	DefaultOptions restore.Options
	// DefaultWorkers bounds each query's concurrent jobs when the
	// request doesn't pick its own (zero means the engine default).
	DefaultWorkers int
	// RetryAfter is the backoff hint attached to 429 responses (zero
	// means 1s).
	RetryAfter time.Duration
	// StreamInterval is the status-poll period of /queries/{id}/events
	// (zero means 100ms).
	StreamInterval time.Duration
	// RetainDone bounds how many finished queries stay inspectable via
	// GET /queries/{id}; the oldest are forgotten beyond it (zero means
	// 4096).
	RetainDone int
	// SlowQueryThreshold, when positive, makes the server retain the
	// trace of every finished query whose wall time met the threshold
	// in a bounded ring served at GET /debug/slow (restore-server
	// -slow-query-ms).
	SlowQueryThreshold time.Duration
	// SlowRingSize bounds the slow-query ring (zero means 64).
	SlowRingSize int
}

func (c Config) resolved() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 16
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.StreamInterval <= 0 {
		c.StreamInterval = 100 * time.Millisecond
	}
	if c.RetainDone <= 0 {
		c.RetainDone = 4096
	}
	if c.SlowRingSize <= 0 {
		c.SlowRingSize = 64
	}
	return c
}

// QueryHandle is the slice of *restore.Query the server drives; the
// indirection lets admission and lifecycle tests substitute a
// controllable engine.
type QueryHandle interface {
	ID() string
	Tag() string
	Tenant() string
	Cancel()
	Done() <-chan struct{}
	Wait() (*restore.Result, error)
	Status() restore.QueryStatus
	// Trace snapshots the query's span trace; nil when tracing is
	// disabled for the query.
	Trace() *restore.TraceSnapshot
}

// Engine is the submission surface the server serves; *restore.System
// satisfies it through NewServer's adapter.
type Engine interface {
	Submit(ctx context.Context, script string, opts ...restore.ExecOption) (QueryHandle, error)
	Stats() StatsBundle
	Close() error
}

// systemEngine adapts *restore.System to Engine.
type systemEngine struct{ sys *restore.System }

func (e systemEngine) Submit(ctx context.Context, script string, opts ...restore.ExecOption) (QueryHandle, error) {
	q, err := e.sys.Submit(ctx, script, opts...)
	if err != nil {
		return nil, err
	}
	return q, nil
}
func (e systemEngine) Stats() StatsBundle { return SystemStats(e.sys) }
func (e systemEngine) Close() error       { return e.sys.Close() }

// The service-level query lifecycle states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Server multiplexes tenants over one System. Create with NewServer,
// mount Handler on an http.Server, Close to drain.
type Server struct {
	eng Engine
	cfg Config
	adm *admitter

	mu       sync.Mutex
	closed   bool
	sessions map[string]*session
	queries  map[string]*servedQuery
	doneLog  []string // finished query IDs, oldest first, for retention
	nsess    int64
	nquery   int64
	meter    *serviceMeter
	sessMade int64
	slow     *slowRing

	drain sync.WaitGroup
}

// NewServer serves sys under cfg.
func NewServer(sys *restore.System, cfg Config) *Server {
	return NewServerEngine(systemEngine{sys}, cfg)
}

// NewServerEngine is NewServer over an explicit Engine (tests).
func NewServerEngine(eng Engine, cfg Config) *Server {
	cfg = cfg.resolved()
	return &Server{
		eng:      eng,
		cfg:      cfg,
		adm:      newAdmitter(cfg.MaxConcurrent, cfg.DefaultQuota, cfg.Quotas),
		sessions: map[string]*session{},
		queries:  map[string]*servedQuery{},
		meter:    newServiceMeter(),
		slow:     newSlowRing(cfg.SlowRingSize),
	}
}

// quotaFor resolves the effective quota of a tenant.
func (s *Server) quotaFor(tenant string) TenantQuota {
	if q, ok := s.cfg.Quotas[tenant]; ok {
		return q.resolved()
	}
	return s.cfg.DefaultQuota.resolved()
}

// Close drains the server: new submissions are refused, waiting
// queries are rejected (canceled), running queries finish, and the
// underlying System is closed. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if already {
		return nil
	}
	s.adm.close()
	s.drain.Wait()
	return s.eng.Close()
}

// CancelAll aborts every live (queued or running) query, returning how
// many were cancelled — the hard half of a graceful shutdown.
func (s *Server) CancelAll() int {
	s.mu.Lock()
	live := make([]*servedQuery, 0, len(s.queries))
	for _, sq := range s.queries {
		live = append(live, sq)
	}
	s.mu.Unlock()
	n := 0
	for _, sq := range live {
		if sq.cancel() {
			n++
		}
	}
	return n
}

// session binds a client to a tenant identity.
type session struct {
	ID      string    `json:"id"`
	Tenant  string    `json:"tenant"`
	Created time.Time `json:"created"`
}

// servedQuery is one submitted query's service-side record.
type servedQuery struct {
	id      string
	tenant  string
	session string
	tag     string
	script  string
	start   time.Time

	stop context.CancelFunc // aborts the admission wait or the query

	mu       sync.Mutex
	state    string
	q        QueryHandle // non-nil once submitted to the engine
	res      *restore.Result
	err      error
	finished time.Time
	done     chan struct{}
}

// cancel aborts the query if it is still live, reporting whether it
// was.
func (sq *servedQuery) cancel() bool {
	sq.mu.Lock()
	live := sq.state == StateQueued || sq.state == StateRunning
	q := sq.q
	sq.mu.Unlock()
	if !live {
		return false
	}
	sq.stop()
	if q != nil {
		q.Cancel()
	}
	return true
}

// RewriteInfo is one applied reuse, in wire form.
type RewriteInfo struct {
	EntryID   string `json:"entry"`
	Path      string `json:"path"`
	WholeJob  bool   `json:"wholeJob"`
	OpsBefore int    `json:"opsBefore"`
	OpsAfter  int    `json:"opsAfter"`
}

// ResultSummary is a finished query's outcome, in wire form.
type ResultSummary struct {
	SimTimeMs     float64           `json:"simTimeMs"`
	WallMs        float64           `json:"wallMs"`
	JobsRun       int               `json:"jobsRun"`
	JobsReused    int               `json:"jobsReused"`
	Rewrites      []RewriteInfo     `json:"rewrites,omitempty"`
	StoredEntries int               `json:"storedEntries"`
	FinalOutputs  map[string]string `json:"finalOutputs,omitempty"`
}

func summarize(res *restore.Result) *ResultSummary {
	if res == nil || res.Result == nil {
		return nil
	}
	out := &ResultSummary{
		SimTimeMs:     float64(res.SimTime) / float64(time.Millisecond),
		WallMs:        float64(res.WallTime) / float64(time.Millisecond),
		JobsRun:       res.JobsRun,
		JobsReused:    res.JobsReused,
		StoredEntries: len(res.Stored),
		FinalOutputs:  res.FinalOutputs,
	}
	for _, ev := range res.Rewrites {
		out.Rewrites = append(out.Rewrites, RewriteInfo{
			EntryID:   ev.EntryID,
			Path:      ev.Path,
			WholeJob:  ev.WholeJob,
			OpsBefore: ev.OpsBefore,
			OpsAfter:  ev.OpsAfter,
		})
	}
	return out
}

// QueryInfo is a query's point-in-time snapshot, in wire form: the
// /queries/{id} body and the NDJSON stream's record.
type QueryInfo struct {
	ID       string `json:"id"`
	EngineID string `json:"engineId,omitempty"`
	Tenant   string `json:"tenant"`
	Session  string `json:"session,omitempty"`
	Tag      string `json:"tag,omitempty"`
	State    string `json:"state"`
	Error    string `json:"error,omitempty"`
	// Jobs maps MapReduce job IDs to lifecycle states once running.
	Jobs       map[string]string `json:"jobs,omitempty"`
	TasksDone  int               `json:"tasksDone,omitempty"`
	TasksTotal int               `json:"tasksTotal,omitempty"`
	SimTimeMs  float64           `json:"simTimeMs,omitempty"`
	ElapsedMs  float64           `json:"elapsedMs"`
	Result     *ResultSummary    `json:"result,omitempty"`
	// Trace is the query's span tree; attached only to the terminal
	// record of the /events NDJSON stream (and absent when tracing was
	// disabled), so pollers never pay for it mid-flight.
	Trace *restore.TraceSnapshot `json:"trace,omitempty"`
}

func (sq *servedQuery) info() QueryInfo {
	sq.mu.Lock()
	defer sq.mu.Unlock()
	inf := QueryInfo{
		ID:      sq.id,
		Tenant:  sq.tenant,
		Session: sq.session,
		Tag:     sq.tag,
		State:   sq.state,
	}
	end := sq.finished
	if end.IsZero() {
		end = time.Now()
	}
	inf.ElapsedMs = float64(end.Sub(sq.start)) / float64(time.Millisecond)
	if sq.err != nil {
		inf.Error = sq.err.Error()
	}
	if sq.q != nil {
		st := sq.q.Status()
		inf.EngineID = st.ID
		inf.Jobs = make(map[string]string, len(st.Jobs))
		for id, js := range st.Jobs {
			inf.Jobs[id] = js.String()
		}
		for _, p := range st.Progress {
			inf.TasksDone += p.TasksDone
			inf.TasksTotal += p.TasksTotal
		}
		inf.SimTimeMs = float64(st.SimTimeSoFar) / float64(time.Millisecond)
	}
	inf.Result = summarize(sq.res)
	return inf
}

// trace snapshots the underlying query's span tree; nil while still
// queued or when tracing is disabled.
func (sq *servedQuery) trace() *restore.TraceSnapshot {
	sq.mu.Lock()
	q := sq.q
	sq.mu.Unlock()
	if q == nil {
		return nil
	}
	return q.Trace()
}

// submitRequest is the POST /queries body. Script and Query are
// alternatives: a Pig Latin script inline, or a PigMix query by name
// resolved server-side.
type submitRequest struct {
	Session     string `json:"session,omitempty"`
	Tenant      string `json:"tenant,omitempty"`
	Script      string `json:"script,omitempty"`
	Query       string `json:"query,omitempty"`
	Tag         string `json:"tag,omitempty"`
	Reuse       *bool  `json:"reuse,omitempty"`
	WholeJobs   *bool  `json:"wholeJobs,omitempty"`
	LinearMatch *bool  `json:"linearMatch,omitempty"`
	Heuristic   string `json:"heuristic,omitempty"`
	Workers     int    `json:"workers,omitempty"`
}

// errorBody is every non-2xx JSON response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /sessions", s.handleSessionCreate)
	mux.HandleFunc("GET /sessions", s.handleSessionList)
	mux.HandleFunc("DELETE /sessions/{id}", s.handleSessionClose)
	mux.HandleFunc("POST /queries", s.handleSubmit)
	mux.HandleFunc("GET /queries", s.handleQueryList)
	mux.HandleFunc("GET /queries/{id}", s.handleQueryGet)
	mux.HandleFunc("GET /queries/{id}/trace", s.handleQueryTrace)
	mux.HandleFunc("GET /queries/{id}/events", s.handleQueryEvents)
	mux.HandleFunc("GET /queries/{id}/result", s.handleQueryResult)
	mux.HandleFunc("GET /queries/{id}/output", s.handleQueryOutput)
	mux.HandleFunc("DELETE /queries/{id}", s.handleQueryCancel)
	mux.HandleFunc("POST /cancel", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/slow", s.handleSlowLog)
	return mux
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Tenant string `json:"tenant"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad session body: %w", err))
		return
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	s.nsess++
	sess := &session{ID: fmt.Sprintf("s%d", s.nsess), Tenant: req.Tenant, Created: time.Now()}
	s.sessions[sess.ID] = sess
	s.sessMade++
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, sess)
}

func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Created.Before(out[j].Created) })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	var live []*servedQuery
	for _, sq := range s.queries {
		if sq.session == id {
			live = append(live, sq)
		}
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", id))
		return
	}
	n := 0
	for _, sq := range live {
		if sq.cancel() {
			n++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"session": sess.ID, "canceled": n})
}

// handleSubmit is the admission path: resolve the tenant, reserve a
// bounded queue slot (or 429), register the query, and run it
// asynchronously once the fair-share scheduler admits it.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad submit body: %w", err))
		return
	}
	script := req.Script
	if script == "" && req.Query != "" {
		q, err := pigmix.Get(req.Query)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		script = q.Script
	}
	if script == "" {
		writeError(w, http.StatusBadRequest, errors.New("submit needs script or query"))
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	tenant := req.Tenant
	if req.Session != "" {
		sess, ok := s.sessions[req.Session]
		if !ok {
			s.mu.Unlock()
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", req.Session))
			return
		}
		tenant = sess.Tenant
	}
	if tenant == "" {
		tenant = "default"
	}
	quota := s.quotaFor(tenant)

	wtr, err := s.adm.enqueue(tenant)
	if err != nil {
		s.meter.add(tenant, quota, func(c *TenantCounters) { c.Rejected++ })
		s.mu.Unlock()
		if errors.Is(err, ErrOverQuota) {
			w.Header().Set("Retry-After",
				strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}

	s.nquery++
	ctx, stop := context.WithCancel(context.Background())
	sq := &servedQuery{
		id:      fmt.Sprintf("sq%d", s.nquery),
		tenant:  tenant,
		session: req.Session,
		tag:     req.Tag,
		script:  script,
		start:   time.Now(),
		stop:    stop,
		state:   StateQueued,
		done:    make(chan struct{}),
	}
	s.queries[sq.id] = sq
	s.meter.add(tenant, quota, func(c *TenantCounters) { c.Submitted++; c.Queued++ })
	s.drain.Add(1)
	s.mu.Unlock()

	opts := s.execOptions(req, tenant)
	go s.runQuery(ctx, sq, wtr, quota, opts)

	writeJSON(w, http.StatusAccepted, map[string]string{
		"id": sq.id, "tenant": tenant, "state": StateQueued,
	})
}

// execOptions folds the request's overrides over the server defaults.
func (s *Server) execOptions(req submitRequest, tenant string) []restore.ExecOption {
	opts := s.cfg.DefaultOptions
	if req.Reuse != nil {
		opts.Reuse = *req.Reuse
	}
	if req.WholeJobs != nil {
		opts.KeepWholeJobs = *req.WholeJobs
	}
	if req.LinearMatch != nil {
		opts.LinearMatch = *req.LinearMatch
	}
	if req.Heuristic != "" {
		if h, err := core.ParseHeuristic(req.Heuristic); err == nil {
			opts.Heuristic = h
		}
	}
	out := []restore.ExecOption{
		restore.WithOptions(opts),
		restore.WithTenant(tenant),
	}
	if req.Tag != "" {
		out = append(out, restore.WithTag(req.Tag))
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.DefaultWorkers
	}
	if workers > 0 {
		out = append(out, restore.WithWorkers(workers))
	}
	return out
}

// runQuery carries one accepted query through admission, submission and
// completion, keeping the meter and retention in step.
func (s *Server) runQuery(ctx context.Context, sq *servedQuery, wtr *waiter, quota TenantQuota, opts []restore.ExecOption) {
	defer s.drain.Done()
	if err := wtr.wait(ctx, s.adm); err != nil {
		// Never admitted: cancelled while queued, or the server drained.
		s.finish(sq, quota, nil, err, false)
		return
	}
	q, err := s.eng.Submit(ctx, sq.script, opts...)
	if err != nil {
		s.adm.release(sq.tenant)
		s.finish(sq, quota, nil, err, false)
		return
	}
	sq.mu.Lock()
	sq.state = StateRunning
	sq.q = q
	sq.mu.Unlock()
	s.mu.Lock()
	s.meter.add(sq.tenant, quota, func(c *TenantCounters) { c.Queued--; c.Admitted++; c.InFlight++ })
	s.mu.Unlock()

	res, werr := q.Wait()
	s.adm.release(sq.tenant)
	s.finish(sq, quota, res, werr, true)
}

// finish records a query's terminal state. admitted tells whether it
// held an admission slot (and so counted in InFlight).
func (s *Server) finish(sq *servedQuery, quota TenantQuota, res *restore.Result, err error, admitted bool) {
	state := StateDone
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled) || errors.Is(err, ErrDraining):
		state = StateCanceled
	default:
		state = StateFailed
	}
	sq.mu.Lock()
	sq.state = state
	sq.res = res
	sq.err = err
	sq.finished = time.Now()
	wall := sq.finished.Sub(sq.start)
	sq.mu.Unlock()
	close(sq.done)

	if thr := s.cfg.SlowQueryThreshold; thr > 0 && wall >= thr {
		s.slow.add(SlowQuery{
			ID:     sq.id,
			Tenant: sq.tenant,
			Tag:    sq.tag,
			State:  state,
			WallMs: float64(wall) / float64(time.Millisecond),
			Trace:  sq.trace(),
		})
	}

	s.mu.Lock()
	s.meter.add(sq.tenant, quota, func(c *TenantCounters) {
		if admitted {
			c.InFlight--
		} else {
			c.Queued--
		}
		switch state {
		case StateDone:
			c.Completed++
			if res != nil && res.Result != nil {
				c.JobsRun += int64(res.JobsRun)
				c.JobsReused += int64(res.JobsReused)
				c.Rewrites += int64(len(res.Rewrites))
				if res.JobsReused > 0 || len(res.Rewrites) > 0 {
					c.QueriesWithReuse++
				}
			}
		case StateCanceled:
			c.Canceled++
		default:
			c.Failed++
		}
	})
	// Retention: remember the finished query, forgetting the oldest
	// beyond the bound so a long-lived server's registry stays flat.
	s.doneLog = append(s.doneLog, sq.id)
	for len(s.doneLog) > s.cfg.RetainDone {
		delete(s.queries, s.doneLog[0])
		s.doneLog = s.doneLog[1:]
	}
	s.mu.Unlock()
}

func (s *Server) lookup(id string) *servedQuery {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries[id]
}

func (s *Server) handleQueryList(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	s.mu.Lock()
	list := make([]*servedQuery, 0, len(s.queries))
	for _, sq := range s.queries {
		if tenant == "" || sq.tenant == tenant {
			list = append(list, sq)
		}
	}
	s.mu.Unlock()
	sort.Slice(list, func(i, j int) bool { return list[i].start.Before(list[j].start) })
	out := make([]QueryInfo, len(list))
	for i, sq := range list {
		out[i] = sq.info()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleQueryGet(w http.ResponseWriter, r *http.Request) {
	sq := s.lookup(r.PathValue("id"))
	if sq == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown query %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, sq.info())
}

// handleQueryTrace serves the query's span tree as JSON — point-in-time
// while running, complete once done. 409 when the query recorded no
// trace (tracing disabled, or not yet submitted to the engine).
func (s *Server) handleQueryTrace(w http.ResponseWriter, r *http.Request) {
	sq := s.lookup(r.PathValue("id"))
	if sq == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown query %q", r.PathValue("id")))
		return
	}
	tr := sq.trace()
	if tr == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("query %s has no trace", sq.id))
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

// handleSlowLog serves the bounded ring of slow-query records (newest
// first); empty unless Config.SlowQueryThreshold is set.
func (s *Server) handleSlowLog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.slow.snapshot())
}

// handleQueryEvents streams the query's status as NDJSON: one record
// per change (sampled every StreamInterval), a final record at
// completion, then EOF.
func (s *Server) handleQueryEvents(w http.ResponseWriter, r *http.Request) {
	sq := s.lookup(r.PathValue("id"))
	if sq == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown query %q", r.PathValue("id")))
		return
	}
	interval := s.cfg.StreamInterval
	if v := r.URL.Query().Get("interval"); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			interval = d
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var last []byte
	emit := func(final bool) {
		inf := sq.info()
		if final {
			// The terminal record carries the full span trace so one
			// streaming client gets status and provenance in one pass.
			inf.Trace = sq.trace()
		}
		b, err := json.Marshal(inf)
		if err != nil || bytes.Equal(b, last) {
			return
		}
		last = b
		_, _ = w.Write(append(b, '\n'))
		if flusher != nil {
			flusher.Flush()
		}
	}
	emit(false)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-sq.done:
			emit(true)
			return
		case <-r.Context().Done():
			return
		case <-t.C:
			emit(false)
		}
	}
}

func (s *Server) handleQueryResult(w http.ResponseWriter, r *http.Request) {
	sq := s.lookup(r.PathValue("id"))
	if sq == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown query %q", r.PathValue("id")))
		return
	}
	select {
	case <-sq.done:
	case <-r.Context().Done():
		return
	}
	writeJSON(w, http.StatusOK, sq.info())
}

// handleQueryOutput returns the rows of one of the query's STORE
// destinations as text lines (one encoded tuple per line), following
// any whole-job-reuse redirection.
func (s *Server) handleQueryOutput(w http.ResponseWriter, r *http.Request) {
	sq := s.lookup(r.PathValue("id"))
	if sq == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown query %q", r.PathValue("id")))
		return
	}
	path := r.URL.Query().Get("path")
	if path == "" {
		writeError(w, http.StatusBadRequest, errors.New("output needs ?path="))
		return
	}
	select {
	case <-sq.done:
	case <-r.Context().Done():
		return
	}
	sq.mu.Lock()
	res, err := sq.res, sq.err
	sq.mu.Unlock()
	if err != nil || res == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("query %s produced no output", sq.id))
		return
	}
	rows, rerr := res.Output(path)
	if rerr != nil {
		writeError(w, http.StatusNotFound, rerr)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, row := range rows {
		fmt.Fprintln(w, tuple.EncodeText(row))
	}
}

func (s *Server) handleQueryCancel(w http.ResponseWriter, r *http.Request) {
	sq := s.lookup(r.PathValue("id"))
	if sq == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown query %q", r.PathValue("id")))
		return
	}
	canceled := sq.cancel()
	writeJSON(w, http.StatusOK, map[string]any{"id": sq.id, "canceled": canceled})
}

// handleCancel aborts every live query whose service ID, engine ID or
// tag matches — the HTTP face of System.Cancel(idOrTag).
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	var req struct {
		IDOrTag string `json:"idOrTag"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.IDOrTag == "" {
		writeError(w, http.StatusBadRequest, errors.New("cancel needs idOrTag"))
		return
	}
	s.mu.Lock()
	live := make([]*servedQuery, 0, len(s.queries))
	for _, sq := range s.queries {
		live = append(live, sq)
	}
	s.mu.Unlock()
	n := 0
	for _, sq := range live {
		match := sq.id == req.IDOrTag || (sq.tag != "" && sq.tag == req.IDOrTag)
		if !match {
			sq.mu.Lock()
			match = sq.q != nil && sq.q.ID() == req.IDOrTag
			sq.mu.Unlock()
		}
		if match && sq.cancel() {
			n++
		}
	}
	writeJSON(w, http.StatusOK, map[string]int{"canceled": n})
}

// Stats snapshots the full bundle the /metrics endpoint serves.
func (s *Server) Stats() StatsBundle {
	bundle := s.eng.Stats()
	s.mu.Lock()
	svc := s.meter.snapshot()
	svc.SessionsCreated = s.sessMade
	svc.SessionsActive = int64(len(s.sessions))
	s.mu.Unlock()
	bundle.Service = &svc
	return bundle
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		s.Stats().WritePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}
