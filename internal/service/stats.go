package service

import (
	"encoding/json"
	"io"

	"repro"
)

// StatsBundle is the one machine-readable stats document of a System:
// the /metrics endpoint's body, and exactly what `restore-cli
// -stats-json` prints, so dashboards parse one schema whether they
// watch a server or a one-shot run.
type StatsBundle struct {
	// Storage, Matcher, Durability and Leases are the engine
	// subsystems' snapshots (Durability and Leases are zero without
	// Config.Durability).
	Storage    restore.StorageStats    `json:"storage"`
	Matcher    restore.MatcherStats    `json:"matcher"`
	Durability restore.DurabilityStats `json:"durability"`
	Leases     restore.LeaseStats      `json:"leases"`
	// BatchCache snapshots the engine's decoded-dataset cache (the
	// in-memory fast path); zero when the cache is disabled.
	BatchCache restore.BatchCacheStats `json:"batchCache"`
	// Delta snapshots incremental maintenance: stored entries
	// delta-refreshed after input appends instead of recomputed cold.
	Delta restore.DeltaStats `json:"delta"`
	// Latency carries the wall-latency histograms (submit→done, probe,
	// claim-wait, refresh) with interpolated p50/p95/p99 and cumulative
	// buckets; always present so scrapers can rely on the shape.
	Latency restore.LatencySnapshot `json:"latency"`
	// Service carries the serving front-end's per-tenant counters; nil
	// when the bundle was taken from a System with no server in front
	// (restore-cli).
	Service *ServiceStats `json:"service,omitempty"`
}

// SystemStats snapshots the engine-side stats of sys into a bundle.
func SystemStats(sys *restore.System) StatsBundle {
	st := sys.StorageStats()
	return StatsBundle{
		Storage:    st,
		Matcher:    sys.MatcherStats(),
		Durability: sys.DurabilityStats(),
		Leases:     st.Leases,
		BatchCache: sys.BatchCacheStats(),
		Delta:      sys.DeltaStats(),
		Latency:    sys.LatencyStats(),
	}
}

// WriteJSON writes the bundle as one indented JSON document.
func (b StatsBundle) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ServiceStats is the serving front-end's counter snapshot: admission
// traffic, live depth, and reuse accounting, in total and per tenant.
type ServiceStats struct {
	// SessionsCreated and SessionsActive count sessions ever opened and
	// currently open.
	SessionsCreated int64 `json:"sessionsCreated"`
	SessionsActive  int64 `json:"sessionsActive"`

	TenantCounters

	// Tenants breaks the counters down by tenant identity.
	Tenants map[string]*TenantCounters `json:"tenants,omitempty"`
}

// TenantCounters is one tenant's (or the whole service's) counter set.
type TenantCounters struct {
	// Weight, MaxInFlight and MaxQueued echo the effective quota (zero
	// on the service-wide totals).
	Weight      int `json:"weight,omitempty"`
	MaxInFlight int `json:"maxInFlight,omitempty"`
	MaxQueued   int `json:"maxQueued,omitempty"`

	// Submitted counts queries accepted for admission; Rejected those
	// turned away with 429 (over-quota); Admitted those that reached
	// System.Submit; Completed/Failed/Canceled the terminal states.
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"`
	Admitted  int64 `json:"admitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`

	// Queued and InFlight are the live depths.
	Queued   int64 `json:"queued"`
	InFlight int64 `json:"inFlight"`

	// JobsRun and JobsReused total the completed queries' MapReduce
	// jobs executed versus answered whole from the repository; Rewrites
	// counts the repository reuses applied (whole-job and sub-plan);
	// QueriesWithReuse counts completed queries with at least one
	// reuse of either kind. QueriesWithReuse/Completed is the
	// service-level reuse-hit ratio.
	JobsRun          int64 `json:"jobsRun"`
	JobsReused       int64 `json:"jobsReused"`
	Rewrites         int64 `json:"rewrites"`
	QueriesWithReuse int64 `json:"queriesWithReuse"`
}

// ReuseHitRatio is the share of completed queries answered at least
// partly from the repository (0 when none completed yet).
func (c *TenantCounters) ReuseHitRatio() float64 {
	if c.Completed == 0 {
		return 0
	}
	return float64(c.QueriesWithReuse) / float64(c.Completed)
}

// serviceMeter accumulates ServiceStats under the server's lock.
type serviceMeter struct {
	total   TenantCounters
	tenants map[string]*TenantCounters
}

func newServiceMeter() *serviceMeter {
	return &serviceMeter{tenants: map[string]*TenantCounters{}}
}

// forTenant returns (creating) the tenant's counter set.
func (m *serviceMeter) forTenant(tenant string, quota TenantQuota) *TenantCounters {
	c := m.tenants[tenant]
	if c == nil {
		q := quota.resolved()
		c = &TenantCounters{Weight: q.Weight, MaxInFlight: q.MaxInFlight, MaxQueued: q.MaxQueued}
		m.tenants[tenant] = c
	}
	return c
}

// add applies fn to both the service-wide totals and the tenant's set.
func (m *serviceMeter) add(tenant string, quota TenantQuota, fn func(*TenantCounters)) {
	fn(&m.total)
	fn(m.forTenant(tenant, quota))
}

// snapshot deep-copies the counters.
func (m *serviceMeter) snapshot() ServiceStats {
	out := ServiceStats{TenantCounters: m.total, Tenants: map[string]*TenantCounters{}}
	// The totals row carries no quota of its own.
	out.Weight, out.MaxInFlight, out.MaxQueued = 0, 0, 0
	for name, c := range m.tenants {
		cp := *c
		out.Tenants[name] = &cp
	}
	return out
}
