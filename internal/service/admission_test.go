package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collectAdmissions enqueues for tenant and reports its label on a
// channel once admitted.
func watchAdmit(t *testing.T, a *admitter, tenant string, admitted chan<- string) {
	t.Helper()
	w, err := a.enqueue(tenant)
	if err != nil {
		t.Fatalf("enqueue(%s): %v", tenant, err)
	}
	go func() {
		if w.wait(context.Background(), a) == nil {
			admitted <- tenant
		}
	}()
}

// TestFairShareWeightedOrder drives a capacity-1 admitter with a
// backlogged heavy (weight 3) and light (weight 1) tenant and verifies
// the stride scheduler interleaves them by weight: the light tenant is
// admitted about once every four slots, never starved behind the
// heavy backlog.
func TestFairShareWeightedOrder(t *testing.T) {
	quotas := map[string]TenantQuota{
		"heavy": {Weight: 3, MaxInFlight: 1, MaxQueued: 64},
		"light": {Weight: 1, MaxInFlight: 1, MaxQueued: 64},
	}
	a := newAdmitter(1, TenantQuota{}, quotas)
	admitted := make(chan string, 64)

	// First heavy enqueue takes the free slot immediately; the rest
	// queue behind it, then light joins with a full heavy backlog —
	// the starvation scenario.
	for i := 0; i < 12; i++ {
		watchAdmit(t, a, "heavy", admitted)
	}
	for i := 0; i < 4; i++ {
		watchAdmit(t, a, "light", admitted)
	}

	var order []string
	for i := 0; i < 16; i++ {
		select {
		case who := <-admitted:
			order = append(order, who)
			a.release(who)
		case <-time.After(5 * time.Second):
			t.Fatalf("admission stalled after %v", order)
		}
	}

	// No-starvation: light's first admission within the first 5 slots
	// (its weighted share of a 3:1 mix is one in four).
	first := -1
	for i, who := range order {
		if who == "light" {
			first = i
			break
		}
	}
	if first < 0 || first > 4 {
		t.Fatalf("light first admitted at slot %d of %v, want within its 1-in-4 share", first, order)
	}
	// Weighted share: while both are backlogged (first 12 slots —
	// light's 4 queries spread over ~16), every window of 5 has a
	// light admission and heavy keeps its 3x share.
	lightSeen := 0
	for _, who := range order {
		if who == "light" {
			lightSeen++
		}
	}
	if lightSeen != 4 {
		t.Fatalf("light admissions = %d, want 4 (order %v)", lightSeen, order)
	}
	gap := 0
	for _, who := range order[first:] {
		if who == "light" {
			gap = 0
			continue
		}
		gap++
		if gap > 4 && lightSeen > 0 {
			t.Fatalf("light starved for %d consecutive slots in %v", gap, order)
		}
	}
}

// TestHeavyFloodCannotStarveLight is the race-enabled fairness check:
// a heavy tenant flooding from many goroutines cannot push a light
// tenant's queries past their weighted share. With equal weights the
// light tenant's 8 queries must all be admitted within roughly the
// first 2×8 admissions even though 80 heavy queries are contending.
func TestHeavyFloodCannotStarveLight(t *testing.T) {
	quotas := map[string]TenantQuota{
		"heavy": {Weight: 1, MaxInFlight: 2, MaxQueued: 128},
		"light": {Weight: 1, MaxInFlight: 2, MaxQueued: 128},
	}
	a := newAdmitter(2, TenantQuota{}, quotas)

	var admissions atomic.Int64
	var lightMax atomic.Int64
	var wg sync.WaitGroup
	run := func(tenant string) {
		defer wg.Done()
		w, err := a.enqueue(tenant)
		if err != nil {
			t.Errorf("enqueue(%s): %v", tenant, err)
			return
		}
		if err := w.wait(context.Background(), a); err != nil {
			t.Errorf("wait(%s): %v", tenant, err)
			return
		}
		n := admissions.Add(1)
		// Hold the slot briefly so the heavy backlog actually persists
		// while the light tenant's queries contend with it.
		time.Sleep(2 * time.Millisecond)
		if tenant == "light" {
			for {
				cur := lightMax.Load()
				if n <= cur || lightMax.CompareAndSwap(cur, n) {
					break
				}
			}
		}
		a.release(tenant)
	}

	// Saturate with the heavy flood first, then inject the light
	// tenant's queries from a separate goroutine burst.
	wg.Add(80)
	for i := 0; i < 80; i++ {
		go run("heavy")
	}
	time.Sleep(10 * time.Millisecond) // let the heavy backlog build
	wg.Add(8)
	for i := 0; i < 8; i++ {
		go run("light")
	}
	wg.Wait()

	if got := admissions.Load(); got != 88 {
		t.Fatalf("admissions = %d, want 88", got)
	}
	// Equal weights → alternation: light's last admission must land
	// well inside the flood, not after it. Its fair position is ~16
	// plus whatever heavy queries were already admitted before light
	// arrived; 48 (more than double) means starvation.
	if got := lightMax.Load(); got > 48 {
		t.Fatalf("light tenant's last admission was slot %d of 88; starved behind the heavy flood", got)
	}
}

// TestOverQuotaRejectsImmediately: a tenant at MaxQueued gets
// ErrOverQuota instead of unbounded queueing.
func TestOverQuotaRejectsImmediately(t *testing.T) {
	a := newAdmitter(1, TenantQuota{Weight: 1, MaxInFlight: 1, MaxQueued: 2}, nil)
	// Slot holder.
	w, err := a.enqueue("t")
	if err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	if err := w.wait(context.Background(), a); err != nil {
		t.Fatalf("wait: %v", err)
	}
	// Fill the bounded queue.
	for i := 0; i < 2; i++ {
		if _, err := a.enqueue("t"); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	if _, err := a.enqueue("t"); !errors.Is(err, ErrOverQuota) {
		t.Fatalf("enqueue over quota: err = %v, want ErrOverQuota", err)
	}
	queued, inflight := a.depth()
	if queued != 2 || inflight != 1 {
		t.Fatalf("depth = (%d queued, %d inflight), want (2, 1)", queued, inflight)
	}
}

// TestTenantInFlightCap: a tenant never exceeds MaxInFlight even with
// global capacity to spare.
func TestTenantInFlightCap(t *testing.T) {
	a := newAdmitter(8, TenantQuota{Weight: 1, MaxInFlight: 1, MaxQueued: 8}, nil)
	admitted := make(chan string, 8)
	for i := 0; i < 3; i++ {
		watchAdmit(t, a, "t", admitted)
	}
	select {
	case <-admitted:
	case <-time.After(2 * time.Second):
		t.Fatal("first admission never happened")
	}
	select {
	case <-admitted:
		t.Fatal("second admission while the first holds the tenant's only in-flight slot")
	case <-time.After(50 * time.Millisecond):
	}
	a.release("t")
	select {
	case <-admitted:
	case <-time.After(2 * time.Second):
		t.Fatal("release did not admit the next waiter")
	}
}

// TestCloseRejectsWaiters: draining fails queued waiters with
// ErrDraining and refuses new enqueues.
func TestCloseRejectsWaiters(t *testing.T) {
	a := newAdmitter(1, TenantQuota{Weight: 1, MaxInFlight: 1, MaxQueued: 8}, nil)
	w1, _ := a.enqueue("t")
	if err := w1.wait(context.Background(), a); err != nil {
		t.Fatalf("wait: %v", err)
	}
	w2, err := a.enqueue("t")
	if err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	a.close()
	if err := w2.wait(context.Background(), a); !errors.Is(err, ErrDraining) {
		t.Fatalf("queued waiter err = %v, want ErrDraining", err)
	}
	if _, err := a.enqueue("t"); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-close enqueue err = %v, want ErrDraining", err)
	}
}

// TestAbandonedWaiterLeavesQueue: a waiter whose context dies while
// queued is removed and never admitted.
func TestAbandonedWaiterLeavesQueue(t *testing.T) {
	a := newAdmitter(1, TenantQuota{Weight: 1, MaxInFlight: 1, MaxQueued: 8}, nil)
	w1, _ := a.enqueue("t")
	if err := w1.wait(context.Background(), a); err != nil {
		t.Fatalf("wait: %v", err)
	}
	w2, _ := a.enqueue("t")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := w2.wait(ctx, a); !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned waiter err = %v, want context.Canceled", err)
	}
	queued, _ := a.depth()
	if queued != 0 {
		t.Fatalf("queued = %d after abandon, want 0", queued)
	}
}
