package service

import (
	"fmt"
	"io"
)

// WritePrometheus emits the bundle in the Prometheus text exposition
// format (version 0.0.4): the four wall-latency histograms plus the
// headline counters and gauges of every subsystem. GET
// /metrics?format=prometheus serves it; the JSON bundle stays the
// default body.
func (b StatsBundle) WritePrometheus(w io.Writer) {
	b.Latency.Query.WritePrometheus(w, "restore_query_latency_seconds")
	b.Latency.Probe.WritePrometheus(w, "restore_probe_latency_seconds")
	b.Latency.ClaimWait.WritePrometheus(w, "restore_claim_wait_seconds")
	b.Latency.Refresh.WritePrometheus(w, "restore_refresh_latency_seconds")

	gauge := func(name string, v any) {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %v\n", name, name, v)
	}
	counter := func(name string, v any) {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %v\n", name, name, v)
	}

	gauge("restore_storage_entries", b.Storage.Entries)
	gauge("restore_storage_usage_bytes", b.Storage.UsageBytes)
	counter("restore_storage_evictions_total", b.Storage.Evictions)
	counter("restore_claims_granted_total", b.Storage.ClaimsGranted)
	counter("restore_claims_shared_total", b.Storage.ClaimsShared)

	counter("restore_matcher_probes_total", b.Matcher.Probes)
	counter("restore_matcher_candidates_total", b.Matcher.Candidates)
	counter("restore_matcher_traversals_total", b.Matcher.FullTraversals)
	counter("restore_matcher_matches_total", b.Matcher.Matches)
	counter("restore_matcher_negative_hits_total", b.Matcher.NegativeHits)
	gauge("restore_matcher_index_entries", b.Matcher.IndexEntries)

	counter("restore_batch_cache_hits_total", b.BatchCache.Hits)
	counter("restore_batch_cache_misses_total", b.BatchCache.Misses)

	counter("restore_delta_refreshes_total", b.Delta.Refreshes)
	counter("restore_delta_refresh_failed_total", b.Delta.Failed)
	counter("restore_delta_bytes_read_total", b.Delta.DeltaBytesRead)
	counter("restore_delta_cold_bytes_avoided_total", b.Delta.ColdBytesAvoided)

	if svc := b.Service; svc != nil {
		gauge("restore_service_sessions_active", svc.SessionsActive)
		counter("restore_service_submitted_total", svc.Submitted)
		counter("restore_service_rejected_total", svc.Rejected)
		counter("restore_service_completed_total", svc.Completed)
		counter("restore_service_failed_total", svc.Failed)
		counter("restore_service_canceled_total", svc.Canceled)
		gauge("restore_service_queued", svc.Queued)
		gauge("restore_service_in_flight", svc.InFlight)
		counter("restore_service_queries_with_reuse_total", svc.QueriesWithReuse)
	}
}
