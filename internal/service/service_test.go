package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/tuple"
)

// ---- fake engine: deterministic admission/lifecycle tests ----------

// fakeQuery completes when its gate closes (or its ctx dies).
type fakeQuery struct {
	id   string
	done chan struct{}
	mu   sync.Mutex
	res  *restore.Result
	err  error
	stop context.CancelFunc
}

func (q *fakeQuery) ID() string            { return q.id }
func (q *fakeQuery) Tag() string           { return "" }
func (q *fakeQuery) Tenant() string        { return "" }
func (q *fakeQuery) Cancel()               { q.stop() }
func (q *fakeQuery) Done() <-chan struct{} { return q.done }
func (q *fakeQuery) Wait() (*restore.Result, error) {
	<-q.done
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.res, q.err
}
func (q *fakeQuery) Status() restore.QueryStatus {
	return restore.QueryStatus{ID: q.id}
}
func (q *fakeQuery) Trace() *restore.TraceSnapshot {
	return &restore.TraceSnapshot{
		QueryID: q.id,
		WallMs:  1.5,
		Spans:   []*restore.TraceSpan{{Kind: "submit", WallMs: 1.5}},
	}
}

type fakeEngine struct {
	mu     sync.Mutex
	gate   chan struct{} // queries finish when this closes
	n      int
	closed bool
}

func newFakeEngine() *fakeEngine {
	return &fakeEngine{gate: make(chan struct{})}
}

func (e *fakeEngine) Submit(ctx context.Context, script string, opts ...restore.ExecOption) (QueryHandle, error) {
	e.mu.Lock()
	e.n++
	id := fmt.Sprintf("fq%d", e.n)
	gate := e.gate
	e.mu.Unlock()
	qctx, stop := context.WithCancel(ctx)
	q := &fakeQuery{id: id, done: make(chan struct{}), stop: stop}
	go func() {
		defer close(q.done)
		select {
		case <-gate:
			q.mu.Lock()
			q.res = &restore.Result{Result: &core.Result{QueryID: id, JobsRun: 1, JobsReused: 1}}
			q.mu.Unlock()
		case <-qctx.Done():
			q.mu.Lock()
			q.err = qctx.Err()
			q.mu.Unlock()
		}
	}()
	return q, nil
}

func (e *fakeEngine) release() { close(e.gate) }

// Stats returns canned, distinguishable values in every subsystem so
// /metrics field-plumbing regressions (a renamed JSON key, a dropped
// field) fail tests instead of silently serving zeros.
func (e *fakeEngine) Stats() StatsBundle {
	b := StatsBundle{}
	b.Storage.Entries = 7
	b.Storage.UsageBytes = 4096
	b.Storage.ClaimsGranted = 11
	b.Matcher.Probes = 23
	b.Matcher.Matches = 5
	b.Matcher.NegativeHits = 3
	b.BatchCache.Hits = 13
	b.BatchCache.Misses = 2
	b.Delta.Refreshes = 4
	b.Delta.ColdBytesAvoided = 8192
	b.Latency.Query.Count = 9
	b.Latency.Query.P95Ms = 42
	b.Latency.Probe.Count = 23
	b.Latency.ClaimWait.Count = 1
	b.Latency.Refresh.Count = 4
	return b
}
func (e *fakeEngine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	return nil
}

// ---- HTTP helpers --------------------------------------------------

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, data
}

func getJSON(t *testing.T, client *http.Client, url string, out any) *http.Response {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, data, err)
		}
	}
	return resp
}

func newSession(t *testing.T, client *http.Client, base, tenant string) string {
	t.Helper()
	resp, data := postJSON(t, client, base+"/sessions", map[string]string{"tenant": tenant})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("session create: %d %s", resp.StatusCode, data)
	}
	var sess session
	if err := json.Unmarshal(data, &sess); err != nil {
		t.Fatalf("session body %q: %v", data, err)
	}
	return sess.ID
}

func submit(t *testing.T, client *http.Client, base string, req submitRequest) (string, *http.Response, []byte) {
	t.Helper()
	resp, data := postJSON(t, client, base+"/queries", req)
	var out struct {
		ID string `json:"id"`
	}
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("submit body %q: %v", data, err)
		}
	}
	return out.ID, resp, data
}

func waitResult(t *testing.T, client *http.Client, base, id string) QueryInfo {
	t.Helper()
	var info QueryInfo
	resp := getJSON(t, client, base+"/queries/"+id+"/result", &info)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: status %d", id, resp.StatusCode)
	}
	return info
}

// ---- real-System tests ---------------------------------------------

const eventsScript = `
A = load 'events' as (user, amount);
B = group A by user;
C = foreach B generate group, SUM(A.amount);
store C into '%s';
`

func newRealServer(t *testing.T, cfg Config) (*Server, string, *http.Client) {
	t.Helper()
	sys := restore.New(restore.DefaultConfig())
	rows := []tuple.Tuple{
		{"alice", int64(10)},
		{"bob", int64(5)},
		{"alice", int64(7)},
		{"carol", int64(2)},
	}
	if err := sys.WriteDataset("events", rows); err != nil {
		t.Fatalf("WriteDataset: %v", err)
	}
	if cfg.DefaultOptions == (restore.Options{}) {
		cfg.DefaultOptions = restore.Options{Reuse: true, KeepWholeJobs: true, Heuristic: restore.Aggressive}
	}
	srv := NewServer(sys, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Close()
	})
	return srv, ts.URL, ts.Client()
}

// TestHTTPSubmitResultOutput drives one query end to end over HTTP:
// session, submit, blocking result, stored rows.
func TestHTTPSubmitResultOutput(t *testing.T) {
	_, base, client := newRealServer(t, Config{})
	sess := newSession(t, client, base, "acme")

	id, resp, data := submit(t, client, base, submitRequest{
		Session: sess,
		Script:  fmt.Sprintf(eventsScript, "out/totals"),
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	info := waitResult(t, client, base, id)
	if info.State != StateDone || info.Result == nil {
		t.Fatalf("query info = %+v, want done with result", info)
	}
	if info.Tenant != "acme" || info.Session != sess {
		t.Errorf("identity = %s/%s, want acme/%s", info.Tenant, info.Session, sess)
	}
	if info.Result.JobsRun != 1 {
		t.Errorf("JobsRun = %d, want 1", info.Result.JobsRun)
	}

	oresp, err := client.Get(base + "/queries/" + id + "/output?path=out/totals")
	if err != nil {
		t.Fatalf("output: %v", err)
	}
	defer oresp.Body.Close()
	body, _ := io.ReadAll(oresp.Body)
	if oresp.StatusCode != http.StatusOK {
		t.Fatalf("output status %d: %s", oresp.StatusCode, body)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 3 {
		t.Fatalf("output rows = %d (%q), want 3 users", len(lines), body)
	}
}

// TestHTTPCrossTenantReuse is the service-level ReStore pitch: tenant
// "analytics" warms the repository with the shared aggregation, tenant
// "reports" submits the same shape (different destination) and must be
// answered from the repository, visible per tenant in /metrics.
func TestHTTPCrossTenantReuse(t *testing.T) {
	_, base, client := newRealServer(t, Config{})
	sessA := newSession(t, client, base, "analytics")
	sessB := newSession(t, client, base, "reports")

	idA, _, _ := submit(t, client, base, submitRequest{
		Session: sessA, Script: fmt.Sprintf(eventsScript, "out/a"),
	})
	if info := waitResult(t, client, base, idA); info.State != StateDone {
		t.Fatalf("warm query: %+v", info)
	}

	idB, _, _ := submit(t, client, base, submitRequest{
		Session: sessB, Script: fmt.Sprintf(eventsScript, "out/b"),
	})
	info := waitResult(t, client, base, idB)
	if info.State != StateDone || info.Result == nil {
		t.Fatalf("reuse query: %+v", info)
	}
	if info.Result.JobsReused == 0 && len(info.Result.Rewrites) == 0 {
		t.Fatalf("tenant reports reused nothing: %+v", info.Result)
	}

	var bundle StatsBundle
	getJSON(t, client, base+"/metrics", &bundle)
	if bundle.Service == nil {
		t.Fatal("metrics carries no service stats")
	}
	rep := bundle.Service.Tenants["reports"]
	if rep == nil || rep.QueriesWithReuse == 0 {
		t.Fatalf("reports tenant counters = %+v, want reuse accounted", rep)
	}
	if rep.ReuseHitRatio() != 1 {
		t.Errorf("reports reuse-hit ratio = %v, want 1", rep.ReuseHitRatio())
	}
	if bundle.Service.Completed != 2 || bundle.Service.SessionsActive != 2 {
		t.Errorf("service totals = %+v, want 2 completed over 2 sessions", bundle.Service.TenantCounters)
	}
	if bundle.Storage.Entries == 0 {
		t.Errorf("storage stats empty in bundle: %+v", bundle.Storage)
	}
}

// TestHTTPEventsStream reads the NDJSON stream and checks it ends with
// a terminal record.
func TestHTTPEventsStream(t *testing.T) {
	_, base, client := newRealServer(t, Config{StreamInterval: 5 * time.Millisecond})
	sess := newSession(t, client, base, "acme")
	id, _, _ := submit(t, client, base, submitRequest{
		Session: sess, Script: fmt.Sprintf(eventsScript, "out/stream"),
	})

	resp, err := client.Get(base + "/queries/" + id + "/events")
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var records []QueryInfo
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec QueryInfo
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		records = append(records, rec)
	}
	if len(records) == 0 {
		t.Fatal("stream delivered no records")
	}
	last := records[len(records)-1]
	if last.State != StateDone || last.Result == nil {
		t.Fatalf("terminal record = %+v, want done with result", last)
	}
}

// ---- fake-engine tests: backpressure, cancel, drain ---------------

func newFakeServer(t *testing.T, cfg Config) (*fakeEngine, *Server, string, *http.Client) {
	t.Helper()
	eng := newFakeEngine()
	srv := NewServerEngine(eng, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return eng, srv, ts.URL, ts.Client()
}

// TestHTTPOverQuota429 fills a tenant's in-flight and queue bounds and
// expects the next submit to be rejected with 429 + Retry-After while
// the engine still runs the admitted query.
func TestHTTPOverQuota429(t *testing.T) {
	eng, srv, base, client := newFakeServer(t, Config{
		MaxConcurrent: 1,
		DefaultQuota:  TenantQuota{Weight: 1, MaxInFlight: 1, MaxQueued: 2},
		RetryAfter:    3 * time.Second,
	})
	ids := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		id, resp, data := submit(t, client, base, submitRequest{Tenant: "flood", Script: "x"})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, data)
		}
		ids = append(ids, id)
	}
	_, resp, _ := submit(t, client, base, submitRequest{Tenant: "flood", Script: "x"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}
	st := srv.Stats()
	if st.Service.Rejected != 1 || st.Service.Tenants["flood"].Rejected != 1 {
		t.Errorf("rejected counters = %+v", st.Service.TenantCounters)
	}

	eng.release()
	for _, id := range ids {
		if info := waitResult(t, client, base, id); info.State != StateDone {
			t.Fatalf("query %s = %+v, want done after release", id, info)
		}
	}
}

// TestHTTPCancelByTag cancels every live query sharing a tag — queued
// and running alike — and leaves others untouched.
func TestHTTPCancelByTag(t *testing.T) {
	eng, _, base, client := newFakeServer(t, Config{
		MaxConcurrent: 1,
		DefaultQuota:  TenantQuota{Weight: 1, MaxInFlight: 1, MaxQueued: 8},
	})
	var tagged []string
	for i := 0; i < 3; i++ {
		id, resp, data := submit(t, client, base, submitRequest{Tenant: "t", Script: "x", Tag: "nightly"})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d %s", resp.StatusCode, data)
		}
		tagged = append(tagged, id)
	}
	other, _, _ := submit(t, client, base, submitRequest{Tenant: "t", Script: "x", Tag: "adhoc"})

	resp, data := postJSON(t, client, base+"/cancel", map[string]string{"idOrTag": "nightly"})
	var out struct {
		Canceled int `json:"canceled"`
	}
	if err := json.Unmarshal(data, &out); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d %s (%v)", resp.StatusCode, data, err)
	}
	if out.Canceled != 3 {
		t.Fatalf("canceled = %d, want 3", out.Canceled)
	}
	for _, id := range tagged {
		if info := waitResult(t, client, base, id); info.State != StateCanceled {
			t.Fatalf("tagged query %s = %+v, want canceled", id, info)
		}
	}
	eng.release()
	if info := waitResult(t, client, base, other); info.State != StateDone {
		t.Fatalf("untagged query = %+v, want done", info)
	}
}

// TestCloseDrains: Close rejects the queued query, lets the running
// one finish, and closes the engine; post-close submits get 503.
func TestCloseDrains(t *testing.T) {
	eng, srv, base, client := newFakeServer(t, Config{
		MaxConcurrent: 1,
		DefaultQuota:  TenantQuota{Weight: 1, MaxInFlight: 1, MaxQueued: 8},
	})
	running, _, _ := submit(t, client, base, submitRequest{Tenant: "t", Script: "x"})
	queued, _, _ := submit(t, client, base, submitRequest{Tenant: "t", Script: "x"})

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	// The queued query must be rejected promptly even while the
	// running one holds its slot.
	if info := waitResult(t, client, base, queued); info.State != StateCanceled {
		t.Fatalf("queued query after Close = %+v, want canceled", info)
	}
	select {
	case err := <-closed:
		t.Fatalf("Close returned %v while a query was still running", err)
	case <-time.After(20 * time.Millisecond):
	}
	eng.release()
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	if info := waitResult(t, client, base, running); info.State != StateDone {
		t.Fatalf("running query after Close = %+v, want done", info)
	}
	eng.mu.Lock()
	engClosed := eng.closed
	eng.mu.Unlock()
	if !engClosed {
		t.Error("Close did not close the engine")
	}
	_, resp, _ := submit(t, client, base, submitRequest{Tenant: "t", Script: "x"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-close submit status = %d, want 503", resp.StatusCode)
	}
}

// TestSessionCloseCancelsQueries: deleting a session aborts its live
// queries but not another session's.
func TestSessionCloseCancelsQueries(t *testing.T) {
	eng, _, base, client := newFakeServer(t, Config{
		MaxConcurrent: 4,
		DefaultQuota:  TenantQuota{Weight: 1, MaxInFlight: 4, MaxQueued: 8},
	})
	sessA := newSession(t, client, base, "a")
	sessB := newSession(t, client, base, "b")
	qa, _, _ := submit(t, client, base, submitRequest{Session: sessA, Script: "x"})
	qb, _, _ := submit(t, client, base, submitRequest{Session: sessB, Script: "x"})

	req, _ := http.NewRequest(http.MethodDelete, base+"/sessions/"+sessA, nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("DELETE session: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE session status %d", resp.StatusCode)
	}
	if info := waitResult(t, client, base, qa); info.State != StateCanceled {
		t.Fatalf("session-a query = %+v, want canceled", info)
	}
	eng.release()
	if info := waitResult(t, client, base, qb); info.State != StateDone {
		t.Fatalf("session-b query = %+v, want done", info)
	}
}
