package service

import (
	"sync"

	"repro"
)

// SlowQuery is one slow-query record: the GET /debug/slow body's
// element, carrying the finished query's identity, wall time and span
// trace (when tracing was on).
type SlowQuery struct {
	ID     string                 `json:"id"`
	Tenant string                 `json:"tenant"`
	Tag    string                 `json:"tag,omitempty"`
	State  string                 `json:"state"`
	WallMs float64                `json:"wallMs"`
	Trace  *restore.TraceSnapshot `json:"trace,omitempty"`
}

// slowRing keeps the newest size slow queries; older ones fall off so
// a long-lived server holds a bounded number of retained traces.
type slowRing struct {
	mu   sync.Mutex
	size int
	buf  []SlowQuery
	next int  // write cursor
	full bool // buf has wrapped at least once
}

func newSlowRing(size int) *slowRing {
	if size <= 0 {
		size = 64
	}
	return &slowRing{size: size}
}

func (r *slowRing) add(q SlowQuery) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < r.size {
		r.buf = append(r.buf, q)
		r.next = len(r.buf) % r.size
		r.full = len(r.buf) == r.size && r.next == 0
		return
	}
	r.buf[r.next] = q
	r.next = (r.next + 1) % r.size
	r.full = true
}

// snapshot copies the records newest-first.
func (r *slowRing) snapshot() []SlowQuery {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SlowQuery, 0, len(r.buf))
	// Walk backwards from the most recent write.
	for i := 0; i < len(r.buf); i++ {
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}
