package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro"
)

// TestMetricsFieldPlumbing decodes /metrics as raw JSON and checks the
// fake engine's canned values arrive under the documented keys — a
// renamed field or a dropped subsystem fails here instead of serving
// zeros to dashboards.
func TestMetricsFieldPlumbing(t *testing.T) {
	_, _, base, client := newFakeServer(t, Config{})
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("metrics body: %v", err)
	}
	dig := func(key, sub string) float64 {
		t.Helper()
		raw, ok := doc[key]
		if !ok {
			t.Fatalf("metrics JSON missing %q", key)
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("metrics[%s]: %v", key, err)
		}
		var v float64
		if err := json.Unmarshal(m[sub], &v); err != nil {
			t.Fatalf("metrics[%s][%s] = %s: %v", key, sub, m[sub], err)
		}
		return v
	}
	digHist := func(hist, field string) float64 {
		t.Helper()
		var lat map[string]map[string]json.RawMessage
		if err := json.Unmarshal(doc["latency"], &lat); err != nil {
			t.Fatalf("metrics latency: %v", err)
		}
		var v float64
		if err := json.Unmarshal(lat[hist][field], &v); err != nil {
			t.Fatalf("latency[%s][%s]: %v", hist, field, err)
		}
		return v
	}
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"storage.Entries", dig("storage", "Entries"), 7},
		{"storage.UsageBytes", dig("storage", "UsageBytes"), 4096},
		{"storage.ClaimsGranted", dig("storage", "ClaimsGranted"), 11},
		{"matcher.Probes", dig("matcher", "Probes"), 23},
		{"matcher.Matches", dig("matcher", "Matches"), 5},
		{"matcher.NegativeHits", dig("matcher", "NegativeHits"), 3},
		{"batchCache.Hits", dig("batchCache", "Hits"), 13},
		{"delta.refreshes", dig("delta", "refreshes"), 4},
		{"delta.coldBytesAvoided", dig("delta", "coldBytesAvoided"), 8192},
		{"latency.query.count", digHist("query", "count"), 9},
		{"latency.query.p95Ms", digHist("query", "p95Ms"), 42},
		{"latency.probe.count", digHist("probe", "count"), 23},
		{"latency.claimWait.count", digHist("claimWait", "count"), 1},
		{"latency.refresh.count", digHist("refresh", "count"), 4},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

// TestMetricsPrometheus checks ?format=prometheus serves a well-formed
// text exposition carrying the canned values.
func TestMetricsPrometheus(t *testing.T) {
	_, _, base, client := newFakeServer(t, Config{})
	resp, err := client.Get(base + "/metrics?format=prometheus")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"# TYPE restore_query_latency_seconds histogram",
		"restore_query_latency_seconds_count 9",
		`restore_query_latency_seconds_bucket{le="+Inf"} 9`,
		"restore_probe_latency_seconds_count 23",
		"# TYPE restore_storage_entries gauge",
		"restore_storage_entries 7",
		"# TYPE restore_matcher_matches_total counter",
		"restore_matcher_matches_total 5",
		"restore_batch_cache_hits_total 13",
		"restore_delta_refreshes_total 4",
		"restore_service_submitted_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Every sample line must be `name{labels} value` or `name value`.
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

// TestQueryTraceEndpoint runs a real query and checks /queries/{id}/trace
// returns its span tree, rooted at a submit span with a compile child.
func TestQueryTraceEndpoint(t *testing.T) {
	_, base, client := newRealServer(t, Config{})
	sess := newSession(t, client, base, "acme")
	id, _, _ := submit(t, client, base, submitRequest{
		Session: sess, Script: fmt.Sprintf(eventsScript, "out/traced"),
	})
	if info := waitResult(t, client, base, id); info.State != StateDone {
		t.Fatalf("query: %+v", info)
	}

	var tr restore.TraceSnapshot
	getJSON(t, client, base+"/queries/"+id+"/trace", &tr)
	if len(tr.Spans) != 1 || tr.Spans[0].Kind != "submit" {
		t.Fatalf("trace roots = %+v, want one submit span", tr.Spans)
	}
	kinds := map[string]int{}
	var walk func(sp *restore.TraceSpan)
	walk = func(sp *restore.TraceSpan) {
		kinds[sp.Kind]++
		for _, c := range sp.Children {
			walk(c)
		}
	}
	walk(tr.Spans[0])
	for _, want := range []string{"compile", "job", "probe", "job.exec", "store.commit"} {
		if kinds[want] == 0 {
			t.Errorf("trace has no %q span (kinds = %v)", want, kinds)
		}
	}

	// Unknown ID is a 404, not a panic or empty document.
	resp, err := client.Get(base + "/queries/nope/trace")
	if err != nil {
		t.Fatalf("trace GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown-query trace status = %d, want 404", resp.StatusCode)
	}
}

// TestEventsTerminalTrace checks the NDJSON stream's terminal record —
// and only the terminal record — carries the trace.
func TestEventsTerminalTrace(t *testing.T) {
	_, base, client := newRealServer(t, Config{StreamInterval: 5 * time.Millisecond})
	sess := newSession(t, client, base, "acme")
	id, _, _ := submit(t, client, base, submitRequest{
		Session: sess, Script: fmt.Sprintf(eventsScript, "out/evtrace"),
	})
	resp, err := client.Get(base + "/queries/" + id + "/events")
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer resp.Body.Close()
	var records []QueryInfo
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec QueryInfo
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line: %v", err)
		}
		records = append(records, rec)
	}
	if len(records) == 0 {
		t.Fatal("no records")
	}
	for _, rec := range records[:len(records)-1] {
		if rec.Trace != nil {
			t.Errorf("mid-flight record carries a trace (state %s)", rec.State)
		}
	}
	last := records[len(records)-1]
	if last.State != StateDone || last.Trace == nil || len(last.Trace.Spans) == 0 {
		t.Fatalf("terminal record = state %s trace %v, want done with trace", last.State, last.Trace)
	}
}

// TestSlowQueryLog sets a zero-ish threshold so every query counts as
// slow and checks the ring serves the finished query with its trace.
func TestSlowQueryLog(t *testing.T) {
	_, base, client := newRealServer(t, Config{SlowQueryThreshold: time.Nanosecond})
	sess := newSession(t, client, base, "acme")
	id, _, _ := submit(t, client, base, submitRequest{
		Session: sess, Script: fmt.Sprintf(eventsScript, "out/slow"),
	})
	if info := waitResult(t, client, base, id); info.State != StateDone {
		t.Fatalf("query: %+v", info)
	}
	var slow []SlowQuery
	getJSON(t, client, base+"/debug/slow", &slow)
	if len(slow) != 1 {
		t.Fatalf("slow log has %d records, want 1", len(slow))
	}
	rec := slow[0]
	if rec.ID != id || rec.State != StateDone || rec.WallMs <= 0 || rec.Trace == nil {
		t.Fatalf("slow record = %+v, want %s done with trace", rec, id)
	}
}

// TestSlowRingWraps checks the bounded ring drops oldest-first and
// snapshots newest-first.
func TestSlowRingWraps(t *testing.T) {
	r := newSlowRing(3)
	for i := 0; i < 5; i++ {
		r.add(SlowQuery{ID: fmt.Sprintf("q%d", i)})
	}
	got := r.snapshot()
	if len(got) != 3 {
		t.Fatalf("ring holds %d, want 3", len(got))
	}
	for i, want := range []string{"q4", "q3", "q2"} {
		if got[i].ID != want {
			t.Errorf("snapshot[%d] = %s, want %s", i, got[i].ID, want)
		}
	}
}
