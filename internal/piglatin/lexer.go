// Package piglatin implements the front end of the dataflow system: a
// lexer, an AST, and a recursive-descent parser for the subset of Pig
// Latin that the PigMix workloads exercise — LOAD, STORE, FOREACH …
// GENERATE, FILTER, GROUP/COGROUP, JOIN, DISTINCT, UNION, ORDER, LIMIT,
// with arithmetic/boolean expressions, positional ($n) and named column
// references, and the COUNT/SUM/AVG/MIN/MAX builtins.
package piglatin

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString // 'single quoted'
	tokDollar // $3
	tokPunct  // ( ) , ; . * + - / % == != <= >= < > =
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// Error is a parse or lex error with position information.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("piglatin: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errorf(format string, args ...interface{}) *Error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) advance(n int) {
	for i := 0; i < n; i++ {
		if l.pos < len(l.src) && l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance(1)
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.advance(2)
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				l.advance(1)
			}
			l.advance(2)
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == ':' && false
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next scans the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line, col: l.col}, nil
	}
	start := l.pos
	line, col := l.line, l.col
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.advance(1)
		}
		// Allow the Pig "a::b" qualified name as a single identifier.
		for l.pos+1 < len(l.src) && l.src[l.pos] == ':' && l.src[l.pos+1] == ':' {
			l.advance(2)
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.advance(1)
			}
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: line, col: col}, nil
	case isDigit(c):
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
			l.advance(1)
		}
		// Exponent part.
		if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
			save := l.pos
			l.advance(1)
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.advance(1)
			}
			if l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
					l.advance(1)
				}
			} else {
				l.pos = save
			}
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: line, col: col}, nil
	case c == '\'':
		l.advance(1)
		var b strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != '\'' {
			if l.src[l.pos] == '\\' && l.pos+1 < len(l.src) {
				l.advance(1)
			}
			b.WriteByte(l.src[l.pos])
			l.advance(1)
		}
		if l.pos >= len(l.src) {
			return token{}, &Error{Line: line, Col: col, Msg: "unterminated string"}
		}
		l.advance(1)
		return token{kind: tokString, text: b.String(), line: line, col: col}, nil
	case c == '$':
		l.advance(1)
		ds := l.pos
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.advance(1)
		}
		if l.pos == ds {
			return token{}, &Error{Line: line, Col: col, Msg: "expected digits after $"}
		}
		return token{kind: tokDollar, text: l.src[ds:l.pos], line: line, col: col}, nil
	default:
		// Multi-char operators first.
		for _, op := range []string{"==", "!=", "<=", ">="} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.advance(2)
				return token{kind: tokPunct, text: op, line: line, col: col}, nil
			}
		}
		switch c {
		case '(', ')', ',', ';', '.', '*', '+', '-', '/', '%', '<', '>', '=', '{', '}', ':':
			l.advance(1)
			return token{kind: tokPunct, text: string(c), line: line, col: col}, nil
		}
		return token{}, &Error{Line: line, Col: col, Msg: fmt.Sprintf("unexpected character %q", c)}
	}
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
