package piglatin

import (
	"fmt"
	"strings"
)

// Script is a parsed Pig Latin program: a list of statements.
type Script struct {
	Stmts []Stmt
}

// Stmt is a top-level statement: an alias assignment or a STORE.
type Stmt interface{ stmt() }

// Assign binds an operator expression to an alias: "B = foreach A …".
type Assign struct {
	Alias string
	Op    Op
}

// Store writes an alias to the distributed file system.
type Store struct {
	Alias string
	Path  string
}

func (*Assign) stmt() {}
func (*Store) stmt()  {}

// Op is a relational operator in an assignment.
type Op interface{ op() }

// Load reads a dataset. SchemaSrc is the raw text of the AS clause.
type Load struct {
	Path      string
	SchemaSrc string
}

// GenItem is one entry of a GENERATE list, with an optional AS alias.
type GenItem struct {
	E  Expr
	As string
}

// ForEach projects/transforms each tuple of the input.
type ForEach struct {
	Input string
	Items []GenItem
}

// Filter keeps tuples satisfying Cond.
type Filter struct {
	Input string
	Cond  Expr
}

// Group groups one input (GROUP) or several (COGROUP) by key
// expressions. All is the "GROUP x ALL" form.
type Group struct {
	Inputs   []string
	Keys     [][]Expr
	All      bool
	CoGroup  bool
	Parallel int
}

// Join equi-joins inputs on key expressions.
type Join struct {
	Inputs   []string
	Keys     [][]Expr
	Parallel int
}

// Distinct removes duplicate tuples.
type Distinct struct {
	Input    string
	Parallel int
}

// Union concatenates inputs.
type Union struct {
	Inputs []string
}

// OrderKey is one sort key with direction.
type OrderKey struct {
	E    Expr
	Desc bool
}

// Order sorts the input.
type Order struct {
	Input string
	Keys  []OrderKey
}

// Limit keeps the first N tuples.
type Limit struct {
	Input string
	N     int64
}

func (*Load) op()     {}
func (*ForEach) op()  {}
func (*Filter) op()   {}
func (*Group) op()    {}
func (*Join) op()     {}
func (*Distinct) op() {}
func (*Union) op()    {}
func (*Order) op()    {}
func (*Limit) op()    {}

// Expr is a name-based (unresolved) expression; the logical builder
// resolves names against schemas to produce positional expr.Expr values.
type Expr interface {
	fmt.Stringer
	expr()
}

// Ident references a column (or relation) by name.
type Ident struct{ Name string }

// Dollar references a column by position.
type Dollar struct{ Idx int }

// Dot projects a field out of a bag or tuple column: base.field or
// base.$n (FieldIdx >= 0 when positional).
type Dot struct {
	Base     Expr
	Field    string
	FieldIdx int // -1 when Field is a name
}

// IntLit is an integer literal.
type IntLit struct{ V int64 }

// FloatLit is a floating-point literal.
type FloatLit struct{ V float64 }

// StrLit is a string literal.
type StrLit struct{ V string }

// Star is the "*" projection.
type Star struct{}

// Neg is unary minus.
type Neg struct{ E Expr }

// NotExpr is boolean negation.
type NotExpr struct{ E Expr }

// BinExpr is a binary operation; Op is one of
// + - * / % == != < <= > >= and or.
type BinExpr struct {
	Op   string
	L, R Expr
}

// Call is a function call such as SUM(C.est_revenue).
type Call struct {
	Name string
	Args []Expr
}

func (Ident) expr()    {}
func (Dollar) expr()   {}
func (Dot) expr()      {}
func (IntLit) expr()   {}
func (FloatLit) expr() {}
func (StrLit) expr()   {}
func (Star) expr()     {}
func (Neg) expr()      {}
func (NotExpr) expr()  {}
func (BinExpr) expr()  {}
func (Call) expr()     {}

func (e Ident) String() string  { return e.Name }
func (e Dollar) String() string { return fmt.Sprintf("$%d", e.Idx) }
func (e Dot) String() string {
	if e.FieldIdx >= 0 {
		return fmt.Sprintf("%s.$%d", e.Base, e.FieldIdx)
	}
	return fmt.Sprintf("%s.%s", e.Base, e.Field)
}
func (e IntLit) String() string   { return fmt.Sprintf("%d", e.V) }
func (e FloatLit) String() string { return fmt.Sprintf("%g", e.V) }
func (e StrLit) String() string   { return fmt.Sprintf("'%s'", e.V) }
func (Star) String() string       { return "*" }
func (e Neg) String() string      { return fmt.Sprintf("-%s", e.E) }
func (e NotExpr) String() string  { return fmt.Sprintf("not %s", e.E) }
func (e BinExpr) String() string  { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }
func (e Call) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
}
