package piglatin

import (
	"strings"
	"testing"
)

const q1Src = `
A = load 'page_views' as (user, timestamp, est_revenue, page_info, page_links);
B = foreach A generate user, est_revenue;
alpha = load 'users' using (name, phone, address, city);
beta = foreach alpha generate name;
C = join beta by name, B by user;
store C into 'L2_out';
`

func TestParseQ1(t *testing.T) {
	s, err := Parse(q1Src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(s.Stmts) != 6 {
		t.Fatalf("got %d statements, want 6", len(s.Stmts))
	}
	a0 := s.Stmts[0].(*Assign)
	if a0.Alias != "A" {
		t.Errorf("alias = %q", a0.Alias)
	}
	ld := a0.Op.(*Load)
	if ld.Path != "page_views" {
		t.Errorf("load path = %q", ld.Path)
	}
	if !strings.Contains(ld.SchemaSrc, "est_revenue") {
		t.Errorf("schema = %q", ld.SchemaSrc)
	}
	// "using (schema)" should be treated as AS.
	a2 := s.Stmts[2].(*Assign)
	if a2.Op.(*Load).SchemaSrc == "" {
		t.Errorf("using (schema) clause not captured")
	}
	j := s.Stmts[4].(*Assign).Op.(*Join)
	if len(j.Inputs) != 2 || j.Inputs[0] != "beta" || j.Inputs[1] != "B" {
		t.Errorf("join inputs = %v", j.Inputs)
	}
	st := s.Stmts[5].(*Store)
	if st.Alias != "C" || st.Path != "L2_out" {
		t.Errorf("store = %+v", st)
	}
}

func TestParseQ2GroupAndAgg(t *testing.T) {
	src := `
C = load 'joined' as (name, user, est_revenue);
D = group C by $0;
E = foreach D generate group, SUM(C.est_revenue);
store E into 'L3_out';
`
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	g := s.Stmts[1].(*Assign).Op.(*Group)
	if g.CoGroup || g.All || len(g.Inputs) != 1 {
		t.Errorf("group = %+v", g)
	}
	if _, ok := g.Keys[0][0].(Dollar); !ok {
		t.Errorf("group key = %T", g.Keys[0][0])
	}
	fe := s.Stmts[2].(*Assign).Op.(*ForEach)
	if len(fe.Items) != 2 {
		t.Fatalf("generate items = %d", len(fe.Items))
	}
	if id, ok := fe.Items[0].E.(Ident); !ok || id.Name != "group" {
		t.Errorf("first item = %v", fe.Items[0].E)
	}
	call, ok := fe.Items[1].E.(Call)
	if !ok || call.Name != "SUM" {
		t.Fatalf("second item = %v", fe.Items[1].E)
	}
	dot, ok := call.Args[0].(Dot)
	if !ok || dot.Field != "est_revenue" {
		t.Errorf("SUM arg = %v", call.Args[0])
	}
}

func TestParseFilterExpression(t *testing.T) {
	src := `B = filter A by timespent > 2 and query_term == 'news' or not (user < 'm');`
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	f := s.Stmts[0].(*Assign).Op.(*Filter)
	// Top-level must be "or" (lowest precedence).
	be, ok := f.Cond.(BinExpr)
	if !ok || be.Op != "or" {
		t.Fatalf("cond = %v", f.Cond)
	}
	l, ok := be.L.(BinExpr)
	if !ok || l.Op != "and" {
		t.Errorf("left = %v", be.L)
	}
	if _, ok := be.R.(NotExpr); !ok {
		t.Errorf("right = %v", be.R)
	}
}

func TestParseSingleEqualsTolerated(t *testing.T) {
	src := `B = filter A by field7 = 3;`
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	be := s.Stmts[0].(*Assign).Op.(*Filter).Cond.(BinExpr)
	if be.Op != "==" {
		t.Errorf("op = %q, want ==", be.Op)
	}
}

func TestParseCoGroupUnionDistinctOrderLimit(t *testing.T) {
	src := `
A = load 'x' as (a, b);
B = load 'y' as (a, c);
C = cogroup A by a, B by a parallel 4;
D = distinct A parallel 2;
E = union A, B;
F = order A by b desc, a;
G = limit F 10;
H = group A all;
store G into 'out';
`
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cg := s.Stmts[2].(*Assign).Op.(*Group)
	if !cg.CoGroup || len(cg.Inputs) != 2 || cg.Parallel != 4 {
		t.Errorf("cogroup = %+v", cg)
	}
	d := s.Stmts[3].(*Assign).Op.(*Distinct)
	if d.Input != "A" || d.Parallel != 2 {
		t.Errorf("distinct = %+v", d)
	}
	u := s.Stmts[4].(*Assign).Op.(*Union)
	if len(u.Inputs) != 2 {
		t.Errorf("union = %+v", u)
	}
	o := s.Stmts[5].(*Assign).Op.(*Order)
	if len(o.Keys) != 2 || !o.Keys[0].Desc || o.Keys[1].Desc {
		t.Errorf("order = %+v", o)
	}
	l := s.Stmts[6].(*Assign).Op.(*Limit)
	if l.N != 10 {
		t.Errorf("limit = %+v", l)
	}
	g := s.Stmts[7].(*Assign).Op.(*Group)
	if !g.All {
		t.Errorf("group all = %+v", g)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	src := `B = foreach A generate a + b * 2 - c / 4;`
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	e := s.Stmts[0].(*Assign).Op.(*ForEach).Items[0].E
	// ((a + (b*2)) - (c/4))
	want := "((a + (b * 2)) - (c / 4))"
	if e.String() != want {
		t.Errorf("parsed %s, want %s", e, want)
	}
}

func TestParseStarAndDollarDots(t *testing.T) {
	src := `B = foreach A generate *, $0, C.$2, C.user;`
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	items := s.Stmts[0].(*Assign).Op.(*ForEach).Items
	if _, ok := items[0].E.(Star); !ok {
		t.Errorf("item0 = %v", items[0].E)
	}
	if d, ok := items[1].E.(Dollar); !ok || d.Idx != 0 {
		t.Errorf("item1 = %v", items[1].E)
	}
	if d, ok := items[2].E.(Dot); !ok || d.FieldIdx != 2 {
		t.Errorf("item2 = %v", items[2].E)
	}
	if d, ok := items[3].E.(Dot); !ok || d.Field != "user" {
		t.Errorf("item3 = %v", items[3].E)
	}
}

func TestParseComments(t *testing.T) {
	src := `
-- leading comment
A = load 'x' as (a); /* block
comment */ B = filter A by a > 1; -- trailing
store B into 'o';
`
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(s.Stmts) != 3 {
		t.Errorf("got %d statements", len(s.Stmts))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,                   // empty
		`A = ;`,              // missing op
		`A = load;`,          // missing path
		`A = bogus B;`,       // unknown op
		`A = load 'x' as (a`, // unterminated schema
		`store A to 'x';`,    // bad keyword
		`A = filter B by ;`,  // empty condition
		`A = join B by x;`,   // single-input join
		`A = union B;`,       // single-input union
		`A = load 'x' as (a); B = foreach A generate`, // missing ;
		`A = load 'unterminated`,                      // unterminated string
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("A = load 'x' as (a);\nB = bogus A;\n")
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 2 {
		t.Errorf("error line = %d, want 2", pe.Line)
	}
}

func TestQualifiedNames(t *testing.T) {
	src := `B = foreach A generate beta::name, a::user;`
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	items := s.Stmts[0].(*Assign).Op.(*ForEach).Items
	if id, ok := items[0].E.(Ident); !ok || id.Name != "beta::name" {
		t.Errorf("item0 = %v", items[0].E)
	}
}
