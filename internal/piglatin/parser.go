package piglatin

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a Pig Latin script.
func Parse(src string) (*Script, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	s := &Script{}
	for !p.at(tokEOF) {
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s.Stmts = append(s.Stmts, st)
	}
	if len(s.Stmts) == 0 {
		return nil, fmt.Errorf("piglatin: empty script")
	}
	return s, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) peek() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) at(k tokenKind) bool { return p.cur().kind == k }

func (p *parser) atPunct(text string) bool {
	return p.cur().kind == tokPunct && p.cur().text == text
}

func (p *parser) atKeyword(kw string) bool {
	return p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, kw)
}

func (p *parser) take() token {
	t := p.cur()
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...interface{}) error {
	t := p.cur()
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expectPunct(text string) error {
	if !p.atPunct(text) {
		return p.errorf("expected %q, found %s", text, p.cur())
	}
	p.take()
	return nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errorf("expected %q, found %s", kw, p.cur())
	}
	p.take()
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if !p.at(tokIdent) {
		return "", p.errorf("expected identifier, found %s", p.cur())
	}
	return p.take().text, nil
}

func (p *parser) expectString() (string, error) {
	if !p.at(tokString) {
		return "", p.errorf("expected quoted string, found %s", p.cur())
	}
	return p.take().text, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	if p.atKeyword("store") {
		p.take()
		alias, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("into"); err != nil {
			return nil, err
		}
		path, err := p.expectString()
		if err != nil {
			return nil, err
		}
		// Optional "using Loader()" clause, accepted and ignored.
		if p.atKeyword("using") {
			if err := p.skipUsing(); err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &Store{Alias: alias, Path: path}, nil
	}
	alias, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if !p.atPunct("=") {
		return nil, p.errorf("expected '=' after alias %q, found %s", alias, p.cur())
	}
	p.take()
	op, err := p.parseOp()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &Assign{Alias: alias, Op: op}, nil
}

func (p *parser) skipUsing() error {
	if err := p.expectKeyword("using"); err != nil {
		return err
	}
	// "using PigStorage('\t')" or "using (a, b, c)" (the paper's variant
	// spelling of an AS clause, treated the same way by the caller).
	if p.atPunct("(") {
		return nil // caller handles schema-style using
	}
	if _, err := p.expectIdent(); err != nil {
		return err
	}
	if p.atPunct("(") {
		depth := 0
		for {
			if p.atPunct("(") {
				depth++
			} else if p.atPunct(")") {
				depth--
				if depth == 0 {
					p.take()
					return nil
				}
			} else if p.at(tokEOF) {
				return p.errorf("unterminated using clause")
			}
			p.take()
		}
	}
	return nil
}

func (p *parser) parseOp() (Op, error) {
	if !p.at(tokIdent) {
		return nil, p.errorf("expected operator keyword, found %s", p.cur())
	}
	switch strings.ToLower(p.cur().text) {
	case "load":
		return p.parseLoad()
	case "foreach":
		return p.parseForEach()
	case "filter":
		return p.parseFilter()
	case "group", "cogroup":
		return p.parseGroup()
	case "join":
		return p.parseJoin()
	case "distinct":
		return p.parseDistinct()
	case "union":
		return p.parseUnion()
	case "order":
		return p.parseOrder()
	case "limit":
		return p.parseLimit()
	}
	return nil, p.errorf("unknown operator %q", p.cur().text)
}

// parseSchemaText captures the raw source of a parenthesized or bare
// schema list following AS/USING, up to the end of the clause.
func (p *parser) parseSchemaText() (string, error) {
	var parts []string
	if p.atPunct("(") {
		p.take()
		depth := 1
		for depth > 0 {
			if p.at(tokEOF) {
				return "", p.errorf("unterminated schema")
			}
			if p.atPunct("(") {
				depth++
			}
			if p.atPunct(")") {
				depth--
				if depth == 0 {
					p.take()
					break
				}
			}
			parts = append(parts, p.take().text)
		}
		return strings.Join(parts, " "), nil
	}
	// Bare comma-separated list of name[:type].
	for {
		name, err := p.expectIdent()
		if err != nil {
			return "", err
		}
		item := name
		if p.atPunct(":") {
			p.take()
			tn, err := p.expectIdent()
			if err != nil {
				return "", err
			}
			item += ":" + tn
		}
		parts = append(parts, item)
		if !p.atPunct(",") {
			break
		}
		p.take()
	}
	return strings.Join(parts, ", "), nil
}

func (p *parser) parseLoad() (Op, error) {
	p.take() // load
	path, err := p.expectString()
	if err != nil {
		return nil, err
	}
	ld := &Load{Path: path}
	if p.atKeyword("using") {
		if err := p.skipUsing(); err != nil {
			return nil, err
		}
		if p.atPunct("(") {
			// Paper-style "using (name, phone, …)": treat as AS.
			s, err := p.parseSchemaText()
			if err != nil {
				return nil, err
			}
			ld.SchemaSrc = s
		}
	}
	if p.atKeyword("as") {
		p.take()
		s, err := p.parseSchemaText()
		if err != nil {
			return nil, err
		}
		ld.SchemaSrc = s
	}
	return ld, nil
}

func (p *parser) parseForEach() (Op, error) {
	p.take() // foreach
	input, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("generate"); err != nil {
		return nil, err
	}
	fe := &ForEach{Input: input}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item := GenItem{E: e}
		if p.atKeyword("as") {
			p.take()
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			item.As = name
		}
		fe.Items = append(fe.Items, item)
		if !p.atPunct(",") {
			break
		}
		p.take()
	}
	return fe, nil
}

func (p *parser) parseFilter() (Op, error) {
	p.take() // filter
	input, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("by"); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Filter{Input: input, Cond: cond}, nil
}

// parseKeyList parses "expr" or "(expr, expr…)".
func (p *parser) parseKeyList() ([]Expr, error) {
	if p.atPunct("(") {
		p.take()
		var keys []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			keys = append(keys, e)
			if p.atPunct(",") {
				p.take()
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return keys, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return []Expr{e}, nil
}

func (p *parser) parseParallel() (int, error) {
	if !p.atKeyword("parallel") {
		return 0, nil
	}
	p.take()
	if !p.at(tokNumber) {
		return 0, p.errorf("expected number after parallel")
	}
	n, err := strconv.Atoi(p.take().text)
	if err != nil {
		return 0, p.errorf("bad parallel count: %v", err)
	}
	return n, nil
}

func (p *parser) parseGroup() (Op, error) {
	kw := strings.ToLower(p.take().text) // group | cogroup
	g := &Group{CoGroup: kw == "cogroup"}
	for {
		input, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		g.Inputs = append(g.Inputs, input)
		if p.atKeyword("all") {
			p.take()
			g.All = true
			g.Keys = append(g.Keys, nil)
		} else {
			if err := p.expectKeyword("by"); err != nil {
				return nil, err
			}
			keys, err := p.parseKeyList()
			if err != nil {
				return nil, err
			}
			g.Keys = append(g.Keys, keys)
		}
		if p.atPunct(",") {
			p.take()
			continue
		}
		break
	}
	if !g.CoGroup && len(g.Inputs) > 1 {
		g.CoGroup = true // "group A by x, B by y" is really a cogroup
	}
	par, err := p.parseParallel()
	if err != nil {
		return nil, err
	}
	g.Parallel = par
	return g, nil
}

func (p *parser) parseJoin() (Op, error) {
	p.take() // join
	j := &Join{}
	for {
		input, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		keys, err := p.parseKeyList()
		if err != nil {
			return nil, err
		}
		j.Inputs = append(j.Inputs, input)
		j.Keys = append(j.Keys, keys)
		if p.atPunct(",") {
			p.take()
			continue
		}
		break
	}
	if len(j.Inputs) < 2 {
		return nil, p.errorf("join needs at least two inputs")
	}
	// Optional "using 'replicated'" etc.: accepted, ignored.
	if p.atKeyword("using") {
		p.take()
		if p.at(tokString) || p.at(tokIdent) {
			p.take()
		}
	}
	par, err := p.parseParallel()
	if err != nil {
		return nil, err
	}
	j.Parallel = par
	return j, nil
}

func (p *parser) parseDistinct() (Op, error) {
	p.take() // distinct
	input, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	par, err := p.parseParallel()
	if err != nil {
		return nil, err
	}
	return &Distinct{Input: input, Parallel: par}, nil
}

func (p *parser) parseUnion() (Op, error) {
	p.take() // union
	u := &Union{}
	for {
		input, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		u.Inputs = append(u.Inputs, input)
		if p.atPunct(",") {
			p.take()
			continue
		}
		break
	}
	if len(u.Inputs) < 2 {
		return nil, p.errorf("union needs at least two inputs")
	}
	return u, nil
}

func (p *parser) parseOrder() (Op, error) {
	p.take() // order
	input, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("by"); err != nil {
		return nil, err
	}
	o := &Order{Input: input}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		key := OrderKey{E: e}
		if p.atKeyword("desc") {
			p.take()
			key.Desc = true
		} else if p.atKeyword("asc") {
			p.take()
		}
		o.Keys = append(o.Keys, key)
		if p.atPunct(",") {
			p.take()
			continue
		}
		break
	}
	if _, err := p.parseParallel(); err != nil {
		return nil, err
	}
	return o, nil
}

func (p *parser) parseLimit() (Op, error) {
	p.take() // limit
	input, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if !p.at(tokNumber) {
		return nil, p.errorf("expected limit count")
	}
	n, err := strconv.ParseInt(p.take().text, 10, 64)
	if err != nil {
		return nil, p.errorf("bad limit count: %v", err)
	}
	return &Limit{Input: input, N: n}, nil
}

// Expression grammar, loosest to tightest:
//   or → and → not → comparison → additive → multiplicative → unary → primary

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("or") {
		p.take()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("and") {
		p.take()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.atKeyword("not") {
		p.take()
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return NotExpr{E: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	ops := map[string]bool{"==": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true, "=": true}
	if p.cur().kind == tokPunct && ops[p.cur().text] {
		op := p.take().text
		if op == "=" {
			op = "==" // tolerate single '=' in predicates, as the paper's QF template uses
		}
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return BinExpr{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.atPunct("+") || p.atPunct("-") {
		op := p.take().text
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.atPunct("*") || p.atPunct("/") || p.atPunct("%") {
		op := p.take().text
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.atPunct("-") {
		p.take()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Neg{E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.take()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return FloatLit{V: f}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.text)
		}
		return IntLit{V: n}, nil
	case t.kind == tokString:
		p.take()
		return StrLit{V: t.text}, nil
	case t.kind == tokDollar:
		p.take()
		idx, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, p.errorf("bad positional reference $%s", t.text)
		}
		return p.parseDots(Dollar{Idx: idx})
	case t.kind == tokPunct && t.text == "*":
		p.take()
		return Star{}, nil
	case t.kind == tokPunct && t.text == "(":
		p.take()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return p.parseDots(e)
	case t.kind == tokIdent:
		name := p.take().text
		if p.atPunct("(") {
			p.take()
			call := Call{Name: name}
			if !p.atPunct(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.atPunct(",") {
						p.take()
						continue
					}
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return p.parseDots(call)
		}
		return p.parseDots(Ident{Name: name})
	}
	return nil, p.errorf("unexpected token %s in expression", t)
}

// parseDots handles the ".field" / ".$n" suffixes of a primary.
func (p *parser) parseDots(base Expr) (Expr, error) {
	for p.atPunct(".") {
		p.take()
		switch {
		case p.at(tokIdent):
			base = Dot{Base: base, Field: p.take().text, FieldIdx: -1}
		case p.at(tokDollar):
			t := p.take()
			idx, err := strconv.Atoi(t.text)
			if err != nil {
				return nil, p.errorf("bad positional reference $%s", t.text)
			}
			base = Dot{Base: base, FieldIdx: idx}
		default:
			return nil, p.errorf("expected field after '.', found %s", p.cur())
		}
	}
	return base, nil
}
