// Package cluster simulates the execution timing of MapReduce jobs on a
// Hadoop-era cluster. The engine in internal/mapreduce executes jobs for
// real (at laptop scale) and hands per-task byte/record counts — scaled
// by the configured simulation factor — to this package, which computes
// task durations from a cost model and schedules them onto the cluster's
// map/reduce slots to obtain a job makespan, the "execution time on
// Hadoop" reported by every experiment.
//
// The default topology mirrors the paper's testbed: 14 worker nodes,
// each with 4 map slots and 2 reduce slots.
package cluster

import (
	"sort"
	"time"
)

// Topology describes the simulated cluster.
type Topology struct {
	Workers         int // worker nodes running tasks
	MapSlotsPerNode int
	RedSlotsPerNode int
}

// DefaultTopology matches the paper's cluster: 15 nodes, one dedicated
// to the JobTracker/NameNode, 14 running 4 mappers and 2 reducers each.
func DefaultTopology() Topology {
	return Topology{Workers: 14, MapSlotsPerNode: 4, RedSlotsPerNode: 2}
}

// MapSlots returns the cluster-wide map slot count.
func (t Topology) MapSlots() int { return t.Workers * t.MapSlotsPerNode }

// ReduceSlots returns the cluster-wide reduce slot count.
func (t Topology) ReduceSlots() int { return t.Workers * t.RedSlotsPerNode }

// CostModel converts task workloads into simulated durations. The
// parameters approximate mid-2000s cluster hardware (the paper's Opteron
// 275 nodes with single SCSI disks) and Hadoop 0.20 overheads.
type CostModel struct {
	// DiskReadBW is the per-task read bandwidth from local disk (B/s).
	DiskReadBW float64
	// DiskWriteBW is the per-task write bandwidth (B/s); DFS writes pay
	// it once per replica.
	DiskWriteBW float64
	// NetBW is the per-task shuffle bandwidth (B/s).
	NetBW float64
	// PerRecordCPU is the CPU cost to push one record through one
	// physical operator.
	PerRecordCPU time.Duration
	// SortCPUPerRecord is the CPU cost per record of the sort/merge on
	// both sides of the shuffle.
	SortCPUPerRecord time.Duration
	// Replication is the DFS replication factor applied to Store writes.
	Replication int
	// JobStartup is the fixed per-job cost: JobTracker scheduling, task
	// distribution, output commit.
	JobStartup time.Duration
	// TaskStartup is the fixed per-task cost (JVM spawn, heartbeat lag).
	TaskStartup time.Duration
	// StoreSetup is the fixed per-Store-operator, per-task cost of
	// creating an output file in the DFS (namenode round trips,
	// replication pipeline setup). Extra Stores injected by ReStore pay
	// this on every task that runs them.
	StoreSetup time.Duration
	// OutputCommit is the fixed per-output-directory cost of a job:
	// Hadoop 0.20's OutputCommitter promotes every store directory's
	// task files serially at the JobTracker and syncs NameNode
	// metadata, a cost that is largely independent of data volume.
	// Each extra Store injected by ReStore adds one more directory.
	OutputCommit time.Duration
}

// DefaultCostModel returns parameters calibrated so PigMix-scale jobs
// land in the paper's minutes range. Bandwidths are per task: the
// paper's nodes run 4 mappers and 2 reducers against one SCSI disk, so
// each task sees only a few MB/s.
func DefaultCostModel() CostModel {
	return CostModel{
		DiskReadBW:       5.5e6,
		DiskWriteBW:      8e6,
		NetBW:            20e6,
		PerRecordCPU:     1000 * time.Nanosecond,
		SortCPUPerRecord: 2500 * time.Nanosecond,
		Replication:      3,
		JobStartup:       10 * time.Second,
		TaskStartup:      2 * time.Second,
		StoreSetup:       2 * time.Second,
		OutputCommit:     30 * time.Second,
	}
}

// TaskWork is the simulated workload of one task.
type TaskWork struct {
	// ReadBytes from the DFS (map input) in simulated bytes.
	ReadBytes int64
	// ShuffleBytes moved over the network (map: out, reduce: in).
	ShuffleBytes int64
	// StoreBytes written to the DFS (before replication).
	StoreBytes int64
	// Records pushed through the pipeline.
	Records int64
	// PipelineOps is the number of physical operators the records pass.
	PipelineOps int
	// SortRecords is the number of records sorted (shuffle path).
	SortRecords int64
	// NumStores is how many Store operators the task runs.
	NumStores int
}

// TaskTime computes the simulated duration of one task.
func (m CostModel) TaskTime(w TaskWork) time.Duration {
	d := m.TaskStartup
	if w.ReadBytes > 0 {
		d += time.Duration(float64(w.ReadBytes) / m.DiskReadBW * float64(time.Second))
	}
	if w.ShuffleBytes > 0 {
		d += time.Duration(float64(w.ShuffleBytes) / m.NetBW * float64(time.Second))
	}
	if w.StoreBytes > 0 {
		repl := m.Replication
		if repl < 1 {
			repl = 1
		}
		d += time.Duration(float64(w.StoreBytes*int64(repl)) / m.DiskWriteBW * float64(time.Second))
	}
	ops := w.PipelineOps
	if ops < 1 {
		ops = 1
	}
	d += time.Duration(w.Records*int64(ops)) * m.PerRecordCPU
	d += time.Duration(w.SortRecords) * m.SortCPUPerRecord
	d += time.Duration(w.NumStores) * m.StoreSetup
	return d
}

// Makespan schedules task durations onto n identical slots greedily in
// task order (Hadoop's FIFO within a job) and returns the finish time of
// the last task.
func Makespan(tasks []time.Duration, slots int) time.Duration {
	if len(tasks) == 0 {
		return 0
	}
	if slots < 1 {
		slots = 1
	}
	if slots > len(tasks) {
		slots = len(tasks)
	}
	// Earliest-available-slot assignment via a small heap-free approach:
	// free[i] is the time slot i becomes free.
	free := make([]time.Duration, slots)
	var finish time.Duration
	for _, d := range tasks {
		// Find the earliest-free slot.
		best := 0
		for i := 1; i < slots; i++ {
			if free[i] < free[best] {
				best = i
			}
		}
		free[best] += d
		if free[best] > finish {
			finish = free[best]
		}
	}
	return finish
}

// JobTime combines map and reduce phases: reduces start when the map
// phase completes (ignoring Hadoop's shuffle slow-start, a conservative
// simplification), plus the fixed job startup cost and the serial
// output commit of every store directory the job writes.
func (m CostModel) JobTime(mapTasks, reduceTasks []time.Duration, numOutputs int, topo Topology) time.Duration {
	d := m.JobStartup
	d += Makespan(mapTasks, topo.MapSlots())
	d += Makespan(reduceTasks, topo.ReduceSlots())
	if numOutputs < 1 {
		numOutputs = 1
	}
	d += time.Duration(numOutputs) * m.OutputCommit
	return d
}

// CriticalPath computes workflow completion time per the paper's
// Equation 1: Ttotal(job) = ET(job) + max over dependencies of their
// Ttotal; the workflow finishes when its slowest sink does. jobTimes
// maps job ID to ET; deps maps job ID to dependency IDs.
func CriticalPath(jobTimes map[string]time.Duration, deps map[string][]string) time.Duration {
	memo := map[string]time.Duration{}
	var total func(id string) time.Duration
	total = func(id string) time.Duration {
		if v, ok := memo[id]; ok {
			return v
		}
		var maxDep time.Duration
		for _, d := range deps[id] {
			if t := total(d); t > maxDep {
				maxDep = t
			}
		}
		v := jobTimes[id] + maxDep
		memo[id] = v
		return v
	}
	ids := make([]string, 0, len(jobTimes))
	for id := range jobTimes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var finish time.Duration
	for _, id := range ids {
		if t := total(id); t > finish {
			finish = t
		}
	}
	return finish
}
