package cluster

import (
	"testing"
	"time"
)

func TestTopologySlots(t *testing.T) {
	topo := DefaultTopology()
	if topo.MapSlots() != 56 {
		t.Errorf("MapSlots = %d, want 56 (14 workers × 4)", topo.MapSlots())
	}
	if topo.ReduceSlots() != 28 {
		t.Errorf("ReduceSlots = %d, want 28 (14 workers × 2)", topo.ReduceSlots())
	}
}

func TestTaskTimeComponents(t *testing.T) {
	m := CostModel{
		DiskReadBW:       10e6,
		DiskWriteBW:      10e6,
		NetBW:            10e6,
		PerRecordCPU:     time.Microsecond,
		SortCPUPerRecord: time.Microsecond,
		Replication:      2,
		TaskStartup:      time.Second,
		StoreSetup:       time.Second,
	}
	// Pure startup.
	if got := m.TaskTime(TaskWork{}); got != time.Second {
		t.Errorf("empty task = %v, want 1s", got)
	}
	// 10 MB read at 10 MB/s = 1s + startup.
	if got := m.TaskTime(TaskWork{ReadBytes: 10e6}); got != 2*time.Second {
		t.Errorf("read task = %v, want 2s", got)
	}
	// Writes pay replication: 10 MB × 2 at 10 MB/s = 2s.
	if got := m.TaskTime(TaskWork{StoreBytes: 10e6}); got != 3*time.Second {
		t.Errorf("write task = %v, want 3s", got)
	}
	// CPU: 1M records × 2 ops × 1µs = 2s.
	if got := m.TaskTime(TaskWork{Records: 1_000_000, PipelineOps: 2}); got != 3*time.Second {
		t.Errorf("cpu task = %v, want 3s", got)
	}
	// Store setup per store op.
	if got := m.TaskTime(TaskWork{NumStores: 3}); got != 4*time.Second {
		t.Errorf("stores task = %v, want 4s", got)
	}
}

func TestMakespan(t *testing.T) {
	ts := func(secs ...int) []time.Duration {
		out := make([]time.Duration, len(secs))
		for i, s := range secs {
			out[i] = time.Duration(s) * time.Second
		}
		return out
	}
	cases := []struct {
		tasks []time.Duration
		slots int
		want  time.Duration
	}{
		{nil, 4, 0},
		{ts(5), 4, 5 * time.Second},
		{ts(5, 5, 5, 5), 4, 5 * time.Second},     // one wave
		{ts(5, 5, 5, 5, 5), 4, 10 * time.Second}, // two waves
		{ts(1, 1, 1, 9), 2, 10 * time.Second},    // greedy FIFO: 1+1 | 1+9
		{ts(3, 3, 3), 1, 9 * time.Second},        // serial
	}
	for _, c := range cases {
		if got := Makespan(c.tasks, c.slots); got != c.want {
			t.Errorf("Makespan(%v, %d) = %v, want %v", c.tasks, c.slots, got, c.want)
		}
	}
}

func TestJobTime(t *testing.T) {
	m := CostModel{JobStartup: 10 * time.Second, OutputCommit: 5 * time.Second}
	topo := Topology{Workers: 1, MapSlotsPerNode: 2, RedSlotsPerNode: 1}
	maps := []time.Duration{time.Second, time.Second}
	reds := []time.Duration{2 * time.Second}
	// 10 startup + 1 map wave + 2 reduce + 5 commit (1 output) = 18.
	if got := m.JobTime(maps, reds, 1, topo); got != 18*time.Second {
		t.Errorf("JobTime = %v, want 18s", got)
	}
	// Extra output directories pay extra commits.
	if got := m.JobTime(maps, reds, 3, topo); got != 28*time.Second {
		t.Errorf("JobTime(3 outputs) = %v, want 28s", got)
	}
}

func TestCriticalPath(t *testing.T) {
	secs := func(s int) time.Duration { return time.Duration(s) * time.Second }
	times := map[string]time.Duration{"a": secs(10), "b": secs(20), "c": secs(5)}
	deps := map[string][]string{"c": {"a", "b"}}
	// c waits for the slower of a/b: 20 + 5 = 25.
	if got := CriticalPath(times, deps); got != secs(25) {
		t.Errorf("CriticalPath = %v, want 25s", got)
	}
	// Independent jobs: the slowest wins.
	if got := CriticalPath(map[string]time.Duration{"x": secs(7), "y": secs(3)}, nil); got != secs(7) {
		t.Errorf("CriticalPath = %v, want 7s", got)
	}
	if got := CriticalPath(nil, nil); got != 0 {
		t.Errorf("empty CriticalPath = %v", got)
	}
}

func TestEquationOneShape(t *testing.T) {
	// The paper's Equation 1: removing a dependency from the critical
	// path reduces total time by exactly that dependency's contribution.
	secs := func(s int) time.Duration { return time.Duration(s) * time.Second }
	full := CriticalPath(
		map[string]time.Duration{"j1": secs(100), "j2": secs(10)},
		map[string][]string{"j2": {"j1"}},
	)
	reused := CriticalPath(
		map[string]time.Duration{"j2": secs(10)},
		map[string][]string{},
	)
	if full != secs(110) || reused != secs(10) {
		t.Errorf("Equation 1: full=%v reused=%v", full, reused)
	}
}
