package core

import (
	"fmt"

	"repro/internal/physical"
)

// Heuristic selects which physical operators' outputs the sub-job
// enumerator materializes (Section 4 of the paper).
type Heuristic int

// The enumeration policies.
const (
	// HeuristicOff stores no sub-jobs (whole-job outputs only).
	HeuristicOff Heuristic = iota
	// Conservative stores outputs of operators known to reduce their
	// input size: Project (ForEach) and Filter.
	Conservative
	// Aggressive additionally stores outputs of expensive operators:
	// Join, Group, and CoGroup.
	Aggressive
	// NoHeuristic stores the output of every physical operator.
	NoHeuristic
)

// String returns the paper's name for the heuristic.
func (h Heuristic) String() string {
	switch h {
	case HeuristicOff:
		return "off"
	case Conservative:
		return "conservative"
	case Aggressive:
		return "aggressive"
	case NoHeuristic:
		return "no-heuristic"
	}
	return fmt.Sprintf("heuristic(%d)", int(h))
}

// ParseHeuristic resolves a heuristic by name ("off", "conservative",
// "aggressive", "none"/"no-heuristic"/"all").
func ParseHeuristic(s string) (Heuristic, error) {
	switch s {
	case "off", "whole-jobs":
		return HeuristicOff, nil
	case "conservative", "hc":
		return Conservative, nil
	case "aggressive", "ha":
		return Aggressive, nil
	case "no-heuristic", "none", "all", "nh":
		return NoHeuristic, nil
	}
	return 0, fmt.Errorf("core: unknown heuristic %q", s)
}

// Candidate is one enumerated sub-job: the operator whose output gets
// materialized and the DFS path holding it. Existing marks candidates
// whose output the job already stores (the paper's "if P ... is a
// Store, the output of JP would already be stored"): they are
// registered at zero cost, without injecting anything.
type Candidate struct {
	OpID     int
	Path     string
	Existing bool
}

// Enumerator is ReStore's sub-job enumerator: it chooses operators
// according to the heuristic and injects Split+Store pairs into the
// job's plan so the operators' outputs are materialized during
// execution (Figure 8 of the paper).
type Enumerator struct {
	Heuristic Heuristic
	// PathFor names the materialization target for an operator.
	PathFor func(job *physical.Job, opID int) string
	// SkipExisting, when non-nil, suppresses injection for a sub-job
	// whose prefix plan already has a valid repository entry, avoiding
	// re-materializing stored results on reuse runs.
	SkipExisting func(prefix PlanSig) bool
}

// eligible reports whether the heuristic materializes op's output.
// GROUP ALL packages are never materialized: a single global bag the
// size of the input is not a useful reuse unit (and the paper's Table 1
// shows L8's heuristics storing only the projections).
func (en *Enumerator) eligible(plan *physical.Plan, op *physical.Op) bool {
	switch en.Heuristic {
	case HeuristicOff:
		return false
	case Conservative:
		return op.Kind == physical.KForEach || op.Kind == physical.KFilter
	case Aggressive:
		switch op.Kind {
		case physical.KForEach, physical.KFilter, physical.KJoinFlatten:
			return true
		case physical.KPackage:
			return op.Mode == physical.PkgGroup && !groupAllPackage(plan, op)
		}
		return false
	case NoHeuristic:
		switch op.Kind {
		case physical.KLoad, physical.KStore, physical.KLocalRearrange,
			physical.KShuffle, physical.KSplit:
			return false
		case physical.KPackage:
			return !groupAllPackage(plan, op)
		}
		return true
	}
	return false
}

// groupAllPackage reports whether the package receives a GROUP ALL
// rearrange.
func groupAllPackage(plan *physical.Plan, pkg *physical.Op) bool {
	for _, shID := range pkg.InputIDs {
		sh := plan.Op(shID)
		if sh == nil || sh.Kind != physical.KShuffle {
			continue
		}
		for _, lrID := range sh.InputIDs {
			if lr := plan.Op(lrID); lr != nil && lr.GroupAll {
				return true
			}
		}
	}
	return false
}

// Choose selects the sub-job materialization points of the job's
// current plan without mutating it. It returns the zero-cost Existing
// candidates (operators whose output the job already stores — the
// job's own output doubles as a stored sub-job, so whole-job outputs
// enter the repository through enumeration, as in the paper) and the
// operators whose outputs would need a Store injected. The split from
// Inject lets the driver claim each target's plan fingerprint before
// committing to materialize it: a concurrent query may already be
// materializing the same sub-job.
func (en *Enumerator) Choose(job *physical.Job) (existing []Candidate, targets []*physical.Op) {
	if en.Heuristic == HeuristicOff {
		return nil, nil
	}
	plan := job.Plan
	succ := plan.Successors()
	for _, op := range plan.Topo() {
		if !en.eligible(plan, op) {
			continue
		}
		if sp := storedPath(plan, succ, op.ID); sp != "" {
			existing = append(existing, Candidate{OpID: op.ID, Path: sp, Existing: true})
			continue
		}
		if en.SkipExisting != nil && en.SkipExisting(SigOf(plan.PrefixPlan(op.ID, "candidate"))) {
			continue
		}
		targets = append(targets, op)
	}
	return existing, targets
}

// Inject materializes the chosen targets: each gets a Split+Store pair
// spliced into the plan, and the returned candidates carry their
// materialization paths.
func (en *Enumerator) Inject(job *physical.Job, targets []*physical.Op) []Candidate {
	var out []Candidate
	for _, op := range targets {
		path := en.PathFor(job, op.ID)
		injectStore(job.Plan, op.ID, path)
		out = append(out, Candidate{OpID: op.ID, Path: path})
	}
	return out
}

// Enumerate injects materialization points into the job plan and
// returns the candidates created: Choose followed by Inject of every
// target.
func (en *Enumerator) Enumerate(job *physical.Job) []Candidate {
	existing, targets := en.Choose(job)
	return append(existing, en.Inject(job, targets)...)
}

// storedPath returns the Store destination when every consumer of op is
// a Store ("" otherwise).
func storedPath(plan *physical.Plan, succ map[int][]int, id int) string {
	ss := succ[id]
	if len(ss) == 0 {
		return ""
	}
	for _, sid := range ss {
		if plan.Op(sid).Kind != physical.KStore {
			return ""
		}
	}
	return plan.Op(ss[0]).Path
}

// injectStore tees op's output through a Split into a new Store at
// path, leaving existing consumers reading the Split (the paper's
// Figure 8 transformation).
func injectStore(plan *physical.Plan, opID int, path string) {
	succ := plan.Successors()
	split := plan.Add(&physical.Op{Kind: physical.KSplit, InputIDs: []int{opID}})
	for _, sid := range succ[opID] {
		op := plan.Op(sid)
		for i, in := range op.InputIDs {
			if in == opID {
				op.InputIDs[i] = split.ID
			}
		}
	}
	plan.Add(&physical.Op{Kind: physical.KStore, Path: path, InputIDs: []int{split.ID}})
}
