package core

import (
	"repro/internal/physical"
)

// Match implements ReStore's plan containment test (the paper's
// Algorithm 1, PairwisePlanTraversal): it decides whether the repository
// plan repo — excluding its final Store — is contained in the input
// MapReduce job plan in, and returns the mapping from repo op IDs to
// input op IDs.
//
// Match is the expensive, exact test; the repository's signature index
// (index.go) prefilters by its necessary conditions so the rewriter
// runs the traversal only on entries whose footprint is a subset of
// the job's signatures.
//
// Containment follows the paper's operator equivalence: two operators
// are equivalent when (1) their inputs are pipelined from equivalent
// operators or from the same data sets, and (2) they perform functions
// producing the same output (equal canonical signatures). Both plans are
// traversed simultaneously from their Load operators; the traversal here
// proceeds in topological order, which resolves the convergence of
// multi-input operators (Join/CoGroup/Union) deterministically: an
// operator is paired only once all of its inputs are paired, and the
// candidate's inputs must align positionally. A final verification pass
// confirms every repository operator found an equivalent.
func Match(repo, in PlanSig) (map[int]int, bool) {
	store := repo.finalStore()
	mapping := map[int]int{}
	used := map[int]bool{}

	inBySig := map[string][]int{}
	for i := range in.Ops {
		op := &in.Ops[i]
		inBySig[op.Sig] = append(inBySig[op.Sig], op.ID)
	}

	for _, id := range repo.topo() {
		rop := repo.op(id)
		if store != nil && rop.ID == store.ID {
			continue // the repo's Store materializes; it need not re-occur
		}
		// All inputs must already be mapped (topo order guarantees they
		// were attempted; if any failed, containment fails).
		wantInputs := make([]int, len(rop.Inputs))
		ready := true
		for i, rin := range rop.Inputs {
			m, ok := mapping[rin]
			if !ok {
				ready = false
				break
			}
			wantInputs[i] = m
		}
		if !ready {
			return nil, false
		}
		found := false
		for _, cid := range inBySig[rop.Sig] {
			if used[cid] {
				continue
			}
			cop := in.op(cid)
			if cop.Kind != rop.Kind || !inputsEqual(cop.Inputs, wantInputs) {
				continue
			}
			mapping[rop.ID] = cid
			used[cid] = true
			found = true
			break
		}
		if !found {
			return nil, false
		}
	}
	return mapping, verifyMapping(repo, in, mapping)
}

func inputsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// verifyMapping re-checks the containment proof: every non-Store repo op
// is mapped to a distinct input op with equal signature and positionally
// aligned, already-mapped inputs.
func verifyMapping(repo, in PlanSig, mapping map[int]int) bool {
	store := repo.finalStore()
	seen := map[int]bool{}
	for i := range repo.Ops {
		rop := &repo.Ops[i]
		if store != nil && rop.ID == store.ID {
			continue
		}
		cid, ok := mapping[rop.ID]
		if !ok {
			return false
		}
		if seen[cid] {
			return false
		}
		seen[cid] = true
		cop := in.op(cid)
		if cop == nil || cop.Sig != rop.Sig || cop.Kind != rop.Kind {
			return false
		}
		if len(cop.Inputs) != len(rop.Inputs) {
			return false
		}
		for k, rin := range rop.Inputs {
			if cop.Inputs[k] != mapping[rin] {
				return false
			}
		}
	}
	return true
}

// Contains reports whether candidate plan b is contained in plan a
// (every operator of b has an equivalent in a). Used by the repository's
// ordering Rule 1 ("plan A is preferred to plan B if A subsumes B").
func Contains(a, b PlanSig) bool {
	_, ok := Match(b, a)
	return ok
}

// MatchResult describes one successful repository match against an
// input job.
type MatchResult struct {
	Entry *Entry
	// Mapping maps repository op IDs to input plan op IDs.
	Mapping map[int]int
	// Frontier is the input-plan op whose output equals the stored
	// result (the op mapped from the entry's result op).
	Frontier int
	// WholePlan is true when the frontier feeds the input plan's main
	// Store directly, i.e. the entry covers the entire job.
	WholePlan bool
}

// matchEntry runs the containment test of one repository entry against
// an input job plan and classifies the result.
func matchEntry(e *Entry, jobPlan *physical.Plan, jobSig PlanSig, mainStoreInput int) (*MatchResult, bool) {
	plan := e.planSig() // recovered entries decode here, on first traversal
	mapping, ok := Match(plan, jobSig)
	if !ok {
		return nil, false
	}
	res := plan.resultOp()
	if res < 0 {
		return nil, false
	}
	frontier, ok := mapping[res]
	if !ok {
		return nil, false
	}
	// Rewriting a bare Load into another Load makes no progress.
	if jobPlan.Op(frontier) != nil && jobPlan.Op(frontier).Kind == physical.KLoad {
		return nil, false
	}
	return &MatchResult{
		Entry:     e,
		Mapping:   mapping,
		Frontier:  frontier,
		WholePlan: frontier == mainStoreInput,
	}, true
}
