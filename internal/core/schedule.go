package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/physical"
)

// runDAG executes every job of a workflow through process, running
// independent jobs concurrently on a bounded worker pool while
// respecting DependsOn edges: a job starts only after all of its
// dependencies have completed. This replaces the serial topological
// loop of the pre-concurrent driver; the paper's Equation 1 already
// models workflow completion as the critical path over the job DAG, so
// executing the DAG width-first leaves the simulated time accounting
// unchanged while cutting real wall time to roughly
// serial/min(width, workers).
//
// Cancelling ctx stops the workflow promptly: jobs that have not
// started never run, in-flight jobs are aborted at the engine's next
// task-slot acquisition, and runDAG returns ctx.Err(). admission, when
// non-nil, is a cross-workflow semaphore: each job holds one slot for
// exactly the duration of its process call, capping the total number of
// jobs running across every concurrent query (slots are never held
// across dependency waits, so the cap cannot deadlock the DAG).
//
// The first process error cancels jobs not yet started (in-flight jobs
// finish) and is returned. Dependencies on IDs outside jobs are treated
// as already satisfied, matching the serial driver's behaviour for
// workflows whose producers were dropped by whole-job reuse.
func runDAG(ctx context.Context, jobs []*physical.Job, workers int, admission chan struct{}, process func(*physical.Job) error) error {
	if len(jobs) == 0 {
		return ctx.Err()
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	inSet := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		inSet[j.ID] = true
	}
	// Snapshot the dependency edges up front: process may legitimately
	// mutate DependsOn slices (whole-job reuse removes producers), and
	// the scheduler must not race with that.
	indeg := make(map[string]int, len(jobs))
	dependants := make(map[string][]*physical.Job, len(jobs))
	for _, j := range jobs {
		for _, dep := range j.DependsOn {
			if !inSet[dep] {
				continue
			}
			indeg[j.ID]++
			dependants[dep] = append(dependants[dep], j)
		}
	}

	// Cycle guard: TopoJobs rejects cyclic workflows before scheduling,
	// but a cycle reaching this point would leave workers blocked forever
	// on an open empty channel, so verify completability up front.
	{
		deg := make(map[string]int, len(indeg))
		for id, n := range indeg {
			deg[id] = n
		}
		var q []*physical.Job
		for _, j := range jobs {
			if deg[j.ID] == 0 {
				q = append(q, j)
			}
		}
		reach := 0
		for len(q) > 0 {
			j := q[0]
			q = q[1:]
			reach++
			for _, dep := range dependants[j.ID] {
				deg[dep.ID]--
				if deg[dep.ID] == 0 {
					q = append(q, dep)
				}
			}
		}
		if reach != len(jobs) {
			return fmt.Errorf("core: workflow dependency cycle: %d of %d jobs unreachable", len(jobs)-reach, len(jobs))
		}
	}

	ready := make(chan *physical.Job, len(jobs))
	var (
		mu       sync.Mutex
		firstErr error
		pending  = len(jobs)
		closed   bool
	)
	finish := func() { // mu held
		if !closed {
			closed = true
			close(ready)
		}
	}
	fail := func(err error) { // takes mu
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		finish()
		mu.Unlock()
	}
	for _, j := range jobs {
		if indeg[j.ID] == 0 {
			ready <- j
		}
	}

	// The cancellation monitor wakes workers blocked on the ready
	// channel or the admission semaphore when ctx fires; stop releases
	// it once the DAG drains.
	stop := make(chan struct{})
	defer close(stop)
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				fail(ctx.Err())
			case <-stop:
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range ready {
				mu.Lock()
				bail := firstErr != nil
				mu.Unlock()
				// The direct ctx check makes cancellation synchronous
				// with the caller: once cancel() returns, no further job
				// starts, even if the monitor goroutine has not yet run.
				if bail || ctx.Err() != nil {
					continue // drain jobs queued before the failure
				}
				if admission != nil {
					select {
					case admission <- struct{}{}:
					case <-ctx.Done():
						fail(ctx.Err())
						continue
					}
				}
				err := process(job)
				if admission != nil {
					<-admission
				}
				if err != nil {
					fail(err)
					continue
				}
				mu.Lock()
				pending--
				if pending == 0 {
					finish()
				} else if firstErr == nil {
					for _, dep := range dependants[job.ID] {
						indeg[dep.ID]--
						if indeg[dep.ID] == 0 {
							ready <- dep
						}
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	// The cancellation monitor may still be writing firstErr (it is
	// stopped only by the deferred close); read under the lock.
	mu.Lock()
	defer mu.Unlock()
	return firstErr
}
