package core

import (
	"fmt"
	"testing"

	"repro/internal/physical"
)

func jobFor(t *testing.T, src string) *physical.Job {
	t.Helper()
	wf := compileJobs(t, src, "tmp/en")
	jobs, err := wf.TopoJobs()
	if err != nil {
		t.Fatal(err)
	}
	return jobs[0]
}

func enumerate(t *testing.T, h Heuristic, job *physical.Job) []Candidate {
	t.Helper()
	en := &Enumerator{
		Heuristic: h,
		PathFor: func(j *physical.Job, opID int) string {
			return fmt.Sprintf("cand/%s/op%d", j.ID, opID)
		},
	}
	return en.Enumerate(job)
}

func countInjected(cands []Candidate) int {
	n := 0
	for _, c := range cands {
		if !c.Existing {
			n++
		}
	}
	return n
}

func TestEnumerateOff(t *testing.T) {
	job := jobFor(t, q1)
	if got := enumerate(t, HeuristicOff, job); got != nil {
		t.Errorf("off enumerated %v", got)
	}
}

func TestEnumerateConservativeInjectsProjections(t *testing.T) {
	job := jobFor(t, q1)
	cands := enumerate(t, Conservative, job)
	// Two ForEach projections feed the join: both injected.
	if got := countInjected(cands); got != 2 {
		t.Fatalf("injected = %d, want 2 (the projections): %+v", got, cands)
	}
	// The plan now contains Split and side Store ops.
	splits, stores := 0, 0
	for _, op := range job.Plan.Ops() {
		switch op.Kind {
		case physical.KSplit:
			splits++
		case physical.KStore:
			stores++
		}
	}
	if splits != 2 || stores != 3 { // main store + 2 side stores
		t.Errorf("splits=%d stores=%d", splits, stores)
	}
	if err := job.Plan.Validate(); err != nil {
		t.Fatalf("plan invalid after injection: %v", err)
	}
}

func TestEnumerateAggressiveAddsPackageAndExistingJoin(t *testing.T) {
	job := jobFor(t, q1)
	cands := enumerate(t, Aggressive, job)
	// Injected: 2 projections + the join Package. Existing: the
	// JoinFlatten output (it feeds the job's own Store).
	if got := countInjected(cands); got != 3 {
		t.Errorf("injected = %d, want 3: %+v", got, cands)
	}
	existing := 0
	for _, c := range cands {
		if c.Existing {
			existing++
			if c.Path != job.OutputPath {
				t.Errorf("existing candidate path = %q, want job output %q", c.Path, job.OutputPath)
			}
		}
	}
	if existing != 1 {
		t.Errorf("existing = %d, want 1 (the join output)", existing)
	}
}

func TestEnumerateSkipsGroupAll(t *testing.T) {
	src := `
A = load 'x' as (a, b);
G = group A all;
S = foreach G generate COUNT(A), SUM(A.b);
store S into 'o';
`
	for _, h := range []Heuristic{Aggressive, NoHeuristic} {
		job := jobFor(t, src)
		var pkgID int
		for _, op := range job.Plan.Ops() {
			if op.Kind == physical.KPackage {
				pkgID = op.ID
			}
		}
		for _, c := range enumerate(t, h, job) {
			if c.OpID == pkgID {
				t.Errorf("%v materialized the GROUP ALL package", h)
			}
		}
	}
}

func TestEnumerateSkipExisting(t *testing.T) {
	job := jobFor(t, q1)
	en := &Enumerator{
		Heuristic: Conservative,
		PathFor:   func(j *physical.Job, opID int) string { return "x" },
		SkipExisting: func(prefix PlanSig) bool {
			return true // everything already stored
		},
	}
	cands := en.Enumerate(job)
	if got := countInjected(cands); got != 0 {
		t.Errorf("injected %d candidates despite SkipExisting", got)
	}
}

func TestParseHeuristic(t *testing.T) {
	cases := map[string]Heuristic{
		"off": HeuristicOff, "conservative": Conservative, "hc": Conservative,
		"aggressive": Aggressive, "ha": Aggressive,
		"none": NoHeuristic, "all": NoHeuristic, "nh": NoHeuristic,
	}
	for s, want := range cases {
		got, err := ParseHeuristic(s)
		if err != nil || got != want {
			t.Errorf("ParseHeuristic(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseHeuristic("bogus"); err == nil {
		t.Errorf("bogus heuristic should error")
	}
}

func TestInjectedPlanStillExecutable(t *testing.T) {
	// After injection the plan must still validate and the injected
	// stores must be reachable from the Split.
	job := jobFor(t, `
A = load 'x' as (a, b, c);
B = foreach A generate a, b;
F = filter B by b > 1;
G = group F by a;
S = foreach G generate group, COUNT(F);
store S into 'o';
`)
	cands := enumerate(t, Aggressive, job)
	if countInjected(cands) == 0 {
		t.Fatal("nothing injected")
	}
	if err := job.Plan.Validate(); err != nil {
		t.Fatalf("invalid plan: %v", err)
	}
	// Every injected path has a Store op.
	paths := map[string]bool{}
	for _, op := range job.Plan.Ops() {
		if op.Kind == physical.KStore {
			paths[op.Path] = true
		}
	}
	for _, c := range cands {
		if !paths[c.Path] {
			t.Errorf("candidate %q has no Store op", c.Path)
		}
	}
}
