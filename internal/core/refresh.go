package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/dfs"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/physical"
)

// Incremental maintenance of stored entries. When the matcher's best
// candidate is an entry whose inputs merely grew by appended part files
// (dfs.Classify) and whose producing plan is mergeable
// (physical.AnalyzeMerge), the driver refreshes the entry instead of
// letting the probing job recompute cold: it runs the entry's sub-plan
// over only the appended slice, merges that delta with the stored
// output, and re-registers the entry at the new input versions. The
// probing job then reuses the refreshed output exactly as it would a
// valid match — O(delta) bytes read instead of O(full input).

// DeltaStats is a point-in-time snapshot of the driver's incremental
// maintenance counters.
type DeltaStats struct {
	// Refreshes counts entries successfully delta-refreshed; Failed
	// counts refresh attempts that fell back to the cold path (the
	// delta or merge job failed, the stored output moved mid-refresh,
	// or another query claimed the refresh first).
	Refreshes int64 `json:"refreshes"`
	Failed    int64 `json:"failed"`
	// DeltaBytesRead totals the appended input bytes the delta jobs
	// read; ColdBytesAvoided totals the input bytes a cold recompute of
	// each refreshed entry would have read instead, minus the delta —
	// the I/O the refreshes saved.
	DeltaBytesRead   int64 `json:"deltaBytesRead"`
	ColdBytesAvoided int64 `json:"coldBytesAvoided"`
}

// deltaCounters holds the driver's incremental-maintenance counters;
// a separate struct keeps the Driver declaration readable.
type deltaCounters struct {
	refreshes        atomic.Int64
	failed           atomic.Int64
	deltaBytesRead   atomic.Int64
	coldBytesAvoided atomic.Int64
	seq              atomic.Int64 // uniquifies refresh output paths
}

// DeltaStats snapshots the driver's incremental maintenance counters.
func (d *Driver) DeltaStats() DeltaStats {
	return DeltaStats{
		Refreshes:        d.delta.refreshes.Load(),
		Failed:           d.delta.failed.Load(),
		DeltaBytesRead:   d.delta.deltaBytesRead.Load(),
		ColdBytesAvoided: d.delta.coldBytesAvoided.Load(),
	}
}

// stampMergeable classifies the entry's producing plan for incremental
// maintenance and, when mergeable, records each input's inventory
// snapshot as the future delta base. InputVersions are re-derived from
// the snapshots so the validity check and the growth classifier always
// compare against the same observation.
func stampMergeable(fs dfs.Backend, e *Entry, plan *physical.Plan) {
	spec := physical.AnalyzeMerge(plan)
	if spec == nil {
		return
	}
	bases := make(map[string]dfs.Snapshot, len(e.InputVersions))
	for p := range e.InputVersions {
		s := dfs.TakeSnapshot(fs, p)
		bases[p] = s
		e.InputVersions[p] = s.Version
	}
	e.Merge = spec
	e.InputBases = bases
}

// refreshEntry is the driver's Refresher: it runs the delta sub-plan
// over the appended input slices, merges the result with the entry's
// stored output, and re-registers the entry at the grown input
// versions. It returns the refreshed entry — nil when the refresh
// failed or was lost to a concurrent query (the caller then falls back
// to the cold path) — and the simulated time the refresh jobs
// consumed, which the probing query's SimTime must absorb: the delta
// and merge work happens on its critical path.
//
// The refresh claims the entry's plan fingerprint when the claim
// protocol is on, so two queries probing the same stale entry never run
// the same delta twice; the loser goes cold (its own materialization
// heuristics may still store a fresh copy, which replaces the entry
// just like the refresh would).
func (d *Driver) refreshEntry(ctx context.Context, eng *mapreduce.Engine, repo *Repository, store *StorageManager, opts Options, queryID string, cand RefreshCandidate, tr *obs.Trace, span obs.SpanID) (*Entry, time.Duration) {
	e := cand.Match.Entry
	fs := eng.FS()
	if tr != nil {
		tr.Event(span, obs.KindRefreshClassify, e.ID,
			fmt.Sprintf("%d input(s) grew by pure append", len(cand.Growth)))
	}

	var spent time.Duration
	var claim *Claim
	if store != nil && !opts.DisableClaims {
		c, won := store.TryClaim(e.fingerprint(), queryID)
		if !won {
			d.delta.failed.Add(1)
			return nil, 0
		}
		claim = c
	}
	fail := func() *Entry {
		if claim != nil {
			store.Abort(claim)
		}
		d.delta.failed.Add(1)
		return nil
	}

	base := fmt.Sprintf("%s/refresh/%s-r%d", d.namespace("restore", queryID), e.ID, d.delta.seq.Add(1))
	deltaPath := base + "/delta"
	mergedPath := base + "/out"

	// The delta plan is the probing job's prefix up to the matched
	// frontier — the entry stores only a signature DAG, but containment
	// guarantees the frontier's ancestor cone in the job computes the
	// same result — with every Load restricted to the appended part
	// files of its dataset (unchanged inputs contribute no delta rows).
	dp := cand.Job.Plan.PrefixPlan(cand.Match.Frontier, deltaPath)
	var deltaBytes int64
	for _, op := range dp.Ops() {
		if op.Kind != physical.KLoad {
			continue
		}
		if g, ok := cand.Growth[op.Path]; ok {
			op.Files = g.NewPaths()
		} else {
			op.Files = []string{}
		}
	}
	for _, g := range cand.Growth {
		deltaBytes += g.NewBytes
	}

	djob := &physical.Job{
		ID:          fmt.Sprintf("refresh-%s-delta", e.ID),
		Plan:        dp,
		OutputPath:  deltaPath,
		NumReducers: cand.Job.NumReducers,
	}
	deltaSpan := tr.Start(span, obs.KindRefreshDelta, djob.ID)
	dstats, err := eng.RunContextOpts(ctx, djob, mapreduce.RunOptions{DisableBatchCache: opts.DisableBatchCache})
	tr.End(deltaSpan)
	if err != nil {
		_ = fs.Delete(deltaPath)
		return fail(), spent
	}
	tr.Sim(deltaSpan, dstats.SimTime)
	tr.Bytes(deltaSpan, deltaBytes, dstats.OutputSimBytes)
	spent += dstats.SimTime

	mjob := &physical.Job{
		ID:          fmt.Sprintf("refresh-%s-merge", e.ID),
		Plan:        physical.BuildMergePlan(e.Merge, e.OutputPath, deltaPath, mergedPath),
		OutputPath:  mergedPath,
		NumReducers: cand.Job.NumReducers,
	}
	mergeSpan := tr.Start(span, obs.KindRefreshMerge, mjob.ID)
	mstats, err := eng.RunContextOpts(ctx, mjob, mapreduce.RunOptions{DisableBatchCache: opts.DisableBatchCache})
	tr.End(mergeSpan)
	_ = fs.Delete(deltaPath)
	if err != nil {
		_ = fs.Delete(mergedPath)
		return fail(), spent
	}
	tr.Sim(mergeSpan, mstats.SimTime)
	tr.Bytes(mergeSpan, dstats.OutputSimBytes+e.Stats.OutputSimBytes, mstats.OutputSimBytes)
	spent += mstats.SimTime
	// The merge read the stored output unlocked; if a concurrent writer
	// replaced it mid-merge, the merged result mixes versions. The
	// entry is pinned (no vacuum) but the dataset itself is not sealed.
	if fs.Version(e.OutputPath) != e.OutputVersion {
		_ = fs.Delete(mergedPath)
		return fail(), spent
	}

	// Re-register at the grown input versions. The recorded base for a
	// grown input is base ∪ the files this refresh consumed — not a
	// fresh observation, which could already include appends the delta
	// never read. Replacement preserves the entry's identity, so the
	// pin taken at match time now protects the refreshed entry.
	ne := &Entry{
		Plan:       e.Plan,
		OutputPath: mergedPath,
		WholeJob:   e.WholeJob,
		Stats: EntryStats{
			// Approximate grown-recompute costs: a cold run would read
			// the base and the delta and take at least the original job
			// plus the delta job.
			InputSimBytes:  e.Stats.InputSimBytes + dstats.InputSimBytes,
			OutputSimBytes: mstats.OutputSimBytes,
			AvgMapTime:     e.Stats.AvgMapTime,
			AvgRedTime:     e.Stats.AvgRedTime,
			JobSimTime:     e.Stats.JobSimTime + dstats.SimTime,
		},
		InputVersions: make(map[string]int64, len(e.InputVersions)),
		OutputVersion: fs.Version(mergedPath),
		InputBases:    make(map[string]dfs.Snapshot, len(e.InputBases)),
		Merge:         e.Merge,
		StoredAt:      d.Now(),
	}
	var coldBytes int64
	for p, v := range e.InputVersions {
		if g, ok := cand.Growth[p]; ok {
			ne.InputVersions[p] = g.Version
			ne.InputBases[p] = g.Grown(e.InputBases[p])
		} else {
			ne.InputVersions[p] = v
			ne.InputBases[p] = e.InputBases[p]
		}
		coldBytes += ne.InputBases[p].Bytes
	}
	ins := repo.Insert(ne)
	if claim != nil {
		store.Commit(claim, ins)
	}
	d.delta.refreshes.Add(1)
	d.delta.deltaBytesRead.Add(deltaBytes)
	d.delta.coldBytesAvoided.Add(coldBytes - deltaBytes)
	return ins, spent
}
