package core

import (
	"strings"
	"testing"

	"repro/internal/logical"
	"repro/internal/mrcompile"
	"repro/internal/physical"
	"repro/internal/piglatin"
)

// compileJobs compiles a script to a workflow for matcher tests.
func compileJobs(t *testing.T, src, tempPrefix string) *physical.Workflow {
	t.Helper()
	script, err := piglatin.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	lp, err := logical.Build(script)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	wf, err := mrcompile.Compile(lp, mrcompile.Options{TempPrefix: tempPrefix, DefaultReducers: 2})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return wf
}

func firstJobSig(t *testing.T, src string) PlanSig {
	t.Helper()
	wf := compileJobs(t, src, "tmp/m")
	return SigOf(wf.Jobs[0].Plan)
}

const q1 = `
A = load 'page_views' as (user, timestamp, est_revenue, page_info, page_links);
B = foreach A generate user, est_revenue;
alpha = load 'users' as (name, phone, address, city);
beta = foreach alpha generate name;
C = join beta by name, B by user;
store C into 'q1_out';
`

// q2 extends q1's computation with grouping and aggregation (the paper's
// running example): q1's job plan is contained in q2's first job.
const q2 = `
A = load 'page_views' as (user, timestamp, est_revenue, page_info, page_links);
B = foreach A generate user, est_revenue;
alpha = load 'users' as (name, phone, address, city);
beta = foreach alpha generate name;
C = join beta by name, B by user;
D = group C by $0;
E = foreach D generate group, SUM(C.est_revenue);
store E into 'q2_out';
`

func TestMatchPlanContainsItself(t *testing.T) {
	sig := firstJobSig(t, q1)
	mapping, ok := Match(sig, sig)
	if !ok {
		t.Fatal("plan must match itself")
	}
	// Identity mapping except the Store (excluded from matching).
	for rid, iid := range mapping {
		if rid != iid {
			t.Errorf("self-match mapped %d -> %d", rid, iid)
		}
	}
}

func TestMatchQ1ContainedInQ2FirstJob(t *testing.T) {
	q1sig := firstJobSig(t, q1)
	wf2 := compileJobs(t, q2, "tmp/m2")
	jobs, _ := wf2.TopoJobs()
	q2sig := SigOf(jobs[0].Plan)

	mapping, ok := Match(q1sig, q2sig)
	if !ok {
		t.Fatalf("q1 job should be contained in q2's first job\nq1:\n%v\nq2:\n%v", q1sig, q2sig)
	}
	// The frontier must be q2's JoinFlatten.
	frontier := mapping[q1sig.resultOp()]
	fop := q2sig.op(frontier)
	if fop.Kind != physical.KJoinFlatten {
		t.Errorf("frontier = %v, want JoinFlatten", fop.Kind)
	}
	// The reverse must NOT hold: q2's first job is not contained in q1's
	// (q2's job equals q1's plus nothing; they are actually equivalent
	// up to the store) — both jobs compute the same join, so mutual
	// containment is expected here.
	if _, ok := Match(q2sig, q1sig); !ok {
		t.Errorf("the join jobs are structurally identical; reverse containment should hold")
	}
}

func TestMatchQ2SecondJobNotInQ1(t *testing.T) {
	wf2 := compileJobs(t, q2, "tmp/m3")
	jobs, _ := wf2.TopoJobs()
	groupJob := SigOf(jobs[1].Plan)
	q1sig := firstJobSig(t, q1)
	if _, ok := Match(groupJob, q1sig); ok {
		t.Errorf("the group job must not match the join job")
	}
}

func TestMatchDifferentDatasetsDoNotMatch(t *testing.T) {
	a := firstJobSig(t, `
A = load 'x' as (a, b);
B = foreach A generate a;
store B into 'o';
`)
	b := firstJobSig(t, `
A = load 'y' as (a, b);
B = foreach A generate a;
store B into 'o';
`)
	if _, ok := Match(a, b); ok {
		t.Errorf("plans over different datasets must not match")
	}
}

func TestMatchDifferentProjectionsDoNotMatch(t *testing.T) {
	a := firstJobSig(t, `
A = load 'x' as (a, b);
B = foreach A generate a;
store B into 'o';
`)
	b := firstJobSig(t, `
A = load 'x' as (a, b);
B = foreach A generate b;
store B into 'o';
`)
	if _, ok := Match(a, b); ok {
		t.Errorf("different projections must not match")
	}
}

func TestMatchPrefixContained(t *testing.T) {
	prefix := firstJobSig(t, `
A = load 'x' as (a, b, c);
B = foreach A generate a, b;
store B into 'o';
`)
	full := firstJobSig(t, `
A = load 'x' as (a, b, c);
B = foreach A generate a, b;
C = filter B by b > 10;
store C into 'o2';
`)
	mapping, ok := Match(prefix, full)
	if !ok {
		t.Fatal("projection prefix should be contained")
	}
	f := full.op(mapping[prefix.resultOp()])
	if f.Kind != physical.KForEach {
		t.Errorf("frontier = %v", f.Kind)
	}
	// Reverse: the longer plan is not contained in the prefix.
	if _, ok := Match(full, prefix); ok {
		t.Errorf("longer plan must not be contained in its prefix")
	}
}

func TestMatchFilterConditionMatters(t *testing.T) {
	a := firstJobSig(t, `
A = load 'x' as (a, b);
B = filter A by b > 10;
store B into 'o';
`)
	b := firstJobSig(t, `
A = load 'x' as (a, b);
B = filter A by b > 20;
store B into 'o';
`)
	if _, ok := Match(a, b); ok {
		t.Errorf("filters with different predicates must not match")
	}
}

func TestMatchJoinBranchOrderMatters(t *testing.T) {
	// Same datasets joined with swapped branch order produce different
	// output column order — they must not match.
	a := firstJobSig(t, `
A = load 'x' as (k, v);
B = load 'y' as (k2, w);
J = join A by k, B by k2;
store J into 'o';
`)
	b := firstJobSig(t, `
A = load 'x' as (k, v);
B = load 'y' as (k2, w);
J = join B by k2, A by k;
store J into 'o';
`)
	if _, ok := Match(a, b); ok {
		t.Errorf("joins with swapped branches must not match")
	}
}

func TestMatchGroupVsCoGroupKeysDiffer(t *testing.T) {
	a := firstJobSig(t, `
A = load 'x' as (k, v);
G = group A by k;
S = foreach G generate group, COUNT(A);
store S into 'o';
`)
	b := firstJobSig(t, `
A = load 'x' as (k, v);
G = group A by v;
S = foreach G generate group, COUNT(A);
store S into 'o';
`)
	if _, ok := Match(a, b); ok {
		t.Errorf("groups on different keys must not match")
	}
}

func TestMatchUnionContainment(t *testing.T) {
	u := firstJobSig(t, `
A = load 'x' as (a);
B = load 'y' as (a);
C = union A, B;
D = distinct C;
store D into 'o';
`)
	mapping, ok := Match(u, u)
	if !ok || len(mapping) == 0 {
		t.Fatalf("union plan must self-match")
	}
}

func TestContainsIsReflexiveAndDetectsSubsumption(t *testing.T) {
	small := firstJobSig(t, `
A = load 'pv' as (u, r);
B = foreach A generate u;
store B into 'o';
`)
	big := firstJobSig(t, `
A = load 'pv' as (u, r);
B = foreach A generate u;
C = distinct B;
store C into 'o2';
`)
	if !Contains(small, small) {
		t.Errorf("Contains must be reflexive")
	}
	if !Contains(big, small) {
		t.Errorf("big should subsume small")
	}
	if Contains(small, big) {
		t.Errorf("small must not subsume big")
	}
}

func TestMatchStorePathIrrelevant(t *testing.T) {
	a := firstJobSig(t, `
A = load 'x' as (a, b);
B = filter A by b > 1;
store B into 'somewhere';
`)
	b := firstJobSig(t, `
A = load 'x' as (a, b);
B = filter A by b > 1;
store B into 'elsewhere';
`)
	if _, ok := Match(a, b); !ok {
		t.Errorf("store destination must not affect matching")
	}
}

func TestFingerprintStableAndDistinct(t *testing.T) {
	a1 := firstJobSig(t, q1)
	a2 := firstJobSig(t, q1)
	if a1.Fingerprint() != a2.Fingerprint() {
		t.Errorf("fingerprints of identical compilations differ")
	}
	// q2's FIRST job is the same join as q1's job, so fingerprints must
	// collide there (that collision is what dedups repository entries);
	// its SECOND job is different and must not collide.
	wf2 := compileJobs(t, q2, "tmp/fp")
	jobs, _ := wf2.TopoJobs()
	j0 := SigOf(jobs[0].Plan)
	j1 := SigOf(jobs[1].Plan)
	if a1.Fingerprint() != j0.Fingerprint() {
		t.Errorf("identical join jobs should share a fingerprint")
	}
	if a1.Fingerprint() == j1.Fingerprint() {
		t.Errorf("different plans share a fingerprint")
	}
	if !strings.Contains(a1.Fingerprint(), "load(page_views)") {
		t.Errorf("fingerprint should mention load paths: %s", a1.Fingerprint())
	}
}

func TestSigLoadPaths(t *testing.T) {
	sig := firstJobSig(t, q1)
	paths := sig.loadPaths()
	if len(paths) != 2 || paths[0] != "page_views" || paths[1] != "users" {
		t.Errorf("loadPaths = %v", paths)
	}
}
