package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dfs"
	"repro/internal/physical"
)

// indexCorpus is a diverse entry corpus for differential tests: shared
// and disjoint load paths, subsuming pairs (Rule 1 ordering), joins,
// groups, and filter variants.
var indexCorpus = []string{
	`
A = load 'page_views' as (user, timestamp, est_revenue, page_info, page_links);
B = foreach A generate user, est_revenue;
store B into 'o';
`,
	`
A = load 'page_views' as (user, timestamp, est_revenue, page_info, page_links);
B = foreach A generate user, est_revenue;
C = distinct B;
store C into 'o';
`,
	q1,
	`
A = load 'users' as (name, phone, address, city);
B = foreach A generate name;
store B into 'o';
`,
	`
A = load 'x' as (a, b, c);
B = filter A by b > 10;
store B into 'o';
`,
	`
A = load 'x' as (a, b, c);
B = filter A by b > 20;
store B into 'o';
`,
	`
A = load 'x' as (a, b, c);
B = foreach A generate a, b;
store B into 'o';
`,
	`
A = load 'y' as (k, v);
G = group A by k;
S = foreach G generate group, COUNT(A);
store S into 'o';
`,
}

// indexProbes are jobs probing the corpus: prefix hits, whole-plan
// hits, multi-entry hits (both join branches), and misses.
var indexProbes = []string{
	q2,
	q1,
	`
A = load 'x' as (a, b, c);
B = filter A by b > 10;
G = group B by a;
S = foreach G generate group, COUNT(B);
store S into 'o2';
`,
	`
A = load 'x' as (a, b, c);
B = foreach A generate a, b;
C = filter B by b > 5;
store C into 'o3';
`,
	`
A = load 'elsewhere' as (a, b);
B = filter A by b > 10;
store B into 'o4';
`,
	`
A = load 'y' as (k, v);
G = group A by k;
S = foreach G generate group, COUNT(A);
T = filter S by $1 > 2;
store T into 'o5';
`,
}

// buildIndexCorpusRepo registers the corpus with valid outputs/inputs.
func buildIndexCorpusRepo(t *testing.T, fs *dfs.FS) *Repository {
	t.Helper()
	repo := NewRepository()
	for i, src := range indexCorpus {
		sig := firstJobSig(t, src)
		out := fmt.Sprintf("stored/c%d", i)
		if err := fs.WriteFile(out+"/part-00000", []byte("x\t1\t2\n")); err != nil {
			t.Fatal(err)
		}
		e := &Entry{
			Plan:       sig,
			OutputPath: out,
			Stats:      EntryStats{InputSimBytes: int64(100 + 10*i), OutputSimBytes: int64(10 + i)},
		}
		repo.Insert(e)
	}
	// Inputs may not exist; record whatever version the FS reports so
	// every entry is Valid.
	for _, e := range repo.Entries() {
		vs := map[string]int64{}
		for _, p := range e.Plan.loadPaths() {
			vs[p] = fs.Version(p)
		}
		e.InputVersions = vs
	}
	return repo
}

func cloneJob(j *physical.Job) *physical.Job {
	c := j.Clone()
	return c
}

// eventKey flattens a rewrite event for comparison (the unexported
// entry pointer differs by design; identity is the entry ID + path).
func eventKey(ev RewriteEvent) string {
	return fmt.Sprintf("%s:%s:%s:%v:%d:%d", ev.JobID, ev.EntryID, ev.Path, ev.WholeJob, ev.OpsBefore, ev.OpsAfter)
}

// TestIndexedMatchesScan is the differential suite's core: over the
// corpus repository, every probe job must produce byte-identical
// rewrites — same entries, in the same order, yielding the same final
// plan — whether matched by the sequential scan or the signature index,
// for both allowWhole settings.
func TestIndexedMatchesScan(t *testing.T) {
	fs := dfs.New()
	repo := buildIndexCorpusRepo(t, fs)
	for pi, src := range indexProbes {
		for _, allowWhole := range []bool{false, true} {
			wf := compileJobs(t, src, fmt.Sprintf("tmp/ix%d", pi))
			for ji := range wf.Jobs {
				jobScan := cloneJob(wf.Jobs[ji])
				jobIdx := cloneJob(wf.Jobs[ji])

				scanRW := &Rewriter{Repo: repo, FS: fs, LinearScan: true}
				idxRW := &Rewriter{Repo: repo, FS: fs}
				evScan := scanRW.RewriteJob(jobScan, allowWhole)
				evIdx := idxRW.RewriteJob(jobIdx, allowWhole)
				for _, ev := range evScan {
					repo.Unpin(ev.EntryID)
				}
				for _, ev := range evIdx {
					repo.Unpin(ev.EntryID)
				}

				if len(evScan) != len(evIdx) {
					t.Fatalf("probe %d job %d allowWhole=%v: scan %d rewrites, indexed %d",
						pi, ji, allowWhole, len(evScan), len(evIdx))
				}
				for k := range evScan {
					if eventKey(evScan[k]) != eventKey(evIdx[k]) {
						t.Fatalf("probe %d job %d allowWhole=%v rewrite %d differs:\nscan  %s\nindex %s",
							pi, ji, allowWhole, k, eventKey(evScan[k]), eventKey(evIdx[k]))
					}
				}
				sigScan, sigIdx := SigOf(jobScan.Plan), SigOf(jobIdx.Plan)
				if sigScan.Fingerprint() != sigIdx.Fingerprint() {
					t.Fatalf("probe %d job %d allowWhole=%v: rewritten plans differ:\nscan:\n%s\nindexed:\n%s",
						pi, ji, allowWhole, jobScan.Plan, jobIdx.Plan)
				}
			}
		}
	}
	st := repo.MatcherStats()
	if st.Probes == 0 || st.Scans == 0 {
		t.Fatalf("both modes must have run: %+v", st)
	}
	if st.Candidates > st.ScanVisited {
		t.Errorf("index nominated more candidates (%d) than the scan visited (%d)", st.Candidates, st.ScanVisited)
	}
}

// TestProbeNominatesEveryMatch checks the index filter is lossless: any
// entry whose full containment test succeeds against a probe job must
// appear among the probe's candidates.
func TestProbeNominatesEveryMatch(t *testing.T) {
	fs := dfs.New()
	repo := buildIndexCorpusRepo(t, fs)
	for pi, src := range indexProbes {
		wf := compileJobs(t, src, fmt.Sprintf("tmp/nom%d", pi))
		for _, job := range wf.Jobs {
			jobSig := SigOf(job.Plan)
			nominated := map[string]bool{}
			repo.Probe(jobSig, func(e *Entry) bool {
				nominated[e.ID] = true
				return true
			})
			repo.Scan(func(e *Entry) bool {
				if _, ok := matchEntry(e, job.Plan, jobSig, -1); ok && !nominated[e.ID] {
					t.Errorf("probe %d: entry %s matches but was not nominated", pi, e.ID)
				}
				return true
			})
		}
	}
}

// TestInsertReplacementReindexes checks a fingerprint replacement swaps
// the index to the fresh entry value: probes must serve the replacement
// (new stats, new output), never the stale pointer.
func TestInsertReplacementReindexes(t *testing.T) {
	fs := dfs.New()
	repo := NewRepository()
	src := `
A = load 'x' as (a, b, c);
B = foreach A generate a, b;
store B into 'o';
`
	sig := firstJobSig(t, src)
	mk := func(out string) *Entry {
		if err := fs.WriteFile(out+"/part-00000", []byte("1\t2\n")); err != nil {
			t.Fatal(err)
		}
		return &Entry{Plan: sig, OutputPath: out,
			InputVersions: map[string]int64{"x": fs.Version("x")},
			Stats:         EntryStats{InputSimBytes: 100, OutputSimBytes: 10}}
	}
	old := repo.Insert(mk("stored/v1"))
	repl := repo.Insert(mk("stored/v2"))
	if repl == old {
		t.Fatal("replacement returned the old pointer")
	}

	probe := compileJobs(t, `
A = load 'x' as (a, b, c);
B = foreach A generate a, b;
C = filter B by b > 1;
store C into 'f';
`, "tmp/repl").Jobs[0]
	var got *Entry
	repo.Probe(SigOf(probe.Plan), func(e *Entry) bool {
		got = e
		return false
	})
	if got != repl {
		t.Fatalf("probe served %+v, want the replacement %+v", got, repl)
	}
	if st := repo.MatcherStats(); st.IndexEntries != 1 {
		t.Errorf("index entries = %d after replacement, want 1", st.IndexEntries)
	}
}

// TestNegativeMemoScopedToEntryVersion checks the submission memo never
// suppresses entries that arrive (or are replaced) after a rejection
// was recorded: the memo keys on the entry pointer, and new entries are
// new pointers.
func TestNegativeMemoScopedToEntryVersion(t *testing.T) {
	fs := dfs.New()
	repo := NewRepository()
	rw := &Rewriter{Repo: repo, FS: fs}

	// Seed a non-matching entry that still passes the footprint filter
	// (same load and filter signatures as the probe, but the filter
	// applies before the projection, so full containment fails): the
	// index must nominate it, traverse it, and memoize the rejection.
	other := firstJobSig(t, `
A = load 'x' as (a, b, c);
B = filter A by b > 1;
store B into 'o';
`)
	if err := fs.WriteFile("stored/miss/part-00000", []byte("1\n")); err != nil {
		t.Fatal(err)
	}
	repo.Insert(&Entry{Plan: other, OutputPath: "stored/miss",
		InputVersions: map[string]int64{"x": fs.Version("x")}})

	probeSrc := `
A = load 'x' as (a, b, c);
B = foreach A generate a, b;
C = filter B by b > 1;
store C into 'f';
`
	job := compileJobs(t, probeSrc, "tmp/neg1").Jobs[0]
	if ev := rw.RewriteJob(cloneJob(job), false); len(ev) != 0 {
		t.Fatalf("unexpected rewrite: %v", ev)
	}

	// A matching entry inserted later must be found by the same
	// rewriter on the same (unchanged) plan.
	match := firstJobSig(t, `
A = load 'x' as (a, b, c);
B = foreach A generate a, b;
store B into 'o';
`)
	if err := fs.WriteFile("stored/hit/part-00000", []byte("1\t2\n")); err != nil {
		t.Fatal(err)
	}
	repo.Insert(&Entry{Plan: match, OutputPath: "stored/hit",
		InputVersions: map[string]int64{"x": fs.Version("x")}})
	ev := rw.RewriteJob(cloneJob(job), false)
	if len(ev) != 1 || ev[0].Path != "stored/hit" {
		t.Fatalf("memo suppressed a fresh entry: %v", ev)
	}
	repo.Unpin(ev[0].EntryID)

	// And the rejection itself must have been memoized: re-probing the
	// unchanged plan skips the miss entry's traversal.
	before := repo.MatcherStats()
	rw.RewriteJob(cloneJob(job), false)
	after := repo.MatcherStats()
	if after.NegativeHits == before.NegativeHits {
		t.Errorf("no negative-memo hits on a repeated probe: %+v", after)
	}
}

// checkIndexCoherent verifies (on a quiescent repository) that the
// signature index exactly mirrors the entries: footprints for each,
// one posting under each entry's frontier, correct scan positions, and
// nothing stale left behind.
func checkIndexCoherent(t *testing.T, repo *Repository) {
	t.Helper()
	entries := repo.Entries()
	if len(repo.index.meta) != len(entries) {
		t.Fatalf("index meta holds %d entries, repository %d", len(repo.index.meta), len(entries))
	}
	posted := 0
	for sig, list := range repo.index.postings {
		if len(list) == 0 {
			t.Fatalf("empty posting list for %q", sig)
		}
		posted += len(list)
	}
	for i, e := range entries {
		f := repo.index.meta[e]
		if f == nil {
			t.Fatalf("entry %s missing from index meta", e.ID)
		}
		if repo.index.pos[e.ID] != i {
			t.Fatalf("entry %s at scan position %d, index says %d", e.ID, i, repo.index.pos[e.ID])
		}
		if f.frontier == "" {
			posted++ // not posted by design; balance the count below
			continue
		}
		found := 0
		for _, x := range repo.index.postings[f.frontier] {
			if x == e {
				found++
			}
		}
		if found != 1 {
			t.Fatalf("entry %s posted %d times under its frontier", e.ID, found)
		}
	}
	if posted != len(entries) {
		t.Fatalf("postings hold %d entries, repository %d", posted, len(entries))
	}
}

// TestIndexCoherenceUnderConcurrency hammers one repository from many
// goroutines — inserts (fresh and fingerprint-replacing), evictions,
// vacuums, removes, probes and full rewrites — and then verifies the
// index still exactly mirrors the entries and agrees with the scan.
// Run under -race in CI.
func TestIndexCoherenceUnderConcurrency(t *testing.T) {
	fs := dfs.New()
	repo := NewRepository()

	nFamilies := 6
	sigs := make([]PlanSig, nFamilies)
	for i := range sigs {
		sigs[i] = firstJobSig(t, fmt.Sprintf(`
A = load 'in%d' as (a, b, c);
B = filter A by a > %d;
store B into 'o%d';
`, i, i, i))
	}
	probes := make([]*physical.Job, nFamilies)
	for i := range probes {
		probes[i] = compileJobs(t, fmt.Sprintf(`
A = load 'in%d' as (a, b, c);
B = filter A by a > %d;
G = group B by b;
S = foreach G generate group, COUNT(B);
store S into 'p%d';
`, i, i, i), fmt.Sprintf("tmp/coh%d", i)).Jobs[0]
	}
	for i := 0; i < nFamilies; i++ {
		if err := fs.WriteFile(fmt.Sprintf("stored/f%d/part-00000", i), []byte("1\t2\t3\n")); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			rw := &Rewriter{Repo: repo, FS: fs, LinearScan: g%2 == 0}
			for i := 0; i < 300; i++ {
				k := r.Intn(nFamilies)
				switch r.Intn(5) {
				case 0, 1: // insert (fingerprint collisions replace)
					repo.Insert(&Entry{
						Plan:          sigs[k],
						OutputPath:    fmt.Sprintf("stored/f%d", k),
						InputVersions: map[string]int64{fmt.Sprintf("in%d", k): fs.Version(fmt.Sprintf("in%d", k))},
						Stats:         EntryStats{InputSimBytes: int64(100 + i), OutputSimBytes: 10},
					})
				case 2: // rewrite through the matcher
					job := cloneJob(probes[k])
					for _, ev := range rw.RewriteJob(job, false) {
						repo.Unpin(ev.EntryID)
					}
				case 3: // evict whatever is present
					var ids []string
					repo.Scan(func(e *Entry) bool {
						ids = append(ids, e.ID)
						return len(ids) < 2
					})
					repo.EvictUnpinned(ids)
				case 4:
					repo.Vacuum(fs, 0, 0)
					if e := repo.Lookup(sigs[k]); e != nil {
						repo.Remove(e.ID)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	checkIndexCoherent(t, repo)

	// Quiescent differential: probes and scans agree entry-for-entry.
	for k, job := range probes {
		jobSig := SigOf(job.Plan)
		var fromProbe, fromScan []*Entry
		repo.Probe(jobSig, func(e *Entry) bool {
			fromProbe = append(fromProbe, e)
			return true
		})
		repo.Scan(func(e *Entry) bool {
			if _, ok := matchEntry(e, job.Plan, jobSig, -1); ok {
				fromScan = append(fromScan, e)
			}
			return true
		})
		nominated := map[*Entry]bool{}
		for _, e := range fromProbe {
			nominated[e] = true
		}
		for _, e := range fromScan {
			if !nominated[e] {
				t.Fatalf("family %d: matching entry %s not nominated after churn", k, e.ID)
			}
		}
	}
}

// TestVacuumAndEvictKeepIndexCoherent exercises every removal path
// serially and verifies the index after each.
func TestVacuumAndEvictKeepIndexCoherent(t *testing.T) {
	fs := dfs.New()
	repo := buildIndexCorpusRepo(t, fs)
	checkIndexCoherent(t, repo)

	// Remove one by ID.
	first := repo.Entries()[0]
	if repo.Remove(first.ID) == nil {
		t.Fatal("Remove failed")
	}
	checkIndexCoherent(t, repo)

	// Evict two by ID.
	es := repo.Entries()
	repo.EvictUnpinned([]string{es[0].ID, es[1].ID})
	checkIndexCoherent(t, repo)

	// Invalidate the rest and vacuum.
	for _, e := range repo.Entries() {
		if err := fs.Delete(e.OutputPath); err != nil {
			t.Fatal(err)
		}
	}
	repo.Vacuum(fs, 0, 0)
	if repo.Len() != 0 {
		t.Fatalf("repository holds %d entries after full vacuum", repo.Len())
	}
	checkIndexCoherent(t, repo)
	if st := repo.MatcherStats(); st.IndexEntries != 0 || st.IndexSignatures != 0 {
		t.Errorf("index not empty after full vacuum: %+v", st)
	}
}

// TestSaveLoadRebuildsIndex checks a persisted repository probes
// identically after reload: the index is rebuilt from the entries.
func TestSaveLoadRebuildsIndex(t *testing.T) {
	fs := dfs.New()
	repo := buildIndexCorpusRepo(t, fs)
	if err := repo.Save(fs, "meta/repo"); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRepository(fs, "meta/repo")
	if err != nil {
		t.Fatal(err)
	}
	checkIndexCoherent(t, loaded)

	job := compileJobs(t, q2, "tmp/slr").Jobs[0]
	want := collectProbe(repo, job)
	got := collectProbe(loaded, job)
	if fmt.Sprint(want) != fmt.Sprint(got) {
		t.Errorf("probe after reload = %v, want %v", got, want)
	}
}

func collectProbe(repo *Repository, job *physical.Job) []string {
	var ids []string
	repo.Probe(SigOf(job.Plan), func(e *Entry) bool {
		ids = append(ids, e.ID)
		return true
	})
	return ids
}
