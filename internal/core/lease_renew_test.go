package core

import (
	"testing"
	"time"
)

// TestLeaseRenewExtendsExpiry: a renewal pushes the deadline a full
// TTL forward without touching the fence, so a holder heartbeating
// through a long materialization is never taken over — while a fenced
// lost renewal is detected and counted.
func TestLeaseRenewExtendsExpiry(t *testing.T) {
	fs := newTestFS(t)
	clock := newTestClock()
	a, b := leasePair(fs, clock, "w1"), leasePair(fs, clock, "w2")

	la, ok := a.TryAcquire("fp")
	if !ok {
		t.Fatal("acquire failed")
	}
	// Renew inside the TTL; the original deadline passes, the renewed
	// one holds.
	clock.Advance(45 * time.Second)
	if !a.Renew(la) {
		t.Fatal("in-TTL renewal failed")
	}
	clock.Advance(45 * time.Second) // 90s since acquire: past the first deadline
	if _, ok := b.TryAcquire("fp"); ok {
		t.Fatal("renewed lease was taken over")
	}
	if !a.StillHeld(la) {
		t.Fatal("holder lost a renewed lease")
	}
	if la.Fence() != 1 {
		t.Fatalf("renewal changed the fence: %d", la.Fence())
	}
	if st := a.Stats(); st.Renewals != 1 {
		t.Fatalf("Renewals = %d, want 1", st.Renewals)
	}

	// Dead holder: renewals stop, expiry hands the lease over, and the
	// late renewal loses against the successor's fence.
	clock.Advance(2 * time.Minute)
	lb, ok := b.TryAcquire("fp")
	if !ok {
		t.Fatal("takeover of an expired lease failed")
	}
	if lb.Fence() != la.Fence()+1 {
		t.Fatalf("takeover fence = %d, want %d", lb.Fence(), la.Fence()+1)
	}
	if a.Renew(la) {
		t.Fatal("fenced-out holder renewed the successor's lease")
	}
	if !b.StillHeld(lb) {
		t.Fatal("successor's lease clobbered by a late renewal")
	}
	if a.Stats().FenceLost == 0 {
		t.Fatal("lost renewal not counted")
	}
}

// TestLeaseKeepAliveHeartbeat: the background renewer keeps a lease
// live across many TTLs while the holder runs, and stops cleanly.
func TestLeaseKeepAliveHeartbeat(t *testing.T) {
	fs := newTestFS(t)
	lm := NewLeaseManager(fs, "sys/locks", "w1", 30*time.Millisecond, time.Millisecond)
	l, ok := lm.TryAcquire("fp")
	if !ok {
		t.Fatal("acquire failed")
	}
	stop := lm.KeepAlive(l)
	deadline := time.Now().Add(5 * time.Second)
	for lm.Stats().Renewals < 5 {
		if time.Now().After(deadline) {
			t.Fatal("heartbeat never renewed")
		}
		time.Sleep(time.Millisecond)
	}
	if !lm.StillHeld(l) {
		t.Fatal("lease lost while the heartbeat runs")
	}
	stop()
	stop() // idempotent
	lm.Release(l)

	// Released: a peer acquires immediately, no takeover needed.
	peer := NewLeaseManager(fs, "sys/locks", "w2", 30*time.Millisecond, time.Millisecond)
	lp, ok := peer.TryAcquire("fp")
	if !ok {
		t.Fatal("acquire after stop+release failed")
	}
	if lp.Fence() != 1 {
		t.Fatalf("post-release fence = %d, want 1 (clean release deletes the record)", lp.Fence())
	}
}

// TestLeaseKeepAliveStopsOnFenceLoss: once a lease is taken over, the
// holder's heartbeat gives up instead of fighting the successor.
func TestLeaseKeepAliveStopsOnFenceLoss(t *testing.T) {
	fs := newTestFS(t)
	clock := newTestClock()
	a, b := leasePair(fs, clock, "w1"), leasePair(fs, clock, "w2")
	la, _ := a.TryAcquire("fp")
	clock.Advance(2 * time.Minute)
	lb, ok := b.TryAcquire("fp")
	if !ok {
		t.Fatal("takeover failed")
	}
	// The late heartbeat must lose and stay lost.
	stop := a.KeepAlive(la)
	defer stop()
	if a.Renew(la) {
		t.Fatal("fenced-out renewal succeeded")
	}
	if !b.StillHeld(lb) {
		t.Fatal("successor lost its lease to a dead holder's heartbeat")
	}
}
