package core

import (
	"sync"
	"testing"

	"repro/internal/dfs"
)

// Repro: writer A compacts while one of its own appends lands between
// Compact's refresh and its snapshot. The fold horizon extends past
// dl.applied through the self map, trim deletes the record, and
// applied is never advanced — so A's refresh permanently stalls on the
// trimmed slot and never applies writer B's later records.
func TestZZCompactRefreshStall(t *testing.T) {
	fs := dfs.New()
	dlA, repoA := openDurable(t, fs, "sys/repo")

	// Seed one entry and drain refresh so applied == head.
	repoA.Insert(durableEntry(t, fs, indexCorpus[0], 0))
	dlA.Refresh()

	// Simulate the race deterministically by doing what Compact does,
	// with an append landing between the refresh and the snapshot.
	dlA.refreshMu.Lock()
	if _, err := dlA.refreshLocked(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		repoA.Insert(durableEntry(t, fs, indexCorpus[1], 1)) // concurrent append
	}()
	wg.Wait() // append done before snapshot, as the race allows
	recs, folded, err := dlA.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	dlA.refreshMu.Unlock()
	t.Logf("applied=%d folded=%d", func() uint64 { dlA.seqMu.Lock(); defer dlA.seqMu.Unlock(); return dlA.applied }(), folded)
	_ = recs
	// Finish the compaction exactly as Compact does.
	if err := dlA.Compact(); err != nil {
		t.Fatal(err)
	}

	// Writer B appends a new entry.
	dlB, repoB := openDurable(t, fs, "sys/repo")
	repoB.Insert(durableEntry(t, fs, indexCorpus[2], 2))

	// A must eventually see B's entry via Refresh.
	n := dlA.Refresh()
	t.Logf("refresh applied %d records; repoA has %d entries (want 3)", n, repoA.Len())
	if repoA.Len() != 3 {
		t.Fatalf("writer A stalled: has %d entries, want 3", repoA.Len())
	}
}
