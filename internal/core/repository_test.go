package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/tuple"
)

func entryFor(t *testing.T, src string, id string, stats EntryStats) *Entry {
	t.Helper()
	sig := firstJobSig(t, src)
	return &Entry{ID: id, Plan: sig, OutputPath: "stored/" + id, Stats: stats}
}

func TestInsertOrdersBySubsumption(t *testing.T) {
	repo := NewRepository()
	small := entryFor(t, `
A = load 'pv' as (u, r);
B = foreach A generate u;
store B into 'o';
`, "small", EntryStats{InputSimBytes: 100, OutputSimBytes: 50})
	big := entryFor(t, `
A = load 'pv' as (u, r);
B = foreach A generate u;
C = distinct B;
store C into 'o2';
`, "big", EntryStats{InputSimBytes: 100, OutputSimBytes: 90})

	// Insert the small one first; the subsuming big plan must still be
	// scanned first (Rule 1 beats Rule 2's ratio, which favors small).
	repo.Insert(small)
	repo.Insert(big)
	if repo.Entries()[0].ID != "big" {
		t.Errorf("scan order = [%s, %s], want big first",
			repo.Entries()[0].ID, repo.Entries()[1].ID)
	}
}

func TestInsertOrdersByRatioThenTime(t *testing.T) {
	repo := NewRepository()
	mk := func(id, path string, in, out int64, jt time.Duration) *Entry {
		return entryFor(t, fmt.Sprintf(`
A = load '%s' as (a, b);
B = foreach A generate a;
store B into 'o';
`, path), id, EntryStats{InputSimBytes: in, OutputSimBytes: out, JobSimTime: jt})
	}
	// Incomparable plans (different datasets): higher I/O ratio first.
	lowRatio := mk("low", "d1", 100, 90, time.Hour)
	highRatio := mk("high", "d2", 100, 10, time.Minute)
	repo.Insert(lowRatio)
	repo.Insert(highRatio)
	if repo.Entries()[0].ID != "high" {
		t.Errorf("ratio ordering failed: first = %s", repo.Entries()[0].ID)
	}

	// Equal ratios: longer job time first.
	repo2 := NewRepository()
	slow := mk("slow", "d3", 100, 50, time.Hour)
	fast := mk("fast", "d4", 100, 50, time.Minute)
	repo2.Insert(fast)
	repo2.Insert(slow)
	if repo2.Entries()[0].ID != "slow" {
		t.Errorf("time ordering failed: first = %s", repo2.Entries()[0].ID)
	}
}

func TestInsertDedupsByFingerprint(t *testing.T) {
	repo := NewRepository()
	src := `
A = load 'pv' as (u, r);
B = foreach A generate u;
store B into 'o';
`
	e1 := entryFor(t, src, "", EntryStats{InputSimBytes: 10, OutputSimBytes: 5})
	e2 := entryFor(t, src, "", EntryStats{InputSimBytes: 99, OutputSimBytes: 1})
	e2.OutputPath = "stored/new"
	first := repo.Insert(e1)
	second := repo.Insert(e2)
	if repo.Len() != 1 {
		t.Fatalf("repo len = %d, want 1 (dedup)", repo.Len())
	}
	if first != second {
		t.Errorf("Insert did not return the existing entry")
	}
	if first.OutputPath != "stored/new" || first.Stats.InputSimBytes != 99 {
		t.Errorf("dedup did not refresh stats/path: %+v", first)
	}
}

func TestRemoveEntry(t *testing.T) {
	repo := NewRepository()
	e := entryFor(t, `
A = load 'x' as (a);
B = foreach A generate a;
store B into 'o';
`, "", EntryStats{})
	ins := repo.Insert(e)
	if got := repo.Remove(ins.ID); got == nil || repo.Len() != 0 {
		t.Errorf("Remove failed: %v, len=%d", got, repo.Len())
	}
	if repo.Remove("nope") != nil {
		t.Errorf("removing a missing entry should return nil")
	}
	// The fingerprint index must be cleaned too.
	if repo.Lookup(e.Plan) != nil {
		t.Errorf("fingerprint survived removal")
	}
}

func TestValidChecksOutputAndVersions(t *testing.T) {
	fs := dfs.New()
	fs.WriteFile("in/part-00000", []byte("a\n"))
	fs.WriteFile("stored/e/part-00000", []byte("a\n"))
	repo := NewRepository()
	e := &Entry{
		ID:            "e",
		OutputPath:    "stored/e",
		InputVersions: map[string]int64{"in": fs.Version("in")},
	}
	if !repo.Valid(e, fs) {
		t.Fatalf("fresh entry should be valid")
	}
	// Input modified: invalid.
	fs.WriteFile("in/part-00000", []byte("b\n"))
	if repo.Valid(e, fs) {
		t.Errorf("entry with modified input should be invalid")
	}
	// Restore version match but delete the output: invalid.
	e.InputVersions["in"] = fs.Version("in")
	fs.Delete("stored/e")
	if repo.Valid(e, fs) {
		t.Errorf("entry with deleted output should be invalid")
	}
}

func TestVacuumRules(t *testing.T) {
	fs := dfs.New()
	fs.WriteFile("in/part-00000", []byte("a\n"))
	fs.WriteFile("stored/fresh/part-00000", []byte("x\n"))
	fs.WriteFile("stored/stale/part-00000", []byte("x\n"))
	repo := NewRepository()
	fresh := &Entry{ID: "fresh", OutputPath: "stored/fresh",
		InputVersions: map[string]int64{"in": fs.Version("in")},
		LastReused:    90 * time.Minute}
	stale := &Entry{ID: "stale", OutputPath: "stored/stale",
		InputVersions: map[string]int64{"in": fs.Version("in")},
		StoredAt:      0}
	repo.entries = append(repo.entries, fresh, stale)
	repo.byFP["f1"] = fresh
	repo.byFP["f2"] = stale

	removed := repo.Vacuum(fs, 2*time.Hour, time.Hour)
	if len(removed) != 1 || removed[0].ID != "stale" {
		t.Fatalf("removed = %v", removed)
	}
	if repo.Len() != 1 || repo.Entries()[0].ID != "fresh" {
		t.Errorf("kept = %v", repo.Entries())
	}
}

func TestNoteReuse(t *testing.T) {
	repo := NewRepository()
	e := &Entry{}
	repo.NoteReuse(e, 5*time.Minute)
	repo.NoteReuse(e, 9*time.Minute)
	if e.TimesReused != 2 || e.LastReused != 9*time.Minute {
		t.Errorf("usage stats = %+v", e)
	}
}

// TestReuseEquivalenceRandomPipelines is a property test: randomly
// generated filter/project/group pipelines over random data must
// produce identical results with a warm repository (reuse on, all
// heuristics) as on a cold baseline.
func TestReuseEquivalenceRandomPipelines(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 8; trial++ {
		// Random data.
		var rows []tuple.Tuple
		nRows := 50 + r.Intn(200)
		for i := 0; i < nRows; i++ {
			rows = append(rows, tuple.Tuple{
				fmt.Sprintf("k%d", r.Intn(9)),
				int64(r.Intn(100)),
				int64(r.Intn(10)),
			})
		}
		// Random pipeline.
		var b strings.Builder
		b.WriteString("A = load 'rand' as (k, v, w);\n")
		prev := "A"
		steps := 1 + r.Intn(3)
		for s := 0; s < steps; s++ {
			cur := fmt.Sprintf("S%d", s)
			switch r.Intn(3) {
			case 0:
				fmt.Fprintf(&b, "%s = filter %s by v > %d;\n", cur, prev, r.Intn(80))
			case 1:
				fmt.Fprintf(&b, "%s = foreach %s generate k, v, w;\n", cur, prev)
			case 2:
				fmt.Fprintf(&b, "%s = distinct %s;\n", cur, prev)
			}
			prev = cur
		}
		fmt.Fprintf(&b, "G = group %s by k;\n", prev)
		fmt.Fprintf(&b, "R = foreach G generate group, COUNT(%s), SUM(%s.v);\n", prev, prev)
		b.WriteString("store R into 'rand_out';\n")
		src := b.String()

		base := newHarness(t, Options{})
		base.fs.WriteFile("rand/part-00000", []byte(encodeRows(rows)))
		want := base.read(t, base.run(t, src), "rand_out")

		warm := newHarness(t, Options{Reuse: true, KeepWholeJobs: true, Heuristic: NoHeuristic})
		warm.fs.WriteFile("rand/part-00000", []byte(encodeRows(rows)))
		warm.run(t, src) // populate
		res := warm.run(t, src)
		got := warm.read(t, res, "rand_out")

		if len(got) != len(want) {
			t.Fatalf("trial %d: rows %d vs %d\nscript:\n%s", trial, len(got), len(want), src)
		}
		for i := range want {
			if !tuple.Equal(got[i], want[i]) {
				t.Fatalf("trial %d row %d: %v vs %v\nscript:\n%s", trial, i, got[i], want[i], src)
			}
		}
	}
}

func encodeRows(rows []tuple.Tuple) string {
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(tuple.EncodeText(r))
		b.WriteByte('\n')
	}
	return b.String()
}
