package core

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/tuple"
)

func entryFor(t *testing.T, src string, id string, stats EntryStats) *Entry {
	t.Helper()
	sig := firstJobSig(t, src)
	return &Entry{ID: id, Plan: sig, OutputPath: "stored/" + id, Stats: stats}
}

func TestInsertOrdersBySubsumption(t *testing.T) {
	repo := NewRepository()
	small := entryFor(t, `
A = load 'pv' as (u, r);
B = foreach A generate u;
store B into 'o';
`, "small", EntryStats{InputSimBytes: 100, OutputSimBytes: 50})
	big := entryFor(t, `
A = load 'pv' as (u, r);
B = foreach A generate u;
C = distinct B;
store C into 'o2';
`, "big", EntryStats{InputSimBytes: 100, OutputSimBytes: 90})

	// Insert the small one first; the subsuming big plan must still be
	// scanned first (Rule 1 beats Rule 2's ratio, which favors small).
	repo.Insert(small)
	repo.Insert(big)
	if repo.Entries()[0].ID != "big" {
		t.Errorf("scan order = [%s, %s], want big first",
			repo.Entries()[0].ID, repo.Entries()[1].ID)
	}
}

func TestInsertOrdersByRatioThenTime(t *testing.T) {
	repo := NewRepository()
	mk := func(id, path string, in, out int64, jt time.Duration) *Entry {
		return entryFor(t, fmt.Sprintf(`
A = load '%s' as (a, b);
B = foreach A generate a;
store B into 'o';
`, path), id, EntryStats{InputSimBytes: in, OutputSimBytes: out, JobSimTime: jt})
	}
	// Incomparable plans (different datasets): higher I/O ratio first.
	lowRatio := mk("low", "d1", 100, 90, time.Hour)
	highRatio := mk("high", "d2", 100, 10, time.Minute)
	repo.Insert(lowRatio)
	repo.Insert(highRatio)
	if repo.Entries()[0].ID != "high" {
		t.Errorf("ratio ordering failed: first = %s", repo.Entries()[0].ID)
	}

	// Equal ratios: longer job time first.
	repo2 := NewRepository()
	slow := mk("slow", "d3", 100, 50, time.Hour)
	fast := mk("fast", "d4", 100, 50, time.Minute)
	repo2.Insert(fast)
	repo2.Insert(slow)
	if repo2.Entries()[0].ID != "slow" {
		t.Errorf("time ordering failed: first = %s", repo2.Entries()[0].ID)
	}
}

func TestInsertDedupsByFingerprint(t *testing.T) {
	repo := NewRepository()
	src := `
A = load 'pv' as (u, r);
B = foreach A generate u;
store B into 'o';
`
	e1 := entryFor(t, src, "", EntryStats{InputSimBytes: 10, OutputSimBytes: 5})
	e2 := entryFor(t, src, "", EntryStats{InputSimBytes: 99, OutputSimBytes: 1})
	e2.OutputPath = "stored/new"
	first := repo.Insert(e1)
	second := repo.Insert(e2)
	if repo.Len() != 1 {
		t.Fatalf("repo len = %d, want 1 (dedup)", repo.Len())
	}
	if first.ID != second.ID {
		t.Errorf("dedup changed identity: %s vs %s", first.ID, second.ID)
	}
	if second.OutputPath != "stored/new" || second.Stats.InputSimBytes != 99 {
		t.Errorf("dedup did not refresh stats/path: %+v", second)
	}
	// The replacement is a fresh value: readers holding the first
	// pointer keep their consistent snapshot.
	if first.OutputPath == "stored/new" {
		t.Errorf("replacement mutated the old entry in place")
	}
	if cur := repo.Lookup(second.Plan); cur == nil || cur.OutputPath != "stored/new" {
		t.Errorf("repository does not serve the refreshed entry: %+v", cur)
	}
}

func TestRemoveEntry(t *testing.T) {
	repo := NewRepository()
	e := entryFor(t, `
A = load 'x' as (a);
B = foreach A generate a;
store B into 'o';
`, "", EntryStats{})
	ins := repo.Insert(e)
	if got := repo.Remove(ins.ID); got == nil || repo.Len() != 0 {
		t.Errorf("Remove failed: %v, len=%d", got, repo.Len())
	}
	if repo.Remove("nope") != nil {
		t.Errorf("removing a missing entry should return nil")
	}
	// The fingerprint index must be cleaned too.
	if repo.Lookup(e.Plan) != nil {
		t.Errorf("fingerprint survived removal")
	}
}

func TestValidChecksOutputAndVersions(t *testing.T) {
	fs := dfs.New()
	fs.WriteFile("in/part-00000", []byte("a\n"))
	fs.WriteFile("stored/e/part-00000", []byte("a\n"))
	repo := NewRepository()
	e := &Entry{
		ID:            "e",
		OutputPath:    "stored/e",
		InputVersions: map[string]int64{"in": fs.Version("in")},
	}
	if !repo.Valid(e, fs) {
		t.Fatalf("fresh entry should be valid")
	}
	// Input modified: invalid.
	fs.WriteFile("in/part-00000", []byte("b\n"))
	if repo.Valid(e, fs) {
		t.Errorf("entry with modified input should be invalid")
	}
	// Restore version match but delete the output: invalid.
	e.InputVersions["in"] = fs.Version("in")
	fs.Delete("stored/e")
	if repo.Valid(e, fs) {
		t.Errorf("entry with deleted output should be invalid")
	}
}

func TestVacuumRules(t *testing.T) {
	fs := dfs.New()
	fs.WriteFile("in/part-00000", []byte("a\n"))
	fs.WriteFile("stored/fresh/part-00000", []byte("x\n"))
	fs.WriteFile("stored/stale/part-00000", []byte("x\n"))
	repo := NewRepository()
	fresh := &Entry{ID: "fresh", OutputPath: "stored/fresh",
		InputVersions: map[string]int64{"in": fs.Version("in")},
		LastReused:    90 * time.Minute}
	stale := &Entry{ID: "stale", OutputPath: "stored/stale",
		InputVersions: map[string]int64{"in": fs.Version("in")},
		StoredAt:      0}
	repo.entries = append(repo.entries, fresh, stale)
	repo.byFP["f1"] = fresh
	repo.byFP["f2"] = stale

	removed := repo.Vacuum(fs, 2*time.Hour, time.Hour)
	if len(removed) != 1 || removed[0].ID != "stale" {
		t.Fatalf("removed = %v", removed)
	}
	if repo.Len() != 1 || repo.Entries()[0].ID != "fresh" {
		t.Errorf("kept = %v", repo.Entries())
	}
}

func TestNoteReuse(t *testing.T) {
	repo := NewRepository()
	e := &Entry{}
	repo.NoteReuse(e, 5*time.Minute)
	repo.NoteReuse(e, 9*time.Minute)
	if e.TimesReused != 2 || e.LastReused != 9*time.Minute {
		t.Errorf("usage stats = %+v", e)
	}
}

// TestReuseEquivalenceRandomPipelines is a property test: randomly
// generated filter/project/group pipelines over random data must
// produce identical results with a warm repository (reuse on, all
// heuristics) as on a cold baseline.
func TestReuseEquivalenceRandomPipelines(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 8; trial++ {
		// Random data.
		var rows []tuple.Tuple
		nRows := 50 + r.Intn(200)
		for i := 0; i < nRows; i++ {
			rows = append(rows, tuple.Tuple{
				fmt.Sprintf("k%d", r.Intn(9)),
				int64(r.Intn(100)),
				int64(r.Intn(10)),
			})
		}
		// Random pipeline.
		var b strings.Builder
		b.WriteString("A = load 'rand' as (k, v, w);\n")
		prev := "A"
		steps := 1 + r.Intn(3)
		for s := 0; s < steps; s++ {
			cur := fmt.Sprintf("S%d", s)
			switch r.Intn(3) {
			case 0:
				fmt.Fprintf(&b, "%s = filter %s by v > %d;\n", cur, prev, r.Intn(80))
			case 1:
				fmt.Fprintf(&b, "%s = foreach %s generate k, v, w;\n", cur, prev)
			case 2:
				fmt.Fprintf(&b, "%s = distinct %s;\n", cur, prev)
			}
			prev = cur
		}
		fmt.Fprintf(&b, "G = group %s by k;\n", prev)
		fmt.Fprintf(&b, "R = foreach G generate group, COUNT(%s), SUM(%s.v);\n", prev, prev)
		b.WriteString("store R into 'rand_out';\n")
		src := b.String()

		base := newHarness(t, Options{})
		base.fs.WriteFile("rand/part-00000", []byte(encodeRows(rows)))
		want := base.read(t, base.run(t, src), "rand_out")

		warm := newHarness(t, Options{Reuse: true, KeepWholeJobs: true, Heuristic: NoHeuristic})
		warm.fs.WriteFile("rand/part-00000", []byte(encodeRows(rows)))
		warm.run(t, src) // populate
		res := warm.run(t, src)
		got := warm.read(t, res, "rand_out")

		if len(got) != len(want) {
			t.Fatalf("trial %d: rows %d vs %d\nscript:\n%s", trial, len(got), len(want), src)
		}
		for i := range want {
			if !tuple.Equal(got[i], want[i]) {
				t.Fatalf("trial %d row %d: %v vs %v\nscript:\n%s", trial, i, got[i], want[i], src)
			}
		}
	}
}

func encodeRows(rows []tuple.Tuple) string {
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(tuple.EncodeText(r))
		b.WriteByte('\n')
	}
	return b.String()
}

func TestEntriesReturnsCopy(t *testing.T) {
	// Regression: Entries used to leak the internal slice, letting
	// callers corrupt the repository's matching and eviction order.
	repo := NewRepository()
	a := entryFor(t, `
A = load 'pv' as (u, r);
B = foreach A generate u;
store B into 'o';
`, "a", EntryStats{InputSimBytes: 100, OutputSimBytes: 10})
	b := entryFor(t, `
A = load 'pv' as (u, r);
B = filter A by r > 1;
store B into 'o2';
`, "b", EntryStats{InputSimBytes: 100, OutputSimBytes: 50})
	repo.Insert(a)
	repo.Insert(b)

	got := repo.Entries()
	if len(got) != 2 {
		t.Fatalf("len = %d, want 2", len(got))
	}
	want0, want1 := got[0].ID, got[1].ID

	// Vandalize the returned slice: the repository must be unaffected.
	got[0], got[1] = got[1], got[0]
	got[0] = nil

	again := repo.Entries()
	if again[0] == nil || again[1] == nil {
		t.Fatalf("internal slice leaked: repository now holds nil entries")
	}
	if again[0].ID != want0 || again[1].ID != want1 {
		t.Errorf("caller mutation reordered the repository: [%s, %s], want [%s, %s]",
			again[0].ID, again[1].ID, want0, want1)
	}
}

func TestRepositoryConcurrentInsertLookup(t *testing.T) {
	// Hammer the repository from many goroutines: inserts of colliding
	// fingerprints, lookups, scans, reuse notes and vacuums must leave a
	// consistent index (run under -race in CI).
	repo := NewRepository()
	fs := dfs.New()
	sigs := make([]PlanSig, 4)
	for i := range sigs {
		e := entryFor(t, fmt.Sprintf(`
A = load 'pv%d' as (u, r);
B = foreach A generate u;
store B into 'o%d';
`, i, i), fmt.Sprintf("seed%d", i), EntryStats{InputSimBytes: 100, OutputSimBytes: 10})
		sigs[i] = e.Plan
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g + i) % len(sigs)
				e := &Entry{
					Plan:       sigs[k],
					OutputPath: fmt.Sprintf("stored/g%d/i%d", g, i),
					Stats:      EntryStats{InputSimBytes: int64(100 + i), OutputSimBytes: 10},
				}
				ins := repo.Insert(e)
				repo.NoteReuse(ins, time.Duration(i))
				if repo.Lookup(sigs[k]) == nil {
					t.Errorf("fingerprint vanished after insert")
					return
				}
				repo.Scan(func(*Entry) bool { return true })
				_ = repo.Entries()
				_ = repo.Len()
				if i%50 == 0 {
					repo.Vacuum(fs, time.Hour, 0)
				}
			}
		}(g)
	}
	wg.Wait()
	// Vacuum drops everything (outputs never existed in fs), proving the
	// index stayed coherent: no orphaned fingerprints.
	repo.Vacuum(fs, time.Hour, 0)
	if repo.Len() != 0 {
		t.Errorf("repository left %d entries with nonexistent outputs", repo.Len())
	}
	for _, s := range sigs {
		if repo.Lookup(s) != nil {
			t.Errorf("orphaned fingerprint survived vacuum")
		}
	}
}

func TestPinBlocksVacuum(t *testing.T) {
	fs := dfs.New()
	fs.WriteFile("stored/e/part-00000", []byte("x\n"))
	repo := NewRepository()
	e := entryFor(t, `
A = load 'pv' as (u, r);
B = foreach A generate u;
store B into 'o';
`, "", EntryStats{InputSimBytes: 10, OutputSimBytes: 5})
	e.OutputPath = "stored/e"
	ins := repo.Insert(e)

	// Pinned: neither the reuse window nor output deletion may evict it.
	repo.Pin(ins.ID)
	fs.Delete("stored/e") // makes the entry invalid (Rule 4)...
	if removed := repo.Vacuum(fs, 100*time.Hour, time.Hour); len(removed) != 0 {
		t.Fatalf("vacuum removed a pinned entry: %v", removed)
	}
	if repo.Len() != 1 {
		t.Fatalf("pinned entry vanished")
	}

	// Pins nest: one Unpin of two leaves it protected.
	repo.Pin(ins.ID)
	repo.Unpin(ins.ID)
	if removed := repo.Vacuum(fs, 100*time.Hour, time.Hour); len(removed) != 0 {
		t.Fatalf("vacuum removed an entry with a remaining pin: %v", removed)
	}

	// Fully unpinned: ...and is collected on the next pass.
	repo.Unpin(ins.ID)
	if removed := repo.Vacuum(fs, 100*time.Hour, time.Hour); len(removed) != 1 {
		t.Fatalf("unpinned invalid entry survived: %d removed", len(removed))
	}
	if repo.Len() != 0 {
		t.Errorf("repository not empty after unpinned vacuum")
	}
}
