package core

import (
	"fmt"
	"testing"

	"repro/internal/dfs"
)

// negEntrySrc and negProbeSrc share a signature set — load(x),
// foreach(a;b), the same filter — but wire it differently (foreach
// before filter vs after), so the signature index nominates the entry
// and the full traversal rejects it: a deterministic
// nominated-but-rejected candidate.
const negEntrySrc = `
A = load 'x' as (a, b, c);
B = foreach A generate a, b;
C = filter B by b > 10;
store C into 'o';
`

const negProbeSrc = `
A = load 'x' as (a, b, c);
B = filter A by b > 10;
C = foreach B generate a, b;
store C into 'neg_out';
`

// TestSharedNegCacheAcrossRewriters: a containment rejection paid by
// one submission's rewriter is reused by the next — the traversal count
// stops growing — and replacement of the rejected entry invalidates the
// memo so the fresh entry version is re-tested.
func TestSharedNegCacheAcrossRewriters(t *testing.T) {
	fs := dfs.New()
	repo := NewRepository()
	repo.Insert(durableEntry(t, fs, negEntrySrc, 0))

	run := func() (traversals, sharedHits int64) {
		before := repo.MatcherStats()
		rw := &Rewriter{Repo: repo, FS: fs}
		wf := compileJobs(t, negProbeSrc, "tmp/sn")
		job := cloneJob(wf.Jobs[0])
		for _, ev := range rw.RewriteJob(job, true) {
			repo.Unpin(ev.EntryID)
		}
		after := repo.MatcherStats()
		return after.FullTraversals - before.FullTraversals, after.SharedNegHits - before.SharedNegHits
	}

	t1, h1 := run()
	if t1 != 1 || h1 != 0 {
		t.Fatalf("first pass: traversals %d hits %d, want 1 traversal paying the rejection", t1, h1)
	}
	t2, h2 := run()
	if h2 != 1 {
		t.Fatalf("second submission hit the shared cache %d times, want 1", h2)
	}
	if t2 != 0 {
		t.Fatalf("shared cache saved nothing: %d traversals on the second pass", t2)
	}

	// Replacement invalidates: the fresh entry version is re-tested.
	victim := repo.Entries()[0]
	repl := &Entry{Plan: victim.planSig(), OutputPath: victim.OutputPath, Stats: victim.Stats, InputVersions: victim.InputVersions}
	repo.Insert(repl)
	t3, _ := run()
	if t3 != 1 {
		t.Fatalf("after replacement: %d traversals, want 1 (stale rejection must not suppress the new entry)", t3)
	}
}

// TestSharedNegCacheBound: the cache never exceeds its configured
// capacity and counts evictions.
func TestSharedNegCacheBound(t *testing.T) {
	c := newNegCache(4)
	e := make([]*Entry, 3)
	for i := range e {
		e[i] = &Entry{ID: fmt.Sprintf("e%d", i)}
	}
	for i := 0; i < 10; i++ {
		c.add(negKey{entry: e[i%3], jobFP: fmt.Sprintf("job%d", i)})
	}
	hits, evictions, size := c.stats()
	if size > 4 {
		t.Fatalf("cache size %d over capacity 4", size)
	}
	if evictions != 6 {
		t.Fatalf("evictions = %d, want 6", evictions)
	}
	// The most recent keys survive; the oldest were evicted.
	if !c.lookup(negKey{entry: e[9%3], jobFP: "job9"}) {
		t.Fatal("most recent key evicted")
	}
	if c.lookup(negKey{entry: e[0], jobFP: "job0"}) {
		t.Fatal("oldest key survived a full wrap")
	}
	if h, _, _ := c.stats(); h != hits+1 {
		t.Fatalf("hit counter = %d, want %d", h, hits+1)
	}

	// Invalidation drops every key of an entry.
	c.invalidate(e[0])
	for i := 0; i < 10; i++ {
		if i%3 == 0 && c.lookup(negKey{entry: e[0], jobFP: fmt.Sprintf("job%d", i)}) {
			t.Fatalf("invalidated entry still cached (job%d)", i)
		}
	}

	// A disabled (nil) cache is inert.
	var nc *negCache
	nc.add(negKey{entry: e[0], jobFP: "x"})
	if nc.lookup(negKey{entry: e[0], jobFP: "x"}) {
		t.Fatal("nil cache returned a hit")
	}
	nc.invalidate(e[0])
}
