package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/dfs"
)

// testClock is an injectable wall clock for lease expiry tests.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTestClock() *testClock { return &testClock{now: time.Unix(1000, 0)} }

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func leasePair(fs dfs.Backend, clock *testClock, owner string) *LeaseManager {
	lm := NewLeaseManager(fs, "sys/locks", owner, time.Minute, time.Millisecond)
	lm.SetClock(clock.Now)
	return lm
}

// TestLeaseMutualExclusion: one fingerprint, one holder; a second
// manager acquires only after release.
func TestLeaseMutualExclusion(t *testing.T) {
	fs := newTestFS(t)
	clock := newTestClock()
	a, b := leasePair(fs, clock, "w1"), leasePair(fs, clock, "w2")

	la, ok := a.TryAcquire("fp1")
	if !ok {
		t.Fatal("first acquire failed")
	}
	if _, ok := b.TryAcquire("fp1"); ok {
		t.Fatal("second acquire succeeded while the lease is held")
	}
	if _, ok := a.TryAcquire("fp2"); !ok {
		t.Fatal("unrelated fingerprint blocked")
	}
	if !a.StillHeld(la) {
		t.Fatal("holder thinks it lost a live lease")
	}
	a.Release(la)
	lb, ok := b.TryAcquire("fp1")
	if !ok {
		t.Fatal("acquire after release failed")
	}
	if lb.Fence() != 1 {
		t.Fatalf("fresh lease fence = %d, want 1 (clean release deletes the record)", lb.Fence())
	}
}

// TestLeaseExpiryTakeoverAndFencing: an expired lease is taken over
// with a bumped fence; the original holder detects the loss and cannot
// release the successor's lease.
func TestLeaseExpiryTakeoverAndFencing(t *testing.T) {
	fs := newTestFS(t)
	clock := newTestClock()
	a, b := leasePair(fs, clock, "w1"), leasePair(fs, clock, "w2")

	la, ok := a.TryAcquire("fp")
	if !ok {
		t.Fatal("acquire failed")
	}
	clock.Advance(2 * time.Minute) // past the TTL

	lb, ok := b.TryAcquire("fp")
	if !ok {
		t.Fatal("takeover of expired lease failed")
	}
	if lb.Fence() != la.Fence()+1 {
		t.Fatalf("takeover fence = %d, want %d", lb.Fence(), la.Fence()+1)
	}
	if a.StillHeld(la) {
		t.Fatal("dead holder believes it still holds the lease")
	}
	a.Release(la) // must not clobber b's lease
	if !b.StillHeld(lb) {
		t.Fatal("successor lost its lease to the fenced-out holder's release")
	}
	if a.Stats().FenceLost == 0 {
		t.Fatal("fenced-out release not counted")
	}
}

// TestLeaseWaitFree: a waiter unblocks on release, and reaps an expired
// holder instead of waiting out the TTL wall-clock.
func TestLeaseWaitFree(t *testing.T) {
	fs := newTestFS(t)
	clock := newTestClock()
	a, b := leasePair(fs, clock, "w1"), leasePair(fs, clock, "w2")

	la, _ := a.TryAcquire("fp")
	done := make(chan error, 1)
	go func() { done <- b.WaitFree(context.Background(), "fp") }()
	select {
	case <-done:
		t.Fatal("WaitFree returned while the lease is held")
	case <-time.After(20 * time.Millisecond):
	}
	a.Release(la)
	if err := <-done; err != nil {
		t.Fatalf("WaitFree: %v", err)
	}

	// Expired holder: the waiter reaps and returns.
	a.TryAcquire("fp2")
	clock.Advance(2 * time.Minute)
	if err := b.WaitFree(context.Background(), "fp2"); err != nil {
		t.Fatalf("WaitFree over expired lease: %v", err)
	}
	if b.Stats().Reaped == 0 {
		t.Fatal("expired lease not reaped by the waiter")
	}

	// Cancellation propagates.
	a2, _ := a.TryAcquire("fp3")
	_ = a2
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(5 * time.Millisecond); cancel() }()
	if err := b.WaitFree(ctx, "fp3"); err != context.Canceled {
		t.Fatalf("cancelled WaitFree err = %v", err)
	}
}

// TestLeaseReapExpired: the janitor-facing sweep deletes only expired
// records.
func TestLeaseReapExpired(t *testing.T) {
	fs := newTestFS(t)
	clock := newTestClock()
	a := leasePair(fs, clock, "w1")

	a.TryAcquire("old1")
	a.TryAcquire("old2")
	clock.Advance(2 * time.Minute)
	live, _ := a.TryAcquire("live")
	if n := a.ReapExpired(); n != 2 {
		t.Fatalf("reaped %d leases, want 2", n)
	}
	if !a.StillHeld(live) {
		t.Fatal("reap deleted a live lease")
	}
	if _, ok := a.TryAcquire("old1"); !ok {
		t.Fatal("reaped fingerprint not reacquirable")
	}
}
