package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dfs"
	"repro/internal/physical"
)

// This file is the repository's durability subsystem: a crash-safe
// manifest + append-only event log on the DFS, replacing "the
// repository is process memory, Save is a full rewrite" with storage
// the paper assumes — a persistent store that survives restarts and is
// shared by every serving process on the same DFS.
//
//   - Every repository mutation (Insert, replacement, Remove, Evict,
//     Vacuum) appends one record to "<root>/log/" via the journal hook,
//     under the repository lock, before the mutation is acknowledged.
//     Records carry the entry's metadata, its canonical fingerprint,
//     its signature footprint and scan position, and the plan as an
//     opaque encoded blob — so recovery rebuilds the signature index
//     and scan order from persisted summaries without decoding a single
//     stored plan (plans decode lazily, on the first containment
//     traversal that needs them).
//
//   - Periodic compaction folds the log into a fresh "<root>/MANIFEST"
//     via write-temp-then-rename: the manifest is only ever replaced by
//     a complete snapshot, and records newer than its FoldedThrough
//     sequence survive trimming, so a crash at any boundary — between
//     appends, before the rename, after the rename but before the trim,
//     mid-trim — recovers to exactly the acknowledged state.
//
//   - Log records are allocated dense sequence numbers through the
//     DFS's version compare-and-swap, so several processes append to
//     one log without a coordinator; Refresh tails the log, applying
//     other writers' records, which is how a lease-waiting process
//     learns of the entry the lease holder materialized.
//
// Crash injection for the recovery suite goes through SetFailpoint: a
// tripped failpoint wedges the log — every later write is dropped, as
// if the process had died at that instant — and the test then recovers
// a fresh System over the same DFS.

// DefaultCompactEvery is the number of appended records between
// automatic log compactions.
const DefaultCompactEvery = 64

// manifestFormat versions the manifest encoding.
const manifestFormat = 1

// compactFingerprint is the reserved lease name serializing compaction
// across processes.
const compactFingerprint = "\x00compact"

// DurableConfig configures OpenDurableLog.
type DurableConfig struct {
	// Root is the DFS directory the manifest and log live under.
	Root string
	// CompactEvery is the append count between automatic compactions
	// (0 = DefaultCompactEvery, negative = never auto-compact).
	CompactEvery int
}

// logOp is the record type tag.
type logOp byte

const (
	opPut    logOp = 'P'
	opRemove logOp = 'R'
)

// entryRecord is the persisted form of one repository entry: everything
// the Entry carries, plus the derived summaries — fingerprint,
// footprint, scan position — that let recovery rebuild identity, index
// and order without touching Plan, which stays an opaque blob until a
// containment traversal decodes it.
type entryRecord struct {
	ID            string
	Fingerprint   string
	Plan          []byte // gob-encoded PlanSig, decoded lazily
	OutputPath    string
	Stats         EntryStats
	InputVersions map[string]int64
	OutputVersion int64
	InputBases    map[string]dfs.Snapshot
	Merge         *physical.MergeSpec
	WholeJob      bool
	StoredAt      time.Duration
	LastReused    time.Duration
	TimesReused   int

	// Footprint summary (see footprint in index.go).
	Frontier string
	Sigs     []string
	Loads    []string

	// Pos is the entry's scan position when the record was written; Seq
	// the log sequence that wrote it (entries folded into a manifest
	// keep the sequence of their last record).
	Pos int
	Seq uint64
}

// logRecord is one event-log file.
type logRecord struct {
	Seq    uint64
	Writer string
	Op     logOp
	// Entry is set for puts, RemoveID for removes.
	Entry    *entryRecord
	RemoveID string
}

// manifestFile is the compacted snapshot: the full entry set in scan
// order, folding every log record up to FoldedThrough.
type manifestFile struct {
	Format        int
	FoldedThrough uint64
	Entries       []*entryRecord
}

// recordOf snapshots an entry for persistence. Recovered entries hand
// back their still-encoded plan verbatim — compacting a repository that
// was itself recovered re-encodes nothing and decodes nothing.
func recordOf(e *Entry, f *footprint, pos int) (*entryRecord, error) {
	rec := &entryRecord{
		ID:            e.ID,
		Fingerprint:   e.fingerprint(),
		OutputPath:    e.OutputPath,
		Stats:         e.Stats,
		InputVersions: e.InputVersions,
		OutputVersion: e.OutputVersion,
		InputBases:    e.InputBases,
		Merge:         e.Merge,
		WholeJob:      e.WholeJob,
		StoredAt:      e.StoredAt,
		LastReused:    e.LastReused,
		TimesReused:   e.TimesReused,
		Frontier:      f.frontier,
		Sigs:          f.sigs,
		Loads:         f.loads,
		Pos:           pos,
		Seq:           e.logSeq,
	}
	if e.lazy != nil {
		rec.Plan = e.lazy.enc
		return rec, nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e.Plan); err != nil {
		return nil, fmt.Errorf("core: encoding entry plan: %w", err)
	}
	rec.Plan = buf.Bytes()
	return rec, nil
}

// entryOf rebuilds an entry (plan still encoded) and its footprint from
// a persisted record.
func entryOf(rec *entryRecord) (*Entry, *footprint) {
	e := &Entry{
		ID:            rec.ID,
		OutputPath:    rec.OutputPath,
		Stats:         rec.Stats,
		InputVersions: rec.InputVersions,
		OutputVersion: rec.OutputVersion,
		InputBases:    rec.InputBases,
		Merge:         rec.Merge,
		WholeJob:      rec.WholeJob,
		StoredAt:      rec.StoredAt,
		LastReused:    rec.LastReused,
		TimesReused:   rec.TimesReused,
		fp:            rec.Fingerprint,
		lazy:          &lazyPlan{enc: rec.Plan},
		size:          &outputSize{},
	}
	f := &footprint{frontier: rec.Frontier, sigs: rec.Sigs, loads: rec.Loads}
	return e, f
}

// DurableLog is the write-ahead event log of one repository. It
// implements the repository's journal interface (appends under the
// repository lock) and owns recovery, refresh (tailing other writers'
// records) and compaction. All methods are safe for concurrent use.
type DurableLog struct {
	fs     dfs.Backend
	root   string
	repo   *Repository
	writer string

	compactEvery int
	compactLock  *LeaseManager

	// seqMu guards the sequence state. Lock order: repository lock (the
	// append path holds it) before seqMu; nothing under seqMu takes the
	// repository lock.
	seqMu        sync.Mutex
	nextSeq      uint64
	applied      uint64
	sinceCompact int
	manifestVer  int64
	// self marks sequence numbers this process wrote that are above
	// applied: they are already reflected locally, so refresh skips them
	// and compaction may fold through them.
	self map[uint64]bool

	// refreshMu serializes refresh and compaction passes.
	refreshMu sync.Mutex

	// failMu guards the crash-injection hook and the wedge. Once
	// wedged, every write path no-ops — the process is "dead" to the
	// log, and the test recovers a fresh one.
	failMu sync.Mutex
	fail   func(point string) error
	wedged error

	appends     atomic.Int64
	replayed    atomic.Int64
	compactions atomic.Int64
	resyncs     atomic.Int64
	torn        atomic.Int64
	recovered   int
	// maxSim is the largest simulated timestamp seen across recovered
	// and replayed entries (atomic: live refresh updates it too).
	maxSim atomic.Int64
}

// OpenDurableLog opens (or initializes) the durable repository at
// cfg.Root on fs: it allocates a unique writer ID through the DFS CAS,
// rebuilds a Repository from the manifest and event log — using the
// persisted footprints, fingerprints and positions; no stored plan is
// decoded — and attaches itself as the repository's journal, so every
// subsequent mutation is logged before it is acknowledged.
func OpenDurableLog(fs dfs.Backend, cfg DurableConfig) (*DurableLog, *Repository, error) {
	root := cleanPath(cfg.Root)
	if root == "" {
		return nil, nil, fmt.Errorf("core: durable log needs a root path")
	}
	every := cfg.CompactEvery
	if every == 0 {
		every = DefaultCompactEvery
	}
	dl := &DurableLog{
		fs:           fs,
		root:         root,
		writer:       allocWriter(fs, root),
		compactEvery: every,
		nextSeq:      1, // sequence numbers start at 1; replay reads applied+1
		self:         map[uint64]bool{},
	}
	repo := NewRepository()
	repo.SetIDPrefix(dl.writer)
	dl.repo = repo

	if m, ver, ok, err := dl.readManifest(); err != nil {
		return nil, nil, err
	} else if ok {
		for i, rec := range m.Entries {
			e, f := entryOf(rec)
			repo.applyPut(e, f, i, rec.Seq)
			dl.noteSim(rec.StoredAt, rec.LastReused)
		}
		dl.applied = m.FoldedThrough
		dl.nextSeq = m.FoldedThrough + 1
		dl.manifestVer = ver
	}
	// Replay the log tail. This is the same loop live refresh runs —
	// the fresh writer ID owns no records yet, so every one applies.
	dl.refreshMu.Lock()
	_, err := dl.refreshLocked()
	dl.refreshMu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	dl.recovered = repo.Len()
	repo.SetJournal(dl)
	return dl, repo, nil
}

// Writer returns this process's unique writer ID ("w1", "w2", ...).
func (dl *DurableLog) Writer() string { return dl.writer }

// Root returns the log's DFS directory.
func (dl *DurableLog) Root() string { return dl.root }

// MaxSimTime returns the largest simulated timestamp seen across
// recovered entries, so a recovered driver can resume its clock past
// every persisted event.
func (dl *DurableLog) MaxSimTime() time.Duration { return time.Duration(dl.maxSim.Load()) }

// SetCompactLock makes compaction mutually exclusive across processes
// through a lease; without it, only one process may compact.
func (dl *DurableLog) SetCompactLock(lm *LeaseManager) { dl.compactLock = lm }

// SetFailpoint installs the crash-injection hook: fn is called at every
// named write boundary ("append", "append-done", "compact-begin",
// "compact-manifest", "compact-rename", "compact-trim", "compact-done")
// and a non-nil return wedges the log at that instant — all later
// writes are dropped, as a crashed process's would be. Test-only.
func (dl *DurableLog) SetFailpoint(fn func(point string) error) {
	dl.failMu.Lock()
	defer dl.failMu.Unlock()
	dl.fail = fn
}

// Err returns the wedging error, if a failpoint tripped.
func (dl *DurableLog) Err() error {
	dl.failMu.Lock()
	defer dl.failMu.Unlock()
	return dl.wedged
}

// failAt runs the failpoint; a non-nil result means the log is (now)
// wedged and the caller must drop its write.
func (dl *DurableLog) failAt(point string) error {
	dl.failMu.Lock()
	defer dl.failMu.Unlock()
	if dl.wedged != nil {
		return dl.wedged
	}
	if dl.fail != nil {
		if err := dl.fail(point); err != nil {
			dl.wedged = fmt.Errorf("core: durable log crashed at %s: %w", point, err)
			return dl.wedged
		}
	}
	return nil
}

func (dl *DurableLog) noteSim(stored, reused time.Duration) {
	for _, t := range [...]int64{int64(stored), int64(reused)} {
		for {
			cur := dl.maxSim.Load()
			if t <= cur || dl.maxSim.CompareAndSwap(cur, t) {
				break
			}
		}
	}
}

// recPath is the log file of one sequence number; zero-padding keeps
// lexical and numeric order aligned.
func (dl *DurableLog) recPath(seq uint64) string {
	return fmt.Sprintf("%s/log/r%019d", dl.root, seq)
}

func (dl *DurableLog) manifestPath() string { return dl.root + "/MANIFEST" }

// appendPut implements journal: one put record per Insert/replacement,
// called under the repository write lock.
func (dl *DurableLog) appendPut(e *Entry, f *footprint, pos int) {
	rec, err := recordOf(e, f, pos)
	if err != nil {
		return
	}
	if seq, ok := dl.append(&logRecord{Writer: dl.writer, Op: opPut, Entry: rec}); ok {
		e.logSeq = seq
	}
}

// appendRemove implements journal: one remove record per
// Remove/Evict/Vacuum victim, called under the repository write lock.
func (dl *DurableLog) appendRemove(e *Entry) {
	dl.append(&logRecord{Writer: dl.writer, Op: opRemove, RemoveID: e.ID})
}

// append writes one record at the next free sequence number, reserving
// it through the DFS version CAS so concurrent writers on other
// processes interleave into one dense, totally ordered log. A record
// slot is free only if it was NEVER written (version zero): a slot that
// is absent but version-bumped was trimmed by a peer's compaction, and
// writing there would strand the record below the fold horizon where no
// replay ever looks — the writer must jump past the manifest's
// FoldedThrough instead.
func (dl *DurableLog) append(rec *logRecord) (uint64, bool) {
	if dl.failAt("append") != nil {
		return 0, false
	}
	dl.seqMu.Lock()
	defer dl.seqMu.Unlock()
	seq := dl.nextSeq
	for {
		rec.Seq = seq
		if rec.Entry != nil {
			rec.Entry.Seq = seq
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
			return 0, false
		}
		p := dl.recPath(seq)
		if _, ok := dl.fs.WriteFileIf(p, buf.Bytes(), 0); ok {
			break
		}
		if dl.fs.Exists(p) {
			// Another writer took this sequence — or our own CAS tore
			// mid-write, leaving unacknowledged garbage in the slot.
			// Either way the slot is consumed; ours moves up one.
			seq++
			continue
		}
		if dl.fs.Version(p) == 0 {
			// The CAS expected version zero, the slot is still at
			// version zero and holds nothing: the write itself was
			// dropped (crash injection, failing storage). Drop the
			// record as a crashed writer would — retrying or probing
			// upward would spin against storage that accepts nothing.
			return 0, false
		}
		// Trimmed slot: a peer compacted past us. Restart above its
		// fold horizon; the skipped span is folded into the manifest,
		// which the next refresh resyncs from.
		if m, _, ok, _ := dl.readManifest(); ok && m.FoldedThrough >= seq {
			seq = m.FoldedThrough + 1
		} else {
			seq++ // no readable manifest: probe upward
		}
	}
	dl.nextSeq = seq + 1
	dl.self[seq] = true
	dl.sinceCompact++
	dl.appends.Add(1)
	// The record is durable; a crash here loses nothing.
	_ = dl.failAt("append-done")
	return seq, true
}

// Refresh tails the event log, applying records other processes
// appended since the last pass, and returns how many were applied. A
// process that fell behind a compaction (its next record was folded and
// trimmed) resynchronizes from the manifest first.
func (dl *DurableLog) Refresh() int {
	if dl.Err() != nil {
		return 0
	}
	dl.refreshMu.Lock()
	defer dl.refreshMu.Unlock()
	n, _ := dl.refreshLocked()
	return n
}

func (dl *DurableLog) refreshLocked() (int, error) {
	n := 0
	for {
		dl.seqMu.Lock()
		next := dl.applied + 1
		dl.seqMu.Unlock()
		data, err := dl.fs.ReadFile(dl.recPath(next))
		if err != nil {
			resynced, rerr := dl.maybeResync(next)
			if rerr != nil {
				return n, rerr
			}
			if !resynced {
				return n, nil
			}
			continue
		}
		var rec logRecord
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rec); err != nil {
			// An undecodable record is a torn CAS write: the writer
			// crashed mid-append, so the record was never acknowledged
			// and losing it is correct — skip the slot and keep
			// replaying. (The writer itself saw the failed CAS and
			// moved its record up one sequence.)
			dl.torn.Add(1)
		} else if rec.Writer != dl.writer {
			dl.applyRecord(&rec)
			n++
		}
		dl.seqMu.Lock()
		dl.applied = next
		delete(dl.self, next)
		if dl.nextSeq <= dl.applied {
			dl.nextSeq = dl.applied + 1
		}
		dl.seqMu.Unlock()
	}
}

// applyRecord folds one foreign record into the local repository.
func (dl *DurableLog) applyRecord(rec *logRecord) {
	switch rec.Op {
	case opPut:
		if rec.Entry != nil {
			e, f := entryOf(rec.Entry)
			dl.repo.applyPut(e, f, rec.Entry.Pos, rec.Seq)
			dl.noteSim(rec.Entry.StoredAt, rec.Entry.LastReused)
		}
	case opRemove:
		dl.repo.applyRemove(rec.RemoveID, rec.Seq)
	}
	dl.replayed.Add(1)
}

// maybeResync handles a missing next record: if another process's
// compaction folded past it, reload from the (newer) manifest; returns
// whether the refresh loop should continue.
func (dl *DurableLog) maybeResync(next uint64) (bool, error) {
	mp := dl.manifestPath()
	dl.seqMu.Lock()
	seen := dl.manifestVer
	dl.seqMu.Unlock()
	if dl.fs.Version(mp) == seen {
		return false, nil
	}
	m, ver, ok, err := dl.readManifest()
	if err != nil || !ok {
		return false, err
	}
	dl.seqMu.Lock()
	dl.manifestVer = ver
	dl.seqMu.Unlock()
	if m.FoldedThrough < next {
		return false, nil // newer manifest, but our tail is still in the log
	}
	// The records we were about to read are folded into this manifest:
	// drop local entries the fold removed, apply what it kept.
	dl.resyncs.Add(1)
	inManifest := map[string]bool{}
	for _, rec := range m.Entries {
		inManifest[rec.Fingerprint] = true
	}
	for _, e := range dl.repo.Entries() {
		if e.logSeq != 0 && e.logSeq <= m.FoldedThrough && !inManifest[e.fingerprint()] {
			dl.repo.applyRemove(e.ID, m.FoldedThrough)
		}
	}
	for _, rec := range m.Entries {
		e, f := entryOf(rec)
		dl.repo.applyPut(e, f, rec.Pos, rec.Seq)
	}
	dl.seqMu.Lock()
	if m.FoldedThrough > dl.applied {
		dl.applied = m.FoldedThrough
		for s := range dl.self {
			if s <= m.FoldedThrough {
				delete(dl.self, s)
			}
		}
	}
	if dl.nextSeq <= dl.applied {
		dl.nextSeq = dl.applied + 1
	}
	dl.seqMu.Unlock()
	return true, nil
}

// readManifest loads and decodes the manifest, returning its dataset
// version and whether one exists.
func (dl *DurableLog) readManifest() (*manifestFile, int64, bool, error) {
	mp := dl.manifestPath()
	_, ver, _ := dl.fs.Stat(mp)
	data, err := dl.fs.ReadFile(mp)
	if err != nil {
		return nil, 0, false, nil
	}
	var m manifestFile
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
		return nil, 0, false, fmt.Errorf("core: decoding manifest: %w", err)
	}
	if m.Format != manifestFormat {
		return nil, 0, false, fmt.Errorf("core: unsupported manifest format %d", m.Format)
	}
	return &m, ver, true, nil
}

// MaybeCompact folds the log into a fresh manifest when enough records
// accumulated since the last fold. The driver calls it after
// executions; the janitor calls it every sweep.
func (dl *DurableLog) MaybeCompact() error {
	if dl.compactEvery < 0 {
		return nil
	}
	dl.seqMu.Lock()
	due := dl.sinceCompact >= dl.compactEvery
	dl.seqMu.Unlock()
	if !due {
		return nil
	}
	return dl.Compact()
}

// Compact folds manifest + log into a new manifest: refresh to the log
// head, snapshot the repository in scan order, write the snapshot to a
// temporary file, rename it over the manifest (the only publication
// step, and an atomic one), then trim the folded records. A crash at
// any point leaves a recoverable combination: the old manifest with the
// full log, or the new manifest with a harmlessly stale tail.
func (dl *DurableLog) Compact() error {
	if err := dl.failAt("compact-begin"); err != nil {
		return err
	}
	dl.refreshMu.Lock()
	defer dl.refreshMu.Unlock()
	if _, err := dl.refreshLocked(); err != nil {
		return err
	}
	if dl.compactLock != nil {
		lease, ok := dl.compactLock.TryAcquire(compactFingerprint)
		if !ok {
			return nil // another process is compacting; its fold serves us too
		}
		defer dl.compactLock.Release(lease)
	}

	recs, folded, err := dl.snapshot()
	if err != nil {
		return err
	}
	m := manifestFile{Format: manifestFormat, FoldedThrough: folded, Entries: recs}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return fmt.Errorf("core: encoding manifest: %w", err)
	}
	if err := dl.failAt("compact-manifest"); err != nil {
		return err
	}
	tmp := dl.manifestPath() + "." + dl.writer + ".tmp"
	if err := dl.fs.WriteFile(tmp, buf.Bytes()); err != nil {
		return err
	}
	if err := dl.failAt("compact-rename"); err != nil {
		return err
	}
	ver, err := dl.fs.Rename(tmp, dl.manifestPath())
	if err != nil {
		return err
	}
	dl.seqMu.Lock()
	dl.manifestVer = ver
	dl.sinceCompact = 0
	dl.seqMu.Unlock()
	if err := dl.failAt("compact-trim"); err != nil {
		return err
	}
	dl.trim(folded)
	dl.compactions.Add(1)
	return dl.failAt("compact-done")
}

// snapshot captures the repository in scan order together with the
// highest sequence number whose effects the snapshot is guaranteed to
// contain: everything applied, extended through this process's own
// not-yet-"applied" appends (reflected locally by construction). A
// foreign record beyond that stays in the log and replays over the
// manifest.
//
// Every self-authored record the fold horizon passes is marked applied
// here, under the same lock that extends the horizon. The horizon may
// legitimately run ahead of the last refresh — an own append can land
// between Compact's refresh and this snapshot — and trim is about to
// delete those records; if applied lagged behind, the next refresh
// would wait forever on a trimmed slot the unchanged manifest can
// never resync it past (the compact/refresh stall).
func (dl *DurableLog) snapshot() ([]*entryRecord, uint64, error) {
	r := dl.repo
	r.mu.RLock()
	defer r.mu.RUnlock()
	recs := make([]*entryRecord, 0, len(r.entries))
	for i, e := range r.entries {
		rec, err := recordOf(e, r.index.footprintFor(e), i)
		if err != nil {
			return nil, 0, err
		}
		recs = append(recs, rec)
	}
	// The repository read lock is held: appends (which run under the
	// repository write lock) cannot land while the horizon is computed,
	// so every sequence in self is already reflected in recs above.
	dl.seqMu.Lock()
	folded := dl.applied
	for dl.self[folded+1] {
		folded++
		delete(dl.self, folded)
	}
	if folded > dl.applied {
		dl.applied = folded
	}
	if dl.nextSeq <= dl.applied {
		dl.nextSeq = dl.applied + 1
	}
	dl.seqMu.Unlock()
	return recs, folded, nil
}

// trim deletes log records folded into the manifest.
func (dl *DurableLog) trim(folded uint64) {
	prefix := dl.root + "/log"
	for _, ds := range dl.fs.Datasets(prefix) {
		name := strings.TrimPrefix(ds, prefix+"/")
		if name == ds || !strings.HasPrefix(name, "r") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimPrefix(name, "r"), 10, 64)
		if err != nil || seq > folded {
			continue
		}
		_ = dl.fs.Delete(ds)
	}
	dl.seqMu.Lock()
	for s := range dl.self {
		if s <= folded {
			delete(dl.self, s)
		}
	}
	dl.seqMu.Unlock()
}

// allocWriter allocates a process-unique writer ID through a CAS
// counter file under the log root.
func allocWriter(fs dfs.Backend, root string) string {
	p := root + "/writers"
	for {
		_, ver, _ := fs.Stat(p)
		n := 0
		if data, err := fs.ReadFile(p); err == nil {
			n, _ = strconv.Atoi(strings.TrimSpace(string(data)))
		}
		if _, ok := fs.WriteFileIf(p, []byte(strconv.Itoa(n+1)), ver); ok {
			return fmt.Sprintf("w%d", n+1)
		}
	}
}

// DurabilityStats is a point-in-time snapshot of the durable log.
type DurabilityStats struct {
	// Writer is this process's writer ID; Root the log's DFS directory.
	Writer string
	Root   string
	// RecoveredEntries counts entries rebuilt at open (manifest + log),
	// and PlanDecodes how many recovered plans have been decoded
	// process-wide since then (cold recovery leaves this at zero; each
	// decode is a matcher traversal touching that entry for the first
	// time).
	RecoveredEntries int
	PlanDecodes      int64
	// Appends, Replayed, Compactions and Resyncs count log traffic:
	// records this process wrote, foreign records it applied, folds it
	// performed, and manifest resyncs after falling behind a fold.
	// TornRecords counts undecodable (torn-write) log records replay
	// skipped — each one is a record some writer's crash left
	// unacknowledged.
	Appends     int64
	Replayed    int64
	Compactions int64
	Resyncs     int64
	TornRecords int64
	// LogRecords and AppliedSeq describe the shared log: live record
	// files right now, and the highest sequence this process has
	// applied.
	LogRecords int
	AppliedSeq uint64
	// Err is the wedging crash-injection error, if one tripped.
	Err string
}

// Stats snapshots the log's counters.
func (dl *DurableLog) Stats() DurabilityStats {
	dl.seqMu.Lock()
	applied := dl.applied
	dl.seqMu.Unlock()
	st := DurabilityStats{
		Writer:           dl.writer,
		Root:             dl.root,
		RecoveredEntries: dl.recovered,
		PlanDecodes:      PlanDecodes(),
		Appends:          dl.appends.Load(),
		Replayed:         dl.replayed.Load(),
		Compactions:      dl.compactions.Load(),
		Resyncs:          dl.resyncs.Load(),
		TornRecords:      dl.torn.Load(),
		LogRecords:       len(dl.fs.Datasets(dl.root + "/log")),
		AppliedSeq:       applied,
	}
	if err := dl.Err(); err != nil {
		st.Err = err.Error()
	}
	return st
}
