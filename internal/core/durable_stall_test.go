package core

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// TestCompactRefreshStallRegression reproduces the compact/refresh
// stall deterministically: writer A compacts while one of its own
// appends lands between Compact's refresh and its snapshot. The fold
// horizon extends past dl.applied through the self map, the manifest
// publishes, and trim deletes the folded record. Before the fix,
// applied was left behind the horizon: A's next refresh waited forever
// on the trimmed slot, and — because A itself wrote the manifest —
// maybeResync saw no manifest change and could never repair it, so A
// permanently stopped applying peers' records.
//
// The test performs Compact's steps by hand so the append provably
// lands inside the race window, then finishes the compaction with the
// horizon captured there (calling Compact() instead would re-run
// refreshLocked and paper over the race). snapshot() must advance
// applied across the self-authored records it folds; the assertion is
// that A still observes writer B's later insert.
func TestCompactRefreshStallRegression(t *testing.T) {
	fs := newTestFS(t)
	dlA, repoA := openDurable(t, fs, "sys/repo")

	// Seed one entry and drain refresh so applied == head.
	repoA.Insert(durableEntry(t, fs, indexCorpus[0], 0))
	dlA.Refresh()

	// Compact, by hand: refresh ... [own append lands] ... snapshot.
	dlA.refreshMu.Lock()
	if _, err := dlA.refreshLocked(); err != nil {
		t.Fatal(err)
	}
	repoA.Insert(durableEntry(t, fs, indexCorpus[1], 1)) // the racing self-append
	recs, folded, err := dlA.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	applied := func() uint64 {
		dlA.seqMu.Lock()
		defer dlA.seqMu.Unlock()
		return dlA.applied
	}()
	if folded <= 1 {
		t.Fatalf("fold horizon %d never crossed the racing append; test premise broken", folded)
	}
	if applied != folded {
		t.Fatalf("applied = %d lags the fold horizon %d: the next refresh will stall on a trimmed slot", applied, folded)
	}
	// Finish the compaction with the stale-window horizon, exactly as
	// Compact does: publish the manifest, note its version, trim.
	m := manifestFile{Format: manifestFormat, FoldedThrough: folded, Entries: recs}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		t.Fatal(err)
	}
	tmp := dlA.manifestPath() + ".stall.tmp"
	if err := fs.WriteFile(tmp, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	ver, err := fs.Rename(tmp, dlA.manifestPath())
	if err != nil {
		t.Fatal(err)
	}
	dlA.seqMu.Lock()
	dlA.manifestVer = ver
	dlA.seqMu.Unlock()
	dlA.trim(folded)
	dlA.refreshMu.Unlock()

	// Writer B appends a new entry; A must see it via Refresh.
	_, repoB := openDurable(t, fs, "sys/repo")
	repoB.Insert(durableEntry(t, fs, indexCorpus[2], 2))
	dlA.Refresh()
	if repoA.Len() != 3 {
		t.Fatalf("writer A stalled: has %d entries, want 3", repoA.Len())
	}
}
