package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/dfs"
)

// storedEntry inserts an entry whose output physically exists on fs
// with size bytes, so budget accounting sees real data.
func storedEntry(t *testing.T, repo *Repository, fs dfs.Backend, id, loadPath string, size int, stats EntryStats) *Entry {
	t.Helper()
	e := entryFor(t, fmt.Sprintf(`
A = load '%s' as (a, b);
B = foreach A generate a;
store B into 'o';
`, loadPath), id, stats)
	if err := fs.WriteFile(e.OutputPath+"/part-00000", make([]byte, size)); err != nil {
		t.Fatal(err)
	}
	e.InputVersions = map[string]int64{loadPath: fs.Version(loadPath)}
	return repo.Insert(e)
}

func TestClaimProtocolBasics(t *testing.T) {
	m := NewStorageManager(NewRepository(), newTestFS(t), 0, nil)

	c1, won := m.TryClaim("fp1", "q1")
	if !won {
		t.Fatal("first TryClaim lost")
	}
	c2, won := m.TryClaim("fp1", "q2")
	if won {
		t.Fatal("second TryClaim of a held fingerprint won")
	}
	if c2 != c1 {
		t.Fatal("loser did not receive the holder's claim")
	}
	if c1.Owner() != "q1" || c1.Fingerprint() != "fp1" {
		t.Errorf("claim identity = %s/%s", c1.Owner(), c1.Fingerprint())
	}

	// A waiter wakes with the committed entry.
	entry := &Entry{ID: "e1"}
	got := make(chan *Entry, 1)
	go func() {
		e, _ := m.WaitShared(context.Background(), c2)
		got <- e
	}()
	m.Commit(c1, entry)
	if e := <-got; e != entry {
		t.Fatalf("waiter got %v, want the committed entry", e)
	}

	// The fingerprint is claimable again after resolution.
	c3, won := m.TryClaim("fp1", "q3")
	if !won {
		t.Fatal("fingerprint not released after commit")
	}
	// Aborting wakes waiters with nil.
	if e, err := func() (*Entry, error) {
		ch := make(chan struct{})
		var e *Entry
		var err error
		go func() { e, err = m.WaitShared(context.Background(), c3); close(ch) }()
		m.Abort(c3)
		<-ch
		return e, err
	}(); e != nil || err != nil {
		t.Fatalf("aborted claim: entry=%v err=%v, want nil/nil", e, err)
	}

	st := m.Stats()
	if st.ClaimsGranted != 2 || st.ClaimsCommitted != 1 || st.ClaimsAborted != 1 {
		t.Errorf("claim counters = %+v", st)
	}
	if st.ClaimWaits != 2 || st.ClaimsShared != 1 {
		t.Errorf("wait counters = %+v", st)
	}
}

func TestClaimWaitRespectsContext(t *testing.T) {
	m := NewStorageManager(NewRepository(), newTestFS(t), 0, nil)
	c, _ := m.TryClaim("fp", "winner")
	other, won := m.TryClaim("fp", "loser")
	if won {
		t.Fatal("expected to lose")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := other.Wait(ctx); err != context.Canceled {
		t.Fatalf("Wait under cancelled ctx = %v, want context.Canceled", err)
	}
	m.Abort(c)
}

func TestEvictionPolicies(t *testing.T) {
	now := 10 * time.Hour
	mk := func(id string, lastUse time.Duration, bytes int64, ratio float64, reused int) EntryUsage {
		return EntryUsage{
			Entry:       &Entry{ID: id, Stats: EntryStats{InputSimBytes: int64(ratio * 100), OutputSimBytes: 100}},
			Bytes:       bytes,
			LastUse:     lastUse,
			TimesReused: reused,
		}
	}
	usage := []EntryUsage{
		mk("old", 1*time.Hour, 100, 5, 0),     // idle 9h
		mk("mid", 5*time.Hour, 100, 1, 0),     // idle 5h, low benefit
		mk("fresh", 9*time.Hour, 100, 50, 3),  // idle 1h, high benefit
		mk("bulky", 8*time.Hour, 1000, 50, 0), // idle 2h, low density
	}

	t.Run("reuse-window evicts expired outright", func(t *testing.T) {
		p := ReuseWindowPolicy{Window: 4 * time.Hour}
		// reclaim 0: only the expired entries (idle > 4h) go, most idle
		// first.
		got := p.Victims(usage, now, 0)
		if len(got) != 2 || got[0] != "old" || got[1] != "mid" {
			t.Errorf("expired victims = %v, want [old mid]", got)
		}
		// A big reclaim pulls in unexpired entries, LRU order.
		got = p.Victims(usage, now, 300)
		if len(got) != 3 || got[2] != "bulky" {
			t.Errorf("victims = %v, want [old mid bulky]", got)
		}
	})

	t.Run("lru stops at the reclaim target", func(t *testing.T) {
		got := LRUPolicy{}.Victims(usage, now, 150)
		if len(got) != 2 || got[0] != "old" || got[1] != "mid" {
			t.Errorf("victims = %v, want [old mid]", got)
		}
	})

	t.Run("cost-benefit evicts lowest density first", func(t *testing.T) {
		got := CostBenefitPolicy{}.Victims(usage, now, 150)
		// densities: mid=0.01, bulky=0.05, old=0.05, fresh=2 → mid, then
		// one of {bulky, old} (stable sort keeps input order: old before
		// bulky at equal density).
		if len(got) < 2 || got[0] != "mid" {
			t.Errorf("victims = %v, want mid first", got)
		}
		for _, id := range got {
			if id == "fresh" {
				t.Errorf("high-benefit entry evicted: %v", got)
			}
		}
	})
}

func TestEnforceBudgetConvergesAndSparesPins(t *testing.T) {
	for _, policy := range []EvictionPolicy{
		ReuseWindowPolicy{Window: time.Hour},
		LRUPolicy{},
		CostBenefitPolicy{},
	} {
		t.Run(policy.Name(), func(t *testing.T) {
			fs := newTestFS(t)
			repo := NewRepository()
			m := NewStorageManager(repo, fs, 2500, policy)
			var pinnedEntry *Entry
			for i := 0; i < 5; i++ {
				e := storedEntry(t, repo, fs, fmt.Sprintf("e%d", i), fmt.Sprintf("in%d", i), 1000,
					EntryStats{InputSimBytes: int64(100 * (i + 1)), OutputSimBytes: 100})
				e.StoredAt = time.Duration(i) * time.Minute
				if i == 0 {
					pinnedEntry = e
					repo.Pin(e.ID)
				}
			}
			if got := m.UsageBytes(); got != 5000 {
				t.Fatalf("usage = %d, want 5000", got)
			}
			removed := m.EnforceBudget(10 * time.Hour)
			if got := m.UsageBytes(); got > 2500 {
				t.Fatalf("usage after enforcement = %d, want <= 2500 (removed %d)", got, len(removed))
			}
			for _, e := range removed {
				if e.ID == pinnedEntry.ID {
					t.Fatalf("pinned entry evicted")
				}
				if fs.Exists(e.OutputPath) {
					t.Errorf("evicted sub-job output %s not deleted", e.OutputPath)
				}
			}
			if !fs.Exists(pinnedEntry.OutputPath) {
				t.Errorf("pinned entry's output deleted")
			}
			repo.Unpin(pinnedEntry.ID)
		})
	}
}

func TestEvictUnpinnedSkipsPinned(t *testing.T) {
	fs := newTestFS(t)
	repo := NewRepository()
	a := storedEntry(t, repo, fs, "a", "in1", 10, EntryStats{})
	b := storedEntry(t, repo, fs, "b", "in2", 10, EntryStats{})
	repo.Pin(a.ID)
	removed := repo.EvictUnpinned([]string{a.ID, b.ID})
	if len(removed) != 1 || removed[0].ID != b.ID {
		t.Fatalf("removed = %v, want only b", removed)
	}
	if repo.Lookup(a.Plan) == nil {
		t.Error("pinned entry removed from repository")
	}
	repo.Unpin(a.ID)
}

func TestVacuumOrphans(t *testing.T) {
	fs := newTestFS(t)
	repo := NewRepository()
	m := NewStorageManager(repo, fs, 0, nil)

	write := func(path string) {
		if err := fs.WriteFile(path, []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	// q1: dead, but its sub-job output is a registered entry and its
	// temp output is an entry input — both namespaces must survive.
	e := entryFor(t, `
A = load 'tmp/q1/j1' as (a, b);
B = foreach A generate a;
store B into 'o';
`, "keep", EntryStats{})
	e.OutputPath = "restore/q1/j1/op3"
	write("restore/q1/j1/op3/part-00000")
	write("tmp/q1/j1/part-00000")
	e.InputVersions = map[string]int64{"tmp/q1/j1": fs.Version("tmp/q1/j1")}
	repo.Insert(e)

	// q2: dead with no entries — everything goes.
	write("restore/q2/j1/op5/part-00000")
	write("tmp/q2/j1/part-00000")
	write("tmp/q2/.staged/out/part-00000")

	// q3: live — untouched even without entries.
	write("tmp/q3/j1/part-00000")

	// User data outside the managed namespaces is never touched.
	write("events/part-00000")

	n, bytes := m.VacuumOrphans(func(qid string) bool { return qid == "q3" })
	if n != 3 || bytes != 12 {
		t.Errorf("reclaimed %d datasets / %d bytes, want 3 / 12", n, bytes)
	}
	for _, p := range []string{"restore/q1/j1/op3", "tmp/q1/j1", "tmp/q3/j1", "events"} {
		if !fs.Exists(p) {
			t.Errorf("%s deleted, want kept", p)
		}
	}
	for _, p := range []string{"restore/q2", "tmp/q2"} {
		if fs.Exists(p) {
			t.Errorf("%s kept, want deleted", p)
		}
	}
}

// TestStoredBytesCache checks the entry size cache: a hit reuses the
// memoized total without re-sizing (stable snapshot pointer), and any
// version bump of the output dataset — write, delete — invalidates it.
func TestStoredBytesCache(t *testing.T) {
	fs := newTestFS(t)
	repo := NewRepository()
	e := storedEntry(t, repo, fs, "c1", "in1", 100, EntryStats{})

	if got := e.storedBytes(fs); got != 100 {
		t.Fatalf("storedBytes = %d, want 100", got)
	}
	snap := e.size.v.Load()
	if snap == nil || snap.bytes != 100 {
		t.Fatalf("cache not populated: %+v", snap)
	}
	if e.storedBytes(fs); e.size.v.Load() != snap {
		t.Errorf("unchanged output re-sized: cache snapshot replaced")
	}

	// Writing another part file bumps the dataset version: the next
	// storedBytes must see the new total.
	if err := fs.WriteFile(e.OutputPath+"/part-00001", make([]byte, 50)); err != nil {
		t.Fatal(err)
	}
	if got := e.storedBytes(fs); got != 150 {
		t.Errorf("storedBytes after append = %d, want 150", got)
	}

	// Deleting empties it (and bumps the version again).
	if err := fs.Delete(e.OutputPath); err != nil {
		t.Fatal(err)
	}
	if got := e.storedBytes(fs); got != 0 {
		t.Errorf("storedBytes after delete = %d, want 0", got)
	}

	// Entries outside a repository (no cache installed) still size
	// correctly.
	bare := &Entry{OutputPath: "elsewhere/ds"}
	if err := fs.WriteFile("elsewhere/ds/part-00000", make([]byte, 7)); err != nil {
		t.Fatal(err)
	}
	if got := bare.storedBytes(fs); got != 7 {
		t.Errorf("uncached storedBytes = %d, want 7", got)
	}
}

// TestStoredBytesCacheSurvivesBudgetSweeps checks the budget loop runs
// off the cache: after a converging EnforceBudget, surviving entries'
// snapshots are reused on the next sweep, and a fingerprint
// replacement never inherits the old entry's memoized size.
func TestStoredBytesCacheSurvivesBudgetSweeps(t *testing.T) {
	fs := newTestFS(t)
	repo := NewRepository()
	m := NewStorageManager(repo, fs, 10_000, LRUPolicy{})
	for i := 0; i < 4; i++ {
		e := storedEntry(t, repo, fs, fmt.Sprintf("s%d", i), fmt.Sprintf("sin%d", i), 1000, EntryStats{})
		e.StoredAt = time.Duration(i) * time.Minute
	}
	m.EnforceBudget(time.Hour) // under budget: sizes everything, caches it
	snaps := map[string]*sizedVersion{}
	repo.Scan(func(e *Entry) bool {
		snaps[e.ID] = e.size.v.Load()
		return true
	})
	m.EnforceBudget(2 * time.Hour)
	repo.Scan(func(e *Entry) bool {
		if e.size.v.Load() != snaps[e.ID] {
			t.Errorf("entry %s re-sized on an unchanged sweep", e.ID)
		}
		return true
	})

	// Replacement: same fingerprint, different output — fresh cache.
	old := repo.Entries()[0]
	repl := repo.Insert(&Entry{Plan: old.Plan, OutputPath: "stored/replaced",
		Stats: EntryStats{InputSimBytes: 1, OutputSimBytes: 1}})
	if err := fs.WriteFile("stored/replaced/part-00000", make([]byte, 42)); err != nil {
		t.Fatal(err)
	}
	if got := repl.storedBytes(fs); got != 42 {
		t.Errorf("replacement storedBytes = %d, want 42 (stale cache inherited?)", got)
	}
}

// TestNamespacePathNormalizesRoot checks the single layout helper:
// writers (driver) and the sweeper (janitor) must agree on paths even
// when the configured root carries stray slashes.
func TestNamespacePathNormalizes(t *testing.T) {
	for _, root := range []string{"sys", "sys/", "/sys", "/sys/"} {
		if got := NamespacePath(root, "tmp", "q1"); got != "sys/tmp/q1" {
			t.Errorf("NamespacePath(%q) = %q, want sys/tmp/q1", root, got)
		}
	}
	if got := NamespacePath("", "restore", "q2"); got != "restore/q2" {
		t.Errorf("NamespacePath(\"\") = %q, want restore/q2", got)
	}
	// The driver builds its per-query prefixes through the same helper,
	// so a raw root with a trailing slash cannot divorce its layout
	// from the janitor's.
	d := &Driver{NamespaceRoot: "sys/"}
	if got := d.namespace("tmp", "q3"); got != "sys/tmp/q3" {
		t.Errorf("driver namespace = %q, want sys/tmp/q3", got)
	}
}

// TestNamespaceRootConfinesOrphanSweep checks the configurable
// namespace root: with a root set, the janitor reclaims only
// "<root>/restore" and "<root>/tmp" query namespaces — user datasets
// that happen to live under top-level tmp/ or restore/ are untouched.
func TestNamespaceRootConfinesOrphanSweep(t *testing.T) {
	fs := newTestFS(t)
	m := NewStorageManager(NewRepository(), fs, 0, nil)
	m.SetNamespaceRoot("sys")

	write := func(path string) {
		if err := fs.WriteFile(path, []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	// User datasets shadowing the legacy reserved prefixes.
	write("tmp/mydata/part-00000")
	write("restore/archive/part-00000")
	// Dead-query namespaces under the configured root.
	write("sys/tmp/q1/j1/part-00000")
	write("sys/restore/q1/j1/op2/part-00000")
	// A live query's namespace under the root.
	write("sys/tmp/q2/j1/part-00000")

	n, _ := m.VacuumOrphans(func(qid string) bool { return qid == "q2" })
	if n != 2 {
		t.Errorf("reclaimed %d datasets, want 2", n)
	}
	for _, p := range []string{"tmp/mydata", "restore/archive", "sys/tmp/q2/j1"} {
		if !fs.Exists(p) {
			t.Errorf("%s deleted, want kept", p)
		}
	}
	for _, p := range []string{"sys/tmp/q1", "sys/restore/q1"} {
		if fs.Exists(p) {
			t.Errorf("%s kept, want deleted", p)
		}
	}
}

// BenchmarkEnforceBudget measures one over-budget sweep across a
// populated repository (the storage half of the CI benchmark job).
func BenchmarkEnforceBudget(b *testing.B) {
	fs := newTestFS(b)
	repo := NewRepository()
	for i := 0; i < 200; i++ {
		sig := benchSig(b, fmt.Sprintf(`
A = load 'in%d' as (a, b);
B = foreach A generate a;
store B into 'o';
`, i))
		e := &Entry{Plan: sig, OutputPath: fmt.Sprintf("stored/e%d", i),
			Stats: EntryStats{InputSimBytes: int64(i + 1), OutputSimBytes: 1}}
		if err := fs.WriteFile(e.OutputPath+"/part-00000", make([]byte, 100)); err != nil {
			b.Fatal(err)
		}
		repo.Insert(e)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A budget above usage: the sweep scans and accounts but evicts
		// nothing, so the repository stays populated across iterations.
		m := NewStorageManager(repo, fs, 1<<40, CostBenefitPolicy{})
		m.EnforceBudget(time.Hour)
	}
}

// BenchmarkClaims measures the uncontended claim round-trip every
// storing job pays.
func BenchmarkClaims(b *testing.B) {
	m := NewStorageManager(NewRepository(), newTestFS(b), 0, nil)
	entry := &Entry{ID: "e"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, won := m.TryClaim("fp", "q")
		if !won {
			b.Fatal("lost an uncontended claim")
		}
		m.Commit(c, entry)
	}
}
