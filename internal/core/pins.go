package core

import (
	"bytes"
	"encoding/gob"
	"strings"
	"sync"
	"time"

	"repro/internal/dfs"
)

// PinSet broadcasts the repository's in-process pins as TTL'd records
// in a shared DFS namespace ("<ns-root>/pins/"), the lease-style
// companion to the pin machinery: where Repository.pins protects an
// entry from this process's own vacuum and eviction, a pin record
// protects it from a peer's. Without it, two processes sharing one
// durable store could race — A's rewrite matches an entry and pins it
// locally, B's budget sweep (which cannot see A's pin table) evicts
// the entry and deletes its stored output, and A's engine run reads a
// dangling path.
//
// One record per (entry, owner) pair: the owner writes it on the
// entry's first local pin, refreshes the expiry on janitor sweeps
// while the pin is held, and deletes it on the last unpin. A record
// carries a TTL so a crashed owner's pins expire instead of shielding
// entries forever; any process may reap expired records.
//
// All methods are safe for concurrent use.
type PinSet struct {
	fs    dfs.Backend
	root  string
	owner string
	ttl   time.Duration
	now   func() time.Time

	mu   sync.Mutex
	held map[string]bool // entry IDs this process has broadcast

	broadcasts int64
	reaped     int64
}

// NewPinSet returns a pin broadcaster over the pins namespace at root.
// owner identifies this process in record names; ttl defaults to
// DefaultLeaseTTL when zero (pins, like leases, should outlive any
// single materialization only through renewal).
func NewPinSet(fs dfs.Backend, root, owner string, ttl time.Duration) *PinSet {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	return &PinSet{
		fs:    fs,
		root:  cleanPath(root),
		owner: owner,
		ttl:   ttl,
		now:   time.Now,
		held:  map[string]bool{},
	}
}

// SetClock injects the wall clock (tests drive expiry without
// sleeping). Call before any pin traffic.
func (ps *PinSet) SetClock(now func() time.Time) { ps.now = now }

// pinRecord is the serialized pin file.
type pinRecord struct {
	EntryID         string
	Owner           string
	ExpiresUnixNano int64
}

// path maps an (entry, owner) pair to its record file. Entry IDs are
// path-safe by construction ("w2e17").
func (ps *PinSet) path(id, owner string) string {
	return ps.root + "/" + id + "." + owner
}

// notePin broadcasts the first local pin of an entry; the repository's
// pin hook calls it on the 0→1 transition.
func (ps *PinSet) notePin(id string) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.held[id] {
		return
	}
	if ps.writeRecord(id) {
		ps.held[id] = true
		ps.broadcasts++
	}
}

// noteUnpin withdraws the broadcast when the last local pin releases.
func (ps *PinSet) noteUnpin(id string) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if !ps.held[id] {
		return
	}
	delete(ps.held, id)
	_ = ps.fs.Delete(ps.path(id, ps.owner))
}

// writeRecord writes this owner's record for id with a fresh expiry.
// Owners never contend on each other's records (the owner is in the
// name), so a plain write is enough.
func (ps *PinSet) writeRecord(id string) bool {
	rec := pinRecord{EntryID: id, Owner: ps.owner, ExpiresUnixNano: ps.now().Add(ps.ttl).UnixNano()}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return false
	}
	return ps.fs.WriteFile(ps.path(id, ps.owner), buf.Bytes()) == nil
}

// PeerPinned reports whether a live pin record from another owner
// exists for the entry: the eviction and vacuum delete paths consult it
// before removing a stored output a peer's in-flight rewrite may read.
func (ps *PinSet) PeerPinned(id string) bool {
	prefix := ps.root + "/" + id + "."
	for _, ds := range ps.fs.Datasets(ps.root) {
		if !strings.HasPrefix(ds, prefix) {
			continue
		}
		if ds[len(prefix):] == ps.owner {
			continue // our own broadcast; local pins already handled it
		}
		data, err := ps.fs.ReadFile(ds)
		if err != nil {
			continue
		}
		var rec pinRecord
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rec); err != nil {
			continue
		}
		if ps.now().UnixNano() < rec.ExpiresUnixNano {
			return true
		}
	}
	return false
}

// RenewHeld refreshes the expiry of every record this process still
// holds; the janitor calls it each sweep, so pins survive as long as
// the pinning process does — and no longer.
func (ps *PinSet) RenewHeld() {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for id := range ps.held {
		ps.writeRecord(id)
	}
}

// ReapExpired deletes expired (or undecodable) pin records in the
// namespace, returning how many went — a crashed peer's pins unblock
// eviction within a TTL.
func (ps *PinSet) ReapExpired() int {
	n := 0
	for _, ds := range ps.fs.Datasets(ps.root) {
		if ds == ps.root || !strings.HasPrefix(ds, ps.root+"/") {
			continue
		}
		data, err := ps.fs.ReadFile(ds)
		if err != nil {
			continue
		}
		var rec pinRecord
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rec); err == nil && ps.now().UnixNano() < rec.ExpiresUnixNano {
			continue
		}
		if ps.fs.Delete(ds) == nil {
			n++
			ps.mu.Lock()
			ps.reaped++
			ps.mu.Unlock()
		}
	}
	return n
}

// Stats reports records broadcast by this process and expired records
// it reaped.
func (ps *PinSet) Stats() (broadcasts, reaped int64) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.broadcasts, ps.reaped
}
