package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/logical"
	"repro/internal/mapreduce"
	"repro/internal/mrcompile"
	"repro/internal/piglatin"
	"repro/internal/tuple"
)

// harness bundles a DFS, engine, repository and driver for tests.
type harness struct {
	fs     *dfs.FS
	eng    *mapreduce.Engine
	repo   *Repository
	driver *Driver
	nquery int
}

func newHarness(t *testing.T, opts Options) *harness {
	t.Helper()
	fs := dfs.New()
	eng := mapreduce.New(fs, mapreduce.DefaultConfig())
	repo := NewRepository()
	return &harness{fs: fs, eng: eng, repo: repo, driver: NewDriver(eng, repo, opts)}
}

func (h *harness) write(t *testing.T, path string, rows ...tuple.Tuple) {
	t.Helper()
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(tuple.EncodeText(r))
		b.WriteByte('\n')
	}
	if err := h.fs.WriteFile(path+"/part-00000", []byte(b.String())); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
}

func (h *harness) run(t *testing.T, src string) *Result {
	t.Helper()
	h.nquery++
	script, err := piglatin.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	lp, err := logical.Build(script)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	wf, err := mrcompile.Compile(lp, mrcompile.Options{
		TempPrefix:      fmt.Sprintf("tmp/hq%d", h.nquery),
		DefaultReducers: 2,
	})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	res, err := h.driver.Execute(wf, "")
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return res
}

func (h *harness) read(t *testing.T, res *Result, userPath string) []tuple.Tuple {
	t.Helper()
	path := userPath
	if p, ok := res.FinalOutputs[userPath]; ok && p != "" {
		path = p
	}
	var out []tuple.Tuple
	for _, f := range h.fs.List(path) {
		data, err := h.fs.ReadFile(f)
		if err != nil {
			t.Fatalf("read %s: %v", f, err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line == "" {
				continue
			}
			out = append(out, tuple.DecodeText(line))
		}
	}
	sort.Slice(out, func(i, j int) bool { return tuple.CompareTuples(out[i], out[j]) < 0 })
	return out
}

func (h *harness) seedPigMixSmall(t *testing.T) {
	t.Helper()
	h.write(t, "page_views",
		tuple.Tuple{"alice", int64(1), int64(10), "info", "links"},
		tuple.Tuple{"bob", int64(2), int64(5), "info", "links"},
		tuple.Tuple{"alice", int64(3), int64(7), "info", "links"},
		tuple.Tuple{"carol", int64(4), int64(2), "info", "links"},
	)
	h.write(t, "users",
		tuple.Tuple{"alice", "p", "a", "c"},
		tuple.Tuple{"bob", "p", "a", "c"},
		tuple.Tuple{"dave", "p", "a", "c"},
	)
}

const hq1 = `
A = load 'page_views' as (user, timestamp, est_revenue, page_info, page_links);
B = foreach A generate user, est_revenue;
alpha = load 'users' as (name, phone, address, city);
beta = foreach alpha generate name;
C = join beta by name, B by user;
store C into 'q1_out';
`

const hq2 = `
A = load 'page_views' as (user, timestamp, est_revenue, page_info, page_links);
B = foreach A generate user, est_revenue;
alpha = load 'users' as (name, phone, address, city);
beta = foreach alpha generate name;
C = join beta by name, B by user;
D = group C by $0;
E = foreach D generate group, SUM(C.est_revenue);
store E into 'q2_out';
`

func TestWholeJobReuseAcrossQueries(t *testing.T) {
	// Cold run of Q2 to learn the expected answer.
	cold := newHarness(t, Options{})
	cold.seedPigMixSmall(t)
	coldRes := cold.run(t, hq2)
	want := cold.read(t, coldRes, "q2_out")
	if len(want) != 2 { // alice, bob
		t.Fatalf("cold q2 rows = %v", want)
	}

	// ReStore run: Q1 populates the repository; Q2 reuses Q1's join job.
	h := newHarness(t, Options{Reuse: true, KeepWholeJobs: true})
	h.seedPigMixSmall(t)
	r1 := h.run(t, hq1)
	if r1.JobsReused != 0 || len(r1.Rewrites) != 0 {
		t.Fatalf("q1 should find nothing to reuse: %+v", r1)
	}
	if len(r1.Stored) == 0 {
		t.Fatalf("q1 stored nothing")
	}

	r2 := h.run(t, hq2)
	if len(r2.Rewrites) == 0 {
		t.Fatalf("q2 found no rewrites")
	}
	// Q2's join job matches Q1's stored join output. Q2's join job is
	// a whole-plan match (same join), so the job is either removed (its
	// output is a temp) and the group job reads the stored output.
	if r2.JobsReused != 1 {
		t.Errorf("JobsReused = %d, want 1 (join job)", r2.JobsReused)
	}
	if r2.JobsRun != 1 {
		t.Errorf("JobsRun = %d, want 1 (group job)", r2.JobsRun)
	}
	got := h.read(t, r2, "q2_out")
	if len(got) != len(want) {
		t.Fatalf("reuse changed results: got %v, want %v", got, want)
	}
	for i := range want {
		if !tuple.Equal(got[i], want[i]) {
			t.Errorf("row %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestIdenticalQueryRerun(t *testing.T) {
	h := newHarness(t, Options{Reuse: true, KeepWholeJobs: true})
	h.seedPigMixSmall(t)
	r1 := h.run(t, hq2)
	want := h.read(t, r1, "q2_out")

	// The intermediate join job is reused whole; the final job always
	// re-materializes the user's output from the stored intermediate.
	r2 := h.run(t, hq2)
	if r2.JobsReused != 1 {
		t.Errorf("JobsReused = %d, want 1 (the join job)", r2.JobsReused)
	}
	if r2.JobsRun != 1 {
		t.Errorf("JobsRun = %d, want 1 (the final group job)", r2.JobsRun)
	}
	got := h.read(t, r2, "q2_out")
	if len(got) != len(want) {
		t.Fatalf("rerun changed results: got %v want %v", got, want)
	}
	for i := range want {
		if !tuple.Equal(got[i], want[i]) {
			t.Errorf("row %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestSubJobReuseSameQuery(t *testing.T) {
	// First run with the Aggressive heuristic materializes sub-jobs;
	// the second run reuses them and must produce identical output.
	h := newHarness(t, Options{Reuse: true, Heuristic: Aggressive})
	h.seedPigMixSmall(t)
	r1 := h.run(t, hq1)
	if len(r1.Stored) == 0 {
		t.Fatalf("aggressive run stored no sub-jobs")
	}
	if r1.ExtraStoredSimBytes <= 0 {
		t.Errorf("ExtraStoredSimBytes = %d", r1.ExtraStoredSimBytes)
	}
	want := h.read(t, r1, "q1_out")

	r2 := h.run(t, hq1)
	if len(r2.Rewrites) == 0 {
		t.Fatalf("second run applied no rewrites")
	}
	got := h.read(t, r2, "q1_out")
	if len(got) != len(want) {
		t.Fatalf("sub-job reuse changed results: got %v want %v", got, want)
	}
	for i := range want {
		if !tuple.Equal(got[i], want[i]) {
			t.Errorf("row %d: got %v want %v", i, got[i], want[i])
		}
	}
	// Reuse must make the simulated time no worse.
	if r2.SimTime > r1.SimTime {
		t.Errorf("reuse run slower: %v > %v", r2.SimTime, r1.SimTime)
	}
}

func TestProjectionSubJobSpeedsUpDifferentQuery(t *testing.T) {
	// Q1 stores the projection of page_views; a different query needing
	// the same projection prefix reuses it.
	h := newHarness(t, Options{Reuse: true, Heuristic: Conservative})
	h.seedPigMixSmall(t)
	h.run(t, hq1)

	other := `
A = load 'page_views' as (user, timestamp, est_revenue, page_info, page_links);
B = foreach A generate user, est_revenue;
G = group B by user;
S = foreach G generate group, SUM(B.est_revenue);
store S into 'other_out';
`
	r := h.run(t, other)
	if len(r.Rewrites) == 0 {
		t.Fatalf("expected the projection sub-job to be reused")
	}
	got := h.read(t, r, "other_out")
	// alice 17, bob 5, carol 2.
	if len(got) != 3 {
		t.Fatalf("rows = %v", got)
	}
	wantSums := map[string]int64{"alice": 17, "bob": 5, "carol": 2}
	for _, row := range got {
		if row[1] != wantSums[row[0].(string)] {
			t.Errorf("row %v, want sum %d", row, wantSums[row[0].(string)])
		}
	}
}

func TestHeuristicCandidateCounts(t *testing.T) {
	countStored := func(h Heuristic) int {
		hn := newHarness(t, Options{Heuristic: h})
		hn.seedPigMixSmall(t)
		r := hn.run(t, hq2)
		n := 0
		for _, e := range r.Stored {
			if !e.WholeJob {
				n++
			}
		}
		return n
	}
	off := countStored(HeuristicOff)
	hc := countStored(Conservative)
	ha := countStored(Aggressive)
	nh := countStored(NoHeuristic)
	if off != 0 {
		t.Errorf("off stored %d", off)
	}
	if !(hc > 0 && hc < ha && ha <= nh) {
		t.Errorf("candidate counts: hc=%d ha=%d nh=%d, want 0 < hc < ha <= nh", hc, ha, nh)
	}

	// NoHeuristic additionally stores outputs the Aggressive heuristic
	// skips, e.g. DISTINCT.
	countDistinct := func(heur Heuristic) int {
		hn := newHarness(t, Options{Heuristic: heur})
		hn.seedPigMixSmall(t)
		r := hn.run(t, `
A = load 'page_views' as (user, timestamp, est_revenue, page_info, page_links);
B = foreach A generate user;
D = distinct B;
F = filter D by user != 'nobody';
store F into 'dq_out';
`)
		n := 0
		for _, e := range r.Stored {
			if !e.WholeJob {
				n++
			}
		}
		return n
	}
	if nhd, had := countDistinct(NoHeuristic), countDistinct(Aggressive); nhd <= had {
		t.Errorf("no-heuristic should store the distinct output too: nh=%d ha=%d", nhd, had)
	}
}

func TestRewriteInvalidatedByInputChange(t *testing.T) {
	// Eviction Rule 4: modifying an input must prevent reuse.
	h := newHarness(t, Options{Reuse: true, KeepWholeJobs: true})
	h.seedPigMixSmall(t)
	h.run(t, hq1)

	// Modify page_views: append a row.
	h.write(t, "page_views",
		tuple.Tuple{"alice", int64(1), int64(10), "info", "links"},
		tuple.Tuple{"dave", int64(9), int64(100), "info", "links"},
	)
	r := h.run(t, hq1)
	if r.JobsReused != 0 {
		t.Errorf("stale entry was reused")
	}
	got := h.read(t, r, "q1_out")
	// New data joins alice (10) and dave (100).
	if len(got) != 2 {
		t.Fatalf("rows = %v", got)
	}
}

func TestVacuumWindowEviction(t *testing.T) {
	h := newHarness(t, Options{KeepWholeJobs: true, Heuristic: Conservative})
	h.seedPigMixSmall(t)
	h.run(t, hq1)
	if h.repo.Len() == 0 {
		t.Fatal("nothing stored")
	}
	// Nothing is reused; advancing the clock beyond the window must
	// evict everything.
	removed := h.repo.Vacuum(h.fs, h.driver.Now()+100*time.Hour, time.Hour)
	if len(removed) == 0 || h.repo.Len() != 0 {
		t.Errorf("window eviction removed %d, left %d", len(removed), h.repo.Len())
	}
}

func TestAdmitOnlyReducing(t *testing.T) {
	h := newHarness(t, Options{Heuristic: NoHeuristic, AdmitOnlyReducing: true})
	h.seedPigMixSmall(t)
	r := h.run(t, hq1)
	for _, e := range r.Stored {
		if e.Stats.OutputSimBytes >= e.Stats.InputSimBytes {
			t.Errorf("entry %s violates Rule 1: out=%d in=%d", e.ID, e.Stats.OutputSimBytes, e.Stats.InputSimBytes)
		}
	}
}

func TestRepositoryPersistence(t *testing.T) {
	h := newHarness(t, Options{KeepWholeJobs: true, Heuristic: Aggressive})
	h.seedPigMixSmall(t)
	h.run(t, hq1)
	if err := h.repo.Save(h.fs, "restore/repo.gob"); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadRepository(h.fs, "restore/repo.gob")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Len() != h.repo.Len() {
		t.Fatalf("loaded %d entries, want %d", loaded.Len(), h.repo.Len())
	}
	// The loaded repository must be usable for matching: rerun hq1 with
	// a fresh driver around the loaded repo.
	d2 := NewDriver(h.eng, loaded, Options{Reuse: true})
	h.driver = d2
	r := h.run(t, hq1)
	if len(r.Rewrites) == 0 {
		t.Errorf("loaded repository produced no rewrites")
	}
}

func TestRepositoryOrderingWholeJobFirst(t *testing.T) {
	// With both the whole join job and its projection sub-jobs stored by
	// a run of Q1, Q2's intermediate join job must match the subsuming
	// whole-job entry first (repository ordering Rule 1), not the
	// projections it contains.
	h := newHarness(t, Options{Reuse: true, KeepWholeJobs: true, Heuristic: Conservative})
	h.seedPigMixSmall(t)
	h.run(t, hq1)

	r := h.run(t, hq2)
	if len(r.Rewrites) == 0 {
		t.Fatal("no rewrites")
	}
	if !r.Rewrites[0].WholeJob {
		t.Errorf("first rewrite used %s (whole=%v), want the subsuming whole-job entry",
			r.Rewrites[0].EntryID, r.Rewrites[0].WholeJob)
	}
	if r.JobsReused != 1 {
		t.Errorf("JobsReused = %d, want 1", r.JobsReused)
	}
}

func TestBaselineDeletesTemps(t *testing.T) {
	h := newHarness(t, Options{DeleteTemps: true})
	h.seedPigMixSmall(t)
	h.run(t, hq2)
	for _, f := range h.fs.List("tmp") {
		t.Errorf("temp survived baseline run: %s", f)
	}
}

func TestReStoreKeepsTemps(t *testing.T) {
	h := newHarness(t, Options{DeleteTemps: true, KeepWholeJobs: true})
	h.seedPigMixSmall(t)
	h.run(t, hq2)
	if len(h.fs.List("tmp")) == 0 {
		t.Errorf("ReStore must keep intermediates its repository references")
	}
}

func TestNoReuseWithoutRepo(t *testing.T) {
	h := newHarness(t, Options{Reuse: true})
	h.seedPigMixSmall(t)
	r := h.run(t, hq2)
	if len(r.Rewrites) != 0 || r.JobsReused != 0 {
		t.Errorf("empty repository produced rewrites: %+v", r)
	}
	if r.JobsRun != 2 {
		t.Errorf("JobsRun = %d, want 2", r.JobsRun)
	}
}

func TestReuseEquivalenceAcrossManyQueries(t *testing.T) {
	// Golden-versus-reuse equivalence over a battery of queries sharing
	// prefixes: every query must produce identical results with a warm
	// repository as with a cold baseline.
	queries := []string{
		hq1,
		hq2,
		`
A = load 'page_views' as (user, timestamp, est_revenue, page_info, page_links);
B = foreach A generate user, est_revenue;
F = filter B by est_revenue > 4;
store F into 'q3_out';
`,
		`
A = load 'page_views' as (user, timestamp, est_revenue, page_info, page_links);
B = foreach A generate user, est_revenue;
G = group B by user;
S = foreach G generate group, COUNT(B), SUM(B.est_revenue);
store S into 'q4_out';
`,
		`
A = load 'page_views' as (user, timestamp, est_revenue, page_info, page_links);
B = foreach A generate user;
D = distinct B;
store D into 'q5_out';
`,
	}
	outs := []string{"q1_out", "q2_out", "q3_out", "q4_out", "q5_out"}

	base := newHarness(t, Options{})
	base.seedPigMixSmall(t)
	var want [][]tuple.Tuple
	for i, q := range queries {
		r := base.run(t, q)
		want = append(want, base.read(t, r, outs[i]))
	}

	warm := newHarness(t, Options{Reuse: true, KeepWholeJobs: true, Heuristic: Aggressive})
	warm.seedPigMixSmall(t)
	totalRewrites := 0
	for i, q := range queries {
		r := warm.run(t, q)
		totalRewrites += len(r.Rewrites)
		got := warm.read(t, r, outs[i])
		if len(got) != len(want[i]) {
			t.Fatalf("query %d: got %d rows, want %d\ngot %v\nwant %v", i, len(got), len(want[i]), got, want[i])
		}
		for k := range got {
			if !tuple.Equal(got[k], want[i][k]) {
				t.Errorf("query %d row %d: got %v, want %v", i, k, got[k], want[i][k])
			}
		}
	}
	if totalRewrites == 0 {
		t.Errorf("warm battery applied no rewrites at all")
	}
}

func TestAdmitOnlyBeneficial(t *testing.T) {
	// With Rule 2 on, candidates whose stored output takes longer to
	// load than their producing job took to run are rejected. On the
	// tiny test data every job is dominated by fixed startup costs, so
	// outputs load faster than jobs rerun and everything is admitted;
	// the rule's rejection path is exercised by doctoring the stats.
	h := newHarness(t, Options{Heuristic: Conservative, AdmitOnlyBeneficial: true})
	h.seedPigMixSmall(t)
	r := h.run(t, hq1)
	if len(r.Stored) == 0 {
		t.Fatalf("beneficial candidates were rejected")
	}
	cheap := &Entry{Stats: EntryStats{OutputSimBytes: 1 << 40, JobSimTime: time.Millisecond}}
	if beneficial(h.eng, cheap) {
		t.Errorf("a huge output from a cheap job must not be beneficial")
	}
	good := &Entry{Stats: EntryStats{OutputSimBytes: 1 << 20, JobSimTime: time.Hour}}
	if !beneficial(h.eng, good) {
		t.Errorf("a small output from an expensive job must be beneficial")
	}
}

func TestCriticalPathDropsReusedJobs(t *testing.T) {
	// Equation 1 end-to-end: a three-job workflow (L11 shape) whose two
	// leading jobs are whole-job reused must report a simulated time
	// close to the final job's alone.
	l11 := `
A = load 'page_views' as (user, timestamp, est_revenue, page_info, page_links);
B = foreach A generate user;
C = distinct B;
alpha = load 'users' as (name, phone, address, city);
beta = foreach alpha generate name;
gamma = distinct beta;
D = union C, gamma;
E = distinct D;
store E into 'l11_out';
`
	h := newHarness(t, Options{Reuse: true, KeepWholeJobs: true})
	h.seedPigMixSmall(t)
	r1 := h.run(t, l11)
	if r1.JobsRun != 3 {
		t.Fatalf("cold L11 ran %d jobs, want 3", r1.JobsRun)
	}
	r2 := h.run(t, l11)
	if r2.JobsReused != 2 {
		t.Fatalf("warm L11 reused %d jobs, want 2", r2.JobsReused)
	}
	if r2.JobsRun != 1 {
		t.Fatalf("warm L11 ran %d jobs, want 1", r2.JobsRun)
	}
	if r2.SimTime >= r1.SimTime {
		t.Errorf("warm %v should beat cold %v", r2.SimTime, r1.SimTime)
	}
	// The union-distinct results must be identical.
	want := h.read(t, r1, "l11_out")
	got := h.read(t, r2, "l11_out")
	if len(want) != len(got) {
		t.Fatalf("results differ: %d vs %d rows", len(want), len(got))
	}
}

func TestPartialPrefixReuseAcrossDifferentQueries(t *testing.T) {
	// A query whose prefix overlaps a stored sub-job only partially:
	// the shared projection is reused; the diverging filter is not.
	h := newHarness(t, Options{Reuse: true, Heuristic: Conservative})
	h.seedPigMixSmall(t)
	h.run(t, `
A = load 'page_views' as (user, timestamp, est_revenue, page_info, page_links);
B = foreach A generate user, est_revenue;
F = filter B by est_revenue > 100;
store F into 'rich';
`)
	r := h.run(t, `
A = load 'page_views' as (user, timestamp, est_revenue, page_info, page_links);
B = foreach A generate user, est_revenue;
F = filter B by est_revenue > 1;
store F into 'modest';
`)
	if len(r.Rewrites) == 0 {
		t.Fatalf("shared projection not reused")
	}
	got := h.read(t, r, "modest")
	if len(got) != 4 { // all four rows have est_revenue > 1
		t.Errorf("rows = %v", got)
	}
}

func TestRewriteReportFields(t *testing.T) {
	h := newHarness(t, Options{Reuse: true, KeepWholeJobs: true})
	h.seedPigMixSmall(t)
	h.run(t, hq1)
	r := h.run(t, hq2)
	if len(r.Rewrites) == 0 {
		t.Fatal("no rewrites")
	}
	ev := r.Rewrites[0]
	if ev.JobID == "" || ev.EntryID == "" || ev.Path == "" {
		t.Errorf("incomplete event: %+v", ev)
	}
	if ev.OpsBefore <= ev.OpsAfter-1 {
		t.Errorf("rewrite should not grow the plan: %d -> %d", ev.OpsBefore, ev.OpsAfter)
	}
	// Reuse bookkeeping updated.
	found := false
	for _, e := range h.repo.Entries() {
		if e.ID == ev.EntryID && e.TimesReused > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("entry %s usage not recorded", ev.EntryID)
	}
}

// TestConcurrentWholeJobReuseWithSiblingExecution guards the targeted
// dependant mutation of the DAG driver: when one root job is reused
// whole while an independent sibling job is still executing (and having
// sub-job Stores injected into its plan), the reuse path must not sweep
// the sibling's plan. A workflow-wide remove/rewrite sweep here races
// with the sibling's plan mutation and trips -race (or crashes on
// concurrent map iteration); run in CI under the race detector.
func TestConcurrentWholeJobReuseWithSiblingExecution(t *testing.T) {
	const workflow = `
A = load 'page_views' as (user, timestamp, est_revenue, page_info, page_links);
B = foreach A generate user;
C = distinct B;
alpha = load 'users' as (name, phone, address, city);
beta = foreach alpha generate name;
gamma = distinct beta;
D = union C, gamma;
E = distinct D;
store E into 'sib_out';
`
	h := newHarness(t, Options{Reuse: true, KeepWholeJobs: true, Heuristic: NoHeuristic})
	h.driver.Workers = 4
	h.seedPigMixSmall(t)

	// Warm only the users-side distinct, so on the next run the gamma
	// job is whole-job reused while the page_views-side distinct (not in
	// the repository) executes concurrently.
	h.run(t, `
alpha = load 'users' as (name, phone, address, city);
beta = foreach alpha generate name;
gamma = distinct beta;
store gamma into 'warm_gamma';
`)

	want := h.read(t, h.run(t, workflow), "sib_out")
	if len(want) == 0 {
		t.Fatal("workflow produced no rows")
	}
	for i := 0; i < 5; i++ {
		// Invalidate the page_views side each round so its distinct job
		// always re-executes (fresh plan mutation) while gamma's entry
		// stays valid and is reused whole.
		h.write(t, "page_views",
			tuple.Tuple{"alice", int64(1), int64(10), "info", "links"},
			tuple.Tuple{"bob", int64(2), int64(5), "info", "links"},
			tuple.Tuple{"alice", int64(3), int64(7), "info", "links"},
			tuple.Tuple{"carol", int64(4), int64(2), "info", "links"},
		)
		r := h.run(t, workflow)
		if r.JobsReused == 0 {
			t.Fatalf("round %d: gamma job was not whole-job reused", i)
		}
		got := h.read(t, r, "sib_out")
		if len(got) != len(want) {
			t.Fatalf("round %d: rows = %v, want %v", i, got, want)
		}
		for k := range want {
			if !tuple.Equal(got[k], want[k]) {
				t.Errorf("round %d row %d: %v, want %v", i, k, got[k], want[k])
			}
		}
	}
}
