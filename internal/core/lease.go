package core

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dfs"
	"repro/internal/tuple"
)

// LeaseManager materializes claims as TTL'd lease records in a DFS
// namespace ("<ns-root>/locks/"), so the claim protocol — one
// materializer per plan fingerprint, everyone else waits and reuses —
// holds across processes, not just across the queries of one System.
// Where the in-process claim table hands waiters the committed *Entry
// directly, a cross-process waiter learns of the winner's entry through
// the shared durable event log: the lease only serializes, the log
// propagates.
//
// A lease is one file per fingerprint holding the owner, an expiry
// deadline, and a fencing version that increments on every takeover of
// an expired lease. All writes go through the DFS's version
// compare-and-swap, so two processes racing for one fingerprint resolve
// to exactly one holder, and a holder whose lease expired and was taken
// over can never release (or believe it still holds) the successor's
// lease. A live holder extends its lease through Renew (the same CAS:
// a takeover after expiry always wins over a late renewal), so a
// materialization longer than the TTL keeps its lease as long as the
// process heartbeats — see KeepAlive — while a dead holder's lease
// still expires and is taken over or reaped.
//
// All methods are safe for concurrent use.
type LeaseManager struct {
	fs    dfs.Backend
	root  string
	owner string
	ttl   time.Duration
	poll  time.Duration
	// now is the wall clock, injectable so expiry tests need not sleep.
	now func() time.Time

	granted   atomic.Int64
	takeovers atomic.Int64
	reaped    atomic.Int64
	fenceLost atomic.Int64
	renewals  atomic.Int64
}

// DefaultLeaseTTL is the lease lifetime when none is configured: long
// enough for any materialization, short enough that a dead process's
// in-flight claims unblock waiters within a minute.
const DefaultLeaseTTL = time.Minute

// DefaultLeasePoll is the cross-process lease polling interval.
const DefaultLeasePoll = 2 * time.Millisecond

// NewLeaseManager returns a manager over the locks namespace at root.
// owner identifies this process in lease records; ttl and poll default
// to DefaultLeaseTTL and DefaultLeasePoll when zero.
func NewLeaseManager(fs dfs.Backend, root, owner string, ttl, poll time.Duration) *LeaseManager {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	if poll <= 0 {
		poll = DefaultLeasePoll
	}
	return &LeaseManager{fs: fs, root: cleanPath(root), owner: owner, ttl: ttl, poll: poll, now: time.Now}
}

// SetClock injects the wall clock (tests drive expiry without
// sleeping). Call before any lease traffic.
func (lm *LeaseManager) SetClock(now func() time.Time) { lm.now = now }

// Lease is one held materialization lease. The version is the lease
// file's DFS version as of the last acquisition or renewal: release
// and still-held checks CAS against it, so a takeover after expiry is
// always detected. The mutex makes a background renewer (KeepAlive)
// safe against a concurrent Release or StillHeld.
type Lease struct {
	mu      sync.Mutex
	path    string
	fp      string
	fence   uint64
	version int64
}

// Fence returns the lease's fencing version: it increments every time
// an expired lease is taken over, so entries materialized under an old
// fence can be told from the successor's.
func (l *Lease) Fence() uint64 { return l.fence }

// leaseRecord is the serialized lease file.
type leaseRecord struct {
	Fingerprint string
	Owner       string
	Fence       uint64
	// ExpiresUnixNano is the wall-clock deadline; a record past it may
	// be taken over or reaped.
	ExpiresUnixNano int64
}

// leasePath maps a plan fingerprint (which contains path-hostile
// characters) to its lock file. Two independently seeded 64-bit fast
// hashes give a 128-bit name: leases are taken on every submit, and
// tuple.Hash64 is an order of magnitude cheaper than the sha256 this
// replaced while staying deterministic across processes — which the
// shared-DFS lock namespace requires.
//
// Compatibility: the switch from sha256 to tuple.Hash64 renames every
// lock file. Processes built before the switch hash the same
// fingerprint to a different path, so a pre-switch and a post-switch
// binary sharing one durable DFS lock namespace will not see each
// other's leases — mutual exclusion between them is silently lost. Do
// not mix binary versions across the rename on one DFS: drain the old
// binaries' in-flight submits (their leases expire within the TTL,
// DefaultLeaseTTL by default) before starting new ones, or point the
// new binaries at a fresh namespace root. Stale old-name lease files
// are inert afterwards — nothing ever hashes to them again — and are
// only a few bytes each.
func (lm *LeaseManager) leasePath(fp string) string {
	h1 := tuple.Hash64(fp, 0)
	h2 := tuple.Hash64(fp, 1)
	return fmt.Sprintf("%s/%016x%016x", lm.root, h1, h2)
}

// TryAcquire attempts to take the fingerprint's lease: it succeeds when
// no lease file exists or the existing one has expired (a takeover,
// bumping the fence). It returns (nil, false) when another holder's
// lease is live.
func (lm *LeaseManager) TryAcquire(fp string) (*Lease, bool) {
	path := lm.leasePath(fp)
	for {
		// Version before content: a write sneaking in between makes the
		// CAS fail instead of clobbering the sneaking writer's lease.
		_, ver, _ := lm.fs.Stat(path)
		data, err := lm.fs.ReadFile(path)
		fence := uint64(1)
		if err == nil {
			var old leaseRecord
			if decErr := gob.NewDecoder(bytes.NewReader(data)).Decode(&old); decErr == nil {
				if lm.now().UnixNano() < old.ExpiresUnixNano {
					return nil, false // held and live
				}
				fence = old.Fence + 1
			}
		}
		rec := leaseRecord{
			Fingerprint:     fp,
			Owner:           lm.owner,
			Fence:           fence,
			ExpiresUnixNano: lm.now().Add(lm.ttl).UnixNano(),
		}
		var buf bytes.Buffer
		if encErr := gob.NewEncoder(&buf).Encode(rec); encErr != nil {
			return nil, false
		}
		newVer, ok := lm.fs.WriteFileIf(path, buf.Bytes(), ver)
		if ok {
			lm.granted.Add(1)
			if fence > 1 {
				lm.takeovers.Add(1)
			}
			return &Lease{path: path, fp: fp, fence: fence, version: newVer}, true
		}
		// Lost the CAS; re-read — the winner's lease is probably live.
	}
}

// Renew extends a held lease's expiry by a full TTL through the same
// version CAS as acquisition: if the lease file changed since this
// holder last wrote it — it expired and was taken over, or was reaped —
// the renewal loses and returns false, keeping takeover-on-death
// semantics intact. A true return means the lease is live for another
// TTL from now.
func (lm *LeaseManager) Renew(l *Lease) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	rec := leaseRecord{
		Fingerprint:     l.fp,
		Owner:           lm.owner,
		Fence:           l.fence,
		ExpiresUnixNano: lm.now().Add(lm.ttl).UnixNano(),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return false
	}
	newVer, ok := lm.fs.WriteFileIf(l.path, buf.Bytes(), l.version)
	if !ok {
		lm.fenceLost.Add(1)
		return false
	}
	l.version = newVer
	lm.renewals.Add(1)
	return true
}

// KeepAlive renews the lease in the background every third of the TTL
// until the returned stop function is called or a renewal loses the
// lease. It is the holder-side heartbeat that lets a materialization
// outlive the TTL while the process is alive; once the process dies,
// renewals stop and expiry hands the lease over as before. Call stop
// before Release.
func (lm *LeaseManager) KeepAlive(l *Lease) (stop func()) {
	if l == nil {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	interval := lm.ttl / 3
	if interval <= 0 {
		interval = time.Millisecond
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if !lm.Renew(l) {
					return // fenced out; the successor owns it now
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Release gives the lease up. The conditional delete means a lease that
// expired and was taken over is left to its new holder.
func (lm *LeaseManager) Release(l *Lease) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !lm.fs.RemoveFileIf(l.path, l.version) {
		lm.fenceLost.Add(1)
	}
}

// StillHeld reports whether the lease file is unchanged since this
// holder last wrote it — false means it expired and was taken over (or
// reaped).
func (lm *LeaseManager) StillHeld(l *Lease) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return lm.fs.Version(l.path) == l.version
}

// WaitFree blocks until the fingerprint's lease is released or expires
// (expired leases are reaped on sight), polling the lease file; it
// returns ctx.Err() on cancellation.
func (lm *LeaseManager) WaitFree(ctx context.Context, fp string) error {
	path := lm.leasePath(fp)
	t := time.NewTicker(lm.poll)
	defer t.Stop()
	for {
		_, ver, _ := lm.fs.Stat(path)
		data, err := lm.fs.ReadFile(path)
		if err != nil {
			return nil // released
		}
		var rec leaseRecord
		if decErr := gob.NewDecoder(bytes.NewReader(data)).Decode(&rec); decErr != nil || lm.now().UnixNano() >= rec.ExpiresUnixNano {
			if lm.fs.RemoveFileIf(path, ver) {
				lm.reaped.Add(1)
			}
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

// ReapExpired deletes every expired (or undecodable) lease record in
// the locks namespace, returning how many went; the janitor calls it so
// a crashed process's claims cannot outlive their TTL by much.
func (lm *LeaseManager) ReapExpired() int {
	n := 0
	for _, ds := range lm.fs.Datasets(lm.root) {
		if ds == lm.root {
			continue
		}
		_, ver, _ := lm.fs.Stat(ds)
		data, err := lm.fs.ReadFile(ds)
		if err != nil {
			continue
		}
		var rec leaseRecord
		if decErr := gob.NewDecoder(bytes.NewReader(data)).Decode(&rec); decErr == nil && lm.now().UnixNano() < rec.ExpiresUnixNano {
			continue
		}
		if lm.fs.RemoveFileIf(ds, ver) {
			lm.reaped.Add(1)
			n++
		}
	}
	return n
}

// LeaseStats is a point-in-time snapshot of the lease manager.
type LeaseStats struct {
	// Granted counts leases this process acquired (Takeovers of them by
	// fencing out an expired holder); Reaped counts expired leases
	// deleted by waits and janitor sweeps; FenceLost counts releases
	// and renewals that found the lease already taken over; Renewals
	// counts successful heartbeat extensions.
	Granted   int64
	Takeovers int64
	Reaped    int64
	FenceLost int64
	Renewals  int64
}

// Stats snapshots the counters.
func (lm *LeaseManager) Stats() LeaseStats {
	return LeaseStats{
		Granted:   lm.granted.Load(),
		Takeovers: lm.takeovers.Load(),
		Reaped:    lm.reaped.Load(),
		FenceLost: lm.fenceLost.Load(),
		Renewals:  lm.renewals.Load(),
	}
}
