// Package core implements ReStore: the plan matcher and rewriter, the
// sub-job enumerator, the enumerated sub-job selector, and the
// repository of stored MapReduce job outputs, layered over the dataflow
// compiler and MapReduce engine exactly as the paper layers ReStore over
// Pig and Hadoop (Elghandour & Aboulnaga, PVLDB 5(6), 2012).
package core

import (
	"sort"
	"strings"

	"repro/internal/physical"
)

// OpSig is the matching-relevant projection of a physical operator: its
// kind, canonical signature, and input wiring. Repository entries store
// OpSigs rather than executable operators — matching and rewriting only
// ever need signatures, and plain data serializes cleanly.
type OpSig struct {
	ID     int
	Kind   physical.Kind
	Sig    string
	Inputs []int
}

// PlanSig is the signature DAG of a physical plan.
type PlanSig struct {
	Ops []OpSig // sorted by ID
}

// SigOf projects a physical plan to its signature DAG.
func SigOf(p *physical.Plan) PlanSig {
	ops := p.Ops()
	out := PlanSig{Ops: make([]OpSig, 0, len(ops))}
	for _, op := range ops {
		out.Ops = append(out.Ops, OpSig{
			ID:     op.ID,
			Kind:   op.Kind,
			Sig:    op.Signature(),
			Inputs: append([]int(nil), op.InputIDs...),
		})
	}
	return out
}

// op returns the OpSig with the given ID, or nil.
func (p *PlanSig) op(id int) *OpSig {
	for i := range p.Ops {
		if p.Ops[i].ID == id {
			return &p.Ops[i]
		}
	}
	return nil
}

// successors maps op ID to consumer IDs in ID order.
func (p *PlanSig) successors() map[int][]int {
	succ := map[int][]int{}
	for i := range p.Ops {
		for _, in := range p.Ops[i].Inputs {
			succ[in] = append(succ[in], p.Ops[i].ID)
		}
	}
	for _, s := range succ {
		sort.Ints(s)
	}
	return succ
}

// topo returns op IDs in topological (inputs-first) order.
func (p *PlanSig) topo() []int {
	state := map[int]int{}
	var out []int
	var visit func(id int)
	visit = func(id int) {
		if state[id] != 0 {
			return
		}
		state[id] = 1
		if op := p.op(id); op != nil {
			for _, in := range op.Inputs {
				visit(in)
			}
		}
		state[id] = 2
		out = append(out, id)
	}
	for i := range p.Ops {
		visit(p.Ops[i].ID)
	}
	return out
}

// finalStore returns the plan's Store op (repository entry plans have
// exactly one) or nil.
func (p *PlanSig) finalStore() *OpSig {
	for i := range p.Ops {
		if p.Ops[i].Kind == physical.KStore {
			return &p.Ops[i]
		}
	}
	return nil
}

// resultOp returns the ID of the op feeding the final Store: the op
// whose output the repository entry materializes.
func (p *PlanSig) resultOp() int {
	st := p.finalStore()
	if st == nil || len(st.Inputs) == 0 {
		return -1
	}
	return st.Inputs[0]
}

// loadPaths returns the dataset paths read by the plan, sorted.
func (p *PlanSig) loadPaths() []string {
	seen := map[string]bool{}
	for i := range p.Ops {
		if p.Ops[i].Kind == physical.KLoad {
			seen[loadPathOf(p.Ops[i].Sig)] = true
		}
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// loadPathOf extracts the dataset path from a Load signature
// ("load(path)").
func loadPathOf(sig string) string {
	return strings.TrimSuffix(strings.TrimPrefix(sig, "load("), ")")
}

// Fingerprint returns a canonical string for the whole plan, used to
// deduplicate repository entries. It renders ops in topological order
// with input positions normalized to topo indexes.
func (p *PlanSig) Fingerprint() string {
	order := p.topo()
	pos := map[int]int{}
	for i, id := range order {
		pos[id] = i
	}
	var b strings.Builder
	for _, id := range order {
		op := p.op(id)
		b.WriteString(op.Sig)
		b.WriteByte('[')
		for i, in := range op.Inputs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(itoa(pos[in]))
		}
		b.WriteString("];")
	}
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// OpCount returns the number of operators excluding the final Store,
// i.e. the amount of computation the plan represents.
func (p *PlanSig) OpCount() int {
	n := 0
	for i := range p.Ops {
		if p.Ops[i].Kind != physical.KStore {
			n++
		}
	}
	return n
}
