package core

import (
	"context"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dfs"
)

// StorageManager is the active half of the repository: where Repository
// is a passive ordered map of stored outputs, the manager owns the
// policies that make those outputs a shared, bounded resource across
// concurrent queries. It provides three services:
//
//   - The claim protocol. Before materializing a sub-job output, an
//     execution claims the output's plan fingerprint; a concurrent
//     execution hitting a claimed fingerprint blocks (context-aware)
//     until the winner commits, then reuses the freshly committed entry
//     instead of materializing its own copy. Duplicate cross-query work
//     becomes in-flight sharing.
//
//   - Byte-budgeted eviction. MaxBytes bounds the bytes the repository
//     retains; when an execution or the janitor sweeps while over
//     budget, the configured EvictionPolicy picks victims. Evictions
//     run under the repository's pin machinery, so entries referenced
//     by in-flight rewrites are never deleted.
//
//   - Orphan reclamation. VacuumOrphans deletes per-query DFS
//     namespaces (restore/<qid>, tmp/<qid>) whose query is no longer
//     in flight and whose data no repository entry references — the
//     debris of cancelled and failed queries, and the unreferenced
//     temporaries of completed ones.
//
// All methods are safe for concurrent use.
type StorageManager struct {
	repo     *Repository
	fs       dfs.Backend
	maxBytes int64
	policy   EvictionPolicy

	// nsRoot is the root the managed per-query namespaces live under:
	// "" (the legacy layout) reserves the top-level "restore/" and
	// "tmp/" prefixes for the janitor's orphan sweep; a non-empty root
	// confines them to "<root>/restore" and "<root>/tmp", so user
	// datasets that happen to be named under "tmp/" or "restore/" are
	// never reclaimed. Set once at construction, before any sweep.
	nsRoot string

	// queryPrefix, when non-empty, restricts the orphan sweep to this
	// process's own per-query namespaces (query IDs carry the writer
	// prefix when several processes share one DFS); each process
	// janitors only its own debris, never a peer's live query.
	queryPrefix string

	// durable and leases extend the claim protocol across processes:
	// the durable event log propagates committed entries between
	// repositories sharing one DFS, and leases serialize materialization
	// per fingerprint fleet-wide. Both nil for a process-local store.
	durable *DurableLog
	leases  *LeaseManager

	// pins mirrors the repository's pin table into shared storage and
	// answers whether a peer process holds a live pin on an entry; the
	// eviction and vacuum delete paths spare such entries' outputs.
	// Nil for a process-local store.
	pins *PinSet

	mu     sync.Mutex
	claims map[string]*Claim

	// Counters for StorageStats, all monotonic.
	claimsGranted   atomic.Int64
	claimsCommitted atomic.Int64
	claimsAborted   atomic.Int64
	claimWaits      atomic.Int64
	claimReuses     atomic.Int64
	leaseWaits      atomic.Int64
	leaseShared     atomic.Int64
	evictions       atomic.Int64
	evictedBytes    atomic.Int64
	sweeps          atomic.Int64
	orphanDatasets  atomic.Int64
	orphanBytes     atomic.Int64
}

// NewStorageManager returns a manager over the repository and file
// system. maxBytes <= 0 disables budget enforcement; a nil policy
// defaults to CostBenefitPolicy when a budget is set.
func NewStorageManager(repo *Repository, fs dfs.Backend, maxBytes int64, policy EvictionPolicy) *StorageManager {
	if policy == nil {
		policy = CostBenefitPolicy{}
	}
	return &StorageManager{
		repo:     repo,
		fs:       fs,
		maxBytes: maxBytes,
		policy:   policy,
		claims:   map[string]*Claim{},
	}
}

// Repo returns the managed repository.
func (m *StorageManager) Repo() *Repository { return m.repo }

// SetNamespaceRoot confines the janitor's reserved namespaces to
// "<root>/restore" and "<root>/tmp" (the driver writes its per-query
// data there when configured with the same root). Call it once at
// construction, before any sweep; the empty root keeps the legacy
// top-level "restore/"+"tmp/" layout.
func (m *StorageManager) SetNamespaceRoot(root string) {
	m.nsRoot = cleanPath(root)
}

// namespaces returns the managed per-query namespace roots the orphan
// sweep may reclaim under.
func (m *StorageManager) namespaces() []string {
	return []string{NamespacePath(m.nsRoot, "restore"), NamespacePath(m.nsRoot, "tmp")}
}

// NamespacePath joins a managed-namespace path under the (possibly
// empty) namespace root, normalizing the root. It is the single
// definition of the "<root>/restore/…"+"<root>/tmp/…" layout the
// driver writes under and the janitor's orphan sweep reclaims —
// every producer and consumer of managed paths must build them here,
// or a stray slash in a configured root would silently divorce the
// writer's layout from the sweeper's.
func NamespacePath(root string, parts ...string) string {
	p := cleanPath(root)
	for _, part := range parts {
		if p == "" {
			p = part
		} else {
			p += "/" + part
		}
	}
	return p
}

// MaxBytes returns the configured storage budget (0 = unbounded).
func (m *StorageManager) MaxBytes() int64 { return m.maxBytes }

// SetQueryPrefix confines the orphan sweep to query IDs carrying the
// prefix; processes sharing one DFS must each sweep only their own
// queries (a peer's registry is invisible here, so every foreign
// namespace would look dead). Call once at construction.
func (m *StorageManager) SetQueryPrefix(prefix string) {
	m.queryPrefix = prefix
}

// SetDurable attaches the cross-process machinery: the durable event
// log (for propagating committed entries between repositories sharing
// one DFS) and the lease manager (for serializing materialization
// per fingerprint across processes). Call once at construction.
func (m *StorageManager) SetDurable(dl *DurableLog, lm *LeaseManager) {
	m.durable = dl
	m.leases = lm
}

// SetPins attaches the cross-process pin mirror (and wires it into the
// repository's pin transitions). Call once at construction.
func (m *StorageManager) SetPins(ps *PinSet) {
	m.pins = ps
	m.repo.SetPinBroadcast(ps)
}

// peerPinned reports whether another process holds a live pin record
// on the entry.
func (m *StorageManager) peerPinned(id string) bool {
	return m.pins != nil && m.pins.PeerPinned(id)
}

// RefreshShared folds other processes' committed entries into the local
// repository (a no-op for process-local stores); the driver calls it
// when an execution starts, so a cold process reuses what its peers
// stored without waiting for lease contention.
func (m *StorageManager) RefreshShared() {
	if m.durable != nil {
		m.durable.Refresh()
	}
}

// MaintainDurable runs post-execution durable upkeep: compacting the
// event log when enough records accumulated.
func (m *StorageManager) MaintainDurable() {
	if m.durable != nil {
		_ = m.durable.MaybeCompact()
	}
}

// Claim is one granted materialization right: the holder is the only
// execution allowed to materialize the output of the claimed plan
// fingerprint until it commits or aborts.
type Claim struct {
	fp    string
	owner string
	done  chan struct{}
	// entry is written by Commit before done closes; readers observe it
	// only after <-done.
	entry *Entry
	// lease is the cross-process lease backing a won claim when lease
	// mode is on; released when the claim resolves. stopRenew halts the
	// holder-side heartbeat that keeps the lease alive while the
	// materialization outlives the TTL.
	lease     *Lease
	stopRenew func()
}

// Fingerprint returns the claimed plan fingerprint.
func (c *Claim) Fingerprint() string { return c.fp }

// Owner returns the query ID the claim was granted to.
func (c *Claim) Owner() string { return c.owner }

// Wait blocks until the claim resolves or ctx is cancelled. It returns
// the committed entry, nil if the winner aborted without committing, or
// ctx.Err().
func (c *Claim) Wait(ctx context.Context) (*Entry, error) {
	select {
	case <-c.done:
		return c.entry, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TryClaim grants the fingerprint to owner if it is unclaimed. It
// returns (claim, true) when the caller won and must later Commit or
// Abort it, or (other holder's claim, false) for the caller to Wait on.
//
// In lease mode (SetDurable with a LeaseManager), winning the local
// claim table is necessary but not sufficient: the fingerprint's DFS
// lease must be acquired too. When another process holds it, the local
// claim stays registered — queued local queries wait on it as usual —
// and a relay goroutine resolves it when the remote holder finishes:
// with the holder's committed entry (read from the shared log) exactly
// as if a local winner had committed, or as an abort when the holder
// released (or its lease expired) without a matching entry.
func (m *StorageManager) TryClaim(fp, owner string) (*Claim, bool) {
	m.mu.Lock()
	if c := m.claims[fp]; c != nil {
		m.mu.Unlock()
		return c, false
	}
	c := &Claim{fp: fp, owner: owner, done: make(chan struct{})}
	m.claims[fp] = c
	m.mu.Unlock()
	if m.leases != nil {
		lease, ok := m.leases.TryAcquire(fp)
		if !ok {
			// Lost to another process: a relay goroutine watches the
			// holder's lease and resolves this claim from the shared
			// log when it frees.
			m.leaseWaits.Add(1)
			go m.relayRemote(c)
			return c, false
		}
		// Won — but a peer may have materialized this fingerprint and
		// released its lease since our last refresh. Fold the log and
		// re-check before claiming the right to materialize: if the
		// entry already exists, resolve the claim with it immediately
		// (the caller re-rewrites against it, as a lease waiter would).
		if m.durable != nil {
			m.durable.Refresh()
			if e := m.repo.lookupFP(fp); e != nil && m.repo.Valid(e, m.fs) {
				m.leases.Release(lease)
				m.leaseShared.Add(1)
				m.Commit(c, e)
				return c, false
			}
		}
		c.lease = lease
		// Heartbeat the lease while the materialization runs: a live
		// holder slower than the TTL keeps its lease; a dead one stops
		// renewing and is taken over as before.
		c.stopRenew = m.leases.KeepAlive(lease)
	}
	m.claimsGranted.Add(1)
	return c, true
}

// relayRemote resolves a claim whose fingerprint another process is
// materializing: wait for the holder's lease to free (or expire), fold
// its log records into the local repository, and commit the claim with
// the entry it published — or abort, sending waiters back through their
// fallback policy.
func (m *StorageManager) relayRemote(c *Claim) {
	_ = m.leases.WaitFree(context.Background(), c.fp)
	if m.durable != nil {
		m.durable.Refresh()
	}
	if e := m.repo.lookupFP(c.fp); e != nil && m.repo.Valid(e, m.fs) {
		m.leaseShared.Add(1)
		m.Commit(c, e)
		return
	}
	m.Abort(c)
}

// Commit resolves a won claim with the entry the winner registered;
// waiters wake and reuse it. The entry itself is already in the
// repository (the driver inserts at registration time), and — when
// durability is on — so is its log record: the journal appends inside
// Insert, so by the time the lease releases here, a remote waiter's
// refresh is guaranteed to see the entry.
func (m *StorageManager) Commit(c *Claim, e *Entry) {
	m.release(c)
	c.entry = e
	close(c.done)
	m.claimsCommitted.Add(1)
}

// Abort resolves a won claim without an entry: the winner failed, was
// cancelled, or its output was rejected by the sub-job selector.
// Waiters wake and contend for the claim again (or proceed
// independently, per their fallback policy).
func (m *StorageManager) Abort(c *Claim) {
	m.release(c)
	close(c.done)
	m.claimsAborted.Add(1)
}

func (m *StorageManager) release(c *Claim) {
	m.mu.Lock()
	if m.claims[c.fp] == c {
		delete(m.claims, c.fp)
	}
	m.mu.Unlock()
	if c.stopRenew != nil {
		c.stopRenew()
		c.stopRenew = nil
	}
	if c.lease != nil && m.leases != nil {
		m.leases.Release(c.lease)
		c.lease = nil
	}
}

// WaitShared blocks on another execution's claim, recording the wait
// for StorageStats. A non-nil entry means the winner committed and the
// waiting execution will reuse its output.
func (m *StorageManager) WaitShared(ctx context.Context, c *Claim) (*Entry, error) {
	m.claimWaits.Add(1)
	e, err := c.Wait(ctx)
	if e != nil {
		m.claimReuses.Add(1)
	}
	return e, err
}

// EntryUsage is the eviction-relevant snapshot of one entry: its stored
// byte footprint and usage recency, captured under the repository lock.
// Policies must read the mutable usage fields (LastUse, TimesReused)
// from this snapshot, not from Entry, whose counters may be updated
// concurrently.
type EntryUsage struct {
	Entry       *Entry
	Bytes       int64
	LastUse     time.Duration // max(StoredAt, LastReused) at snapshot time
	TimesReused int
}

// EvictionPolicy selects repository entries to evict when the store
// exceeds its byte budget. Victims returns entry IDs in eviction order;
// reclaim is how many bytes must go to return under budget. The manager
// applies the whole list (skipping pinned entries), so a policy that
// wants to evict no more than necessary should bound its list by
// reclaim itself.
type EvictionPolicy interface {
	Name() string
	Victims(usage []EntryUsage, now time.Duration, reclaim int64) []string
}

// ReuseWindowPolicy is the paper's Rule 3 adapted to a budget: every
// entry idle longer than Window is evicted outright (most idle first),
// and if that alone does not reclaim enough, the least recently used of
// the remaining entries follow.
type ReuseWindowPolicy struct {
	Window time.Duration
}

// Name implements EvictionPolicy.
func (p ReuseWindowPolicy) Name() string { return "reuse-window" }

// Victims implements EvictionPolicy.
func (p ReuseWindowPolicy) Victims(usage []EntryUsage, now time.Duration, reclaim int64) []string {
	byIdle := append([]EntryUsage(nil), usage...)
	sort.SliceStable(byIdle, func(i, j int) bool { return byIdle[i].LastUse < byIdle[j].LastUse })
	var out []string
	var freed int64
	for _, u := range byIdle {
		expired := p.Window > 0 && now-u.LastUse > p.Window
		if !expired && freed >= reclaim {
			break
		}
		out = append(out, u.Entry.ID)
		freed += u.Bytes
	}
	return out
}

// LRUPolicy evicts the least recently used entries first — an entry's
// last use is when it was stored or last answered a rewrite — taking
// only as many as the reclaim target needs.
type LRUPolicy struct{}

// Name implements EvictionPolicy.
func (LRUPolicy) Name() string { return "lru" }

// Victims implements EvictionPolicy.
func (LRUPolicy) Victims(usage []EntryUsage, now time.Duration, reclaim int64) []string {
	byUse := append([]EntryUsage(nil), usage...)
	sort.SliceStable(byUse, func(i, j int) bool { return byUse[i].LastUse < byUse[j].LastUse })
	var out []string
	var freed int64
	for _, u := range byUse {
		if freed >= reclaim {
			break
		}
		out = append(out, u.Entry.ID)
		freed += u.Bytes
	}
	return out
}

// CostBenefitPolicy evicts the entries with the least reuse benefit per
// stored byte first: an entry's benefit is its Rule 2 input/output
// ratio (EntryStats.ioRatio) weighted by how often it has answered a
// rewrite, divided by the bytes it occupies.
type CostBenefitPolicy struct{}

// Name implements EvictionPolicy.
func (CostBenefitPolicy) Name() string { return "cost-benefit" }

// Victims implements EvictionPolicy.
func (CostBenefitPolicy) Victims(usage []EntryUsage, now time.Duration, reclaim int64) []string {
	density := func(u EntryUsage) float64 {
		b := u.Bytes
		if b <= 0 {
			b = 1
		}
		return u.Entry.Stats.ioRatio() * float64(1+u.TimesReused) / float64(b)
	}
	byBenefit := append([]EntryUsage(nil), usage...)
	sort.SliceStable(byBenefit, func(i, j int) bool { return density(byBenefit[i]) < density(byBenefit[j]) })
	var out []string
	var freed int64
	for _, u := range byBenefit {
		if freed >= reclaim {
			break
		}
		out = append(out, u.Entry.ID)
		freed += u.Bytes
	}
	return out
}

// ParseEvictionPolicy resolves a policy by name ("reuse-window", "lru",
// "cost-benefit"); the reuse-window policy takes its window separately.
func ParseEvictionPolicy(name string, window time.Duration) (EvictionPolicy, bool) {
	switch name {
	case "reuse-window", "window":
		return ReuseWindowPolicy{Window: window}, true
	case "lru":
		return LRUPolicy{}, true
	case "cost-benefit", "costbenefit", "cb":
		return CostBenefitPolicy{}, true
	}
	return nil, false
}

// UsageBytes returns the bytes the repository currently retains: the
// total size of every distinct stored output.
func (m *StorageManager) UsageBytes() int64 {
	_, total := m.usage()
	return total
}

// usage snapshots per-entry usage and the distinct-path byte total
// (two entries can share one output path; it is stored once). Sizes
// come from each entry's version-stamped cache (Entry.storedBytes):
// stored outputs are leaf datasets the engine writes part files
// directly under, so after the first sweep an unchanged entry costs one
// version lookup instead of a sizing pass — EnforceBudget's
// loop-to-convergence re-snapshots repeatedly, and repositories with
// tens of thousands of entries sweep without touching the FS accounting
// for every entry every time.
func (m *StorageManager) usage() ([]EntryUsage, int64) {
	var out []EntryUsage
	seen := map[string]int64{}
	m.repo.Scan(func(e *Entry) bool {
		u := EntryUsage{Entry: e, Bytes: e.storedBytes(m.fs)}
		u.LastUse, u.TimesReused = e.StoredAt, e.TimesReused
		if e.LastReused > u.LastUse {
			u.LastUse = e.LastReused
		}
		out = append(out, u)
		seen[e.OutputPath] = u.Bytes
		return true
	})
	var total int64
	for _, b := range seen {
		total += b
	}
	return out, total
}

// EnforceBudget evicts entries per the configured policy until the
// retained bytes fit MaxBytes, sparing pinned entries; it returns the
// entries removed. Stored outputs are deleted from the DFS when the
// repository owns them (sub-job outputs) and no surviving entry still
// references the path; whole-job outputs are user- or temp-visible data
// the repository only points at, and are left for the janitor or the
// user.
func (m *StorageManager) EnforceBudget(now time.Duration) []*Entry {
	if m.maxBytes <= 0 {
		return nil
	}
	var all []*Entry
	for {
		usage, total := m.usage()
		if total <= m.maxBytes {
			break
		}
		// Pinned entries count against the budget but cannot be evicted;
		// offering them to the policy would let a pin stall convergence
		// (the policy would keep nominating victims the repository
		// refuses to drop). An entry a peer process has pinned is spared
		// the same way: its in-flight rewrite reads the stored output,
		// and this process's budget pass must not delete it out from
		// under them.
		candidates := usage[:0]
		for _, u := range usage {
			if !m.repo.pinned(u.Entry.ID) && !m.peerPinned(u.Entry.ID) {
				candidates = append(candidates, u)
			}
		}
		victims := m.policy.Victims(candidates, now, total-m.maxBytes)
		removed := m.repo.EvictUnpinned(victims)
		if len(removed) == 0 {
			break // everything left is pinned (or the policy yielded nothing)
		}
		m.deleteOwnedOutputs(removed)
		m.evictions.Add(int64(len(removed)))
		_, after := m.usage()
		m.evictedBytes.Add(total - after)
		all = append(all, removed...)
	}
	return all
}

// deleteOwnedOutputs removes the DFS outputs of evicted sub-job entries
// whose paths no surviving entry references. An entry still carrying a
// live peer pin record keeps its output: the entry itself may already
// be gone from this repository (vacuumed as invalid, or removed by a
// replayed record), but a peer's in-flight rewrite is reading the
// path, and its janitor will reclaim the bytes once the pin releases.
func (m *StorageManager) deleteOwnedOutputs(removed []*Entry) {
	stillRef := map[string]bool{}
	m.repo.Scan(func(e *Entry) bool {
		stillRef[e.OutputPath] = true
		return true
	})
	for _, e := range removed {
		if !e.WholeJob && !stillRef[e.OutputPath] && !m.peerPinned(e.ID) {
			_ = m.fs.Delete(e.OutputPath)
		}
	}
}

// SweepResult reports one storage sweep.
type SweepResult struct {
	// EntriesVacuumed counts entries removed by the validity and
	// reuse-window rules (Rules 3 and 4).
	EntriesVacuumed int
	// EntriesEvicted counts entries evicted by the budget policy.
	EntriesEvicted int
	// OrphanDatasets and OrphanBytes report dead per-query namespaces
	// reclaimed (janitor sweeps only).
	OrphanDatasets int
	OrphanBytes    int64
	// LeasesReaped counts expired cross-process lease records deleted
	// (janitor sweeps of a durable store only).
	LeasesReaped int
}

// Sweep runs one maintenance pass: Rule 4 (invalid entries), Rule 3
// (entries idle beyond window, when window > 0), then budget
// enforcement; on a durable store it also reaps expired cross-process
// leases (a crashed peer's in-flight claims) and compacts the event log
// when due. The driver calls it after executions that store or evict;
// the janitor calls it periodically with the orphan vacuum.
func (m *StorageManager) Sweep(now, window time.Duration) SweepResult {
	m.sweeps.Add(1)
	var res SweepResult
	vacuumed := m.repo.Vacuum(m.fs, now, window)
	res.EntriesVacuumed = len(vacuumed)
	m.deleteOwnedOutputs(vacuumed)
	res.EntriesEvicted = len(m.EnforceBudget(now))
	if m.leases != nil {
		res.LeasesReaped = m.leases.ReapExpired()
	}
	if m.pins != nil {
		// Heartbeat our own pin records and clear crashed peers' — the
		// same liveness discipline leases get, applied to pins.
		m.pins.RenewHeld()
		m.pins.ReapExpired()
	}
	m.MaintainDurable()
	return res
}

// VacuumOrphans deletes the per-query DFS namespaces (the
// restore/<qid>/… and tmp/<qid>/… trees under the configured namespace
// root) of queries that are neither live nor referenced by any
// repository entry: the sub-job outputs and staged temporaries of
// cancelled or failed queries, and the unreferenced inter-job
// temporaries of completed ones. Datasets outside the managed
// namespaces are never touched.
//
// live is consulted immediately before each delete and must answer
// from BOTH a snapshot taken before this call and the current
// registry: the early snapshot protects a query that registered
// entries and completed after it (its roots are collected here, which
// is newer), and the at-delete check protects a query submitted after
// the snapshot whose namespace is being written right now.
func (m *StorageManager) VacuumOrphans(live func(queryID string) bool) (int, int64) {
	var roots []string
	m.repo.Scan(func(e *Entry) bool {
		roots = append(roots, cleanPath(e.OutputPath))
		for p := range e.InputVersions {
			roots = append(roots, cleanPath(p))
		}
		return true
	})
	referenced := func(ds string) bool {
		for _, r := range roots {
			if ds == r || strings.HasPrefix(ds, r+"/") || strings.HasPrefix(r, ds+"/") {
				return true
			}
		}
		return false
	}
	var count int
	var bytes int64
	for _, ns := range m.namespaces() {
		for _, ds := range m.fs.Datasets(ns) {
			qid := queryIDUnder(ns, ds)
			if qid == "" || live(qid) || referenced(ds) {
				continue
			}
			if m.queryPrefix != "" && !strings.HasPrefix(qid, m.queryPrefix) {
				continue // another process's query; its own janitor decides
			}
			n := m.fs.Size(ds)
			if m.fs.Delete(ds) == nil {
				count++
				bytes += n
			}
		}
	}
	m.orphanDatasets.Add(int64(count))
	m.orphanBytes.Add(bytes)
	return count, bytes
}

// queryIDUnder extracts the query ID from a dataset path inside
// namespace ns ("<ns>/q3/j1/op2" → "q3"); "" when the dataset is the
// namespace itself or lies outside it.
func queryIDUnder(ns, ds string) string {
	rel := strings.TrimPrefix(ds, ns+"/")
	if rel == ds || rel == "" {
		return ""
	}
	if i := strings.IndexByte(rel, '/'); i >= 0 {
		return rel[:i]
	}
	return rel
}

// cleanPath normalizes a stored path the way the DFS does.
func cleanPath(p string) string {
	return strings.TrimSuffix(strings.TrimPrefix(p, "/"), "/")
}

// StorageStats is a point-in-time snapshot of the storage manager.
type StorageStats struct {
	// Entries and UsageBytes describe the repository: how many outputs
	// it retains and their distinct-path byte total. BudgetBytes is the
	// configured cap (0 = unbounded) and Policy the eviction policy.
	Entries     int
	UsageBytes  int64
	BudgetBytes int64
	Policy      string

	// Claim protocol counters. ActiveClaims is the current in-flight
	// count; Granted/Committed/Aborted are cumulative. Waits counts
	// executions that blocked on another query's claim, and Shared how
	// many of those woke to a committed entry they then reused.
	ActiveClaims    int
	ClaimsGranted   int64
	ClaimsCommitted int64
	ClaimsAborted   int64
	ClaimWaits      int64
	ClaimsShared    int64

	// Cross-process lease counters (durable stores only). LeaseWaits
	// counts claims lost to another process's lease; LeasesShared how
	// many of those resolved to that process's committed entry, reused
	// here instead of re-materialized. Leases carries the lease
	// manager's own counters (grants, takeovers, reaps, fencing).
	LeaseWaits   int64
	LeasesShared int64
	Leases       LeaseStats

	// Eviction and janitor counters.
	Evictions      int64
	EvictedBytes   int64
	Sweeps         int64
	OrphanDatasets int64
	OrphanBytes    int64
}

// Stats snapshots the manager's counters and current usage.
func (m *StorageManager) Stats() StorageStats {
	m.mu.Lock()
	active := len(m.claims)
	m.mu.Unlock()
	st := StorageStats{
		Entries:         m.repo.Len(),
		UsageBytes:      m.UsageBytes(),
		BudgetBytes:     m.maxBytes,
		Policy:          m.policy.Name(),
		ActiveClaims:    active,
		ClaimsGranted:   m.claimsGranted.Load(),
		ClaimsCommitted: m.claimsCommitted.Load(),
		ClaimsAborted:   m.claimsAborted.Load(),
		ClaimWaits:      m.claimWaits.Load(),
		ClaimsShared:    m.claimReuses.Load(),
		LeaseWaits:      m.leaseWaits.Load(),
		LeasesShared:    m.leaseShared.Load(),
		Evictions:       m.evictions.Load(),
		EvictedBytes:    m.evictedBytes.Load(),
		Sweeps:          m.sweeps.Load(),
		OrphanDatasets:  m.orphanDatasets.Load(),
		OrphanBytes:     m.orphanBytes.Load(),
	}
	if m.leases != nil {
		st.Leases = m.leases.Stats()
	}
	return st
}
