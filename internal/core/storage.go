package core

import (
	"context"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dfs"
)

// StorageManager is the active half of the repository: where Repository
// is a passive ordered map of stored outputs, the manager owns the
// policies that make those outputs a shared, bounded resource across
// concurrent queries. It provides three services:
//
//   - The claim protocol. Before materializing a sub-job output, an
//     execution claims the output's plan fingerprint; a concurrent
//     execution hitting a claimed fingerprint blocks (context-aware)
//     until the winner commits, then reuses the freshly committed entry
//     instead of materializing its own copy. Duplicate cross-query work
//     becomes in-flight sharing.
//
//   - Byte-budgeted eviction. MaxBytes bounds the bytes the repository
//     retains; when an execution or the janitor sweeps while over
//     budget, the configured EvictionPolicy picks victims. Evictions
//     run under the repository's pin machinery, so entries referenced
//     by in-flight rewrites are never deleted.
//
//   - Orphan reclamation. VacuumOrphans deletes per-query DFS
//     namespaces (restore/<qid>, tmp/<qid>) whose query is no longer
//     in flight and whose data no repository entry references — the
//     debris of cancelled and failed queries, and the unreferenced
//     temporaries of completed ones.
//
// All methods are safe for concurrent use.
type StorageManager struct {
	repo     *Repository
	fs       *dfs.FS
	maxBytes int64
	policy   EvictionPolicy

	// nsRoot is the root the managed per-query namespaces live under:
	// "" (the legacy layout) reserves the top-level "restore/" and
	// "tmp/" prefixes for the janitor's orphan sweep; a non-empty root
	// confines them to "<root>/restore" and "<root>/tmp", so user
	// datasets that happen to be named under "tmp/" or "restore/" are
	// never reclaimed. Set once at construction, before any sweep.
	nsRoot string

	mu     sync.Mutex
	claims map[string]*Claim

	// Counters for StorageStats, all monotonic.
	claimsGranted   atomic.Int64
	claimsCommitted atomic.Int64
	claimsAborted   atomic.Int64
	claimWaits      atomic.Int64
	claimReuses     atomic.Int64
	evictions       atomic.Int64
	evictedBytes    atomic.Int64
	sweeps          atomic.Int64
	orphanDatasets  atomic.Int64
	orphanBytes     atomic.Int64
}

// NewStorageManager returns a manager over the repository and file
// system. maxBytes <= 0 disables budget enforcement; a nil policy
// defaults to CostBenefitPolicy when a budget is set.
func NewStorageManager(repo *Repository, fs *dfs.FS, maxBytes int64, policy EvictionPolicy) *StorageManager {
	if policy == nil {
		policy = CostBenefitPolicy{}
	}
	return &StorageManager{
		repo:     repo,
		fs:       fs,
		maxBytes: maxBytes,
		policy:   policy,
		claims:   map[string]*Claim{},
	}
}

// Repo returns the managed repository.
func (m *StorageManager) Repo() *Repository { return m.repo }

// SetNamespaceRoot confines the janitor's reserved namespaces to
// "<root>/restore" and "<root>/tmp" (the driver writes its per-query
// data there when configured with the same root). Call it once at
// construction, before any sweep; the empty root keeps the legacy
// top-level "restore/"+"tmp/" layout.
func (m *StorageManager) SetNamespaceRoot(root string) {
	m.nsRoot = cleanPath(root)
}

// namespaces returns the managed per-query namespace roots the orphan
// sweep may reclaim under.
func (m *StorageManager) namespaces() []string {
	return []string{NamespacePath(m.nsRoot, "restore"), NamespacePath(m.nsRoot, "tmp")}
}

// NamespacePath joins a managed-namespace path under the (possibly
// empty) namespace root, normalizing the root. It is the single
// definition of the "<root>/restore/…"+"<root>/tmp/…" layout the
// driver writes under and the janitor's orphan sweep reclaims —
// every producer and consumer of managed paths must build them here,
// or a stray slash in a configured root would silently divorce the
// writer's layout from the sweeper's.
func NamespacePath(root string, parts ...string) string {
	p := cleanPath(root)
	for _, part := range parts {
		if p == "" {
			p = part
		} else {
			p += "/" + part
		}
	}
	return p
}

// MaxBytes returns the configured storage budget (0 = unbounded).
func (m *StorageManager) MaxBytes() int64 { return m.maxBytes }

// Claim is one granted materialization right: the holder is the only
// execution allowed to materialize the output of the claimed plan
// fingerprint until it commits or aborts.
type Claim struct {
	fp    string
	owner string
	done  chan struct{}
	// entry is written by Commit before done closes; readers observe it
	// only after <-done.
	entry *Entry
}

// Fingerprint returns the claimed plan fingerprint.
func (c *Claim) Fingerprint() string { return c.fp }

// Owner returns the query ID the claim was granted to.
func (c *Claim) Owner() string { return c.owner }

// Wait blocks until the claim resolves or ctx is cancelled. It returns
// the committed entry, nil if the winner aborted without committing, or
// ctx.Err().
func (c *Claim) Wait(ctx context.Context) (*Entry, error) {
	select {
	case <-c.done:
		return c.entry, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TryClaim grants the fingerprint to owner if it is unclaimed. It
// returns (claim, true) when the caller won and must later Commit or
// Abort it, or (other holder's claim, false) for the caller to Wait on.
func (m *StorageManager) TryClaim(fp, owner string) (*Claim, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c := m.claims[fp]; c != nil {
		return c, false
	}
	c := &Claim{fp: fp, owner: owner, done: make(chan struct{})}
	m.claims[fp] = c
	m.claimsGranted.Add(1)
	return c, true
}

// Commit resolves a won claim with the entry the winner registered;
// waiters wake and reuse it. The entry itself is already in the
// repository (the driver inserts at registration time).
func (m *StorageManager) Commit(c *Claim, e *Entry) {
	m.release(c)
	c.entry = e
	close(c.done)
	m.claimsCommitted.Add(1)
}

// Abort resolves a won claim without an entry: the winner failed, was
// cancelled, or its output was rejected by the sub-job selector.
// Waiters wake and contend for the claim again (or proceed
// independently, per their fallback policy).
func (m *StorageManager) Abort(c *Claim) {
	m.release(c)
	close(c.done)
	m.claimsAborted.Add(1)
}

func (m *StorageManager) release(c *Claim) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.claims[c.fp] == c {
		delete(m.claims, c.fp)
	}
}

// WaitShared blocks on another execution's claim, recording the wait
// for StorageStats. A non-nil entry means the winner committed and the
// waiting execution will reuse its output.
func (m *StorageManager) WaitShared(ctx context.Context, c *Claim) (*Entry, error) {
	m.claimWaits.Add(1)
	e, err := c.Wait(ctx)
	if e != nil {
		m.claimReuses.Add(1)
	}
	return e, err
}

// EntryUsage is the eviction-relevant snapshot of one entry: its stored
// byte footprint and usage recency, captured under the repository lock.
// Policies must read the mutable usage fields (LastUse, TimesReused)
// from this snapshot, not from Entry, whose counters may be updated
// concurrently.
type EntryUsage struct {
	Entry       *Entry
	Bytes       int64
	LastUse     time.Duration // max(StoredAt, LastReused) at snapshot time
	TimesReused int
}

// EvictionPolicy selects repository entries to evict when the store
// exceeds its byte budget. Victims returns entry IDs in eviction order;
// reclaim is how many bytes must go to return under budget. The manager
// applies the whole list (skipping pinned entries), so a policy that
// wants to evict no more than necessary should bound its list by
// reclaim itself.
type EvictionPolicy interface {
	Name() string
	Victims(usage []EntryUsage, now time.Duration, reclaim int64) []string
}

// ReuseWindowPolicy is the paper's Rule 3 adapted to a budget: every
// entry idle longer than Window is evicted outright (most idle first),
// and if that alone does not reclaim enough, the least recently used of
// the remaining entries follow.
type ReuseWindowPolicy struct {
	Window time.Duration
}

// Name implements EvictionPolicy.
func (p ReuseWindowPolicy) Name() string { return "reuse-window" }

// Victims implements EvictionPolicy.
func (p ReuseWindowPolicy) Victims(usage []EntryUsage, now time.Duration, reclaim int64) []string {
	byIdle := append([]EntryUsage(nil), usage...)
	sort.SliceStable(byIdle, func(i, j int) bool { return byIdle[i].LastUse < byIdle[j].LastUse })
	var out []string
	var freed int64
	for _, u := range byIdle {
		expired := p.Window > 0 && now-u.LastUse > p.Window
		if !expired && freed >= reclaim {
			break
		}
		out = append(out, u.Entry.ID)
		freed += u.Bytes
	}
	return out
}

// LRUPolicy evicts the least recently used entries first — an entry's
// last use is when it was stored or last answered a rewrite — taking
// only as many as the reclaim target needs.
type LRUPolicy struct{}

// Name implements EvictionPolicy.
func (LRUPolicy) Name() string { return "lru" }

// Victims implements EvictionPolicy.
func (LRUPolicy) Victims(usage []EntryUsage, now time.Duration, reclaim int64) []string {
	byUse := append([]EntryUsage(nil), usage...)
	sort.SliceStable(byUse, func(i, j int) bool { return byUse[i].LastUse < byUse[j].LastUse })
	var out []string
	var freed int64
	for _, u := range byUse {
		if freed >= reclaim {
			break
		}
		out = append(out, u.Entry.ID)
		freed += u.Bytes
	}
	return out
}

// CostBenefitPolicy evicts the entries with the least reuse benefit per
// stored byte first: an entry's benefit is its Rule 2 input/output
// ratio (EntryStats.ioRatio) weighted by how often it has answered a
// rewrite, divided by the bytes it occupies.
type CostBenefitPolicy struct{}

// Name implements EvictionPolicy.
func (CostBenefitPolicy) Name() string { return "cost-benefit" }

// Victims implements EvictionPolicy.
func (CostBenefitPolicy) Victims(usage []EntryUsage, now time.Duration, reclaim int64) []string {
	density := func(u EntryUsage) float64 {
		b := u.Bytes
		if b <= 0 {
			b = 1
		}
		return u.Entry.Stats.ioRatio() * float64(1+u.TimesReused) / float64(b)
	}
	byBenefit := append([]EntryUsage(nil), usage...)
	sort.SliceStable(byBenefit, func(i, j int) bool { return density(byBenefit[i]) < density(byBenefit[j]) })
	var out []string
	var freed int64
	for _, u := range byBenefit {
		if freed >= reclaim {
			break
		}
		out = append(out, u.Entry.ID)
		freed += u.Bytes
	}
	return out
}

// ParseEvictionPolicy resolves a policy by name ("reuse-window", "lru",
// "cost-benefit"); the reuse-window policy takes its window separately.
func ParseEvictionPolicy(name string, window time.Duration) (EvictionPolicy, bool) {
	switch name {
	case "reuse-window", "window":
		return ReuseWindowPolicy{Window: window}, true
	case "lru":
		return LRUPolicy{}, true
	case "cost-benefit", "costbenefit", "cb":
		return CostBenefitPolicy{}, true
	}
	return nil, false
}

// UsageBytes returns the bytes the repository currently retains: the
// total size of every distinct stored output.
func (m *StorageManager) UsageBytes() int64 {
	_, total := m.usage()
	return total
}

// usage snapshots per-entry usage and the distinct-path byte total
// (two entries can share one output path; it is stored once). Sizes
// come from each entry's version-stamped cache (Entry.storedBytes):
// stored outputs are leaf datasets the engine writes part files
// directly under, so after the first sweep an unchanged entry costs one
// version lookup instead of a sizing pass — EnforceBudget's
// loop-to-convergence re-snapshots repeatedly, and repositories with
// tens of thousands of entries sweep without touching the FS accounting
// for every entry every time.
func (m *StorageManager) usage() ([]EntryUsage, int64) {
	var out []EntryUsage
	seen := map[string]int64{}
	m.repo.Scan(func(e *Entry) bool {
		u := EntryUsage{Entry: e, Bytes: e.storedBytes(m.fs)}
		u.LastUse, u.TimesReused = e.StoredAt, e.TimesReused
		if e.LastReused > u.LastUse {
			u.LastUse = e.LastReused
		}
		out = append(out, u)
		seen[e.OutputPath] = u.Bytes
		return true
	})
	var total int64
	for _, b := range seen {
		total += b
	}
	return out, total
}

// EnforceBudget evicts entries per the configured policy until the
// retained bytes fit MaxBytes, sparing pinned entries; it returns the
// entries removed. Stored outputs are deleted from the DFS when the
// repository owns them (sub-job outputs) and no surviving entry still
// references the path; whole-job outputs are user- or temp-visible data
// the repository only points at, and are left for the janitor or the
// user.
func (m *StorageManager) EnforceBudget(now time.Duration) []*Entry {
	if m.maxBytes <= 0 {
		return nil
	}
	var all []*Entry
	for {
		usage, total := m.usage()
		if total <= m.maxBytes {
			break
		}
		// Pinned entries count against the budget but cannot be evicted;
		// offering them to the policy would let a pin stall convergence
		// (the policy would keep nominating victims the repository
		// refuses to drop).
		candidates := usage[:0]
		for _, u := range usage {
			if !m.repo.pinned(u.Entry.ID) {
				candidates = append(candidates, u)
			}
		}
		victims := m.policy.Victims(candidates, now, total-m.maxBytes)
		removed := m.repo.EvictUnpinned(victims)
		if len(removed) == 0 {
			break // everything left is pinned (or the policy yielded nothing)
		}
		m.deleteOwnedOutputs(removed)
		m.evictions.Add(int64(len(removed)))
		_, after := m.usage()
		m.evictedBytes.Add(total - after)
		all = append(all, removed...)
	}
	return all
}

// deleteOwnedOutputs removes the DFS outputs of evicted sub-job entries
// whose paths no surviving entry references.
func (m *StorageManager) deleteOwnedOutputs(removed []*Entry) {
	stillRef := map[string]bool{}
	m.repo.Scan(func(e *Entry) bool {
		stillRef[e.OutputPath] = true
		return true
	})
	for _, e := range removed {
		if !e.WholeJob && !stillRef[e.OutputPath] {
			_ = m.fs.Delete(e.OutputPath)
		}
	}
}

// SweepResult reports one storage sweep.
type SweepResult struct {
	// EntriesVacuumed counts entries removed by the validity and
	// reuse-window rules (Rules 3 and 4).
	EntriesVacuumed int
	// EntriesEvicted counts entries evicted by the budget policy.
	EntriesEvicted int
	// OrphanDatasets and OrphanBytes report dead per-query namespaces
	// reclaimed (janitor sweeps only).
	OrphanDatasets int
	OrphanBytes    int64
}

// Sweep runs one maintenance pass: Rule 4 (invalid entries), Rule 3
// (entries idle beyond window, when window > 0), then budget
// enforcement. The driver calls it after executions that store or
// evict; the janitor calls it periodically with the orphan vacuum.
func (m *StorageManager) Sweep(now, window time.Duration) SweepResult {
	m.sweeps.Add(1)
	var res SweepResult
	vacuumed := m.repo.Vacuum(m.fs, now, window)
	res.EntriesVacuumed = len(vacuumed)
	m.deleteOwnedOutputs(vacuumed)
	res.EntriesEvicted = len(m.EnforceBudget(now))
	return res
}

// VacuumOrphans deletes the per-query DFS namespaces (the
// restore/<qid>/… and tmp/<qid>/… trees under the configured namespace
// root) of queries that are neither live nor referenced by any
// repository entry: the sub-job outputs and staged temporaries of
// cancelled or failed queries, and the unreferenced inter-job
// temporaries of completed ones. Datasets outside the managed
// namespaces are never touched.
//
// live is consulted immediately before each delete and must answer
// from BOTH a snapshot taken before this call and the current
// registry: the early snapshot protects a query that registered
// entries and completed after it (its roots are collected here, which
// is newer), and the at-delete check protects a query submitted after
// the snapshot whose namespace is being written right now.
func (m *StorageManager) VacuumOrphans(live func(queryID string) bool) (int, int64) {
	var roots []string
	m.repo.Scan(func(e *Entry) bool {
		roots = append(roots, cleanPath(e.OutputPath))
		for p := range e.InputVersions {
			roots = append(roots, cleanPath(p))
		}
		return true
	})
	referenced := func(ds string) bool {
		for _, r := range roots {
			if ds == r || strings.HasPrefix(ds, r+"/") || strings.HasPrefix(r, ds+"/") {
				return true
			}
		}
		return false
	}
	var count int
	var bytes int64
	for _, ns := range m.namespaces() {
		for _, ds := range m.fs.Datasets(ns) {
			qid := queryIDUnder(ns, ds)
			if qid == "" || live(qid) || referenced(ds) {
				continue
			}
			n := m.fs.Size(ds)
			if m.fs.Delete(ds) == nil {
				count++
				bytes += n
			}
		}
	}
	m.orphanDatasets.Add(int64(count))
	m.orphanBytes.Add(bytes)
	return count, bytes
}

// queryIDUnder extracts the query ID from a dataset path inside
// namespace ns ("<ns>/q3/j1/op2" → "q3"); "" when the dataset is the
// namespace itself or lies outside it.
func queryIDUnder(ns, ds string) string {
	rel := strings.TrimPrefix(ds, ns+"/")
	if rel == ds || rel == "" {
		return ""
	}
	if i := strings.IndexByte(rel, '/'); i >= 0 {
		return rel[:i]
	}
	return rel
}

// cleanPath normalizes a stored path the way the DFS does.
func cleanPath(p string) string {
	return strings.TrimSuffix(strings.TrimPrefix(p, "/"), "/")
}

// StorageStats is a point-in-time snapshot of the storage manager.
type StorageStats struct {
	// Entries and UsageBytes describe the repository: how many outputs
	// it retains and their distinct-path byte total. BudgetBytes is the
	// configured cap (0 = unbounded) and Policy the eviction policy.
	Entries     int
	UsageBytes  int64
	BudgetBytes int64
	Policy      string

	// Claim protocol counters. ActiveClaims is the current in-flight
	// count; Granted/Committed/Aborted are cumulative. Waits counts
	// executions that blocked on another query's claim, and Shared how
	// many of those woke to a committed entry they then reused.
	ActiveClaims    int
	ClaimsGranted   int64
	ClaimsCommitted int64
	ClaimsAborted   int64
	ClaimWaits      int64
	ClaimsShared    int64

	// Eviction and janitor counters.
	Evictions      int64
	EvictedBytes   int64
	Sweeps         int64
	OrphanDatasets int64
	OrphanBytes    int64
}

// Stats snapshots the manager's counters and current usage.
func (m *StorageManager) Stats() StorageStats {
	m.mu.Lock()
	active := len(m.claims)
	m.mu.Unlock()
	return StorageStats{
		Entries:         m.repo.Len(),
		UsageBytes:      m.UsageBytes(),
		BudgetBytes:     m.maxBytes,
		Policy:          m.policy.Name(),
		ActiveClaims:    active,
		ClaimsGranted:   m.claimsGranted.Load(),
		ClaimsCommitted: m.claimsCommitted.Load(),
		ClaimsAborted:   m.claimsAborted.Load(),
		ClaimWaits:      m.claimWaits.Load(),
		ClaimsShared:    m.claimReuses.Load(),
		Evictions:       m.evictions.Load(),
		EvictedBytes:    m.evictedBytes.Load(),
		Sweeps:          m.sweeps.Load(),
		OrphanDatasets:  m.orphanDatasets.Load(),
		OrphanBytes:     m.orphanBytes.Load(),
	}
}
