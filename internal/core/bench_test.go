package core

import (
	"testing"

	"repro/internal/logical"
	"repro/internal/mrcompile"
	"repro/internal/piglatin"
)

func benchSig(b *testing.B, src string) PlanSig {
	b.Helper()
	script, err := piglatin.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	lp, err := logical.Build(script)
	if err != nil {
		b.Fatal(err)
	}
	wf, err := mrcompile.Compile(lp, mrcompile.Options{TempPrefix: "tmp/b", DefaultReducers: 2})
	if err != nil {
		b.Fatal(err)
	}
	return SigOf(wf.Jobs[0].Plan)
}

// BenchmarkMatchContainment measures one Algorithm 1 containment test:
// the paper's Q1 join plan against Q2's first job.
func BenchmarkMatchContainment(b *testing.B) {
	repo := benchSig(b, q1)
	in := benchSig(b, q2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := Match(repo, in); !ok {
			b.Fatal("expected containment")
		}
	}
}

// BenchmarkMatchReject measures the (common) negative case: a
// non-matching plan is rejected.
func BenchmarkMatchReject(b *testing.B) {
	repo := benchSig(b, `
A = load 'other' as (a, b);
B = foreach A generate a;
store B into 'o';
`)
	in := benchSig(b, q2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := Match(repo, in); ok {
			b.Fatal("unexpected match")
		}
	}
}

// BenchmarkFingerprint measures repository dedup hashing.
func BenchmarkFingerprint(b *testing.B) {
	sig := benchSig(b, q2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sig.Fingerprint()
	}
}

// BenchmarkParseCompile measures the full front end: Pig Latin text to
// a workflow of MapReduce jobs.
func BenchmarkParseCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		script, err := piglatin.Parse(q2)
		if err != nil {
			b.Fatal(err)
		}
		lp, err := logical.Build(script)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mrcompile.Compile(lp, mrcompile.Options{TempPrefix: "tmp/b", DefaultReducers: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
