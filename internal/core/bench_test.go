package core

import (
	"fmt"
	"testing"

	"repro/internal/dfs"
	"repro/internal/logical"
	"repro/internal/mrcompile"
	"repro/internal/obs"
	"repro/internal/physical"
	"repro/internal/piglatin"
)

func benchSig(b *testing.B, src string) PlanSig {
	b.Helper()
	script, err := piglatin.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	lp, err := logical.Build(script)
	if err != nil {
		b.Fatal(err)
	}
	wf, err := mrcompile.Compile(lp, mrcompile.Options{TempPrefix: "tmp/b", DefaultReducers: 2})
	if err != nil {
		b.Fatal(err)
	}
	return SigOf(wf.Jobs[0].Plan)
}

// BenchmarkMatchContainment measures one Algorithm 1 containment test:
// the paper's Q1 join plan against Q2's first job.
func BenchmarkMatchContainment(b *testing.B) {
	repo := benchSig(b, q1)
	in := benchSig(b, q2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := Match(repo, in); !ok {
			b.Fatal("expected containment")
		}
	}
}

// BenchmarkMatchReject measures the (common) negative case: a
// non-matching plan is rejected.
func BenchmarkMatchReject(b *testing.B) {
	repo := benchSig(b, `
A = load 'other' as (a, b);
B = foreach A generate a;
store B into 'o';
`)
	in := benchSig(b, q2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := Match(repo, in); ok {
			b.Fatal("unexpected match")
		}
	}
}

// BenchmarkFingerprint measures repository dedup hashing.
func BenchmarkFingerprint(b *testing.B) {
	sig := benchSig(b, q2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sig.Fingerprint()
	}
}

// rewriteBenchEnv is one prebuilt large-repository matching workload,
// cached across sub-benchmarks (building a 10k-entry repository is far
// more expensive than probing it).
type rewriteBenchEnv struct {
	fs    *dfs.FS
	repo  *Repository
	hit   *physical.Job // its filter prefix matches one mid-repository entry
	miss  *physical.Job // matches nothing: the matcher's common case
	bench func(b *testing.B, job *physical.Job, linear bool)
}

var rewriteEnvs = map[int]*rewriteBenchEnv{}

func rewriteEnv(b *testing.B, n int) *rewriteBenchEnv {
	b.Helper()
	if env := rewriteEnvs[n]; env != nil {
		return env
	}
	fs := dfs.New()
	repo := NewRepository()
	compileJob := func(src, prefix string) *physical.Job {
		script, err := piglatin.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		lp, err := logical.Build(script)
		if err != nil {
			b.Fatal(err)
		}
		wf, err := mrcompile.Compile(lp, mrcompile.Options{TempPrefix: prefix, DefaultReducers: 2})
		if err != nil {
			b.Fatal(err)
		}
		return wf.Jobs[0]
	}
	for i := 0; i < n; i++ {
		job := compileJob(fmt.Sprintf(`
A = load 'data/src%d' as (a, b, c);
B = filter A by a > %d;
store B into 'stored/e%d';
`, i, i, i), fmt.Sprintf("tmp/be%d", i))
		out := fmt.Sprintf("stored/e%d", i)
		if err := fs.WriteFile(out+"/part-00000", []byte("1\t2\t3\n")); err != nil {
			b.Fatal(err)
		}
		in := fmt.Sprintf("data/src%d", i)
		repo.Insert(&Entry{
			Plan:          SigOf(job.Plan),
			OutputPath:    out,
			InputVersions: map[string]int64{in: fs.Version(in)},
			// Rising I/O ratio keeps setup linear: each insert lands at
			// the front after one scan-order comparison.
			Stats: EntryStats{InputSimBytes: int64(1000 + i), OutputSimBytes: 100},
		})
	}
	env := &rewriteBenchEnv{
		fs:   fs,
		repo: repo,
		hit: compileJob(fmt.Sprintf(`
A = load 'data/src%d' as (a, b, c);
B = filter A by a > %d;
G = group B by b;
R = foreach G generate group, COUNT(B);
store R into 'out/hit';
`, n/2, n/2), "tmp/bhit"),
		miss: compileJob(`
A = load 'data/none' as (a, b, c);
B = filter A by a > 1;
G = group B by b;
R = foreach G generate group, COUNT(B);
store R into 'out/miss';
`, "tmp/bmiss"),
	}
	env.bench = func(b *testing.B, job *physical.Job, linear bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rw := &Rewriter{Repo: repo, FS: fs, LinearScan: linear}
			res := rw.findBestMatch(job, false, obs.NoSpan)
			if res != nil {
				repo.Unpin(res.Entry.ID)
			}
		}
	}
	rewriteEnvs[n] = env
	return env
}

// BenchmarkRewrite measures one matching pass against large
// repositories (1k and 10k entries), sequential scan vs signature
// index, for both a job that reuses one stored prefix (hit) and a job
// the repository cannot serve (miss — the common case under diverse
// traffic). The CI bench artifact tracks these numbers across PRs: the
// scan's cost must grow ~linearly from 1k to 10k entries while the
// indexed matcher's stays ~flat.
func BenchmarkRewrite(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		env := rewriteEnv(b, n)
		for _, cse := range []struct {
			name string
			job  *physical.Job
		}{{"hit", env.hit}, {"miss", env.miss}} {
			b.Run(fmt.Sprintf("scan/%s/%d", cse.name, n), func(b *testing.B) {
				env.bench(b, cse.job, true)
			})
			b.Run(fmt.Sprintf("indexed/%s/%d", cse.name, n), func(b *testing.B) {
				env.bench(b, cse.job, false)
			})
		}
	}
}

// BenchmarkParseCompile measures the full front end: Pig Latin text to
// a workflow of MapReduce jobs.
func BenchmarkParseCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		script, err := piglatin.Parse(q2)
		if err != nil {
			b.Fatal(err)
		}
		lp, err := logical.Build(script)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mrcompile.Compile(lp, mrcompile.Options{TempPrefix: "tmp/b", DefaultReducers: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
