package core

import (
	"testing"

	"repro/internal/dfs"
	"repro/internal/physical"
)

// buildRepoWith registers the given scripts' first jobs as entries
// whose outputs exist in the FS, returning the rewriter.
func buildRepoWith(t *testing.T, fs *dfs.FS, srcs ...string) *Rewriter {
	t.Helper()
	repo := NewRepository()
	for i, src := range srcs {
		sig := firstJobSig(t, src)
		out := "stored/e" + string(rune('a'+i))
		fs.WriteFile(out+"/part-00000", []byte("x\t1\n"))
		versions := map[string]int64{}
		for _, p := range sig.loadPaths() {
			if !fs.Exists(p) {
				fs.WriteFile(p+"/part-00000", []byte("x\t1\n"))
			}
			versions[p] = fs.Version(p)
		}
		repo.Insert(&Entry{
			Plan:          sig,
			OutputPath:    out,
			InputVersions: versions,
			Stats:         EntryStats{InputSimBytes: 100, OutputSimBytes: 10},
		})
	}
	// Entries registered after inputs were (possibly) created above may
	// have stale versions; refresh them all.
	for _, e := range repo.Entries() {
		for p := range e.InputVersions {
			e.InputVersions[p] = fs.Version(p)
		}
	}
	return &Rewriter{Repo: repo, FS: fs}
}

func TestRewriteReplacesPrefixWithLoad(t *testing.T) {
	fs := dfs.New()
	rw := buildRepoWith(t, fs, `
A = load 'x' as (a, b, c);
B = foreach A generate a, b;
store B into 'o';
`)
	wf := compileJobs(t, `
A = load 'x' as (a, b, c);
B = foreach A generate a, b;
C = filter B by b > 10;
store C into 'final';
`, "tmp/rw1")
	job := wf.Jobs[0]
	before := job.Plan.Len()
	events := rw.RewriteJob(job, false)
	if len(events) != 1 {
		t.Fatalf("events = %v", events)
	}
	if events[0].WholeJob {
		t.Errorf("prefix match misclassified as whole job")
	}
	if job.Plan.Len() >= before {
		t.Errorf("plan did not shrink: %d -> %d", before, job.Plan.Len())
	}
	// The rewritten plan must be Load(stored) -> Filter -> Store.
	var loads, filters, foreaches int
	for _, op := range job.Plan.Ops() {
		switch op.Kind {
		case physical.KLoad:
			loads++
			if op.Path != "stored/ea" {
				t.Errorf("load path = %q", op.Path)
			}
		case physical.KFilter:
			filters++
		case physical.KForEach:
			foreaches++
		}
	}
	if loads != 1 || filters != 1 || foreaches != 0 {
		t.Errorf("rewritten shape: loads=%d filters=%d foreaches=%d\n%s",
			loads, filters, foreaches, job.Plan)
	}
	if err := job.Plan.Validate(); err != nil {
		t.Fatalf("rewritten plan invalid: %v", err)
	}
}

func TestRewriteWholePlanClassification(t *testing.T) {
	fs := dfs.New()
	src := `
A = load 'x' as (a, b, c);
B = foreach A generate a, b;
store B into 'o';
`
	rw := buildRepoWith(t, fs, src)
	wf := compileJobs(t, src, "tmp/rw2")
	job := wf.Jobs[0]

	// allowWhole=false: no event at all (the only match is whole-plan).
	if events := rw.RewriteJob(job, false); len(events) != 0 {
		t.Fatalf("final job rewrote with whole-plan match: %v", events)
	}
	// allowWhole=true: whole-plan event, plan becomes a copy job.
	wf2 := compileJobs(t, src, "tmp/rw3")
	job2 := wf2.Jobs[0]
	events := rw.RewriteJob(job2, true)
	if len(events) != 1 || !events[0].WholeJob {
		t.Fatalf("events = %v", events)
	}
	if job2.Plan.Len() != 2 { // Load + Store
		t.Errorf("copy-job plan has %d ops:\n%s", job2.Plan.Len(), job2.Plan)
	}
}

func TestRewriteMultipleEntriesOneJob(t *testing.T) {
	// Two independent prefix entries (one per join branch) both rewrite
	// the same job via repeated scans.
	fs := dfs.New()
	rw := buildRepoWith(t, fs,
		`
A = load 'pv' as (u, r);
B = foreach A generate u, r;
store B into 'o1';
`,
		`
C = load 'users' as (n, p);
D = foreach C generate n;
store D into 'o2';
`)
	wf := compileJobs(t, `
A = load 'pv' as (u, r);
B = foreach A generate u, r;
C = load 'users' as (n, p);
D = foreach C generate n;
J = join D by n, B by u;
store J into 'final';
`, "tmp/rw4")
	job := wf.Jobs[0]
	events := rw.RewriteJob(job, false)
	if len(events) != 2 {
		t.Fatalf("expected both branch prefixes to rewrite, got %v", events)
	}
	// No ForEach should remain; both branches load stored projections.
	for _, op := range job.Plan.Ops() {
		if op.Kind == physical.KForEach {
			t.Errorf("projection survived rewriting:\n%s", job.Plan)
		}
	}
	if err := job.Plan.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}

func TestRewriteSkipsInvalidEntries(t *testing.T) {
	fs := dfs.New()
	rw := buildRepoWith(t, fs, `
A = load 'x' as (a, b, c);
B = foreach A generate a, b;
store B into 'o';
`)
	// Invalidate by touching the input dataset.
	fs.WriteFile("x/part-00001", []byte("y\t2\t3\n"))
	wf := compileJobs(t, `
A = load 'x' as (a, b, c);
B = foreach A generate a, b;
C = filter B by b > 1;
store C into 'f';
`, "tmp/rw5")
	if events := rw.RewriteJob(wf.Jobs[0], false); len(events) != 0 {
		t.Errorf("stale entry was used: %v", events)
	}
}

func TestRewriteTerminates(t *testing.T) {
	// A repository whose entry output equals a dataset the rewritten
	// plan then loads must not loop: rewriting a Load into the same
	// Load makes no progress and is rejected.
	fs := dfs.New()
	rw := buildRepoWith(t, fs, `
A = load 'x' as (a, b, c);
B = foreach A generate a, b;
store B into 'o';
`)
	wf := compileJobs(t, `
A = load 'x' as (a, b, c);
B = foreach A generate a, b;
G = group B by a;
S = foreach G generate group, COUNT(B);
store S into 'f';
`, "tmp/rw6")
	job := wf.Jobs[0]
	events := rw.RewriteJob(job, false)
	if len(events) != 1 {
		t.Fatalf("events = %v", events)
	}
	// Scanning again finds nothing new.
	if more := rw.RewriteJob(job, false); len(more) != 0 {
		t.Errorf("rewriting did not reach a fixpoint: %v", more)
	}
}
