package core

import (
	"os"
	"testing"

	"repro/internal/dfs"
)

// newTestFS returns the DFS backend the durability, lease and
// crash-injection suites run against: the in-memory FS by default, the
// on-disk backend in a per-test directory when RESTORE_TEST_BACKEND is
// "disk". The suites themselves are backend-agnostic — CI runs them
// once per backend.
func newTestFS(t testing.TB) dfs.Backend {
	if os.Getenv("RESTORE_TEST_BACKEND") == "disk" {
		d, err := dfs.OpenDisk(t.TempDir())
		if err != nil {
			t.Fatalf("OpenDisk: %v", err)
		}
		t.Cleanup(func() { d.Close() })
		return d
	}
	return dfs.New()
}
