package core

import (
	"sync"

	"repro/internal/dfs"
	"repro/internal/physical"
)

// Rewriter is ReStore's plan matcher and rewriter: for each MapReduce
// job of an input workflow it finds repository entries contained in the
// job's plan and rewrites the job to read their stored outputs instead
// of recomputing them.
//
// The matcher is indexed: each round probes the repository's signature
// index for the candidate entries whose footprint could be contained in
// the job (see planIndex), visits them in the Rules 1/2 preference
// order, and runs the full Algorithm 1 traversal only on those — so a
// match costs O(plan) probing plus a handful of traversals instead of a
// traversal per repository entry. LinearScan restores the paper's
// sequential scan; both modes choose identical entries.
//
// Failed containment tests are memoized for the Rewriter's lifetime —
// one driver submission — keyed by entry version and job-plan
// fingerprint, so the claim protocol's repeated re-rewrites of an
// unchanged plan skip straight past entries already rejected.
//
// Repository probes are internally synchronized, but RewriteJob mutates
// the job's plan in place: the caller must ensure no other goroutine
// touches the same job (the driver's DAG scheduler does this by
// rewriting each job under the workflow lock, after all of the job's
// producers have completed).
type Rewriter struct {
	Repo *Repository
	FS   dfs.Backend

	// LinearScan matches via the pre-index sequential repository scan
	// instead of the signature index. The probe filters only by
	// conditions necessary for containment and preserves scan order, so
	// the two modes are differential-tested to pick identical entries;
	// linear mode exists for that differential suite, the
	// matcher-scaling experiment and benchmarks, and as an escape
	// hatch.
	LinearScan bool

	// negMu guards neg, the submission-scoped memo of failed
	// containment tests. Entries are immutable — re-registration swaps
	// in a fresh pointer — so the entry pointer identifies exactly one
	// entry version, and a rewritten plan changes its fingerprint; a
	// stale negative can therefore never suppress a live match.
	negMu sync.Mutex
	neg   map[negKey]bool
}

// negKey identifies one memoized rejection: this entry version's plan
// is not contained in the job plan with this fingerprint.
type negKey struct {
	entry *Entry
	jobFP string
}

// negCached reports whether the containment test is known to fail.
func (rw *Rewriter) negCached(k negKey) bool {
	rw.negMu.Lock()
	defer rw.negMu.Unlock()
	return rw.neg[k]
}

// cacheNeg memoizes a failed containment test.
func (rw *Rewriter) cacheNeg(k negKey) {
	rw.negMu.Lock()
	defer rw.negMu.Unlock()
	if rw.neg == nil {
		rw.neg = map[negKey]bool{}
	}
	rw.neg[k] = true
}

// RewriteEvent records one applied rewrite for reporting.
type RewriteEvent struct {
	JobID     string
	EntryID   string
	Path      string
	WholeJob  bool
	OpsBefore int
	OpsAfter  int

	// entry is the matched repository entry, kept so the driver can
	// note reuse and unpin without re-scanning the repository by ID.
	entry *Entry
}

// RewriteJob rewrites one job in place to reuse repository outputs. It
// probes again after every successful rewrite (the paper's "a new
// sequential scan through the repository is started to look for more
// matches"), so several entries can contribute to one job — a rewrite
// changes the plan, and the fresh Load over a stored output can expose
// matches the previous round could not see. Each round costs one index
// probe, not a repository scan, and entries rejected against an
// unchanged plan earlier in the submission are skipped via the negative
// memo. It returns the rewrite events applied, with WholeJob set when
// an entry covered the entire job (the caller then drops the job and
// rewires its dependants).
//
// allowWhole permits whole-plan matches. The driver passes false for
// jobs writing a user STORE destination: a requested output is always
// freshly materialized, so final jobs reuse sub-plans only — which is
// why the paper evaluates whole-job reuse on multi-job workflows.
func (rw *Rewriter) RewriteJob(job *physical.Job, allowWhole bool) []RewriteEvent {
	var events []RewriteEvent
	for {
		res := rw.findBestMatch(job, allowWhole)
		if res == nil {
			return events
		}
		before := job.Plan.Len()
		if res.WholePlan {
			// Whole-job reuse: the caller removes the job; the plan is
			// also rewritten into Load(stored) -> Store as a fallback.
			applyRewrite(job.Plan, res)
			events = append(events, RewriteEvent{
				JobID: job.ID, EntryID: res.Entry.ID, Path: res.Entry.OutputPath,
				WholeJob: true, OpsBefore: before, OpsAfter: job.Plan.Len(),
				entry: res.Entry,
			})
			return events
		}
		applyRewrite(job.Plan, res)
		events = append(events, RewriteEvent{
			JobID: job.ID, EntryID: res.Entry.ID, Path: res.Entry.OutputPath,
			OpsBefore: before, OpsAfter: job.Plan.Len(),
			entry: res.Entry,
		})
	}
}

// findBestMatch returns the first valid entry contained in the job's
// plan, in repository preference order. Because candidates arrive
// ordered by Rules 1 and 2 (Section 3), the first match is the best
// match. The matched entry is pinned before the probe's read lock is
// released, so a concurrent Vacuum cannot delete its stored output
// before the rewritten job runs; the driver unpins when the execution
// finishes.
func (rw *Rewriter) findBestMatch(job *physical.Job, allowWhole bool) *MatchResult {
	jobSig := SigOf(job.Plan)
	jobFP := jobSig.Fingerprint()
	mainStoreInput := -1
	if st := job.MainStore(); st != nil && len(st.InputIDs) > 0 {
		mainStoreInput = st.InputIDs[0]
	}
	var found *MatchResult
	var visited, traversals, negHits int64
	visit := func(e *Entry) bool {
		visited++
		if !rw.Repo.Valid(e, rw.FS) {
			return true
		}
		// Validity is FS-dependent and never memoized; containment is a
		// pure function of the entry version and the job plan, so its
		// failures are. A whole-plan match skipped by allowWhole is not
		// a containment failure and must not be memoized either — the
		// same plan can recur with allowWhole true.
		k := negKey{entry: e, jobFP: jobFP}
		if rw.negCached(k) {
			negHits++
			return true
		}
		// The shared cross-query cache is consulted after the local memo
		// (which is free of locks shared with other submissions) and fed
		// on every rejection, so fleets of near-identical submissions
		// skip traversals their predecessors already paid for.
		if rw.Repo.sharedNegCached(k) {
			rw.cacheNeg(k)
			return true
		}
		traversals++
		res, ok := matchEntry(e, job.Plan, jobSig, mainStoreInput)
		if !ok {
			rw.cacheNeg(k)
			rw.Repo.cacheSharedNeg(k)
			return true
		}
		if res.WholePlan && !allowWhole {
			return true
		}
		rw.Repo.Pin(e.ID)
		found = res
		return false
	}
	if rw.LinearScan {
		rw.Repo.Scan(visit)
		rw.Repo.noteScan(visited)
	} else {
		rw.Repo.Probe(jobSig, visit)
	}
	rw.Repo.noteMatchWork(traversals, negHits, found != nil)
	return found
}

// applyRewrite replaces the matched region of the plan with a Load of
// the entry's stored output: every consumer of the frontier op is
// redirected to a new Load, and operators that no longer reach a Store
// are removed.
func applyRewrite(plan *physical.Plan, res *MatchResult) {
	newLoad := plan.Add(&physical.Op{Kind: physical.KLoad, Path: res.Entry.OutputPath})
	for _, op := range plan.Ops() {
		if op.ID == newLoad.ID {
			continue
		}
		for i, in := range op.InputIDs {
			if in == res.Frontier {
				op.InputIDs[i] = newLoad.ID
			}
		}
	}
	plan.RemoveDead()
}
