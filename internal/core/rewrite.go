package core

import (
	"sync"
	"time"

	"repro/internal/dfs"
	"repro/internal/obs"
	"repro/internal/physical"
)

// Rewriter is ReStore's plan matcher and rewriter: for each MapReduce
// job of an input workflow it finds repository entries contained in the
// job's plan and rewrites the job to read their stored outputs instead
// of recomputing them.
//
// The matcher is indexed: each round probes the repository's signature
// index for the candidate entries whose footprint could be contained in
// the job (see planIndex), visits them in the Rules 1/2 preference
// order, and runs the full Algorithm 1 traversal only on those — so a
// match costs O(plan) probing plus a handful of traversals instead of a
// traversal per repository entry. LinearScan restores the paper's
// sequential scan; both modes choose identical entries.
//
// Failed containment tests are memoized for the Rewriter's lifetime —
// one driver submission — keyed by entry version and job-plan
// fingerprint, so the claim protocol's repeated re-rewrites of an
// unchanged plan skip straight past entries already rejected.
//
// Repository probes are internally synchronized, but RewriteJob mutates
// the job's plan in place: the caller must ensure no other goroutine
// touches the same job (the driver's DAG scheduler does this by
// rewriting each job under the workflow lock, after all of the job's
// producers have completed).
type Rewriter struct {
	Repo *Repository
	FS   dfs.Backend

	// LinearScan matches via the pre-index sequential repository scan
	// instead of the signature index. The probe filters only by
	// conditions necessary for containment and preserves scan order, so
	// the two modes are differential-tested to pick identical entries;
	// linear mode exists for that differential suite, the
	// matcher-scaling experiment and benchmarks, and as an escape
	// hatch.
	LinearScan bool

	// Refresher, when non-nil, is invoked when the matcher's only
	// usable candidate is a stale entry whose inputs merely grew and
	// whose output is mergeable: it must run the delta sub-plan over
	// the appended input slice, merge it with the stored output, and
	// re-register the entry, returning the refreshed replacement (nil
	// when the refresh failed, which sends the job down the cold
	// path). It is called after the repository probe returns — never
	// under the repository lock — because it executes jobs and inserts
	// entries. The driver installs it.
	Refresher func(cand RefreshCandidate) *Entry

	// Trace, when non-nil, receives the matcher's decision provenance:
	// a probe span per matching round with one probe.candidate child
	// per entry considered, carrying its verdict (footprint-miss,
	// invalid, neg-cache, containment-fail, … win), and a reuse span
	// per rewrite applied. A nil Trace records nothing.
	Trace *obs.Trace
	// Metrics, when non-nil, receives each probe's wall latency. The
	// driver installs its Metrics; histograms record even when the
	// individual query is untraced.
	Metrics *obs.Metrics

	// negMu guards neg, the submission-scoped memo of failed
	// containment tests. Entries are immutable — re-registration swaps
	// in a fresh pointer — so the entry pointer identifies exactly one
	// entry version, and a rewritten plan changes its fingerprint; a
	// stale negative can therefore never suppress a live match.
	// noRefresh (same lock) marks entry versions whose refresh already
	// failed this submission, so one bad delta does not retry on every
	// probe round.
	negMu     sync.Mutex
	neg       map[negKey]bool
	noRefresh map[*Entry]bool
}

// RefreshCandidate hands the Refresher everything a delta refresh
// needs: the probing job (whose plan contains the entry's sub-plan —
// the entry itself stores only a signature DAG, so the executable
// delta plan is carved from the job via Match.Frontier), the
// containment result, and the per-input growth classifications listing
// exactly the appended files the delta must read.
type RefreshCandidate struct {
	Job    *physical.Job
	Match  *MatchResult
	Growth map[string]dfs.Growth
}

// negKey identifies one memoized rejection: this entry version's plan
// is not contained in the job plan with this fingerprint.
type negKey struct {
	entry *Entry
	jobFP string
}

// negCached reports whether the containment test is known to fail.
func (rw *Rewriter) negCached(k negKey) bool {
	rw.negMu.Lock()
	defer rw.negMu.Unlock()
	return rw.neg[k]
}

// cacheNeg memoizes a failed containment test.
func (rw *Rewriter) cacheNeg(k negKey) {
	rw.negMu.Lock()
	defer rw.negMu.Unlock()
	if rw.neg == nil {
		rw.neg = map[negKey]bool{}
	}
	rw.neg[k] = true
}

// refreshBlocked reports whether this entry version's refresh already
// failed in this submission.
func (rw *Rewriter) refreshBlocked(e *Entry) bool {
	rw.negMu.Lock()
	defer rw.negMu.Unlock()
	return rw.noRefresh[e]
}

// blockRefresh marks this entry version as not worth re-attempting.
func (rw *Rewriter) blockRefresh(e *Entry) {
	rw.negMu.Lock()
	defer rw.negMu.Unlock()
	if rw.noRefresh == nil {
		rw.noRefresh = map[*Entry]bool{}
	}
	rw.noRefresh[e] = true
}

// refreshableGrowth classifies a stale entry's inputs against its
// stored base snapshots. It returns the growth set and true only when
// the entry could be delta-refreshed: it is mergeable, its own output
// is untouched, and every input whose version moved did so by pure
// append (at least one did).
func (rw *Rewriter) refreshableGrowth(e *Entry) (map[string]dfs.Growth, bool) {
	if e.Merge == nil || len(e.InputBases) == 0 || rw.refreshBlocked(e) {
		return nil, false
	}
	if !rw.FS.Exists(e.OutputPath) {
		return nil, false
	}
	if e.OutputVersion == 0 || rw.FS.Version(e.OutputPath) != e.OutputVersion {
		return nil, false
	}
	growth := map[string]dfs.Growth{}
	for p, v := range e.InputVersions {
		if rw.FS.Version(p) == v {
			continue
		}
		base, ok := e.InputBases[p]
		if !ok {
			return nil, false
		}
		g := dfs.Classify(rw.FS, p, base)
		switch g.Kind {
		case dfs.GrowthNone:
			// The version settled back between the two observations;
			// nothing to read for this input.
		case dfs.GrowthAppend:
			growth[p] = g
		default:
			return nil, false
		}
	}
	return growth, len(growth) > 0
}

// RewriteEvent records one applied rewrite for reporting.
type RewriteEvent struct {
	JobID     string
	EntryID   string
	Path      string
	WholeJob  bool
	OpsBefore int
	OpsAfter  int

	// entry is the matched repository entry, kept so the driver can
	// note reuse and unpin without re-scanning the repository by ID.
	entry *Entry
}

// RewriteJob rewrites one job in place to reuse repository outputs. It
// probes again after every successful rewrite (the paper's "a new
// sequential scan through the repository is started to look for more
// matches"), so several entries can contribute to one job — a rewrite
// changes the plan, and the fresh Load over a stored output can expose
// matches the previous round could not see. Each round costs one index
// probe, not a repository scan, and entries rejected against an
// unchanged plan earlier in the submission are skipped via the negative
// memo. It returns the rewrite events applied, with WholeJob set when
// an entry covered the entire job (the caller then drops the job and
// rewires its dependants).
//
// allowWhole permits whole-plan matches. The driver passes false for
// jobs writing a user STORE destination: a requested output is always
// freshly materialized, so final jobs reuse sub-plans only — which is
// why the paper evaluates whole-job reuse on multi-job workflows.
func (rw *Rewriter) RewriteJob(job *physical.Job, allowWhole bool) []RewriteEvent {
	return rw.RewriteJobTraced(job, allowWhole, obs.NoSpan)
}

// RewriteJobTraced is RewriteJob recording its probes and rewrites as
// spans under parent on the Rewriter's Trace. With a nil Trace it is
// exactly RewriteJob.
func (rw *Rewriter) RewriteJobTraced(job *physical.Job, allowWhole bool, parent obs.SpanID) []RewriteEvent {
	var events []RewriteEvent
	for {
		res := rw.findBestMatch(job, allowWhole, parent)
		if res == nil {
			return events
		}
		before := job.Plan.Len()
		rw.noteReuseSpan(parent, res)
		if res.WholePlan {
			// Whole-job reuse: the caller removes the job; the plan is
			// also rewritten into Load(stored) -> Store as a fallback.
			applyRewrite(job.Plan, res)
			events = append(events, RewriteEvent{
				JobID: job.ID, EntryID: res.Entry.ID, Path: res.Entry.OutputPath,
				WholeJob: true, OpsBefore: before, OpsAfter: job.Plan.Len(),
				entry: res.Entry,
			})
			return events
		}
		applyRewrite(job.Plan, res)
		events = append(events, RewriteEvent{
			JobID: job.ID, EntryID: res.Entry.ID, Path: res.Entry.OutputPath,
			OpsBefore: before, OpsAfter: job.Plan.Len(),
			entry: res.Entry,
		})
	}
}

// noteReuseSpan records one applied rewrite: which entry won and the
// stored input bytes reading its output avoids re-scanning.
func (rw *Rewriter) noteReuseSpan(parent obs.SpanID, res *MatchResult) {
	if rw.Trace == nil {
		return
	}
	span := rw.Trace.Start(parent, obs.KindReuse, res.Entry.ID)
	what := "sub-plan"
	if res.WholePlan {
		what = "whole job"
	}
	rw.Trace.Note(span, what)
	rw.Trace.Bytes(span, res.Entry.Stats.InputSimBytes, res.Entry.Stats.OutputSimBytes)
	rw.Trace.End(span)
}

// findBestMatch returns the first valid entry contained in the job's
// plan, in repository preference order. Because candidates arrive
// ordered by Rules 1 and 2 (Section 3), the first match is the best
// match. The matched entry is pinned before the probe's read lock is
// released, so a concurrent Vacuum cannot delete its stored output
// before the rewritten job runs; the driver unpins when the execution
// finishes.
func (rw *Rewriter) findBestMatch(job *physical.Job, allowWhole bool, parent obs.SpanID) *MatchResult {
	probeStart := time.Now()
	probeSpan := rw.Trace.Start(parent, obs.KindProbe, job.ID)
	jobSig := SigOf(job.Plan)
	jobFP := jobSig.Fingerprint()
	mainStoreInput := -1
	if st := job.MainStore(); st != nil && len(st.InputIDs) > 0 {
		mainStoreInput = st.InputIDs[0]
	}
	var found *MatchResult
	var refresh *RefreshCandidate
	var visited, traversals, negHits int64
	visit := func(e *Entry) bool {
		visited++
		refreshable := false
		var growth map[string]dfs.Growth
		if !rw.Repo.Valid(e, rw.FS) {
			// A stale entry whose inputs merely grew (and whose output
			// is mergeable) is still worth a containment test: if the
			// job contains it and nothing valid matches, the rewriter
			// delta-refreshes it instead of letting the job recompute
			// cold. Only the first such candidate is kept — it arrives
			// in preference order, like matches.
			if rw.Refresher == nil || refresh != nil {
				rw.Trace.Event(probeSpan, obs.KindCandidate, e.ID, obs.ReasonInvalid)
				return true
			}
			growth, refreshable = rw.refreshableGrowth(e)
			if !refreshable {
				rw.Trace.Event(probeSpan, obs.KindCandidate, e.ID, obs.ReasonInvalid)
				return true
			}
		}
		// Validity is FS-dependent and never memoized; containment is a
		// pure function of the entry version and the job plan, so its
		// failures are. A whole-plan match skipped by allowWhole is not
		// a containment failure and must not be memoized either — the
		// same plan can recur with allowWhole true.
		k := negKey{entry: e, jobFP: jobFP}
		if rw.negCached(k) {
			negHits++
			rw.Trace.Event(probeSpan, obs.KindCandidate, e.ID, obs.ReasonNegCache)
			return true
		}
		// The shared cross-query cache is consulted after the local memo
		// (which is free of locks shared with other submissions) and fed
		// on every rejection, so fleets of near-identical submissions
		// skip traversals their predecessors already paid for.
		if rw.Repo.sharedNegCached(k) {
			rw.cacheNeg(k)
			rw.Trace.Event(probeSpan, obs.KindCandidate, e.ID, obs.ReasonSharedNegCache)
			return true
		}
		traversals++
		res, ok := matchEntry(e, job.Plan, jobSig, mainStoreInput)
		if !ok {
			rw.cacheNeg(k)
			rw.Repo.cacheSharedNeg(k)
			rw.Trace.Event(probeSpan, obs.KindCandidate, e.ID, obs.ReasonContainmentFail)
			return true
		}
		if res.WholePlan && !allowWhole {
			rw.Trace.Event(probeSpan, obs.KindCandidate, e.ID, obs.ReasonWholePlanSkipped)
			return true
		}
		rw.Repo.Pin(e.ID)
		if refreshable {
			refresh = &RefreshCandidate{Job: job, Match: res, Growth: growth}
			rw.Trace.Event(probeSpan, obs.KindCandidate, e.ID, obs.ReasonRefreshCandidate)
			return true // keep scanning: a valid match beats a refresh
		}
		found = res
		rw.Trace.Event(probeSpan, obs.KindCandidate, e.ID, obs.ReasonWin)
		return false
	}
	if rw.LinearScan {
		rw.Repo.Scan(visit)
		rw.Repo.noteScan(visited)
	} else if rw.Trace == nil {
		rw.Repo.Probe(jobSig, visit)
	} else {
		// Traced probes additionally observe the entries the signature
		// index nominated but rejected on the footprint prefilter —
		// the provenance a linear scan has no notion of.
		rw.Repo.ProbeObserved(jobSig, visit, func(e *Entry) {
			rw.Trace.Event(probeSpan, obs.KindCandidate, e.ID, obs.ReasonFootprintMiss)
		})
	}
	rw.Metrics.ObserveProbe(time.Since(probeStart))
	rw.Trace.End(probeSpan)
	rw.Repo.noteMatchWork(traversals, negHits, found != nil)
	if found != nil {
		if refresh != nil {
			rw.Repo.Unpin(refresh.Match.Entry.ID)
		}
		return found
	}
	if refresh != nil {
		// Refresh outside the probe (the hook runs jobs and inserts
		// into the repository). The refreshed entry keeps its identity
		// — replacement preserves the ID — so the pin taken at match
		// time keeps protecting it; the containment mapping stays valid
		// because the job plan was not touched in between.
		if ne := rw.Refresher(*refresh); ne != nil {
			res := *refresh.Match
			res.Entry = ne
			return &res
		}
		rw.Repo.Unpin(refresh.Match.Entry.ID)
		rw.blockRefresh(refresh.Match.Entry)
	}
	return nil
}

// applyRewrite replaces the matched region of the plan with a Load of
// the entry's stored output: every consumer of the frontier op is
// redirected to a new Load, and operators that no longer reach a Store
// are removed.
func applyRewrite(plan *physical.Plan, res *MatchResult) {
	newLoad := plan.Add(&physical.Op{Kind: physical.KLoad, Path: res.Entry.OutputPath})
	for _, op := range plan.Ops() {
		if op.ID == newLoad.ID {
			continue
		}
		for i, in := range op.InputIDs {
			if in == res.Frontier {
				op.InputIDs[i] = newLoad.ID
			}
		}
	}
	plan.RemoveDead()
}
