package core

import (
	"repro/internal/dfs"
	"repro/internal/physical"
)

// Rewriter is ReStore's plan matcher and rewriter: for each MapReduce
// job of an input workflow it scans the repository in order and rewrites
// the job to read stored outputs instead of recomputing them.
//
// The repository scan itself is internally synchronized, but RewriteJob
// mutates the job's plan in place: the caller must ensure no other
// goroutine touches the same job (the driver's DAG scheduler does this
// by rewriting each job under the workflow lock, after all of the job's
// producers have completed).
type Rewriter struct {
	Repo *Repository
	FS   *dfs.FS
}

// RewriteEvent records one applied rewrite for reporting.
type RewriteEvent struct {
	JobID     string
	EntryID   string
	Path      string
	WholeJob  bool
	OpsBefore int
	OpsAfter  int

	// entry is the matched repository entry, kept so the driver can
	// note reuse and unpin without re-scanning the repository by ID.
	entry *Entry
}

// RewriteJob rewrites one job in place to reuse repository outputs. It
// repeats the sequential scan after every successful rewrite ("a new
// sequential scan through the repository is started to look for more
// matches"), so several entries can contribute to one job. It returns
// the rewrite events applied, with WholeJob set when an entry covered
// the entire job (the caller then drops the job and rewires its
// dependants).
//
// allowWhole permits whole-plan matches. The driver passes false for
// jobs writing a user STORE destination: a requested output is always
// freshly materialized, so final jobs reuse sub-plans only — which is
// why the paper evaluates whole-job reuse on multi-job workflows.
func (rw *Rewriter) RewriteJob(job *physical.Job, allowWhole bool) []RewriteEvent {
	var events []RewriteEvent
	for {
		res := rw.findFirstMatch(job, allowWhole)
		if res == nil {
			return events
		}
		before := job.Plan.Len()
		if res.WholePlan {
			// Whole-job reuse: the caller removes the job; the plan is
			// also rewritten into Load(stored) -> Store as a fallback.
			applyRewrite(job.Plan, res)
			events = append(events, RewriteEvent{
				JobID: job.ID, EntryID: res.Entry.ID, Path: res.Entry.OutputPath,
				WholeJob: true, OpsBefore: before, OpsAfter: job.Plan.Len(),
				entry: res.Entry,
			})
			return events
		}
		applyRewrite(job.Plan, res)
		events = append(events, RewriteEvent{
			JobID: job.ID, EntryID: res.Entry.ID, Path: res.Entry.OutputPath,
			OpsBefore: before, OpsAfter: job.Plan.Len(),
			entry: res.Entry,
		})
	}
}

// findFirstMatch scans the ordered repository for the first valid entry
// contained in the job's plan. Because the repository is ordered by
// Rules 1 and 2 (Section 3), the first match is the best match. The
// matched entry is pinned before the scan's read lock is released, so
// a concurrent Vacuum cannot delete its stored output before the
// rewritten job runs; the driver unpins when the execution finishes.
func (rw *Rewriter) findFirstMatch(job *physical.Job, allowWhole bool) *MatchResult {
	jobSig := SigOf(job.Plan)
	mainStoreInput := -1
	if st := job.MainStore(); st != nil && len(st.InputIDs) > 0 {
		mainStoreInput = st.InputIDs[0]
	}
	var found *MatchResult
	rw.Repo.Scan(func(e *Entry) bool {
		if !rw.Repo.Valid(e, rw.FS) {
			return true
		}
		res, ok := matchEntry(e, job.Plan, jobSig, mainStoreInput)
		if !ok {
			return true
		}
		if res.WholePlan && !allowWhole {
			return true
		}
		rw.Repo.Pin(e.ID)
		found = res
		return false
	})
	return found
}

// applyRewrite replaces the matched region of the plan with a Load of
// the entry's stored output: every consumer of the frontier op is
// redirected to a new Load, and operators that no longer reach a Store
// are removed.
func applyRewrite(plan *physical.Plan, res *MatchResult) {
	newLoad := plan.Add(&physical.Op{Kind: physical.KLoad, Path: res.Entry.OutputPath})
	for _, op := range plan.Ops() {
		if op.ID == newLoad.ID {
			continue
		}
		for i, in := range op.InputIDs {
			if in == res.Frontier {
				op.InputIDs[i] = newLoad.ID
			}
		}
	}
	plan.RemoveDead()
}
