package core

import (
	"sync"
	"sync/atomic"
)

// DefaultNegCacheSize bounds the cross-query negative-containment cache
// when no explicit size is configured.
const DefaultNegCacheSize = 4096

// negCache is the bounded, repository-wide memo of failed containment
// tests (the PR-4 follow-up): fleets of near-identical submissions —
// dashboards re-running the same script — re-test the same entries
// against the same job fingerprints, and the per-submission memo in
// Rewriter forgets every rejection when the submission ends. This cache
// carries them across queries.
//
// Soundness matches the per-submission memo's argument: a key pairs one
// entry *version* (entries are immutable; replacement swaps a fresh
// pointer) with one job-plan fingerprint (a pure function of the plan),
// so a cached rejection can never suppress a live match. Replacement
// and removal still invalidate eagerly so the bounded capacity is not
// wasted on dead entries.
//
// The structure is an LRU over a doubly linked list; all methods are
// nil-safe so a disabled cache costs one nil check.
type negCache struct {
	mu    sync.Mutex
	cap   int
	nodes map[negKey]*negNode
	// byEntry indexes keys by entry for O(keys-of-entry) invalidation.
	byEntry map[*Entry]map[string]struct{}
	// head is most recent, tail least; evictions pop the tail.
	head, tail *negNode

	hits      atomic.Int64
	evictions atomic.Int64
}

type negNode struct {
	key        negKey
	prev, next *negNode
}

func newNegCache(capacity int) *negCache {
	if capacity <= 0 {
		return nil
	}
	return &negCache{
		cap:     capacity,
		nodes:   map[negKey]*negNode{},
		byEntry: map[*Entry]map[string]struct{}{},
	}
}

// lookup reports whether the rejection is cached, refreshing its
// recency on a hit.
func (c *negCache) lookup(k negKey) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.nodes[k]
	if n == nil {
		return false
	}
	c.unlink(n)
	c.pushFront(n)
	c.hits.Add(1)
	return true
}

// add caches a rejection, evicting the least recently used one when the
// cache is full.
func (c *negCache) add(k negKey) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := c.nodes[k]; n != nil {
		c.unlink(n)
		c.pushFront(n)
		return
	}
	n := &negNode{key: k}
	c.nodes[k] = n
	c.pushFront(n)
	fps := c.byEntry[k.entry]
	if fps == nil {
		fps = map[string]struct{}{}
		c.byEntry[k.entry] = fps
	}
	fps[k.jobFP] = struct{}{}
	for len(c.nodes) > c.cap {
		victim := c.tail
		c.removeLocked(victim.key)
		c.evictions.Add(1)
	}
}

// invalidate drops every cached rejection of the entry — called under
// the repository lock when an entry is replaced or removed.
func (c *negCache) invalidate(e *Entry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for fp := range c.byEntry[e] {
		c.removeLocked(negKey{entry: e, jobFP: fp})
	}
}

// removeLocked unlinks and deletes one key (mu held).
func (c *negCache) removeLocked(k negKey) {
	n := c.nodes[k]
	if n == nil {
		return
	}
	c.unlink(n)
	delete(c.nodes, k)
	if fps := c.byEntry[k.entry]; fps != nil {
		delete(fps, k.jobFP)
		if len(fps) == 0 {
			delete(c.byEntry, k.entry)
		}
	}
}

func (c *negCache) unlink(n *negNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else if c.head == n {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else if c.tail == n {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *negCache) pushFront(n *negNode) {
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

// stats snapshots the cache counters for MatcherStats.
func (c *negCache) stats() (hits, evictions int64, size int) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	size = len(c.nodes)
	c.mu.Unlock()
	return c.hits.Load(), c.evictions.Load(), size
}
