package core

import (
	"testing"
	"time"

	"repro/internal/dfs"
)

// pinWorld builds the two-process pin scenario: two durable systems
// over one backend, each with a pin broadcaster on a shared test
// clock. B runs under a 1-byte budget so any unprotected entry is
// evicted on sight.
func pinWorld(t *testing.T) (fs dfs.Backend, repoA *Repository, mB *StorageManager, psA, psB *PinSet, dlB *DurableLog, clock *testClock) {
	fs = newTestFS(t)
	dlA, rA := openDurable(t, fs, "sys/repo")
	dlB, rB := openDurable(t, fs, "sys/repo")
	mA := NewStorageManager(rA, fs, 0, LRUPolicy{})
	mB = NewStorageManager(rB, fs, 1, LRUPolicy{})
	clock = newTestClock()
	psA = NewPinSet(fs, "sys/pins", dlA.Writer(), time.Minute)
	psB = NewPinSet(fs, "sys/pins", dlB.Writer(), time.Minute)
	psA.SetClock(clock.Now)
	psB.SetClock(clock.Now)
	mA.SetPins(psA)
	mB.SetPins(psB)
	return fs, rA, mB, psA, psB, dlB, clock
}

// TestPeerPinBlocksBudgetEviction: process A pins an entry (its
// rewrite is reading the stored output); process B's budget sweep must
// spare both the entry and the bytes until A unpins — then B's next
// sweep reclaims them.
func TestPeerPinBlocksBudgetEviction(t *testing.T) {
	fs, repoA, mB, _, _, dlB, _ := pinWorld(t)

	e := repoA.Insert(durableEntry(t, fs, indexCorpus[0], 0))
	dlB.Refresh()

	repoA.Pin(e.ID) // 0→1: broadcast to the shared namespace

	if removed := mB.EnforceBudget(time.Hour); len(removed) != 0 {
		t.Fatalf("B evicted %d entries a peer has pinned", len(removed))
	}
	if !fs.Exists(e.OutputPath) {
		t.Fatal("peer-pinned entry's stored output deleted")
	}

	repoA.Unpin(e.ID) // 1→0: broadcast withdrawn

	removed := mB.EnforceBudget(time.Hour)
	if len(removed) == 0 {
		t.Fatal("B never evicted after the peer unpinned")
	}
	if fs.Exists(e.OutputPath) {
		t.Fatal("evicted entry's output survived after the pin released")
	}
}

// TestCrashedPeerPinExpires: a pin whose owner died stops shielding
// the entry once its TTL passes, and the janitor-side reap deletes the
// stale record.
func TestCrashedPeerPinExpires(t *testing.T) {
	fs, repoA, mB, _, psB, dlB, clock := pinWorld(t)

	e := repoA.Insert(durableEntry(t, fs, indexCorpus[0], 0))
	dlB.Refresh()
	repoA.Pin(e.ID)
	// "A crashes": no RenewHeld ever runs; the record ages out.
	clock.Advance(2 * time.Minute)

	if psB.PeerPinned(e.ID) {
		t.Fatal("expired pin still counts as live")
	}
	if removed := mB.EnforceBudget(time.Hour); len(removed) == 0 {
		t.Fatal("B never evicted past an expired pin")
	}
	if n := psB.ReapExpired(); n == 0 {
		t.Fatal("expired pin record not reaped")
	}
}

// TestPinRenewalKeepsRecordLive: RenewHeld (the janitor's per-sweep
// refresh) pushes the expiry forward, so a long-held pin outlives many
// TTLs while its owner runs.
func TestPinRenewalKeepsRecordLive(t *testing.T) {
	fs, repoA, _, psA, psB, dlB, clock := pinWorld(t)

	e := repoA.Insert(durableEntry(t, fs, indexCorpus[0], 0))
	dlB.Refresh()
	repoA.Pin(e.ID)

	for i := 0; i < 5; i++ {
		clock.Advance(45 * time.Second) // under the TTL each step
		psA.RenewHeld()
	}
	if !psB.PeerPinned(e.ID) {
		t.Fatal("renewed pin expired despite heartbeats")
	}
	repoA.Unpin(e.ID)
	if psB.PeerPinned(e.ID) {
		t.Fatal("withdrawn pin still visible to the peer")
	}
}
