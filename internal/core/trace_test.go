package core

import (
	"testing"

	"repro/internal/dfs"
	"repro/internal/obs"
)

// traceFootprintSrc has the same filter shape as negProbeSrc but reads
// a different dataset: the signature index nominates it off the shared
// filter signature and the footprint prefilter rejects it (its load set
// is not contained in the probe's) — the one rejection a full
// containment traversal never sees.
const traceFootprintSrc = `
A = load 'y' as (a, b, c);
B = filter A by b > 10;
store B into 'fp_out';
`

// candidateReasons runs one traced RewriteJob and returns every
// probe.candidate event as entryID → reasons, plus the probe-span count.
func candidateReasons(t *testing.T, rw *Rewriter, src string, allowWhole bool) (map[string][]string, int) {
	t.Helper()
	tr := obs.NewTrace("q", false)
	root := tr.Start(obs.NoSpan, obs.KindSubmit, "q")
	rw.Trace = tr
	wf := compileJobs(t, src, "tmp/tr")
	job := cloneJob(wf.Jobs[0])
	for _, ev := range rw.RewriteJobTraced(job, allowWhole, root) {
		rw.Repo.Unpin(ev.EntryID)
	}
	tr.End(root)

	reasons := map[string][]string{}
	probes := 0
	var walk func(spans []*obs.SpanJSON)
	walk = func(spans []*obs.SpanJSON) {
		for _, sp := range spans {
			switch sp.Kind {
			case obs.KindProbe:
				probes++
			case obs.KindCandidate:
				reasons[sp.Ref] = append(reasons[sp.Ref], sp.Note)
			}
			walk(sp.Children)
		}
	}
	walk(tr.Snapshot().Spans)
	return reasons, probes
}

// TestRejectionReasons drives every matcher verdict through a crafted
// repository and asserts each one is emitted exactly where the decision
// actually happens.
func TestRejectionReasons(t *testing.T) {
	type scenario struct {
		name string
		// prepare seeds the repository (and optionally mutates the FS)
		// and returns the expected entryID → final reason.
		prepare    func(t *testing.T, fs dfs.Backend, repo *Repository, rw *Rewriter) map[string]string
		probe      string
		allowWhole bool
	}
	scenarios := []scenario{
		{
			name:  "footprint-miss",
			probe: negProbeSrc,
			prepare: func(t *testing.T, fs dfs.Backend, repo *Repository, rw *Rewriter) map[string]string {
				e := durableEntry(t, fs, traceFootprintSrc, 0)
				repo.Insert(e)
				return map[string]string{e.ID: obs.ReasonFootprintMiss}
			},
		},
		{
			name:  "containment-fail",
			probe: negProbeSrc,
			prepare: func(t *testing.T, fs dfs.Backend, repo *Repository, rw *Rewriter) map[string]string {
				e := durableEntry(t, fs, negEntrySrc, 1)
				repo.Insert(e)
				return map[string]string{e.ID: obs.ReasonContainmentFail}
			},
		},
		{
			name:  "neg-cache",
			probe: negProbeSrc,
			prepare: func(t *testing.T, fs dfs.Backend, repo *Repository, rw *Rewriter) map[string]string {
				e := durableEntry(t, fs, negEntrySrc, 2)
				repo.Insert(e)
				// The same rewriter pays the containment traversal once;
				// this probe must answer from its local memo.
				if rs, _ := candidateReasons(t, rw, negProbeSrc, true); rs[e.ID][0] != obs.ReasonContainmentFail {
					t.Fatalf("warmup verdict = %v", rs[e.ID])
				}
				return map[string]string{e.ID: obs.ReasonNegCache}
			},
		},
		{
			name:  "shared-neg-cache",
			probe: negProbeSrc,
			prepare: func(t *testing.T, fs dfs.Backend, repo *Repository, rw *Rewriter) map[string]string {
				e := durableEntry(t, fs, negEntrySrc, 3)
				repo.Insert(e)
				// A different rewriter pays the rejection; this one must
				// answer from the repository's shared cache.
				other := &Rewriter{Repo: repo, FS: fs}
				if rs, _ := candidateReasons(t, other, negProbeSrc, true); rs[e.ID][0] != obs.ReasonContainmentFail {
					t.Fatalf("warmup verdict = %v", rs[e.ID])
				}
				return map[string]string{e.ID: obs.ReasonSharedNegCache}
			},
		},
		{
			name:  "invalid",
			probe: negProbeSrc,
			prepare: func(t *testing.T, fs dfs.Backend, repo *Repository, rw *Rewriter) map[string]string {
				e := durableEntry(t, fs, negEntrySrc, 4)
				repo.Insert(e)
				// Overwriting the input bumps its version: the entry is
				// stale before any containment test runs.
				if err := fs.WriteFile("x/part-00000", []byte("1\t2\t3\n")); err != nil {
					t.Fatal(err)
				}
				return map[string]string{e.ID: obs.ReasonInvalid}
			},
		},
		{
			name:       "whole-plan-skipped",
			probe:      negProbeSrc,
			allowWhole: false,
			prepare: func(t *testing.T, fs dfs.Backend, repo *Repository, rw *Rewriter) map[string]string {
				e := durableEntry(t, fs, negProbeSrc, 5)
				repo.Insert(e)
				return map[string]string{e.ID: obs.ReasonWholePlanSkipped}
			},
		},
		{
			name:       "win",
			probe:      negProbeSrc,
			allowWhole: true,
			prepare: func(t *testing.T, fs dfs.Backend, repo *Repository, rw *Rewriter) map[string]string {
				e := durableEntry(t, fs, negProbeSrc, 6)
				repo.Insert(e)
				return map[string]string{e.ID: obs.ReasonWin}
			},
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			fs := dfs.New()
			repo := NewRepository()
			rw := &Rewriter{Repo: repo, FS: fs}
			want := sc.prepare(t, fs, repo, rw)
			got, probes := candidateReasons(t, rw, sc.probe, sc.allowWhole)
			if probes == 0 {
				t.Fatal("no probe span recorded")
			}
			for id, reason := range want {
				rs := got[id]
				if len(rs) == 0 {
					t.Fatalf("entry %s emitted no candidate event (got %v)", id, got)
				}
				if rs[0] != reason {
					t.Errorf("entry %s verdict = %v, want %s first", id, rs, reason)
				}
			}
		})
	}
}

// TestLinearScanNoFootprintMiss: the sequential scan has no signature
// index and so must never claim a footprint rejection — the same
// repository that footprint-misses under the index reports a
// containment failure when scanned linearly.
func TestLinearScanNoFootprintMiss(t *testing.T) {
	fs := dfs.New()
	repo := NewRepository()
	e := durableEntry(t, fs, traceFootprintSrc, 7)
	repo.Insert(e)
	rw := &Rewriter{Repo: repo, FS: fs, LinearScan: true}
	got, _ := candidateReasons(t, rw, negProbeSrc, true)
	rs := got[e.ID]
	if len(rs) == 0 {
		t.Fatalf("linear scan skipped the entry entirely: %v", got)
	}
	for _, r := range rs {
		if r == obs.ReasonFootprintMiss {
			t.Fatalf("linear scan reported a footprint miss: %v", rs)
		}
	}
}
