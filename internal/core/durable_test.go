package core

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/dfs"
)

// durableEntry builds one insertable entry from a corpus script, with a
// real stored output so it validates.
func durableEntry(t *testing.T, fs dfs.Backend, src string, i int) *Entry {
	t.Helper()
	sig := firstJobSig(t, src)
	out := fmt.Sprintf("stored/d%d", i)
	if err := fs.WriteFile(out+"/part-00000", []byte("x\t1\t2\n")); err != nil {
		t.Fatal(err)
	}
	vs := map[string]int64{}
	for _, p := range sig.loadPaths() {
		vs[p] = fs.Version(p)
	}
	return &Entry{
		Plan:          sig,
		OutputPath:    out,
		Stats:         EntryStats{InputSimBytes: int64(100 + 10*i), OutputSimBytes: int64(10 + i)},
		InputVersions: vs,
		StoredAt:      time.Duration(i) * time.Second,
	}
}

// entryKey flattens everything Probe answers depend on (and the usage
// stats persistence must carry) for equality checks.
func entryKey(e *Entry) string {
	return fmt.Sprintf("%s|%s|%s|%+v|%v|%d|%v|%v|%d|%d",
		e.ID, e.fingerprint(), e.OutputPath, e.Stats, e.WholeJob,
		len(e.InputVersions), e.StoredAt, e.LastReused, e.TimesReused, e.OutputVersion)
}

// repoState renders the whole repository in scan order.
func repoState(r *Repository) string {
	var b strings.Builder
	for _, e := range r.Entries() {
		b.WriteString(entryKey(e))
		b.WriteByte('\n')
	}
	return b.String()
}

// probeState renders the candidate lists the repository nominates for
// each probe job — the externally visible matcher behaviour.
func probeState(t *testing.T, r *Repository) string {
	t.Helper()
	var b strings.Builder
	for _, src := range indexProbes {
		sig := firstJobSig(t, src)
		r.Probe(sig, func(e *Entry) bool {
			b.WriteString(e.ID + "|" + e.fingerprint() + ";")
			return true
		})
		b.WriteByte('\n')
	}
	return b.String()
}

func openDurable(t *testing.T, fs dfs.Backend, root string) (*DurableLog, *Repository) {
	t.Helper()
	dl, repo, err := OpenDurableLog(fs, DurableConfig{Root: root, CompactEvery: -1})
	if err != nil {
		t.Fatalf("OpenDurableLog: %v", err)
	}
	return dl, repo
}

// TestDurablePrefixDurability is the append-durability contract: after
// every single acknowledged mutation — inserts, a replacement, a
// remove, an eviction, a vacuum — a cold recovery over the same DFS
// rebuilds exactly the acknowledged state, and nominates byte-identical
// Probe candidates, without decoding one stored plan.
func TestDurablePrefixDurability(t *testing.T) {
	fs := newTestFS(t)
	_, repo := openDurable(t, fs, "sys/repo")

	check := func(step string) {
		t.Helper()
		before := PlanDecodes()
		_, recovered := openDurable(t, fs, "sys/repo")
		if d := PlanDecodes() - before; d != 0 {
			t.Fatalf("%s: recovery decoded %d stored plans, want 0", step, d)
		}
		if got, want := repoState(recovered), repoState(repo); got != want {
			t.Fatalf("%s: recovered state diverged\n--- recovered ---\n%s--- live ---\n%s", step, got, want)
		}
		if got, want := probeState(t, recovered), probeState(t, repo); got != want {
			t.Fatalf("%s: recovered Probe answers diverged\n--- recovered ---\n%s--- live ---\n%s", step, got, want)
		}
	}

	var inserted []*Entry
	for i, src := range indexCorpus {
		inserted = append(inserted, repo.Insert(durableEntry(t, fs, src, i)))
		check(fmt.Sprintf("insert %d", i))
	}

	// Replacement: same fingerprint, refreshed stats and output.
	repl := durableEntry(t, fs, indexCorpus[0], 100)
	repl.Stats.InputSimBytes = 999
	repo.Insert(repl)
	check("replacement")

	repo.NoteReuse(inserted[2], 5*time.Second)
	// NoteReuse is deliberately unjournaled (usage counters are
	// advisory); journal the refreshed state via a no-op replacement so
	// the next check sees it.
	repo.Insert(durableEntry(t, fs, indexCorpus[2], 2))
	check("reuse+replace")

	repo.Remove(inserted[3].ID)
	check("remove")

	if removed := repo.EvictUnpinned([]string{inserted[4].ID}); len(removed) != 1 {
		t.Fatalf("evict removed %d entries", len(removed))
	}
	check("evict")

	// Vacuum: invalidate one entry's output, sweep it.
	if err := fs.Delete(inserted[5].OutputPath); err != nil {
		t.Fatal(err)
	}
	if removed := repo.Vacuum(fs, 0, 0); len(removed) != 1 {
		t.Fatalf("vacuum removed %d entries, want 1", len(removed))
	}
	check("vacuum")
}

// TestDurableCompactionCrashMatrix injects a crash at every compaction
// boundary — before the snapshot, before the manifest rename, between
// the rename and the log trim, mid-maintenance after the trim — and
// requires recovery to rebuild the exact pre-crash repository each
// time. "append" and "append-done" wedges cover the log-append
// boundaries: a record is either fully durable or never acknowledged.
func TestDurableCompactionCrashMatrix(t *testing.T) {
	points := []string{"compact-begin", "compact-manifest", "compact-rename", "compact-trim", "compact-done", "append-done"}
	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			fs := newTestFS(t)
			dl, repo := openDurable(t, fs, "sys/repo")
			for i, src := range indexCorpus {
				repo.Insert(durableEntry(t, fs, src, i))
			}
			repo.Remove(repo.Entries()[1].ID)
			want, wantProbe := repoState(repo), probeState(t, repo)

			crash := fmt.Errorf("injected crash")
			if point == "append-done" {
				// One more mutation; its record commits, then the crash
				// hits immediately after — the mutation must survive.
				dl.SetFailpoint(func(p string) error {
					if p == "append-done" {
						return crash
					}
					return nil
				})
				repo.Insert(durableEntry(t, fs, indexCorpus[1], 50))
				want, wantProbe = repoState(repo), probeState(t, repo)
			} else {
				dl.SetFailpoint(func(p string) error {
					if p == point {
						return crash
					}
					return nil
				})
				if err := dl.Compact(); err == nil {
					t.Fatalf("Compact with a %s crash returned nil error", point)
				}
			}
			if dl.Err() == nil {
				t.Fatalf("log not wedged after %s crash", point)
			}
			// Writes after the crash must be dropped, like a dead
			// process's would be.
			statsBefore := dl.Stats().Appends
			repo.Insert(durableEntry(t, fs, indexCorpus[2], 60))
			if dl.Stats().Appends != statsBefore {
				t.Fatalf("wedged log still appended")
			}

			before := PlanDecodes()
			_, recovered := openDurable(t, fs, "sys/repo")
			if d := PlanDecodes() - before; d != 0 {
				t.Fatalf("recovery decoded %d plans, want 0", d)
			}
			if got := repoState(recovered); got != want {
				t.Fatalf("recovered state diverged after %s crash\n--- recovered ---\n%s--- want ---\n%s", point, got, want)
			}
			if got := probeState(t, recovered); got != wantProbe {
				t.Fatalf("recovered Probe diverged after %s crash", point)
			}
		})
	}
}

// TestDurableCompactionFoldsLog: a clean compaction folds everything
// into the manifest, trims the log, and a recovery from manifest alone
// is identical; appends after the fold land in the fresh log tail.
func TestDurableCompactionFoldsLog(t *testing.T) {
	fs := newTestFS(t)
	dl, repo := openDurable(t, fs, "sys/repo")
	for i, src := range indexCorpus {
		repo.Insert(durableEntry(t, fs, src, i))
	}
	if err := dl.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if n := dl.Stats().LogRecords; n != 0 {
		t.Fatalf("log holds %d records after compaction, want 0", n)
	}
	want := repoState(repo)
	_, recovered := openDurable(t, fs, "sys/repo")
	if got := repoState(recovered); got != want {
		t.Fatalf("manifest-only recovery diverged\n%s\nvs\n%s", got, want)
	}

	// Post-fold appends replay over the manifest.
	repo.Insert(durableEntry(t, fs, indexCorpus[0], 70))
	repo.Remove(repo.Entries()[len(repo.Entries())-1].ID)
	want = repoState(repo)
	_, recovered = openDurable(t, fs, "sys/repo")
	if got := repoState(recovered); got != want {
		t.Fatalf("manifest+tail recovery diverged\n%s\nvs\n%s", got, want)
	}
}

// TestDurableTwoWritersConverge: two repositories journaling into one
// log see each other's inserts, replacements and removes after a
// refresh, and a writer that fell behind a peer's compaction resyncs
// from the manifest.
func TestDurableTwoWritersConverge(t *testing.T) {
	fs := newTestFS(t)
	dlA, repoA := openDurable(t, fs, "sys/repo")
	dlB, repoB := openDurable(t, fs, "sys/repo")
	if dlA.Writer() == dlB.Writer() {
		t.Fatalf("writer IDs collide: %s", dlA.Writer())
	}

	// Live peers converge on content; scan order is writer-local best
	// effort under concurrent appends (each peer applied the same
	// records, but interleaved with its own local inserts), so the
	// content comparison sorts. A fresh recovery from the shared log is
	// fully deterministic and is compared exactly below.
	sortedState := func(r *Repository) string {
		lines := strings.Split(strings.TrimSuffix(repoState(r), "\n"), "\n")
		sort.Strings(lines)
		return strings.Join(lines, "\n")
	}

	repoA.Insert(durableEntry(t, fs, indexCorpus[0], 0))
	repoB.Insert(durableEntry(t, fs, indexCorpus[1], 1))
	repoA.Insert(durableEntry(t, fs, indexCorpus[2], 2))
	dlA.Refresh()
	dlB.Refresh()
	if gotA, gotB := sortedState(repoA), sortedState(repoB); gotA != gotB {
		t.Fatalf("repos diverged after refresh\n--- A ---\n%s\n--- B ---\n%s", gotA, gotB)
	}
	if repoA.Len() != 3 {
		t.Fatalf("converged repo holds %d entries, want 3", repoA.Len())
	}
	// Two cold recoveries over the same log agree exactly, order
	// included.
	_, rec1 := openDurable(t, fs, "sys/repo")
	_, rec2 := openDurable(t, fs, "sys/repo")
	if repoState(rec1) != repoState(rec2) {
		t.Fatalf("two recoveries of one log diverged")
	}

	// A removes one of B's entries; B refreshes and agrees.
	victim := repoA.Entries()[0]
	repoA.Remove(victim.ID)
	dlB.Refresh()
	if sortedState(repoA) != sortedState(repoB) {
		t.Fatalf("repos diverged after cross-writer remove")
	}

	// A floods and compacts (trimming the log); B — behind the fold —
	// must resync from the manifest.
	for i, src := range indexCorpus[3:] {
		repoA.Insert(durableEntry(t, fs, src, 10+i))
	}
	if err := dlA.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	dlB.Refresh()
	if dlB.Stats().Resyncs == 0 {
		t.Fatalf("B never resynced from the manifest")
	}
	if repoState(repoA) != repoState(repoB) {
		t.Fatalf("repos diverged after compaction resync\n--- A ---\n%s--- B ---\n%s", repoState(repoA), repoState(repoB))
	}
}

// TestDurableLazyPlanDecode: recovered entries decode their plan only
// when a containment traversal touches them — Probe alone never does —
// and the decoded plan matches exactly like the original.
func TestDurableLazyPlanDecode(t *testing.T) {
	fs := newTestFS(t)
	_, repo := openDurable(t, fs, "sys/repo")
	for i, src := range indexCorpus {
		repo.Insert(durableEntry(t, fs, src, i))
	}
	liveRW := &Rewriter{Repo: repo, FS: fs}
	wf := compileJobs(t, q2, "tmp/lz")
	liveJob := cloneJob(wf.Jobs[0])
	liveEvents := liveRW.RewriteJob(liveJob, true)
	for _, ev := range liveEvents {
		repo.Unpin(ev.EntryID)
	}
	if len(liveEvents) == 0 {
		t.Fatal("live repository matched nothing; test premise broken")
	}

	before := PlanDecodes()
	_, recovered := openDurable(t, fs, "sys/repo")
	sig := firstJobSig(t, q2)
	n := 0
	recovered.Probe(sig, func(e *Entry) bool { n++; return true })
	if n == 0 {
		t.Fatal("recovered index nominated no candidates")
	}
	if d := PlanDecodes() - before; d != 0 {
		t.Fatalf("recovery+Probe decoded %d plans, want 0", d)
	}

	recRW := &Rewriter{Repo: recovered, FS: fs}
	recJob := cloneJob(wf.Jobs[0])
	recEvents := recRW.RewriteJob(recJob, true)
	for _, ev := range recEvents {
		recovered.Unpin(ev.EntryID)
	}
	if PlanDecodes() == before {
		t.Fatal("a full traversal on recovered entries decoded nothing")
	}
	if len(recEvents) != len(liveEvents) {
		t.Fatalf("recovered rewriter applied %d events, live %d", len(recEvents), len(liveEvents))
	}
	for i := range recEvents {
		if eventKey(recEvents[i]) != eventKey(liveEvents[i]) {
			t.Fatalf("event %d: recovered %s, live %s", i, eventKey(recEvents[i]), eventKey(liveEvents[i]))
		}
	}
	if recJob.Plan.String() != liveJob.Plan.String() {
		t.Fatalf("rewritten plans diverge:\n%s\nvs\n%s", recJob.Plan, liveJob.Plan)
	}
}

// TestLegacySnapshotGolden pins the legacy Save/LoadRepository format:
// a snapshot generated by an earlier build (checked in as a golden
// file) must keep loading byte-for-byte — entry identity, statistics,
// ordering and matchability included — no matter how the in-memory
// representation evolves.
func TestLegacySnapshotGolden(t *testing.T) {
	data, err := os.ReadFile("testdata/repo_legacy_v1.gob")
	if err != nil {
		t.Fatalf("golden fixture: %v", err)
	}
	fs := newTestFS(t)
	if err := fs.WriteFile("meta/repo", data); err != nil {
		t.Fatal(err)
	}
	repo, err := LoadRepository(fs, "meta/repo")
	if err != nil {
		t.Fatalf("LoadRepository on the golden snapshot: %v", err)
	}
	entries := repo.Entries()
	if len(entries) != 3 {
		t.Fatalf("golden snapshot loaded %d entries, want 3", len(entries))
	}
	byID := map[string]*Entry{}
	for _, e := range entries {
		byID[e.ID] = e
	}
	e1 := byID["e1"]
	if e1 == nil || e1.OutputPath != "stored/g0" || !e1.WholeJob {
		t.Fatalf("entry e1 = %+v, want whole-job stored/g0", e1)
	}
	if e1.Stats.InputSimBytes != 1000 || e1.Stats.OutputSimBytes != 100 {
		t.Fatalf("e1 stats = %+v", e1.Stats)
	}
	if byID["e2"] == nil || byID["e2"].OutputPath != "stored/g1" || byID["e3"] == nil {
		t.Fatalf("entries e2/e3 missing or misdecoded: %v", byID)
	}

	// The loaded plans still match: the projection entry is contained
	// in a probing job extending it.
	probe := firstJobSig(t, `
A = load 'page_views' as (user, timestamp, est_revenue, page_info, page_links);
B = foreach A generate user, est_revenue;
C = distinct B;
store C into 'golden_probe';
`)
	found := false
	repo.Probe(probe, func(e *Entry) bool {
		if e.ID == "e1" {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("golden entry e1 not nominated for a plan that contains it")
	}
	if _, ok := Match(e1.planSig(), probe); !ok {
		t.Fatal("golden entry e1 no longer matches a containing plan")
	}

	// Round trip: a re-save of the loaded repository stays loadable.
	if err := repo.Save(fs, "meta/repo2"); err != nil {
		t.Fatal(err)
	}
	again, err := LoadRepository(fs, "meta/repo2")
	if err != nil {
		t.Fatal(err)
	}
	if repoState(again) != repoState(repo) {
		t.Fatal("save/load round trip diverged from the golden state")
	}
}

// TestDurableLaggingWriterSkipsTrimmedSlots: a writer that fell behind
// a peer's compaction must not append into trimmed sequence slots —
// records there sit below the fold horizon where no replay ever looks,
// silently losing the acknowledged mutation. The lagging writer has to
// jump past the manifest's FoldedThrough and its record must reach
// every peer and every recovery.
func TestDurableLaggingWriterSkipsTrimmedSlots(t *testing.T) {
	fs := newTestFS(t)
	dlA, repoA := openDurable(t, fs, "sys/repo")
	_, repoB := openDurable(t, fs, "sys/repo")

	// A fills the log and folds+trims it; B has applied nothing.
	for i, src := range indexCorpus[:4] {
		repoA.Insert(durableEntry(t, fs, src, i))
	}
	if err := dlA.Compact(); err != nil {
		t.Fatal(err)
	}
	if n := dlA.Stats().LogRecords; n != 0 {
		t.Fatalf("log holds %d records after fold; premise broken", n)
	}

	// B — still at applied 0 — acknowledges an insert. Its record must
	// land above the fold horizon.
	e := repoB.Insert(durableEntry(t, fs, indexCorpus[5], 50))
	if e.logSeq <= dlA.Stats().AppliedSeq {
		t.Fatalf("lagging writer appended at seq %d, at or below the fold horizon %d", e.logSeq, dlA.Stats().AppliedSeq)
	}

	// A sees it on refresh, and a cold recovery sees everything.
	dlA.Refresh()
	if got := repoA.lookupFP(e.fingerprint()); got == nil {
		t.Fatal("peer never observed the lagging writer's insert")
	}
	_, recovered := openDurable(t, fs, "sys/repo")
	if recovered.Len() != 5 {
		t.Fatalf("recovery found %d entries, want 5", recovered.Len())
	}
	if recovered.lookupFP(e.fingerprint()) == nil {
		t.Fatal("recovery lost the lagging writer's insert")
	}
}
