package core

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/mapreduce"
	"repro/internal/physical"
)

// Options configure a Driver. The two independent switches mirror the
// paper's experiments: Reuse turns the plan matcher and rewriter on, and
// Heuristic selects sub-job materialization (storing can run without
// reuse — the "generating sub-jobs" configuration — and vice versa).
type Options struct {
	// Reuse enables matching and rewriting against the repository.
	Reuse bool
	// Heuristic selects sub-job enumeration (HeuristicOff disables it).
	Heuristic Heuristic
	// KeepWholeJobs registers every executed job's output in the
	// repository.
	KeepWholeJobs bool
	// AdmitOnlyReducing applies Section 5 Rule 1: keep a candidate only
	// when its output is smaller than its input.
	AdmitOnlyReducing bool
	// AdmitOnlyBeneficial applies Section 5 Rule 2: keep a candidate
	// only when Equation 1 predicts a reduction in execution time for
	// workflows reusing it — loading the stored output must be cheaper
	// than re-running the job that produced it.
	AdmitOnlyBeneficial bool
	// EvictionWindow applies Section 5 Rule 3 after each workflow: evict
	// entries not reused within this much simulated time (0 disables).
	EvictionWindow time.Duration
	// DeleteTemps removes inter-job temporaries after the workflow —
	// the "current practice" the paper improves on. It is forced off
	// whenever ReStore stores anything, since repository entries may
	// reference those files.
	DeleteTemps bool
}

// Result reports one workflow execution.
type Result struct {
	QueryID string
	// SimTime is the workflow completion time per the paper's
	// Equation 1 (critical path over the job DAG).
	SimTime  time.Duration
	WallTime time.Duration

	JobStats   []*mapreduce.JobStats
	JobsRun    int
	JobsReused int

	// Rewrites lists the repository reuses applied.
	Rewrites []RewriteEvent
	// Stored lists the repository entries registered by this execution.
	Stored []*Entry
	// ExtraStoredSimBytes totals the side outputs materialized by the
	// sub-job enumerator (the paper's Table 1 columns).
	ExtraStoredSimBytes int64
	// FinalOutputs maps each user STORE path to the dataset actually
	// holding the result (identity unless whole-job reuse redirected it).
	FinalOutputs map[string]string
}

// Driver executes workflows of MapReduce jobs through ReStore: it is the
// analogue of the paper's extension to Pig's JobControlCompiler. Jobs
// are processed in dependency order; each is matched and rewritten
// against the repository, has sub-job Stores injected per the
// heuristic, is executed, and has its outputs registered.
type Driver struct {
	Engine *mapreduce.Engine
	Repo   *Repository
	Opts   Options

	// Clock accumulates simulated time across executions; it drives the
	// reuse-window eviction rule.
	Clock time.Duration

	queryCounter int
}

// NewDriver returns a driver over the engine and repository.
func NewDriver(eng *mapreduce.Engine, repo *Repository, opts Options) *Driver {
	return &Driver{Engine: eng, Repo: repo, Opts: opts}
}

// storesAnything reports whether this configuration writes repository
// entries.
func (d *Driver) storesAnything() bool {
	return d.Opts.KeepWholeJobs || d.Opts.Heuristic != HeuristicOff
}

// Execute runs a workflow through the full ReStore pipeline and returns
// its report. queryID must be unique per execution; pass "" to
// auto-generate.
func (d *Driver) Execute(wf *physical.Workflow, queryID string) (*Result, error) {
	start := time.Now()
	if queryID == "" {
		d.queryCounter++
		queryID = fmt.Sprintf("q%d", d.queryCounter)
	}
	res := &Result{QueryID: queryID, FinalOutputs: map[string]string{}}
	for p, v := range wf.FinalOutputs {
		res.FinalOutputs[p] = v
	}

	rewriter := &Rewriter{Repo: d.Repo, FS: d.Engine.FS()}
	enum := &Enumerator{
		Heuristic: d.Opts.Heuristic,
		PathFor: func(job *physical.Job, opID int) string {
			return fmt.Sprintf("restore/%s/%s/op%d", queryID, job.ID, opID)
		},
		SkipExisting: func(prefix PlanSig) bool {
			e := d.Repo.Lookup(prefix)
			return e != nil && d.Repo.Valid(e, d.Engine.FS())
		},
	}

	jobTimes := map[string]time.Duration{}
	jobDeps := map[string][]string{}

	jobs, err := wf.TopoJobs()
	if err != nil {
		return nil, err
	}
	for _, job := range jobs {
		if wf.Job(job.ID) == nil {
			continue // removed by a whole-job rewrite of an earlier pass
		}
		isFinal := false
		if _, ok := wf.FinalOutputs[job.OutputPath]; ok {
			isFinal = true
		}

		if d.Opts.Reuse {
			events := rewriter.RewriteJob(job, !isFinal)
			for _, ev := range events {
				if e := d.findEntry(ev.EntryID); e != nil {
					d.Repo.NoteReuse(e, d.Clock)
				}
			}
			res.Rewrites = append(res.Rewrites, events...)
			if n := len(events); n > 0 && events[n-1].WholeJob {
				// Drop the job; dependants read the stored output.
				wf.RemoveJob(job.ID)
				wf.RewriteLoadPaths(job.OutputPath, events[n-1].Path)
				res.JobsReused++
				continue
			}
		}

		// Snapshot the plan before Store injection: the whole-job
		// repository entry must describe the job without ReStore's
		// instrumentation.
		cleanPlan := job.Plan.Clone()

		candidates := enum.Enumerate(job)

		stats, err := d.Engine.Run(job)
		if err != nil {
			return nil, fmt.Errorf("core: executing %s/%s: %w", queryID, job.ID, err)
		}
		res.JobStats = append(res.JobStats, stats)
		res.JobsRun++
		jobTimes[job.ID] = stats.SimTime
		jobDeps[job.ID] = append([]string(nil), job.DependsOn...)

		d.register(job, cleanPlan, candidates, stats, res)
	}

	res.SimTime = cluster.CriticalPath(jobTimes, jobDeps)
	d.Clock += res.SimTime

	if d.Opts.DeleteTemps && !d.storesAnything() {
		d.deleteTemps(wf, jobs)
	}
	if d.Opts.EvictionWindow > 0 {
		for _, e := range d.Repo.Vacuum(d.Engine.FS(), d.Clock, d.Opts.EvictionWindow) {
			// Reclaim the space of evicted sub-job outputs; user-visible
			// outputs (whole final jobs) are left in place.
			if !e.WholeJob {
				_ = d.Engine.FS().Delete(e.OutputPath)
			}
		}
	}

	res.WallTime = time.Since(start)
	return res, nil
}

func (d *Driver) findEntry(id string) *Entry {
	for _, e := range d.Repo.Entries() {
		if e.ID == id {
			return e
		}
	}
	return nil
}

// register stores the whole-job output and the enumerated sub-job
// outputs in the repository (the enumerated sub-job selector).
func (d *Driver) register(job *physical.Job, cleanPlan *physical.Plan, candidates []Candidate, stats *mapreduce.JobStats, res *Result) {
	fs := d.Engine.FS()

	admit := func(e *Entry) bool {
		if e.Plan.OpCount() <= 1 {
			return false // a bare Load: reusing it is just re-reading the input
		}
		if d.Opts.AdmitOnlyReducing && e.Stats.OutputSimBytes >= e.Stats.InputSimBytes {
			return false
		}
		if d.Opts.AdmitOnlyBeneficial && !d.beneficial(e) {
			return false
		}
		return true
	}

	versionsOf := func(sig PlanSig) map[string]int64 {
		vs := map[string]int64{}
		for _, p := range sig.loadPaths() {
			vs[p] = fs.Version(p)
		}
		return vs
	}

	if d.Opts.KeepWholeJobs {
		sig := SigOf(cleanPlan)
		e := &Entry{
			Plan:       sig,
			OutputPath: job.OutputPath,
			WholeJob:   true,
			Stats: EntryStats{
				InputSimBytes:  stats.InputSimBytes,
				OutputSimBytes: stats.OutputSimBytes,
				AvgMapTime:     stats.AvgMapTime,
				AvgRedTime:     stats.AvgRedTime,
				JobSimTime:     stats.SimTime,
			},
			InputVersions: versionsOf(sig),
			StoredAt:      d.Clock,
		}
		if admit(e) {
			res.Stored = append(res.Stored, d.Repo.Insert(e))
		}
	}

	for _, c := range candidates {
		out := stats.Outputs[c.Path]
		if !c.Existing {
			res.ExtraStoredSimBytes += out.SimBytes
		}
		prefix := SigOf(job.Plan.PrefixPlan(c.OpID, c.Path))
		e := &Entry{
			Plan:       prefix,
			OutputPath: c.Path,
			Stats: EntryStats{
				InputSimBytes:  stats.InputSimBytes,
				OutputSimBytes: out.SimBytes,
				AvgMapTime:     stats.AvgMapTime,
				AvgRedTime:     stats.AvgRedTime,
				JobSimTime:     stats.SimTime,
			},
			InputVersions: versionsOf(prefix),
			StoredAt:      d.Clock,
		}
		if admit(e) {
			res.Stored = append(res.Stored, d.Repo.Insert(e))
		} else if !c.Existing {
			_ = fs.Delete(c.Path) // rejected by the selector: reclaim now
		}
	}
}

// beneficial estimates Section 5 Rule 2: reusing the entry must beat
// recomputing it. The replacement job reads the stored output from the
// DFS; the saved work is the producing job's execution time.
func (d *Driver) beneficial(e *Entry) bool {
	cost := d.Engine.Config().Cost
	topo := d.Engine.Config().Topology
	readBW := cost.DiskReadBW * float64(topo.MapSlots())
	if readBW <= 0 {
		return true
	}
	loadTime := time.Duration(float64(e.Stats.OutputSimBytes) / readBW * float64(time.Second))
	loadTime += cost.JobStartup
	return loadTime < e.Stats.JobSimTime
}

// deleteTemps removes inter-job temporaries, the pre-ReStore "current
// practice".
func (d *Driver) deleteTemps(wf *physical.Workflow, jobs []*physical.Job) {
	finals := map[string]bool{}
	for p := range wf.FinalOutputs {
		finals[p] = true
	}
	for _, j := range jobs {
		if !finals[j.OutputPath] {
			_ = d.Engine.FS().Delete(j.OutputPath)
		}
	}
}
