package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/mapreduce"
	"repro/internal/physical"
)

// Options configure a Driver. The two independent switches mirror the
// paper's experiments: Reuse turns the plan matcher and rewriter on, and
// Heuristic selects sub-job materialization (storing can run without
// reuse — the "generating sub-jobs" configuration — and vice versa).
type Options struct {
	// Reuse enables matching and rewriting against the repository.
	Reuse bool
	// Heuristic selects sub-job enumeration (HeuristicOff disables it).
	Heuristic Heuristic
	// KeepWholeJobs registers every executed job's output in the
	// repository.
	KeepWholeJobs bool
	// AdmitOnlyReducing applies Section 5 Rule 1: keep a candidate only
	// when its output is smaller than its input.
	AdmitOnlyReducing bool
	// AdmitOnlyBeneficial applies Section 5 Rule 2: keep a candidate
	// only when Equation 1 predicts a reduction in execution time for
	// workflows reusing it — loading the stored output must be cheaper
	// than re-running the job that produced it.
	AdmitOnlyBeneficial bool
	// EvictionWindow applies Section 5 Rule 3 after each workflow: evict
	// entries not reused within this much simulated time (0 disables).
	EvictionWindow time.Duration
	// DeleteTemps removes inter-job temporaries after the workflow —
	// the "current practice" the paper improves on. It is forced off
	// whenever ReStore stores anything, since repository entries may
	// reference those files.
	DeleteTemps bool
}

// storesAnything reports whether this configuration writes repository
// entries.
func (o Options) storesAnything() bool {
	return o.KeepWholeJobs || o.Heuristic != HeuristicOff
}

// Result reports one workflow execution.
type Result struct {
	QueryID string
	// SimTime is the workflow completion time per the paper's
	// Equation 1 (critical path over the job DAG).
	SimTime  time.Duration
	WallTime time.Duration

	JobStats   []*mapreduce.JobStats
	JobsRun    int
	JobsReused int

	// Rewrites lists the repository reuses applied, in the workflow's
	// topological job order.
	Rewrites []RewriteEvent
	// Stored lists the repository entries registered by this execution.
	Stored []*Entry
	// ExtraStoredSimBytes totals the side outputs materialized by the
	// sub-job enumerator (the paper's Table 1 columns).
	ExtraStoredSimBytes int64
	// FinalOutputs maps each user STORE path to the dataset actually
	// holding the result (identity unless whole-job reuse redirected it).
	FinalOutputs map[string]string
}

// Driver executes workflows of MapReduce jobs through ReStore: it is the
// analogue of the paper's extension to Pig's JobControlCompiler. Each
// workflow's jobs are scheduled over its dependency DAG: independent
// jobs run concurrently on a bounded worker pool, and each job is
// matched and rewritten against the repository, has sub-job Stores
// injected per the heuristic, is executed, and has its outputs
// registered — only after every job it depends on has completed.
//
// Execute is safe for concurrent use by multiple goroutines sharing one
// Driver: the repository is internally synchronized, the simulated
// clock and query counter are atomic, and every Execute works on a
// private clone of its workflow. The configuration fields (Engine,
// Repo, Opts, Workers) must not be reassigned while Execute calls are
// in flight; restore.System serializes reconfiguration against
// executions with a read-write lock.
type Driver struct {
	Engine *mapreduce.Engine
	Repo   *Repository
	Opts   Options

	// Workers bounds how many jobs of one workflow run concurrently;
	// zero or negative means runtime.NumCPU(). Workers = 1 restores the
	// serial execution order of the paper's Pig/Hadoop setup (the
	// simulated time is identical either way; only real wall time
	// changes).
	Workers int

	// clock accumulates simulated nanoseconds across executions; it
	// drives the reuse-window eviction rule.
	clock atomic.Int64

	queryCounter atomic.Int64
}

// NewDriver returns a driver over the engine and repository.
func NewDriver(eng *mapreduce.Engine, repo *Repository, opts Options) *Driver {
	return &Driver{Engine: eng, Repo: repo, Opts: opts}
}

// Now returns the driver's simulated clock: the total simulated time of
// every workflow completed so far.
func (d *Driver) Now() time.Duration {
	return time.Duration(d.clock.Load())
}

// advance moves the simulated clock forward.
func (d *Driver) advance(by time.Duration) {
	d.clock.Add(int64(by))
}

// jobOutcome accumulates the per-job results of one workflow execution;
// each scheduled job writes only its own slot, and the outcomes are
// merged in topological order after the DAG drains so reports stay
// deterministic under concurrent scheduling.
type jobOutcome struct {
	events      []RewriteEvent
	reusedWhole bool
	stats       *mapreduce.JobStats
	deps        []string
	stored      []*Entry
	extraBytes  int64
}

// Execute runs a workflow through the full ReStore pipeline and returns
// its report. queryID must be unique per execution; pass "" to
// auto-generate. The caller's workflow is never mutated: Execute clones
// it, so one compiled workflow may be executed repeatedly or from
// several goroutines at once.
func (d *Driver) Execute(wf *physical.Workflow, queryID string) (*Result, error) {
	start := time.Now()
	if queryID == "" {
		queryID = fmt.Sprintf("q%d", d.queryCounter.Add(1))
	}
	opts := d.Opts
	eng := d.Engine
	repo := d.Repo
	wf = wf.Clone()

	res := &Result{QueryID: queryID, FinalOutputs: map[string]string{}}
	for p, v := range wf.FinalOutputs {
		res.FinalOutputs[p] = v
	}

	rewriter := &Rewriter{Repo: repo, FS: eng.FS()}
	enum := &Enumerator{
		Heuristic: opts.Heuristic,
		PathFor: func(job *physical.Job, opID int) string {
			return fmt.Sprintf("restore/%s/%s/op%d", queryID, job.ID, opID)
		},
		SkipExisting: func(prefix PlanSig) bool {
			e := repo.Lookup(prefix)
			return e != nil && repo.Valid(e, eng.FS())
		},
	}

	jobs, err := wf.TopoJobs()
	if err != nil {
		return nil, err
	}
	slot := make(map[string]int, len(jobs))
	for i, j := range jobs {
		slot[j.ID] = i
	}
	// dependants of a job are the only jobs whole-job reuse may touch
	// besides the job itself; they cannot have started yet (they depend
	// on it), so mutating them is safe — unlike a workflow-wide sweep,
	// which would read sibling jobs' plans while their goroutines
	// mutate them.
	dependants := make(map[string][]*physical.Job, len(jobs))
	for _, j := range jobs {
		for _, dep := range j.DependsOn {
			dependants[dep] = append(dependants[dep], j)
		}
	}
	outcomes := make([]jobOutcome, len(jobs))

	// Entries pinned by this execution's rewrites stay vacuum-proof
	// until the workflow finishes (rewritten jobs read their outputs).
	var pinned []string
	defer func() {
		for _, id := range pinned {
			repo.Unpin(id)
		}
	}()

	// wfMu serializes every mutation of the shared workflow structure:
	// rewriting a job's plan, dropping a whole-job-reused job, and
	// redirecting its dependants' Load paths and dependency lists. A job
	// is scheduled only after its producers completed (including their
	// dependant redirects), so outside this lock each job's plan and
	// DependsOn list are private to the goroutine running it.
	var wfMu sync.Mutex

	process := func(job *physical.Job) error {
		out := &outcomes[slot[job.ID]]

		wfMu.Lock()
		_, isFinal := wf.FinalOutputs[job.OutputPath]
		if opts.Reuse {
			events := rewriter.RewriteJob(job, !isFinal)
			for _, ev := range events {
				pinned = append(pinned, ev.EntryID)
				repo.NoteReuse(ev.entry, d.Now())
			}
			out.events = events
			if n := len(events); n > 0 && events[n-1].WholeJob {
				// Drop the job; its dependants — which cannot have
				// started — read the stored output instead.
				wf.DropJob(job.ID)
				for _, dep := range dependants[job.ID] {
					dep.RemoveDependency(job.ID)
					dep.RewriteLoadPath(job.OutputPath, events[n-1].Path)
				}
				out.reusedWhole = true
				wfMu.Unlock()
				return nil
			}
		}
		// Snapshot the dependency list for Equation 1 while the lock is
		// held: whole-job reuse of a producer strips it from DependsOn.
		out.deps = append([]string(nil), job.DependsOn...)
		wfMu.Unlock()

		// Snapshot the plan before Store injection: the whole-job
		// repository entry must describe the job without ReStore's
		// instrumentation.
		cleanPlan := job.Plan.Clone()

		candidates := enum.Enumerate(job)

		stats, err := eng.Run(job)
		if err != nil {
			return fmt.Errorf("core: executing %s/%s: %w", queryID, job.ID, err)
		}
		out.stats = stats
		out.stored, out.extraBytes = d.register(opts, eng, repo, job, cleanPlan, candidates, stats)
		return nil
	}

	workers := d.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if err := runDAG(jobs, workers, process); err != nil {
		return nil, err
	}

	// Merge per-job outcomes in topological order so Rewrites, Stored
	// and JobStats read the same regardless of scheduling interleaving.
	jobTimes := map[string]time.Duration{}
	jobDeps := map[string][]string{}
	for i, job := range jobs {
		out := &outcomes[i]
		res.Rewrites = append(res.Rewrites, out.events...)
		if out.reusedWhole {
			res.JobsReused++
			continue
		}
		res.JobStats = append(res.JobStats, out.stats)
		res.JobsRun++
		jobTimes[job.ID] = out.stats.SimTime
		jobDeps[job.ID] = out.deps
		res.Stored = append(res.Stored, out.stored...)
		res.ExtraStoredSimBytes += out.extraBytes
	}

	res.SimTime = cluster.CriticalPath(jobTimes, jobDeps)
	d.advance(res.SimTime)

	if opts.DeleteTemps && !opts.storesAnything() {
		deleteTemps(eng, wf, jobs)
	}
	if opts.EvictionWindow > 0 {
		for _, e := range repo.Vacuum(eng.FS(), d.Now(), opts.EvictionWindow) {
			// Reclaim the space of evicted sub-job outputs; user-visible
			// outputs (whole final jobs) are left in place.
			if !e.WholeJob {
				_ = eng.FS().Delete(e.OutputPath)
			}
		}
	}

	res.WallTime = time.Since(start)
	return res, nil
}

// register stores the whole-job output and the enumerated sub-job
// outputs in the repository (the enumerated sub-job selector) and
// returns the entries kept plus the extra simulated bytes materialized.
// eng and repo are the execution's snapshots — register must not reach
// back through the Driver fields, which only restore.System's locking
// keeps stable.
func (d *Driver) register(opts Options, eng *mapreduce.Engine, repo *Repository, job *physical.Job, cleanPlan *physical.Plan, candidates []Candidate, stats *mapreduce.JobStats) ([]*Entry, int64) {
	fs := eng.FS()
	var stored []*Entry
	var extraBytes int64

	admit := func(e *Entry) bool {
		if e.Plan.OpCount() <= 1 {
			return false // a bare Load: reusing it is just re-reading the input
		}
		if opts.AdmitOnlyReducing && e.Stats.OutputSimBytes >= e.Stats.InputSimBytes {
			return false
		}
		if opts.AdmitOnlyBeneficial && !beneficial(eng, e) {
			return false
		}
		return true
	}

	versionsOf := func(sig PlanSig) map[string]int64 {
		vs := map[string]int64{}
		for _, p := range sig.loadPaths() {
			vs[p] = fs.Version(p)
		}
		return vs
	}

	if opts.KeepWholeJobs {
		sig := SigOf(cleanPlan)
		e := &Entry{
			Plan:       sig,
			OutputPath: job.OutputPath,
			WholeJob:   true,
			Stats: EntryStats{
				InputSimBytes:  stats.InputSimBytes,
				OutputSimBytes: stats.OutputSimBytes,
				AvgMapTime:     stats.AvgMapTime,
				AvgRedTime:     stats.AvgRedTime,
				JobSimTime:     stats.SimTime,
			},
			InputVersions: versionsOf(sig),
			StoredAt:      d.Now(),
		}
		if admit(e) {
			stored = append(stored, repo.Insert(e))
		}
	}

	for _, c := range candidates {
		out := stats.Outputs[c.Path]
		if !c.Existing {
			extraBytes += out.SimBytes
		}
		prefix := SigOf(job.Plan.PrefixPlan(c.OpID, c.Path))
		e := &Entry{
			Plan:       prefix,
			OutputPath: c.Path,
			Stats: EntryStats{
				InputSimBytes:  stats.InputSimBytes,
				OutputSimBytes: out.SimBytes,
				AvgMapTime:     stats.AvgMapTime,
				AvgRedTime:     stats.AvgRedTime,
				JobSimTime:     stats.SimTime,
			},
			InputVersions: versionsOf(prefix),
			StoredAt:      d.Now(),
		}
		if admit(e) {
			stored = append(stored, repo.Insert(e))
		} else if !c.Existing {
			_ = fs.Delete(c.Path) // rejected by the selector: reclaim now
		}
	}
	return stored, extraBytes
}

// beneficial estimates Section 5 Rule 2: reusing the entry must beat
// recomputing it. The replacement job reads the stored output from the
// DFS; the saved work is the producing job's execution time.
func beneficial(eng *mapreduce.Engine, e *Entry) bool {
	cost := eng.Config().Cost
	topo := eng.Config().Topology
	readBW := cost.DiskReadBW * float64(topo.MapSlots())
	if readBW <= 0 {
		return true
	}
	loadTime := time.Duration(float64(e.Stats.OutputSimBytes) / readBW * float64(time.Second))
	loadTime += cost.JobStartup
	return loadTime < e.Stats.JobSimTime
}

// deleteTemps removes inter-job temporaries, the pre-ReStore "current
// practice".
func deleteTemps(eng *mapreduce.Engine, wf *physical.Workflow, jobs []*physical.Job) {
	finals := map[string]bool{}
	for p := range wf.FinalOutputs {
		finals[p] = true
	}
	for _, j := range jobs {
		if !finals[j.OutputPath] {
			_ = eng.FS().Delete(j.OutputPath)
		}
	}
}
