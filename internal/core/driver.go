package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/physical"
)

// JobState is the lifecycle of one MapReduce job within an executing
// query, observable through the query handle's Status.
type JobState int

const (
	// JobPending: the job has not been dispatched (its dependencies
	// have not completed, or the workflow was cancelled first).
	JobPending JobState = iota
	// JobRunning: the job is being matched, rewritten and executed.
	JobRunning
	// JobReused: the whole job was answered from the repository and
	// never ran.
	JobReused
	// JobDone: the job executed to completion.
	JobDone
	// JobFailed: the job's execution returned an error.
	JobFailed
	// JobCanceled: the job was aborted by context cancellation after it
	// started.
	JobCanceled
)

// String renders the state for logs and status displays.
func (s JobState) String() string {
	switch s {
	case JobPending:
		return "pending"
	case JobRunning:
		return "running"
	case JobReused:
		return "reused"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	case JobCanceled:
		return "canceled"
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// ExecConfig is the immutable per-execution configuration snapshot the
// driver works from: the query-handle API captures it at submission
// time, so reconfiguring the shared defaults (or submitting other
// queries with different options) never changes a query mid-flight.
type ExecConfig struct {
	// Opts is this execution's ReStore configuration.
	Opts Options
	// Workers bounds how many of this workflow's jobs run concurrently;
	// zero or negative means runtime.NumCPU().
	Workers int
	// OnJobState, when non-nil, receives every job lifecycle transition
	// (running, reused, done, failed, canceled). It is called
	// synchronously from scheduler goroutines and must not block for
	// long or call back into the driver.
	OnJobState func(jobID string, state JobState)
	// OnJobProgress, when non-nil, receives task-level progress of every
	// executing job: tasks completed out of total, and the simulated
	// execution time accumulated so far (the job's final Equation 1 time
	// on the last call). Same calling discipline as OnJobState.
	OnJobProgress func(jobID string, done, total int, sim time.Duration)
	// Trace, when non-nil, records this execution's span tree: per-job
	// rewrite probes with candidate-level decision provenance, claim
	// waits, delta refreshes, engine executions and STORE commits. A
	// nil Trace records nothing and costs nothing (every recording call
	// is a nil-receiver no-op), so traced and untraced executions are
	// SimTime- and byte-identical.
	Trace *obs.Trace
}

// ClaimFallback selects what an execution does when a claim it was
// waiting on is aborted: the winner failed, was cancelled, or had its
// output rejected by the sub-job selector.
type ClaimFallback int

const (
	// ClaimRetry (the default): contend for the claim again — the next
	// winner materializes, everyone else keeps sharing.
	ClaimRetry ClaimFallback = iota
	// ClaimIndependent: give up on sharing that sub-job and materialize
	// it privately, like the pre-claim behaviour.
	ClaimIndependent
)

// Options configure a Driver. The two independent switches mirror the
// paper's experiments: Reuse turns the plan matcher and rewriter on, and
// Heuristic selects sub-job materialization (storing can run without
// reuse — the "generating sub-jobs" configuration — and vice versa).
type Options struct {
	// Reuse enables matching and rewriting against the repository.
	Reuse bool
	// Heuristic selects sub-job enumeration (HeuristicOff disables it).
	Heuristic Heuristic
	// KeepWholeJobs registers every executed job's output in the
	// repository.
	KeepWholeJobs bool
	// AdmitOnlyReducing applies Section 5 Rule 1: keep a candidate only
	// when its output is smaller than its input.
	AdmitOnlyReducing bool
	// AdmitOnlyBeneficial applies Section 5 Rule 2: keep a candidate
	// only when Equation 1 predicts a reduction in execution time for
	// workflows reusing it — loading the stored output must be cheaper
	// than re-running the job that produced it.
	AdmitOnlyBeneficial bool
	// EvictionWindow applies Section 5 Rule 3 after each workflow: evict
	// entries not reused within this much simulated time (0 disables).
	EvictionWindow time.Duration
	// DeleteTemps removes inter-job temporaries after the workflow —
	// the "current practice" the paper improves on. It is forced off
	// whenever ReStore stores anything, since repository entries may
	// reference those files.
	DeleteTemps bool
	// DisableClaims opts this execution out of the cross-query claim
	// protocol: sub-jobs are materialized privately even when a
	// concurrent query is materializing the same plan (the pre-claim
	// behaviour). Claims are otherwise on whenever the configuration
	// stores anything.
	DisableClaims bool
	// ClaimFallback selects the behaviour when a claim this execution
	// waited on is aborted (default: contend for it again).
	ClaimFallback ClaimFallback
	// LinearMatch makes this execution's matcher visit the repository
	// by the paper's sequential scan instead of the signature index.
	// Both modes choose identical entries (differential-tested); the
	// flag exists for that suite, the matcher-scaling experiment, and
	// as an escape hatch. Default off: matching is indexed.
	LinearMatch bool
	// DisableBatchCache makes this execution's jobs bypass the engine's
	// decoded-dataset cache: inputs decode from the DFS and outputs are
	// not written through. Outputs and simulated times are identical
	// either way (differential-tested); the flag exists for that suite
	// and as a per-query escape hatch.
	DisableBatchCache bool
	// DisableTrace opts this execution out of per-query span tracing:
	// the query handle carries no Trace and every recording call on the
	// execution path no-ops. Latency histograms still record. Traced
	// and untraced runs are SimTime- and DFS-byte-identical
	// (differential-tested); the flag exists for that suite and for
	// callers that want the last few allocations back.
	DisableTrace bool
	// TraceTasks additionally records a span per task-completion
	// callback under each job.exec span. Off by default: a large job
	// has thousands of tasks and the per-task spans dominate the
	// arena.
	TraceTasks bool
}

// storesAnything reports whether this configuration writes repository
// entries.
func (o Options) storesAnything() bool {
	return o.KeepWholeJobs || o.Heuristic != HeuristicOff
}

// Result reports one workflow execution.
type Result struct {
	QueryID string
	// SimTime is the workflow completion time per the paper's
	// Equation 1 (critical path over the job DAG).
	SimTime  time.Duration
	WallTime time.Duration

	JobStats   []*mapreduce.JobStats
	JobsRun    int
	JobsReused int

	// Rewrites lists the repository reuses applied, in the workflow's
	// topological job order.
	Rewrites []RewriteEvent
	// Stored lists the repository entries registered by this execution.
	Stored []*Entry
	// ExtraStoredSimBytes totals the side outputs materialized by the
	// sub-job enumerator (the paper's Table 1 columns).
	ExtraStoredSimBytes int64
	// FinalOutputs maps each user STORE path to the dataset actually
	// holding the result (identity unless whole-job reuse redirected it).
	FinalOutputs map[string]string
}

// Driver executes workflows of MapReduce jobs through ReStore: it is the
// analogue of the paper's extension to Pig's JobControlCompiler. Each
// workflow's jobs are scheduled over its dependency DAG: independent
// jobs run concurrently on a bounded worker pool, and each job is
// matched and rewritten against the repository, has sub-job Stores
// injected per the heuristic, is executed, and has its outputs
// registered — only after every job it depends on has completed.
//
// Execute is safe for concurrent use by multiple goroutines sharing one
// Driver: the repository is internally synchronized, the simulated
// clock and query counter are atomic, and every Execute works on a
// private clone of its workflow. The configuration fields (Engine,
// Repo, Opts, Workers) must not be reassigned while Execute calls are
// in flight; restore.System serializes reconfiguration against
// executions with a read-write lock.
type Driver struct {
	Engine *mapreduce.Engine
	Repo   *Repository
	Opts   Options

	// Store is the storage manager coordinating cross-query claims,
	// budgeted eviction and orphan vacuuming over Repo. NewDriver
	// initializes it (with no byte budget); restore.System installs a
	// configured one. Like the other fields it must not be reassigned
	// while Execute calls are in flight.
	Store *StorageManager

	// Workers bounds how many jobs of one workflow run concurrently;
	// zero or negative means runtime.NumCPU(). Workers = 1 restores the
	// serial execution order of the paper's Pig/Hadoop setup (the
	// simulated time is identical either way; only real wall time
	// changes).
	Workers int

	// NamespaceRoot, when non-empty, prefixes the per-query DFS
	// namespaces this driver writes: sub-job outputs go under
	// "<root>/restore/<qid>" and staged user outputs under
	// "<root>/tmp/<qid>" instead of the legacy top-level "restore/" and
	// "tmp/". Configure the StorageManager with the same root so the
	// janitor sweeps (only) these namespaces. Like the other fields it
	// must not be reassigned while Execute calls are in flight.
	NamespaceRoot string

	// Admission, when non-nil, is the cross-query job-admission
	// semaphore: every job of every concurrent execution holds one slot
	// while it runs, capping total cluster jobs under high fan-in. Set
	// it once at construction; it must not be reassigned while Execute
	// calls are in flight.
	Admission chan struct{}

	// Metrics aggregates wall-latency histograms (submit→done, probe,
	// claim-wait, refresh) across every execution. NewDriver
	// initializes it; a nil Metrics is safe (recording no-ops).
	Metrics *obs.Metrics

	// delta counts the incremental-maintenance activity (see
	// DeltaStats): entries delta-refreshed, appended bytes read, cold
	// recompute bytes avoided.
	delta deltaCounters

	// clock accumulates simulated nanoseconds across executions; it
	// drives the reuse-window eviction rule.
	clock atomic.Int64

	queryCounter atomic.Int64
}

// NewDriver returns a driver over the engine and repository, with a
// storage manager carrying no byte budget.
func NewDriver(eng *mapreduce.Engine, repo *Repository, opts Options) *Driver {
	return &Driver{Engine: eng, Repo: repo, Opts: opts, Store: NewStorageManager(repo, eng.FS(), 0, nil), Metrics: obs.NewMetrics()}
}

// namespace returns the per-query path prefix for kind ("restore" or
// "tmp") under the configured namespace root.
func (d *Driver) namespace(kind, queryID string) string {
	return NamespacePath(d.NamespaceRoot, kind, queryID)
}

// Now returns the driver's simulated clock: the total simulated time of
// every workflow completed so far.
func (d *Driver) Now() time.Duration {
	return time.Duration(d.clock.Load())
}

// advance moves the simulated clock forward.
func (d *Driver) advance(by time.Duration) {
	d.clock.Add(int64(by))
}

// ResumeClock moves the simulated clock forward to at least t — a
// recovered driver resumes past every persisted entry's timestamp, so
// reuse-window eviction never sees recovered entries in the future.
func (d *Driver) ResumeClock(t time.Duration) {
	for {
		cur := d.clock.Load()
		if int64(t) <= cur || d.clock.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// jobOutcome accumulates the per-job results of one workflow execution;
// each scheduled job writes only its own slot, and the outcomes are
// merged in topological order after the DAG drains so reports stay
// deterministic under concurrent scheduling.
type jobOutcome struct {
	events      []RewriteEvent
	reusedWhole bool
	stats       *mapreduce.JobStats
	deps        []string
	stored      []*Entry
	extraBytes  int64
	// deferred is the whole-job entry of a job whose primary output is
	// staged: it is inserted only after the output is renamed into its
	// user-visible place, so the repository never references data that
	// has not been committed.
	deferred *Entry
}

// Execute runs a workflow through the full ReStore pipeline and returns
// its report, using the driver's shared Opts and Workers and no
// cancellation. It is the synchronous compatibility wrapper over
// ExecuteContext. queryID must be unique per execution; pass "" to
// auto-generate.
func (d *Driver) Execute(wf *physical.Workflow, queryID string) (*Result, error) {
	return d.ExecuteContext(context.Background(), wf, queryID, ExecConfig{Opts: d.Opts, Workers: d.Workers})
}

// ExecuteContext runs a workflow through the full ReStore pipeline
// under ctx with a per-execution configuration snapshot, and returns
// its report. The caller's workflow is never mutated: the driver clones
// it, so one compiled workflow may be executed repeatedly or from
// several goroutines at once.
//
// Cancelling ctx (or exceeding its deadline) aborts the workflow
// promptly: jobs that have not started stay pending forever, in-flight
// jobs abort at the engine's next task-slot acquisition and release
// their slots, and ExecuteContext returns ctx.Err(). Cancellation
// leaves the repository consistent — no entry is ever registered for a
// job that did not run to completion — and leaves user STORE outputs
// untouched: each query's final outputs are written under its private
// temp namespace and renamed into place only when the whole workflow
// commits, so a cancelled (or failed) query publishes nothing and two
// queries storing to the same path cannot interleave part files.
func (d *Driver) ExecuteContext(ctx context.Context, wf *physical.Workflow, queryID string, cfg ExecConfig) (*Result, error) {
	start := time.Now()
	if queryID == "" {
		queryID = fmt.Sprintf("q%d", d.queryCounter.Add(1))
	}
	opts := cfg.Opts
	eng := d.Engine
	repo := d.Repo
	store := d.Store
	notify := cfg.OnJobState
	if notify == nil {
		notify = func(string, JobState) {}
	}
	progress := cfg.OnJobProgress
	if progress == nil {
		progress = func(string, int, int, time.Duration) {}
	}
	wf = wf.Clone()

	// On a shared durable store, fold peers' committed entries into the
	// local repository before matching: what another process stored is
	// reusable here from the first probe.
	if store != nil && opts.Reuse {
		store.RefreshShared()
	}

	res := &Result{QueryID: queryID, FinalOutputs: map[string]string{}}
	for p, v := range wf.FinalOutputs {
		res.FinalOutputs[p] = v
	}

	tr := cfg.Trace
	root := tr.Root()
	// jobSpans lets the Refresher closure — created once per execution,
	// without job context — parent its refresh span under the probing
	// job's span. Written at each job's dispatch, read under wfMu when
	// a probe triggers a refresh; only traced executions populate it.
	var spanMu sync.Mutex
	jobSpans := map[string]obs.SpanID{}
	jobSpanOf := func(jobID string) obs.SpanID {
		spanMu.Lock()
		defer spanMu.Unlock()
		if id, ok := jobSpans[jobID]; ok {
			return id
		}
		return obs.NoSpan
	}

	rewriter := &Rewriter{Repo: repo, FS: eng.FS(), LinearScan: opts.LinearMatch, Trace: tr, Metrics: d.Metrics}
	// Incremental maintenance: when the matcher's only candidate is a
	// stale-but-mergeable entry whose inputs merely grew, refresh it
	// from the appended slice instead of recomputing cold. The hook
	// runs jobs through the engine, so rewrites of sibling jobs wait on
	// the workflow lock while a refresh runs — execution itself is not
	// serialized, and the refreshed entry is what they would match
	// anyway.
	// refreshSim accumulates the simulated time this query's entry
	// refreshes consumed; it is added to the result's SimTime below —
	// the delta and merge jobs run on the probing query's critical path,
	// so a refreshed reuse is never reported as free.
	var refreshSim atomic.Int64
	rewriter.Refresher = func(cand RefreshCandidate) *Entry {
		refreshSpan := tr.Start(jobSpanOf(cand.Job.ID), obs.KindRefresh, cand.Match.Entry.ID)
		refreshStart := time.Now()
		e, spent := d.refreshEntry(ctx, eng, repo, store, opts, queryID, cand, tr, refreshSpan)
		d.Metrics.ObserveRefresh(time.Since(refreshStart))
		tr.Sim(refreshSpan, spent)
		if e == nil {
			tr.Note(refreshSpan, "failed — cold fallback")
		} else {
			tr.Note(refreshSpan, "refreshed")
		}
		tr.End(refreshSpan)
		refreshSim.Add(int64(spent))
		return e
	}
	enum := &Enumerator{
		Heuristic: opts.Heuristic,
		PathFor: func(job *physical.Job, opID int) string {
			return fmt.Sprintf("%s/%s/op%d", d.namespace("restore", queryID), job.ID, opID)
		},
		SkipExisting: func(prefix PlanSig) bool {
			e := repo.Lookup(prefix)
			return e != nil && repo.Valid(e, eng.FS())
		},
	}

	jobs, err := wf.TopoJobs()
	if err != nil {
		return nil, err
	}

	// Stage user STORE outputs: each final job writes under the query's
	// private temp namespace, and the staged dataset is renamed into its
	// user-visible place only when the whole workflow commits. finalJob
	// remembers which jobs write a user output (by ID, since their
	// OutputPath now points at the stage), and staged maps each stage
	// path back to the user path for the commit and for re-keying
	// JobStats.Outputs.
	finalJob := make(map[string]string, len(wf.FinalOutputs)) // job ID -> user path
	staged := make(map[string]string, len(wf.FinalOutputs))   // stage path -> user path
	for _, job := range jobs {
		user := job.OutputPath
		if _, ok := wf.FinalOutputs[user]; !ok {
			continue
		}
		stage := d.namespace("tmp", queryID) + "/.staged/" + user
		for _, op := range job.Plan.Ops() {
			if op.Kind == physical.KStore && op.Path == user {
				op.Path = stage
			}
		}
		job.OutputPath = stage
		finalJob[job.ID] = user
		staged[stage] = user
		for _, other := range jobs {
			if other != job {
				other.RewriteLoadPath(user, stage)
			}
		}
	}

	slot := make(map[string]int, len(jobs))
	for i, j := range jobs {
		slot[j.ID] = i
	}
	// dependants of a job are the only jobs whole-job reuse may touch
	// besides the job itself; they cannot have started yet (they depend
	// on it), so mutating them is safe — unlike a workflow-wide sweep,
	// which would read sibling jobs' plans while their goroutines
	// mutate them.
	dependants := make(map[string][]*physical.Job, len(jobs))
	for _, j := range jobs {
		for _, dep := range j.DependsOn {
			dependants[dep] = append(dependants[dep], j)
		}
	}
	outcomes := make([]jobOutcome, len(jobs))

	// Entries pinned by this execution's rewrites stay vacuum-proof
	// until the workflow finishes (rewritten jobs read their outputs).
	var pinned []string
	defer func() {
		for _, id := range pinned {
			repo.Unpin(id)
		}
	}()

	// wfMu serializes every mutation of the shared workflow structure:
	// rewriting a job's plan, dropping a whole-job-reused job, and
	// redirecting its dependants' Load paths and dependency lists. A job
	// is scheduled only after its producers completed (including their
	// dependant redirects), so outside this lock each job's plan and
	// DependsOn list are private to the goroutine running it.
	var wfMu sync.Mutex

	// claimsOn: every execution that stores participates in the claim
	// protocol unless it opted out. With claims on, a sub-job another
	// query is currently materializing is waited for and reused instead
	// of materialized twice.
	claimsOn := store != nil && opts.storesAnything() && !opts.DisableClaims
	// maxClaimAttempts bounds the rewrite/claim loop: each iteration
	// either wins every needed claim, absorbs a freshly committed entry,
	// or retries an aborted claim. The bound only matters under
	// pathological abort storms; on overflow the job proceeds without
	// the unresolved claims.
	const maxClaimAttempts = 16

	process := func(job *physical.Job) error {
		if err := ctx.Err(); err != nil {
			return err // cancelled before dispatch: the job stays pending
		}
		out := &outcomes[slot[job.ID]]
		notify(job.ID, JobRunning)
		jobSpan := tr.Start(root, obs.KindJob, job.ID)
		if tr != nil {
			spanMu.Lock()
			jobSpans[job.ID] = jobSpan
			spanMu.Unlock()
		}
		defer tr.End(jobSpan)

		// held maps claimed plan fingerprints to the claims this job
		// won; every exit path must Commit or Abort them all.
		held := map[string]*Claim{}
		abortHeld := func() {
			for _, c := range held {
				store.Abort(c)
			}
			held = map[string]*Claim{}
		}
		// independent marks fingerprints this job materializes without a
		// claim (the ClaimIndependent fallback after a winner aborted).
		independent := map[string]bool{}

		var existing []Candidate      // zero-cost candidates of the final plan
		var targets []*physical.Op    // injectable targets of the final plan
		var injectable []*physical.Op // targets this job actually materializes

		for attempt := 0; ; attempt++ {
			wfMu.Lock()
			_, isFinal := finalJob[job.ID]
			if opts.Reuse {
				events := rewriter.RewriteJobTraced(job, !isFinal, jobSpan)
				for _, ev := range events {
					pinned = append(pinned, ev.EntryID)
					repo.NoteReuse(ev.entry, d.Now())
				}
				out.events = append(out.events, events...)
				if n := len(events); n > 0 && events[n-1].WholeJob {
					// Drop the job; its dependants — which cannot have
					// started — read the stored output instead.
					wf.DropJob(job.ID)
					for _, dep := range dependants[job.ID] {
						dep.RemoveDependency(job.ID)
						dep.RewriteLoadPath(job.OutputPath, events[n-1].Path)
					}
					out.reusedWhole = true
					wfMu.Unlock()
					abortHeld()
					tr.Note(jobSpan, "whole job reused — never executed")
					notify(job.ID, JobReused)
					return nil
				}
			}
			// Snapshot the dependency list for Equation 1 while the lock
			// is held: whole-job reuse of a producer strips it from
			// DependsOn.
			out.deps = append([]string(nil), job.DependsOn...)
			wfMu.Unlock()

			// Choose materialization points on the rewritten plan.
			existing, targets = enum.Choose(job)
			if !claimsOn {
				injectable = targets
				break
			}

			// The claim set: every sub-job this job would register. The
			// whole-job and existing-candidate fingerprints are claimed
			// only when reuse is on — a loser can only profit from them
			// by rewriting against the committed entry — and only for
			// non-final jobs (a final job's own output is staged under
			// the query's private namespace until commit, so other
			// queries must not wait on, or rewrite to, its entries).
			fps := map[string]*physical.Op{}
			if !isFinal && opts.Reuse {
				if opts.KeepWholeJobs {
					sig := SigOf(job.Plan)
					fps[sig.Fingerprint()] = nil
				}
				for _, c := range existing {
					sig := SigOf(job.Plan.PrefixPlan(c.OpID, c.Path))
					fps[sig.Fingerprint()] = nil
				}
			}
			targetFP := make(map[int]string, len(targets))
			for _, op := range targets {
				sig := SigOf(job.Plan.PrefixPlan(op.ID, "claim"))
				fp := sig.Fingerprint()
				targetFP[op.ID] = fp
				fps[fp] = op
			}

			// Release claims the rewritten plan no longer needs (a
			// committed entry absorbed the sub-job).
			for fp, c := range held {
				if _, ok := fps[fp]; !ok {
					store.Abort(c)
					delete(held, fp)
				}
			}

			// Acquire in sorted fingerprint order, waiting at the first
			// contended claim while holding only smaller ones — the
			// hierarchical order makes cross-query claim waits
			// deadlock-free.
			order := make([]string, 0, len(fps))
			for fp := range fps {
				order = append(order, fp)
			}
			sort.Strings(order)
			acqSpan := tr.Start(jobSpan, obs.KindClaimAcquire, job.ID)
			var waitOn *Claim
			for _, fp := range order {
				if held[fp] != nil || independent[fp] {
					continue
				}
				if c, won := store.TryClaim(fp, queryID); won {
					held[fp] = c
				} else {
					waitOn = c
					break
				}
			}
			if tr != nil {
				tr.Note(acqSpan, fmt.Sprintf("%d fingerprint(s) wanted, %d held", len(order), len(held)))
			}
			tr.End(acqSpan)
			if waitOn == nil {
				injectable = targets
				break
			}
			if attempt >= maxClaimAttempts {
				// Stop contending: materialize only what this job holds
				// or was told to take independently.
				injectable = injectable[:0]
				for _, op := range targets {
					if fp := targetFP[op.ID]; held[fp] != nil || independent[fp] {
						injectable = append(injectable, op)
					}
				}
				break
			}
			// The deadlock-freedom invariant — while blocked, hold only
			// fingerprints smaller than the one waited on — must survive
			// re-rewrites: an absorbed entry can put new, smaller
			// fingerprints into the claim set. Release any held claim
			// above the wait target before blocking; the next iteration
			// re-contends for it.
			for fp, c := range held {
				if fp > waitOn.Fingerprint() {
					store.Abort(c)
					delete(held, fp)
				}
			}
			waitSpan := tr.Start(jobSpan, obs.KindClaimWait, waitOn.Fingerprint())
			waitStart := time.Now()
			entry, err := store.WaitShared(ctx, waitOn)
			d.Metrics.ObserveClaimWait(time.Since(waitStart))
			tr.End(waitSpan)
			if err != nil {
				abortHeld()
				notify(job.ID, JobCanceled)
				return fmt.Errorf("core: executing %s/%s: %w", queryID, job.ID, err)
			}
			if entry == nil && opts.ClaimFallback == ClaimIndependent {
				independent[waitOn.Fingerprint()] = true
			}
			// Re-rewrite: a committed entry is absorbed by the matcher
			// (or skipped by Choose); an aborted one is contended again.
		}

		// Snapshot the plan before Store injection: the whole-job
		// repository entry must describe the job without ReStore's
		// instrumentation.
		cleanPlan := job.Plan.Clone()

		candidates := append(existing, enum.Inject(job, injectable)...)

		execSpan := tr.Start(jobSpan, obs.KindJobExec, job.ID)
		onProgress := func(done, total int, sim time.Duration) {
			progress(job.ID, done, total, sim)
		}
		if tr.TaskSpans() {
			inner := onProgress
			onProgress = func(done, total int, sim time.Duration) {
				tr.Event(execSpan, obs.KindTask,
					fmt.Sprintf("%s task %d/%d", job.ID, done, total), sim.String())
				inner(done, total, sim)
			}
		}
		stats, err := eng.RunContextOpts(ctx, job, mapreduce.RunOptions{
			Progress:          onProgress,
			DisableBatchCache: opts.DisableBatchCache,
		})
		tr.End(execSpan)
		if err != nil {
			abortHeld()
			if ctx.Err() != nil {
				notify(job.ID, JobCanceled)
			} else {
				notify(job.ID, JobFailed)
			}
			return fmt.Errorf("core: executing %s/%s: %w", queryID, job.ID, err)
		}
		tr.Sim(execSpan, stats.SimTime)
		tr.Bytes(execSpan, stats.InputSimBytes, stats.OutputSimBytes)
		out.stats = stats
		out.stored, out.deferred, out.extraBytes = d.register(opts, eng, repo, job, cleanPlan, candidates, stats, finalJob[job.ID])

		// Resolve claims: every registered entry commits its claim so
		// waiting queries wake and reuse it; claims whose entries the
		// sub-job selector rejected abort, releasing the fingerprint.
		if len(held) > 0 {
			byFP := make(map[string]*Entry, len(out.stored))
			for _, e := range out.stored {
				byFP[e.fingerprint()] = e
			}
			for fp, c := range held {
				if e := byFP[fp]; e != nil {
					store.Commit(c, e)
				} else {
					store.Abort(c)
				}
			}
			held = map[string]*Claim{}
		}

		progress(job.ID, stats.MapTasks+stats.RedTasks, stats.MapTasks+stats.RedTasks, stats.SimTime)
		notify(job.ID, JobDone)
		return nil
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if err := runDAG(ctx, jobs, workers, d.Admission, process); err != nil {
		// Abort: discard staged outputs so a cancelled or failed query
		// publishes nothing (user paths keep whatever they held before).
		for stage := range staged {
			_ = eng.FS().Delete(stage)
		}
		return nil, err
	}

	// Commit: atomically rename each staged user output into place.
	// Renames serialize on the DFS lock, so concurrent queries storing
	// to one path leave it holding exactly one query's complete dataset.
	committedVer := make(map[string]int64, len(staged)) // user path -> version
	for stage, user := range staged {
		commitSpan := tr.Start(root, obs.KindStoreCommit, user)
		v, err := eng.FS().Rename(stage, user)
		tr.End(commitSpan)
		if err != nil {
			return nil, fmt.Errorf("core: committing %s output %s: %w", queryID, user, err)
		}
		committedVer[user] = v
	}
	// Re-key per-job output statistics from stage paths to the user
	// paths callers (and the experiment harness) look up.
	if len(staged) > 0 {
		for i := range outcomes {
			st := outcomes[i].stats
			if st == nil {
				continue
			}
			for stage, user := range staged {
				if o, ok := st.Outputs[stage]; ok {
					delete(st.Outputs, stage)
					st.Outputs[user] = o
				}
			}
		}
	}

	// Merge per-job outcomes in topological order so Rewrites, Stored
	// and JobStats read the same regardless of scheduling interleaving.
	jobTimes := map[string]time.Duration{}
	jobDeps := map[string][]string{}
	for i, job := range jobs {
		out := &outcomes[i]
		res.Rewrites = append(res.Rewrites, out.events...)
		if out.reusedWhole {
			res.JobsReused++
			continue
		}
		res.JobStats = append(res.JobStats, out.stats)
		res.JobsRun++
		jobTimes[job.ID] = out.stats.SimTime
		jobDeps[job.ID] = out.deps
		if out.deferred != nil {
			// The job's user output is committed now; its whole-job
			// entry (pointing at the user path) becomes registrable,
			// bound to exactly the dataset version this query's rename
			// produced: an overwrite by any other query — even one that
			// slipped in before this insert — invalidates it.
			out.deferred.OutputVersion = committedVer[out.deferred.OutputPath]
			res.Stored = append(res.Stored, repo.Insert(out.deferred))
		}
		res.Stored = append(res.Stored, out.stored...)
		res.ExtraStoredSimBytes += out.extraBytes
	}

	res.SimTime = cluster.CriticalPath(jobTimes, jobDeps) + time.Duration(refreshSim.Load())
	d.advance(res.SimTime)

	if opts.DeleteTemps && !opts.storesAnything() {
		deleteTemps(eng, wf, jobs)
	}
	// Post-execution storage maintenance: the reuse-window and validity
	// vacuum (Rules 3 and 4, reclaiming evicted sub-job outputs;
	// user-visible whole-job outputs are left in place) and, when a byte
	// budget is configured, policy-driven eviction back under it. On a
	// durable store, the event log is compacted when due even without a
	// budget or window.
	if store != nil {
		if opts.EvictionWindow > 0 || store.MaxBytes() > 0 {
			store.Sweep(d.Now(), opts.EvictionWindow)
		} else {
			store.MaintainDurable()
		}
	}

	res.WallTime = time.Since(start)
	tr.Sim(root, res.SimTime)
	d.Metrics.ObserveQuery(res.WallTime)
	return res, nil
}

// register stores the whole-job output and the enumerated sub-job
// outputs in the repository (the enumerated sub-job selector) and
// returns the entries kept plus the extra simulated bytes materialized.
// finalUser, when non-empty, is the user path the job's staged primary
// output will be renamed to at commit: the whole-job entry is then
// returned as deferred (pointing at the user path) instead of being
// inserted, so the repository never references an uncommitted output.
// eng and repo are the execution's snapshots — register must not reach
// back through the Driver fields, which only restore.System's locking
// keeps stable.
func (d *Driver) register(opts Options, eng *mapreduce.Engine, repo *Repository, job *physical.Job, cleanPlan *physical.Plan, candidates []Candidate, stats *mapreduce.JobStats, finalUser string) ([]*Entry, *Entry, int64) {
	fs := eng.FS()
	var stored []*Entry
	var deferred *Entry
	var extraBytes int64

	admit := func(e *Entry) bool {
		if e.Plan.OpCount() <= 1 {
			return false // a bare Load: reusing it is just re-reading the input
		}
		if opts.AdmitOnlyReducing && e.Stats.OutputSimBytes >= e.Stats.InputSimBytes {
			return false
		}
		if opts.AdmitOnlyBeneficial && !beneficial(eng, e) {
			return false
		}
		return true
	}

	versionsOf := func(sig PlanSig) map[string]int64 {
		vs := map[string]int64{}
		for _, p := range sig.loadPaths() {
			vs[p] = fs.Version(p)
		}
		return vs
	}

	if opts.KeepWholeJobs {
		outPath := job.OutputPath
		if finalUser != "" {
			outPath = finalUser
		}
		sig := SigOf(cleanPlan)
		e := &Entry{
			Plan:       sig,
			OutputPath: outPath,
			WholeJob:   true,
			Stats: EntryStats{
				InputSimBytes:  stats.InputSimBytes,
				OutputSimBytes: stats.OutputSimBytes,
				AvgMapTime:     stats.AvgMapTime,
				AvgRedTime:     stats.AvgRedTime,
				JobSimTime:     stats.SimTime,
			},
			InputVersions: versionsOf(sig),
			StoredAt:      d.Now(),
		}
		if admit(e) {
			stampMergeable(fs, e, cleanPlan)
			if finalUser != "" {
				// OutputVersion is unknown until the staged output is
				// renamed into place; the commit path fills it in.
				deferred = e
			} else {
				e.OutputVersion = fs.Version(e.OutputPath)
				stored = append(stored, repo.Insert(e))
			}
		}
	}

	for _, c := range candidates {
		out := stats.Outputs[c.Path]
		if !c.Existing {
			extraBytes += out.SimBytes
		}
		prefixPlan := job.Plan.PrefixPlan(c.OpID, c.Path)
		prefix := SigOf(prefixPlan)
		e := &Entry{
			Plan:       prefix,
			OutputPath: c.Path,
			Stats: EntryStats{
				InputSimBytes:  stats.InputSimBytes,
				OutputSimBytes: out.SimBytes,
				AvgMapTime:     stats.AvgMapTime,
				AvgRedTime:     stats.AvgRedTime,
				JobSimTime:     stats.SimTime,
			},
			InputVersions: versionsOf(prefix),
			StoredAt:      d.Now(),
		}
		if admit(e) {
			stampMergeable(fs, e, prefixPlan)
			e.OutputVersion = fs.Version(e.OutputPath)
			stored = append(stored, repo.Insert(e))
		} else if !c.Existing {
			_ = fs.Delete(c.Path) // rejected by the selector: reclaim now
		}
	}
	return stored, deferred, extraBytes
}

// beneficial estimates Section 5 Rule 2: reusing the entry must beat
// recomputing it. The replacement job reads the stored output from the
// DFS; the saved work is the producing job's execution time.
func beneficial(eng *mapreduce.Engine, e *Entry) bool {
	cost := eng.Config().Cost
	topo := eng.Config().Topology
	readBW := cost.DiskReadBW * float64(topo.MapSlots())
	if readBW <= 0 {
		return true
	}
	loadTime := time.Duration(float64(e.Stats.OutputSimBytes) / readBW * float64(time.Second))
	loadTime += cost.JobStartup
	return loadTime < e.Stats.JobSimTime
}

// deleteTemps removes inter-job temporaries, the pre-ReStore "current
// practice".
func deleteTemps(eng *mapreduce.Engine, wf *physical.Workflow, jobs []*physical.Job) {
	finals := map[string]bool{}
	for p := range wf.FinalOutputs {
		finals[p] = true
	}
	for _, j := range jobs {
		if !finals[j.OutputPath] {
			_ = eng.FS().Delete(j.OutputPath)
		}
	}
}
