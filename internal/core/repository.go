package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"repro/internal/dfs"
)

// EntryStats carries the execution statistics the repository keeps per
// stored output, per the paper: input/output sizes and the average
// mapper/reducer execution times of the producing job.
type EntryStats struct {
	InputSimBytes  int64
	OutputSimBytes int64
	AvgMapTime     time.Duration
	AvgRedTime     time.Duration
	JobSimTime     time.Duration
}

// ioRatio is the ordering metric of Rule 2: input size over output size,
// higher is better.
func (s EntryStats) ioRatio() float64 {
	if s.OutputSimBytes <= 0 {
		return float64(s.InputSimBytes)
	}
	return float64(s.InputSimBytes) / float64(s.OutputSimBytes)
}

// Entry is one stored MapReduce job output: the physical plan that
// produced it, the output's location in the DFS, execution statistics,
// and usage bookkeeping. Sub-jobs are stored as full, independent
// MapReduce jobs indistinguishable from whole jobs, as in the paper.
type Entry struct {
	ID         string
	Plan       PlanSig
	OutputPath string
	Stats      EntryStats

	// InputVersions records the DFS version of every input dataset at
	// store time; eviction Rule 4 invalidates the entry when an input is
	// later deleted or modified.
	InputVersions map[string]int64

	// WholeJob marks entries that materialize a complete job rather
	// than an enumerated sub-job.
	WholeJob bool

	// Usage statistics (simulated clock).
	StoredAt    time.Duration
	LastReused  time.Duration
	TimesReused int
}

// Repository manages the stored job outputs. Plans are kept ordered so
// that a sequential scan finds the best match first: Rule 1 places
// subsuming plans ahead of the plans they subsume; Rule 2 orders
// incomparable plans by input/output ratio and then job execution time.
type Repository struct {
	entries []*Entry
	nextID  int
	byFP    map[string]*Entry
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{byFP: map[string]*Entry{}}
}

// Len returns the number of entries.
func (r *Repository) Len() int { return len(r.entries) }

// Entries returns the entries in scan order.
func (r *Repository) Entries() []*Entry { return r.entries }

// Lookup returns the entry whose plan fingerprint equals that of sig,
// or nil.
func (r *Repository) Lookup(sig PlanSig) *Entry {
	return r.byFP[sig.Fingerprint()]
}

// Insert adds an entry in its ordered position. Inserting a plan whose
// fingerprint already exists replaces the old entry's statistics and
// output location instead of duplicating it, and returns the existing
// entry.
func (r *Repository) Insert(e *Entry) *Entry {
	fp := e.Plan.Fingerprint()
	if old := r.byFP[fp]; old != nil {
		old.OutputPath = e.OutputPath
		old.Stats = e.Stats
		old.InputVersions = e.InputVersions
		old.StoredAt = e.StoredAt
		return old
	}
	r.nextID++
	if e.ID == "" {
		e.ID = fmt.Sprintf("e%d", r.nextID)
	}
	pos := len(r.entries)
	for i, x := range r.entries {
		if r.before(e, x) {
			pos = i
			break
		}
	}
	r.entries = append(r.entries, nil)
	copy(r.entries[pos+1:], r.entries[pos:])
	r.entries[pos] = e
	r.byFP[fp] = e
	return e
}

// before implements the scan-order comparison: Rule 1 (subsumption)
// then Rule 2 (input/output ratio, then execution time).
func (r *Repository) before(a, b *Entry) bool {
	aSubsumesB := Contains(a.Plan, b.Plan)
	bSubsumesA := Contains(b.Plan, a.Plan)
	if aSubsumesB != bSubsumesA {
		return aSubsumesB
	}
	ra, rb := a.Stats.ioRatio(), b.Stats.ioRatio()
	if ra != rb {
		return ra > rb
	}
	return a.Stats.JobSimTime > b.Stats.JobSimTime
}

// Remove deletes an entry by ID and returns it, or nil.
func (r *Repository) Remove(id string) *Entry {
	for i, e := range r.entries {
		if e.ID == id {
			r.entries = append(r.entries[:i], r.entries[i+1:]...)
			delete(r.byFP, e.Plan.Fingerprint())
			return e
		}
	}
	return nil
}

// Valid reports whether an entry is usable: its output still exists and
// none of its inputs were deleted or modified since it was stored
// (eviction Rule 4's condition, checked at match time).
func (r *Repository) Valid(e *Entry, fs *dfs.FS) bool {
	if !fs.Exists(e.OutputPath) {
		return false
	}
	for p, v := range e.InputVersions {
		if fs.Version(p) != v {
			return false
		}
	}
	return true
}

// Vacuum removes invalid entries (Rule 4) and, when window > 0, entries
// not reused within the window of simulated time (Rule 3). It returns
// the removed entries; the caller decides whether to also delete their
// stored outputs from the DFS.
func (r *Repository) Vacuum(fs *dfs.FS, now time.Duration, window time.Duration) []*Entry {
	var removed []*Entry
	kept := r.entries[:0]
	for _, e := range r.entries {
		bad := !r.Valid(e, fs)
		if !bad && window > 0 {
			last := e.StoredAt
			if e.LastReused > last {
				last = e.LastReused
			}
			if now-last > window {
				bad = true
			}
		}
		if bad {
			delete(r.byFP, e.Plan.Fingerprint())
			removed = append(removed, e)
		} else {
			kept = append(kept, e)
		}
	}
	r.entries = kept
	return removed
}

// NoteReuse records that an entry's output answered (part of) a query at
// simulated time now.
func (r *Repository) NoteReuse(e *Entry, now time.Duration) {
	e.TimesReused++
	e.LastReused = now
}

// gobRepository is the serialized form.
type gobRepository struct {
	Entries []*Entry
	NextID  int
}

// Save persists the repository into the DFS at path.
func (r *Repository) Save(fs *dfs.FS, path string) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(gobRepository{Entries: r.entries, NextID: r.nextID}); err != nil {
		return fmt.Errorf("core: encoding repository: %w", err)
	}
	return fs.WriteFile(path, buf.Bytes())
}

// LoadRepository restores a repository saved with Save.
func LoadRepository(fs *dfs.FS, path string) (*Repository, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var g gobRepository
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&g); err != nil {
		return nil, fmt.Errorf("core: decoding repository: %w", err)
	}
	r := NewRepository()
	r.nextID = g.NextID
	r.entries = g.Entries
	for _, e := range r.entries {
		r.byFP[e.Plan.Fingerprint()] = e
	}
	return r, nil
}
