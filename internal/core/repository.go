package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dfs"
	"repro/internal/physical"
)

// EntryStats carries the execution statistics the repository keeps per
// stored output, per the paper: input/output sizes and the average
// mapper/reducer execution times of the producing job.
type EntryStats struct {
	InputSimBytes  int64
	OutputSimBytes int64
	AvgMapTime     time.Duration
	AvgRedTime     time.Duration
	JobSimTime     time.Duration
}

// ioRatio is the ordering metric of Rule 2: input size over output size,
// higher is better.
func (s EntryStats) ioRatio() float64 {
	if s.OutputSimBytes <= 0 {
		return float64(s.InputSimBytes)
	}
	return float64(s.InputSimBytes) / float64(s.OutputSimBytes)
}

// Entry is one stored MapReduce job output: the physical plan that
// produced it, the output's location in the DFS, execution statistics,
// and usage bookkeeping. Sub-jobs are stored as full, independent
// MapReduce jobs indistinguishable from whole jobs, as in the paper.
//
// Concurrency: Plan, OutputPath, Stats, InputVersions, WholeJob and
// StoredAt are immutable once the entry is inserted — re-registering the
// same plan swaps in a fresh Entry value rather than mutating the old
// one, so concurrent readers holding a stale pointer still see a
// consistent snapshot. LastReused and TimesReused are mutated only by
// Repository methods under the repository lock.
type Entry struct {
	ID         string
	Plan       PlanSig
	OutputPath string
	Stats      EntryStats

	// InputVersions records the DFS version of every input dataset at
	// store time; eviction Rule 4 invalidates the entry when an input is
	// later deleted or modified.
	InputVersions map[string]int64

	// OutputVersion records the DFS version of the output dataset when
	// the entry was registered (post-commit for staged user outputs).
	// Valid invalidates the entry if the dataset is later overwritten —
	// e.g. another query renaming its own result over the same user
	// STORE path — so reuse can never serve data the entry's plan did
	// not produce. Zero (legacy saved repositories) skips the check.
	OutputVersion int64

	// InputBases records, per input dataset, the file-inventory
	// snapshot taken when the output was materialized — the base
	// observation append detection (dfs.Classify) compares against.
	// Nil or missing a path on legacy entries, which then never
	// delta-refresh.
	InputBases map[string]dfs.Snapshot

	// Merge is the entry's mergeability classification, derived from
	// its physical sub-plan at insert time: non-nil means the stored
	// output can be combined with a delta run over appended input
	// (see physical.AnalyzeMerge). Nil entries fall back to cold
	// recompute-and-replace when their inputs change.
	Merge *physical.MergeSpec

	// WholeJob marks entries that materialize a complete job rather
	// than an enumerated sub-job.
	WholeJob bool

	// Usage statistics (simulated clock).
	StoredAt    time.Duration
	LastReused  time.Duration
	TimesReused int

	// size memoizes the stored output's byte total, stamped with the
	// output dataset's version, so budget sweeps stop re-sizing every
	// entry on every pass. Installed by Insert/LoadRepository (gob
	// skips unexported fields); entries outside a repository carry nil
	// and fall back to uncached sizing.
	size *outputSize

	// fp caches the plan's canonical fingerprint. Stamped before the
	// entry is published (Insert, recovery), so recovered entries answer
	// identity questions without decoding their plan.
	fp string

	// lazy, on entries recovered from the durable log, holds the
	// still-encoded plan: the footprint and fingerprint persisted
	// alongside it serve the index and identity, and the plan itself is
	// decoded only when a containment traversal first needs it.
	lazy *lazyPlan

	// logSeq is the durable-log sequence number of the record that last
	// wrote this entry (zero outside durable repositories). Replaying a
	// log record older than the entry's current state is a no-op.
	logSeq uint64
}

// lazyPlan defers decoding a recovered entry's plan until a matcher
// traversal needs it. Entries are shared across goroutines, so the
// decode is a Once.
type lazyPlan struct {
	once sync.Once
	enc  []byte
	plan PlanSig
}

// planDecodes counts lazy plan decodes process-wide; the recovery suite
// asserts a cold recovery performs none.
var planDecodes atomic.Int64

// PlanDecodes reports how many recovered entry plans have been decoded
// so far in this process (cold recovery must not decode any: footprints
// and fingerprints are persisted; plans are needed only by containment
// traversals).
func PlanDecodes() int64 { return planDecodes.Load() }

// planSig returns the entry's plan signature DAG, decoding a recovered
// entry's persisted encoding on first use.
func (e *Entry) planSig() PlanSig {
	if e.lazy == nil {
		return e.Plan
	}
	e.lazy.once.Do(func() {
		planDecodes.Add(1)
		var p PlanSig
		if err := gob.NewDecoder(bytes.NewReader(e.lazy.enc)).Decode(&p); err == nil {
			e.lazy.plan = p
		}
	})
	return e.lazy.plan
}

// fingerprint returns the plan's canonical fingerprint from the cache
// stamped at insert/recovery time, computing it only for entries that
// never passed through a repository.
func (e *Entry) fingerprint() string {
	if e.fp != "" {
		return e.fp
	}
	p := e.planSig()
	return p.Fingerprint()
}

// outputSize is the version-stamped size cache of one entry's stored
// output. Concurrent sweeps share entries, so the pair is swapped
// atomically as one value.
type outputSize struct {
	v atomic.Pointer[sizedVersion]
}

type sizedVersion struct {
	version int64
	bytes   int64
}

// storedBytes returns the byte total of the entry's stored output,
// memoized until the output dataset's version changes — any write,
// delete or rename touching the dataset bumps its version and so
// invalidates the cache. Only leaf outputs (the path is itself one
// dataset or file, the way the engine materializes them) are cached;
// the rare prefix-of-several-datasets path is re-sized every call,
// since its nested datasets version independently.
func (e *Entry) storedBytes(fs dfs.Backend) int64 {
	c := e.size
	if c != nil {
		if s := c.v.Load(); s != nil && s.version == fs.Version(e.OutputPath) {
			return s.bytes
		}
	}
	n, ver, leaf := fs.Stat(e.OutputPath)
	if c != nil && leaf {
		c.v.Store(&sizedVersion{version: ver, bytes: n})
	}
	return n
}

// Repository manages the stored job outputs. Plans are kept ordered so
// that a sequential scan finds the best match first: Rule 1 places
// subsuming plans ahead of the plans they subsume; Rule 2 orders
// incomparable plans by input/output ratio and then job execution time.
//
// Alongside the ordered entries the repository maintains a signature
// index (planIndex): entries are posted under their frontier signature
// with a footprint summary, so Probe can hand the matcher only the
// candidates whose containment test could possibly succeed, in the same
// preference order the scan would visit them. Every mutation — Insert
// (including fingerprint-replacement re-sorts), Remove, EvictUnpinned,
// Vacuum, LoadRepository — keeps the index coherent under the
// repository lock.
//
// All methods are safe for concurrent use: ReStore sits between many
// clients and the cluster, and concurrent Execute calls insert, match
// and evict against one shared repository.
//
// The Repository is deliberately passive — an ordered, synchronized
// map. The policies that make it a managed shared resource (the
// cross-query claim protocol, the byte budget and its eviction
// policies, orphan reclamation) live in StorageManager, which wraps a
// Repository and drives Vacuum/EvictUnpinned under the pin machinery.
type Repository struct {
	mu      sync.RWMutex
	entries []*Entry
	nextID  int
	byFP    map[string]*Entry
	index   *planIndex

	// idPrefix prefixes generated entry IDs ("e3" → "<prefix>e3") so
	// repositories journaling into one shared durable log — each process
	// allocates IDs independently — can never collide. Set once before
	// the first Insert.
	idPrefix string

	// jn, when non-nil, receives every entry mutation under the write
	// lock: the durable event log appends a record per Insert
	// (including replacement), Remove, EvictUnpinned and Vacuum.
	// Replayed records from other processes are applied through
	// applyPut/applyRemove, which bypass it.
	jn journal

	// negs is the bounded cross-query negative-containment cache; a nil
	// pointer disables it. It is read on the match path while the
	// repository read lock is already held, so it hangs off an atomic
	// pointer rather than the lock. Keys hold entry pointers, so it is
	// invalidated whenever an entry is replaced or removed.
	negs atomic.Pointer[negCache]

	// pinMu guards pins. Lock order: mu before pinMu (Pin is called
	// from Scan callbacks holding mu's read side; Vacuum checks pins
	// while holding mu's write side; nothing takes pinMu then mu).
	pinMu sync.Mutex
	// pins counts in-flight executions whose rewritten jobs read an
	// entry's stored output; Vacuum spares pinned entries so another
	// client's eviction pass cannot delete an output between this
	// client's rewrite and its engine run.
	pins map[string]int
	// pinHook, when non-nil, mirrors pin transitions to shared storage
	// (PinSet): 0→1 broadcasts the pin to peer processes, 1→0 withdraws
	// it. Called under pinMu, so the broadcast is placed before the
	// match that pinned returns to its caller.
	pinHook pinBroadcast

	// Matcher counters (MatcherStats), all monotonic. The traversal
	// counters are fed by Rewriters, which own the per-submission
	// negative memo but report here so stats span submissions.
	probes          atomic.Int64
	probeCandidates atomic.Int64
	scans           atomic.Int64
	scanVisited     atomic.Int64
	traversals      atomic.Int64
	matches         atomic.Int64
	negHits         atomic.Int64
}

// NewRepository returns an empty repository with the default-sized
// cross-query negative cache.
func NewRepository() *Repository {
	r := &Repository{
		byFP:  map[string]*Entry{},
		pins:  map[string]int{},
		index: newPlanIndex(),
	}
	r.negs.Store(newNegCache(DefaultNegCacheSize))
	return r
}

// SetIDPrefix makes generated entry IDs "<prefix>eN". Durable
// repositories set their writer ID here so two processes inserting into
// one shared log never mint the same ID. Call before the first Insert.
func (r *Repository) SetIDPrefix(prefix string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.idPrefix = prefix
}

// journal receives repository mutations under the write lock; the
// durable event log implements it. pos is the entry's scan position
// after the mutation, persisted so recovery can rebuild the Rules 1/2
// order without re-running the ordering comparisons.
type journal interface {
	appendPut(e *Entry, f *footprint, pos int)
	appendRemove(e *Entry)
}

// SetJournal installs the mutation journal (nil detaches it). Existing
// entries are not retro-journaled; attach before the first mutation.
func (r *Repository) SetJournal(j journal) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.jn = j
}

// SetNegCacheSize resizes the cross-query negative-containment cache to
// hold at most n rejections (n <= 0 disables it). The cache is cleared.
func (r *Repository) SetNegCacheSize(n int) {
	r.negs.Store(newNegCache(n))
}

// Len returns the number of entries.
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Entries returns a copy of the entries slice in scan order. Callers get
// their own slice — mutating it cannot corrupt the repository's
// eviction and matching order.
func (r *Repository) Entries() []*Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*Entry(nil), r.entries...)
}

// Scan calls fn for each entry in scan order under the read lock,
// stopping early when fn returns false. It avoids the per-call copy of
// Entries for hot paths like the storage manager's accounting sweeps;
// fn must not call back into the repository.
func (r *Repository) Scan(fn func(e *Entry) bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, e := range r.entries {
		if !fn(e) {
			return
		}
	}
}

// Probe calls fn, in scan order and under the read lock, for each entry
// the signature index nominates as a containment candidate for the
// probing job plan: the entries whose signature footprint is a subset
// of the job's. Every entry the full traversal could match is
// nominated (the filters are necessary conditions of containment), so
// the first fn match equals the first Scan match; fn must not call back
// into the repository.
func (r *Repository) Probe(job PlanSig, fn func(e *Entry) bool) {
	r.ProbeObserved(job, fn, nil)
}

// ProbeObserved is Probe with decision provenance: missed, when
// non-nil, is called for each entry the index looked at but rejected
// on the footprint-subset prefilter — the "footprint miss" verdict a
// query trace records. The untraced path passes nil and pays nothing.
func (r *Repository) ProbeObserved(job PlanSig, fn func(e *Entry) bool, missed func(e *Entry)) {
	sigSet, loadSet := probeSets(job)
	r.mu.RLock()
	defer r.mu.RUnlock()
	cands := r.index.candidates(sigSet, loadSet, missed)
	r.probes.Add(1)
	r.probeCandidates.Add(int64(len(cands)))
	for _, e := range cands {
		if !fn(e) {
			return
		}
	}
}

// noteScan records one linear matching scan over n entries (rewriters
// in LinearScan mode).
func (r *Repository) noteScan(n int64) {
	r.scans.Add(1)
	r.scanVisited.Add(n)
}

// noteMatchWork records the traversal work of one matching pass.
func (r *Repository) noteMatchWork(traversals, negHits int64, matched bool) {
	r.traversals.Add(traversals)
	r.negHits.Add(negHits)
	if matched {
		r.matches.Add(1)
	}
}

// MatcherStats snapshots the matcher counters and index gauges.
func (r *Repository) MatcherStats() MatcherStats {
	r.mu.RLock()
	entries, sigs := len(r.index.meta), len(r.index.postings)
	r.mu.RUnlock()
	st := MatcherStats{
		Probes:          r.probes.Load(),
		Candidates:      r.probeCandidates.Load(),
		Scans:           r.scans.Load(),
		ScanVisited:     r.scanVisited.Load(),
		FullTraversals:  r.traversals.Load(),
		Matches:         r.matches.Load(),
		NegativeHits:    r.negHits.Load(),
		IndexEntries:    entries,
		IndexSignatures: sigs,
	}
	st.SharedNegHits, st.SharedNegEvictions, st.SharedNegSize = r.negs.Load().stats()
	return st
}

// sharedNegCached reports whether the cross-query cache has memoized
// this entry-version/job rejection. It takes no repository lock (the
// match path calls it while already holding the read side).
func (r *Repository) sharedNegCached(k negKey) bool {
	return r.negs.Load().lookup(k)
}

// cacheSharedNeg memoizes a failed containment test across queries.
func (r *Repository) cacheSharedNeg(k negKey) {
	r.negs.Load().add(k)
}

// Lookup returns the entry whose plan fingerprint equals that of sig,
// or nil.
func (r *Repository) Lookup(sig PlanSig) *Entry {
	fp := sig.Fingerprint()
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byFP[fp]
}

// Insert adds an entry in its ordered position. Inserting a plan whose
// fingerprint already exists replaces the old entry's statistics and
// output location instead of duplicating it — the replacement is a fresh
// Entry value carrying over the old identity and usage counters, so
// readers holding the old pointer are unaffected — and returns the
// replacement. Replacements are re-sorted and re-indexed: refreshed
// statistics can change the entry's Rule 2 rank, and the matcher relies
// on candidate order being the preference order.
func (r *Repository) Insert(e *Entry) *Entry {
	fp := e.fingerprint()
	r.mu.Lock()
	defer r.mu.Unlock()
	if old := r.byFP[fp]; old != nil {
		ne := *old
		ne.OutputPath = e.OutputPath
		ne.Stats = e.Stats
		ne.InputVersions = e.InputVersions
		ne.OutputVersion = e.OutputVersion
		ne.InputBases = e.InputBases
		ne.Merge = e.Merge
		ne.StoredAt = e.StoredAt
		// The replacement may point at a different output; never inherit
		// the old entry's memoized size.
		ne.size = &outputSize{}
		for i, x := range r.entries {
			if x == old {
				r.entries = append(r.entries[:i], r.entries[i+1:]...)
				break
			}
		}
		r.index.remove(old)
		r.negs.Load().invalidate(old)
		r.index.add(&ne)
		r.insertOrdered(&ne)
		r.byFP[fp] = &ne
		r.journalPut(&ne)
		return &ne
	}
	r.nextID++
	if e.ID == "" {
		e.ID = fmt.Sprintf("%se%d", r.idPrefix, r.nextID)
	}
	e.fp = fp
	if e.size == nil {
		e.size = &outputSize{}
	}
	r.index.add(e)
	r.insertOrdered(e)
	r.byFP[fp] = e
	r.journalPut(e)
	return e
}

// journalPut reports an inserted or replaced entry to the journal with
// its post-insert scan position (mu held).
func (r *Repository) journalPut(e *Entry) {
	if r.jn != nil {
		r.jn.appendPut(e, r.index.footprintFor(e), r.index.pos[e.ID])
	}
}

// journalRemove reports a removed entry to the journal (mu held).
func (r *Repository) journalRemove(e *Entry) {
	if r.jn != nil {
		r.jn.appendRemove(e)
	}
}

// insertOrdered splices e into its Rules 1/2 scan position and
// renumbers the index's scan positions (mu held; e must already be
// indexed so before can prefilter with its footprint).
func (r *Repository) insertOrdered(e *Entry) {
	pos := len(r.entries)
	for i, x := range r.entries {
		if r.before(e, x) {
			pos = i
			break
		}
	}
	r.entries = append(r.entries, nil)
	copy(r.entries[pos+1:], r.entries[pos:])
	r.entries[pos] = e
	r.index.renumber(r.entries)
}

// before implements the scan-order comparison: Rule 1 (subsumption)
// then Rule 2 (input/output ratio, then execution time). The footprint
// prefilter skips the pairwise traversals entirely for the common case
// of entries over unrelated inputs — a subsuming plan necessarily
// carries a superset footprint — keeping large-repository inserts
// cheap.
func (r *Repository) before(a, b *Entry) bool {
	af, bf := r.index.footprintFor(a), r.index.footprintFor(b)
	aSubsumesB := bf.coveredBy(af) && Contains(a.planSig(), b.planSig())
	bSubsumesA := af.coveredBy(bf) && Contains(b.planSig(), a.planSig())
	if aSubsumesB != bSubsumesA {
		return aSubsumesB
	}
	ra, rb := a.Stats.ioRatio(), b.Stats.ioRatio()
	if ra != rb {
		return ra > rb
	}
	return a.Stats.JobSimTime > b.Stats.JobSimTime
}

// EvictUnpinned removes the entries with the given IDs under the
// repository lock, sparing pinned ones — an in-flight rewrite reading a
// stored output keeps it alive regardless of what the eviction policy
// chose — and returns the entries actually removed, in the given order.
func (r *Repository) EvictUnpinned(ids []string) []*Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	var removed []*Entry
	for _, id := range ids {
		if r.pinned(id) {
			continue
		}
		for i, e := range r.entries {
			if e.ID == id {
				r.entries = append(r.entries[:i], r.entries[i+1:]...)
				delete(r.byFP, e.fingerprint())
				r.index.remove(e)
				r.negs.Load().invalidate(e)
				r.journalRemove(e)
				removed = append(removed, e)
				break
			}
		}
	}
	if len(removed) > 0 {
		r.index.renumber(r.entries)
	}
	return removed
}

// Remove deletes an entry by ID and returns it, or nil.
func (r *Repository) Remove(id string) *Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, e := range r.entries {
		if e.ID == id {
			r.entries = append(r.entries[:i], r.entries[i+1:]...)
			delete(r.byFP, e.fingerprint())
			r.index.remove(e)
			r.negs.Load().invalidate(e)
			r.journalRemove(e)
			r.index.renumber(r.entries)
			return e
		}
	}
	return nil
}

// Valid reports whether an entry is usable: its output still exists and
// none of its inputs were deleted or modified since it was stored
// (eviction Rule 4's condition, checked at match time). It reads only
// the entry's immutable fields and the FS, so it takes no repository
// lock and is safe to call from Scan callbacks.
func (r *Repository) Valid(e *Entry, fs dfs.Backend) bool {
	if !fs.Exists(e.OutputPath) {
		return false
	}
	if e.OutputVersion != 0 && fs.Version(e.OutputPath) != e.OutputVersion {
		return false
	}
	for p, v := range e.InputVersions {
		if fs.Version(p) != v {
			return false
		}
	}
	return true
}

// Vacuum removes invalid entries (Rule 4) and, when window > 0, entries
// not reused within the window of simulated time (Rule 3). It returns
// the removed entries; the caller decides whether to also delete their
// stored outputs from the DFS.
func (r *Repository) Vacuum(fs dfs.Backend, now time.Duration, window time.Duration) []*Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	var removed []*Entry
	kept := r.entries[:0]
	for _, e := range r.entries {
		if r.pinned(e.ID) {
			kept = append(kept, e)
			continue
		}
		bad := !r.Valid(e, fs)
		if !bad && window > 0 {
			last := e.StoredAt
			if e.LastReused > last {
				last = e.LastReused
			}
			if now-last > window {
				bad = true
			}
		}
		if bad {
			delete(r.byFP, e.fingerprint())
			r.index.remove(e)
			r.negs.Load().invalidate(e)
			r.journalRemove(e)
			removed = append(removed, e)
		} else {
			kept = append(kept, e)
		}
	}
	r.entries = kept
	if len(removed) > 0 {
		r.index.renumber(r.entries)
	}
	return removed
}

// NoteReuse records that an entry's output answered (part of) a query at
// simulated time now.
func (r *Repository) NoteReuse(e *Entry, now time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e.TimesReused++
	e.LastReused = now
}

// Pin marks the entry as referenced by an in-flight execution: Vacuum
// will not remove it (nor let its output be deleted) until a matching
// Unpin. Pins nest. Safe to call from a Scan or Probe callback — the
// rewriter pins at match time, while still under the read lock, so no
// vacuum can slip between matching an entry and protecting it.
func (r *Repository) Pin(id string) {
	r.pinMu.Lock()
	defer r.pinMu.Unlock()
	r.pins[id]++
	if r.pins[id] == 1 && r.pinHook != nil {
		r.pinHook.notePin(id)
	}
}

// Unpin releases one Pin.
func (r *Repository) Unpin(id string) {
	r.pinMu.Lock()
	defer r.pinMu.Unlock()
	if r.pins[id] <= 1 {
		delete(r.pins, id)
		if r.pinHook != nil {
			r.pinHook.noteUnpin(id)
		}
	} else {
		r.pins[id]--
	}
}

// pinBroadcast mirrors local pin transitions to shared storage so
// peer processes see them; see PinSet.
type pinBroadcast interface {
	notePin(id string)
	noteUnpin(id string)
}

// SetPinBroadcast attaches the cross-process pin mirror. Call once at
// construction, before queries run.
func (r *Repository) SetPinBroadcast(pb pinBroadcast) {
	r.pinMu.Lock()
	defer r.pinMu.Unlock()
	r.pinHook = pb
}

// pinned reports whether the entry has in-flight references.
func (r *Repository) pinned(id string) bool {
	r.pinMu.Lock()
	defer r.pinMu.Unlock()
	return r.pins[id] > 0
}

// gobRepository is the serialized form of the legacy snapshot format
// (format compatibility is pinned by a golden-file test). The signature
// index is not persisted: LoadRepository rebuilds it from the entries
// in one pass.
type gobRepository struct {
	Entries []*Entry
	NextID  int
}

// Save persists the repository into the DFS at path. The snapshot is
// written to a temporary sibling and renamed into place, so a crash
// mid-save can never leave a torn repository file: path holds either
// the previous complete snapshot or the new one.
func (r *Repository) Save(fs dfs.Backend, path string) error {
	r.mu.RLock()
	entries := make([]*Entry, len(r.entries))
	for i, e := range r.entries {
		if e.lazy != nil {
			// Recovered entries keep their plan encoded; the legacy
			// snapshot format stores it decoded.
			se := *e
			se.Plan = e.planSig()
			e = &se
		}
		entries[i] = e
	}
	// Encode while still holding the read lock: NoteReuse mutates usage
	// counters in place under the write lock, so gob's reflection must
	// not read the entries unlocked.
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(gobRepository{Entries: entries, NextID: r.nextID})
	r.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("core: encoding repository: %w", err)
	}
	tmp := path + ".saving"
	if err := fs.WriteFile(tmp, buf.Bytes()); err != nil {
		return fmt.Errorf("core: saving repository: %w", err)
	}
	if _, err := fs.Rename(tmp, path); err != nil {
		return fmt.Errorf("core: committing repository snapshot: %w", err)
	}
	return nil
}

// LoadRepository restores a repository saved with Save, rebuilding the
// signature index and installing fresh size caches.
func LoadRepository(fs dfs.Backend, path string) (*Repository, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var g gobRepository
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&g); err != nil {
		return nil, fmt.Errorf("core: decoding repository: %w", err)
	}
	r := NewRepository()
	r.nextID = g.NextID
	r.entries = g.Entries
	for _, e := range r.entries {
		e.size = &outputSize{}
		e.fp = e.Plan.Fingerprint()
		r.byFP[e.fp] = e
		r.index.add(e)
	}
	r.index.renumber(r.entries)
	return r, nil
}

// lookupFP returns the entry with the given plan fingerprint, or nil.
func (r *Repository) lookupFP(fp string) *Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byFP[fp]
}

// applyPut applies a replayed durable-log put: insert e (replacing any
// entry with the same fingerprint) at scan position pos, using the
// record's persisted footprint, without journaling. A local entry
// written by a log record at or after seq wins over the replay.
func (r *Repository) applyPut(e *Entry, f *footprint, pos int, seq uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old := r.byFP[e.fp]; old != nil {
		if old.logSeq >= seq {
			return
		}
		for i, x := range r.entries {
			if x == old {
				r.entries = append(r.entries[:i], r.entries[i+1:]...)
				break
			}
		}
		r.index.remove(old)
		r.negs.Load().invalidate(old)
	}
	e.logSeq = seq
	if e.size == nil {
		e.size = &outputSize{}
	}
	if pos < 0 || pos > len(r.entries) {
		pos = len(r.entries)
	}
	r.entries = append(r.entries, nil)
	copy(r.entries[pos+1:], r.entries[pos:])
	r.entries[pos] = e
	r.index.addWithFootprint(e, f)
	r.index.renumber(r.entries)
	r.byFP[e.fp] = e
}

// applyRemove applies a replayed durable-log remove without journaling;
// an entry rewritten locally after seq survives.
func (r *Repository) applyRemove(id string, seq uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, e := range r.entries {
		if e.ID != id {
			continue
		}
		if e.logSeq > seq {
			return
		}
		r.entries = append(r.entries[:i], r.entries[i+1:]...)
		delete(r.byFP, e.fingerprint())
		r.index.remove(e)
		r.negs.Load().invalidate(e)
		r.index.renumber(r.entries)
		return
	}
}
