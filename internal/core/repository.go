package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dfs"
)

// EntryStats carries the execution statistics the repository keeps per
// stored output, per the paper: input/output sizes and the average
// mapper/reducer execution times of the producing job.
type EntryStats struct {
	InputSimBytes  int64
	OutputSimBytes int64
	AvgMapTime     time.Duration
	AvgRedTime     time.Duration
	JobSimTime     time.Duration
}

// ioRatio is the ordering metric of Rule 2: input size over output size,
// higher is better.
func (s EntryStats) ioRatio() float64 {
	if s.OutputSimBytes <= 0 {
		return float64(s.InputSimBytes)
	}
	return float64(s.InputSimBytes) / float64(s.OutputSimBytes)
}

// Entry is one stored MapReduce job output: the physical plan that
// produced it, the output's location in the DFS, execution statistics,
// and usage bookkeeping. Sub-jobs are stored as full, independent
// MapReduce jobs indistinguishable from whole jobs, as in the paper.
//
// Concurrency: Plan, OutputPath, Stats, InputVersions, WholeJob and
// StoredAt are immutable once the entry is inserted — re-registering the
// same plan swaps in a fresh Entry value rather than mutating the old
// one, so concurrent readers holding a stale pointer still see a
// consistent snapshot. LastReused and TimesReused are mutated only by
// Repository methods under the repository lock.
type Entry struct {
	ID         string
	Plan       PlanSig
	OutputPath string
	Stats      EntryStats

	// InputVersions records the DFS version of every input dataset at
	// store time; eviction Rule 4 invalidates the entry when an input is
	// later deleted or modified.
	InputVersions map[string]int64

	// OutputVersion records the DFS version of the output dataset when
	// the entry was registered (post-commit for staged user outputs).
	// Valid invalidates the entry if the dataset is later overwritten —
	// e.g. another query renaming its own result over the same user
	// STORE path — so reuse can never serve data the entry's plan did
	// not produce. Zero (legacy saved repositories) skips the check.
	OutputVersion int64

	// WholeJob marks entries that materialize a complete job rather
	// than an enumerated sub-job.
	WholeJob bool

	// Usage statistics (simulated clock).
	StoredAt    time.Duration
	LastReused  time.Duration
	TimesReused int

	// size memoizes the stored output's byte total, stamped with the
	// output dataset's version, so budget sweeps stop re-sizing every
	// entry on every pass. Installed by Insert/LoadRepository (gob
	// skips unexported fields); entries outside a repository carry nil
	// and fall back to uncached sizing.
	size *outputSize
}

// outputSize is the version-stamped size cache of one entry's stored
// output. Concurrent sweeps share entries, so the pair is swapped
// atomically as one value.
type outputSize struct {
	v atomic.Pointer[sizedVersion]
}

type sizedVersion struct {
	version int64
	bytes   int64
}

// storedBytes returns the byte total of the entry's stored output,
// memoized until the output dataset's version changes — any write,
// delete or rename touching the dataset bumps its version and so
// invalidates the cache. Only leaf outputs (the path is itself one
// dataset or file, the way the engine materializes them) are cached;
// the rare prefix-of-several-datasets path is re-sized every call,
// since its nested datasets version independently.
func (e *Entry) storedBytes(fs *dfs.FS) int64 {
	c := e.size
	if c != nil {
		if s := c.v.Load(); s != nil && s.version == fs.Version(e.OutputPath) {
			return s.bytes
		}
	}
	n, ver, leaf := fs.Stat(e.OutputPath)
	if c != nil && leaf {
		c.v.Store(&sizedVersion{version: ver, bytes: n})
	}
	return n
}

// Repository manages the stored job outputs. Plans are kept ordered so
// that a sequential scan finds the best match first: Rule 1 places
// subsuming plans ahead of the plans they subsume; Rule 2 orders
// incomparable plans by input/output ratio and then job execution time.
//
// Alongside the ordered entries the repository maintains a signature
// index (planIndex): entries are posted under their frontier signature
// with a footprint summary, so Probe can hand the matcher only the
// candidates whose containment test could possibly succeed, in the same
// preference order the scan would visit them. Every mutation — Insert
// (including fingerprint-replacement re-sorts), Remove, EvictUnpinned,
// Vacuum, LoadRepository — keeps the index coherent under the
// repository lock.
//
// All methods are safe for concurrent use: ReStore sits between many
// clients and the cluster, and concurrent Execute calls insert, match
// and evict against one shared repository.
//
// The Repository is deliberately passive — an ordered, synchronized
// map. The policies that make it a managed shared resource (the
// cross-query claim protocol, the byte budget and its eviction
// policies, orphan reclamation) live in StorageManager, which wraps a
// Repository and drives Vacuum/EvictUnpinned under the pin machinery.
type Repository struct {
	mu      sync.RWMutex
	entries []*Entry
	nextID  int
	byFP    map[string]*Entry
	index   *planIndex

	// pinMu guards pins. Lock order: mu before pinMu (Pin is called
	// from Scan callbacks holding mu's read side; Vacuum checks pins
	// while holding mu's write side; nothing takes pinMu then mu).
	pinMu sync.Mutex
	// pins counts in-flight executions whose rewritten jobs read an
	// entry's stored output; Vacuum spares pinned entries so another
	// client's eviction pass cannot delete an output between this
	// client's rewrite and its engine run.
	pins map[string]int

	// Matcher counters (MatcherStats), all monotonic. The traversal
	// counters are fed by Rewriters, which own the per-submission
	// negative memo but report here so stats span submissions.
	probes          atomic.Int64
	probeCandidates atomic.Int64
	scans           atomic.Int64
	scanVisited     atomic.Int64
	traversals      atomic.Int64
	matches         atomic.Int64
	negHits         atomic.Int64
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{byFP: map[string]*Entry{}, pins: map[string]int{}, index: newPlanIndex()}
}

// Len returns the number of entries.
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Entries returns a copy of the entries slice in scan order. Callers get
// their own slice — mutating it cannot corrupt the repository's
// eviction and matching order.
func (r *Repository) Entries() []*Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*Entry(nil), r.entries...)
}

// Scan calls fn for each entry in scan order under the read lock,
// stopping early when fn returns false. It avoids the per-call copy of
// Entries for hot paths like the storage manager's accounting sweeps;
// fn must not call back into the repository.
func (r *Repository) Scan(fn func(e *Entry) bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, e := range r.entries {
		if !fn(e) {
			return
		}
	}
}

// Probe calls fn, in scan order and under the read lock, for each entry
// the signature index nominates as a containment candidate for the
// probing job plan: the entries whose signature footprint is a subset
// of the job's. Every entry the full traversal could match is
// nominated (the filters are necessary conditions of containment), so
// the first fn match equals the first Scan match; fn must not call back
// into the repository.
func (r *Repository) Probe(job PlanSig, fn func(e *Entry) bool) {
	sigSet, loadSet := probeSets(job)
	r.mu.RLock()
	defer r.mu.RUnlock()
	cands := r.index.candidates(sigSet, loadSet)
	r.probes.Add(1)
	r.probeCandidates.Add(int64(len(cands)))
	for _, e := range cands {
		if !fn(e) {
			return
		}
	}
}

// noteScan records one linear matching scan over n entries (rewriters
// in LinearScan mode).
func (r *Repository) noteScan(n int64) {
	r.scans.Add(1)
	r.scanVisited.Add(n)
}

// noteMatchWork records the traversal work of one matching pass.
func (r *Repository) noteMatchWork(traversals, negHits int64, matched bool) {
	r.traversals.Add(traversals)
	r.negHits.Add(negHits)
	if matched {
		r.matches.Add(1)
	}
}

// MatcherStats snapshots the matcher counters and index gauges.
func (r *Repository) MatcherStats() MatcherStats {
	r.mu.RLock()
	entries, sigs := len(r.index.meta), len(r.index.postings)
	r.mu.RUnlock()
	return MatcherStats{
		Probes:          r.probes.Load(),
		Candidates:      r.probeCandidates.Load(),
		Scans:           r.scans.Load(),
		ScanVisited:     r.scanVisited.Load(),
		FullTraversals:  r.traversals.Load(),
		Matches:         r.matches.Load(),
		NegativeHits:    r.negHits.Load(),
		IndexEntries:    entries,
		IndexSignatures: sigs,
	}
}

// Lookup returns the entry whose plan fingerprint equals that of sig,
// or nil.
func (r *Repository) Lookup(sig PlanSig) *Entry {
	fp := sig.Fingerprint()
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byFP[fp]
}

// Insert adds an entry in its ordered position. Inserting a plan whose
// fingerprint already exists replaces the old entry's statistics and
// output location instead of duplicating it — the replacement is a fresh
// Entry value carrying over the old identity and usage counters, so
// readers holding the old pointer are unaffected — and returns the
// replacement. Replacements are re-sorted and re-indexed: refreshed
// statistics can change the entry's Rule 2 rank, and the matcher relies
// on candidate order being the preference order.
func (r *Repository) Insert(e *Entry) *Entry {
	fp := e.Plan.Fingerprint()
	r.mu.Lock()
	defer r.mu.Unlock()
	if old := r.byFP[fp]; old != nil {
		ne := *old
		ne.OutputPath = e.OutputPath
		ne.Stats = e.Stats
		ne.InputVersions = e.InputVersions
		ne.OutputVersion = e.OutputVersion
		ne.StoredAt = e.StoredAt
		// The replacement may point at a different output; never inherit
		// the old entry's memoized size.
		ne.size = &outputSize{}
		for i, x := range r.entries {
			if x == old {
				r.entries = append(r.entries[:i], r.entries[i+1:]...)
				break
			}
		}
		r.index.remove(old)
		r.index.add(&ne)
		r.insertOrdered(&ne)
		r.byFP[fp] = &ne
		return &ne
	}
	r.nextID++
	if e.ID == "" {
		e.ID = fmt.Sprintf("e%d", r.nextID)
	}
	if e.size == nil {
		e.size = &outputSize{}
	}
	r.index.add(e)
	r.insertOrdered(e)
	r.byFP[fp] = e
	return e
}

// insertOrdered splices e into its Rules 1/2 scan position and
// renumbers the index's scan positions (mu held; e must already be
// indexed so before can prefilter with its footprint).
func (r *Repository) insertOrdered(e *Entry) {
	pos := len(r.entries)
	for i, x := range r.entries {
		if r.before(e, x) {
			pos = i
			break
		}
	}
	r.entries = append(r.entries, nil)
	copy(r.entries[pos+1:], r.entries[pos:])
	r.entries[pos] = e
	r.index.renumber(r.entries)
}

// before implements the scan-order comparison: Rule 1 (subsumption)
// then Rule 2 (input/output ratio, then execution time). The footprint
// prefilter skips the pairwise traversals entirely for the common case
// of entries over unrelated inputs — a subsuming plan necessarily
// carries a superset footprint — keeping large-repository inserts
// cheap.
func (r *Repository) before(a, b *Entry) bool {
	af, bf := r.index.footprintFor(a), r.index.footprintFor(b)
	aSubsumesB := bf.coveredBy(af) && Contains(a.Plan, b.Plan)
	bSubsumesA := af.coveredBy(bf) && Contains(b.Plan, a.Plan)
	if aSubsumesB != bSubsumesA {
		return aSubsumesB
	}
	ra, rb := a.Stats.ioRatio(), b.Stats.ioRatio()
	if ra != rb {
		return ra > rb
	}
	return a.Stats.JobSimTime > b.Stats.JobSimTime
}

// EvictUnpinned removes the entries with the given IDs under the
// repository lock, sparing pinned ones — an in-flight rewrite reading a
// stored output keeps it alive regardless of what the eviction policy
// chose — and returns the entries actually removed, in the given order.
func (r *Repository) EvictUnpinned(ids []string) []*Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	var removed []*Entry
	for _, id := range ids {
		if r.pinned(id) {
			continue
		}
		for i, e := range r.entries {
			if e.ID == id {
				r.entries = append(r.entries[:i], r.entries[i+1:]...)
				delete(r.byFP, e.Plan.Fingerprint())
				r.index.remove(e)
				removed = append(removed, e)
				break
			}
		}
	}
	if len(removed) > 0 {
		r.index.renumber(r.entries)
	}
	return removed
}

// Remove deletes an entry by ID and returns it, or nil.
func (r *Repository) Remove(id string) *Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, e := range r.entries {
		if e.ID == id {
			r.entries = append(r.entries[:i], r.entries[i+1:]...)
			delete(r.byFP, e.Plan.Fingerprint())
			r.index.remove(e)
			r.index.renumber(r.entries)
			return e
		}
	}
	return nil
}

// Valid reports whether an entry is usable: its output still exists and
// none of its inputs were deleted or modified since it was stored
// (eviction Rule 4's condition, checked at match time). It reads only
// the entry's immutable fields and the FS, so it takes no repository
// lock and is safe to call from Scan callbacks.
func (r *Repository) Valid(e *Entry, fs *dfs.FS) bool {
	if !fs.Exists(e.OutputPath) {
		return false
	}
	if e.OutputVersion != 0 && fs.Version(e.OutputPath) != e.OutputVersion {
		return false
	}
	for p, v := range e.InputVersions {
		if fs.Version(p) != v {
			return false
		}
	}
	return true
}

// Vacuum removes invalid entries (Rule 4) and, when window > 0, entries
// not reused within the window of simulated time (Rule 3). It returns
// the removed entries; the caller decides whether to also delete their
// stored outputs from the DFS.
func (r *Repository) Vacuum(fs *dfs.FS, now time.Duration, window time.Duration) []*Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	var removed []*Entry
	kept := r.entries[:0]
	for _, e := range r.entries {
		if r.pinned(e.ID) {
			kept = append(kept, e)
			continue
		}
		bad := !r.Valid(e, fs)
		if !bad && window > 0 {
			last := e.StoredAt
			if e.LastReused > last {
				last = e.LastReused
			}
			if now-last > window {
				bad = true
			}
		}
		if bad {
			delete(r.byFP, e.Plan.Fingerprint())
			r.index.remove(e)
			removed = append(removed, e)
		} else {
			kept = append(kept, e)
		}
	}
	r.entries = kept
	if len(removed) > 0 {
		r.index.renumber(r.entries)
	}
	return removed
}

// NoteReuse records that an entry's output answered (part of) a query at
// simulated time now.
func (r *Repository) NoteReuse(e *Entry, now time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e.TimesReused++
	e.LastReused = now
}

// Pin marks the entry as referenced by an in-flight execution: Vacuum
// will not remove it (nor let its output be deleted) until a matching
// Unpin. Pins nest. Safe to call from a Scan or Probe callback — the
// rewriter pins at match time, while still under the read lock, so no
// vacuum can slip between matching an entry and protecting it.
func (r *Repository) Pin(id string) {
	r.pinMu.Lock()
	defer r.pinMu.Unlock()
	r.pins[id]++
}

// Unpin releases one Pin.
func (r *Repository) Unpin(id string) {
	r.pinMu.Lock()
	defer r.pinMu.Unlock()
	if r.pins[id] <= 1 {
		delete(r.pins, id)
	} else {
		r.pins[id]--
	}
}

// pinned reports whether the entry has in-flight references.
func (r *Repository) pinned(id string) bool {
	r.pinMu.Lock()
	defer r.pinMu.Unlock()
	return r.pins[id] > 0
}

// gobRepository is the serialized form. The signature index is not
// persisted: LoadRepository rebuilds it from the entries in one pass.
type gobRepository struct {
	Entries []*Entry
	NextID  int
}

// Save persists the repository into the DFS at path.
func (r *Repository) Save(fs *dfs.FS, path string) error {
	r.mu.RLock()
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(gobRepository{Entries: r.entries, NextID: r.nextID})
	r.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("core: encoding repository: %w", err)
	}
	return fs.WriteFile(path, buf.Bytes())
}

// LoadRepository restores a repository saved with Save, rebuilding the
// signature index and installing fresh size caches.
func LoadRepository(fs *dfs.FS, path string) (*Repository, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var g gobRepository
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&g); err != nil {
		return nil, fmt.Errorf("core: decoding repository: %w", err)
	}
	r := NewRepository()
	r.nextID = g.NextID
	r.entries = g.Entries
	for _, e := range r.entries {
		e.size = &outputSize{}
		r.byFP[e.Plan.Fingerprint()] = e
		r.index.add(e)
	}
	r.index.renumber(r.entries)
	return r, nil
}
