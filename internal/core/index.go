package core

import (
	"sort"

	"repro/internal/physical"
)

// This file is the matcher's signature index: the structure that turns
// "test every repository entry for containment in the incoming job"
// (the paper's sequential scan, O(entries × plan²) per job) into "test
// only the entries whose signature footprint could possibly be
// contained" (O(plan) hash probes plus a handful of full traversals).
//
// The index exploits two necessary conditions of Algorithm 1
// containment. If entry plan E is contained in job plan J, then
//
//  1. every operator of E (excluding its final Store) maps to a J
//     operator with an equal canonical signature — so E's signature set
//     is a subset of J's, and in particular E's Load-path set is a
//     subset of J's (Load signatures embed the dataset path);
//  2. E's result operator — the op whose output the entry materializes
//     — maps to some J operator with the same signature, so E's
//     frontier signature occurs in J.
//
// Entries are therefore posted under their frontier signature, and a
// probe walks only the posting lists of signatures the job actually
// contains, discarding entries whose footprint is not a subset of the
// job's. Neither condition is sufficient, so the surviving candidates
// still run the full pairwise traversal — but candidates scale with the
// probing plan's size, not with the repository's.

// footprint is the matching-relevant signature summary of one entry
// plan, computed once when the entry enters the index.
type footprint struct {
	// frontier is the canonical signature of the plan's result op (the
	// op feeding the final Store); "" when the plan has none, in which
	// case the entry can never match and is not posted.
	frontier string
	// sigs are the sorted signatures of every non-Store op, kept as a
	// multiset: the containment mapping is injective (each entry op
	// must claim a distinct job op), so an entry with k ops of one
	// signature needs a job with at least k of them. Footprints
	// persisted before counts existed hold distinct signatures, which
	// is the same check with every count at one — a correct, weaker
	// filter.
	sigs []string
	// loads are the sorted dataset paths the plan reads. Load
	// signatures already appear in sigs; the separate list makes the
	// common reject (disjoint inputs) a one or two element comparison.
	loads []string
}

// footprintOf summarizes a plan for the index.
func footprintOf(p PlanSig) *footprint {
	f := &footprint{loads: p.loadPaths()}
	for i := range p.Ops {
		op := &p.Ops[i]
		if op.Kind == physical.KStore {
			continue
		}
		f.sigs = append(f.sigs, op.Sig)
	}
	sort.Strings(f.sigs)
	if res := p.resultOp(); res >= 0 {
		if op := p.op(res); op != nil {
			f.frontier = op.Sig
		}
	}
	return f
}

// within reports whether the footprint's signature multiset is covered
// by a probing job's signature counts and its loads by the job's
// load-path set — the necessary condition for the entry's plan to be
// contained in the job's. Duplicate-op plans are filtered by
// multiplicity: a run of k equal signatures needs a job count of at
// least k.
func (f *footprint) within(sigCount map[string]int, loadSet map[string]bool) bool {
	for _, p := range f.loads {
		if !loadSet[p] {
			return false
		}
	}
	for i := 0; i < len(f.sigs); {
		j := i
		for j < len(f.sigs) && f.sigs[j] == f.sigs[i] {
			j++
		}
		if sigCount[f.sigs[i]] < j-i {
			return false
		}
		i = j
	}
	return true
}

// coveredBy reports whether f's footprint is a subset of g's — the
// necessary condition for f's plan to be contained in g's, used to
// prefilter the Rule 1 subsumption tests of the scan-order comparison.
func (f *footprint) coveredBy(g *footprint) bool {
	return subsetOf(f.loads, g.loads) && subsetOf(f.sigs, g.sigs)
}

// subsetOf reports whether a is a sub-multiset of b: every element of
// a claims a distinct occurrence in b. Both slices must be sorted;
// duplicates are respected (the walk consumes one b element per a
// element).
func subsetOf(a, b []string) bool {
	i := 0
	for _, s := range a {
		for i < len(b) && b[i] < s {
			i++
		}
		if i >= len(b) || b[i] != s {
			return false
		}
		i++
	}
	return true
}

// probeSets builds the signature counts and load-path set of a probing
// job plan (all op signatures, including Stores — extra elements
// weaken nothing, the sets sit on the superset side of every check).
func probeSets(p PlanSig) (sigCount map[string]int, loadSet map[string]bool) {
	sigCount = make(map[string]int, len(p.Ops))
	loadSet = map[string]bool{}
	for i := range p.Ops {
		op := &p.Ops[i]
		sigCount[op.Sig]++
		if op.Kind == physical.KLoad {
			loadSet[loadPathOf(op.Sig)] = true
		}
	}
	return sigCount, loadSet
}

// planIndex is the repository's inverted signature index. It is owned
// by the Repository and guarded by the repository lock: mutators run
// under the write side, candidate probes under the read side.
type planIndex struct {
	// meta holds the footprint of every indexed entry. Entries are
	// immutable (replacement swaps fresh pointers), so the pointer is a
	// stable identity for exactly one entry version.
	meta map[*Entry]*footprint
	// postings maps a frontier signature to the entries materializing
	// an output with that signature. Each entry appears in exactly one
	// posting list.
	postings map[string][]*Entry
	// pos maps entry ID to its current scan position, so candidate
	// sets can be replayed in the Rules 1/2 preference order the
	// sequential scan would visit them in.
	pos map[string]int
}

func newPlanIndex() *planIndex {
	return &planIndex{
		meta:     map[*Entry]*footprint{},
		postings: map[string][]*Entry{},
		pos:      map[string]int{},
	}
}

// add indexes e. Entries without a result op are summarized (their
// footprint still prefilters scan-order comparisons) but not posted:
// matchEntry can never succeed on them, which is exactly how the
// sequential scan treats them.
func (ix *planIndex) add(e *Entry) {
	ix.addWithFootprint(e, footprintOf(e.planSig()))
}

// addWithFootprint indexes e under a precomputed footprint — the
// durable-recovery path, where the footprint was persisted with the
// entry and the plan must not be decoded to rebuild the index.
func (ix *planIndex) addWithFootprint(e *Entry, f *footprint) {
	ix.meta[e] = f
	if f.frontier != "" {
		ix.postings[f.frontier] = append(ix.postings[f.frontier], e)
	}
}

// remove unindexes e; unknown entries are a no-op (tests splice entries
// into the repository behind the index's back).
func (ix *planIndex) remove(e *Entry) {
	f := ix.meta[e]
	if f == nil {
		return
	}
	delete(ix.meta, e)
	if f.frontier == "" {
		return
	}
	list := ix.postings[f.frontier]
	for i, x := range list {
		if x == e {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(ix.postings, f.frontier)
	} else {
		ix.postings[f.frontier] = list
	}
}

// renumber rebuilds the scan positions from the current entry order.
func (ix *planIndex) renumber(entries []*Entry) {
	if len(ix.pos) > 0 {
		ix.pos = make(map[string]int, len(entries))
	}
	for i, e := range entries {
		ix.pos[e.ID] = i
	}
}

// footprintFor returns the indexed footprint, computing one on the fly
// for entries outside the index.
func (ix *planIndex) footprintFor(e *Entry) *footprint {
	if f := ix.meta[e]; f != nil {
		return f
	}
	return footprintOf(e.planSig())
}

// candidates returns, in scan order, the entries whose footprint is a
// subset of the probing job's signature sets: every entry the
// sequential scan could match, and usually only a handful of them.
// missed, when non-nil, observes each entry that shared a frontier
// signature with the job but was rejected by the footprint-subset
// prefilter (trace provenance; nil on the untraced path).
func (ix *planIndex) candidates(sigCount map[string]int, loadSet map[string]bool, missed func(e *Entry)) []*Entry {
	var out []*Entry
	for sig := range sigCount {
		for _, e := range ix.postings[sig] {
			if ix.meta[e].within(sigCount, loadSet) {
				out = append(out, e)
			} else if missed != nil {
				missed(e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return ix.pos[out[i].ID] < ix.pos[out[j].ID] })
	return out
}

// MatcherStats is a point-in-time snapshot of the matcher subsystem:
// how the repository is being probed and how much pairwise-traversal
// work the signature index is saving.
type MatcherStats struct {
	// Probes counts indexed candidate probes served; Candidates totals
	// the entries those probes yielded, so Candidates/Probes is the
	// average candidate set per probe (versus Entries per scan).
	Probes     int64
	Candidates int64

	// Scans counts linear full-repository matching scans (rewriters in
	// LinearScan mode); ScanVisited totals the entries they visited.
	Scans       int64
	ScanVisited int64

	// FullTraversals counts Algorithm 1 pairwise traversals actually
	// run; Matches how many succeeded; NegativeHits how many traversals
	// were skipped because a submission had already memoized the
	// rejection for the same entry version and job fingerprint.
	FullTraversals int64
	Matches        int64
	NegativeHits   int64

	// Cross-query negative cache: traversals skipped because another
	// submission had already rejected the same entry version against the
	// same job fingerprint, rejections evicted by the LRU bound, and the
	// cache's current size (0 size with 0 hits means it is disabled).
	SharedNegHits      int64
	SharedNegEvictions int64
	SharedNegSize      int

	// IndexEntries and IndexSignatures size the inverted index: entries
	// currently indexed and distinct frontier signatures posted.
	IndexEntries    int
	IndexSignatures int
}
