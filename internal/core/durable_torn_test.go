package core

import (
	"io"
	"strings"
	"testing"
)

// TestDurableAppendTornWriteSkipped: a log append that tears mid-write
// (the CAS consumes the version slot but the record is garbage) must
// not be acknowledged, must not wedge the writer — it retries on the
// next slot — and must be skipped, not fatal, for every reader
// replaying the log.
func TestDurableAppendTornWriteSkipped(t *testing.T) {
	fs := newTestFS(t)
	dlA, repoA := openDurable(t, fs, "sys/repo")

	// Tear exactly the first record append; everything else passes
	// through untouched.
	torn := false
	fs.SetWriteFault(func(path string, data []byte) ([]byte, error) {
		if !torn && strings.HasPrefix(path, "sys/repo/log/") {
			torn = true
			return data[:len(data)/2], io.ErrShortWrite
		}
		return data, nil
	})
	e0 := repoA.Insert(durableEntry(t, fs, indexCorpus[0], 0))
	fs.SetWriteFault(nil)
	e1 := repoA.Insert(durableEntry(t, fs, indexCorpus[1], 1))

	if !torn {
		t.Fatal("fault hook never saw a log append")
	}
	// The torn slot is consumed, not reused: the acknowledged records
	// land on later sequence numbers, in order.
	if e0.logSeq != 2 || e1.logSeq != e0.logSeq+1 {
		t.Fatalf("log seqs = %d, %d; want the torn slot 1 skipped (2, 3)", e0.logSeq, e1.logSeq)
	}
	if !fs.Exists("sys/repo/log/r0000000000000000001") {
		t.Fatal("the torn record's prefix should be on storage — that is the scenario")
	}

	// A cold recovery replays past the garbage record and rebuilds
	// exactly the acknowledged state.
	dlB, repoB := openDurable(t, fs, "sys/repo")
	if got, want := repoState(repoB), repoState(repoA); got != want {
		t.Fatalf("recovery over a torn log diverged\n--- recovered ---\n%s--- live ---\n%s", got, want)
	}
	if st := dlB.Stats(); st.TornRecords == 0 {
		t.Fatal("replay did not count the torn record it skipped")
	}

	// The recovered system keeps working: its next insert lands past
	// everything, and the original writer picks it up on refresh.
	repoB.Insert(durableEntry(t, fs, indexCorpus[2], 2))
	dlA.Refresh()
	if n := repoA.Len(); n != 3 {
		t.Fatalf("Len(A) after refresh over the torn log = %d, want 3", n)
	}
}
