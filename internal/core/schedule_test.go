package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/physical"
)

// fakeJobs builds a workflow skeleton for scheduler tests: deps maps
// job ID to its dependency IDs.
func fakeJobs(deps map[string][]string) []*physical.Job {
	ids := make([]string, 0, len(deps))
	for id := range deps {
		ids = append(ids, id)
	}
	// Deterministic order.
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	jobs := make([]*physical.Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, &physical.Job{ID: id, DependsOn: append([]string(nil), deps[id]...)})
	}
	return jobs
}

func TestRunDAGRespectsDependencies(t *testing.T) {
	deps := map[string][]string{
		"a": nil, "b": nil,
		"c": {"a", "b"},
		"d": {"c"},
		"e": {"c"},
		"f": {"d", "e"},
	}
	var mu sync.Mutex
	finished := map[string]bool{}
	err := runDAG(context.Background(), fakeJobs(deps), 4, nil, func(j *physical.Job) error {
		mu.Lock()
		for _, dep := range deps[j.ID] {
			if !finished[dep] {
				mu.Unlock()
				return fmt.Errorf("job %s started before dependency %s finished", j.ID, dep)
			}
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		mu.Lock()
		finished[j.ID] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(finished) != len(deps) {
		t.Errorf("completed %d jobs, want %d", len(finished), len(deps))
	}
}

func TestRunDAGBoundsWorkers(t *testing.T) {
	var cur, peak atomic.Int64
	jobs := fakeJobs(map[string][]string{
		"a": nil, "b": nil, "c": nil, "d": nil, "e": nil, "f": nil, "g": nil, "h": nil,
	})
	err := runDAG(context.Background(), jobs, 3, nil, func(j *physical.Job) error {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Errorf("observed %d concurrent jobs, worker bound is 3", p)
	}
	if p := peak.Load(); p < 2 {
		t.Errorf("independent jobs never overlapped (peak=%d); scheduler is serial", p)
	}
}

func TestRunDAGErrorCancelsPending(t *testing.T) {
	jobs := fakeJobs(map[string][]string{
		"a": nil,
		"b": {"a"},
		"c": {"b"},
	})
	var ran atomic.Int64
	boom := errors.New("boom")
	err := runDAG(context.Background(), jobs, 2, nil, func(j *physical.Job) error {
		ran.Add(1)
		if j.ID == "a" {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := ran.Load(); n != 1 {
		t.Errorf("%d jobs ran after the failure, want 1 (b and c cancelled)", n)
	}
}

func TestRunDAGRejectsCycle(t *testing.T) {
	jobs := fakeJobs(map[string][]string{
		"a": {"b"},
		"b": {"a"},
	})
	done := make(chan error, 1)
	go func() {
		done <- runDAG(context.Background(), jobs, 2, nil, func(j *physical.Job) error { return nil })
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Errorf("cyclic workflow did not error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("runDAG deadlocked on a cycle")
	}
}

func TestRunDAGMissingDepTreatedSatisfied(t *testing.T) {
	// Dependencies outside the job list (producers dropped by whole-job
	// reuse) must not block scheduling.
	jobs := fakeJobs(map[string][]string{"x": {"ghost"}})
	ran := false
	if err := runDAG(context.Background(), jobs, 1, nil, func(j *physical.Job) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Errorf("job with an external dependency never ran")
	}
}

// TestRunDAGParallelSpeedup is the acceptance check for the concurrent
// scheduler: a workflow of k independent jobs must complete in roughly
// 1/min(k, workers) of its serial wall time.
func TestRunDAGParallelSpeedup(t *testing.T) {
	const k = 8
	const jobTime = 30 * time.Millisecond
	deps := map[string][]string{}
	for i := 0; i < k; i++ {
		deps[fmt.Sprintf("j%d", i)] = nil
	}
	wall := func(workers int) time.Duration {
		start := time.Now()
		if err := runDAG(context.Background(), fakeJobs(deps), workers, nil, func(j *physical.Job) error {
			time.Sleep(jobTime)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	serial := wall(1)
	parallel := wall(k)
	if serial < k*jobTime {
		t.Fatalf("serial run took %v, want >= %v", serial, k*jobTime)
	}
	// Ideal is serial/k; allow generous slack for scheduler noise while
	// still proving real overlap.
	if parallel > serial/3 {
		t.Errorf("k=%d independent jobs: parallel %v vs serial %v, want ~serial/%d", k, parallel, serial, k)
	}
}

// TestRunDAGCancelStopsUnstartedJobs proves cancellation is synchronous
// with the canceller: once cancel() returns (here, from inside job a's
// process call), no dependant job may start.
func TestRunDAGCancelStopsUnstartedJobs(t *testing.T) {
	jobs := fakeJobs(map[string][]string{
		"a": nil,
		"b": {"a"},
		"c": {"b"},
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran []string
	var mu sync.Mutex
	err := runDAG(ctx, jobs, 2, nil, func(j *physical.Job) error {
		mu.Lock()
		ran = append(ran, j.ID)
		mu.Unlock()
		if j.ID == "a" {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(ran) != 1 || ran[0] != "a" {
		t.Errorf("ran = %v, want only a (b and c cancelled before start)", ran)
	}
}

func TestRunDAGPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := runDAG(ctx, fakeJobs(map[string][]string{"a": nil, "b": nil}), 2, nil, func(j *physical.Job) error {
		ran = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Errorf("jobs ran under a pre-cancelled context")
	}
}

// TestRunDAGAdmissionCap proves the cross-workflow semaphore bounds
// concurrent process calls across several runDAG invocations sharing it.
func TestRunDAGAdmissionCap(t *testing.T) {
	const dags = 3
	admission := make(chan struct{}, 2)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, dags)
	for d := 0; d < dags; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			jobs := fakeJobs(map[string][]string{"a": nil, "b": nil, "c": nil, "d": nil})
			errs[d] = runDAG(context.Background(), jobs, 4, admission, func(j *physical.Job) error {
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				cur.Add(-1)
				return nil
			})
		}(d)
	}
	wg.Wait()
	for d, err := range errs {
		if err != nil {
			t.Fatalf("dag %d: %v", d, err)
		}
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("observed %d concurrent jobs across workflows, admission cap is 2", p)
	}
}

// BenchmarkScheduler reports the wall time of a k-wide DAG at various
// worker counts; b.N iterations of an 8-job layer with 5ms jobs.
func BenchmarkScheduler(b *testing.B) {
	const k = 8
	deps := map[string][]string{}
	for i := 0; i < k; i++ {
		deps[fmt.Sprintf("j%d", i)] = nil
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := runDAG(context.Background(), fakeJobs(deps), workers, nil, func(j *physical.Job) error {
					time.Sleep(5 * time.Millisecond)
					return nil
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestDriverSimTimeIndependentOfWorkers drives the whole pipeline: a
// query with two independent chains compiles to two independent jobs,
// and the concurrent driver must report exactly the same simulated
// cluster time (Equation 1) as a serial one — concurrency may only
// change real wall time.
func TestDriverSimTimeIndependentOfWorkers(t *testing.T) {
	run := func(workers int) *Result {
		h := newHarness(t, Options{})
		h.driver.Workers = workers
		h.seedPigMixSmall(t)
		return h.run(t, `
A = load 'page_views' as (user, timestamp, est_revenue, page_info, page_links);
B = foreach A generate user, est_revenue;
G = group B by user;
S = foreach G generate group, SUM(B.est_revenue);
store S into 'wa_out';
alpha = load 'users' as (name, phone, address, city);
beta = foreach alpha generate name;
D = distinct beta;
store D into 'wb_out';
`)
	}
	serial := run(1)
	parallel := run(8)
	if serial.JobsRun != parallel.JobsRun {
		t.Fatalf("JobsRun differ: %d vs %d", serial.JobsRun, parallel.JobsRun)
	}
	if serial.SimTime != parallel.SimTime {
		t.Errorf("SimTime must not depend on workers: serial %v, parallel %v", serial.SimTime, parallel.SimTime)
	}
}
