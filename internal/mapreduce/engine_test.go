package mapreduce

import (
	"context"
	"errors"
	"sort"
	"strings"
	"testing"

	"repro/internal/dfs"
	"repro/internal/logical"
	"repro/internal/mrcompile"
	"repro/internal/physical"
	"repro/internal/piglatin"
	"repro/internal/tuple"
)

// writeDataset stores rows as one part file under path.
func writeDataset(t *testing.T, fs *dfs.FS, path string, rows ...tuple.Tuple) {
	t.Helper()
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(tuple.EncodeText(r))
		b.WriteByte('\n')
	}
	if err := fs.WriteFile(path+"/part-00000", []byte(b.String())); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
}

// readDataset loads all tuples under path, sorted for comparison.
func readDataset(t *testing.T, fs *dfs.FS, path string) []tuple.Tuple {
	t.Helper()
	var out []tuple.Tuple
	for _, f := range fs.List(path) {
		data, err := fs.ReadFile(f)
		if err != nil {
			t.Fatalf("ReadFile(%s): %v", f, err)
		}
		rows, err := readAll(data)
		if err != nil {
			t.Fatalf("readAll: %v", err)
		}
		out = append(out, rows...)
	}
	sort.Slice(out, func(i, j int) bool { return tuple.CompareTuples(out[i], out[j]) < 0 })
	return out
}

// runScript compiles and runs a script, returning the engine for output
// inspection.
func runScript(t *testing.T, fs *dfs.FS, src string) map[string]*JobStats {
	t.Helper()
	script, err := piglatin.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	lp, err := logical.Build(script)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	wf, err := mrcompile.Compile(lp, mrcompile.Options{TempPrefix: "tmp/t", DefaultReducers: 3})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	eng := New(fs, DefaultConfig())
	jobs, err := wf.TopoJobs()
	if err != nil {
		t.Fatalf("TopoJobs: %v", err)
	}
	stats := map[string]*JobStats{}
	for _, j := range jobs {
		st, err := eng.Run(j)
		if err != nil {
			t.Fatalf("Run(%s): %v", j.ID, err)
		}
		stats[j.ID] = st
	}
	return stats
}

func wantRows(t *testing.T, fs *dfs.FS, path string, want ...tuple.Tuple) {
	t.Helper()
	got := readDataset(t, fs, path)
	sort.Slice(want, func(i, j int) bool { return tuple.CompareTuples(want[i], want[j]) < 0 })
	if len(got) != len(want) {
		t.Fatalf("%s: got %d rows %v, want %d rows %v", path, len(got), got, len(want), want)
	}
	for i := range want {
		if !tuple.Equal(got[i], want[i]) {
			t.Errorf("%s row %d: got %v, want %v", path, i, got[i], want[i])
		}
	}
}

func TestMapOnlyProjectionFilter(t *testing.T) {
	fs := dfs.New()
	writeDataset(t, fs, "data",
		tuple.Tuple{"u1", int64(5)},
		tuple.Tuple{"u2", int64(1)},
		tuple.Tuple{"u3", int64(9)},
	)
	runScript(t, fs, `
A = load 'data' as (user, score);
B = filter A by score > 2;
C = foreach B generate user;
store C into 'out';
`)
	wantRows(t, fs, "out", tuple.Tuple{"u1"}, tuple.Tuple{"u3"})
}

func TestGroupAndAggregate(t *testing.T) {
	fs := dfs.New()
	writeDataset(t, fs, "pv",
		tuple.Tuple{"alice", int64(10)},
		tuple.Tuple{"bob", int64(5)},
		tuple.Tuple{"alice", int64(7)},
		tuple.Tuple{"carol", int64(2)},
		tuple.Tuple{"bob", int64(3)},
	)
	runScript(t, fs, `
A = load 'pv' as (user, rev);
B = group A by user;
C = foreach B generate group, SUM(A.rev), COUNT(A);
store C into 'out';
`)
	wantRows(t, fs, "out",
		tuple.Tuple{"alice", int64(17), int64(2)},
		tuple.Tuple{"bob", int64(8), int64(2)},
		tuple.Tuple{"carol", int64(2), int64(1)},
	)
}

func TestJoin(t *testing.T) {
	fs := dfs.New()
	writeDataset(t, fs, "names",
		tuple.Tuple{"alice"},
		tuple.Tuple{"bob"},
		tuple.Tuple{"dave"},
	)
	writeDataset(t, fs, "views",
		tuple.Tuple{"alice", int64(1)},
		tuple.Tuple{"alice", int64(2)},
		tuple.Tuple{"bob", int64(3)},
		tuple.Tuple{"eve", int64(4)},
	)
	runScript(t, fs, `
N = load 'names' as (name);
V = load 'views' as (user, rev);
J = join N by name, V by user;
store J into 'out';
`)
	wantRows(t, fs, "out",
		tuple.Tuple{"alice", "alice", int64(1)},
		tuple.Tuple{"alice", "alice", int64(2)},
		tuple.Tuple{"bob", "bob", int64(3)},
	)
}

func TestJoinDropsNullKeys(t *testing.T) {
	fs := dfs.New()
	writeDataset(t, fs, "l", tuple.Tuple{nil, int64(1)}, tuple.Tuple{"k", int64(2)})
	writeDataset(t, fs, "r", tuple.Tuple{nil, int64(3)}, tuple.Tuple{"k", int64(4)})
	runScript(t, fs, `
L = load 'l' as (k, v);
R = load 'r' as (k2, w);
J = join L by k, R by k2;
store J into 'out';
`)
	wantRows(t, fs, "out", tuple.Tuple{"k", int64(2), "k", int64(4)})
}

func TestCoGroupAntiJoin(t *testing.T) {
	fs := dfs.New()
	writeDataset(t, fs, "all_users", tuple.Tuple{"a"}, tuple.Tuple{"b"}, tuple.Tuple{"c"})
	writeDataset(t, fs, "active", tuple.Tuple{"b", int64(1)})
	runScript(t, fs, `
U = load 'all_users' as (name);
A = load 'active' as (user, n);
C = cogroup U by name, A by user;
D = filter C by ISEMPTY(A);
E = foreach D generate group;
store E into 'inactive';
`)
	wantRows(t, fs, "inactive", tuple.Tuple{"a"}, tuple.Tuple{"c"})
}

func TestDistinct(t *testing.T) {
	fs := dfs.New()
	writeDataset(t, fs, "d",
		tuple.Tuple{"x", int64(1)},
		tuple.Tuple{"x", int64(1)},
		tuple.Tuple{"y", int64(2)},
		tuple.Tuple{"x", int64(3)},
	)
	runScript(t, fs, `
A = load 'd' as (k, v);
B = distinct A;
store B into 'out';
`)
	wantRows(t, fs, "out",
		tuple.Tuple{"x", int64(1)},
		tuple.Tuple{"x", int64(3)},
		tuple.Tuple{"y", int64(2)},
	)
}

func TestUnionThenDistinct(t *testing.T) {
	fs := dfs.New()
	writeDataset(t, fs, "u1", tuple.Tuple{"a"}, tuple.Tuple{"b"})
	writeDataset(t, fs, "u2", tuple.Tuple{"b"}, tuple.Tuple{"c"})
	runScript(t, fs, `
A = load 'u1' as (x);
B = load 'u2' as (x);
C = union A, B;
D = distinct C;
store D into 'out';
`)
	wantRows(t, fs, "out", tuple.Tuple{"a"}, tuple.Tuple{"b"}, tuple.Tuple{"c"})
}

func TestGroupAll(t *testing.T) {
	fs := dfs.New()
	writeDataset(t, fs, "g",
		tuple.Tuple{"a", int64(1)},
		tuple.Tuple{"b", int64(2)},
		tuple.Tuple{"c", int64(3)},
	)
	runScript(t, fs, `
A = load 'g' as (k, v);
B = group A all;
C = foreach B generate COUNT(A), SUM(A.v);
store C into 'out';
`)
	wantRows(t, fs, "out", tuple.Tuple{int64(3), int64(6)})
}

func TestOrderBy(t *testing.T) {
	fs := dfs.New()
	writeDataset(t, fs, "o",
		tuple.Tuple{"b", int64(2)},
		tuple.Tuple{"a", int64(3)},
		tuple.Tuple{"c", int64(1)},
	)
	runScript(t, fs, `
A = load 'o' as (k, v);
B = order A by v desc;
store B into 'out';
`)
	// Read without sorting: output order must be v descending.
	var got []tuple.Tuple
	for _, f := range fs.List("out") {
		data, _ := fs.ReadFile(f)
		rows, _ := readAll(data)
		got = append(got, rows...)
	}
	if len(got) != 3 {
		t.Fatalf("rows = %v", got)
	}
	if got[0][1] != int64(3) || got[1][1] != int64(2) || got[2][1] != int64(1) {
		t.Errorf("order wrong: %v", got)
	}
}

func TestTwoJobPipeline(t *testing.T) {
	fs := dfs.New()
	writeDataset(t, fs, "pv",
		tuple.Tuple{"alice", int64(10)},
		tuple.Tuple{"bob", int64(5)},
		tuple.Tuple{"alice", int64(7)},
	)
	writeDataset(t, fs, "users",
		tuple.Tuple{"alice"},
		tuple.Tuple{"bob"},
		tuple.Tuple{"carol"},
	)
	runScript(t, fs, `
A = load 'pv' as (user, rev);
U = load 'users' as (name);
J = join U by name, A by user;
G = group J by $0;
S = foreach G generate group, SUM(J.rev);
store S into 'out';
`)
	wantRows(t, fs, "out",
		tuple.Tuple{"alice", int64(17)},
		tuple.Tuple{"bob", int64(5)},
	)
}

func TestStatsAccounting(t *testing.T) {
	fs := dfs.New()
	writeDataset(t, fs, "s",
		tuple.Tuple{"a", int64(1)},
		tuple.Tuple{"b", int64(2)},
	)
	stats := runScript(t, fs, `
A = load 's' as (k, v);
B = group A by k;
C = foreach B generate group, COUNT(A);
store C into 'out';
`)
	if len(stats) != 1 {
		t.Fatalf("stats = %v", stats)
	}
	for _, st := range stats {
		if st.InputRecords != 2 {
			t.Errorf("InputRecords = %d, want 2", st.InputRecords)
		}
		if st.InputSimBytes <= 0 {
			t.Errorf("InputSimBytes = %d", st.InputSimBytes)
		}
		if st.OutputRecords != 2 {
			t.Errorf("OutputRecords = %d, want 2", st.OutputRecords)
		}
		if st.ShuffleSimBytes <= 0 {
			t.Errorf("ShuffleSimBytes = %d", st.ShuffleSimBytes)
		}
		if st.SimTime <= 0 {
			t.Errorf("SimTime = %v", st.SimTime)
		}
		if st.MapTasks < 1 || st.RedTasks < 1 {
			t.Errorf("tasks = %d/%d", st.MapTasks, st.RedTasks)
		}
		if _, ok := st.Outputs["out"]; !ok {
			t.Errorf("Outputs missing 'out': %v", st.Outputs)
		}
	}
}

func TestSimScaleMultipliesBytes(t *testing.T) {
	mk := func(scale float64) *JobStats {
		fs := dfs.New()
		writeDataset(t, fs, "s", tuple.Tuple{"a", int64(1)}, tuple.Tuple{"b", int64(2)})
		script, _ := piglatin.Parse(`A = load 's' as (k, v); store A into 'o';`)
		lp, _ := logical.Build(script)
		wf, _ := mrcompile.Compile(lp, mrcompile.Options{TempPrefix: "tmp/x", DefaultReducers: 1})
		cfg := DefaultConfig()
		cfg.SimScale = scale
		eng := New(fs, cfg)
		st, err := eng.Run(wf.Jobs[0])
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return st
	}
	s1 := mk(1)
	s100 := mk(100)
	if s100.InputSimBytes != 100*s1.InputSimBytes {
		t.Errorf("sim bytes: scale1=%d scale100=%d", s1.InputSimBytes, s100.InputSimBytes)
	}
	if s100.SimTime <= s1.SimTime {
		t.Errorf("sim time should grow with scale: %v vs %v", s1.SimTime, s100.SimTime)
	}
}

func TestMissingInputFails(t *testing.T) {
	fs := dfs.New()
	script, _ := piglatin.Parse(`A = load 'nope' as (k); store A into 'o';`)
	lp, _ := logical.Build(script)
	wf, _ := mrcompile.Compile(lp, mrcompile.Options{TempPrefix: "tmp/x", DefaultReducers: 1})
	eng := New(fs, DefaultConfig())
	if _, err := eng.Run(wf.Jobs[0]); err == nil {
		t.Errorf("missing input should fail")
	}
}

func TestEmptyInputProducesEmptyOutput(t *testing.T) {
	fs := dfs.New()
	fs.WriteFile("empty/part-00000", nil)
	runScript(t, fs, `
A = load 'empty' as (k, v);
B = group A by k;
C = foreach B generate group, COUNT(A);
store C into 'out';
`)
	if !fs.Exists("out") {
		t.Fatalf("output dataset not created")
	}
	if rows := readDataset(t, fs, "out"); len(rows) != 0 {
		t.Errorf("rows = %v, want none", rows)
	}
}

func TestManySplitsStillCorrect(t *testing.T) {
	fs := dfs.New()
	var rows []tuple.Tuple
	wantSum := map[string]int64{}
	for i := 0; i < 500; i++ {
		u := string(rune('a' + i%7))
		rows = append(rows, tuple.Tuple{u, int64(i)})
		wantSum[u] += int64(i)
	}
	writeDataset(t, fs, "big", rows...)

	script, _ := piglatin.Parse(`
A = load 'big' as (u, v);
B = group A by u;
C = foreach B generate group, SUM(A.v);
store C into 'out';
`)
	lp, _ := logical.Build(script)
	wf, _ := mrcompile.Compile(lp, mrcompile.Options{TempPrefix: "tmp/x", DefaultReducers: 5})
	cfg := DefaultConfig()
	cfg.SimScale = 1e6 // forces many splits
	eng := New(fs, cfg)
	st, err := eng.Run(wf.Jobs[0])
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.MapTasks < 10 {
		t.Errorf("MapTasks = %d, want many under high SimScale", st.MapTasks)
	}
	got := readDataset(t, fs, "out")
	if len(got) != 7 {
		t.Fatalf("groups = %d, want 7", len(got))
	}
	for _, r := range got {
		u := r[0].(string)
		if r[1] != wantSum[u] {
			t.Errorf("sum[%s] = %v, want %d", u, r[1], wantSum[u])
		}
	}
}

func TestSideStoreWritesBothOutputs(t *testing.T) {
	// Manually inject a Split + side Store after the ForEach, as ReStore
	// does when materializing sub-jobs.
	fs := dfs.New()
	writeDataset(t, fs, "d", tuple.Tuple{"x", int64(1)}, tuple.Tuple{"y", int64(2)})
	script, _ := piglatin.Parse(`
A = load 'd' as (k, v);
B = foreach A generate k;
store B into 'main';
`)
	lp, _ := logical.Build(script)
	wf, _ := mrcompile.Compile(lp, mrcompile.Options{TempPrefix: "tmp/x", DefaultReducers: 1})
	job := wf.Jobs[0]

	var fe *physical.Op
	for _, op := range job.Plan.Ops() {
		if op.Kind == physical.KForEach {
			fe = op
		}
	}
	succ := job.Plan.Successors()
	split := job.Plan.Add(&physical.Op{Kind: physical.KSplit, InputIDs: []int{fe.ID}})
	for _, sid := range succ[fe.ID] {
		op := job.Plan.Op(sid)
		for i, in := range op.InputIDs {
			if in == fe.ID {
				op.InputIDs[i] = split.ID
			}
		}
	}
	job.Plan.Add(&physical.Op{Kind: physical.KStore, Path: "side", InputIDs: []int{split.ID}})

	eng := New(fs, DefaultConfig())
	st, err := eng.Run(job)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wantRows(t, fs, "main", tuple.Tuple{"x"}, tuple.Tuple{"y"})
	wantRows(t, fs, "side", tuple.Tuple{"x"}, tuple.Tuple{"y"})
	if _, ok := st.Outputs["side"]; !ok {
		t.Errorf("side output not in stats: %v", st.Outputs)
	}
}

func TestLimitPerTask(t *testing.T) {
	fs := dfs.New()
	writeDataset(t, fs, "d",
		tuple.Tuple{"a"}, tuple.Tuple{"b"}, tuple.Tuple{"c"}, tuple.Tuple{"d"},
	)
	runScript(t, fs, `
A = load 'd' as (k);
B = limit A 2;
store B into 'out';
`)
	got := readDataset(t, fs, "out")
	if len(got) != 2 {
		t.Errorf("limit rows = %d, want 2 (single split)", len(got))
	}
}

// TestRunContextCancelled proves engine-level cancellation: a cancelled
// context aborts the job with its error before (or while) tasks acquire
// slots, and the engine stays usable afterwards.
func TestRunContextCancelled(t *testing.T) {
	fs := dfs.New()
	writeDataset(t, fs, "in",
		tuple.Tuple{"a", int64(1)}, tuple.Tuple{"b", int64(2)})
	script, err := piglatin.Parse(`
A = load 'in' as (k, v);
G = group A by k;
S = foreach G generate group, SUM(A.v);
store S into 'out';
`)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := logical.Build(script)
	if err != nil {
		t.Fatal(err)
	}
	wf, err := mrcompile.Compile(lp, mrcompile.Options{TempPrefix: "tmp/t", DefaultReducers: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := New(fs, DefaultConfig())

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.RunContext(ctx, wf.Jobs[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext err = %v, want context.Canceled", err)
	}
	// All task slots were released: the same job runs fine with a live
	// context.
	if _, err := eng.RunContext(context.Background(), wf.Jobs[0]); err != nil {
		t.Fatalf("Run after cancellation: %v", err)
	}
}
