package mapreduce

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dfs"
	"repro/internal/logical"
	"repro/internal/mrcompile"
	"repro/internal/piglatin"
	"repro/internal/tuple"
)

// naiveAggregates computes the expected group/aggregate results in
// plain Go for comparison against the combiner path.
type naiveAgg struct {
	count int64
	sum   int64
	min   int64
	max   int64
}

func TestCombinerMatchesNaiveAggregation(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	fs := dfs.New()
	expected := map[string]*naiveAgg{}
	var rows []tuple.Tuple
	for i := 0; i < 2000; i++ {
		u := fmt.Sprintf("u%d", r.Intn(37))
		v := int64(r.Intn(1000))
		rows = append(rows, tuple.Tuple{u, v})
		e := expected[u]
		if e == nil {
			e = &naiveAgg{min: v, max: v}
			expected[u] = e
		} else {
			if v < e.min {
				e.min = v
			}
			if v > e.max {
				e.max = v
			}
		}
		e.count++
		e.sum += v
	}
	writeDataset(t, fs, "cdata", rows...)

	stats := runScript(t, fs, `
A = load 'cdata' as (u, v);
G = group A by u;
S = foreach G generate group, COUNT(A), SUM(A.v), MIN(A.v), MAX(A.v), AVG(A.v);
store S into 'out';
`)
	got := readDataset(t, fs, "out")
	if len(got) != len(expected) {
		t.Fatalf("groups = %d, want %d", len(got), len(expected))
	}
	for _, row := range got {
		u := row[0].(string)
		e := expected[u]
		if e == nil {
			t.Fatalf("unexpected group %q", u)
		}
		if row[1] != e.count || row[2] != e.sum || row[3] != e.min || row[4] != e.max {
			t.Errorf("%s: got %v, want count=%d sum=%d min=%d max=%d", u, row, e.count, e.sum, e.min, e.max)
		}
		avg := row[5].(float64)
		want := float64(e.sum) / float64(e.count)
		if avg < want-1e-9 || avg > want+1e-9 {
			t.Errorf("%s: avg = %v, want %v", u, avg, want)
		}
	}

	// The combiner must actually have engaged: shuffle records are
	// bounded by (#groups × #map tasks), far below the input rows.
	for _, st := range stats {
		if st.ShuffleSimBytes <= 0 {
			t.Errorf("no shuffle happened?")
		}
	}
}

func TestCombinerHandlesNullsAndStrings(t *testing.T) {
	fs := dfs.New()
	writeDataset(t, fs, "nd",
		tuple.Tuple{"a", int64(1)},
		tuple.Tuple{"a", nil},
		tuple.Tuple{"a", "zebra"}, // non-numeric: skipped by SUM, counted by COUNT(A)
		tuple.Tuple{"b", nil},
	)
	runScript(t, fs, `
A = load 'nd' as (u, v);
G = group A by u;
S = foreach G generate group, COUNT(A), SUM(A.v);
store S into 'out';
`)
	wantRows(t, fs, "out",
		tuple.Tuple{"a", int64(3), int64(1)},
		tuple.Tuple{"b", int64(1), nil},
	)
}

func TestCombinerDisabledWhenBagsNeeded(t *testing.T) {
	// A ForEach that projects bag contents (not an aggregate) must not
	// trigger the combiner; the grouped bags must arrive intact.
	fs := dfs.New()
	writeDataset(t, fs, "bd",
		tuple.Tuple{"a", int64(1)},
		tuple.Tuple{"a", int64(2)},
		tuple.Tuple{"b", int64(3)},
	)
	runScript(t, fs, `
A = load 'bd' as (u, v);
G = group A by u;
S = foreach G generate group, SIZE(A), COUNT(A);
store S into 'out';
`)
	wantRows(t, fs, "out",
		tuple.Tuple{"a", int64(2), int64(2)},
		tuple.Tuple{"b", int64(1), int64(1)},
	)
}

func TestCombinerGroupAll(t *testing.T) {
	fs := dfs.New()
	var rows []tuple.Tuple
	var sum int64
	for i := int64(1); i <= 100; i++ {
		rows = append(rows, tuple.Tuple{fmt.Sprintf("u%d", i%5), i})
		sum += i
	}
	writeDataset(t, fs, "ga", rows...)
	runScript(t, fs, `
A = load 'ga' as (u, v);
G = group A all;
S = foreach G generate COUNT(A), SUM(A.v);
store S into 'out';
`)
	wantRows(t, fs, "out", tuple.Tuple{int64(100), sum})
}

func TestCombinerShuffleShrinks(t *testing.T) {
	// With many rows per group, the combined shuffle must be far smaller
	// than the raw one. Compare against a structurally identical job
	// whose ForEach is non-algebraic (SIZE) so the combiner disengages.
	fs := dfs.New()
	var rows []tuple.Tuple
	for i := 0; i < 3000; i++ {
		rows = append(rows, tuple.Tuple{fmt.Sprintf("u%d", i%4), int64(i)})
	}
	writeDataset(t, fs, "sh", rows...)

	run := func(src string) *JobStats {
		script, _ := piglatin.Parse(src)
		lp, _ := logical.Build(script)
		wf, _ := mrcompile.Compile(lp, mrcompile.Options{TempPrefix: "tmp/s", DefaultReducers: 2})
		eng := New(fs, DefaultConfig())
		st, err := eng.Run(wf.Jobs[0])
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return st
	}
	combined := run(`
A = load 'sh' as (u, v);
G = group A by u;
S = foreach G generate group, SUM(A.v);
store S into 'out_c';
`)
	raw := run(`
A = load 'sh' as (u, v);
G = group A by u;
S = foreach G generate group, SIZE(A);
store S into 'out_r';
`)
	if combined.ShuffleSimBytes*10 > raw.ShuffleSimBytes {
		t.Errorf("combiner shuffle %d should be ≪ raw shuffle %d",
			combined.ShuffleSimBytes, raw.ShuffleSimBytes)
	}
}

func TestDistinctCombinerShrinksShuffle(t *testing.T) {
	fs := dfs.New()
	var rows []tuple.Tuple
	for i := 0; i < 2000; i++ {
		rows = append(rows, tuple.Tuple{fmt.Sprintf("u%d", i%3)})
	}
	writeDataset(t, fs, "dd", rows...)
	script, _ := piglatin.Parse(`
A = load 'dd' as (u);
D = distinct A;
store D into 'out';
`)
	lp, _ := logical.Build(script)
	wf, _ := mrcompile.Compile(lp, mrcompile.Options{TempPrefix: "tmp/d", DefaultReducers: 2})
	eng := New(fs, DefaultConfig())
	st, err := eng.Run(wf.Jobs[0])
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 2000 rows, 3 distinct values, 1 map task: at most 3 shuffle
	// records of a few bytes each.
	if st.ShuffleSimBytes > 200 {
		t.Errorf("distinct shuffle = %d bytes, want tiny", st.ShuffleSimBytes)
	}
	got := readDataset(t, fs, "out")
	if len(got) != 3 {
		t.Errorf("distinct rows = %v", got)
	}
}

func TestCombinerMinMaxStrings(t *testing.T) {
	fs := dfs.New()
	writeDataset(t, fs, "ms",
		tuple.Tuple{"g", "banana"},
		tuple.Tuple{"g", "apple"},
		tuple.Tuple{"g", "cherry"},
	)
	runScript(t, fs, `
A = load 'ms' as (k, s);
G = group A by k;
S = foreach G generate group, MIN(A.s), MAX(A.s);
store S into 'out';
`)
	wantRows(t, fs, "out", tuple.Tuple{"g", "apple", "cherry"})
}

func TestCombinerFloatPromotion(t *testing.T) {
	fs := dfs.New()
	writeDataset(t, fs, "fp",
		tuple.Tuple{"g", 1.5},
		tuple.Tuple{"g", int64(2)},
	)
	runScript(t, fs, `
A = load 'fp' as (k, v);
G = group A by k;
S = foreach G generate group, SUM(A.v);
store S into 'out';
`)
	wantRows(t, fs, "out", tuple.Tuple{"g", 3.5})
}
