package mapreduce

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/physical"
	"repro/internal/tuple"
)

// Pig's combiner: when the statement after a GROUP only applies
// algebraic aggregates (COUNT/SUM/AVG/MIN/MAX), map tasks pre-aggregate
// each key into a partial state, the shuffle carries one record per key
// per task, and reducers merge partials instead of materializing bags.
//
// The combiner is disabled whenever the Package output has any consumer
// other than that single ForEach — in particular when ReStore injects a
// Store to materialize the Group's output, the raw bags must be shipped
// and written, which is exactly the overhead the paper observes on L6.

// combineSpec describes a combinable job.
type combineSpec struct {
	pkgID int
	feID  int
	// exprs are the ForEach's output expressions: Col(0) (the group) or
	// Agg over the bag column.
	exprs []expr.Expr
}

// detectCombine inspects the reduce segment and returns a spec when the
// job is combinable.
func detectCombine(p *physical.Plan, succ map[int][]int, pkg *physical.Op) *combineSpec {
	if pkg == nil || pkg.Mode != physical.PkgGroup || pkg.NumInputs != 1 {
		return nil
	}
	consumers := succ[pkg.ID]
	if len(consumers) != 1 {
		return nil
	}
	fe := p.Op(consumers[0])
	if fe.Kind != physical.KForEach {
		return nil
	}
	for _, e := range fe.Exprs {
		switch x := e.(type) {
		case expr.Col:
			if x.Index != 0 {
				return nil // only the group key passes through
			}
		case expr.Agg:
			bag, ok := x.Bag.(expr.Col)
			if !ok || bag.Index != 1 {
				return nil
			}
		default:
			return nil
		}
	}
	return &combineSpec{pkgID: pkg.ID, feID: fe.ID, exprs: fe.Exprs}
}

// aggState is the partial state of one aggregate.
type aggState struct {
	count  int64
	sumI   int64
	sumF   float64
	allInt bool
	minV   tuple.Value
	maxV   tuple.Value
}

func newAggState() *aggState { return &aggState{allInt: true} }

// accumulate folds one raw (pre-package) tuple into the state.
func (s *aggState) accumulate(a expr.Agg, t tuple.Tuple) {
	if a.Field < 0 {
		// COUNT(bag): counts tuples.
		s.count++
		return
	}
	var v tuple.Value
	if a.Field < len(t) {
		v = t[a.Field]
	}
	if tuple.IsNull(v) {
		return
	}
	switch a.Kind {
	case expr.AggCount:
		s.count++
	case expr.AggSum, expr.AggAvg:
		f, ok := tuple.ToFloat(v)
		if !ok {
			return
		}
		s.count++
		s.sumF += f
		if i, isInt := v.(int64); isInt {
			s.sumI += i
		} else {
			s.allInt = false
		}
	case expr.AggMin:
		if s.minV == nil || tuple.Compare(v, s.minV) < 0 {
			s.minV = v
		}
	case expr.AggMax:
		if s.maxV == nil || tuple.Compare(v, s.maxV) > 0 {
			s.maxV = v
		}
	}
}

// encode renders the state as a tuple for the shuffle.
func (s *aggState) encode() tuple.Tuple {
	allInt := int64(0)
	if s.allInt {
		allInt = 1
	}
	return tuple.Tuple{s.count, s.sumI, s.sumF, allInt, s.minV, s.maxV}
}

// mergeEncoded folds a shuffled partial into the state.
func (s *aggState) mergeEncoded(t tuple.Tuple) error {
	if len(t) != 6 {
		return fmt.Errorf("mapreduce: bad combiner partial %v", t)
	}
	cnt, _ := tuple.ToInt(t[0])
	sumI, _ := tuple.ToInt(t[1])
	var sumF float64
	if f, ok := tuple.ToFloat(t[2]); ok {
		sumF = f
	}
	allInt, _ := tuple.ToInt(t[3])
	s.count += cnt
	s.sumI += sumI
	s.sumF += sumF
	if allInt == 0 {
		s.allInt = false
	}
	if t[4] != nil && (s.minV == nil || tuple.Compare(t[4], s.minV) < 0) {
		s.minV = t[4]
	}
	if t[5] != nil && (s.maxV == nil || tuple.Compare(t[5], s.maxV) > 0) {
		s.maxV = t[5]
	}
	return nil
}

// final produces the aggregate's value.
func (s *aggState) final(kind expr.AggKind) tuple.Value {
	switch kind {
	case expr.AggCount:
		return s.count
	case expr.AggSum:
		if s.count == 0 {
			return nil
		}
		if s.allInt {
			return s.sumI
		}
		return s.sumF
	case expr.AggAvg:
		if s.count == 0 {
			return nil
		}
		return s.sumF / float64(s.count)
	case expr.AggMin:
		return s.minV
	case expr.AggMax:
		return s.maxV
	}
	return nil
}

// partialKey groups partial states per key within a map task.
type partialKey struct {
	key    tuple.Value
	states []*aggState
}

// combineAccumulator builds per-partition partial aggregates in a map
// task.
type combineAccumulator struct {
	spec  *combineSpec
	parts []map[string]*partialKey
}

func newCombineAccumulator(spec *combineSpec, numRed int) *combineAccumulator {
	parts := make([]map[string]*partialKey, numRed)
	for i := range parts {
		parts[i] = map[string]*partialKey{}
	}
	return &combineAccumulator{spec: spec, parts: parts}
}

func (c *combineAccumulator) add(key tuple.Value, t tuple.Tuple, pt *partitioner) {
	p := pt.next(key)
	ks := tuple.ToString(key)
	pk := c.parts[p][ks]
	if pk == nil {
		pk = &partialKey{key: key}
		for _, e := range c.spec.exprs {
			if _, isAgg := e.(expr.Agg); isAgg {
				pk.states = append(pk.states, newAggState())
			}
		}
		c.parts[p][ks] = pk
	}
	si := 0
	for _, e := range c.spec.exprs {
		if a, isAgg := e.(expr.Agg); isAgg {
			pk.states[si].accumulate(a, t)
			si++
		}
	}
}

// drain converts the accumulated partials into shuffle records.
func (c *combineAccumulator) drain() [][]rec {
	out := make([][]rec, len(c.parts))
	for p, m := range c.parts {
		// Deterministic order: sort keys.
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sortStrings(keys)
		for _, ks := range keys {
			pk := m[ks]
			t := make(tuple.Tuple, 0, len(pk.states))
			for _, st := range pk.states {
				t = append(t, st.encode())
			}
			n := int64(tuple.EncodeTextLen(t) + len(ks) + 2)
			out[p] = append(out[p], rec{key: pk.key, t: t, bytes: n})
		}
	}
	return out
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// mergeCombined merges one key's partial records and emits the final
// ForEach output row downstream.
func mergeCombined(px *exec, spec *combineSpec, group []rec) error {
	var states []*aggState
	for _, e := range spec.exprs {
		if _, isAgg := e.(expr.Agg); isAgg {
			states = append(states, newAggState())
		}
	}
	for _, r := range group {
		si := 0
		for i := range spec.exprs {
			if _, isAgg := spec.exprs[i].(expr.Agg); !isAgg {
				continue
			}
			if si < len(r.t) {
				part, ok := r.t[si].(tuple.Tuple)
				if !ok {
					return fmt.Errorf("mapreduce: combiner partial field %d is %T", si, r.t[si])
				}
				if err := states[si].mergeEncoded(part); err != nil {
					return err
				}
			}
			si++
		}
	}
	row := make(tuple.Tuple, len(spec.exprs))
	si := 0
	for i, e := range spec.exprs {
		switch x := e.(type) {
		case expr.Col:
			row[i] = group[0].key
		case expr.Agg:
			row[i] = states[si].final(x.Kind)
			si++
		}
	}
	return px.push(spec.feID, row)
}
