package mapreduce

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/dfs"
	"repro/internal/expr"
	"repro/internal/physical"
	"repro/internal/tuple"
)

// exec interprets one segment of a physical plan in push mode: tuples
// enter at a root (Load in map tasks, Package in reduce tasks) and flow
// through successors until they hit a Store, a LocalRearrange, or get
// filtered out.
type exec struct {
	plan *physical.Plan
	succ map[int][]int
	// inMap restricts the walk to map-segment ops (nil means no
	// restriction — used by reduce tasks whose roots are already in the
	// reduce segment).
	inMap map[int]bool

	// keyed receives LocalRearrange emissions (map tasks only).
	keyed func(branch int, key tuple.Value, t tuple.Tuple)

	// suffix names this task's part files, e.g. "part-m-00003".
	suffix string

	// capture keeps a decoded batch of every part file this task
	// writes, for cache write-through (see Engine.writeThrough).
	capture bool

	writers   map[int]*taskWriter // per Store op
	limits    map[int]int64       // per Limit op counter
	numStores int
}

type taskWriter struct {
	path    string
	rows    []tuple.Tuple
	byteLen int64
	batch   *tuple.Batch // decode of the written bytes, when capturing
	ver     int64        // dataset version committed by this part's write
}

func newExec(plan *physical.Plan, succ map[int][]int, inMap map[int]bool) *exec {
	return &exec{
		plan:    plan,
		succ:    succ,
		inMap:   inMap,
		writers: map[int]*taskWriter{},
		limits:  map[int]int64{},
	}
}

// push delivers t to every successor of op fromID.
func (x *exec) push(fromID int, t tuple.Tuple) error {
	for _, sid := range x.succ[fromID] {
		if x.inMap != nil && !x.inMap[sid] {
			continue
		}
		if err := x.apply(sid, t); err != nil {
			return err
		}
	}
	return nil
}

func (x *exec) apply(opID int, t tuple.Tuple) error {
	op := x.plan.Op(opID)
	switch op.Kind {
	case physical.KForEach:
		out := make(tuple.Tuple, len(op.Exprs))
		for i, e := range op.Exprs {
			v, err := e.Eval(t)
			if err != nil {
				return err
			}
			out[i] = v
		}
		return x.push(opID, out)

	case physical.KFilter:
		ok, err := expr.EvalBool(op.Cond, t)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		return x.push(opID, t)

	case physical.KUnion, physical.KSplit:
		return x.push(opID, t)

	case physical.KLimit:
		if x.limits[opID] >= op.N {
			return nil
		}
		x.limits[opID]++
		return x.push(opID, t)

	case physical.KStore:
		w := x.writers[opID]
		if w == nil {
			w = &taskWriter{path: op.Path}
			x.writers[opID] = w
		}
		w.rows = append(w.rows, t)
		return nil

	case physical.KLocalRearrange:
		key, err := rearrangeKey(op, t)
		if err != nil {
			return err
		}
		if op.DropNull && tuple.IsNull(key) {
			return nil
		}
		if x.keyed == nil {
			return fmt.Errorf("mapreduce: LocalRearrange outside a shuffling task")
		}
		x.keyed(op.Branch, key, t)
		return nil

	case physical.KJoinFlatten:
		return x.joinFlatten(op, t)

	case physical.KPackage, physical.KShuffle:
		// Package output is produced by the framework (emitGroup); a
		// tuple should never be pushed *into* these.
		return fmt.Errorf("mapreduce: unexpected push into %s", op.Kind)

	case physical.KLoad:
		return fmt.Errorf("mapreduce: unexpected push into Load")
	}
	return fmt.Errorf("mapreduce: unhandled op kind %s", op.Kind)
}

// rearrangeKey computes the shuffle key: the single key expression's
// value, a tuple for composite keys, or the constant "all" for GROUP ALL.
func rearrangeKey(op *physical.Op, t tuple.Tuple) (tuple.Value, error) {
	if op.GroupAll {
		return "all", nil
	}
	if len(op.KeyExprs) == 1 {
		return op.KeyExprs[0].Eval(t)
	}
	key := make(tuple.Tuple, len(op.KeyExprs))
	for i, e := range op.KeyExprs {
		v, err := e.Eval(t)
		if err != nil {
			return nil, err
		}
		key[i] = v
	}
	return key, nil
}

// joinFlatten receives a Package group tuple (key, bag0, bag1, …) and
// emits the inner-join cross product: one concatenated tuple per
// combination, fields of input 0 first.
func (x *exec) joinFlatten(op *physical.Op, t tuple.Tuple) error {
	n := op.NumInputs
	if len(t) != n+1 {
		return fmt.Errorf("mapreduce: JoinFlatten got %d fields, want %d", len(t), n+1)
	}
	bags := make([]*tuple.Bag, n)
	for i := 0; i < n; i++ {
		b, ok := t[1+i].(*tuple.Bag)
		if !ok || b.Len() == 0 {
			return nil // inner join: a missing side produces nothing
		}
		bags[i] = b
	}
	idx := make([]int, n)
	for {
		var out tuple.Tuple
		for i := 0; i < n; i++ {
			out = append(out, bags[i].Tuples[idx[i]]...)
		}
		if err := x.push(op.ID, out); err != nil {
			return err
		}
		// Advance the odometer.
		k := n - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < bags[k].Len() {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			return nil
		}
	}
}

// close flushes every Store writer to the DFS (one part file per task
// per Store, created even when empty, as Hadoop does) and accumulates
// output statistics scaled to simulated bytes.
func (x *exec) close(fs dfs.Backend, simScale float64, outStats map[string]OutputStat) error {
	// Count every Store op in this segment (reachable ones), not just
	// those that received rows: empty part files still get created and
	// still pay the setup cost.
	for _, op := range x.plan.Ops() {
		if op.Kind != physical.KStore {
			continue
		}
		if x.inMap != nil && !x.inMap[op.ID] {
			continue
		}
		if x.inMap == nil {
			// Reduce task: only reduce-segment stores apply; a map-only
			// store would have inMap set. Reduce tasks pass inMap=nil,
			// so restrict to stores downstream of the package by
			// checking the writer map OR reachability; simplest: stores
			// whose ancestors include a Package.
			if !storeInReduce(x.plan, op.ID) {
				continue
			}
		}
		w := x.writers[op.ID]
		if w == nil {
			w = &taskWriter{path: op.Path}
			x.writers[op.ID] = w
		}
		x.numStores++
	}
	for _, w := range x.writers {
		f := fs.Create(w.path + "/" + x.suffix)
		var out io.Writer = f
		var buf *bytes.Buffer
		if x.capture {
			buf = &bytes.Buffer{}
			out = io.MultiWriter(f, buf)
		}
		tw := tuple.NewWriter(out)
		for _, t := range w.rows {
			if err := tw.Write(t); err != nil {
				return err
			}
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		// The version of this part's own commit, for write-through
		// staleness detection. Both DFS backends capture it inside
		// Close's critical section; the Version fallback for other
		// backends leaves a small window a concurrent writer could
		// slip into, which writeThrough's guard then cannot see.
		if cv, ok := f.(interface{ CommittedVersion() int64 }); ok {
			w.ver = cv.CommittedVersion()
		} else {
			w.ver = fs.Version(w.path)
		}
		if buf != nil {
			// Decode the exact bytes that landed on the DFS, so the
			// cached batch is indistinguishable from a later re-read
			// (text round-trips can change value types, e.g. a float
			// written as "5" re-reads as an int).
			if b, err := tuple.DecodeTextBatch(buf.Bytes()); err == nil {
				w.batch = b
			}
		}
		w.byteLen = tw.Bytes()
		cur := outStats[w.path]
		cur.SimBytes += int64(float64(tw.Bytes()) * simScale)
		cur.Records += int64(float64(tw.Rows()) * simScale)
		outStats[w.path] = cur
	}
	return nil
}

// writtenPart is one part file a task wrote, decoded for write-through.
type writtenPart struct {
	dir   string // the Store dataset directory
	file  string // full part-file path
	batch *tuple.Batch
	ver   int64 // dataset version committed by this part's write
}

// writtenParts returns the task's written part files with their
// decoded batches; call after close. Parts without a captured batch
// (capture off, or a decode failure) are skipped.
func (x *exec) writtenParts() []writtenPart {
	var out []writtenPart
	for _, w := range x.writers {
		if w.batch == nil {
			continue
		}
		out = append(out, writtenPart{dir: w.path, file: w.path + "/" + x.suffix, batch: w.batch, ver: w.ver})
	}
	return out
}

func storeInReduce(p *physical.Plan, storeID int) bool {
	anc := p.Ancestors(storeID)
	for id := range anc {
		if p.Op(id).Kind == physical.KPackage {
			return true
		}
	}
	return false
}
