// Package mapreduce executes physical MapReduce jobs: it splits inputs,
// runs map tasks over the map segment of the job's plan, partitions and
// sorts the keyed output, runs reduce tasks over the reduce segment, and
// writes part files to the DFS — a faithful, laptop-scale Hadoop.
//
// Every task's byte and record counts are scaled by the configured
// SimScale and fed through the cluster cost model, so each job reports
// both its real wall-clock time and its simulated "time on Hadoop".
package mapreduce

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/physical"
	"repro/internal/tuple"
)

// Config tunes the engine.
type Config struct {
	// Topology is the simulated cluster layout.
	Topology cluster.Topology
	// Cost converts task workloads to simulated durations.
	Cost cluster.CostModel
	// SimScale is the ratio of simulated bytes to actual ones; 1 means
	// "simulate exactly what ran".
	SimScale float64
	// RecordScale is the ratio of simulated records to actual ones;
	// it defaults to SimScale but should be set separately when the
	// scaled-down rows are narrower or wider than the originals.
	RecordScale float64
	// SplitSize is the simulated input split size (default 128 MiB).
	SplitSize int64
	// Parallelism bounds real goroutines running tasks (default
	// NumCPU). The bound is engine-wide: concurrent Run calls — the
	// driver's DAG scheduler and multiple client queries — share one
	// pool of task slots instead of each oversubscribing the CPU.
	Parallelism int
	// MaxCachedBatchBytes bounds the decoded-dataset batch cache. Zero
	// selects DefaultMaxCachedBatchBytes; a negative value disables the
	// cache entirely.
	MaxCachedBatchBytes int64
	// Cache, when non-nil, is an existing batch cache to adopt instead
	// of building a fresh one — New sets it, so rebuilding an engine
	// from Config() (as SetScales does) keeps the warm cache.
	Cache *BatchCache
}

// DefaultConfig mirrors the paper's testbed with no scale-up.
func DefaultConfig() Config {
	return Config{
		Topology:  cluster.DefaultTopology(),
		Cost:      cluster.DefaultCostModel(),
		SimScale:  1,
		SplitSize: 128 << 20,
	}
}

// Engine executes jobs against a DFS. Run is safe for concurrent use:
// each call keeps its state on its own stack, and real task goroutines
// across all in-flight jobs share the engine-wide Parallelism slots.
type Engine struct {
	fs    dfs.Backend
	cfg   Config
	sem   chan struct{} // engine-wide task slots
	cache *BatchCache   // nil when MaxCachedBatchBytes < 0
}

// New returns an engine over fs.
func New(fs dfs.Backend, cfg Config) *Engine {
	if cfg.SimScale <= 0 {
		cfg.SimScale = 1
	}
	if cfg.RecordScale <= 0 {
		cfg.RecordScale = cfg.SimScale
	}
	if cfg.SplitSize <= 0 {
		cfg.SplitSize = 128 << 20
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.NumCPU()
	}
	if cfg.Topology.Workers <= 0 {
		cfg.Topology = cluster.DefaultTopology()
	}
	if cfg.MaxCachedBatchBytes < 0 {
		cfg.Cache = nil
	} else if cfg.Cache == nil {
		cfg.Cache = NewBatchCache(cfg.MaxCachedBatchBytes)
	}
	return &Engine{fs: fs, cfg: cfg, sem: make(chan struct{}, cfg.Parallelism), cache: cfg.Cache}
}

// FS returns the engine's file system.
func (e *Engine) FS() dfs.Backend { return e.fs }

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// OutputStat describes one Store destination of an executed job.
type OutputStat struct {
	SimBytes int64
	Records  int64
}

// JobStats aggregates one job execution.
type JobStats struct {
	JobID    string
	MapTasks int
	RedTasks int

	InputSimBytes   int64
	InputRecords    int64
	ShuffleSimBytes int64
	OutputSimBytes  int64 // the job's primary output
	OutputRecords   int64

	// Outputs covers every Store path the job wrote (primary and the
	// sub-job side stores ReStore injects).
	Outputs map[string]OutputStat

	AvgMapTime time.Duration
	AvgRedTime time.Duration
	SimTime    time.Duration
	WallTime   time.Duration
}

// rec is one shuffled record.
type rec struct {
	key    tuple.Value
	branch int
	t      tuple.Tuple
	bytes  int64
}

// Run executes the job and returns its statistics.
func (e *Engine) Run(job *physical.Job) (*JobStats, error) {
	return e.RunContext(context.Background(), job)
}

// Progress observes one running job's task completions: done counts
// map and reduce tasks finished so far out of total, and simSoFar is
// the accumulated simulated execution time of those tasks (a running
// approximation of the job's eventual SimTime, which additionally
// models wave scheduling and startup). Calls are serialized.
type Progress func(done, total int, simSoFar time.Duration)

// progressTracker serializes Progress callbacks across the concurrent
// task goroutines of one job.
type progressTracker struct {
	mu    sync.Mutex
	fn    Progress
	done  int
	total int
	sim   time.Duration
}

// tick records one completed task. The callback runs under the
// tracker's lock so deliveries are serialized and monotonic, as the
// Progress contract promises; callbacks must therefore be quick and
// must not call back into the engine.
func (p *progressTracker) tick(taskTime time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	p.sim += taskTime
	p.fn(p.done, p.total, p.sim)
}

// RunContext executes the job under ctx. Cancelling the context aborts
// the job promptly: tasks that have not yet acquired an engine task
// slot never start (their slots go back to the engine-wide pool for
// other in-flight jobs), already-running tasks finish their unit of
// work, and the returned error wraps ctx.Err(). A cancelled job writes
// no statistics and must not be registered in the repository.
func (e *Engine) RunContext(ctx context.Context, job *physical.Job) (*JobStats, error) {
	return e.RunContextObserved(ctx, job, nil)
}

// RunContextObserved is RunContext with a task-level progress observer;
// progress (when non-nil) fires after every completed map and reduce
// task, making long jobs observable through the query-handle Status
// API.
func (e *Engine) RunContextObserved(ctx context.Context, job *physical.Job, progress Progress) (*JobStats, error) {
	return e.RunContextOpts(ctx, job, RunOptions{Progress: progress})
}

// RunOptions tunes one job execution.
type RunOptions struct {
	// Progress, when non-nil, observes task completions (see Progress).
	Progress Progress
	// DisableBatchCache bypasses the decoded-dataset cache for this run
	// only: inputs are decoded from the DFS and outputs are not written
	// through. Results are byte-identical either way; the flag exists
	// for differential testing and per-query opt-out.
	DisableBatchCache bool
}

// RunContextOpts is RunContext with per-run options.
func (e *Engine) RunContextOpts(ctx context.Context, job *physical.Job, opts RunOptions) (*JobStats, error) {
	start := time.Now()
	progress := opts.Progress
	cache := e.cache
	if opts.DisableBatchCache {
		cache = nil
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: job %s: %w", job.ID, err)
	}
	if err := job.Plan.Validate(); err != nil {
		return nil, fmt.Errorf("mapreduce: job %s: %w", job.ID, err)
	}
	seg, err := segments(job.Plan)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %s: %w", job.ID, err)
	}
	splits, err := e.makeSplits(job.Plan, cache)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %s: %w", job.ID, err)
	}
	// Hadoop refuses to run a job whose output directory exists; here
	// outputs are cleared instead so reruns replace rather than
	// accumulate part files. Inputs are already in memory (makeSplits),
	// so clearing is safe even when a job overwrites its own input.
	for _, op := range job.Plan.Ops() {
		if op.Kind == physical.KStore && e.fs.Exists(op.Path) {
			if err := e.fs.Delete(op.Path); err != nil {
				return nil, fmt.Errorf("mapreduce: clearing output %s: %w", op.Path, err)
			}
		}
	}

	numRed := job.NumReducers
	if seg.shuffle == nil {
		numRed = 0
	} else if numRed <= 0 {
		numRed = 1
	}

	stats := &JobStats{JobID: job.ID, Outputs: map[string]OutputStat{}}

	var tracker *progressTracker
	if progress != nil {
		tracker = &progressTracker{fn: progress, total: len(splits) + numRed}
	}

	var shufSig string
	if seg.shuffle != nil && cache != nil {
		shufSig = mapSegmentSig(seg, numRed)
	}

	mapResults, err := e.runMapPhase(ctx, job, seg, splits, numRed, stats, tracker, shufSig, cache)
	if err != nil {
		return nil, err
	}
	var mapTimes, redTimes []time.Duration
	for _, mr := range mapResults {
		mapTimes = append(mapTimes, e.cfg.Cost.TaskTime(mr.work))
	}
	var redWrites []writtenPart
	if seg.shuffle != nil {
		redTimes, redWrites, err = e.runReducePhase(ctx, job, seg, mapResults, numRed, stats, tracker, cache != nil)
		if err != nil {
			return nil, err
		}
	}

	if cache != nil {
		var written []writtenPart
		for i := range mapResults {
			written = append(written, mapResults[i].writes...)
		}
		written = append(written, redWrites...)
		e.writeThrough(cache, written)
	}

	stats.MapTasks = len(mapResults)
	stats.RedTasks = numRed
	stats.AvgMapTime = avg(mapTimes)
	stats.AvgRedTime = avg(redTimes)
	numOutputs := 0
	for _, op := range job.Plan.Ops() {
		if op.Kind == physical.KStore {
			numOutputs++
		}
	}
	stats.SimTime = e.cfg.Cost.JobTime(mapTimes, redTimes, numOutputs, e.cfg.Topology)
	stats.WallTime = time.Since(start)
	if out, ok := stats.Outputs[job.OutputPath]; ok {
		stats.OutputSimBytes = out.SimBytes
		stats.OutputRecords = out.Records
	}
	return stats, nil
}

func avg(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// segmentation splits the plan at the shuffle boundary.
type segmentation struct {
	plan    *physical.Plan
	succ    map[int][]int
	shuffle *physical.Op
	pkg     *physical.Op
	// inMap[id] is true for ops executed by map tasks.
	inMap map[int]bool
	// counts of pipeline ops per segment for the CPU cost model.
	mapOps int
	redOps int
	// combine is non-nil when the job qualifies for Pig's algebraic
	// combiner (see combine.go).
	combine *combineSpec
}

func segments(p *physical.Plan) (*segmentation, error) {
	s := &segmentation{plan: p, succ: p.Successors(), inMap: map[int]bool{}}
	for _, op := range p.Ops() {
		if op.Kind == physical.KShuffle {
			if s.shuffle != nil {
				return nil, fmt.Errorf("plan has more than one shuffle")
			}
			s.shuffle = op
		}
	}
	if s.shuffle != nil {
		for _, id := range s.succ[s.shuffle.ID] {
			op := p.Op(id)
			if op.Kind != physical.KPackage {
				return nil, fmt.Errorf("shuffle successor %d is %s, want Package", id, op.Kind)
			}
			if s.pkg != nil {
				return nil, fmt.Errorf("shuffle feeds more than one Package")
			}
			s.pkg = op
		}
		if s.pkg == nil {
			return nil, fmt.Errorf("shuffle has no Package")
		}
		s.combine = detectCombine(p, s.succ, s.pkg)
	}
	// Reduce side = descendants of the shuffle; everything else is map.
	reduceSet := map[int]bool{}
	if s.shuffle != nil {
		var mark func(id int)
		mark = func(id int) {
			if reduceSet[id] {
				return
			}
			reduceSet[id] = true
			for _, nxt := range s.succ[id] {
				mark(nxt)
			}
		}
		mark(s.shuffle.ID)
	}
	for _, op := range p.Ops() {
		if !reduceSet[op.ID] {
			s.inMap[op.ID] = true
			s.mapOps++
		} else {
			s.redOps++
		}
	}
	return s, nil
}

// split is one map task's input slice: rows [lo, hi) of one part
// file's columnar batch.
type split struct {
	loadID int
	file   string
	batch  *tuple.Batch
	lo, hi int
	bytes  int64 // actual bytes attributed to this slice
	// ds is the cache entry the batch belongs to (nil when the run
	// bypasses the cache); it carries shuffle partition recordings.
	ds *cachedDataset
}

// loadDataset decodes every part file of the dataset at path into
// columnar batches, serving from (and filling) cache when enabled. The
// version stamp is taken before the reads and re-checked before
// publishing, so a concurrent writer can only cause a skipped insert,
// never a stale entry.
func (e *Engine) loadDataset(path string, cache *BatchCache) (*cachedDataset, error) {
	if cache != nil {
		if ds := cache.Get(e.fs, path); ds != nil {
			return ds, nil
		}
	}
	v0 := e.fs.Version(path)
	files := e.fs.List(path)
	if len(files) == 0 {
		return nil, fmt.Errorf("input %q does not exist", path)
	}
	ds := &cachedDataset{path: path, version: v0, files: files}
	for _, f := range files {
		data, err := e.fs.ReadFile(f)
		if err != nil {
			return nil, err
		}
		b, err := tuple.DecodeTextBatch(data)
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", f, err)
		}
		ds.batches = append(ds.batches, b)
		ds.mem += b.MemBytes()
		ds.src += b.SrcBytes()
	}
	if cache != nil {
		cache.noteMiss(ds.src)
		if e.fs.Version(path) == v0 {
			cache.Put(ds)
		}
	}
	return ds, nil
}

// readAll decodes a part file's rows as a flat slice.
func readAll(data []byte) ([]tuple.Tuple, error) {
	b, err := tuple.DecodeTextBatch(data)
	if err != nil {
		return nil, err
	}
	out := make([]tuple.Tuple, b.Len())
	for i := range out {
		out[i] = b.Row(i)
	}
	return out, nil
}

// makeSplits decodes every Load's part files (through the batch cache
// when enabled) and slices them into map inputs of roughly SplitSize
// simulated bytes. Split sizing works from each batch's source byte
// length, so cached and uncached runs produce identical splits — and
// therefore identical task counts, costs, and outputs.
func (e *Engine) makeSplits(p *physical.Plan, cache *BatchCache) ([]split, error) {
	var out []split
	for _, op := range p.Ops() {
		if op.Kind != physical.KLoad {
			continue
		}
		restricted := op.Files != nil
		var ds *cachedDataset
		var err error
		if restricted {
			ds, err = e.loadFiles(op.Path, op.Files, cache)
		} else {
			ds, err = e.loadDataset(op.Path, cache)
		}
		if err != nil {
			return nil, err
		}
		for fi, b := range ds.batches {
			actualBytes := b.SrcBytes()
			nrows := b.Len()
			simBytes := int64(float64(actualBytes) * e.cfg.SimScale)
			n := int((simBytes + e.cfg.SplitSize - 1) / e.cfg.SplitSize)
			if n < 1 {
				n = 1
			}
			if n > nrows && nrows > 0 {
				n = nrows
			}
			if nrows == 0 {
				out = append(out, split{loadID: op.ID, bytes: actualBytes})
				continue
			}
			per := (nrows + n - 1) / n
			for i := 0; i < nrows; i += per {
				j := i + per
				if j > nrows {
					j = nrows
				}
				chunkBytes := actualBytes * int64(j-i) / int64(nrows)
				sp := split{loadID: op.ID, file: ds.files[fi], batch: b, lo: i, hi: j, bytes: chunkBytes}
				if cache != nil && !restricted {
					// Restricted views are ad-hoc datasets; they carry
					// no shuffle-partition recordings.
					sp.ds = ds
				}
				out = append(out, sp)
			}
		}
	}
	return out, nil
}

// loadFiles decodes exactly the listed part files of the dataset at
// path — the restricted view a Load with Files set executes over. When
// the full dataset is already cached its batches are sliced instead of
// re-read, so a delta run whose base is warm touches the DFS only for
// the files it actually needs; a restricted view is never inserted
// into the cache (it is not the dataset).
func (e *Engine) loadFiles(path string, files []string, cache *BatchCache) (*cachedDataset, error) {
	ds := &cachedDataset{path: path}
	if len(files) == 0 {
		return ds, nil
	}
	want := make(map[string]bool, len(files))
	for _, f := range files {
		want[f] = true
	}
	if cache != nil {
		if full := cache.Get(e.fs, path); full != nil {
			for i, f := range full.files {
				if !want[f] {
					continue
				}
				b := full.batches[i]
				ds.files = append(ds.files, f)
				ds.batches = append(ds.batches, b)
				ds.mem += b.MemBytes()
				ds.src += b.SrcBytes()
			}
			if len(ds.files) == len(want) {
				return ds, nil
			}
			// The cached view predates some wanted files; read directly.
			ds = &cachedDataset{path: path}
		}
	}
	sorted := append([]string{}, files...)
	sort.Strings(sorted)
	for _, f := range sorted {
		data, err := e.fs.ReadFile(f)
		if err != nil {
			return nil, err
		}
		b, err := tuple.DecodeTextBatch(data)
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", f, err)
		}
		ds.files = append(ds.files, f)
		ds.batches = append(ds.batches, b)
		ds.mem += b.MemBytes()
		ds.src += b.SrcBytes()
	}
	return ds, nil
}

// mapSegmentSig fingerprints the map segment's structure — every
// map-side op's identity, signature, and wiring, plus the reducer
// count. Two runs with equal signatures over the same split emit the
// same keyed sequence, which is what makes shuffle partition replay
// sound (see partitioner).
func mapSegmentSig(seg *segmentation, numRed int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "R%d", numRed)
	for _, op := range seg.plan.Ops() {
		if !seg.inMap[op.ID] {
			continue
		}
		fmt.Fprintf(&b, ";%d:%s<-%v", op.ID, op.Signature(), op.InputIDs)
	}
	return b.String()
}

// writeThrough populates the cache with the datasets a finished job
// just wrote. Parts are grouped per Store directory and sorted by file
// name — the same lexicographic order fs.List returns — and stamped
// with the version the job's own last write to the directory committed
// (captured atomically with each part's commit, see exec.close), so
// the entry is exactly what a fresh decode of the dataset would
// produce. Stamping the job's own committed version, not a re-read of
// fs.Version, is what makes a lost race detectable: if a concurrent
// writer rewrote same-named part files after this job's writes, the
// directory version has moved past the stamp and the guard below skips
// the insert instead of caching this job's stale batches under the
// rewriter's newer version.
func (e *Engine) writeThrough(cache *BatchCache, parts []writtenPart) {
	byDir := map[string][]writtenPart{}
	for _, wp := range parts {
		byDir[wp.dir] = append(byDir[wp.dir], wp)
	}
	for dir, ps := range byDir {
		sort.Slice(ps, func(i, j int) bool { return ps[i].file < ps[j].file })
		ds := &cachedDataset{path: dir}
		for _, wp := range ps {
			ds.files = append(ds.files, wp.file)
			ds.batches = append(ds.batches, wp.batch)
			ds.mem += wp.batch.MemBytes()
			ds.src += wp.batch.SrcBytes()
			if wp.ver > ds.version {
				ds.version = wp.ver
			}
		}
		// Publish only when the directory is still exactly as this job
		// left it: its version is the one our own last part commit
		// produced (any later write — including a same-name rewrite the
		// List comparison cannot see — bumps it past the stamp), and its
		// file list matches the captured parts (a dropped capture or an
		// unrelated writer would otherwise cache an incomplete view).
		if e.fs.Version(dir) != ds.version {
			continue
		}
		if !equalStrings(ds.files, e.fs.List(dir)) {
			continue
		}
		cache.Put(ds)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CacheStats snapshots the engine's decoded-dataset cache counters.
func (e *Engine) CacheStats() BatchCacheStats { return e.cache.Stats() }

// mapResult carries one map task's shuffle output and cost accounting.
type mapResult struct {
	parts   [][]rec // per reduce partition
	work    cluster.TaskWork
	outs    map[string]OutputStat
	records int64
	writes  []writtenPart // part files for cache write-through
}

// partitioner assigns shuffle partitions for one map task. On a warm
// split from the cache it replays the partition sequence a previous
// identical task recorded — skipping the per-record key hash — and
// falls back to live hashing past the end of a recording, so replay is
// an optimization, never a correctness dependency. Recordings key on
// the map-segment signature plus the exact split, and live on the
// cache entry, so a dataset version bump drops them with the batches.
type partitioner struct {
	numRed   int
	ds       *cachedDataset
	cache    *BatchCache
	key      string
	replay   []int32
	ri       int
	record   bool
	recorded []int32
	replayed bool
}

func newPartitioner(sp split, shufSig string, numRed int, cache *BatchCache) *partitioner {
	pt := &partitioner{numRed: numRed}
	if numRed <= 0 || cache == nil || sp.ds == nil || shufSig == "" {
		return pt
	}
	pt.ds = sp.ds
	pt.cache = cache
	pt.key = fmt.Sprintf("%s|%s|%d:%d", shufSig, sp.file, sp.lo, sp.hi)
	var ok bool
	pt.replay, ok = sp.ds.partitions(pt.key)
	pt.record = !ok
	return pt
}

func (pt *partitioner) next(key tuple.Value) int {
	if pt.ri < len(pt.replay) {
		p := int(pt.replay[pt.ri])
		pt.ri++
		pt.replayed = true
		return p
	}
	p := int(tuple.Hash(key) % uint64(pt.numRed))
	if pt.record {
		pt.recorded = append(pt.recorded, int32(p))
	}
	return p
}

// finish publishes the recording after the task's emissions completed
// without error.
func (pt *partitioner) finish() {
	if pt.record && pt.ds != nil {
		if pt.recorded == nil {
			pt.recorded = []int32{}
		}
		pt.ds.storePartitions(pt.key, pt.recorded)
		pt.cache.partRecs.Add(1)
	}
	if pt.replayed {
		pt.cache.partPlays.Add(1)
	}
}

func (e *Engine) runMapPhase(ctx context.Context, job *physical.Job, seg *segmentation, splits []split, numRed int, stats *JobStats, tracker *progressTracker, shufSig string, cache *BatchCache) ([]mapResult, error) {
	results := make([]mapResult, len(splits))
	errs := make([]error, len(splits))
	var wg sync.WaitGroup
	for i := range splits {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			select {
			case e.sem <- struct{}{}:
			case <-ctx.Done():
				errs[idx] = ctx.Err()
				return
			}
			defer func() { <-e.sem }()
			results[idx], errs[idx] = e.runMapTask(job, seg, splits[idx], idx, numRed, shufSig, cache)
			if errs[idx] == nil {
				tracker.tick(e.cfg.Cost.TaskTime(results[idx].work))
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mapreduce: job %s: %w", job.ID, err)
		}
	}
	for i := range results {
		stats.InputSimBytes += int64(float64(splits[i].bytes) * e.cfg.SimScale)
		stats.InputRecords += int64(float64(results[i].records) * e.cfg.RecordScale)
		stats.ShuffleSimBytes += int64(float64(results[i].work.ShuffleBytes))
		mergeOutputs(stats.Outputs, results[i].outs)
	}
	return results, nil
}

func mergeOutputs(dst map[string]OutputStat, src map[string]OutputStat) {
	for p, s := range src {
		cur := dst[p]
		cur.SimBytes += s.SimBytes
		cur.Records += s.Records
		dst[p] = cur
	}
}

func (e *Engine) runMapTask(job *physical.Job, seg *segmentation, sp split, taskIdx, numRed int, shufSig string, cache *BatchCache) (mapResult, error) {
	mr := mapResult{outs: map[string]OutputStat{}}
	if numRed > 0 {
		mr.parts = make([][]rec, numRed)
	}
	px := newExec(seg.plan, seg.succ, seg.inMap)
	px.suffix = fmt.Sprintf("part-m-%05d", taskIdx)
	px.capture = cache != nil
	pt := newPartitioner(sp, shufSig, numRed, cache)
	var acc *combineAccumulator
	switch {
	case seg.combine != nil:
		// Algebraic combiner: pre-aggregate per key in the map task.
		acc = newCombineAccumulator(seg.combine, numRed)
		px.keyed = func(branch int, key tuple.Value, t tuple.Tuple) {
			acc.add(key, t, pt)
		}
	case seg.pkg != nil && seg.pkg.Mode == physical.PkgDistinct:
		// Map-side duplicate elimination (Pig's distinct combiner).
		seen := make([]map[string]bool, numRed)
		for i := range seen {
			seen[i] = map[string]bool{}
		}
		px.keyed = func(branch int, key tuple.Value, t tuple.Tuple) {
			p := pt.next(key)
			ks := tuple.ToString(key)
			if seen[p][ks] {
				return
			}
			seen[p][ks] = true
			n := int64(len(ks) + 2)
			mr.parts[p] = append(mr.parts[p], rec{key: key, branch: branch, t: t, bytes: n})
		}
	default:
		px.keyed = func(branch int, key tuple.Value, t tuple.Tuple) {
			// Shuffle volume accounting approximates Pig's compact
			// serialization with the text width of value plus key.
			n := int64(tuple.EncodeTextLen(t) + tuple.TextLen(key) + 2)
			r := rec{key: key, branch: branch, t: t, bytes: n}
			p := pt.next(key)
			mr.parts[p] = append(mr.parts[p], r)
		}
	}

	// Feed rows through a reusable cursor when the plan shape allows
	// it (every map path from this Load reaches a ForEach — which
	// allocates fresh output tuples — before anything that retains its
	// input), so warm splits stop allocating one tuple view per record.
	row := sp.batch.Row
	if sp.batch != nil && cursorFeedSafe(seg, sp.loadID) {
		row = sp.batch.Cursor().Row
	}
	for i := sp.lo; i < sp.hi; i++ {
		mr.records++
		if err := px.push(sp.loadID, row(i)); err != nil {
			return mr, err
		}
	}
	pt.finish()
	if err := px.close(e.fs, e.cfg.SimScale, mr.outs); err != nil {
		return mr, err
	}
	mr.writes = px.writtenParts()
	if acc != nil {
		mr.parts = acc.drain()
	}

	var shuffleBytes, shuffleRecs int64
	for _, p := range mr.parts {
		for _, r := range p {
			shuffleBytes += r.bytes
			shuffleRecs++
		}
	}
	var storeBytes int64
	for _, o := range mr.outs {
		storeBytes += o.SimBytes
	}
	mr.work = cluster.TaskWork{
		ReadBytes:    int64(float64(sp.bytes) * e.cfg.SimScale),
		ShuffleBytes: int64(float64(shuffleBytes) * e.cfg.SimScale),
		StoreBytes:   storeBytes,
		Records:      int64(float64(mr.records) * e.cfg.RecordScale),
		PipelineOps:  seg.mapOps,
		SortRecords:  int64(float64(shuffleRecs) * e.cfg.RecordScale),
		NumStores:    px.numStores,
	}
	return mr, nil
}

// cursorFeedSafe reports whether rows pushed from loadID may share one
// reused buffer: true when every map-segment path from the load hits a
// ForEach (which builds a fresh output tuple, ending the buffer's
// reach) before any operator that retains its input tuple — Store
// appends it to the task writer, LocalRearrange hands it to the
// shuffle accumulator. Filter, Union, Split and Limit pass tuples
// through unretained; any other kind is conservatively unsafe.
func cursorFeedSafe(seg *segmentation, loadID int) bool {
	safe := map[int]bool{}
	var visit func(id int) bool
	visit = func(id int) bool {
		if ok, done := safe[id]; done {
			return ok
		}
		safe[id] = true // DAG: a revisit mid-walk sees the optimistic value
		ok := true
		for _, sid := range seg.succ[id] {
			if !seg.inMap[sid] {
				continue
			}
			switch seg.plan.Op(sid).Kind {
			case physical.KForEach:
				// Fresh allocation boundary: downstream retention holds
				// the ForEach's tuple, not the cursor buffer.
			case physical.KFilter, physical.KUnion, physical.KSplit, physical.KLimit:
				if !visit(sid) {
					ok = false
				}
			default:
				ok = false
			}
		}
		safe[id] = ok
		return ok
	}
	return visit(loadID)
}

func (e *Engine) runReducePhase(ctx context.Context, job *physical.Job, seg *segmentation, mapResults []mapResult, numRed int, stats *JobStats, tracker *progressTracker, capture bool) ([]time.Duration, []writtenPart, error) {
	times := make([]time.Duration, numRed)
	errs := make([]error, numRed)
	outs := make([]map[string]OutputStat, numRed)
	writes := make([][]writtenPart, numRed)
	shuffleIn := make([]int64, numRed)
	var wg sync.WaitGroup
	for r := 0; r < numRed; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			select {
			case e.sem <- struct{}{}:
			case <-ctx.Done():
				errs[r] = ctx.Err()
				return
			}
			defer func() { <-e.sem }()
			var recs []rec
			for _, mr := range mapResults {
				recs = append(recs, mr.parts[r]...)
			}
			outs[r] = map[string]OutputStat{}
			times[r], shuffleIn[r], writes[r], errs[r] = e.runReduceTask(seg, recs, r, outs[r], capture)
			if errs[r] == nil {
				tracker.tick(times[r])
			}
		}(r)
	}
	wg.Wait()
	var allWrites []writtenPart
	for r := 0; r < numRed; r++ {
		if errs[r] != nil {
			return nil, nil, fmt.Errorf("mapreduce: job %s reduce %d: %w", job.ID, r, errs[r])
		}
		mergeOutputs(stats.Outputs, outs[r])
		allWrites = append(allWrites, writes[r]...)
	}
	return times, allWrites, nil
}

func (e *Engine) runReduceTask(seg *segmentation, recs []rec, taskIdx int, outStats map[string]OutputStat, capture bool) (time.Duration, int64, []writtenPart, error) {
	// Sort by key (respecting ORDER BY direction), then branch, stable.
	desc := seg.pkg.Desc
	sort.SliceStable(recs, func(i, j int) bool {
		c := compareKeys(recs[i].key, recs[j].key, desc)
		if c != 0 {
			return c < 0
		}
		return recs[i].branch < recs[j].branch
	})

	px := newExec(seg.plan, seg.succ, nil)
	px.suffix = fmt.Sprintf("part-r-%05d", taskIdx)
	px.capture = capture

	var shuffleBytes int64
	for _, r := range recs {
		shuffleBytes += r.bytes
	}

	// Walk key groups.
	i := 0
	for i < len(recs) {
		j := i
		for j < len(recs) && compareKeys(recs[j].key, recs[i].key, desc) == 0 {
			j++
		}
		group := recs[i:j]
		var err error
		if seg.combine != nil {
			err = mergeCombined(px, seg.combine, group)
		} else {
			err = e.emitGroup(px, seg, group)
		}
		if err != nil {
			return 0, 0, nil, err
		}
		i = j
	}
	if err := px.close(e.fs, e.cfg.SimScale, outStats); err != nil {
		return 0, 0, nil, err
	}

	var storeBytes int64
	for _, o := range outStats {
		storeBytes += o.SimBytes
	}
	scale := e.cfg.SimScale
	work := cluster.TaskWork{
		ShuffleBytes: int64(float64(shuffleBytes) * scale),
		StoreBytes:   storeBytes,
		Records:      int64(float64(len(recs)) * e.cfg.RecordScale),
		PipelineOps:  seg.redOps,
		SortRecords:  int64(float64(len(recs)) * e.cfg.RecordScale),
		NumStores:    px.numStores,
	}
	return e.cfg.Cost.TaskTime(work), int64(float64(shuffleBytes) * scale), px.writtenParts(), nil
}

func compareKeys(a, b tuple.Value, desc []bool) int {
	if len(desc) == 0 {
		return tuple.Compare(a, b)
	}
	// Composite ORDER BY keys compare per component with direction.
	at, aok := a.(tuple.Tuple)
	bt, bok := b.(tuple.Tuple)
	if !aok || !bok {
		c := tuple.Compare(a, b)
		if len(desc) > 0 && desc[0] {
			return -c
		}
		return c
	}
	for i := range at {
		if i >= len(bt) {
			return 1
		}
		c := tuple.Compare(at[i], bt[i])
		if c != 0 {
			if i < len(desc) && desc[i] {
				return -c
			}
			return c
		}
	}
	if len(at) < len(bt) {
		return -1
	}
	return 0
}

// emitGroup packages one key group and pushes it through the reduce
// segment.
func (e *Engine) emitGroup(px *exec, seg *segmentation, group []rec) error {
	pkg := seg.pkg
	switch pkg.Mode {
	case physical.PkgGroup:
		bags := make([]*tuple.Bag, pkg.NumInputs)
		for i := range bags {
			bags[i] = tuple.NewBag()
		}
		for _, r := range group {
			if r.branch < len(bags) {
				bags[r.branch].Add(r.t)
			}
		}
		out := make(tuple.Tuple, 1+pkg.NumInputs)
		out[0] = group[0].key
		for i, b := range bags {
			out[1+i] = b
		}
		return px.push(pkg.ID, out)
	case physical.PkgDistinct:
		kt, ok := group[0].key.(tuple.Tuple)
		if !ok {
			kt = tuple.Tuple{group[0].key}
		}
		return px.push(pkg.ID, kt)
	case physical.PkgFlat:
		for _, r := range group {
			if err := px.push(pkg.ID, r.t); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("unknown package mode %v", pkg.Mode)
}
