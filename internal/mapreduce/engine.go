// Package mapreduce executes physical MapReduce jobs: it splits inputs,
// runs map tasks over the map segment of the job's plan, partitions and
// sorts the keyed output, runs reduce tasks over the reduce segment, and
// writes part files to the DFS — a faithful, laptop-scale Hadoop.
//
// Every task's byte and record counts are scaled by the configured
// SimScale and fed through the cluster cost model, so each job reports
// both its real wall-clock time and its simulated "time on Hadoop".
package mapreduce

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/physical"
	"repro/internal/tuple"
)

// Config tunes the engine.
type Config struct {
	// Topology is the simulated cluster layout.
	Topology cluster.Topology
	// Cost converts task workloads to simulated durations.
	Cost cluster.CostModel
	// SimScale is the ratio of simulated bytes to actual ones; 1 means
	// "simulate exactly what ran".
	SimScale float64
	// RecordScale is the ratio of simulated records to actual ones;
	// it defaults to SimScale but should be set separately when the
	// scaled-down rows are narrower or wider than the originals.
	RecordScale float64
	// SplitSize is the simulated input split size (default 128 MiB).
	SplitSize int64
	// Parallelism bounds real goroutines running tasks (default
	// NumCPU). The bound is engine-wide: concurrent Run calls — the
	// driver's DAG scheduler and multiple client queries — share one
	// pool of task slots instead of each oversubscribing the CPU.
	Parallelism int
}

// DefaultConfig mirrors the paper's testbed with no scale-up.
func DefaultConfig() Config {
	return Config{
		Topology:  cluster.DefaultTopology(),
		Cost:      cluster.DefaultCostModel(),
		SimScale:  1,
		SplitSize: 128 << 20,
	}
}

// Engine executes jobs against a DFS. Run is safe for concurrent use:
// each call keeps its state on its own stack, and real task goroutines
// across all in-flight jobs share the engine-wide Parallelism slots.
type Engine struct {
	fs  dfs.Backend
	cfg Config
	sem chan struct{} // engine-wide task slots
}

// New returns an engine over fs.
func New(fs dfs.Backend, cfg Config) *Engine {
	if cfg.SimScale <= 0 {
		cfg.SimScale = 1
	}
	if cfg.RecordScale <= 0 {
		cfg.RecordScale = cfg.SimScale
	}
	if cfg.SplitSize <= 0 {
		cfg.SplitSize = 128 << 20
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.NumCPU()
	}
	if cfg.Topology.Workers <= 0 {
		cfg.Topology = cluster.DefaultTopology()
	}
	return &Engine{fs: fs, cfg: cfg, sem: make(chan struct{}, cfg.Parallelism)}
}

// FS returns the engine's file system.
func (e *Engine) FS() dfs.Backend { return e.fs }

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// OutputStat describes one Store destination of an executed job.
type OutputStat struct {
	SimBytes int64
	Records  int64
}

// JobStats aggregates one job execution.
type JobStats struct {
	JobID    string
	MapTasks int
	RedTasks int

	InputSimBytes   int64
	InputRecords    int64
	ShuffleSimBytes int64
	OutputSimBytes  int64 // the job's primary output
	OutputRecords   int64

	// Outputs covers every Store path the job wrote (primary and the
	// sub-job side stores ReStore injects).
	Outputs map[string]OutputStat

	AvgMapTime time.Duration
	AvgRedTime time.Duration
	SimTime    time.Duration
	WallTime   time.Duration
}

// rec is one shuffled record.
type rec struct {
	key    tuple.Value
	branch int
	t      tuple.Tuple
	bytes  int64
}

// Run executes the job and returns its statistics.
func (e *Engine) Run(job *physical.Job) (*JobStats, error) {
	return e.RunContext(context.Background(), job)
}

// Progress observes one running job's task completions: done counts
// map and reduce tasks finished so far out of total, and simSoFar is
// the accumulated simulated execution time of those tasks (a running
// approximation of the job's eventual SimTime, which additionally
// models wave scheduling and startup). Calls are serialized.
type Progress func(done, total int, simSoFar time.Duration)

// progressTracker serializes Progress callbacks across the concurrent
// task goroutines of one job.
type progressTracker struct {
	mu    sync.Mutex
	fn    Progress
	done  int
	total int
	sim   time.Duration
}

// tick records one completed task. The callback runs under the
// tracker's lock so deliveries are serialized and monotonic, as the
// Progress contract promises; callbacks must therefore be quick and
// must not call back into the engine.
func (p *progressTracker) tick(taskTime time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	p.sim += taskTime
	p.fn(p.done, p.total, p.sim)
}

// RunContext executes the job under ctx. Cancelling the context aborts
// the job promptly: tasks that have not yet acquired an engine task
// slot never start (their slots go back to the engine-wide pool for
// other in-flight jobs), already-running tasks finish their unit of
// work, and the returned error wraps ctx.Err(). A cancelled job writes
// no statistics and must not be registered in the repository.
func (e *Engine) RunContext(ctx context.Context, job *physical.Job) (*JobStats, error) {
	return e.RunContextObserved(ctx, job, nil)
}

// RunContextObserved is RunContext with a task-level progress observer;
// progress (when non-nil) fires after every completed map and reduce
// task, making long jobs observable through the query-handle Status
// API.
func (e *Engine) RunContextObserved(ctx context.Context, job *physical.Job, progress Progress) (*JobStats, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: job %s: %w", job.ID, err)
	}
	if err := job.Plan.Validate(); err != nil {
		return nil, fmt.Errorf("mapreduce: job %s: %w", job.ID, err)
	}
	seg, err := segments(job.Plan)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %s: %w", job.ID, err)
	}
	splits, err := e.makeSplits(job.Plan)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %s: %w", job.ID, err)
	}
	// Hadoop refuses to run a job whose output directory exists; here
	// outputs are cleared instead so reruns replace rather than
	// accumulate part files. Inputs are already in memory (makeSplits),
	// so clearing is safe even when a job overwrites its own input.
	for _, op := range job.Plan.Ops() {
		if op.Kind == physical.KStore && e.fs.Exists(op.Path) {
			if err := e.fs.Delete(op.Path); err != nil {
				return nil, fmt.Errorf("mapreduce: clearing output %s: %w", op.Path, err)
			}
		}
	}

	numRed := job.NumReducers
	if seg.shuffle == nil {
		numRed = 0
	} else if numRed <= 0 {
		numRed = 1
	}

	stats := &JobStats{JobID: job.ID, Outputs: map[string]OutputStat{}}

	var tracker *progressTracker
	if progress != nil {
		tracker = &progressTracker{fn: progress, total: len(splits) + numRed}
	}

	mapResults, err := e.runMapPhase(ctx, job, seg, splits, numRed, stats, tracker)
	if err != nil {
		return nil, err
	}
	var mapTimes, redTimes []time.Duration
	for _, mr := range mapResults {
		mapTimes = append(mapTimes, e.cfg.Cost.TaskTime(mr.work))
	}
	if seg.shuffle != nil {
		redTimes, err = e.runReducePhase(ctx, job, seg, mapResults, numRed, stats, tracker)
		if err != nil {
			return nil, err
		}
	}

	stats.MapTasks = len(mapResults)
	stats.RedTasks = numRed
	stats.AvgMapTime = avg(mapTimes)
	stats.AvgRedTime = avg(redTimes)
	numOutputs := 0
	for _, op := range job.Plan.Ops() {
		if op.Kind == physical.KStore {
			numOutputs++
		}
	}
	stats.SimTime = e.cfg.Cost.JobTime(mapTimes, redTimes, numOutputs, e.cfg.Topology)
	stats.WallTime = time.Since(start)
	if out, ok := stats.Outputs[job.OutputPath]; ok {
		stats.OutputSimBytes = out.SimBytes
		stats.OutputRecords = out.Records
	}
	return stats, nil
}

func avg(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// segmentation splits the plan at the shuffle boundary.
type segmentation struct {
	plan    *physical.Plan
	succ    map[int][]int
	shuffle *physical.Op
	pkg     *physical.Op
	// inMap[id] is true for ops executed by map tasks.
	inMap map[int]bool
	// counts of pipeline ops per segment for the CPU cost model.
	mapOps int
	redOps int
	// combine is non-nil when the job qualifies for Pig's algebraic
	// combiner (see combine.go).
	combine *combineSpec
}

func segments(p *physical.Plan) (*segmentation, error) {
	s := &segmentation{plan: p, succ: p.Successors(), inMap: map[int]bool{}}
	for _, op := range p.Ops() {
		if op.Kind == physical.KShuffle {
			if s.shuffle != nil {
				return nil, fmt.Errorf("plan has more than one shuffle")
			}
			s.shuffle = op
		}
	}
	if s.shuffle != nil {
		for _, id := range s.succ[s.shuffle.ID] {
			op := p.Op(id)
			if op.Kind != physical.KPackage {
				return nil, fmt.Errorf("shuffle successor %d is %s, want Package", id, op.Kind)
			}
			if s.pkg != nil {
				return nil, fmt.Errorf("shuffle feeds more than one Package")
			}
			s.pkg = op
		}
		if s.pkg == nil {
			return nil, fmt.Errorf("shuffle has no Package")
		}
		s.combine = detectCombine(p, s.succ, s.pkg)
	}
	// Reduce side = descendants of the shuffle; everything else is map.
	reduceSet := map[int]bool{}
	if s.shuffle != nil {
		var mark func(id int)
		mark = func(id int) {
			if reduceSet[id] {
				return
			}
			reduceSet[id] = true
			for _, nxt := range s.succ[id] {
				mark(nxt)
			}
		}
		mark(s.shuffle.ID)
	}
	for _, op := range p.Ops() {
		if !reduceSet[op.ID] {
			s.inMap[op.ID] = true
			s.mapOps++
		} else {
			s.redOps++
		}
	}
	return s, nil
}

// split is one map task's input slice.
type split struct {
	loadID int
	tuples []tuple.Tuple
	bytes  int64 // actual bytes
}

// makeSplits reads every Load's part files and slices them into map
// inputs of roughly SplitSize simulated bytes.
func (e *Engine) makeSplits(p *physical.Plan) ([]split, error) {
	var out []split
	for _, op := range p.Ops() {
		if op.Kind != physical.KLoad {
			continue
		}
		files := e.fs.List(op.Path)
		if len(files) == 0 {
			return nil, fmt.Errorf("input %q does not exist", op.Path)
		}
		for _, f := range files {
			data, err := e.fs.ReadFile(f)
			if err != nil {
				return nil, err
			}
			tuples, err := readAll(data)
			if err != nil {
				return nil, fmt.Errorf("reading %s: %w", f, err)
			}
			actualBytes := int64(len(data))
			simBytes := int64(float64(actualBytes) * e.cfg.SimScale)
			n := int((simBytes + e.cfg.SplitSize - 1) / e.cfg.SplitSize)
			if n < 1 {
				n = 1
			}
			if n > len(tuples) && len(tuples) > 0 {
				n = len(tuples)
			}
			if len(tuples) == 0 {
				out = append(out, split{loadID: op.ID, bytes: actualBytes})
				continue
			}
			per := (len(tuples) + n - 1) / n
			for i := 0; i < len(tuples); i += per {
				j := i + per
				if j > len(tuples) {
					j = len(tuples)
				}
				chunk := tuples[i:j]
				chunkBytes := actualBytes * int64(len(chunk)) / int64(len(tuples))
				out = append(out, split{loadID: op.ID, tuples: chunk, bytes: chunkBytes})
			}
		}
	}
	return out, nil
}

func readAll(data []byte) ([]tuple.Tuple, error) {
	r := tuple.NewReader(bytes.NewReader(data))
	var out []tuple.Tuple
	for {
		t, err := r.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, err
		}
		out = append(out, t)
	}
}

// mapResult carries one map task's shuffle output and cost accounting.
type mapResult struct {
	parts   [][]rec // per reduce partition
	work    cluster.TaskWork
	outs    map[string]OutputStat
	records int64
}

func (e *Engine) runMapPhase(ctx context.Context, job *physical.Job, seg *segmentation, splits []split, numRed int, stats *JobStats, tracker *progressTracker) ([]mapResult, error) {
	results := make([]mapResult, len(splits))
	errs := make([]error, len(splits))
	var wg sync.WaitGroup
	for i := range splits {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			select {
			case e.sem <- struct{}{}:
			case <-ctx.Done():
				errs[idx] = ctx.Err()
				return
			}
			defer func() { <-e.sem }()
			results[idx], errs[idx] = e.runMapTask(job, seg, splits[idx], idx, numRed)
			if errs[idx] == nil {
				tracker.tick(e.cfg.Cost.TaskTime(results[idx].work))
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mapreduce: job %s: %w", job.ID, err)
		}
	}
	for i := range results {
		stats.InputSimBytes += int64(float64(splits[i].bytes) * e.cfg.SimScale)
		stats.InputRecords += int64(float64(results[i].records) * e.cfg.RecordScale)
		stats.ShuffleSimBytes += int64(float64(results[i].work.ShuffleBytes))
		mergeOutputs(stats.Outputs, results[i].outs)
	}
	return results, nil
}

func mergeOutputs(dst map[string]OutputStat, src map[string]OutputStat) {
	for p, s := range src {
		cur := dst[p]
		cur.SimBytes += s.SimBytes
		cur.Records += s.Records
		dst[p] = cur
	}
}

func (e *Engine) runMapTask(job *physical.Job, seg *segmentation, sp split, taskIdx, numRed int) (mapResult, error) {
	mr := mapResult{outs: map[string]OutputStat{}}
	if numRed > 0 {
		mr.parts = make([][]rec, numRed)
	}
	px := newExec(seg.plan, seg.succ, seg.inMap)
	px.suffix = fmt.Sprintf("part-m-%05d", taskIdx)
	var acc *combineAccumulator
	switch {
	case seg.combine != nil:
		// Algebraic combiner: pre-aggregate per key in the map task.
		acc = newCombineAccumulator(seg.combine, numRed)
		px.keyed = func(branch int, key tuple.Value, t tuple.Tuple) {
			acc.add(key, t, numRed)
		}
	case seg.pkg != nil && seg.pkg.Mode == physical.PkgDistinct:
		// Map-side duplicate elimination (Pig's distinct combiner).
		seen := make([]map[string]bool, numRed)
		for i := range seen {
			seen[i] = map[string]bool{}
		}
		px.keyed = func(branch int, key tuple.Value, t tuple.Tuple) {
			p := int(tuple.Hash(key) % uint64(numRed))
			ks := tuple.ToString(key)
			if seen[p][ks] {
				return
			}
			seen[p][ks] = true
			n := int64(len(ks) + 2)
			mr.parts[p] = append(mr.parts[p], rec{key: key, branch: branch, t: t, bytes: n})
		}
	default:
		px.keyed = func(branch int, key tuple.Value, t tuple.Tuple) {
			// Shuffle volume accounting approximates Pig's compact
			// serialization with the text width of value plus key.
			n := int64(len(tuple.EncodeText(t)) + len(tuple.ToString(key)) + 2)
			r := rec{key: key, branch: branch, t: t, bytes: n}
			p := int(tuple.Hash(key) % uint64(numRed))
			mr.parts[p] = append(mr.parts[p], r)
		}
	}

	for _, t := range sp.tuples {
		mr.records++
		if err := px.push(sp.loadID, t); err != nil {
			return mr, err
		}
	}
	if err := px.close(e.fs, e.cfg.SimScale, mr.outs); err != nil {
		return mr, err
	}
	if acc != nil {
		mr.parts = acc.drain()
	}

	var shuffleBytes, shuffleRecs int64
	for _, p := range mr.parts {
		for _, r := range p {
			shuffleBytes += r.bytes
			shuffleRecs++
		}
	}
	var storeBytes int64
	for _, o := range mr.outs {
		storeBytes += o.SimBytes
	}
	mr.work = cluster.TaskWork{
		ReadBytes:    int64(float64(sp.bytes) * e.cfg.SimScale),
		ShuffleBytes: int64(float64(shuffleBytes) * e.cfg.SimScale),
		StoreBytes:   storeBytes,
		Records:      int64(float64(mr.records) * e.cfg.RecordScale),
		PipelineOps:  seg.mapOps,
		SortRecords:  int64(float64(shuffleRecs) * e.cfg.RecordScale),
		NumStores:    px.numStores,
	}
	return mr, nil
}

func (e *Engine) runReducePhase(ctx context.Context, job *physical.Job, seg *segmentation, mapResults []mapResult, numRed int, stats *JobStats, tracker *progressTracker) ([]time.Duration, error) {
	times := make([]time.Duration, numRed)
	errs := make([]error, numRed)
	outs := make([]map[string]OutputStat, numRed)
	shuffleIn := make([]int64, numRed)
	var wg sync.WaitGroup
	for r := 0; r < numRed; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			select {
			case e.sem <- struct{}{}:
			case <-ctx.Done():
				errs[r] = ctx.Err()
				return
			}
			defer func() { <-e.sem }()
			var recs []rec
			for _, mr := range mapResults {
				recs = append(recs, mr.parts[r]...)
			}
			outs[r] = map[string]OutputStat{}
			times[r], shuffleIn[r], errs[r] = e.runReduceTask(seg, recs, r, outs[r])
			if errs[r] == nil {
				tracker.tick(times[r])
			}
		}(r)
	}
	wg.Wait()
	for r := 0; r < numRed; r++ {
		if errs[r] != nil {
			return nil, fmt.Errorf("mapreduce: job %s reduce %d: %w", job.ID, r, errs[r])
		}
		mergeOutputs(stats.Outputs, outs[r])
	}
	return times, nil
}

func (e *Engine) runReduceTask(seg *segmentation, recs []rec, taskIdx int, outStats map[string]OutputStat) (time.Duration, int64, error) {
	// Sort by key (respecting ORDER BY direction), then branch, stable.
	desc := seg.pkg.Desc
	sort.SliceStable(recs, func(i, j int) bool {
		c := compareKeys(recs[i].key, recs[j].key, desc)
		if c != 0 {
			return c < 0
		}
		return recs[i].branch < recs[j].branch
	})

	px := newExec(seg.plan, seg.succ, nil)
	px.suffix = fmt.Sprintf("part-r-%05d", taskIdx)

	var shuffleBytes int64
	for _, r := range recs {
		shuffleBytes += r.bytes
	}

	// Walk key groups.
	i := 0
	for i < len(recs) {
		j := i
		for j < len(recs) && compareKeys(recs[j].key, recs[i].key, desc) == 0 {
			j++
		}
		group := recs[i:j]
		var err error
		if seg.combine != nil {
			err = mergeCombined(px, seg.combine, group)
		} else {
			err = e.emitGroup(px, seg, group)
		}
		if err != nil {
			return 0, 0, err
		}
		i = j
	}
	if err := px.close(e.fs, e.cfg.SimScale, outStats); err != nil {
		return 0, 0, err
	}

	var storeBytes int64
	for _, o := range outStats {
		storeBytes += o.SimBytes
	}
	scale := e.cfg.SimScale
	work := cluster.TaskWork{
		ShuffleBytes: int64(float64(shuffleBytes) * scale),
		StoreBytes:   storeBytes,
		Records:      int64(float64(len(recs)) * e.cfg.RecordScale),
		PipelineOps:  seg.redOps,
		SortRecords:  int64(float64(len(recs)) * e.cfg.RecordScale),
		NumStores:    px.numStores,
	}
	return e.cfg.Cost.TaskTime(work), int64(float64(shuffleBytes) * scale), nil
}

func compareKeys(a, b tuple.Value, desc []bool) int {
	if len(desc) == 0 {
		return tuple.Compare(a, b)
	}
	// Composite ORDER BY keys compare per component with direction.
	at, aok := a.(tuple.Tuple)
	bt, bok := b.(tuple.Tuple)
	if !aok || !bok {
		c := tuple.Compare(a, b)
		if len(desc) > 0 && desc[0] {
			return -c
		}
		return c
	}
	for i := range at {
		if i >= len(bt) {
			return 1
		}
		c := tuple.Compare(at[i], bt[i])
		if c != 0 {
			if i < len(desc) && desc[i] {
				return -c
			}
			return c
		}
	}
	if len(at) < len(bt) {
		return -1
	}
	return 0
}

// emitGroup packages one key group and pushes it through the reduce
// segment.
func (e *Engine) emitGroup(px *exec, seg *segmentation, group []rec) error {
	pkg := seg.pkg
	switch pkg.Mode {
	case physical.PkgGroup:
		bags := make([]*tuple.Bag, pkg.NumInputs)
		for i := range bags {
			bags[i] = tuple.NewBag()
		}
		for _, r := range group {
			if r.branch < len(bags) {
				bags[r.branch].Add(r.t)
			}
		}
		out := make(tuple.Tuple, 1+pkg.NumInputs)
		out[0] = group[0].key
		for i, b := range bags {
			out[1+i] = b
		}
		return px.push(pkg.ID, out)
	case physical.PkgDistinct:
		kt, ok := group[0].key.(tuple.Tuple)
		if !ok {
			kt = tuple.Tuple{group[0].key}
		}
		return px.push(pkg.ID, kt)
	case physical.PkgFlat:
		for _, r := range group {
			if err := px.push(pkg.ID, r.t); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("unknown package mode %v", pkg.Mode)
}
