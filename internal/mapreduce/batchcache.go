package mapreduce

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/dfs"
	"repro/internal/tuple"
)

// DefaultMaxCachedBatchBytes is the decoded-dataset cache budget when
// the configuration leaves MaxCachedBatchBytes zero.
const DefaultMaxCachedBatchBytes int64 = 256 << 20

// BatchCache is the engine's decoded-dataset cache: each entry holds
// one dataset's part files as columnar tuple.Batch vectors, keyed by
// dataset path and stamped with the dataset's DFS version at decode
// time. Invalidation rides the same version bumps that drive
// Repository.Valid — any write, delete, or rename under a dataset moves
// its version, so a stale entry simply stops matching and is dropped on
// its next lookup. The cache therefore works identically over the
// in-memory and on-disk DFS backends, and write-through entries from
// one query feed cache hits in every other query of the System.
//
// Entries are evicted least-recently-used under the byte budget (a
// reuse refreshes recency, so hot repository outputs stay resident
// while one-shot temporaries age out). All methods are safe for
// concurrent use.
type BatchCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	entries map[string]*list.Element
	lru     *list.List // front = most recently used

	hits, misses        int64
	hitBytes, missBytes int64
	inserts, evictions  int64
	evictedBytes        int64
	invalidations       int64
	partRecs, partPlays atomic.Int64
}

// cachedDataset is one decoded dataset: its part files in fs.List
// order, each as a columnar batch, plus any shuffle-partition
// recordings made over it (see runMapTask).
type cachedDataset struct {
	path    string
	version int64
	files   []string
	batches []*tuple.Batch
	mem     int64 // sum of batch MemBytes
	src     int64 // sum of batch SrcBytes (DFS reads saved per hit)

	mu    sync.Mutex
	parts map[string][]int32
}

// NewBatchCache returns a cache bounded to budget bytes of decoded
// batches (<=0 selects DefaultMaxCachedBatchBytes).
func NewBatchCache(budget int64) *BatchCache {
	if budget <= 0 {
		budget = DefaultMaxCachedBatchBytes
	}
	return &BatchCache{
		budget:  budget,
		entries: map[string]*list.Element{},
		lru:     list.New(),
	}
}

// Get returns the cached decode of the dataset at path when its stamped
// version still matches the DFS, refreshing its recency. A version
// mismatch drops the stale entry and counts an invalidation; both that
// and a plain absence count a miss.
func (c *BatchCache) Get(fs dfs.Backend, path string) *cachedDataset {
	c.mu.Lock()
	defer c.mu.Unlock()
	el := c.entries[path]
	if el == nil {
		c.misses++
		return nil
	}
	ds := el.Value.(*cachedDataset)
	if fs.Version(path) != ds.version {
		c.removeLocked(el)
		c.invalidations++
		c.misses++
		return nil
	}
	c.lru.MoveToFront(el)
	c.hits++
	c.hitBytes += ds.src
	return ds
}

// Put inserts (or replaces) the dataset's decoded batches and evicts
// from the cold end until the budget holds again. The newest entry
// itself is never evicted by its own insert, so a single dataset larger
// than the budget still caches (and is reclaimed by the next insert).
func (c *BatchCache) Put(ds *cachedDataset) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el := c.entries[ds.path]; el != nil {
		c.removeLocked(el)
	}
	el := c.lru.PushFront(ds)
	c.entries[ds.path] = el
	c.used += ds.mem
	c.inserts++
	for c.used > c.budget && c.lru.Len() > 1 {
		back := c.lru.Back()
		if back == el {
			break
		}
		victim := back.Value.(*cachedDataset)
		c.removeLocked(back)
		c.evictions++
		c.evictedBytes += victim.mem
	}
}

// noteMiss accounts the decode cost of a miss (bytes read from the
// DFS while filling).
func (c *BatchCache) noteMiss(srcBytes int64) {
	c.mu.Lock()
	c.missBytes += srcBytes
	c.mu.Unlock()
}

func (c *BatchCache) removeLocked(el *list.Element) {
	ds := el.Value.(*cachedDataset)
	c.lru.Remove(el)
	delete(c.entries, ds.path)
	c.used -= ds.mem
}

// partitions returns the recorded shuffle partition sequence for key
// and whether one exists (an empty recording is a valid sequence).
func (ds *cachedDataset) partitions(key string) ([]int32, bool) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	p, ok := ds.parts[key]
	return p, ok
}

// storePartitions records a shuffle partition sequence; the first
// recording for a key wins (all recorders compute identical sequences).
func (ds *cachedDataset) storePartitions(key string, parts []int32) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.parts == nil {
		ds.parts = map[string][]int32{}
	}
	if _, ok := ds.parts[key]; !ok {
		ds.parts[key] = parts
	}
}

// BatchCacheStats is a point-in-time snapshot of the decoded-dataset
// cache. HitBytes totals the DFS bytes hits avoided re-reading;
// PartitionReplays counts map tasks that skipped re-partitioning by
// replaying a recorded shuffle placement.
type BatchCacheStats struct {
	Entries     int
	UsedBytes   int64
	BudgetBytes int64

	Hits      int64
	Misses    int64
	HitBytes  int64
	MissBytes int64

	Inserts       int64
	Evictions     int64
	EvictedBytes  int64
	Invalidations int64

	PartitionRecords int64
	PartitionReplays int64
}

// HitRatio is Hits over all lookups (0 before any lookup).
func (s BatchCacheStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the cache counters.
func (c *BatchCache) Stats() BatchCacheStats {
	if c == nil {
		return BatchCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return BatchCacheStats{
		Entries:          len(c.entries),
		UsedBytes:        c.used,
		BudgetBytes:      c.budget,
		Hits:             c.hits,
		Misses:           c.misses,
		HitBytes:         c.hitBytes,
		MissBytes:        c.missBytes,
		Inserts:          c.inserts,
		Evictions:        c.evictions,
		EvictedBytes:     c.evictedBytes,
		Invalidations:    c.invalidations,
		PartitionRecords: c.partRecs.Load(),
		PartitionReplays: c.partPlays.Load(),
	}
}
