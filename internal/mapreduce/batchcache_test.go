package mapreduce

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/dfs"
	"repro/internal/logical"
	"repro/internal/mrcompile"
	"repro/internal/physical"
	"repro/internal/piglatin"
	"repro/internal/tuple"
)

// putDataset inserts a synthetic single-file dataset of mem bytes.
func putDataset(c *BatchCache, fs *dfs.FS, path string, rows int) {
	var data []byte
	for i := 0; i < rows; i++ {
		data = append(data, []byte(fmt.Sprintf("%d\tval\n", i))...)
	}
	if err := fs.WriteFile(path+"/part-00000", data); err != nil {
		panic(err)
	}
	b, err := tuple.DecodeTextBatch(data)
	if err != nil {
		panic(err)
	}
	c.Put(&cachedDataset{
		path:    path,
		version: fs.Version(path),
		files:   []string{path + "/part-00000"},
		batches: []*tuple.Batch{b},
		mem:     b.MemBytes(),
		src:     b.SrcBytes(),
	})
}

func TestBatchCacheHitMissInvalidate(t *testing.T) {
	fs := dfs.New()
	c := NewBatchCache(1 << 20)
	if c.Get(fs, "a") != nil {
		t.Fatal("empty cache hit")
	}
	putDataset(c, fs, "a", 10)
	if c.Get(fs, "a") == nil {
		t.Fatal("fresh entry missed")
	}
	// Any write under the dataset bumps its version and must drop it.
	if err := fs.WriteFile("a/part-00001", []byte("9\tnine\n")); err != nil {
		t.Fatal(err)
	}
	if c.Get(fs, "a") != nil {
		t.Fatal("stale entry served after version bump")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Invalidations != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Entries != 0 || st.UsedBytes != 0 {
		t.Fatalf("invalidated entry still accounted: %+v", st)
	}
}

func TestBatchCacheLRUEviction(t *testing.T) {
	fs := dfs.New()
	c := NewBatchCache(1) // any insert overflows; only the newest survives
	putDataset(c, fs, "d0", 50)
	putDataset(c, fs, "d1", 50)
	st := c.Stats()
	if st.Entries != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if c.Get(fs, "d1") == nil {
		t.Fatal("newest entry evicted instead of coldest")
	}
	if c.Get(fs, "d0") != nil {
		t.Fatal("coldest entry survived over budget")
	}
}

func TestBatchCacheLRURecency(t *testing.T) {
	fs := dfs.New()
	// Budget fits two of the three datasets.
	probe := NewBatchCache(1 << 30)
	putDataset(probe, fs, "size-probe", 50)
	one := probe.Stats().UsedBytes
	c := NewBatchCache(2 * one)
	putDataset(c, fs, "d0", 50)
	putDataset(c, fs, "d1", 50)
	if c.Get(fs, "d0") == nil { // refresh d0's recency
		t.Fatal("d0 missing")
	}
	putDataset(c, fs, "d2", 50) // evicts d1, the least recently used
	if c.Get(fs, "d1") != nil {
		t.Fatal("LRU victim survived")
	}
	if c.Get(fs, "d0") == nil || c.Get(fs, "d2") == nil {
		t.Fatal("recently used entries evicted")
	}
}

// compileScript builds the workflow's jobs for engine-level cache tests.
func compileScript(t *testing.T, src string) []*physical.Job {
	t.Helper()
	script, err := piglatin.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := logical.Build(script)
	if err != nil {
		t.Fatal(err)
	}
	wf, err := mrcompile.Compile(lp, mrcompile.Options{TempPrefix: "tmp/bc", DefaultReducers: 3})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := wf.TopoJobs()
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func seedInput(t *testing.T, fs *dfs.FS, path string, n, gen int) {
	t.Helper()
	var data []byte
	for i := 0; i < n; i++ {
		data = append(data, []byte(fmt.Sprintf("user%d\t%d\n", i%7, i+gen))...)
	}
	if err := fs.WriteFile(path+"/part-00000", data); err != nil {
		t.Fatal(err)
	}
}

const cacheScript = `
A = load 'in' as (user, amount);
B = group A by user;
C = foreach B generate group, COUNT(A);
store C into 'out';
`

// TestEngineCacheWarmRunsIdentical runs one job cold then warm and
// checks the warm run hits the cache, replays partitions, and writes
// byte-identical output with identical simulated time.
func TestEngineCacheWarmRunsIdentical(t *testing.T) {
	fs := dfs.New()
	seedInput(t, fs, "in", 200, 0)
	eng := New(fs, DefaultConfig())
	jobs := compileScript(t, cacheScript)
	if len(jobs) != 1 {
		t.Fatalf("want 1 job, got %d", len(jobs))
	}

	run := func() (*JobStats, map[string][]byte) {
		st, err := eng.Run(jobs[0])
		if err != nil {
			t.Fatal(err)
		}
		files := map[string][]byte{}
		for _, f := range fs.List("out") {
			data, err := fs.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			files[f] = data
		}
		return st, files
	}

	cold, coldOut := run()
	cs := eng.CacheStats()
	if cs.Hits != 0 || cs.Misses == 0 || cs.Inserts == 0 {
		t.Fatalf("cold stats = %+v", cs)
	}

	warm, warmOut := run()
	ws := eng.CacheStats()
	if ws.Hits == 0 {
		t.Fatalf("warm run missed the cache: %+v", ws)
	}
	if ws.PartitionReplays == 0 {
		t.Fatalf("warm run did not replay partitions: %+v", ws)
	}
	if cold.SimTime != warm.SimTime {
		t.Fatalf("SimTime diverged: cold %v, warm %v", cold.SimTime, warm.SimTime)
	}
	if len(coldOut) != len(warmOut) {
		t.Fatalf("output file sets diverged: %d vs %d", len(coldOut), len(warmOut))
	}
	for f, want := range coldOut {
		if got, ok := warmOut[f]; !ok || string(got) != string(want) {
			t.Fatalf("output %s diverged", f)
		}
	}
}

// TestEngineCacheWriteThrough checks a job's own output feeds the next
// job's input without a decode miss.
func TestEngineCacheWriteThrough(t *testing.T) {
	fs := dfs.New()
	seedInput(t, fs, "in", 100, 0)
	eng := New(fs, DefaultConfig())
	first := compileScript(t, cacheScript)
	if _, err := eng.Run(first[0]); err != nil {
		t.Fatal(err)
	}
	before := eng.CacheStats()

	second := compileScript(t, `
X = load 'out' as (user, cnt);
Y = filter X by cnt > 1;
store Y into 'out2';
`)
	if _, err := eng.Run(second[0]); err != nil {
		t.Fatal(err)
	}
	after := eng.CacheStats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("reading a just-written dataset should hit write-through: before %+v after %+v", before, after)
	}
	if after.Misses != before.Misses {
		t.Fatalf("unexpected miss on write-through read: before %+v after %+v", before, after)
	}
}

// TestWriteThroughStaleVersionSkipped loses the write-through race on
// purpose: a concurrent writer rewrites the same-named part file after
// the job's write, so the file list still matches and only the dataset
// version betrays the rewrite. The stale batches must not publish; a
// part stamped with the current committed version must.
func TestWriteThroughStaleVersionSkipped(t *testing.T) {
	fs := dfs.New()
	eng := New(fs, DefaultConfig())

	write := func(data string) int64 {
		w := fs.Create("wt/part-r-00000")
		if _, err := w.Write([]byte(data)); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return w.(interface{ CommittedVersion() int64 }).CommittedVersion()
	}
	decode := func(data string) *tuple.Batch {
		b, err := tuple.DecodeTextBatch([]byte(data))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	ver := write("1\tone\n")
	stale := writtenPart{dir: "wt", file: "wt/part-r-00000", batch: decode("1\tone\n"), ver: ver}
	write("2\ttwo\n") // same-name rewrite between the job's write and writeThrough
	eng.writeThrough(eng.cache, []writtenPart{stale})
	if eng.cache.Get(fs, "wt") != nil {
		t.Fatal("stale write-through entry published after same-name rewrite")
	}

	ver2 := write("3\tthree\n")
	eng.writeThrough(eng.cache, []writtenPart{{dir: "wt", file: "wt/part-r-00000", batch: decode("3\tthree\n"), ver: ver2}})
	ds := eng.cache.Get(fs, "wt")
	if ds == nil {
		t.Fatal("current write-through entry did not publish")
	}
	if got := ds.batches[0].Row(0); tuple.CompareTuples(got, tuple.Tuple{int64(3), "three"}) != 0 {
		t.Fatalf("cached batch holds %v, want the last write's rows", got)
	}
}

// TestEngineCacheDisabledRun checks RunOptions.DisableBatchCache leaves
// no trace in the cache and still produces identical bytes.
func TestEngineCacheDisabledRun(t *testing.T) {
	fs := dfs.New()
	seedInput(t, fs, "in", 150, 0)
	eng := New(fs, DefaultConfig())
	jobs := compileScript(t, cacheScript)
	if _, err := eng.RunContextOpts(context.Background(), jobs[0], RunOptions{DisableBatchCache: true}); err != nil {
		t.Fatal(err)
	}
	if st := eng.CacheStats(); st.Hits+st.Misses+st.Inserts != 0 {
		t.Fatalf("disabled run touched the cache: %+v", st)
	}

	// A negative budget disables the cache engine-wide.
	off := New(fs, Config{MaxCachedBatchBytes: -1})
	if _, err := off.Run(jobs[0]); err != nil {
		t.Fatal(err)
	}
	if st := off.CacheStats(); st != (BatchCacheStats{}) {
		t.Fatalf("negative budget should zero stats: %+v", st)
	}
}

// TestBatchCacheConcurrentChurn races engine runs against input
// rewrites, direct cache traffic, and partition recordings. Run under
// -race it is the cache's concurrency proof; the invariant checked is
// that a final quiescent run still produces the fresh-decode output.
func TestBatchCacheConcurrentChurn(t *testing.T) {
	fs := dfs.New()
	for d := 0; d < 3; d++ {
		seedInput(t, fs, fmt.Sprintf("churn%d", d), 60, 0)
	}
	eng := New(fs, Config{MaxCachedBatchBytes: 1 << 16}) // small budget: force evictions
	scripts := make([][]*physical.Job, 3)
	for d := 0; d < 3; d++ {
		scripts[d] = compileScript(t, fmt.Sprintf(`
A = load 'churn%d' as (user, amount);
B = group A by user;
C = foreach B generate group, COUNT(A);
store C into 'churnout%d';
`, d, d))
	}

	errc := make(chan error, 64)
	var wg sync.WaitGroup
	// Readers: repeated engine runs over the three datasets.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				if _, err := eng.Run(scripts[(w+i)%3][0]); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	// Writer: rewrites dataset files, bumping versions mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 10; i++ {
			var data []byte
			for r := 0; r < 60; r++ {
				data = append(data, []byte(fmt.Sprintf("user%d\t%d\n", r%7, r+i))...)
			}
			if err := fs.WriteFile(fmt.Sprintf("churn%d/part-00000", i%3), data); err != nil {
				errc <- err
				return
			}
		}
	}()
	// Stats reader and direct cache churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = eng.CacheStats()
			_ = eng.cache.Get(fs, fmt.Sprintf("churn%d", i%3))
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Quiescent: a fresh cacheless engine and the churned one must agree.
	want := New(fs, Config{MaxCachedBatchBytes: -1})
	for d := 0; d < 3; d++ {
		if _, err := eng.Run(scripts[d][0]); err != nil {
			t.Fatal(err)
		}
		churned := map[string]string{}
		for _, f := range fs.List(fmt.Sprintf("churnout%d", d)) {
			data, _ := fs.ReadFile(f)
			churned[f] = string(data)
		}
		if _, err := want.Run(scripts[d][0]); err != nil {
			t.Fatal(err)
		}
		for _, f := range fs.List(fmt.Sprintf("churnout%d", d)) {
			data, _ := fs.ReadFile(f)
			if churned[f] != string(data) {
				t.Fatalf("dataset %d: churned output diverges from fresh decode at %s", d, f)
			}
		}
	}
}
